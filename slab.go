package psd

import (
	"context"
	"io"

	"psd/internal/core"
)

// Slab is the flat, read-only serving form of a decomposition: the released
// rectangles and counts laid out as contiguous columns
// (structure-of-arrays), which is what the query hot path actually reads.
// Build once (or open a published release), then answer unlimited range
// queries — the paper's publish-then-serve split (Section 4.1) with the
// serving side stripped to the minimum bytes per node.
//
// A Slab answers Count, CountAll and Regions bit-identically to the Tree or
// release it came from, is immutable, and is safe for concurrent use.
// Single queries are allocation-free.
type Slab struct {
	inner *core.Slab
}

// Seal materializes the flat read path of a built tree. The tree remains
// usable; the slab is what a server should hold onto.
func (t *Tree) Seal() *Slab { return &Slab{inner: t.inner.Seal()} }

// Count estimates the number of data points inside q, exactly as
// Tree.Count does on the tree this slab was sealed or opened from.
func (s *Slab) Count(q Rect) float64 { return s.inner.Query(q) }

// CountAll answers a batch of range queries with a worker pool (one worker
// per available core), one independent DFS per query, returning answers in
// input order. Prefer CountBatch: the node-major engine answers the same
// batch from one pass over the slab.
func (s *Slab) CountAll(qs []Rect) []float64 { return s.inner.CountAll(qs) }

// QueryStats describes how a batch of queries was answered; it is the sum
// of the per-query traversal statistics.
type QueryStats struct {
	// NodesAdded is the total n(Q): node counts summed into the answers
	// (Section 4.1). Partial leaves count too.
	NodesAdded int `json:"nodes_added"`
	// NodesVisited is the total number of node records the traversals
	// touched.
	NodesVisited int `json:"nodes_visited"`
	// PartialLeaves is the number of leaves answered under the uniformity
	// assumption.
	PartialLeaves int `json:"partial_leaves"`
}

// CountBatch answers a batch of range queries with the node-major batch
// engine: one pass over the slab per batch (sharded across cores for large
// batches) instead of one DFS per query, so node records are loaded once
// per node per batch. Answers come back in input order and are
// bit-identical to calling Count per rectangle.
func (s *Slab) CountBatch(qs []Rect) []float64 { return s.inner.CountBatch(qs) }

// CountBatchInto is CountBatch writing into dst (whose length must match
// the batch), returning the batch's aggregate traversal statistics.
func (s *Slab) CountBatchInto(dst []float64, qs []Rect) QueryStats {
	return QueryStats(s.inner.CountBatchInto(dst, qs, 0))
}

// CountBatchIntoWorkers is CountBatchInto with an explicit worker bound
// (0 = one per core, 1 = a single traversal on the caller's goroutine).
// Steady-state single-worker calls perform no allocations: all traversal
// state comes from pooled scratch.
func (s *Slab) CountBatchIntoWorkers(dst []float64, qs []Rect, workers int) QueryStats {
	return QueryStats(s.inner.CountBatchInto(dst, qs, workers))
}

// CountCtx is Count honoring ctx: the traversal polls for cancellation at
// bounded checkpoints and returns ctx.Err() if the deadline fires mid-walk,
// never a partial sum. With a never-cancellable context this is exactly
// Count. Serving tiers use this to abandon traversals whose request
// deadline has already passed.
func (s *Slab) CountCtx(ctx context.Context, q Rect) (float64, error) {
	return s.inner.QueryCtx(ctx, q)
}

// CountBatchIntoWorkersCtx is CountBatchIntoWorkers honoring ctx: every
// traversal worker polls for cancellation at bounded checkpoints, and the
// call returns ctx.Err() — with dst undefined — if the deadline fires
// mid-traversal. A batch whose traversal ran to completion is returned even
// if the deadline expires on the way out.
func (s *Slab) CountBatchIntoWorkersCtx(ctx context.Context, dst []float64, qs []Rect, workers int) (QueryStats, error) {
	st, err := s.inner.CountBatchIntoCtx(ctx, dst, qs, workers)
	return QueryStats(st), err
}

// Regions returns the effective leaf regions of the release and their
// estimated counts — a flat histogram view of the decomposition.
func (s *Slab) Regions() ([]Rect, []float64) { return s.inner.LeafRegions() }

// NumRegions returns the number of effective leaf regions without
// materializing them.
func (s *Slab) NumRegions() int { return s.inner.NumRegions() }

// PrivacyCost returns the total ε the release consumed.
func (s *Slab) PrivacyCost() float64 { return s.inner.PrivacyCost() }

// Height returns the tree height.
func (s *Slab) Height() int { return s.inner.Height() }

// Kind returns the decomposition family name.
func (s *Slab) Kind() string { return s.inner.Kind().String() }

// Domain returns the released domain.
func (s *Slab) Domain() Rect { return s.inner.Domain() }

// WriteRelease serializes the slab's release as versioned JSON (format 1),
// byte-identical to what the originating tree would write.
func (s *Slab) WriteRelease(w io.Writer) error {
	_, err := s.inner.Release().WriteTo(w)
	return err
}

// WriteBinaryRelease serializes the slab's release in the binary columnar
// format v2 — the compact encoding OpenSlab decodes with no per-count
// allocation. See the README's "Release format v2" section for the layout.
func (s *Slab) WriteBinaryRelease(w io.Writer) error {
	_, err := s.inner.WriteBinary(w)
	return err
}

// WriteBinaryV3Release serializes the slab's release in the record-major
// binary format v3: the node section is byte-for-byte the slab's packed hot
// records, so OpenSlabFile maps the artifact zero-copy instead of decoding
// it. See the README's "Release format v3" section for the layout.
func (s *Slab) WriteBinaryV3Release(w io.Writer) error {
	_, err := s.inner.WriteBinaryV3(w)
	return err
}

// Verify runs the deferred full-body validation on an mmap-opened slab —
// the footer checksum plus the per-node checks a streaming decode performs
// inline — reading every page of the mapping once. On a slab that was
// decoded into heap memory those checks already ran, so Verify returns nil
// without work. Serving tiers call this at load time so a corrupt artifact
// is quarantined instead of answering queries wrong.
func (s *Slab) Verify() error { return s.inner.Verify() }

// Close releases the slab; for a slab opened zero-copy by OpenSlabFile it
// unmaps the artifact. Any later use panics cleanly ("used after Close").
// Concurrent queries must be drained first. Slabs that are simply dropped
// are unmapped by a GC cleanup instead, so Close is optional — it exists
// for callers that want the mapping (and the file's disk space, if it was
// replaced) released deterministically. Idempotent.
func (s *Slab) Close() error { return s.inner.Close() }
