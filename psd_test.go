package psd

import (
	"math"
	"strings"
	"testing"
)

func clusteredPoints(n int, dom Rect, seed int64) []Point {
	// A deterministic two-cluster layout without importing internal/rng:
	// splitmix-style hashing.
	pts := make([]Point, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / float64(1<<53)
	}
	for i := range pts {
		u, v := next(), next()
		if i%2 == 0 { // cluster near the lower-left
			pts[i] = Point{
				X: dom.Lo.X + u*dom.Width()*0.2,
				Y: dom.Lo.Y + v*dom.Height()*0.2,
			}
		} else {
			pts[i] = Point{
				X: dom.Lo.X + u*dom.Width(),
				Y: dom.Lo.Y + v*dom.Height(),
			}
		}
	}
	return pts
}

func TestQuickstartFlow(t *testing.T) {
	domain := NewRect(-124.82, 31.33, -103.00, 49.00)
	points := clusteredPoints(20000, domain, 1)
	tree, err := Build(points, domain, Options{
		Kind:    KDHybrid,
		Height:  6,
		Epsilon: 1.0,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.PrivacyCost(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 1.0", got)
	}
	if tree.Kind() != "kd-hybrid" {
		t.Errorf("Kind = %q", tree.Kind())
	}
	if tree.Height() != 6 {
		t.Errorf("Height = %d", tree.Height())
	}
	if tree.Domain() != domain {
		t.Error("Domain mismatch")
	}
	if tree.BuildTime() == "" {
		t.Error("BuildTime empty")
	}
	q := NewRect(-124.82, 31.33, -120, 36)
	truth := 0.0
	for _, p := range points {
		if q.Contains(p) {
			truth++
		}
	}
	got := tree.Count(q)
	if truth > 100 && math.Abs(got-truth)/truth > 0.5 {
		t.Errorf("Count = %v, truth = %v: more than 50%% off at eps=1", got, truth)
	}
}

func TestAllKindsBuild(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	points := clusteredPoints(5000, domain, 2)
	kinds := []Kind{QuadtreeKind, KDTree, KDHybrid, HilbertRTree, KDCellTree, KDNoisyMeanTree, PrivTreeKind}
	names := []string{"quadtree", "kd", "kd-hybrid", "hilbert-r", "kd-cell", "kd-noisymean", "privtree"}
	for i, k := range kinds {
		tree, err := Build(points, domain, Options{Kind: k, Height: 4, Epsilon: 0.5, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if tree.Kind() != names[i] {
			t.Errorf("Kind = %q, want %q", tree.Kind(), names[i])
		}
		if got := tree.PrivacyCost(); got > 0.5+1e-9 {
			t.Errorf("%v: privacy cost %v exceeds budget", k, got)
		}
		if tree.NumRegions() == 0 {
			t.Errorf("%v: no regions", k)
		}
	}
}

func TestAllBudgetsAndMedians(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	points := clusteredPoints(3000, domain, 4)
	for _, b := range []BudgetStrategy{GeometricBudget, UniformBudget, LeafOnlyBudget} {
		if _, err := Build(points, domain, Options{
			Kind: QuadtreeKind, Height: 3, Epsilon: 0.5, Budget: b, Seed: 5,
		}); err != nil {
			t.Errorf("budget %v: %v", b, err)
		}
	}
	for _, m := range []MedianMethod{ExponentialMedian, SmoothMedian, SampledExponentialMedian} {
		if _, err := Build(points, domain, Options{
			Kind: KDTree, Height: 3, Epsilon: 0.5, Median: m, Seed: 6,
		}); err != nil {
			t.Errorf("median %v: %v", m, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	domain := NewRect(0, 0, 1, 1)
	pts := clusteredPoints(10, domain, 7)
	if _, err := Build(pts, domain, Options{Height: 2}); err == nil {
		t.Error("zero epsilon should error")
	}
	// Out-of-range enums fail with a descriptive error naming the bad value
	// and the valid range — never by leaking a bogus value downstream.
	for _, k := range []Kind{Kind(42), Kind(-1)} {
		_, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, Kind: k})
		if err == nil {
			t.Fatalf("kind %d: expected error", k)
		}
		if !strings.Contains(err.Error(), "unknown kind") || !strings.Contains(err.Error(), "PrivTreeKind") {
			t.Errorf("kind %d: undescriptive error %q", k, err)
		}
	}
	for _, b := range []BudgetStrategy{BudgetStrategy(42), BudgetStrategy(-3)} {
		_, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, Budget: b})
		if err == nil {
			t.Fatalf("budget %d: expected error", b)
		}
		if !strings.Contains(err.Error(), "unknown budget strategy") || !strings.Contains(err.Error(), "LeafOnlyBudget") {
			t.Errorf("budget %d: undescriptive error %q", b, err)
		}
	}
	if _, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, Median: MedianMethod(42)}); err == nil {
		t.Error("unknown median should error")
	}
	if _, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, Kind: KDTree, Theta: 3}); err == nil {
		t.Error("Theta on a non-PrivTree kind should error")
	}
	if _, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, MaxDepth: 4}); err == nil {
		t.Error("MaxDepth on a non-PrivTree kind should error")
	}
	if _, err := Build(pts, Rect{}, Options{Height: 2, Epsilon: 1}); err == nil {
		t.Error("empty domain should error")
	}
}

// TestPrivTreePublicAPI pins the public surface of the adaptive kind:
// MaxDepth plays Height's role, builds are byte-identical at every
// parallelism for a fixed Seed (both artifact encodings), and Lambda/Theta
// pass through.
func TestPrivTreePublicAPI(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	points := clusteredPoints(6000, domain, 13)
	build := func(par int) *Tree {
		tr, err := Build(points, domain, Options{
			Kind: PrivTreeKind, MaxDepth: 5, Epsilon: 0.5, Seed: 99, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seq := build(1)
	if seq.Height() != 5 {
		t.Fatalf("MaxDepth 5 built height %d", seq.Height())
	}
	if seq.Kind() != "privtree" {
		t.Fatalf("kind %q", seq.Kind())
	}
	var wantJSON, wantBin strings.Builder
	if err := seq.WriteRelease(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteBinaryRelease(&wantBin); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 8} {
		got := build(par)
		var js, bin strings.Builder
		if err := got.WriteRelease(&js); err != nil {
			t.Fatal(err)
		}
		if err := got.WriteBinaryRelease(&bin); err != nil {
			t.Fatal(err)
		}
		if js.String() != wantJSON.String() {
			t.Fatalf("par=%d: JSON release differs from sequential build", par)
		}
		if bin.String() != wantBin.String() {
			t.Fatalf("par=%d: binary release differs from sequential build", par)
		}
	}

	// The reopened artifact answers exactly as the builder's tree, through
	// both the arena and the slab read path.
	reopened, err := OpenRelease(strings.NewReader(wantJSON.String()))
	if err != nil {
		t.Fatal(err)
	}
	slab, err := OpenSlab(strings.NewReader(wantBin.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Rect{domain, NewRect(0, 0, 12.5, 12.5), NewRect(30, 40, 80, 41)} {
		want := seq.Count(q)
		if got := reopened.Count(q); got != want {
			t.Errorf("reopened Count(%v) = %v, want %v", q, got, want)
		}
		if got := slab.Count(q); got != want {
			t.Errorf("slab Count(%v) = %v, want %v", q, got, want)
		}
	}

	// A higher threshold coarsens the release through the public options.
	coarse, err := Build(points, domain, Options{
		Kind: PrivTreeKind, MaxDepth: 5, Epsilon: 0.5, Seed: 99, Theta: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumRegions() > seq.NumRegions() {
		t.Errorf("theta=200 released %d regions, theta=0 %d", coarse.NumRegions(), seq.NumRegions())
	}
}

func TestRegionsTileDomainForPartitionKinds(t *testing.T) {
	domain := NewRect(0, 0, 64, 64)
	points := clusteredPoints(2000, domain, 8)
	for _, k := range []Kind{QuadtreeKind, KDTree, KDHybrid, KDCellTree, PrivTreeKind} {
		tree, err := Build(points, domain, Options{Kind: k, Height: 3, Epsilon: 1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		rects, counts := tree.Regions()
		if len(rects) != len(counts) {
			t.Fatalf("%v: rects/counts length mismatch", k)
		}
		var area float64
		for _, r := range rects {
			area += r.Area()
		}
		if math.Abs(area-domain.Area()) > 1e-6*domain.Area() {
			t.Errorf("%v: regions cover %v, want %v", k, area, domain.Area())
		}
	}
}

func TestCountIsDeterministicAfterBuild(t *testing.T) {
	domain := NewRect(0, 0, 10, 10)
	points := clusteredPoints(1000, domain, 10)
	tree, err := Build(points, domain, Options{Kind: QuadtreeKind, Height: 3, Epsilon: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	q := NewRect(1, 1, 7, 4)
	if tree.Count(q) != tree.Count(q) {
		t.Error("repeated queries must return identical answers")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{X: 1, Y: 2}, {X: -3, Y: 9}}
	bb := BoundingBox(pts)
	for _, p := range pts {
		if !bb.Contains(p) {
			t.Errorf("bounding box %v misses %v", bb, p)
		}
	}
}

func TestTuneToWorkload(t *testing.T) {
	domain := NewRect(0, 0, 64, 64)
	points := clusteredPoints(20000, domain, 14)
	workload := []Rect{
		NewRect(1, 1, 3, 3), NewRect(10, 4, 12, 6), NewRect(40, 40, 42, 41),
	}
	tree, err := Build(points, domain, Options{
		Kind: QuadtreeKind, Height: 5, Epsilon: 0.5, Seed: 15,
		TuneToWorkload: workload,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.PrivacyCost(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("tuned PrivacyCost = %v, want 0.5", got)
	}
	// Statistically: on its own workload, the tuned tree should beat the
	// default geometric budget.
	meanErr := func(tune []Rect) float64 {
		var sum float64
		const trials = 20
		for s := int64(0); s < trials; s++ {
			tr, err := Build(points, domain, Options{
				Kind: QuadtreeKind, Height: 5, Epsilon: 0.1, Seed: 700 + s,
				TuneToWorkload: tune,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range workload {
				truth := 0.0
				for _, p := range points {
					if q.Contains(p) {
						truth++
					}
				}
				sum += math.Abs(tr.Count(q) - truth)
			}
		}
		return sum / trials
	}
	tuned := meanErr(workload)
	generic := meanErr(nil)
	if tuned >= generic {
		t.Errorf("tuned error %v should beat generic %v on its own workload", tuned, generic)
	}
}
