package psd

import (
	"math"
	"testing"
)

func clusteredPoints(n int, dom Rect, seed int64) []Point {
	// A deterministic two-cluster layout without importing internal/rng:
	// splitmix-style hashing.
	pts := make([]Point, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / float64(1<<53)
	}
	for i := range pts {
		u, v := next(), next()
		if i%2 == 0 { // cluster near the lower-left
			pts[i] = Point{
				X: dom.Lo.X + u*dom.Width()*0.2,
				Y: dom.Lo.Y + v*dom.Height()*0.2,
			}
		} else {
			pts[i] = Point{
				X: dom.Lo.X + u*dom.Width(),
				Y: dom.Lo.Y + v*dom.Height(),
			}
		}
	}
	return pts
}

func TestQuickstartFlow(t *testing.T) {
	domain := NewRect(-124.82, 31.33, -103.00, 49.00)
	points := clusteredPoints(20000, domain, 1)
	tree, err := Build(points, domain, Options{
		Kind:    KDHybrid,
		Height:  6,
		Epsilon: 1.0,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.PrivacyCost(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 1.0", got)
	}
	if tree.Kind() != "kd-hybrid" {
		t.Errorf("Kind = %q", tree.Kind())
	}
	if tree.Height() != 6 {
		t.Errorf("Height = %d", tree.Height())
	}
	if tree.Domain() != domain {
		t.Error("Domain mismatch")
	}
	if tree.BuildTime() == "" {
		t.Error("BuildTime empty")
	}
	q := NewRect(-124.82, 31.33, -120, 36)
	truth := 0.0
	for _, p := range points {
		if q.Contains(p) {
			truth++
		}
	}
	got := tree.Count(q)
	if truth > 100 && math.Abs(got-truth)/truth > 0.5 {
		t.Errorf("Count = %v, truth = %v: more than 50%% off at eps=1", got, truth)
	}
}

func TestAllKindsBuild(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	points := clusteredPoints(5000, domain, 2)
	kinds := []Kind{QuadtreeKind, KDTree, KDHybrid, HilbertRTree, KDCellTree, KDNoisyMeanTree}
	names := []string{"quadtree", "kd", "kd-hybrid", "hilbert-r", "kd-cell", "kd-noisymean"}
	for i, k := range kinds {
		tree, err := Build(points, domain, Options{Kind: k, Height: 4, Epsilon: 0.5, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if tree.Kind() != names[i] {
			t.Errorf("Kind = %q, want %q", tree.Kind(), names[i])
		}
		if got := tree.PrivacyCost(); got > 0.5+1e-9 {
			t.Errorf("%v: privacy cost %v exceeds budget", k, got)
		}
		if tree.NumRegions() == 0 {
			t.Errorf("%v: no regions", k)
		}
	}
}

func TestAllBudgetsAndMedians(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	points := clusteredPoints(3000, domain, 4)
	for _, b := range []BudgetStrategy{GeometricBudget, UniformBudget, LeafOnlyBudget} {
		if _, err := Build(points, domain, Options{
			Kind: QuadtreeKind, Height: 3, Epsilon: 0.5, Budget: b, Seed: 5,
		}); err != nil {
			t.Errorf("budget %v: %v", b, err)
		}
	}
	for _, m := range []MedianMethod{ExponentialMedian, SmoothMedian, SampledExponentialMedian} {
		if _, err := Build(points, domain, Options{
			Kind: KDTree, Height: 3, Epsilon: 0.5, Median: m, Seed: 6,
		}); err != nil {
			t.Errorf("median %v: %v", m, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	domain := NewRect(0, 0, 1, 1)
	pts := clusteredPoints(10, domain, 7)
	if _, err := Build(pts, domain, Options{Height: 2}); err == nil {
		t.Error("zero epsilon should error")
	}
	if _, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, Kind: Kind(42)}); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, Budget: BudgetStrategy(42)}); err == nil {
		t.Error("unknown budget should error")
	}
	if _, err := Build(pts, domain, Options{Height: 2, Epsilon: 1, Median: MedianMethod(42)}); err == nil {
		t.Error("unknown median should error")
	}
	if _, err := Build(pts, Rect{}, Options{Height: 2, Epsilon: 1}); err == nil {
		t.Error("empty domain should error")
	}
}

func TestRegionsTileDomainForPartitionKinds(t *testing.T) {
	domain := NewRect(0, 0, 64, 64)
	points := clusteredPoints(2000, domain, 8)
	for _, k := range []Kind{QuadtreeKind, KDTree, KDHybrid, KDCellTree} {
		tree, err := Build(points, domain, Options{Kind: k, Height: 3, Epsilon: 1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		rects, counts := tree.Regions()
		if len(rects) != len(counts) {
			t.Fatalf("%v: rects/counts length mismatch", k)
		}
		var area float64
		for _, r := range rects {
			area += r.Area()
		}
		if math.Abs(area-domain.Area()) > 1e-6*domain.Area() {
			t.Errorf("%v: regions cover %v, want %v", k, area, domain.Area())
		}
	}
}

func TestCountIsDeterministicAfterBuild(t *testing.T) {
	domain := NewRect(0, 0, 10, 10)
	points := clusteredPoints(1000, domain, 10)
	tree, err := Build(points, domain, Options{Kind: QuadtreeKind, Height: 3, Epsilon: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	q := NewRect(1, 1, 7, 4)
	if tree.Count(q) != tree.Count(q) {
		t.Error("repeated queries must return identical answers")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{X: 1, Y: 2}, {X: -3, Y: 9}}
	bb := BoundingBox(pts)
	for _, p := range pts {
		if !bb.Contains(p) {
			t.Errorf("bounding box %v misses %v", bb, p)
		}
	}
}

func TestTuneToWorkload(t *testing.T) {
	domain := NewRect(0, 0, 64, 64)
	points := clusteredPoints(20000, domain, 14)
	workload := []Rect{
		NewRect(1, 1, 3, 3), NewRect(10, 4, 12, 6), NewRect(40, 40, 42, 41),
	}
	tree, err := Build(points, domain, Options{
		Kind: QuadtreeKind, Height: 5, Epsilon: 0.5, Seed: 15,
		TuneToWorkload: workload,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.PrivacyCost(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("tuned PrivacyCost = %v, want 0.5", got)
	}
	// Statistically: on its own workload, the tuned tree should beat the
	// default geometric budget.
	meanErr := func(tune []Rect) float64 {
		var sum float64
		const trials = 20
		for s := int64(0); s < trials; s++ {
			tr, err := Build(points, domain, Options{
				Kind: QuadtreeKind, Height: 5, Epsilon: 0.1, Seed: 700 + s,
				TuneToWorkload: tune,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range workload {
				truth := 0.0
				for _, p := range points {
					if q.Contains(p) {
						truth++
					}
				}
				sum += math.Abs(tr.Count(q) - truth)
			}
		}
		return sum / trials
	}
	tuned := meanErr(workload)
	generic := meanErr(nil)
	if tuned >= generic {
		t.Errorf("tuned error %v should beat generic %v on its own workload", tuned, generic)
	}
}
