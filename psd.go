// Package psd builds differentially private spatial decompositions (PSDs):
// hierarchical summaries of two-dimensional point data that answer
// rectangular range-count queries under ε-differential privacy.
//
// It is a from-scratch Go implementation of
//
//	Cormode, Procopiuc, Srivastava, Shen, Yu.
//	"Differentially Private Spatial Decompositions." ICDE 2012.
//
// including the paper's two core techniques — geometric budget allocation
// across tree levels (Section 4) and linear-time ordinary-least-squares
// post-processing of the noisy counts (Section 5) — and every
// decomposition in its design space: quadtrees, (flattened) kd-trees with
// private medians, hybrid trees, Hilbert R-trees, and the comparison
// baselines kd-cell [26] and kd-noisymean [12].
//
// # Quickstart
//
//	domain := psd.NewRect(-124.82, 31.33, -103.00, 49.00)
//	points := []psd.Point{{X: -122.33, Y: 47.60}, /* ... */}
//
//	tree, err := psd.Build(points, domain, psd.Options{
//		Kind:    psd.KDHybrid,
//		Height:  8,
//		Epsilon: 0.5,
//		Seed:    1,
//	})
//	if err != nil { /* ... */ }
//
//	// How many individuals in this rectangle? (ε-DP answer.)
//	got := tree.Count(psd.NewRect(-123, 47, -122, 48))
//
// The release consists of the node rectangles and the noisy counts; with
// the default options the whole tree satisfies Epsilon-differential privacy
// under the add/remove-one-tuple neighborhood of the paper.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package psd

import (
	"fmt"
	"time"

	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/geom"
	"psd/internal/median"
	"psd/internal/rng"
)

// Point is a location in the plane.
type Point = geom.Point

// Rect is a half-open axis-aligned rectangle [Lo.X, Hi.X) × [Lo.Y, Hi.Y).
type Rect = geom.Rect

// NewRect returns the rectangle with the given bounds; it panics on
// inverted bounds.
func NewRect(loX, loY, hiX, hiY float64) Rect {
	return geom.NewRect(loX, loY, hiX, hiY)
}

// BoundingBox returns the smallest rectangle containing all points, with
// the upper edge nudged so every point is inside under the half-open
// convention. Note: deriving the domain from private data leaks the
// extremes; production deployments should use a fixed public domain.
func BoundingBox(points []Point) Rect { return geom.BoundingBox(points) }

// Kind selects a decomposition family.
type Kind int

// The decomposition families of the paper.
const (
	// QuadtreeKind recursively halves the domain at midpoints
	// (data-independent); the full budget funds counts. With geometric
	// budgets and post-processing this is the paper's quad-opt, its best
	// all-round method.
	QuadtreeKind Kind = iota
	// KDTree splits at private medians of the data (exponential mechanism
	// by default), flattened to fanout 4.
	KDTree
	// KDHybrid uses private-median splits for the top half of the tree and
	// midpoint splits below — the most reliably accurate kd variant in the
	// paper.
	KDHybrid
	// HilbertRTree builds a one-dimensional kd-tree over Hilbert curve
	// values; node rectangles are bounding boxes of Hilbert ranges.
	HilbertRTree
	// KDCellTree is the baseline of Xiao et al. [26]: splits are medians of
	// a fixed-resolution noisy grid.
	KDCellTree
	// KDNoisyMeanTree is the baseline of Inan et al. [12]: splits are noisy
	// means standing in for medians.
	KDNoisyMeanTree
	// PrivTreeKind is the adaptive decomposition of Zhang et al. (SIGMOD
	// 2016): quadtree (midpoint) geometry whose recursion depth adapts to
	// the data — a node splits while its depth-decayed noisy count exceeds
	// a threshold — at a privacy cost independent of the depth, removing
	// the Height hyperparameter the paper's decompositions fix up front.
	// Configure it with Lambda, Theta and MaxDepth.
	PrivTreeKind
)

// String returns the family name, or "unknown" for out-of-range values
// (which would otherwise leak through as a bogus core kind).
func (k Kind) String() string {
	ck, err := k.toCore()
	if err != nil {
		return "unknown"
	}
	return ck.String()
}

// toCore maps the public Kind onto the core enumeration, rejecting
// out-of-range values with a descriptive error instead of letting a bogus
// kind leak downstream.
func (k Kind) toCore() (core.Kind, error) {
	switch k {
	case QuadtreeKind:
		return core.Quadtree, nil
	case KDTree:
		return core.KD, nil
	case KDHybrid:
		return core.Hybrid, nil
	case HilbertRTree:
		return core.HilbertR, nil
	case KDCellTree:
		return core.KDCell, nil
	case KDNoisyMeanTree:
		return core.KDNoisyMean, nil
	case PrivTreeKind:
		return core.PrivTree, nil
	default:
		return 0, fmt.Errorf("psd: unknown kind %d (valid kinds are QuadtreeKind (%d) through PrivTreeKind (%d))",
			k, QuadtreeKind, PrivTreeKind)
	}
}

// BudgetStrategy selects how the count budget is divided across tree
// levels (Section 4).
type BudgetStrategy int

// The budget strategies of Section 4.2.
const (
	// GeometricBudget allocates ε_i ∝ 2^((h-i)/3), increasing from root to
	// leaves — the paper's optimal strategy (Lemma 3) and the default.
	GeometricBudget BudgetStrategy = iota
	// UniformBudget allocates ε/(h+1) per level, the prior-work baseline.
	UniformBudget
	// LeafOnlyBudget gives the leaves everything, as in [12].
	LeafOnlyBudget
)

func (b BudgetStrategy) toStrategy() (budget.Strategy, error) {
	switch b {
	case GeometricBudget:
		return budget.Geometric{}, nil
	case UniformBudget:
		return budget.Uniform{}, nil
	case LeafOnlyBudget:
		return budget.LeafOnly{}, nil
	default:
		return nil, fmt.Errorf("psd: unknown budget strategy %d (valid strategies are GeometricBudget (%d) through LeafOnlyBudget (%d))",
			b, GeometricBudget, LeafOnlyBudget)
	}
}

// MedianMethod selects the private median mechanism for data-dependent
// trees (Section 6.1).
type MedianMethod int

// The private median methods of Section 6.1.
const (
	// ExponentialMedian is the exponential mechanism over ranks — the most
	// accurate method in the paper's study and the default.
	ExponentialMedian MedianMethod = iota
	// SmoothMedian calibrates Laplace noise to the smooth sensitivity of
	// the median; (ε, δ)-DP with δ = 1e-4.
	SmoothMedian
	// SampledExponentialMedian runs the exponential mechanism on a 1%
	// Bernoulli sample with an amplification-adjusted budget (Section 7) —
	// an order of magnitude faster on large inputs.
	SampledExponentialMedian
)

// Options configures Build. Height and Epsilon are required; zero values
// elsewhere select the paper's recommended defaults (geometric budget, OLS
// post-processing on, exponential-mechanism medians, εcount = 0.7ε for
// data-dependent kinds, pruning off).
type Options struct {
	// Kind selects the decomposition family (default QuadtreeKind).
	Kind Kind

	// Height is the tree height h; the tree has 4^h leaf regions.
	Height int

	// Epsilon is the total differential privacy budget of the release.
	Epsilon float64

	// Budget selects the per-level count allocation (default
	// GeometricBudget).
	Budget BudgetStrategy

	// Median selects the private median mechanism for data-dependent kinds
	// (default ExponentialMedian).
	Median MedianMethod

	// CountFraction is the share of Epsilon spent on counts (the rest
	// funds structure). Zero selects the paper's defaults: 1.0 for
	// quadtrees, 0.7 otherwise.
	CountFraction float64

	// SwitchLevel is the number of data-dependent levels of a KDHybrid
	// tree (zero selects Height/2, the paper's recommendation).
	SwitchLevel int

	// DisablePostProcess turns off the OLS post-processing of Section 5.
	// The default (false) runs it: it costs no privacy and only helps.
	// PrivTreeKind has no OLS step (it publishes a single release over the
	// adaptive leaf partition, not one per level), so the flag is ignored.
	DisablePostProcess bool

	// PruneThreshold enables Section 7 pruning: subtrees under nodes whose
	// estimated count falls below the threshold are cut. Zero disables.
	PruneThreshold float64

	// HilbertOrder is the curve order for HilbertRTree (default 18).
	HilbertOrder uint

	// Lambda is the PrivTree splitting-noise scale λ (PrivTreeKind only).
	// Zero selects the paper-faithful calibration λ = (2β−1)/((β−1)·ε_struct)
	// with β = 4, the smallest scale for which the decomposition is
	// ε_struct-DP (Zhang et al. 2016, Theorem 1), where ε_struct is the
	// structure share of Epsilon (see CountFraction). Setting it explicitly
	// overrides the calibration; PrivacyCost then reports the ε the chosen
	// scale actually consumes.
	Lambda float64

	// Theta is the PrivTree split threshold θ (PrivTreeKind only): a node
	// keeps splitting while its depth-decayed noisy count exceeds it. It
	// spends no privacy budget; the default 0 is the paper's choice, and
	// raising it stops the recursion earlier (coarser, smaller releases).
	Theta float64

	// MaxDepth caps the PrivTree adaptive recursion (PrivTreeKind only);
	// it plays Height's role for the adaptive tree — PrivTree's budget is
	// depth-independent, so the cap only bounds the released artifact's
	// size. When set it overrides Height; zero falls back to Height.
	MaxDepth int

	// TuneToWorkload, when non-empty, overrides Budget with the
	// workload-aware allocation Section 4.2 sketches: the per-level budget
	// is proportional to the cube root of the level's average contribution
	// to the given anticipated queries (the same optimization as Lemma 3,
	// with the workload's node profile in place of the worst-case bound).
	// The workload must be public knowledge — it shapes the release.
	TuneToWorkload []Rect

	// Seed makes the build reproducible. Fixing the seed does not weaken
	// the DP guarantee against observers who don't know the seed, but a
	// production release should use a fresh unpredictable seed.
	Seed int64

	// Parallelism bounds the worker goroutines Build uses (structure,
	// noisy-count release, post-processing and pruning all fan out). Zero
	// uses one worker per available core; 1 forces a sequential build. All
	// randomness is drawn from per-node streams, so for a fixed Seed the
	// released tree is byte-identical at every parallelism level.
	Parallelism int
}

// Tree is a built private spatial decomposition. The private release
// consists of its region rectangles and noisy counts; Count answers
// arbitrary rectangular range queries from it.
type Tree struct {
	inner *core.PSD
}

// Build constructs a PSD over points within domain. The input slice is not
// modified. Points outside the domain are clamped onto its boundary.
func Build(points []Point, domain Rect, opts Options) (*Tree, error) {
	strategy, err := opts.Budget.toStrategy()
	if err != nil {
		return nil, err
	}
	if len(opts.TuneToWorkload) > 0 {
		// A tiny relative floor keeps every level minimally funded (~1% of
		// the peak level each) so queries outside the anticipated workload
		// still get answers.
		strategy = budget.Tuned{
			Domain:  domain,
			Queries: opts.TuneToWorkload,
			Floor:   1e-6,
		}
	}
	k, err := opts.Kind.toCore()
	if err != nil {
		return nil, err
	}
	height := opts.Height
	if opts.Kind == PrivTreeKind && opts.MaxDepth != 0 {
		height = opts.MaxDepth
	}
	if opts.Kind != PrivTreeKind && (opts.Lambda != 0 || opts.Theta != 0 || opts.MaxDepth != 0) {
		return nil, fmt.Errorf("psd: Lambda/Theta/MaxDepth apply only to PrivTreeKind (got kind %v)", opts.Kind)
	}
	cfg := core.Config{
		Kind:           k,
		Height:         height,
		Epsilon:        opts.Epsilon,
		Strategy:       strategy,
		CountFraction:  opts.CountFraction,
		SwitchLevel:    opts.SwitchLevel,
		PostProcess:    !opts.DisablePostProcess,
		PruneThreshold: opts.PruneThreshold,
		Seed:           opts.Seed,
		HilbertOrder:   opts.HilbertOrder,
		Lambda:         opts.Lambda,
		Theta:          opts.Theta,
		Parallelism:    opts.Parallelism,
	}
	switch opts.Median {
	case ExponentialMedian:
		// core's default.
	case SmoothMedian:
		cfg.Median = &median.SS{Src: rng.New(opts.Seed ^ 0x7373), Delta: 1e-4}
	case SampledExponentialMedian:
		src := rng.New(opts.Seed ^ 0x656d73)
		cfg.Median = &median.Sampled{
			Inner: &median.EM{Src: src.Split()},
			Src:   src.Split(),
			Rate:  0.01,
		}
	default:
		return nil, fmt.Errorf("psd: unknown median method %d", opts.Median)
	}
	// Timing is observed here, outside core: core.Build reads no clock, so
	// a rebuild from the same seed is byte-identical (psdlint: determinism).
	start := time.Now()
	p, err := core.Build(points, domain, cfg)
	if err != nil {
		return nil, err
	}
	p.SetBuildDuration(time.Since(start))
	return &Tree{inner: p}, nil
}

// Count estimates the number of data points inside q using the canonical
// range-query method of Section 4.1. The estimate is unbiased; repeated
// calls are deterministic (the noise was fixed at build time — queries are
// post-processing and consume no budget).
func (t *Tree) Count(q Rect) float64 { return t.inner.Query(q) }

// CountAll answers a batch of range queries with a worker pool (one worker
// per available core), returning answers in input order. Each answer is
// exactly what Count would return for that rectangle; batching only
// amortizes traversal state and spreads independent queries across cores,
// which is the right shape for serving many queries against one release.
func (t *Tree) CountAll(qs []Rect) []float64 { return t.inner.CountAll(qs) }

// CountBatch answers a batch of range queries with the node-major batch
// engine: the tree's flat serving form (sealed lazily, once) is traversed
// one time per batch, classifying every still-active query at each node,
// instead of walking the tree once per query. Each answer is exactly what
// Count would return for that rectangle; only the work schedule changes.
func (t *Tree) CountBatch(qs []Rect) []float64 { return t.inner.CountBatch(qs) }

// Regions returns the effective leaf regions of the release and their
// estimated counts — a flat histogram view of the decomposition.
func (t *Tree) Regions() ([]Rect, []float64) { return t.inner.LeafRegions() }

// PrivacyCost returns the total ε the release consumed (at most the
// configured Epsilon; equal to it for the standard configurations).
func (t *Tree) PrivacyCost() float64 { return t.inner.PrivacyCost() }

// Height returns the tree height.
func (t *Tree) Height() int { return t.inner.Height() }

// Kind returns the decomposition family name.
func (t *Tree) Kind() string { return t.inner.Kind().String() }

// Domain returns the indexed domain.
func (t *Tree) Domain() Rect { return t.inner.Domain() }

// BuildTime returns how long construction took.
func (t *Tree) BuildTime() string { return t.inner.Stats().Duration.String() }

// NumRegions returns the number of effective leaf regions.
func (t *Tree) NumRegions() int {
	r, _ := t.inner.LeafRegions()
	return len(r)
}
