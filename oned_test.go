package psd

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

func expSalaries(n int, seed int64) []float64 {
	vals := make([]float64, n)
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / float64(1<<53)
	}
	for i := range vals {
		v := 40000 * (1 - math.Log(1-next()*0.95))
		if v >= 500000 {
			v = 499999
		}
		vals[i] = v
	}
	return vals
}

func TestBuild1DCounts(t *testing.T) {
	vals := expSalaries(30000, 1)
	tree, err := Build1D(vals, 0, 500000, Options{Height: 5, Epsilon: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.PrivacyCost(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 1.0", got)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, band := range [][2]float64{{0, 60000}, {60000, 120000}, {120000, 500000}} {
		truth := float64(sort.SearchFloat64s(sorted, band[1]) - sort.SearchFloat64s(sorted, band[0]))
		got := tree.Count(band[0], band[1])
		if truth > 500 && math.Abs(got-truth)/truth > 0.25 {
			t.Errorf("band %v: got %v, truth %v", band, got, truth)
		}
	}
	// Degenerate and out-of-domain intervals.
	if tree.Count(100, 100) != 0 {
		t.Error("empty interval should count 0")
	}
	if tree.Count(200, 100) != 0 {
		t.Error("inverted interval should count 0")
	}
	if tree.Count(600000, 700000) != 0 {
		t.Error("out-of-domain interval should count 0")
	}
	// Clamped interval equals the full domain count.
	full := tree.Count(0, 500000)
	if got := tree.Count(-1e9, 1e9); math.Abs(got-full) > 1e-9 {
		t.Error("clamping should not change the full-domain count")
	}
}

func TestBuild1DQuantiles(t *testing.T) {
	vals := expSalaries(50000, 3)
	tree, err := Build1D(vals, 0, 500000, Options{Height: 5, Epsilon: 1.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		got := tree.Quantile(q)
		truth := sorted[int(q*float64(len(sorted)))]
		if math.Abs(got-truth)/truth > 0.25 {
			t.Errorf("quantile %v: got %v, truth %v", q, got, truth)
		}
	}
	if tree.Quantile(0) != 0 {
		t.Error("q=0 should return the domain low")
	}
	if tree.Quantile(1) != 500000 {
		t.Error("q=1 should return the domain high")
	}
}

func TestBuild1DValidation(t *testing.T) {
	if _, err := Build1D([]float64{1}, 5, 5, Options{Height: 2, Epsilon: 1}); err == nil {
		t.Error("degenerate domain should error")
	}
	if _, err := Build1D([]float64{1}, math.NaN(), 5, Options{Height: 2, Epsilon: 1}); err == nil {
		t.Error("NaN domain should error")
	}
	if _, err := Build1D([]float64{1}, 0, 5, Options{Height: 2}); err == nil {
		t.Error("zero epsilon should error")
	}
}

func TestBuild1DDefaultsToKD(t *testing.T) {
	tree, err := Build1D([]float64{1, 2, 3}, 0, 10, Options{Height: 2, Epsilon: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Tree().Kind() != "kd" {
		t.Errorf("1-D default kind = %q, want kd", tree.Tree().Kind())
	}
}

func TestReleaseRoundTripPublicAPI(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	points := clusteredPoints(5000, domain, 12)
	tree, err := Build(points, domain, Options{Kind: KDHybrid, Height: 4, Epsilon: 0.5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteRelease(&buf); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenRelease(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := NewRect(10, 10, 45, 80)
	if a, b := tree.Count(q), reopened.Count(q); math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
		t.Errorf("reopened count %v != original %v", b, a)
	}
	if reopened.Kind() != tree.Kind() {
		t.Error("kind lost in round trip")
	}
	if _, err := OpenRelease(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk release should error")
	}
}
