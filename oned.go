package psd

import (
	"fmt"
	"math"
	"sort"
)

// The paper's introduction observes that any ordered attribute of moderate
// to high cardinality — salaries, ages, timestamps — is implicitly spatial:
// whenever data can be indexed by a tree, PSD techniques apply. Tree1D
// packages that one-dimensional case: values embed on the x-axis with a
// dummy unit y extent, data-dependent splits track the distribution's
// quantiles, and interval-count queries come back ε-differentially private.

// Tree1D is a private decomposition of a one-dimensional value set.
type Tree1D struct {
	t      *Tree
	lo, hi float64
}

// Build1D constructs a PSD over values within the public domain [lo, hi).
// Options are as for Build; KDTree (the default here) is usually the right
// Kind for one-dimensional data since its splits adapt to the
// distribution.
func Build1D(values []float64, lo, hi float64, opts Options) (*Tree1D, error) {
	if !(lo < hi) || math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("psd: invalid 1-D domain [%v, %v)", lo, hi)
	}
	points := make([]Point, len(values))
	for i, v := range values {
		points[i] = Point{X: v, Y: 0.5}
	}
	if opts.Kind == QuadtreeKind {
		// Midpoint splits still work in 1-D, but the embedding wastes the
		// y-splits; the kd variants collapse them onto the dummy axis
		// harmlessly. Default to KDTree when the caller didn't choose.
		opts.Kind = KDTree
	}
	t, err := Build(points, NewRect(lo, 0, hi, 1), opts)
	if err != nil {
		return nil, err
	}
	return &Tree1D{t: t, lo: lo, hi: hi}, nil
}

// Count estimates the number of values in [a, b).
func (t *Tree1D) Count(a, b float64) float64 {
	if b <= a {
		return 0
	}
	if a < t.lo {
		a = t.lo
	}
	if b > t.hi {
		b = t.hi
	}
	if b <= a {
		return 0
	}
	return t.t.Count(NewRect(a, 0, b, 1))
}

// Quantile estimates the q-quantile (0 < q < 1) of the value distribution
// from the released regions: region boundaries of a kd build are private
// medians, so this is free post-processing.
func (t *Tree1D) Quantile(q float64) float64 {
	if q <= 0 {
		return t.lo
	}
	if q >= 1 {
		return t.hi
	}
	rects, counts := t.t.Regions()
	type slab struct{ hi, count float64 }
	slabs := make([]slab, len(rects))
	var total float64
	for i, r := range rects {
		c := counts[i]
		if c < 0 {
			c = 0
		}
		slabs[i] = slab{hi: r.Hi.X, count: c}
		total += c
	}
	if total <= 0 {
		return (t.lo + t.hi) / 2
	}
	// Regions of the 1-D embedding are x-slabs; order by upper edge.
	sort.Slice(slabs, func(i, j int) bool { return slabs[i].hi < slabs[j].hi })
	target := q * total
	var cum float64
	for _, s := range slabs {
		cum += s.count
		if cum >= target {
			return s.hi
		}
	}
	return t.hi
}

// Tree returns the underlying 2-D tree, for access to Regions, Release and
// metadata.
func (t *Tree1D) Tree() *Tree { return t.t }

// PrivacyCost returns the total ε the release consumed.
func (t *Tree1D) PrivacyCost() float64 { return t.t.PrivacyCost() }
