package psd

import "runtime"

// BuildBenchConfig names one representative build configuration of the
// performance benchmarks. bench_test.go (the CI bench smoke) and
// cmd/psdbench's JSON perf report both measure exactly BuildBenchConfigs,
// so the two views of the perf trajectory cannot drift apart.
type BuildBenchConfig struct {
	// Name labels benchmark rows ("quad-opt-h10").
	Name string
	// Kind and Height define the tree being built (ε = 0.5, default
	// options otherwise).
	Kind   Kind
	Height int
}

// BuildBenchConfigs returns the benchmarked build configurations: the
// paper's best all-round quadtree at full height plus the kd family whose
// private-median path is the construction bottleneck.
func BuildBenchConfigs() []BuildBenchConfig {
	return []BuildBenchConfig{
		{Name: "quad-opt-h10", Kind: QuadtreeKind, Height: 10},
		{Name: "kd-h8", Kind: KDTree, Height: 8},
		{Name: "kd-hybrid-h8", Kind: KDHybrid, Height: 8},
		{Name: "hilbert-h6", Kind: HilbertRTree, Height: 6},
		{Name: "privtree-h8", Kind: PrivTreeKind, Height: 8},
	}
}

// BenchParallelisms returns the seq-vs-parallel axis the benchmarks sweep:
// always 1 (the sequential baseline speedups compare against) and, when
// the machine has more than one core, every core. Releases are
// byte-identical across the axis, so the comparison is pure scheduling.
func BenchParallelisms() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}
