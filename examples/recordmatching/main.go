// Recordmatching demonstrates the Section 8.3 application: two parties
// hold location-tagged record sets and want to find matches without
// revealing their data. Comparing every cross pair under secure multiparty
// computation (SMC) costs |A|·|B| expensive operations; instead party A
// publishes a differentially private spatial decomposition of its records.
// Party B assigns its own records (which it knows exactly) to the released
// regions, and SMC compares them only against A's encrypted per-region
// record sets — padded to the released noisy counts, which is what keeps
// A's true cardinalities private.
//
// The whole pipeline here runs on the public psd API, the way a downstream
// integrator would build it.
//
// Run with:
//
//	go run ./examples/recordmatching
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"psd"
)

func main() {
	domain := psd.NewRect(0, 0, 100, 100)
	partyA, partyB := parties(20_000, domain, 11)
	baseline := float64(len(partyA)) * float64(len(partyB))
	fmt.Printf("parties: |A|=%d, |B|=%d -> %.2g SMC pairs without blocking\n\n",
		len(partyA), len(partyB), baseline)

	for _, eps := range []float64{0.1, 0.5} {
		fmt.Printf("privacy budget ε=%.2f per party:\n", eps)
		for _, kind := range []psd.Kind{psd.QuadtreeKind, psd.KDNoisyMeanTree, psd.KDTree} {
			pairs, err := smcPairs(partyA, partyB, domain, kind, eps)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s SMC pairs %14.0f  reduction ratio %.4f\n",
				kindName(kind), pairs, 1-pairs/baseline)
		}
		fmt.Println()
	}
	fmt.Println("bigger reduction ratio = less SMC work; kd with exponential-")
	fmt.Println("mechanism medians (the paper's kd-standard) blocks best.")
}

// smcPairs releases party A's PSD (leaf-only budget, as in the paper's
// record-matching configuration), assigns B's records to the released
// regions, and counts the padded SMC comparisons.
func smcPairs(partyA, partyB []psd.Point, domain psd.Rect, kind psd.Kind, eps float64) (float64, error) {
	treeA, err := psd.Build(partyA, domain, psd.Options{
		Kind:    kind,
		Height:  5,
		Epsilon: eps,
		Budget:  psd.LeafOnlyBudget, // Section 8.3's configuration
		Seed:    3,
	})
	if err != nil {
		return 0, err
	}
	rectsA, countsA := treeA.Regions()
	// B locates its own records in A's public regions — no budget needed.
	bCounts := make([]float64, len(rectsA))
	for _, p := range partyB {
		for i, r := range rectsA {
			if r.Contains(p) {
				bCounts[i]++
				break
			}
		}
	}
	var pairs float64
	for i := range rectsA {
		na := math.Max(0, math.Round(countsA[i])) // A's records padded to the noisy count
		pairs += na * bCounts[i]
	}
	return pairs, nil
}

func kindName(k psd.Kind) string {
	switch k {
	case psd.QuadtreeKind:
		return "quad-baseline"
	case psd.KDNoisyMeanTree:
		return "kd-noisymean"
	case psd.KDTree:
		return "kd-standard"
	default:
		return k.String()
	}
}

// parties generates two clustered record sets with partially overlapping
// hotspots.
func parties(n int, domain psd.Rect, seed int64) (a, b []psd.Point) {
	rng := rand.New(rand.NewSource(seed))
	cities := make([]psd.Point, 8)
	for i := range cities {
		cities[i] = psd.Point{
			X: rng.Float64() * domain.Width(),
			Y: rng.Float64() * domain.Height(),
		}
	}
	gen := func(n, lo, hi int) []psd.Point {
		pts := make([]psd.Point, 0, n)
		for len(pts) < n {
			c := cities[lo+rng.Intn(hi-lo)]
			p := psd.Point{
				X: c.X + rng.NormFloat64(),
				Y: c.Y + rng.NormFloat64(),
			}
			if domain.Contains(p) {
				pts = append(pts, p)
			}
		}
		return pts
	}
	return gen(n, 0, 6), gen(n, 3, 8) // A uses cities 0-5, B uses 3-7
}
