// Quickstart: build a private spatial decomposition over synthetic GPS
// points and answer range-count queries under ε-differential privacy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"psd"
)

func main() {
	// The data: locations of individuals. Here, synthetic points clustered
	// around two "cities" inside a public, fixed domain (never derive the
	// domain from private data in a real release).
	domain := psd.NewRect(-124.82, 31.33, -103.00, 49.00)
	rng := rand.New(rand.NewSource(42))
	points := make([]psd.Point, 0, 100_000)
	for i := 0; i < cap(points); i++ {
		cx, cy := -122.3, 47.6 // Seattle-ish
		if i%3 == 0 {
			cx, cy = -106.6, 35.1 // Albuquerque-ish
		}
		points = append(points, psd.Point{
			X: cx + rng.NormFloat64()*0.8,
			Y: cy + rng.NormFloat64()*0.6,
		})
	}

	// Build the paper's recommended configuration: a hybrid kd-tree with
	// geometric budgets and OLS post-processing (both on by default).
	tree, err := psd.Build(points, domain, psd.Options{
		Kind:    psd.KDHybrid,
		Height:  7,
		Epsilon: 0.5, // total privacy budget of the release
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s (h=%d, %d regions) in %s, privacy cost ε=%.3f\n\n",
		tree.Kind(), tree.Height(), tree.NumRegions(), tree.BuildTime(), tree.PrivacyCost())

	// Ask range-count queries. Queries are post-processing over the
	// released tree: they consume no extra budget and are deterministic.
	queries := []struct {
		name string
		rect psd.Rect
	}{
		{"around Seattle", psd.NewRect(-124, 46.5, -121, 48.5)},
		{"around Albuquerque", psd.NewRect(-108, 34, -105, 36.2)},
		{"empty desert", psd.NewRect(-117, 38, -112, 42)},
	}
	for _, q := range queries {
		truth := 0
		for _, p := range points {
			if q.rect.Contains(p) {
				truth++
			}
		}
		got := tree.Count(q.rect)
		fmt.Printf("%-20s private=%8.1f  true=%6d\n", q.name, got, truth)
	}
}
