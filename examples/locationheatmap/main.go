// Locationheatmap renders a privacy-preserving density map of a skewed
// location dataset — the transportation-planning use case from the paper's
// introduction. The raw GPS points never leave the curator; the published
// artifact is the PSD, from which this program derives both an ASCII heat
// map and ad-hoc range statistics.
//
// Run with:
//
//	go run ./examples/locationheatmap
package main

import (
	"fmt"
	"log"
	"math/rand"

	"psd"
)

const (
	gridW = 64
	gridH = 24
)

func main() {
	// Synthetic road-intersection-like data: two dense "states" in opposite
	// corners of the domain, linked corridors, empty in between.
	domain := psd.NewRect(-124.82, 31.33, -103.00, 49.00)
	points := roadishPoints(200_000, domain, 7)

	tree, err := psd.Build(points, domain, psd.Options{
		Kind:    psd.QuadtreeKind, // quad-opt: the paper's best all-rounder
		Height:  8,
		Epsilon: 0.5,
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released %s over %d points (ε=%.2f, %d regions)\n\n",
		tree.Kind(), len(points), tree.PrivacyCost(), tree.NumRegions())

	// Heat map: query the released tree on a display grid. Everything below
	// derives from the private release only.
	fmt.Println("private density map (darker = denser):")
	shades := []rune(" .:-=+*#%@")
	cellW := domain.Width() / gridW
	cellH := domain.Height() / gridH
	var max float64
	cells := make([][]float64, gridH)
	for r := range cells {
		cells[r] = make([]float64, gridW)
		for c := range cells[r] {
			x := domain.Lo.X + float64(c)*cellW
			// Row 0 at the top: flip latitude.
			y := domain.Hi.Y - float64(r+1)*cellH
			v := tree.Count(psd.NewRect(x, y, x+cellW, y+cellH))
			if v < 0 {
				v = 0
			}
			cells[r][c] = v
			if v > max {
				max = v
			}
		}
	}
	for _, row := range cells {
		line := make([]rune, gridW)
		for c, v := range row {
			idx := int(v / (max + 1) * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[c] = shades[idx]
		}
		fmt.Println(string(line))
	}

	// Planning queries: how many intersections in candidate corridors?
	fmt.Println("\ncorridor statistics (private vs true):")
	for _, q := range []struct {
		name string
		rect psd.Rect
	}{
		{"NW state", psd.NewRect(-124.82, 45.5, -116.9, 49.0)},
		{"SE state", psd.NewRect(-109.05, 31.33, -103.0, 37.0)},
		{"east-west strip", psd.NewRect(-124.82, 40.0, -103.0, 40.5)},
	} {
		truth := 0
		for _, p := range points {
			if q.rect.Contains(p) {
				truth++
			}
		}
		fmt.Printf("  %-16s private=%9.1f  true=%7d\n", q.name, tree.Count(q.rect), truth)
	}
}

// roadishPoints emits clustered points in two corner regions of the domain.
func roadishPoints(n int, domain psd.Rect, seed int64) []psd.Point {
	rng := rand.New(rand.NewSource(seed))
	regions := []psd.Rect{
		psd.NewRect(-124.82, 45.5, -116.9, 49.0),  // ≈ Washington
		psd.NewRect(-109.05, 31.33, -103.0, 37.0), // ≈ New Mexico
	}
	var hubs []psd.Point
	for _, reg := range regions {
		for i := 0; i < 15; i++ {
			hubs = append(hubs, psd.Point{
				X: reg.Lo.X + rng.Float64()*reg.Width(),
				Y: reg.Lo.Y + rng.Float64()*reg.Height(),
			})
		}
	}
	pts := make([]psd.Point, 0, n)
	for len(pts) < n {
		h := hubs[rng.Intn(len(hubs))]
		p := psd.Point{
			X: h.X + rng.NormFloat64()*0.25,
			Y: h.Y + rng.NormFloat64()*0.2,
		}
		if domain.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}
