// Salaries shows the paper's broader claim from the introduction: any
// ordered, moderate-to-high-cardinality attribute is "spatial" — whenever
// data can be indexed by a tree, PSD techniques apply. Here a company
// releases a differentially private summary of employee salaries (a
// one-dimensional numeric attribute) and analysts ask band queries: "how
// many employees earn between 60k and 90k?".
//
// One-dimensional data embeds into the 2-D API with a dummy unit y-axis;
// the kd-tree's x-splits then track the salary distribution's quantiles.
//
// Run with:
//
//	go run ./examples/salaries
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"psd"
)

func main() {
	// Synthetic salaries: log-normal-ish body plus an executive tail —
	// exactly the skew that defeats a fixed uniform histogram.
	rng := rand.New(rand.NewSource(5))
	const n = 50_000
	salaries := make([]float64, n)
	for i := range salaries {
		base := 45_000 * (1 + rng.ExpFloat64()*0.7)
		if rng.Float64() < 0.02 {
			base *= 3 + rng.Float64()*5 // executives
		}
		if base >= 1_000_000 {
			base = 999_999
		}
		salaries[i] = base
	}

	// Embed into the plane: x = salary over a fixed public domain, y dummy.
	domain := psd.NewRect(0, 0, 1_000_000, 1)
	points := make([]psd.Point, n)
	for i, s := range salaries {
		points[i] = psd.Point{X: s, Y: 0.5}
	}

	tree, err := psd.Build(points, domain, psd.Options{
		Kind:    psd.KDTree, // data-dependent splits follow the quantiles
		Height:  6,
		Epsilon: 1.0,
		Seed:    6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released %s over %d salaries (ε=%.2f)\n\n", tree.Kind(), n, tree.PrivacyCost())

	bands := [][2]float64{
		{0, 50_000},
		{50_000, 75_000},
		{75_000, 100_000},
		{100_000, 150_000},
		{150_000, 300_000},
		{300_000, 1_000_000},
	}
	fmt.Println("salary band            private count   true count")
	sort.Float64s(salaries)
	for _, b := range bands {
		q := psd.NewRect(b[0], 0, b[1], 1)
		truth := sort.SearchFloat64s(salaries, b[1]) - sort.SearchFloat64s(salaries, b[0])
		fmt.Printf("$%7.0f - $%8.0f %12.1f %12d\n", b[0], b[1], tree.Count(q), truth)
	}

	// Private quantile estimate from the released regions: the x-splits of
	// the kd-tree are private medians, so region boundaries approximate
	// quantiles without further budget.
	rects, counts := tree.Regions()
	var total float64
	for _, c := range counts {
		total += c
	}
	type edge struct{ x, cum float64 }
	edges := make([]edge, 0, len(rects))
	var cum float64
	// Regions of a 1-D kd embedding are x-ordered after sorting.
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rects[order[a]].Lo.X < rects[order[b]].Lo.X })
	for _, i := range order {
		cum += counts[i]
		edges = append(edges, edge{rects[i].Hi.X, cum})
	}
	fmt.Println("\nprivate quantiles (from released region boundaries):")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		target := q * total
		i := sort.Search(len(edges), func(i int) bool { return edges[i].cum >= target })
		if i >= len(edges) {
			i = len(edges) - 1
		}
		trueQ := salaries[int(q*float64(n))]
		fmt.Printf("  p%-3.0f private ≈ $%8.0f   true = $%8.0f\n", q*100, edges[i].x, trueQ)
	}
}
