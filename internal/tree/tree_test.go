package tree

import (
	"testing"
	"testing/quick"

	"psd/internal/geom"
)

func TestNewCompleteSizes(t *testing.T) {
	cases := []struct {
		fanout, height, nodes, leaves int
	}{
		{2, 0, 1, 1},
		{2, 3, 15, 8},
		{4, 2, 21, 16},
		{4, 3, 85, 64},
		{3, 4, 121, 81},
	}
	for _, c := range cases {
		tr, err := NewComplete(c.fanout, c.height)
		if err != nil {
			t.Fatalf("NewComplete(%d,%d): %v", c.fanout, c.height, err)
		}
		if tr.Len() != c.nodes {
			t.Errorf("f=%d h=%d: Len = %d, want %d", c.fanout, c.height, tr.Len(), c.nodes)
		}
		if tr.NumLeaves() != c.leaves {
			t.Errorf("f=%d h=%d: leaves = %d, want %d", c.fanout, c.height, tr.NumLeaves(), c.leaves)
		}
		if tr.Fanout() != c.fanout || tr.Height() != c.height {
			t.Error("accessors disagree with construction")
		}
	}
}

func TestNewCompleteValidation(t *testing.T) {
	if _, err := NewComplete(1, 3); err == nil {
		t.Error("fanout 1 should error")
	}
	if _, err := NewComplete(4, -1); err == nil {
		t.Error("negative height should error")
	}
	if _, err := NewComplete(4, 14); err == nil {
		t.Error("oversized tree should error, got nil")
	}
}

func TestIndexArithmetic(t *testing.T) {
	tr, _ := NewComplete(4, 3)
	// Root.
	if tr.Depth(0) != 0 || tr.Level(0) != 3 || tr.Parent(0) != -1 {
		t.Error("root navigation broken")
	}
	if tr.IsLeaf(0) {
		t.Error("root of height-3 tree is not a leaf")
	}
	// Every node: parent/child relations invert each other.
	for i := 0; i < tr.Len(); i++ {
		d := tr.Depth(i)
		if d+tr.Level(i) != tr.Height() {
			t.Fatalf("node %d: depth %d + level %d != height", i, d, tr.Level(i))
		}
		if tr.IsLeaf(i) {
			if d != tr.Height() {
				t.Fatalf("leaf %d at depth %d", i, d)
			}
			continue
		}
		cs := tr.ChildStart(i)
		for j := 0; j < tr.Fanout(); j++ {
			child := tr.Child(i, j)
			if child != cs+j {
				t.Fatalf("Child(%d,%d) = %d, want %d", i, j, child, cs+j)
			}
			if tr.Parent(child) != i {
				t.Fatalf("Parent(%d) = %d, want %d", child, tr.Parent(child), i)
			}
			if tr.Depth(child) != d+1 {
				t.Fatalf("child depth = %d, want %d", tr.Depth(child), d+1)
			}
		}
	}
}

func TestChildStartPanicsOnLeaf(t *testing.T) {
	tr, _ := NewComplete(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("ChildStart on leaf should panic")
		}
	}()
	tr.ChildStart(tr.LeafIndex(0))
}

func TestDepthRangeCoversArena(t *testing.T) {
	tr, _ := NewComplete(3, 4)
	next := 0
	for d := 0; d <= tr.Height(); d++ {
		lo, hi := tr.DepthRange(d)
		if lo != next {
			t.Fatalf("depth %d starts at %d, want %d", d, lo, next)
		}
		want := 1
		for k := 0; k < d; k++ {
			want *= 3
		}
		if hi-lo != want {
			t.Fatalf("depth %d has %d nodes, want %d", d, hi-lo, want)
		}
		next = hi
	}
	if next != tr.Len() {
		t.Fatalf("depth ranges cover %d nodes, want %d", next, tr.Len())
	}
}

func TestLeafIndex(t *testing.T) {
	tr, _ := NewComplete(4, 2)
	for k := 0; k < tr.NumLeaves(); k++ {
		i := tr.LeafIndex(k)
		if !tr.IsLeaf(i) {
			t.Fatalf("LeafIndex(%d) = %d is not a leaf", k, i)
		}
	}
	if tr.LeafIndex(0) != 5 { // 1 root + 4 internal
		t.Errorf("first leaf index = %d, want 5", tr.LeafIndex(0))
	}
}

func TestAggregateTrueCounts(t *testing.T) {
	tr, _ := NewComplete(2, 3)
	for k := 0; k < tr.NumLeaves(); k++ {
		tr.Nodes[tr.LeafIndex(k)].True = float64(k + 1) // 1..8, total 36
	}
	tr.AggregateTrueCounts()
	if got := tr.Root().True; got != 36 {
		t.Errorf("root count = %v, want 36", got)
	}
	// Spot-check one internal node: first node at depth 1 covers leaves 1..4.
	lo, _ := tr.DepthRange(1)
	if got := tr.Nodes[lo].True; got != 10 {
		t.Errorf("left subtree count = %v, want 10", got)
	}
}

func TestCheckConsistent(t *testing.T) {
	tr, _ := NewComplete(4, 2)
	// Build a proper quadtree geometry.
	root := geom.NewRect(0, 0, 16, 16)
	tr.Nodes[0].Rect = root
	var assign func(i int)
	assign = func(i int) {
		if tr.IsLeaf(i) {
			return
		}
		qs := tr.Nodes[i].Rect.Quadrants()
		cs := tr.ChildStart(i)
		for j := 0; j < 4; j++ {
			tr.Nodes[cs+j].Rect = qs[j]
			assign(cs + j)
		}
	}
	assign(0)
	for k := 0; k < tr.NumLeaves(); k++ {
		tr.Nodes[tr.LeafIndex(k)].True = 1
	}
	tr.AggregateTrueCounts()
	if err := tr.CheckConsistent(true); err != nil {
		t.Fatalf("consistent tree failed check: %v", err)
	}
	// Break a count.
	tr.Nodes[0].True = 999
	if err := tr.CheckConsistent(false); err == nil {
		t.Error("count violation not detected")
	}
	tr.AggregateTrueCounts()
	// Break geometry.
	tr.Nodes[tr.LeafIndex(0)].Rect = geom.NewRect(-5, -5, -1, -1)
	if err := tr.CheckConsistent(false); err == nil {
		t.Error("geometry violation not detected")
	}
}

// Property: for random valid (fanout, height), parent/child index round trips
// hold for every node.
func TestNavigationQuick(t *testing.T) {
	f := func(fan, h uint8) bool {
		fanout := int(fan)%3 + 2 // 2..4
		height := int(h) % 5     // 0..4
		tr, err := NewComplete(fanout, height)
		if err != nil {
			return false
		}
		for i := 1; i < tr.Len(); i++ {
			p := tr.Parent(i)
			found := false
			for j := 0; j < fanout; j++ {
				if tr.Child(p, j) == i {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
