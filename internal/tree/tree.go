// Package tree provides the complete-tree arena that backs every private
// spatial decomposition in this library.
//
// Following Section 3.2 of the paper, a decomposition is a complete tree:
// every leaf-to-root path has the same length and every internal node has
// the same fanout. That regularity lets us store the tree as a flat slice in
// breadth-first order and do all parent/child/level navigation with index
// arithmetic — no pointers, no per-node allocation — which is what makes
// h=10 quadtrees (1.4M nodes) cheap to build, post-process and query.
//
// Level convention matches the paper: leaves are level 0 and the root is
// level h. Depth is the complementary quantity (root depth 0).
package tree

import (
	"fmt"
	"math"

	"psd/internal/geom"
)

// Node is one cell of a decomposition. True counts are retained so the
// evaluation harness can compute errors; a privacy-preserving release
// consists of the rectangles plus the Noisy (or post-processed Est) counts
// of published levels only.
type Node struct {
	// Rect is the region of space this node is responsible for.
	Rect geom.Rect

	// True is the exact number of data points in Rect. It is sensitive and
	// must never be part of a release; it exists for evaluation.
	True float64

	// Noisy is the perturbed count released for this node. It is meaningful
	// only when Published is true.
	Noisy float64

	// Est is the working estimate used to answer queries: the noisy count,
	// or the OLS-post-processed count once post-processing has run.
	Est float64

	// Published records whether this node's level released a count (levels
	// assigned ε_i = 0 release nothing; see "other budget strategies",
	// Section 4.2).
	Published bool

	// Pruned marks nodes whose descendants were cut off by the pruning rule
	// of Section 7; a pruned node is treated as a leaf by queries.
	Pruned bool
}

// Tree is a complete tree of the given fanout and height stored in
// breadth-first order: index 0 is the root, indices [1, 1+f) its children,
// and so on.
type Tree struct {
	fanout int
	height int
	// offsets[d] is the index of the first node at depth d;
	// offsets[height+1] is the total node count.
	offsets []int

	// Nodes holds every node, breadth-first. Exposed directly because the
	// builders, post-processors and queries all iterate it tightly.
	Nodes []Node
}

// MaxNodes caps the arena size to keep accidental huge trees from taking
// down the process (64M nodes ≈ 5 GB of Node).
const MaxNodes = 1 << 26

// NewComplete allocates a complete tree with the given fanout (≥ 2) and
// height (≥ 0; height 0 is a single root/leaf).
func NewComplete(fanout, height int) (*Tree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("tree: fanout %d < 2", fanout)
	}
	if height < 0 {
		return nil, fmt.Errorf("tree: negative height %d", height)
	}
	offsets := make([]int, height+2)
	levelSize := 1
	total := 0
	for d := 0; d <= height; d++ {
		offsets[d] = total
		total += levelSize
		if total > MaxNodes {
			return nil, fmt.Errorf("tree: fanout %d height %d exceeds %d nodes", fanout, height, MaxNodes)
		}
		levelSize *= fanout
	}
	offsets[height+1] = total
	return &Tree{
		fanout:  fanout,
		height:  height,
		offsets: offsets,
		Nodes:   make([]Node, total),
	}, nil
}

// Fanout returns the tree's fanout.
func (t *Tree) Fanout() int { return t.fanout }

// Height returns the tree's height (root level).
func (t *Tree) Height() int { return t.height }

// Len returns the total number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// NumLeaves returns the number of leaves, fanout^height.
func (t *Tree) NumLeaves() int { return t.offsets[t.height+1] - t.offsets[t.height] }

// DepthRange returns the half-open index range [lo, hi) of nodes at depth d.
func (t *Tree) DepthRange(d int) (lo, hi int) {
	return t.offsets[d], t.offsets[d+1]
}

// Depth returns the depth of node i (root = 0).
func (t *Tree) Depth(i int) int {
	// offsets is short (height+2 entries); linear scan beats binary search
	// for the heights this library uses and is branch-predictable.
	for d := t.height; d >= 0; d-- {
		if i >= t.offsets[d] {
			return d
		}
	}
	panic(fmt.Sprintf("tree: index %d out of range", i))
}

// Level returns the paper-convention level of node i (leaf = 0, root = h).
func (t *Tree) Level(i int) int { return t.height - t.Depth(i) }

// Parent returns the index of node i's parent. The root has no parent and
// returns -1.
func (t *Tree) Parent(i int) int {
	if i == 0 {
		return -1
	}
	d := t.Depth(i)
	pos := i - t.offsets[d]
	return t.offsets[d-1] + pos/t.fanout
}

// ChildStart returns the index of the first child of node i. Calling it on
// a leaf is a programmer error and panics.
func (t *Tree) ChildStart(i int) int {
	d := t.Depth(i)
	if d == t.height {
		panic(fmt.Sprintf("tree: node %d is a leaf", i))
	}
	pos := i - t.offsets[d]
	return t.offsets[d+1] + pos*t.fanout
}

// Child returns the index of the j-th child (0 ≤ j < fanout) of node i.
func (t *Tree) Child(i, j int) int { return t.ChildStart(i) + j }

// IsLeaf reports whether node i is at the deepest level.
func (t *Tree) IsLeaf(i int) bool { return i >= t.offsets[t.height] }

// LeafIndex returns the arena index of the k-th leaf (left to right).
func (t *Tree) LeafIndex(k int) int { return t.offsets[t.height] + k }

// Root returns the root node.
func (t *Tree) Root() *Node { return &t.Nodes[0] }

// AggregateTrueCounts recomputes every internal node's True count as the sum
// of its children's, bottom-up. Builders set leaf counts and call this.
func (t *Tree) AggregateTrueCounts() {
	for d := t.height - 1; d >= 0; d-- {
		lo, hi := t.DepthRange(d)
		for i := lo; i < hi; i++ {
			cs := t.ChildStart(i)
			var sum float64
			for j := 0; j < t.fanout; j++ {
				sum += t.Nodes[cs+j].True
			}
			t.Nodes[i].True = sum
		}
	}
}

// CheckConsistent verifies structural invariants: each internal node's Rect
// contains its children's, the children's True counts sum to the parent's,
// and (when strict) the children tile the parent's area. It returns the
// first violation found, or nil.
func (t *Tree) CheckConsistent(strict bool) error {
	for d := 0; d < t.height; d++ {
		lo, hi := t.DepthRange(d)
		for i := lo; i < hi; i++ {
			n := &t.Nodes[i]
			cs := t.ChildStart(i)
			var count, area float64
			for j := 0; j < t.fanout; j++ {
				c := &t.Nodes[cs+j]
				if !n.Rect.ContainsRect(c.Rect) {
					return fmt.Errorf("tree: node %d rect %v escapes parent %d rect %v",
						cs+j, c.Rect, i, n.Rect)
				}
				count += c.True
				area += c.Rect.Area()
			}
			if math.Abs(count-n.True) > 1e-6 {
				return fmt.Errorf("tree: node %d children counts %v != parent count %v",
					i, count, n.True)
			}
			if strict {
				if diff := math.Abs(area - n.Rect.Area()); diff > 1e-6*(1+n.Rect.Area()) {
					return fmt.Errorf("tree: node %d children areas %v != parent area %v",
						i, area, n.Rect.Area())
				}
			}
		}
	}
	return nil
}
