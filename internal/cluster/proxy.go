package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Proxy is the fleet front-end behind cmd/psdproxy: it routes
// /v1/releases/{name}/* to the replica owning {name} on the consistent-
// hash ring, fails over along the ring's successor order with bounded
// retries (exponential backoff + full jitter between attempts), consults
// each backend's health state and circuit breaker before every attempt,
// and degrades gracefully — if no routable replica remains it answers
// 503 with its own Retry-After, and when retries exhaust on backend 503s
// the last backend response (including its Retry-After) passes through
// unmodified.
//
// Because every replica serving the same published release returns bit-
// identical answers (noise is fixed at publish time), failover never
// changes a response body — only availability.
type Proxy struct {
	// Retries is the number of additional attempts after the first
	// (0 means DefaultRetries; negative means none).
	Retries int
	// RetryBase scales the backoff between attempts: the sleep before
	// retry i is a full-jitter draw from [0, RetryBase<<(i-1)] (0 means
	// DefaultRetryBase).
	RetryBase time.Duration
	// AttemptTimeout bounds each individual backend attempt (0 disables).
	AttemptTimeout time.Duration
	// RequestTimeout bounds the whole proxied request including retries
	// and backoff (0 disables).
	RequestTimeout time.Duration
	// RetryAfter is the hint on proxy-originated 503s (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds buffered request and response bodies (default
	// 256 MiB). Bodies are buffered so a mid-body backend failure can
	// still fail over to the next replica.
	MaxBodyBytes int64
	// RolloutReadyTimeout bounds how long a rollout waits for an updated
	// replica's /readyz (0 means DefaultRolloutReadyTimeout).
	RolloutReadyTimeout time.Duration
	// RolloutPoll is the /readyz poll interval during rollouts (0 means
	// DefaultRolloutPoll).
	RolloutPoll time.Duration
	// Client issues backend requests (nil means http.DefaultClient).
	Client *http.Client
	// Logger receives failover and degradation lines (nil means the
	// standard logger).
	Logger *log.Logger

	ring     *Ring
	backends map[string]*Backend
	ordered  []*Backend

	started time.Time
	ready   atomic.Bool

	// Fleet-level counters (per-backend ones live on Backend).
	requests     atomic.Uint64 // proxied /v1/releases requests
	retries      atomic.Uint64 // attempts beyond each request's first
	failovers    atomic.Uint64 // successes answered by a non-owner
	noReplica    atomic.Uint64 // proxy-originated 503s (nothing routable)
	breakerSkips atomic.Uint64 // candidates skipped by an open breaker
	rollouts     atomic.Uint64 // manifest rollouts attempted
	rollbacks    atomic.Uint64 // manifest rollouts rolled back

	// sleep and jitter are seams so the fault tests run without real
	// backoff delays; nil means time.Sleep and a full-jitter draw.
	sleep  func(time.Duration)
	jitter func(time.Duration) time.Duration
}

// Proxy defaults.
const (
	DefaultRetries   = 2
	DefaultRetryBase = 25 * time.Millisecond
	// DefaultProxyMaxBody mirrors serve.DefaultMaxBodyBytes.
	DefaultProxyMaxBody = 256 << 20
	// DefaultProxyRetryAfter is the proxy-originated 503 hint.
	DefaultProxyRetryAfter = time.Second
)

// NewProxy builds a proxy over the given backend base URLs (trailing
// slashes trimmed, duplicates dropped) with vnodes virtual nodes per
// member (<=0 means DefaultVirtualNodes).
func NewProxy(urls []string, vnodes int) *Proxy {
	p := &Proxy{
		backends: make(map[string]*Backend, len(urls)),
		started:  time.Now(),
	}
	members := make([]string, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(u, "/")
		if _, dup := p.backends[u]; dup || u == "" {
			continue
		}
		b := NewBackend(u)
		p.backends[u] = b
		members = append(members, u)
	}
	p.ring = NewRing(members, vnodes)
	for _, m := range p.ring.Members() {
		p.ordered = append(p.ordered, p.backends[m])
	}
	return p
}

// BackendList returns the fleet in stable (sorted-URL) order, for wiring
// the health checker and the rollout coordinator.
func (p *Proxy) BackendList() []*Backend { return p.ordered }

// Ring exposes the routing ring (rollout ordering, tests).
func (p *Proxy) Ring() *Ring { return p.ring }

// SetReady flips the proxy's readiness gate (drain handling in main).
func (p *Proxy) SetReady(ready bool) { p.ready.Store(ready) }

func (p *Proxy) retriesN() int {
	if p.Retries < 0 {
		return 0
	}
	if p.Retries == 0 {
		return DefaultRetries
	}
	return p.Retries
}

func (p *Proxy) retryBase() time.Duration {
	if p.RetryBase > 0 {
		return p.RetryBase
	}
	return DefaultRetryBase
}

func (p *Proxy) maxBody() int64 {
	if p.MaxBodyBytes > 0 {
		return p.MaxBodyBytes
	}
	return DefaultProxyMaxBody
}

func (p *Proxy) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return http.DefaultClient
}

func (p *Proxy) logf(format string, args ...any) {
	if p.Logger != nil {
		p.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (p *Proxy) doSleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.sleep != nil {
		p.sleep(d)
		return
	}
	time.Sleep(d)
}

// drawJitter is the full-jitter draw: uniform in [0, d]. Full jitter
// decorrelates the retry schedules of independent clients — the same
// reasoning as the registry's transient-IO backoff (serve/quarantine.go).
func (p *Proxy) drawJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	if p.jitter != nil {
		return p.jitter(d)
	}
	return time.Duration(rand.Int64N(int64(d) + 1))
}

// retryAfter formats the proxy-originated Retry-After in whole seconds.
func (p *Proxy) retryAfter() string {
	d := p.RetryAfter
	if d <= 0 {
		d = DefaultProxyRetryAfter
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// Handler returns the proxy's routed HTTP handler:
//
//	GET  /healthz          proxy liveness
//	GET  /readyz           503 until >=1 backend is routable (or draining)
//	GET  /stats            fleet counters + per-backend state (JSON)
//	GET  /metrics          the same in Prometheus text exposition format
//	GET  /v1/backends      per-backend health/breaker/counters (JSON)
//	POST /v1/rollout       manifest rollout across the fleet (rollout.go)
//	     /v1/releases...   routed to the owning replica with failover
//
// Query traffic (GET anything under /v1/releases, POST .../batch) is
// proxied; mutating single replicas through the proxy (POST/DELETE on a
// release) is refused with 405 — fleet state changes go through
// manifests so replicas never diverge.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /readyz", p.handleReadyz)
	mux.HandleFunc("GET /stats", p.handleStats)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("GET /v1/backends", p.handleBackends)
	mux.HandleFunc("POST /v1/rollout", p.handleRollout)
	mux.HandleFunc("/v1/releases", p.handleProxy)
	mux.HandleFunc("/v1/releases/", p.handleProxy)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"backends": len(p.ordered),
		"uptime":   time.Since(p.started).Round(time.Millisecond).String(),
	})
}

// routable counts backends the router would consider at all.
func (p *Proxy) routable() int {
	n := 0
	for _, b := range p.ordered {
		if b.State() != Down {
			n++
		}
	}
	return n
}

// handleReadyz: the proxy is ready when it has been marked up (drain
// flips it off) and at least one backend is routable. A fleet that lost
// every replica must tell its own balancer so traffic goes elsewhere.
func (p *Proxy) handleReadyz(w http.ResponseWriter, r *http.Request) {
	routable := p.routable()
	status, state := http.StatusOK, "ready"
	if !p.ready.Load() || routable == 0 {
		status, state = http.StatusServiceUnavailable, "unready"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"routable": routable,
		"backends": len(p.ordered),
	})
}

// routeKey extracts the release name from a /v1/releases path ("" for
// the list endpoint, which any routable replica can answer).
func routeKey(path string) string {
	rest := strings.TrimPrefix(path, "/v1/releases")
	rest = strings.TrimPrefix(rest, "/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// proxiable reports whether the method+path is query traffic the fleet
// serves (reads, plus the read-only POST /batch).
func proxiable(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	return r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/batch")
}

// attemptResult is one buffered backend response.
type attemptResult struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// retriableStatus reports whether a backend status is worth a failover
// attempt on the next replica: 5xx (including orderly 503 sheds — another
// replica may have capacity) and 404 (a replica mid-rollout may not hold
// the release yet; a true miss 404s everywhere and passes through).
func retriableStatus(code int) bool {
	return code >= 500 || code == http.StatusNotFound
}

// breakerFailure reports whether a backend status should count against
// the circuit breaker. Orderly 503s (shed, over-deadline) are the
// backend protecting itself, not malfunctioning; tripping the breaker on
// them would amplify overload into unavailability. 404s are not faults
// either — the replica answered competently.
func breakerFailure(code int) bool {
	return code >= 500 && code != http.StatusServiceUnavailable
}

// handleProxy is the routed query path.
func (p *Proxy) handleProxy(w http.ResponseWriter, r *http.Request) {
	if !proxiable(r) {
		writeError(w, http.StatusMethodNotAllowed,
			"%s %s: fleet state is manifest-driven; roll out releases via POST /v1/rollout",
			r.Method, r.URL.Path)
		return
	}
	p.requests.Add(1)

	// Buffer the request body once so every retry can resend it.
	var reqBody []byte
	if r.Body != nil && r.Body != http.NoBody {
		var err error
		reqBody, err = io.ReadAll(io.LimitReader(r.Body, p.maxBody()+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading request body: %v", err)
			return
		}
		if int64(len(reqBody)) > p.maxBody() {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", p.maxBody())
			return
		}
	}

	ctx := r.Context()
	if p.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.RequestTimeout)
		defer cancel()
	}

	key := routeKey(r.URL.Path)
	candidates := p.ring.Successors(key, len(p.ordered))
	cursor := 0
	// pick scans one full lap of the candidate ring from the cursor for
	// the next routable backend (not down, breaker admitting).
	pick := func() *Backend {
		for scanned := 0; scanned < len(candidates); scanned++ {
			cand := p.backends[candidates[cursor%len(candidates)]]
			cursor++
			if cand.State() == Down {
				continue
			}
			if !cand.Breaker.Allow() {
				p.breakerSkips.Add(1)
				continue
			}
			return cand
		}
		return nil
	}

	attempts := p.retriesN() + 1
	var last *attemptResult
	tried := 0
	for attempt := 0; attempt < attempts; attempt++ {
		b := pick()
		if b == nil {
			break
		}
		if tried > 0 {
			p.retries.Add(1)
			p.doSleep(p.drawJitter(p.retryBase() << (tried - 1)))
			if ctx.Err() != nil {
				break
			}
		}
		tried++
		res, err := p.attempt(ctx, b, r, reqBody)
		if err != nil {
			b.Breaker.Failure()
			b.Failures.Add(1)
			p.logf("proxy: %s %s via %s failed: %v", r.Method, r.URL.Path, b.URL, err)
			if ctx.Err() != nil {
				break // the request's own deadline expired; stop burning replicas
			}
			continue
		}
		if !retriableStatus(res.status) {
			// Success or a definitive client answer (2xx/3xx/4xx-not-404).
			b.Breaker.Success()
			if res.status < 400 && res.backend != candidates[0] {
				p.failovers.Add(1)
			}
			p.forward(w, res)
			return
		}
		b.Failures.Add(1)
		if breakerFailure(res.status) {
			b.Breaker.Failure()
		} else {
			// Orderly 503 or 404: the backend is functioning.
			b.Breaker.Success()
		}
		last = res
	}

	// Exhausted. A buffered backend response passes through unmodified —
	// in particular a shed/deadline 503 keeps its Retry-After exactly as
	// the backend set it, and an everywhere-404 stays a 404. With no
	// response at all (every replica down, breaker-open, or unreachable)
	// the proxy originates its own 503.
	if last != nil {
		p.forward(w, last)
		return
	}
	p.noReplica.Add(1)
	w.Header().Set("Retry-After", p.retryAfter())
	writeError(w, http.StatusServiceUnavailable, "no ready replica for %q", key)
}

// attempt issues one buffered round trip to backend b.
func (p *Proxy) attempt(ctx context.Context, b *Backend, r *http.Request, body []byte) (*attemptResult, error) {
	b.Requests.Add(1)
	actx := ctx
	if p.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
	}
	url := b.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(actx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, p.maxBody()+1))
	if err != nil {
		// Mid-body failure (stalled or killed backend): the buffered
		// response is unusable, so this attempt failed and the next
		// replica gets its turn.
		return nil, fmt.Errorf("reading response body: %w", err)
	}
	if int64(len(respBody)) > p.maxBody() {
		return nil, fmt.Errorf("response body exceeds the %d-byte limit", p.maxBody())
	}
	return &attemptResult{
		status:  resp.StatusCode,
		header:  resp.Header,
		body:    respBody,
		backend: b.URL,
	}, nil
}

// forward writes a buffered backend response to the client, preserving
// status, Content-Type, and Retry-After, and naming the serving replica
// in X-PSD-Backend.
func (p *Proxy) forward(w http.ResponseWriter, res *attemptResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-PSD-Backend", res.backend)
	w.WriteHeader(res.status)
	w.Write(res.body)
}
