package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	members := []string{"http://c:1", "http://a:1", "http://b:1"}
	r1 := NewRing(members, 64)
	r2 := NewRing([]string{"http://b:1", "http://a:1", "http://c:1", "http://a:1"}, 64)
	if !reflect.DeepEqual(r1.Members(), r2.Members()) {
		t.Fatalf("member sets differ: %v vs %v", r1.Members(), r2.Members())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("release-%d", i)
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("key %q: owner depends on construction order: %q vs %q", key, o1, o2)
		}
	}
}

func TestRingSuccessorsDistinctAndComplete(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(members, 32)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("release-%d", i)
		succ := r.Successors(key, len(members))
		if len(succ) != len(members) {
			t.Fatalf("key %q: got %d successors, want %d", key, len(succ), len(members))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %q in %v", key, s, succ)
			}
			seen[s] = true
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %q: first successor %q != owner %q", key, succ[0], r.Owner(key))
		}
	}
}

func TestRingSuccessorsTruncation(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1"}, 16)
	if got := r.Successors("k", 10); len(got) != 2 {
		t.Fatalf("n beyond membership: got %d members, want 2", len(got))
	}
	if got := r.Successors("k", 0); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	empty := NewRing(nil, 16)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner: got %q, want empty", got)
	}
}

// TestRingBalance checks that vnodes spread ownership within a loose
// factor of even: no member owns more than twice its fair share of keys.
func TestRingBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, DefaultVirtualNodes)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("release-%d", i))]++
	}
	fair := keys / len(members)
	for m, c := range counts {
		if c > 2*fair {
			t.Fatalf("member %s owns %d of %d keys (fair share %d): ring badly unbalanced", m, c, keys, fair)
		}
		if c == 0 {
			t.Fatalf("member %s owns no keys", m)
		}
	}
}

// TestRingStabilityUnderMemberLoss: removing one member must not move
// keys between the survivors — the lost member's keys spread, everyone
// else's stay put. This is the property that makes failover cheap.
func TestRingStabilityUnderMemberLoss(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1"}
	full := NewRing(all, 64)
	reduced := NewRing(all[:2], 64)
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("release-%d", i)
		was, is := full.Owner(key), reduced.Owner(key)
		if was == "http://c:1" {
			continue // expected to move
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving members after losing one", moved)
	}
}
