package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"psd"
	"psd/internal/serve"
)

// ---- fixtures -------------------------------------------------------------

func fleetPoints(seed int64, n int) []psd.Point {
	pts := make([]psd.Point, 0, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		pts = append(pts, psd.Point{X: 100 * next(), Y: 100 * next()})
	}
	return pts
}

func fleetTree(t testing.TB, seed int64) *psd.Tree {
	t.Helper()
	tree, err := psd.Build(fleetPoints(seed, 1500), psd.NewRect(0, 0, 100, 100), psd.Options{
		Kind: psd.QuadtreeKind, Height: 4, Epsilon: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func fleetArtifact(t testing.TB, tree *psd.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tree.WriteRelease(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ---- fault-injectable replica --------------------------------------------

// Replica fault modes, applied to /v1/releases traffic only (probe and
// manifest endpoints stay honest, so each fault is isolated to the data
// path it is meant to break).
const (
	modeOK int32 = iota
	mode500
	modeStall    // hold the request until the client gives up
	modeSlowBody // start a response, then break the connection mid-body
	modeShed503  // orderly shed: 503 + Retry-After, like serve's load shedder
)

type replica struct {
	reg  *serve.Registry
	api  *serve.API
	srv  *httptest.Server
	mode atomic.Int32
}

// newReplica starts one real psdserve stack (serve.API over a Registry)
// behind a fault-injection middleware.
func newReplica(t *testing.T, releases map[string]*psd.Tree) *replica {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	rep := &replica{reg: serve.NewRegistry(1 << 10)}
	rep.reg.SetLogger(quiet)
	rep.api = &serve.API{Registry: rep.reg, Logger: quiet}
	for name, tree := range releases {
		if _, err := rep.reg.Register(name, "test", bytes.NewReader(fleetArtifact(t, tree))); err != nil {
			t.Fatal(err)
		}
	}
	inner := rep.api.Handler()
	rep.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/releases") {
			switch rep.mode.Load() {
			case mode500:
				http.Error(w, "injected backend fault", http.StatusInternalServerError)
				return
			case modeStall:
				<-r.Context().Done()
				return
			case modeSlowBody:
				w.Header().Set("Content-Length", "1048576")
				w.WriteHeader(http.StatusOK)
				w.Write([]byte(`{"count":`))
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
				return // short write: net/http kills the connection mid-body
			case modeShed503:
				w.Header().Set("Retry-After", "7")
				http.Error(w, "injected shed", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	rep.api.SetReady(true)
	t.Cleanup(rep.srv.Close)
	return rep
}

// newFleet starts n replicas all serving the same releases, plus a proxy
// configured for fast deterministic tests (no real backoff sleeps).
func newFleet(t *testing.T, n int, releases map[string]*psd.Tree) ([]*replica, *Proxy, *httptest.Server) {
	t.Helper()
	reps := make([]*replica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newReplica(t, releases)
		urls[i] = reps[i].srv.URL
	}
	p := NewProxy(urls, 64)
	p.Logger = log.New(io.Discard, "", 0)
	p.AttemptTimeout = 500 * time.Millisecond
	p.RolloutPoll = 10 * time.Millisecond
	p.RolloutReadyTimeout = 5 * time.Second
	p.sleep = func(time.Duration) {} // backoff math still runs; no wall-clock cost
	p.SetReady(true)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	return reps, p, front
}

func replicaFor(t *testing.T, reps []*replica, url string) *replica {
	t.Helper()
	for _, rep := range reps {
		if rep.srv.URL == url {
			return rep
		}
	}
	t.Fatalf("no replica with URL %s", url)
	return nil
}

func fleetGet(t *testing.T, url string, wantStatus int, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d; body %s", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %s: %v", url, body, err)
		}
	}
	return resp
}

// sweepRects is the query sweep used for bit-identity checks.
func sweepRects() []psd.Rect {
	rects := make([]psd.Rect, 0, 24)
	for i := 0; i < 24; i++ {
		lo := float64(i * 2)
		rects = append(rects, psd.NewRect(lo, lo/2, lo+30, lo/2+45))
	}
	return rects
}

// sweep runs every rect through the proxy and requires status 200 and
// the exact expected count for each — zero client-visible errors.
func sweep(t *testing.T, front, release string, want []float64) {
	t.Helper()
	for i, q := range sweepRects() {
		var out struct {
			Count float64 `json:"count"`
		}
		fleetGet(t, fmt.Sprintf("%s/v1/releases/%s/count?rect=%g,%g,%g,%g",
			front, release, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y), http.StatusOK, &out)
		if out.Count != want[i] {
			t.Fatalf("rect %d: count %v, want %v (answers must be bit-identical across failover)",
				i, out.Count, want[i])
		}
	}
}

// ---- failover -------------------------------------------------------------

// TestFleetFailoverBitIdentical is the core robustness contract: with 3
// replicas serving the same release, faulting the ring owner in any way
// — 5xx, stall, mid-body connection loss, and finally a hard kill — a
// full query sweep through the proxy sees zero errors and bit-identical
// answers throughout.
func TestFleetFailoverBitIdentical(t *testing.T) {
	tree := fleetTree(t, 101)
	reps, p, front := newFleet(t, 3, map[string]*psd.Tree{"alpha": tree})

	want := make([]float64, 0, len(sweepRects()))
	for _, q := range sweepRects() {
		want = append(want, tree.Count(q))
	}

	sweep(t, front.URL, "alpha", want) // healthy fleet first

	owner := replicaFor(t, reps, p.Ring().Owner("alpha"))
	for _, fault := range []struct {
		name string
		mode int32
	}{
		{"5xx", mode500},
		{"stall", modeStall},
		{"slow-body", modeSlowBody},
	} {
		owner.mode.Store(fault.mode)
		sweep(t, front.URL, "alpha", want)
		owner.mode.Store(modeOK)
		// Close the owner's breaker again if the fault tripped it, so the
		// next fault starts from a clean slate.
		owner.srv.CloseClientConnections()
		p.backends[owner.srv.URL].Breaker.Success()
		if t.Failed() {
			t.Fatalf("failed during %s fault", fault.name)
		}
	}

	// Hard kill last: connection refused from now on.
	owner.srv.Close()
	sweep(t, front.URL, "alpha", want)

	st := p.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded despite a faulted owner")
	}
	if st.NoReplica503 != 0 {
		t.Fatalf("%d proxy-originated 503s during single-replica faults, want 0", st.NoReplica503)
	}
}

// TestFleetRetryBudgetExhausted: when every replica 5xxes, the proxy
// spends its whole retry budget and then forwards the last backend
// response rather than synthesizing its own.
func TestFleetRetryBudgetExhausted(t *testing.T) {
	tree := fleetTree(t, 102)
	reps, p, front := newFleet(t, 3, map[string]*psd.Tree{"alpha": tree})
	for _, rep := range reps {
		rep.mode.Store(mode500)
	}
	resp := fleetGet(t, front.URL+"/v1/releases/alpha/count?rect=0,0,50,50",
		http.StatusInternalServerError, nil)
	if got := resp.Header.Get("X-PSD-Backend"); got == "" {
		t.Fatal("exhausted-retries response does not name the last backend")
	}
	st := p.Stats()
	if st.Retries != uint64(DefaultRetries) {
		t.Fatalf("retries = %d, want %d (the full budget)", st.Retries, DefaultRetries)
	}
	total := uint64(0)
	for _, b := range st.Backends {
		total += b.Requests
	}
	if total != uint64(DefaultRetries)+1 {
		t.Fatalf("backend attempts = %d, want %d", total, DefaultRetries+1)
	}
}

// TestFleetBreakerLifecycle drives a backend's breaker through
// closed → open → half-open → closed via real proxied traffic.
func TestFleetBreakerLifecycle(t *testing.T) {
	tree := fleetTree(t, 103)
	reps, p, front := newFleet(t, 2, map[string]*psd.Tree{"alpha": tree})
	owner := replicaFor(t, reps, p.Ring().Owner("alpha"))
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	br := &Breaker{FailureThreshold: 2, OpenFor: time.Minute, now: clk.now}
	p.backends[owner.srv.URL].Breaker = br

	url := front.URL + "/v1/releases/alpha/count?rect=0,0,50,50"
	want := tree.Count(psd.NewRect(0, 0, 50, 50))

	// Two failing rounds trip the owner's breaker; requests still succeed
	// via the other replica.
	owner.mode.Store(mode500)
	var out struct {
		Count float64 `json:"count"`
	}
	fleetGet(t, url, http.StatusOK, &out)
	fleetGet(t, url, http.StatusOK, &out)
	if br.State() != BreakerOpen {
		t.Fatalf("breaker after 2 failed attempts: %v, want open", br.State())
	}

	// While open the owner is skipped entirely: no new attempts hit it.
	before := p.backends[owner.srv.URL].Requests.Load()
	skips := p.Stats().BreakerSkips
	fleetGet(t, url, http.StatusOK, &out)
	if got := p.backends[owner.srv.URL].Requests.Load(); got != before {
		t.Fatalf("open breaker let %d attempts through", got-before)
	}
	if p.Stats().BreakerSkips <= skips {
		t.Fatal("breaker skip not counted")
	}

	// Past the window, one half-open probe goes through; the replica is
	// healthy again, so the probe closes the breaker.
	owner.mode.Store(modeOK)
	clk.advance(time.Minute)
	fleetGet(t, url, http.StatusOK, &out)
	if out.Count != want {
		t.Fatalf("count %v, want %v", out.Count, want)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("breaker after healthy half-open probe: %v, want closed", br.State())
	}
	if got := p.backends[owner.srv.URL].Requests.Load(); got != before+1 {
		t.Fatalf("half-open admitted %d probes, want 1", got-before)
	}
}

// ---- Retry-After semantics (satellite) -----------------------------------

func TestFleetRetryAfterPassthrough(t *testing.T) {
	tree := fleetTree(t, 104)
	reps, _, front := newFleet(t, 3, map[string]*psd.Tree{"alpha": tree})
	url := front.URL + "/v1/releases/alpha/count?rect=0,0,50,50"

	// Backend-originated 503s (orderly shed) pass through unmodified:
	// same status, same Retry-After the backend set.
	for _, rep := range reps {
		rep.mode.Store(modeShed503)
	}
	resp := fleetGet(t, url, http.StatusServiceUnavailable, nil)
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("shed 503 Retry-After = %q, want the backend's own %q", got, "7")
	}
	if resp.Header.Get("X-PSD-Backend") == "" {
		t.Fatal("passthrough 503 does not name its backend")
	}
}

func TestFleetProxyOriginated503(t *testing.T) {
	tree := fleetTree(t, 105)
	reps, p, front := newFleet(t, 2, map[string]*psd.Tree{"alpha": tree})
	p.RetryAfter = 3 * time.Second
	for _, rep := range reps {
		rep.srv.Close()
	}
	resp := fleetGet(t, front.URL+"/v1/releases/alpha/count?rect=0,0,50,50",
		http.StatusServiceUnavailable, nil)
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("proxy-originated 503 Retry-After = %q, want %q", got, "3")
	}
	if resp.Header.Get("X-PSD-Backend") != "" {
		t.Fatal("proxy-originated 503 claims a backend served it")
	}
	if p.Stats().NoReplica503 == 0 {
		t.Fatal("no-replica 503 not counted")
	}
}

// TestFleetUniversal404PassesThrough: a release no replica holds 404s
// everywhere; the proxy must surface that 404, not convert it.
func TestFleetUniversal404PassesThrough(t *testing.T) {
	tree := fleetTree(t, 106)
	_, _, front := newFleet(t, 3, map[string]*psd.Tree{"alpha": tree})
	fleetGet(t, front.URL+"/v1/releases/nosuch/count?rect=0,0,1,1", http.StatusNotFound, nil)
}

// TestFleetRefusesMutations: replica divergence is designed out — state
// changes must go through manifests, so direct mutation is 405.
func TestFleetRefusesMutations(t *testing.T) {
	tree := fleetTree(t, 107)
	_, _, front := newFleet(t, 2, map[string]*psd.Tree{"alpha": tree})
	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/v1/releases/alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE through proxy: status %d, want 405", resp.StatusCode)
	}
}

// ---- health checker integration ------------------------------------------

// TestFleetHealthMarksDeadReplicaDown wires the health checker over a
// real fleet: a killed replica is demoted to down, routing stops trying
// it, queries keep succeeding, and /metrics shows the state.
func TestFleetHealthMarksDeadReplicaDown(t *testing.T) {
	tree := fleetTree(t, 108)
	reps, p, front := newFleet(t, 3, map[string]*psd.Tree{"alpha": tree})
	h := &Health{Backends: p.BackendList(), Timeout: time.Second,
		DownAfter: 3, UpAfter: 2, Logger: log.New(io.Discard, "", 0)}

	dead := reps[1]
	dead.srv.Close()
	for i := 0; i < 3; i++ {
		h.CheckOnce(context.Background())
	}
	db := p.backends[dead.srv.URL]
	if db.State() != Down {
		t.Fatalf("killed replica state %v, want down", db.State())
	}

	want := make([]float64, 0, len(sweepRects()))
	for _, q := range sweepRects() {
		want = append(want, tree.Count(q))
	}
	before := db.Requests.Load()
	sweep(t, front.URL, "alpha", want)
	if got := db.Requests.Load(); got != before {
		t.Fatalf("down replica received %d attempts during the sweep", got-before)
	}

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	downLine := fmt.Sprintf(`psdproxy_backend_state{backend=%q} 0`, dead.srv.URL)
	if !strings.Contains(string(body), downLine) {
		t.Fatalf("/metrics missing %q:\n%s", downLine, body)
	}
	if !strings.Contains(string(body), "psdproxy_backends_routable 2") {
		t.Fatalf("/metrics missing routable=2 gauge:\n%s", body)
	}

	var ready struct {
		Routable int `json:"routable"`
	}
	fleetGet(t, front.URL+"/readyz", http.StatusOK, &ready)
	if ready.Routable != 2 {
		t.Fatalf("readyz routable = %d, want 2", ready.Routable)
	}
}

// ---- manifest rollouts ---------------------------------------------------

// rolloutFixture writes artifact files and returns a manifest over them.
func rolloutFixture(t *testing.T, dir, version string, artifacts map[string][]byte) serve.Manifest {
	t.Helper()
	m := serve.Manifest{Version: version}
	for name, data := range artifacts {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.json", name, version))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m.Releases = append(m.Releases, serve.ManifestEntry{
			Name: name, Path: path, CRC64: serve.ChecksumBytes(data)})
	}
	return m
}

func postRollout(t *testing.T, front string, req RolloutRequest, wantStatus int) RolloutResult {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(front+"/v1/rollout", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/rollout: status %d, want %d; body %s", resp.StatusCode, wantStatus, raw)
	}
	var res RolloutResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding rollout result %s: %v", raw, err)
	}
	return res
}

func manifestVersionOf(t *testing.T, rep *replica) string {
	t.Helper()
	var st serve.ManifestStatus
	fleetGet(t, rep.srv.URL+"/v1/manifest", http.StatusOK, &st)
	return st.Manifest.Version
}

// TestFleetRolloutAndRollback is the rollout contract end to end:
// a clean rollout lands everywhere; a corrupt artifact fails fast
// leaving every replica on the old version; an answer-changing artifact
// passes per-replica apply but fails the bit-compare canary and is
// rolled back automatically; and the same change succeeds when the
// operator explicitly opts into answer changes.
func TestFleetRolloutAndRollback(t *testing.T) {
	dir := t.TempDir()
	treeV1 := fleetTree(t, 109)
	artV1 := fleetArtifact(t, treeV1)
	reps, p, front := newFleet(t, 3, nil)

	// v1: fresh fleet, new release — gated on 200 + finite only.
	m1 := rolloutFixture(t, dir, "v1", map[string][]byte{"alpha": artV1})
	res := postRollout(t, front.URL, RolloutRequest{Manifest: m1}, http.StatusOK)
	if !res.OK || res.Updated != 3 || res.RolledBack {
		t.Fatalf("v1 rollout = %+v", res)
	}
	for _, rep := range reps {
		if v := manifestVersionOf(t, rep); v != "v1" {
			t.Fatalf("replica %s on %q after v1 rollout", rep.srv.URL, v)
		}
	}
	want := make([]float64, 0, len(sweepRects()))
	for _, q := range sweepRects() {
		want = append(want, treeV1.Count(q))
	}
	sweep(t, front.URL, "alpha", want)

	// v2: same bytes republished under a new version (a format/infra
	// migration) — must pass the bit-compare canary on every replica.
	m2 := rolloutFixture(t, dir, "v2", map[string][]byte{"alpha": artV1})
	res = postRollout(t, front.URL, RolloutRequest{Manifest: m2}, http.StatusOK)
	if !res.OK || res.Updated != 3 {
		t.Fatalf("v2 rollout = %+v", res)
	}
	sweep(t, front.URL, "alpha", want)

	// v3: corrupt artifact with an honest checksum. Every replica's apply
	// refuses it (atomic, nothing swapped), so the rollout fails at the
	// first replica with nothing to roll back — the fleet stays on v2.
	m3 := rolloutFixture(t, dir, "v3", map[string][]byte{"alpha": []byte("garbage bytes")})
	res = postRollout(t, front.URL, RolloutRequest{Manifest: m3}, http.StatusBadGateway)
	if res.OK || res.Updated != 0 || res.RolledBack {
		t.Fatalf("corrupt rollout = %+v", res)
	}
	for _, rep := range reps {
		if v := manifestVersionOf(t, rep); v != "v2" {
			t.Fatalf("replica %s on %q after corrupt rollout, want v2", rep.srv.URL, v)
		}
	}
	sweep(t, front.URL, "alpha", want)

	// v4: a *valid* artifact with different answers. Apply succeeds on the
	// first replica, the bit-compare canary catches the changed answers,
	// and the rollout rolls that replica back to v2 automatically.
	treeV4 := fleetTree(t, 110)
	artV4 := fleetArtifact(t, treeV4)
	m4 := rolloutFixture(t, dir, "v4", map[string][]byte{"alpha": artV4})
	res = postRollout(t, front.URL, RolloutRequest{Manifest: m4}, http.StatusBadGateway)
	if res.OK || !res.RolledBack {
		t.Fatalf("answer-changing rollout = %+v, want canary failure + rollback", res)
	}
	if !strings.Contains(res.Error, "canary") {
		t.Fatalf("rollout error %q does not name the canary", res.Error)
	}
	for _, rep := range reps {
		if v := manifestVersionOf(t, rep); v != "v2" {
			t.Fatalf("replica %s on %q after rolled-back rollout, want v2", rep.srv.URL, v)
		}
	}
	sweep(t, front.URL, "alpha", want) // answers unchanged, fleet homogeneous
	if got := p.Stats().Rollbacks; got != 1 {
		t.Fatalf("rollback counter = %d, want 1", got)
	}

	// v4 again with canary=ok: the operator explicitly allows the data
	// change, so the same manifest now lands everywhere.
	res = postRollout(t, front.URL, RolloutRequest{Manifest: m4, Canary: CanaryOK}, http.StatusOK)
	if !res.OK || res.Updated != 3 {
		t.Fatalf("canary=ok rollout = %+v", res)
	}
	want4 := make([]float64, 0, len(sweepRects()))
	for _, q := range sweepRects() {
		want4 = append(want4, treeV4.Count(q))
	}
	sweep(t, front.URL, "alpha", want4)
}

// TestFleetMidRolloutReplicaDeath: a replica dying between rollout steps
// fails the rollout and rolls the already-updated replicas back — the
// surviving fleet ends homogeneous on the old version.
func TestFleetMidRolloutReplicaDeath(t *testing.T) {
	dir := t.TempDir()
	tree := fleetTree(t, 111)
	art := fleetArtifact(t, tree)
	reps, p, front := newFleet(t, 3, nil)

	m1 := rolloutFixture(t, dir, "v1", map[string][]byte{"alpha": art})
	res := postRollout(t, front.URL, RolloutRequest{Manifest: m1}, http.StatusOK)
	if !res.OK {
		t.Fatalf("v1 rollout = %+v", res)
	}

	// Kill the second replica in rollout order, then roll out v2. The
	// first replica updates; the dead one fails its snapshot step; the
	// rollout must roll the first back to v1 and never touch the third.
	var deadURL string
	for i, b := range p.BackendList() {
		if i == 1 {
			deadURL = b.URL
			replicaFor(t, reps, b.URL).srv.Close()
		}
	}
	m2 := rolloutFixture(t, dir, "v2", map[string][]byte{"alpha": art})
	res = postRollout(t, front.URL, RolloutRequest{Manifest: m2}, http.StatusBadGateway)
	if res.OK || !res.RolledBack || res.Updated != 1 {
		t.Fatalf("mid-death rollout = %+v, want 1 updated then rolled back", res)
	}
	for _, b := range res.Backends {
		switch b.URL {
		case p.BackendList()[0].URL:
			if b.Status != "rolled-back" {
				t.Fatalf("first replica status %q, want rolled-back", b.Status)
			}
		case deadURL:
			if b.Status != "failed" {
				t.Fatalf("dead replica status %q, want failed", b.Status)
			}
		default:
			if b.Status != "not-attempted" {
				t.Fatalf("third replica status %q, want not-attempted", b.Status)
			}
		}
	}
	for _, rep := range reps {
		if rep.srv.URL == deadURL {
			continue
		}
		if v := manifestVersionOf(t, rep); v != "v1" {
			t.Fatalf("surviving replica %s on %q, want v1", rep.srv.URL, v)
		}
	}
	if p.Stats().Rollbacks != 1 {
		t.Fatalf("rollback counter = %d, want 1", p.Stats().Rollbacks)
	}
}

// TestProxyMetricsExposition: the proxy's /metrics carries the fleet
// counters in valid exposition shape.
func TestProxyMetricsExposition(t *testing.T) {
	tree := fleetTree(t, 112)
	_, _, front := newFleet(t, 2, map[string]*psd.Tree{"alpha": tree})
	fleetGet(t, front.URL+"/v1/releases/alpha/count?rect=0,0,50,50", http.StatusOK, nil)

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, wantSub := range []string{
		"# TYPE psdproxy_requests_total counter",
		"psdproxy_requests_total 1",
		"psdproxy_backends 2",
		"# TYPE psdproxy_backend_requests_total counter",
		"psdproxy_backend_state{backend=",
	} {
		if !strings.Contains(text, wantSub) {
			t.Fatalf("/metrics missing %q:\n%s", wantSub, text)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}
