package cluster

import (
	"fmt"
	"net/http"
	"testing"

	"psd"
)

// TestFleetVersionedRouting pins the fleet behavior of versioned releases
// published by the ingest tier: "name@vN" keys route through the ring like
// any other release name, default resolution and ?version= time travel work
// through the proxy, and a faulted owner fails over with bit-identical
// answers for every addressing mode.
func TestFleetVersionedRouting(t *testing.T) {
	tree1, tree2 := fleetTree(t, 201), fleetTree(t, 202)
	releases := map[string]*psd.Tree{"taxi@v1": tree1, "taxi@v2": tree2}
	reps, p, front := newFleet(t, 3, releases)

	want1 := make([]float64, 0, len(sweepRects()))
	want2 := make([]float64, 0, len(sweepRects()))
	for _, q := range sweepRects() {
		want1 = append(want1, tree1.Count(q))
		want2 = append(want2, tree2.Count(q))
	}

	// Default resolution through the proxy: the bare base name serves the
	// latest version. The versioned keys answer directly too.
	sweep(t, front.URL, "taxi", want2)
	sweep(t, front.URL, "taxi@v1", want1)
	sweep(t, front.URL, "taxi@v2", want2)

	// Time travel through the proxy: ?version= reaches the replica intact.
	for i, q := range sweepRects() {
		var out struct {
			Release string  `json:"release"`
			Count   float64 `json:"count"`
		}
		fleetGet(t, fmt.Sprintf("%s/v1/releases/taxi/count?version=v1&rect=%g,%g,%g,%g",
			front.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y), http.StatusOK, &out)
		if out.Release != "taxi@v1" || out.Count != want1[i] {
			t.Fatalf("time travel rect %d: %+v, want taxi@v1=%v", i, out, want1[i])
		}
	}

	// The versions listing is read traffic and proxies like any GET.
	var vlist struct {
		Versions []struct {
			Version int  `json:"version"`
			Active  bool `json:"active"`
		} `json:"versions"`
	}
	fleetGet(t, front.URL+"/v1/releases/taxi/versions", http.StatusOK, &vlist)
	if len(vlist.Versions) != 2 || !vlist.Versions[1].Active {
		t.Fatalf("versions through the proxy = %+v", vlist.Versions)
	}

	// Promote is a mutation: the proxy must refuse it, not spray it at one
	// arbitrary replica (a pin applied to a single backend would make
	// default resolution differ per replica — exactly the split brain the
	// read-only proxy exists to prevent).
	resp, err := http.Post(front.URL+"/v1/releases/taxi/promote?version=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("promote through the proxy: status %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}

	// Kill the owner of the bare key: every addressing mode keeps answering
	// bit-identically. Note "taxi", "taxi@v1" and "taxi@v2" hash to
	// different ring owners — each failover is its own route.
	replicaFor(t, reps, p.Ring().Owner("taxi")).srv.Close()
	sweep(t, front.URL, "taxi", want2)
	sweep(t, front.URL, "taxi@v1", want1)
	sweep(t, front.URL, "taxi@v2", want2)
	if st := p.Stats(); st.NoReplica503 != 0 {
		t.Fatalf("%d proxy-originated 503s with two replicas still up, want 0", st.NoReplica503)
	}
}
