package cluster

import (
	"bytes"
	"net/http"
	"time"

	"psd/internal/promtext"
)

// BackendInfo is the JSON shape of one backend in /stats and
// /v1/backends.
type BackendInfo struct {
	URL          string    `json:"url"`
	State        string    `json:"state"`
	Breaker      string    `json:"breaker"`
	BreakerTrips uint64    `json:"breaker_trips"`
	Requests     uint64    `json:"requests"`
	Failures     uint64    `json:"failures"`
	Probes       uint64    `json:"probes"`
	ProbeFails   uint64    `json:"probe_fails"`
	LastProbe    time.Time `json:"last_probe,omitzero"`
	LastError    string    `json:"last_error,omitempty"`
}

// ProxyStats is the JSON shape of the proxy's GET /stats.
type ProxyStats struct {
	Ready        bool          `json:"ready"`
	Backends     []BackendInfo `json:"backends"`
	Routable     int           `json:"routable"`
	Requests     uint64        `json:"requests"`
	Retries      uint64        `json:"retries"`
	Failovers    uint64        `json:"failovers"`
	NoReplica503 uint64        `json:"no_replica_503"`
	BreakerSkips uint64        `json:"breaker_skips"`
	Rollouts     uint64        `json:"rollouts"`
	Rollbacks    uint64        `json:"rollbacks"`
	Uptime       string        `json:"uptime"`
}

func infoOf(b *Backend) BackendInfo {
	lastProbe, lastErr := b.LastProbe()
	return BackendInfo{
		URL:          b.URL,
		State:        b.State().String(),
		Breaker:      b.Breaker.State().String(),
		BreakerTrips: b.Breaker.Trips(),
		Requests:     b.Requests.Load(),
		Failures:     b.Failures.Load(),
		Probes:       b.Probes.Load(),
		ProbeFails:   b.ProbeFails.Load(),
		LastProbe:    lastProbe,
		LastError:    lastErr,
	}
}

// Stats returns a snapshot of the proxy's fleet counters.
func (p *Proxy) Stats() ProxyStats {
	st := ProxyStats{
		Ready:        p.ready.Load(),
		Routable:     p.routable(),
		Requests:     p.requests.Load(),
		Retries:      p.retries.Load(),
		Failovers:    p.failovers.Load(),
		NoReplica503: p.noReplica.Load(),
		BreakerSkips: p.breakerSkips.Load(),
		Rollouts:     p.rollouts.Load(),
		Rollbacks:    p.rollbacks.Load(),
		Uptime:       time.Since(p.started).Round(time.Millisecond).String(),
	}
	for _, b := range p.ordered {
		st.Backends = append(st.Backends, infoOf(b))
	}
	return st
}

func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.Stats())
}

func (p *Proxy) handleBackends(w http.ResponseWriter, r *http.Request) {
	infos := make([]BackendInfo, 0, len(p.ordered))
	for _, b := range p.ordered {
		infos = append(infos, infoOf(b))
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": infos})
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// healthGauge encodes a health state for the psdproxy_backend_state
// gauge: 2 healthy, 1 suspect, 0 down — "bigger is better", so alerting
// on `< 2` reads naturally.
func healthGauge(s HealthState) float64 {
	switch s {
	case Healthy:
		return 2
	case Suspect:
		return 1
	}
	return 0
}

// breakerGauge encodes a breaker state: 0 closed, 1 half-open, 2 open.
func breakerGauge(s BreakerState) float64 {
	switch s {
	case BreakerClosed:
		return 0
	case BreakerHalfOpen:
		return 1
	}
	return 2
}

// handleMetrics is the proxy's Prometheus exposition: fleet counters
// plus per-backend health, breaker, and traffic gauges.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	pw := promtext.NewWriter(&buf)
	st := p.Stats()

	pw.Family("psdproxy_ready", "gauge", "1 when the proxy reports ready, 0 while draining or with no routable backend.")
	pw.Sample("psdproxy_ready", nil, boolGauge(st.Ready))
	pw.Family("psdproxy_backends", "gauge", "Configured backend count.")
	pw.Sample("psdproxy_backends", nil, float64(len(st.Backends)))
	pw.Family("psdproxy_backends_routable", "gauge", "Backends not marked down by the health checker.")
	pw.Sample("psdproxy_backends_routable", nil, float64(st.Routable))
	pw.Family("psdproxy_requests_total", "counter", "Proxied /v1/releases requests.")
	pw.Sample("psdproxy_requests_total", nil, float64(st.Requests))
	pw.Family("psdproxy_retries_total", "counter", "Backend attempts beyond each request's first.")
	pw.Sample("psdproxy_retries_total", nil, float64(st.Retries))
	pw.Family("psdproxy_failovers_total", "counter", "Requests answered by a replica other than the ring owner.")
	pw.Sample("psdproxy_failovers_total", nil, float64(st.Failovers))
	pw.Family("psdproxy_no_replica_503_total", "counter", "Proxy-originated 503s: no routable replica produced a response.")
	pw.Sample("psdproxy_no_replica_503_total", nil, float64(st.NoReplica503))
	pw.Family("psdproxy_breaker_skips_total", "counter", "Candidate backends skipped by an open circuit breaker.")
	pw.Sample("psdproxy_breaker_skips_total", nil, float64(st.BreakerSkips))
	pw.Family("psdproxy_rollouts_total", "counter", "Manifest rollouts attempted.")
	pw.Sample("psdproxy_rollouts_total", nil, float64(st.Rollouts))
	pw.Family("psdproxy_rollbacks_total", "counter", "Manifest rollouts rolled back.")
	pw.Sample("psdproxy_rollbacks_total", nil, float64(st.Rollbacks))

	label := func(b *Backend) []promtext.Label {
		return []promtext.Label{{Name: "backend", Value: b.URL}}
	}
	perBackend := []struct {
		name, typ, help string
		value           func(*Backend) float64
	}{
		{"psdproxy_backend_state", "gauge", "Health state: 2 healthy, 1 suspect, 0 down.",
			func(b *Backend) float64 { return healthGauge(b.State()) }},
		{"psdproxy_backend_up", "gauge", "1 when the backend is routable (not down).",
			func(b *Backend) float64 { return boolGauge(b.State() != Down) }},
		{"psdproxy_backend_breaker_state", "gauge", "Breaker: 0 closed, 1 half-open, 2 open.",
			func(b *Backend) float64 { return breakerGauge(b.Breaker.State()) }},
		{"psdproxy_backend_breaker_trips_total", "counter", "Times the backend's breaker opened.",
			func(b *Backend) float64 { return float64(b.Breaker.Trips()) }},
		{"psdproxy_backend_requests_total", "counter", "Attempts forwarded to the backend.",
			func(b *Backend) float64 { return float64(b.Requests.Load()) }},
		{"psdproxy_backend_failures_total", "counter", "Forwarded attempts that failed (transport error or 5xx).",
			func(b *Backend) float64 { return float64(b.Failures.Load()) }},
		{"psdproxy_backend_probes_total", "counter", "Health probes issued to the backend.",
			func(b *Backend) float64 { return float64(b.Probes.Load()) }},
		{"psdproxy_backend_probe_failures_total", "counter", "Health probes that failed.",
			func(b *Backend) float64 { return float64(b.ProbeFails.Load()) }},
	}
	for _, fam := range perBackend {
		pw.Family(fam.name, fam.typ, fam.help)
		for _, b := range p.ordered {
			pw.Sample(fam.name, label(b), fam.value(b))
		}
	}
	if pw.Err() != nil {
		writeError(w, http.StatusInternalServerError, "rendering metrics: %v", pw.Err())
		return
	}
	w.Header().Set("Content-Type", promtext.ContentType)
	w.Write(buf.Bytes())
}
