// Package cluster implements the fleet layer over psdserve replicas: a
// consistent-hash ring routing each release name to an owning replica, an
// active health checker driving healthy→suspect→down transitions off
// /readyz probes, a per-backend circuit breaker, the psdproxy request
// path (bounded retries with exponential backoff + full jitter, failover
// along the ring, Retry-After semantics), and manifest-driven rollouts
// with canary gating and automatic rollback.
//
// The layer leans on one property of the paper's publish-then-serve
// split: a release's noise is fixed at publish time, so every replica
// serving the same artifact returns bit-identical answers. Failover is
// therefore semantically free — any ready replica is as correct as the
// owner — and everything in this package is pure robustness engineering.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the ring's per-member vnode count when none is
// given: enough that a 3-replica fleet splits release ownership within a
// few percent of even, cheap enough that ring construction is instant.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a fixed member set.
// Each member is hashed at VirtualNodes positions; a key's owner is the
// member whose vnode follows the key's hash clockwise. Membership is
// fixed at construction (psdproxy's fleet is flag-configured); liveness
// is the health checker's job, not the ring's — routing walks the ring's
// successor order and skips dead members at request time, so a down
// replica needs no ring rebuild and its keys spread over the survivors.
type Ring struct {
	members []string
	hashes  []uint64 // sorted vnode positions
	owner   []int    // owner[i] = members index of hashes[i]
}

// NewRing builds a ring over members (deduplicated, order-independent)
// with the given vnode count per member (<=0 means DefaultVirtualNodes).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		hashes:  make([]uint64, 0, len(uniq)*vnodes),
		owner:   make([]int, 0, len(uniq)*vnodes),
	}
	type vnode struct {
		h     uint64
		owner int
	}
	vns := make([]vnode, 0, len(uniq)*vnodes)
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			vns = append(vns, vnode{hash64(m + "#" + strconv.Itoa(v)), i})
		}
	}
	// Ties broken by member order so the ring is deterministic even on a
	// (vanishingly unlikely) vnode hash collision.
	sort.Slice(vns, func(a, b int) bool {
		if vns[a].h != vns[b].h {
			return vns[a].h < vns[b].h
		}
		return vns[a].owner < vns[b].owner
	})
	for _, vn := range vns {
		r.hashes = append(r.hashes, vn.h)
		r.owner = append(r.owner, vn.owner)
	}
	return r
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// Successors returns up to n distinct members in the key's failover
// order: the owner first, then each further member in clockwise vnode
// order. Every key has a deterministic preference permutation of the
// whole fleet, so retries always know who is next.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	// First vnode strictly after h, wrapping.
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] > h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		idx := r.owner[(start+i)%len(r.hashes)]
		if !taken[idx] {
			taken[idx] = true
			out = append(out, r.members[idx])
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
