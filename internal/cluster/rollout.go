package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"psd/internal/serve"
)

// Manifest rollouts, fleet side. The coordinator advances a manifest
// replica-by-replica: each replica pulls, verifies, and atomically
// swaps the artifact set (serve.Registry.ApplyManifest — a failed apply
// leaves the replica untouched), and the coordinator only moves to the
// next replica once the updated one (a) reports /readyz, (b) reports
// the new manifest version, and (c) answers the canary queries
// bit-identically to the pre-rollout fleet. Any gate failing rolls the
// already-updated replicas back to their previous manifests and reports
// the rollout failed — the fleet is left homogeneous on the old
// version, never split.
//
// The bit-compare gate leans on the serving invariant: a published
// release's answers are deterministic, so a rollout that does not
// intend to change answers (format migration, re-publication,
// infrastructure moves) must produce byte-for-byte equal counts. A
// rollout that *does* change data sets "canary": "ok" to gate on
// availability only.

// Canary modes.
const (
	// CanaryBitCompare requires the updated replica's canary answers to
	// equal the pre-rollout fleet's bit-for-bit (the default).
	CanaryBitCompare = "bitcompare"
	// CanaryOK only requires canary queries to answer 200 with finite
	// counts — for rollouts that intentionally change release data.
	CanaryOK = "ok"
)

// RolloutRequest is the body of POST /v1/rollout.
type RolloutRequest struct {
	Manifest serve.Manifest `json:"manifest"`
	// Canary is the gating mode: CanaryBitCompare (default) or CanaryOK.
	Canary string `json:"canary,omitempty"`
}

// BackendRollout reports one backend's fate in a rollout.
type BackendRollout struct {
	URL string `json:"url"`
	// Status: "updated", "failed", "rolled-back", "not-attempted", or
	// "rollback-failed" (the bad place: a replica that could not be
	// restored — it keeps serving the new version and needs an operator).
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// RolloutResult is the JSON shape of POST /v1/rollout's response.
type RolloutResult struct {
	Version    string           `json:"version"`
	OK         bool             `json:"ok"`
	Updated    int              `json:"updated"`
	RolledBack bool             `json:"rolled_back"`
	Backends   []BackendRollout `json:"backends"`
	Error      string           `json:"error,omitempty"`
}

// Rollout gate knobs (fields would be overkill as flags; tests shorten
// them through the proxy struct).
const (
	DefaultRolloutReadyTimeout = 30 * time.Second
	DefaultRolloutPoll         = 100 * time.Millisecond
)

// rolloutGates carries the per-rollout state: canary URLs and their
// pre-rollout baseline answers.
type rolloutGates struct {
	mode string
	// checks are canary queries: path+query (relative), with the
	// baseline answer for bit-comparison (nil when the release is new to
	// the fleet, in which case only 200+finite is required).
	checks []canaryCheck
}

type canaryCheck struct {
	release  string
	rectSpec string
	baseline *float64
}

func (p *Proxy) handleRollout(w http.ResponseWriter, r *http.Request) {
	var req RolloutRequest
	body := http.MaxBytesReader(w, r.Body, p.maxBody())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad rollout body: %v", err)
		return
	}
	if err := req.Manifest.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid manifest: %v", err)
		return
	}
	switch req.Canary {
	case "":
		req.Canary = CanaryBitCompare
	case CanaryBitCompare, CanaryOK:
	default:
		writeError(w, http.StatusBadRequest, "unknown canary mode %q (want %q or %q)",
			req.Canary, CanaryBitCompare, CanaryOK)
		return
	}
	res := p.rollout(r.Context(), req)
	status := http.StatusOK
	if !res.OK {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, res)
}

// rollout runs the coordinator. It never leaves the fleet split on
// purpose: the first gate failure triggers a rollback of everything
// updated so far.
func (p *Proxy) rollout(ctx context.Context, req RolloutRequest) *RolloutResult {
	p.rollouts.Add(1)
	res := &RolloutResult{Version: req.Manifest.Version}
	// The slice is fully allocated up front so statusOf's pointers into it
	// stay valid (append would reallocate from under them).
	res.Backends = make([]BackendRollout, len(p.ordered))
	statusOf := make(map[string]*BackendRollout, len(p.ordered))
	for i, b := range p.ordered {
		res.Backends[i] = BackendRollout{URL: b.URL, Status: "not-attempted"}
		statusOf[b.URL] = &res.Backends[i]
	}

	// Each backend's pre-rollout manifest is snapshotted just before its
	// own update (not in a fleet-wide pre-pass): a replica that dies
	// mid-rollout then fails at its own step — rolling back only the
	// replicas actually updated — instead of blocking the whole rollout
	// up front.
	snapshots := make(map[string]*serve.Manifest, len(p.ordered))

	gates, err := p.canaryBaselines(ctx, req)
	if err != nil {
		res.Error = fmt.Sprintf("canary baseline: %v", err)
		return res
	}

	// applied tracks replicas whose ApplyManifest succeeded — the set that
	// must be restored on failure. A replica whose own post-apply gate
	// (readyz, version, canary) fails is already in this set, so it rolls
	// back along with its predecessors.
	var applied []*Backend
	fail := func(b *Backend, what string, err error) *RolloutResult {
		res.Error = fmt.Sprintf("%s: %s: %v", b.URL, what, err)
		statusOf[b.URL].Status = "failed"
		statusOf[b.URL].Error = res.Error
		p.logf("rollout %q: %s — rolling back %d applied replica(s)",
			req.Manifest.Version, res.Error, len(applied))
		if len(applied) > 0 {
			p.rollbacks.Add(1)
			res.RolledBack = true
			for _, ab := range applied {
				if rerr := p.restore(ctx, ab.URL, snapshots[ab.URL]); rerr != nil {
					statusOf[ab.URL].Status = "rollback-failed"
					statusOf[ab.URL].Error = rerr.Error()
					p.logf("rollout %q: ROLLBACK FAILED on %s: %v (replica left on new version)",
						req.Manifest.Version, ab.URL, rerr)
				} else {
					statusOf[ab.URL].Status = "rolled-back"
				}
			}
		}
		return res
	}

	for _, b := range p.ordered {
		snap, err := p.fetchManifest(ctx, b.URL)
		if err != nil {
			return fail(b, "snapshot", err)
		}
		snapshots[b.URL] = snap // nil when none applied yet
		if err := p.applyManifest(ctx, b.URL, req.Manifest); err != nil {
			// ApplyManifest is atomic on the replica: a failed apply changed
			// nothing there, so b itself needs no rollback.
			return fail(b, "apply", err)
		}
		applied = append(applied, b)
		if err := p.awaitReady(ctx, b.URL); err != nil {
			return fail(b, "readyz", err)
		}
		m, err := p.fetchManifest(ctx, b.URL)
		if err != nil {
			return fail(b, "verify version", err)
		}
		if m == nil || m.Version != req.Manifest.Version {
			got := "<none>"
			if m != nil {
				got = m.Version
			}
			return fail(b, "verify version", fmt.Errorf("replica reports %q, want %q", got, req.Manifest.Version))
		}
		if err := p.runCanary(ctx, b.URL, gates); err != nil {
			return fail(b, "canary", err)
		}
		statusOf[b.URL].Status = "updated"
		res.Updated++
		p.logf("rollout %q: %s updated (%d/%d)", req.Manifest.Version, b.URL, res.Updated, len(p.ordered))
	}
	res.OK = true
	return res
}

// canaryBaselines builds the canary query set and, in bit-compare mode,
// records the pre-rollout fleet's answers. Canary rectangles per
// release: the release's full domain plus its lower-left quadrant —
// one query that touches every subtree root and one that forces a real
// decomposition walk.
func (p *Proxy) canaryBaselines(ctx context.Context, req RolloutRequest) (*rolloutGates, error) {
	gates := &rolloutGates{mode: req.Canary}
	// Domains of currently-served releases, from the first backend that
	// answers (every replica agrees bit-for-bit on served content).
	type relInfo struct {
		Name   string     `json:"name"`
		Domain [4]float64 `json:"domain"`
	}
	var infos []relInfo
	var src string // the replica that answered; baselines come from it too
	var listErr error
	for _, b := range p.ordered {
		if b.State() == Down {
			continue
		}
		var out struct {
			Releases []relInfo `json:"releases"`
		}
		if listErr = p.getJSON(ctx, b.URL+"/v1/releases", &out); listErr == nil {
			infos = out.Releases
			src = b.URL
			break
		}
	}
	if src == "" {
		return nil, fmt.Errorf("no replica answered the release listing: %w", listErr)
	}
	domains := make(map[string][4]float64, len(infos))
	for _, in := range infos {
		domains[in.Name] = in.Domain
	}
	for _, e := range req.Manifest.Releases {
		d, served := domains[e.Name]
		if !served {
			// New to the fleet: no baseline; gated on 200+finite only.
			gates.checks = append(gates.checks, canaryCheck{release: e.Name,
				rectSpec: "-1e18,-1e18,1e18,1e18"})
			continue
		}
		mid := [2]float64{(d[0] + d[2]) / 2, (d[1] + d[3]) / 2}
		rects := []string{
			fmt.Sprintf("%g,%g,%g,%g", d[0], d[1], d[2], d[3]),
			fmt.Sprintf("%g,%g,%g,%g", d[0], d[1], mid[0], mid[1]),
		}
		for _, spec := range rects {
			c := canaryCheck{release: e.Name, rectSpec: spec}
			if req.Canary == CanaryBitCompare {
				val, err := p.canaryCount(ctx, src, e.Name, spec)
				if err != nil {
					return nil, fmt.Errorf("baseline for %q rect %s: %w", e.Name, spec, err)
				}
				c.baseline = &val
			}
			gates.checks = append(gates.checks, c)
		}
	}
	return gates, nil
}

// runCanary checks every canary query directly against one updated
// replica.
func (p *Proxy) runCanary(ctx context.Context, baseURL string, gates *rolloutGates) error {
	for _, c := range gates.checks {
		got, err := p.canaryCount(ctx, baseURL, c.release, c.rectSpec)
		if err != nil {
			return fmt.Errorf("release %q rect %s: %w", c.release, c.rectSpec, err)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			return fmt.Errorf("release %q rect %s: non-finite count %v", c.release, c.rectSpec, got)
		}
		if c.baseline != nil && got != *c.baseline {
			return fmt.Errorf("release %q rect %s: answer changed %v -> %v (bit-compare canary; set canary=%q to allow data changes)",
				c.release, c.rectSpec, *c.baseline, got, CanaryOK)
		}
	}
	return nil
}

// canaryCount asks one replica one canary query.
func (p *Proxy) canaryCount(ctx context.Context, baseURL, release, rectSpec string) (float64, error) {
	var out struct {
		Count float64 `json:"count"`
	}
	url := fmt.Sprintf("%s/v1/releases/%s/count?rect=%s", baseURL, release, rectSpec)
	if err := p.getJSON(ctx, url, &out); err != nil {
		return 0, err
	}
	return out.Count, nil
}

// fetchManifest reads a replica's current manifest; (nil, nil) when the
// replica has none applied.
func (p *Proxy) fetchManifest(ctx context.Context, baseURL string) (*serve.Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/manifest", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/manifest: status %d", resp.StatusCode)
	}
	var st serve.ManifestStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st.Manifest, nil
}

// applyManifest POSTs a manifest to one replica.
func (p *Proxy) applyManifest(ctx context.Context, baseURL string, m serve.Manifest) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/manifest", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("POST /v1/manifest: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// restore rolls one replica back to its pre-rollout manifest. A replica
// that had none cannot be restored by manifest — but a replica without
// a manifest also can't have been displaced by one that failed to
// apply, so this only triggers when the new manifest applied cleanly
// and a later replica's gate failed; report it rather than guess.
func (p *Proxy) restore(ctx context.Context, baseURL string, old *serve.Manifest) error {
	if old == nil {
		return fmt.Errorf("no previous manifest to restore")
	}
	if err := p.applyManifest(ctx, baseURL, *old); err != nil {
		return err
	}
	return p.awaitReady(ctx, baseURL)
}

// awaitReady polls a replica's /readyz until it answers 200 or the
// rollout gate times out.
func (p *Proxy) awaitReady(ctx context.Context, baseURL string) error {
	timeout := p.RolloutReadyTimeout
	if timeout <= 0 {
		timeout = DefaultRolloutReadyTimeout
	}
	poll := p.RolloutPoll
	if poll <= 0 {
		poll = DefaultRolloutPoll
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		rctx, cancel := context.WithTimeout(ctx, poll*10)
		lastErr = p.getJSON(rctx, baseURL+"/readyz", nil)
		cancel()
		if lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return fmt.Errorf("not ready after %s: %w", timeout, lastErr)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// getJSON issues one GET and decodes a 200 JSON body into out (out may
// be nil to just check the status).
func (p *Proxy) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
