package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes requests and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses requests until the open window elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe request: success closes the
	// breaker, failure reopens it for a fresh window.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-backend circuit breaker. The proxy consults Allow
// before each attempt and reports the outcome with Success/Failure;
// FailureThreshold consecutive failures open the breaker, which refuses
// further attempts for OpenFor, then admits one half-open probe whose
// outcome decides between closing and reopening. Failures here are data-
// path verdicts (transport errors, 5xx); orderly 503 sheds do not count —
// see the proxy's classification.
type Breaker struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (<=0 means DefaultBreakerFailures).
	FailureThreshold int
	// OpenFor is how long an open breaker refuses before going half-open
	// (<=0 means DefaultBreakerOpenFor).
	OpenFor time.Duration

	// now is the clock seam (tests pin it); nil means time.Now.
	now func() time.Time

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openUntil time.Time // when an open breaker may go half-open
	probing   bool      // a half-open probe is in flight
	// trips counts closed→open transitions (including reopen-from-half-
	// open), surfaced in /metrics.
	trips uint64
}

// DefaultBreakerFailures opens a breaker after this many consecutive
// failures when FailureThreshold is unset.
const DefaultBreakerFailures = 5

// DefaultBreakerOpenFor is the open window when OpenFor is unset.
const DefaultBreakerOpenFor = 5 * time.Second

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return DefaultBreakerFailures
}

func (b *Breaker) openFor() time.Duration {
	if b.OpenFor > 0 {
		return b.OpenFor
	}
	return DefaultBreakerOpenFor
}

// Allow reports whether an attempt may proceed. In the half-open state
// only one probe is admitted at a time; concurrent attempts are refused
// until the probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Before(b.openUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a successful attempt: it resets the failure run and,
// from half-open, closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed attempt: from half-open it reopens the
// breaker immediately; while closed it opens once the consecutive-
// failure threshold is reached.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.reopen()
		return
	}
	if b.state == BreakerOpen {
		return
	}
	b.failures++
	if b.failures >= b.threshold() {
		b.reopen()
	}
}

// reopen moves to the open state for a fresh window (mu held).
func (b *Breaker) reopen() {
	b.state = BreakerOpen
	b.failures = 0
	b.probing = false
	b.openUntil = b.clock().Add(b.openFor())
	b.trips++
}

// State returns the breaker's current position, resolving an elapsed
// open window to half-open so observers see what Allow would do.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.clock().Before(b.openUntil) {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
