package cluster

import (
	"testing"
	"time"
)

// fakeClock pins a breaker's notion of now.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, openFor time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	return &Breaker{FailureThreshold: threshold, OpenFor: openFor, now: clk.now}, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: breaker refused while under threshold", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures: %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3/3 failures: %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the window")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state: %v, want closed (success should reset the consecutive run)", b.State())
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after window: %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success: %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure: %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request inside the fresh window")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2 (initial open + reopen)", b.Trips())
	}
	// And it can still recover after the fresh window.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second half-open probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state: %v, want closed", b.State())
	}
}

func TestBreakerFailureWhileOpenIsIgnored(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	b.Failure()
	trips := b.Trips()
	b.Failure() // e.g. an in-flight attempt resolving after the trip
	if b.Trips() != trips {
		t.Fatalf("failure while open tripped again: %d -> %d", trips, b.Trips())
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state: %v, want open", b.State())
	}
}
