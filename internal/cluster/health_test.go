package cluster

import (
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flipServer is an httptest replica whose /readyz answer is switchable.
type flipServer struct {
	*httptest.Server
	ready atomic.Bool
}

func newFlipServer(t *testing.T) *flipServer {
	t.Helper()
	fs := &flipServer{}
	fs.ready.Store(true)
	fs.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if fs.ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(fs.Close)
	return fs
}

func quietHealth(backends ...*Backend) *Health {
	return &Health{
		Backends:  backends,
		Timeout:   2 * time.Second,
		DownAfter: 3,
		UpAfter:   2,
		Logger:    log.New(io.Discard, "", 0),
	}
}

func TestHealthTransitions(t *testing.T) {
	srv := newFlipServer(t)
	b := NewBackend(srv.URL)
	h := quietHealth(b)
	ctx := context.Background()

	h.CheckOnce(ctx)
	if b.State() != Healthy {
		t.Fatalf("after ready probe: %v, want healthy", b.State())
	}

	srv.ready.Store(false)
	h.CheckOnce(ctx)
	if b.State() != Suspect {
		t.Fatalf("after 1 failed probe: %v, want suspect (still routable)", b.State())
	}
	h.CheckOnce(ctx)
	if b.State() != Suspect {
		t.Fatalf("after 2 failed probes: %v, want suspect", b.State())
	}
	h.CheckOnce(ctx)
	if b.State() != Down {
		t.Fatalf("after DownAfter=3 failed probes: %v, want down", b.State())
	}

	// One success is not enough to restore a down backend...
	srv.ready.Store(true)
	h.CheckOnce(ctx)
	if b.State() != Down {
		t.Fatalf("after 1 success: %v, want still down (UpAfter=2)", b.State())
	}
	// ...two in a row are.
	h.CheckOnce(ctx)
	if b.State() != Healthy {
		t.Fatalf("after 2 consecutive successes: %v, want healthy", b.State())
	}
	if _, lastErr := b.LastProbe(); lastErr != "" {
		t.Fatalf("last probe error not cleared: %q", lastErr)
	}
}

func TestHealthFailureRunResetBySuccess(t *testing.T) {
	srv := newFlipServer(t)
	b := NewBackend(srv.URL)
	h := quietHealth(b)
	ctx := context.Background()

	// Flapping below DownAfter must never declare the backend down.
	for i := 0; i < 4; i++ {
		srv.ready.Store(false)
		h.CheckOnce(ctx)
		h.CheckOnce(ctx)
		if b.State() == Down {
			t.Fatalf("round %d: 2 failures declared down (DownAfter=3)", i)
		}
		srv.ready.Store(true)
		h.CheckOnce(ctx)
		h.CheckOnce(ctx)
		if b.State() != Healthy {
			t.Fatalf("round %d: %v, want healthy after recovery", i, b.State())
		}
	}
}

func TestHealthDeadBackendGoesDown(t *testing.T) {
	srv := newFlipServer(t)
	url := srv.URL
	srv.Close() // connection refused from the start
	b := NewBackend(url)
	h := quietHealth(b)
	h.Timeout = 500 * time.Millisecond
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		h.CheckOnce(ctx)
	}
	if b.State() != Down {
		t.Fatalf("dead backend after 3 probes: %v, want down", b.State())
	}
	if b.Probes.Load() != 3 || b.ProbeFails.Load() != 3 {
		t.Fatalf("probe counters: %d/%d, want 3/3", b.Probes.Load(), b.ProbeFails.Load())
	}
	if _, lastErr := b.LastProbe(); lastErr == "" {
		t.Fatal("last probe error empty for a dead backend")
	}
}

func TestHealthRunLoopConverges(t *testing.T) {
	srv := newFlipServer(t)
	srv.ready.Store(false)
	b := NewBackend(srv.URL)
	h := quietHealth(b)
	h.Interval = 10 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { h.Run(ctx); close(done) }()

	deadline := time.Now().Add(5 * time.Second)
	for b.State() != Down {
		if time.Now().After(deadline) {
			t.Fatalf("backend never went down; state %v after %d probes", b.State(), b.Probes.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.ready.Store(true)
	for b.State() != Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("backend never recovered; state %v", b.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
}
