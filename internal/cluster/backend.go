package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// HealthState is a backend's position in the health state machine.
type HealthState int32

const (
	// Healthy backends take traffic. Backends start healthy (optimistic):
	// a fleet is routable before the first probe round completes, and a
	// genuinely dead backend is caught by the data path's retries until
	// the checker demotes it.
	Healthy HealthState = iota
	// Suspect backends failed their last probe but not enough in a row to
	// be declared down; they still take traffic (the breaker and retries
	// contain the damage) while the checker decides.
	Suspect
	// Down backends are skipped by routing entirely until UpAfter
	// consecutive probe successes bring them back.
	Down
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return "unknown"
}

// Backend is one psdserve replica as the proxy sees it: its base URL,
// health-checker state, circuit breaker, and data-path counters. All
// mutable fields are atomics or internally locked; the request hot path
// reads state without taking any lock.
type Backend struct {
	// URL is the replica's base URL (scheme://host:port, no trailing
	// slash) and its ring member key.
	URL string
	// Breaker is the backend's data-path circuit breaker.
	Breaker *Breaker

	state atomic.Int32

	// probeMu guards the checker's consecutive-outcome bookkeeping.
	probeMu    sync.Mutex
	consecFail int
	consecOK   int
	lastProbe  time.Time
	lastErr    string

	// Data-path counters, surfaced in /metrics and /v1/backends.
	Requests atomic.Uint64 // attempts forwarded to this backend
	Failures atomic.Uint64 // attempts that failed (transport error or 5xx)
	Probes   atomic.Uint64 // health probes issued
	ProbeFails atomic.Uint64
}

// NewBackend returns a backend for url with a default breaker.
func NewBackend(url string) *Backend {
	return &Backend{URL: url, Breaker: &Breaker{}}
}

// State returns the backend's current health state.
func (b *Backend) State() HealthState { return HealthState(b.state.Load()) }

// setState records s, returning the previous state.
func (b *Backend) setState(s HealthState) HealthState {
	return HealthState(b.state.Swap(int32(s)))
}

// LastProbe returns the time and error text of the most recent health
// probe ("" when it succeeded; zero time when none ran yet).
func (b *Backend) LastProbe() (time.Time, string) {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	return b.lastProbe, b.lastErr
}
