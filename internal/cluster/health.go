package cluster

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"
)

// Health actively probes each backend's /readyz and drives the
// healthy→suspect→down state machine. One probe failure demotes a
// healthy backend to suspect (still routable — a single dropped probe
// must not drain a replica); DownAfter consecutive failures declare it
// down (skipped by routing); UpAfter consecutive successes from suspect
// or down restore it to healthy, so a flapping replica has to prove
// itself before taking traffic again.
//
// The checker is the control plane's view of liveness; the data path has
// its own verdicts (per-backend breakers, per-attempt retries). The two
// deliberately do not feed each other: probes are cheap, periodic, and
// unambiguous, while data-path failures can be caused by the request
// itself (a poisoned body, an over-deadline query) and must not demote a
// replica for everyone else.
type Health struct {
	// Backends is the probed fleet.
	Backends []*Backend
	// Interval is the probe period (<=0 means DefaultProbeInterval).
	Interval time.Duration
	// Timeout bounds one probe round trip (<=0 means DefaultProbeTimeout).
	Timeout time.Duration
	// DownAfter is the consecutive-failure count that declares a backend
	// down (<=0 means DefaultDownAfter).
	DownAfter int
	// UpAfter is the consecutive-success count that restores a suspect or
	// down backend (<=0 means DefaultUpAfter).
	UpAfter int
	// Client issues the probes (nil means a dedicated client with the
	// probe timeout).
	Client *http.Client
	// Logger receives state-transition lines (nil means the standard
	// logger).
	Logger *log.Logger
}

// Defaults for the probe loop: tight enough that a dead replica stops
// receiving traffic within ~2s, loose enough that probes are noise-level
// load.
const (
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultProbeTimeout  = time.Second
	DefaultDownAfter     = 3
	DefaultUpAfter       = 2
)

func (h *Health) interval() time.Duration {
	if h.Interval > 0 {
		return h.Interval
	}
	return DefaultProbeInterval
}

func (h *Health) timeout() time.Duration {
	if h.Timeout > 0 {
		return h.Timeout
	}
	return DefaultProbeTimeout
}

func (h *Health) downAfter() int {
	if h.DownAfter > 0 {
		return h.DownAfter
	}
	return DefaultDownAfter
}

func (h *Health) upAfter() int {
	if h.UpAfter > 0 {
		return h.UpAfter
	}
	return DefaultUpAfter
}

func (h *Health) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return &http.Client{Timeout: h.timeout()}
}

func (h *Health) logf(format string, args ...any) {
	if h.Logger != nil {
		h.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Run probes the fleet every Interval until ctx is done. The first round
// fires immediately so a fleet started against a dead backend converges
// without waiting out a full interval.
func (h *Health) Run(ctx context.Context) {
	t := time.NewTicker(h.interval())
	defer t.Stop()
	for {
		h.CheckOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// CheckOnce probes every backend once, concurrently, and applies the
// state transitions. Exposed so tests drive the state machine
// deterministically without a ticker.
func (h *Health) CheckOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range h.Backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			h.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// probe issues one /readyz round trip and applies the outcome.
func (h *Health) probe(ctx context.Context, b *Backend) {
	pctx, cancel := context.WithTimeout(ctx, h.timeout())
	defer cancel()
	b.Probes.Add(1)
	err := h.readyz(pctx, b.URL)
	if err != nil {
		b.ProbeFails.Add(1)
	}

	b.probeMu.Lock()
	b.lastProbe = time.Now()
	if err != nil {
		b.lastErr = err.Error()
		b.consecOK = 0
		b.consecFail++
		fails := b.consecFail
		b.probeMu.Unlock()
		switch {
		case fails >= h.downAfter():
			if prev := b.setState(Down); prev != Down {
				h.logf("cluster: backend %s %s -> down (%d consecutive probe failures): %v",
					b.URL, prev, fails, err)
			}
		default:
			if prev := b.setState(Suspect); prev == Healthy {
				h.logf("cluster: backend %s healthy -> suspect: %v", b.URL, err)
			}
		}
		return
	}
	b.lastErr = ""
	b.consecFail = 0
	b.consecOK++
	oks := b.consecOK
	b.probeMu.Unlock()
	if b.State() != Healthy && oks >= h.upAfter() {
		prev := b.setState(Healthy)
		h.logf("cluster: backend %s %s -> healthy (%d consecutive probe successes)",
			b.URL, prev, oks)
	}
}

// readyz performs the probe: any 2xx from GET /readyz counts as ready;
// a non-2xx status, transport error, or timeout is a failure.
func (h *Health) readyz(ctx context.Context, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("readyz status %d", resp.StatusCode)
	}
	return nil
}
