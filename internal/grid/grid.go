// Package grid implements the flat fixed-resolution noisy-count grid that
// the paper uses twice: as the strawman baseline of Section 1 ("lay down a
// fine grid over the data and add noise to the count of individuals within
// each cell" [6]) and as the structural substrate of the cell-based kd-tree
// of Xiao et al. [26] (Section 6.1's cell-based median).
//
// Releasing all cell counts with Laplace(1/ε) noise is ε-differentially
// private in total: the cells partition the data, so a single tuple affects
// exactly one cell (parallel composition).
package grid

import (
	"fmt"
	"math"

	"psd/internal/dp"
	"psd/internal/geom"
)

// Grid is a uniform nx × ny grid of noisy counts over a rectangular domain.
type Grid struct {
	domain geom.Rect
	nx, ny int
	cellW  float64
	cellH  float64
	// noisy[y*nx+x] is the released count of cell (x, y).
	noisy []float64
	// exact[y*nx+x] is the true count, retained for evaluation only.
	exact []float64
	eps   float64
}

// MaxCells caps the grid size (2^26 cells ≈ 1 GB of float64 pairs).
const MaxCells = 1 << 26

// Build constructs a grid over domain with nx × ny cells and releases each
// cell count through noise with budget eps (sensitivity 1). Points outside
// the domain are clamped into the boundary cells, matching the half-open
// domain convention used by the trees.
func Build(points []geom.Point, domain geom.Rect, nx, ny int, eps float64, noise dp.NoiseSource) (*Grid, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("grid: dimensions %dx%d invalid", nx, ny)
	}
	if nx*ny > MaxCells {
		return nil, fmt.Errorf("grid: %dx%d exceeds %d cells", nx, ny, MaxCells)
	}
	if domain.Empty() {
		return nil, fmt.Errorf("grid: empty domain %v", domain)
	}
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("grid: invalid eps %v", eps)
	}
	if noise == nil {
		return nil, fmt.Errorf("grid: nil noise source")
	}
	g := &Grid{
		domain: domain,
		nx:     nx,
		ny:     ny,
		cellW:  domain.Width() / float64(nx),
		cellH:  domain.Height() / float64(ny),
		noisy:  make([]float64, nx*ny),
		exact:  make([]float64, nx*ny),
	}
	for _, p := range points {
		cx := g.clampX(int((p.X - domain.Lo.X) / g.cellW))
		cy := g.clampY(int((p.Y - domain.Lo.Y) / g.cellH))
		g.exact[cy*nx+cx]++
	}
	for i, c := range g.exact {
		g.noisy[i] = noise.Add(c, 1, eps)
	}
	g.eps = eps
	return g, nil
}

func (g *Grid) clampX(cx int) int {
	if cx < 0 {
		return 0
	}
	if cx >= g.nx {
		return g.nx - 1
	}
	return cx
}

func (g *Grid) clampY(cy int) int {
	if cy < 0 {
		return 0
	}
	if cy >= g.ny {
		return g.ny - 1
	}
	return cy
}

// Domain returns the grid's domain rectangle.
func (g *Grid) Domain() geom.Rect { return g.domain }

// Dims returns the grid dimensions (nx, ny).
func (g *Grid) Dims() (int, int) { return g.nx, g.ny }

// Epsilon returns the privacy budget spent releasing the grid.
func (g *Grid) Epsilon() float64 { return g.eps }

// CellRect returns the rectangle of cell (cx, cy).
func (g *Grid) CellRect(cx, cy int) geom.Rect {
	return geom.Rect{
		Lo: geom.Point{
			X: g.domain.Lo.X + float64(cx)*g.cellW,
			Y: g.domain.Lo.Y + float64(cy)*g.cellH,
		},
		Hi: geom.Point{
			X: g.domain.Lo.X + float64(cx+1)*g.cellW,
			Y: g.domain.Lo.Y + float64(cy+1)*g.cellH,
		},
	}
}

// Noisy returns the released count of cell (cx, cy).
func (g *Grid) Noisy(cx, cy int) float64 { return g.noisy[cy*g.nx+cx] }

// Query estimates the number of points in q by summing noisy cell counts,
// weighting boundary cells by their overlap fraction with q (the uniformity
// assumption). This is the Section 1 baseline answer.
func (g *Grid) Query(q geom.Rect) float64 {
	return g.query(q, g.noisy)
}

// TrueCount returns the exact number of data points in q, up to the
// uniformity assumption inside boundary cells: cells fully inside q are
// counted exactly. It exists for evaluation.
func (g *Grid) TrueCount(q geom.Rect) float64 {
	return g.query(q, g.exact)
}

func (g *Grid) query(q geom.Rect, counts []float64) float64 {
	inter, ok := g.domain.Intersect(q)
	if !ok {
		return 0
	}
	x0 := g.clampX(int(math.Floor((inter.Lo.X - g.domain.Lo.X) / g.cellW)))
	x1 := g.clampX(int(math.Ceil((inter.Hi.X-g.domain.Lo.X)/g.cellW)) - 1)
	y0 := g.clampY(int(math.Floor((inter.Lo.Y - g.domain.Lo.Y) / g.cellH)))
	y1 := g.clampY(int(math.Ceil((inter.Hi.Y-g.domain.Lo.Y)/g.cellH)) - 1)
	var sum float64
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			frac := g.CellRect(cx, cy).OverlapFraction(q)
			if frac > 0 {
				sum += frac * counts[cy*g.nx+cx]
			}
		}
	}
	return sum
}

// MedianAlong returns the coordinate that splits the noisy mass of region r
// in half along the given axis — the cell-based private median of [26].
// Cell counts are weighted by their fractional overlap with r and negative
// noisy cells are floored at zero so the cumulative mass is monotone. When
// r carries no noisy mass the midpoint of r's extent is returned.
func (g *Grid) MedianAlong(r geom.Rect, axis geom.Axis) float64 {
	return g.MedianAlongBuf(r, axis, nil)
}

// MedianAlongBuf is MedianAlong with a caller-provided slab-mass buffer of
// length nx (AxisX) or ny (AxisY); a nil or short buf allocates. The grid
// is immutable after Build, so concurrent calls with distinct buffers are
// safe — the kd-cell tree builder runs one buffer per worker.
func (g *Grid) MedianAlongBuf(r geom.Rect, axis geom.Axis, buf []float64) float64 {
	lo, hi := r.Range(axis)
	if hi <= lo {
		return lo
	}
	var n int
	var cellLo float64
	var cellSize float64
	if axis == geom.AxisX {
		n = g.nx
		cellLo = g.domain.Lo.X
		cellSize = g.cellW
	} else {
		n = g.ny
		cellLo = g.domain.Lo.Y
		cellSize = g.cellH
	}
	inter, ok := g.domain.Intersect(r)
	if !ok {
		return (lo + hi) / 2
	}
	// Only the cells intersecting r can carry mass; restricting the scan to
	// them keeps a full kd-cell build near-linear in the grid size.
	x0 := g.clampX(int(math.Floor((inter.Lo.X - g.domain.Lo.X) / g.cellW)))
	x1 := g.clampX(int(math.Ceil((inter.Hi.X-g.domain.Lo.X)/g.cellW)) - 1)
	y0 := g.clampY(int(math.Floor((inter.Lo.Y - g.domain.Lo.Y) / g.cellH)))
	y1 := g.clampY(int(math.Ceil((inter.Hi.Y-g.domain.Lo.Y)/g.cellH)) - 1)

	// Accumulate the (overlap-weighted, floored) noisy mass per slab.
	mass := buf
	if len(mass) < n {
		mass = make([]float64, n)
	}
	mass = mass[:n]
	clear(mass)
	var total float64
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			frac := g.CellRect(cx, cy).OverlapFraction(r)
			if frac <= 0 {
				continue
			}
			c := g.noisy[cy*g.nx+cx]
			if c < 0 {
				c = 0
			}
			idx := cx
			if axis == geom.AxisY {
				idx = cy
			}
			mass[idx] += frac * c
			total += frac * c
		}
	}
	if total <= 0 {
		return (lo + hi) / 2
	}
	target := total / 2
	var cum float64
	for i := 0; i < n; i++ {
		if cum+mass[i] >= target {
			frac := 0.5
			if mass[i] > 0 {
				frac = (target - cum) / mass[i]
			}
			split := cellLo + (float64(i)+frac)*cellSize
			return clamp(split, lo, hi)
		}
		cum += mass[i]
	}
	return hi
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
