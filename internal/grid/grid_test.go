package grid

import (
	"math"
	"testing"

	"psd/internal/dp"
	"psd/internal/geom"
	"psd/internal/rng"
)

func uniformPoints(n int, dom geom.Rect, seed int64) []geom.Point {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: src.UniformIn(dom.Lo.X, dom.Hi.X),
			Y: src.UniformIn(dom.Lo.Y, dom.Hi.Y),
		}
	}
	return pts
}

func TestBuildValidation(t *testing.T) {
	dom := geom.NewRect(0, 0, 1, 1)
	if _, err := Build(nil, dom, 0, 4, 1, dp.ZeroNoise{}); err == nil {
		t.Error("zero nx should error")
	}
	if _, err := Build(nil, geom.Rect{}, 4, 4, 1, dp.ZeroNoise{}); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := Build(nil, dom, 4, 4, -1, dp.ZeroNoise{}); err == nil {
		t.Error("negative eps should error")
	}
	if _, err := Build(nil, dom, 4, 4, 1, nil); err == nil {
		t.Error("nil noise should error")
	}
	if _, err := Build(nil, dom, 1<<14, 1<<14, 1, dp.ZeroNoise{}); err == nil {
		t.Error("oversized grid should error")
	}
}

func TestExactCountsWithZeroNoise(t *testing.T) {
	dom := geom.NewRect(0, 0, 4, 4)
	pts := []geom.Point{
		{X: 0.5, Y: 0.5}, {X: 0.6, Y: 0.6}, // cell (0,0)
		{X: 3.5, Y: 3.5}, // cell (3,3)
		{X: 2.1, Y: 0.2}, // cell (2,0)
	}
	g, err := Build(pts, dom, 4, 4, 1, dp.ZeroNoise{})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Noisy(0, 0); got != 2 {
		t.Errorf("cell (0,0) = %v, want 2", got)
	}
	if got := g.Noisy(3, 3); got != 1 {
		t.Errorf("cell (3,3) = %v, want 1", got)
	}
	if got := g.Noisy(2, 0); got != 1 {
		t.Errorf("cell (2,0) = %v, want 1", got)
	}
	if got := g.Noisy(1, 1); got != 0 {
		t.Errorf("cell (1,1) = %v, want 0", got)
	}
	nx, ny := g.Dims()
	if nx != 4 || ny != 4 {
		t.Errorf("Dims = %d,%d", nx, ny)
	}
	if g.Epsilon() != 1 {
		t.Errorf("Epsilon = %v", g.Epsilon())
	}
	if g.Domain() != dom {
		t.Error("Domain not preserved")
	}
}

func TestOutOfDomainPointsClampToBoundaryCells(t *testing.T) {
	dom := geom.NewRect(0, 0, 4, 4)
	pts := []geom.Point{{X: -1, Y: -1}, {X: 99, Y: 99}, {X: 4, Y: 4}}
	g, err := Build(pts, dom, 4, 4, 1, dp.ZeroNoise{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Noisy(0, 0) != 1 {
		t.Errorf("low clamp cell = %v, want 1", g.Noisy(0, 0))
	}
	if g.Noisy(3, 3) != 2 {
		t.Errorf("high clamp cell = %v, want 2 (incl. boundary point)", g.Noisy(3, 3))
	}
}

func TestQueryAlignedExact(t *testing.T) {
	dom := geom.NewRect(0, 0, 8, 8)
	pts := uniformPoints(2000, dom, 1)
	g, err := Build(pts, dom, 8, 8, 1, dp.ZeroNoise{})
	if err != nil {
		t.Fatal(err)
	}
	// A cell-aligned query is exact under zero noise.
	q := geom.NewRect(2, 2, 6, 6)
	want := float64(geom.CountIn(pts, q))
	if got := g.Query(q); math.Abs(got-want) > 1e-9 {
		t.Errorf("aligned query = %v, want %v", got, want)
	}
	// The full domain returns every point.
	if got := g.Query(dom); math.Abs(got-2000) > 1e-9 {
		t.Errorf("full-domain query = %v, want 2000", got)
	}
	// Disjoint queries return 0.
	if got := g.Query(geom.NewRect(100, 100, 101, 101)); got != 0 {
		t.Errorf("disjoint query = %v, want 0", got)
	}
}

func TestQueryUnalignedUsesUniformity(t *testing.T) {
	dom := geom.NewRect(0, 0, 2, 2)
	// One point in each unit cell.
	pts := []geom.Point{{X: 0.5, Y: 0.5}, {X: 1.5, Y: 0.5}, {X: 0.5, Y: 1.5}, {X: 1.5, Y: 1.5}}
	g, err := Build(pts, dom, 2, 2, 1, dp.ZeroNoise{})
	if err != nil {
		t.Fatal(err)
	}
	// A query covering the left half of each left cell: uniformity says
	// half the mass of the two left cells = 1.
	q := geom.NewRect(0, 0, 0.5, 2)
	if got := g.Query(q); math.Abs(got-1) > 1e-9 {
		t.Errorf("unaligned query = %v, want 1 (uniformity)", got)
	}
	if got := g.TrueCount(q); math.Abs(got-1) > 1e-9 {
		t.Errorf("TrueCount = %v, want 1", got)
	}
}

func TestNoiseScalesWithEps(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	pts := uniformPoints(4096, dom, 2)
	q := geom.NewRect(0, 0, 16, 8)
	errAt := func(eps float64, seed int64) float64 {
		var sum float64
		const trials = 30
		for i := int64(0); i < trials; i++ {
			g, err := Build(pts, dom, 16, 16, eps, dp.NewLaplace(rng.New(seed+i)))
			if err != nil {
				t.Fatal(err)
			}
			d := g.Query(q) - g.TrueCount(q)
			sum += math.Abs(d)
		}
		return sum / trials
	}
	strict := errAt(0.05, 100)
	loose := errAt(5.0, 200)
	if loose >= strict {
		t.Errorf("error at eps=5 (%v) should be below eps=0.05 (%v)", loose, strict)
	}
}

func TestMedianAlong(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	// All mass on the left quarter: median along X should sit around x=12.5.
	var pts []geom.Point
	src := rng.New(3)
	for i := 0; i < 10000; i++ {
		pts = append(pts, geom.Point{X: src.UniformIn(0, 25), Y: src.UniformIn(0, 100)})
	}
	g, err := Build(pts, dom, 100, 100, 1, dp.ZeroNoise{})
	if err != nil {
		t.Fatal(err)
	}
	m := g.MedianAlong(dom, geom.AxisX)
	if m < 10 || m > 15 {
		t.Errorf("median X = %v, want ≈ 12.5", m)
	}
	// Along Y the data is uniform: median ≈ 50.
	m = g.MedianAlong(dom, geom.AxisY)
	if m < 45 || m > 55 {
		t.Errorf("median Y = %v, want ≈ 50", m)
	}
	// Restricted to a subregion, the median respects the restriction.
	sub := geom.NewRect(0, 0, 10, 100)
	m = g.MedianAlong(sub, geom.AxisX)
	if m < 4 || m > 6 {
		t.Errorf("restricted median X = %v, want ≈ 5", m)
	}
}

func TestMedianAlongDegenerate(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	g, err := Build(nil, dom, 10, 10, 1, dp.ZeroNoise{})
	if err != nil {
		t.Fatal(err)
	}
	// No mass anywhere: midpoint.
	if m := g.MedianAlong(dom, geom.AxisX); m != 5 {
		t.Errorf("empty median = %v, want 5", m)
	}
	// Degenerate region: its own low coordinate.
	deg := geom.Rect{Lo: geom.Point{X: 3, Y: 0}, Hi: geom.Point{X: 3, Y: 10}}
	if m := g.MedianAlong(deg, geom.AxisX); m != 3 {
		t.Errorf("degenerate median = %v, want 3", m)
	}
	// Region outside the domain: midpoint of the region's extent.
	out := geom.NewRect(50, 50, 60, 60)
	if m := g.MedianAlong(out, geom.AxisX); m != 55 {
		t.Errorf("outside median = %v, want 55", m)
	}
}

func TestMedianAlongStaysInRange(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	pts := uniformPoints(1000, dom, 4)
	g, err := Build(pts, dom, 20, 20, 0.1, dp.NewLaplace(rng.New(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []geom.Rect{
		dom,
		geom.NewRect(2, 3, 7, 8),
		geom.NewRect(9.5, 9.5, 10, 10),
	} {
		for _, ax := range []geom.Axis{geom.AxisX, geom.AxisY} {
			m := g.MedianAlong(r, ax)
			lo, hi := r.Range(ax)
			if m < lo || m > hi {
				t.Errorf("median %v outside [%v,%v] for %v/%v", m, lo, hi, r, ax)
			}
		}
	}
}

func TestFineGridNoiseSwampsSparseData(t *testing.T) {
	// Section 1's motivating failure: a fine grid over sparse data yields
	// answers dominated by noise. A 64x64 grid with only 50 points at
	// eps=0.1 has per-cell noise stdev ≈ 14 and a large query touches
	// thousands of cells — the signal drowns.
	dom := geom.NewRect(0, 0, 64, 64)
	pts := uniformPoints(50, dom, 6)
	g, err := Build(pts, dom, 64, 64, 0.1, dp.NewLaplace(rng.New(7)))
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(0, 0, 48, 48)
	truth := g.TrueCount(q)
	var absErr float64
	const trials = 20
	for i := 0; i < trials; i++ {
		g, _ = Build(pts, dom, 64, 64, 0.1, dp.NewLaplace(rng.New(int64(100+i))))
		absErr += math.Abs(g.Query(q) - truth)
	}
	absErr /= trials
	if absErr < truth {
		t.Errorf("expected noise (%v) to dominate the signal (%v) on a fine grid",
			absErr, truth)
	}
}
