package workload

import (
	"math"
	"testing"
	"testing/quick"

	"psd/internal/geom"
	"psd/internal/rng"
)

func TestRoadNetworkBasics(t *testing.T) {
	ds := RoadNetwork(RoadNetworkConfig{N: 20000, Seed: 1})
	if len(ds.Points) != 20000 {
		t.Fatalf("N = %d, want 20000", len(ds.Points))
	}
	if ds.Domain != TigerDomain {
		t.Errorf("domain = %v, want TigerDomain", ds.Domain)
	}
	for i, p := range ds.Points {
		if !ds.Domain.Contains(p) {
			t.Fatalf("point %d (%v) outside domain", i, p)
		}
	}
}

func TestRoadNetworkIsSkewed(t *testing.T) {
	// The generator must produce heavy spatial skew: the densest 1% of a
	// 32x32 bucketing should hold far more than 1% of the mass.
	ds := RoadNetwork(RoadNetworkConfig{N: 50000, Seed: 2})
	const g = 32
	counts := make([]int, g*g)
	for _, p := range ds.Points {
		cx := int((p.X - ds.Domain.Lo.X) / ds.Domain.Width() * g)
		cy := int((p.Y - ds.Domain.Lo.Y) / ds.Domain.Height() * g)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		counts[cy*g+cx]++
	}
	max := 0
	empty := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c == 0 {
			empty++
		}
	}
	if frac := float64(max) / 50000; frac < 0.03 {
		t.Errorf("densest cell holds %.1f%% of mass; want heavy skew (>3%%)", frac*100)
	}
	if empty < g*g/10 {
		t.Errorf("only %d/%d empty cells; road data should leave empty space", empty, g*g)
	}
}

func TestRoadNetworkDeterministic(t *testing.T) {
	a := RoadNetwork(RoadNetworkConfig{N: 1000, Seed: 3})
	b := RoadNetwork(RoadNetworkConfig{N: 1000, Seed: 3})
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed should reproduce the dataset")
		}
	}
	c := RoadNetwork(RoadNetworkConfig{N: 1000, Seed: 4})
	if a.Points[0] == c.Points[0] && a.Points[1] == c.Points[1] {
		t.Error("different seeds produced identical data")
	}
}

func TestUniformAndGaussianGenerators(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	u := Uniform(5000, dom, 1)
	for _, p := range u.Points {
		if !dom.Contains(p) {
			t.Fatal("uniform point outside domain")
		}
	}
	gds := GaussianClusters(5000, 3, 0.05, dom, 2)
	for _, p := range gds.Points {
		if !dom.Contains(p) {
			t.Fatal("gaussian point outside domain")
		}
	}
	// Uniform should fill the space much more evenly than the clusters.
	spread := func(pts []geom.Point) float64 {
		const g = 8
		counts := make([]float64, g*g)
		for _, p := range pts {
			cx, cy := int(p.X/10*g), int(p.Y/10*g)
			if cx >= g {
				cx = g - 1
			}
			if cy >= g {
				cy = g - 1
			}
			counts[cy*g+cx]++
		}
		var mx float64
		for _, c := range counts {
			if c > mx {
				mx = c
			}
		}
		return mx
	}
	if spread(gds.Points) <= spread(u.Points) {
		t.Error("clusters should concentrate mass more than uniform")
	}
}

func TestCountIndexMatchesBruteForce(t *testing.T) {
	dom := geom.NewRect(-10, 5, 30, 45)
	ds := GaussianClusters(4000, 4, 0.08, dom, 5)
	idx, err := NewCountIndex(ds.Points, dom, 16)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 4000 {
		t.Errorf("Len = %d", idx.Len())
	}
	src := rng.New(6)
	for trial := 0; trial < 300; trial++ {
		x1 := src.UniformIn(dom.Lo.X-5, dom.Hi.X+5)
		x2 := src.UniformIn(dom.Lo.X-5, dom.Hi.X+5)
		y1 := src.UniformIn(dom.Lo.Y-5, dom.Hi.Y+5)
		y2 := src.UniformIn(dom.Lo.Y-5, dom.Hi.Y+5)
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		q := geom.NewRect(x1, y1, x2, y2)
		want := int64(geom.CountIn(ds.Points, q))
		if got := idx.Count(q); got != want {
			t.Fatalf("Count(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestCountIndexQuick(t *testing.T) {
	dom := geom.NewRect(0, 0, 1, 1)
	ds := Uniform(2000, dom, 7)
	idx, err := NewCountIndex(ds.Points, dom, 32)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d float64) bool {
		fold := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Abs(math.Mod(v, 1.2))
		}
		x1, x2, y1, y2 := fold(a), fold(b), fold(c), fold(d)
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		q := geom.Rect{Lo: geom.Point{X: x1, Y: y1}, Hi: geom.Point{X: x2, Y: y2}}
		return idx.Count(q) == int64(geom.CountIn(ds.Points, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountIndexEdgeCases(t *testing.T) {
	dom := geom.NewRect(0, 0, 8, 8)
	idx, err := NewCountIndex([]geom.Point{{X: 0, Y: 0}, {X: 7.99, Y: 7.99}}, dom, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Count(dom); got != 2 {
		t.Errorf("full-domain count = %d, want 2", got)
	}
	if got := idx.Count(geom.NewRect(100, 100, 101, 101)); got != 0 {
		t.Errorf("disjoint count = %d, want 0", got)
	}
	if got := idx.Count(geom.NewRect(0, 0, 0.01, 0.01)); got != 1 {
		t.Errorf("corner count = %d, want 1", got)
	}
	if _, err := NewCountIndex(nil, geom.Rect{}, 4); err == nil {
		t.Error("empty domain should error")
	}
}

func TestGenQueries(t *testing.T) {
	ds := RoadNetwork(RoadNetworkConfig{N: 30000, Seed: 8})
	idx, err := NewCountIndex(ds.Points, ds.Domain, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range PaperShapes {
		qs, err := GenQueries(idx, shape, 50, 9)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if len(qs.Rects) != 50 || len(qs.Answers) != 50 {
			t.Fatalf("shape %v: got %d queries", shape, len(qs.Rects))
		}
		for i, r := range qs.Rects {
			if qs.Answers[i] <= 0 {
				t.Fatalf("query %d has empty answer", i)
			}
			if math.Abs(r.Width()-math.Min(shape.W, ds.Domain.Width())) > 1e-9 {
				t.Fatalf("query width %v, want %v", r.Width(), shape.W)
			}
			if !ds.Domain.ContainsRect(r) {
				t.Fatalf("query %v escapes domain", r)
			}
			if int64(qs.Answers[i]) != idx.Count(r) {
				t.Fatal("stored answer mismatches index")
			}
		}
	}
	if _, err := GenQueries(idx, QueryShape{0, 1}, 5, 1); err == nil {
		t.Error("degenerate shape should error")
	}
}

func TestGenQueriesDeterministic(t *testing.T) {
	ds := Uniform(5000, geom.NewRect(0, 0, 10, 10), 10)
	idx, _ := NewCountIndex(ds.Points, ds.Domain, 64)
	a, err := GenQueries(idx, QueryShape{1, 1}, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenQueries(idx, QueryShape{1, 1}, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatal("query generation should be deterministic")
		}
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
	// Input must not be mutated.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestQueryShapeString(t *testing.T) {
	if s := (QueryShape{15, 0.2}).String(); s != "(15,0.2)" {
		t.Errorf("String = %q", s)
	}
}
