// Package workload provides the datasets, query workloads and exact
// counting index behind the experimental study of Section 8.
//
// The paper evaluates on GPS coordinates of road intersections in
// Washington and New Mexico from the 2006 TIGER/Line files: 1.63 million
// points in [-124.82, -103.00] × [31.33, 49.00], "a rather skewed
// distribution corresponding roughly to human activity". That dataset is
// not redistributable here, so RoadNetwork generates a synthetic stand-in
// with the same cardinality, bounding box and qualitative skew: points are
// jittered samples along random polylines connecting cluster centers (road
// corridors between population centers) plus sparse background noise. See
// DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"math"

	"psd/internal/geom"
	"psd/internal/rng"
)

// TigerDomain is the bounding box of the paper's WA+NM TIGER/Line data.
var TigerDomain = geom.NewRect(-124.82, 31.33, -103.00, 49.00)

// TigerPoints is the cardinality of the paper's dataset.
const TigerPoints = 1_630_000

// Dataset is a named point set over a known domain.
type Dataset struct {
	Name   string
	Domain geom.Rect
	Points []geom.Point
}

// RoadNetworkConfig tunes the synthetic TIGER-like generator.
type RoadNetworkConfig struct {
	// N is the number of points (default TigerPoints).
	N int
	// Domain is the bounding box (default TigerDomain).
	Domain geom.Rect
	// Regions restricts where points may fall. The paper's box spans the
	// whole western United States but only Washington and New Mexico carry
	// data — two dense patches in opposite corners, empty in between. The
	// default (when Domain is TigerDomain) mimics that: approximations of
	// the WA and NM state boxes. For other domains the default is the whole
	// domain.
	Regions []geom.Rect
	// HubsPerRegion is the number of town centers per region; default 25.
	HubsPerRegion int
	// RoadsPerHub is the number of roads leaving each hub toward its
	// nearest neighbours; default 2.
	RoadsPerHub int
	// Jitter is the road-transverse point scatter as a fraction of the
	// domain diagonal; default 0.003 (tight corridors).
	Jitter float64
	// TownFrac is the fraction of points clustered directly at hubs;
	// default 0.35. Hub popularity is Zipf-like so a few towns dominate.
	TownFrac float64
	// BackgroundFrac is the fraction of points scattered uniformly within
	// the regions; default 0.12 (see withDefaults for the rationale).
	BackgroundFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c RoadNetworkConfig) withDefaults() RoadNetworkConfig {
	if c.N == 0 {
		c.N = TigerPoints
	}
	if c.Domain.Empty() {
		c.Domain = TigerDomain
	}
	if len(c.Regions) == 0 {
		if c.Domain == TigerDomain {
			c.Regions = []geom.Rect{
				geom.NewRect(-124.82, 45.5, -116.9, 49.0),  // ≈ Washington
				geom.NewRect(-109.05, 31.33, -103.0, 37.0), // ≈ New Mexico
			}
		} else {
			c.Regions = []geom.Rect{c.Domain}
		}
	}
	if c.HubsPerRegion == 0 {
		c.HubsPerRegion = 25
	}
	if c.RoadsPerHub == 0 {
		c.RoadsPerHub = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.003
	}
	if c.TownFrac == 0 {
		c.TownFrac = 0.35
	}
	if c.BackgroundFrac == 0 {
		// Real road intersections blanket whole states at low density in
		// addition to clustering along corridors; a noticeable uniform
		// floor inside the regions keeps small-query uniformity error
		// comparable to the TIGER data.
		c.BackgroundFrac = 0.12
	}
	return c
}

// RoadNetwork generates the synthetic TIGER-like dataset.
func RoadNetwork(cfg RoadNetworkConfig) Dataset {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed ^ 0x726f6164)
	dom := cfg.Domain
	diag := math.Hypot(dom.Width(), dom.Height())

	// Town hubs inside each region.
	var hubs []geom.Point
	hubRegion := make([]int, 0)
	for ri, reg := range cfg.Regions {
		for i := 0; i < cfg.HubsPerRegion; i++ {
			hubs = append(hubs, geom.Point{
				X: src.UniformIn(reg.Lo.X, reg.Hi.X),
				Y: src.UniformIn(reg.Lo.Y, reg.Hi.Y),
			})
			hubRegion = append(hubRegion, ri)
		}
	}

	// Roads connect each hub to its nearest same-region neighbours: short
	// corridors, not cross-country chords.
	type segment struct{ a, b geom.Point }
	var segs []segment
	for i, h := range hubs {
		type cand struct {
			d float64
			j int
		}
		var near []cand
		for j, o := range hubs {
			if j == i || hubRegion[j] != hubRegion[i] {
				continue
			}
			near = append(near, cand{math.Hypot(h.X-o.X, h.Y-o.Y), j})
		}
		for k := 0; k < cfg.RoadsPerHub && len(near) > 0; k++ {
			best := 0
			for c := range near {
				if near[c].d < near[best].d {
					best = c
				}
			}
			segs = append(segs, segment{h, hubs[near[best].j]})
			near = append(near[:best], near[best+1:]...)
		}
	}

	clampIn := func(p geom.Point) geom.Point {
		p.X = clampF(p.X, dom.Lo.X, beforeUp(dom.Hi.X))
		p.Y = clampF(p.Y, dom.Lo.Y, beforeUp(dom.Hi.Y))
		return p
	}
	// Zipf-ish hub pick: hub k chosen with weight ∝ 1/(k+1).
	pickHub := func() geom.Point {
		u := src.Uniform()
		k := int(math.Expm1(u * math.Log(float64(len(hubs)+1)))) // ~log-uniform
		if k >= len(hubs) {
			k = len(hubs) - 1
		}
		return hubs[k]
	}

	jit := cfg.Jitter * diag
	nTown := int(float64(cfg.N) * cfg.TownFrac)
	nBackground := int(float64(cfg.N) * cfg.BackgroundFrac)
	pts := make([]geom.Point, 0, cfg.N)
	for len(pts) < nTown {
		h := pickHub()
		pts = append(pts, clampIn(geom.Point{
			X: h.X + src.Gaussian(0, 3*jit),
			Y: h.Y + src.Gaussian(0, 3*jit),
		}))
	}
	for len(pts) < cfg.N-nBackground && len(segs) > 0 {
		s := segs[src.Intn(len(segs))]
		// Denser near segment endpoints (intersections cluster in towns).
		t := src.Uniform()
		if src.Bernoulli(0.6) {
			t = t * t * t
			if src.Bernoulli(0.5) {
				t = 1 - t
			}
		}
		pts = append(pts, clampIn(geom.Point{
			X: s.a.X + t*(s.b.X-s.a.X) + src.Gaussian(0, jit),
			Y: s.a.Y + t*(s.b.Y-s.a.Y) + src.Gaussian(0, jit),
		}))
	}
	for len(pts) < cfg.N {
		reg := cfg.Regions[src.Intn(len(cfg.Regions))]
		pts = append(pts, clampIn(geom.Point{
			X: src.UniformIn(reg.Lo.X, reg.Hi.X),
			Y: src.UniformIn(reg.Lo.Y, reg.Hi.Y),
		}))
	}
	return Dataset{
		Name:   fmt.Sprintf("road-%d", cfg.N),
		Domain: dom,
		Points: pts,
	}
}

// Uniform generates n uniform points over dom.
func Uniform(n int, dom geom.Rect, seed int64) Dataset {
	src := rng.New(seed ^ 0x756e69)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: src.UniformIn(dom.Lo.X, dom.Hi.X),
			Y: src.UniformIn(dom.Lo.Y, dom.Hi.Y),
		}
	}
	return Dataset{Name: fmt.Sprintf("uniform-%d", n), Domain: dom, Points: pts}
}

// GaussianClusters generates n points from k Gaussian blobs with the given
// relative standard deviation (fraction of domain size), clamped into dom.
func GaussianClusters(n, k int, relSD float64, dom geom.Rect, seed int64) Dataset {
	src := rng.New(seed ^ 0x676175)
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{
			X: src.UniformIn(dom.Lo.X, dom.Hi.X),
			Y: src.UniformIn(dom.Lo.Y, dom.Hi.Y),
		}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[src.Intn(k)]
		pts[i] = geom.Point{
			X: clampF(c.X+src.Gaussian(0, relSD*dom.Width()), dom.Lo.X, beforeUp(dom.Hi.X)),
			Y: clampF(c.Y+src.Gaussian(0, relSD*dom.Height()), dom.Lo.Y, beforeUp(dom.Hi.Y)),
		}
	}
	return Dataset{Name: fmt.Sprintf("gauss-%d-%d", n, k), Domain: dom, Points: pts}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func beforeUp(v float64) float64 { return math.Nextafter(v, math.Inf(-1)) }
