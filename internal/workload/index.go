package workload

import (
	"fmt"
	"math"
	"sort"

	"psd/internal/geom"
)

// CountIndex answers exact rectangular count queries over a fixed point set
// in roughly O(perimeter) time: points are bucketed on a uniform grid, full
// buckets are summed through a 2-D prefix-sum table, and only the boundary
// buckets are scanned point by point. The evaluation harness uses it to
// compute true answers for hundreds of queries over millions of points.
type CountIndex struct {
	domain geom.Rect
	g      int // grid side
	cellW  float64
	cellH  float64
	// CSR layout: pts sorted by cell, starts[c] .. starts[c+1] the range of
	// cell c = cy*g + cx.
	pts    []geom.Point
	starts []int32
	// prefix[(cy)(g+1)+(cx)] = count of points in cells [0,cx) × [0,cy).
	prefix []int64
}

// NewCountIndex builds an index with a g×g bucket grid (g is clamped to
// [1, 2048]).
func NewCountIndex(points []geom.Point, domain geom.Rect, g int) (*CountIndex, error) {
	if domain.Empty() {
		return nil, fmt.Errorf("workload: empty domain %v", domain)
	}
	if g < 1 {
		g = 1
	}
	if g > 2048 {
		g = 2048
	}
	idx := &CountIndex{
		domain: domain,
		g:      g,
		cellW:  domain.Width() / float64(g),
		cellH:  domain.Height() / float64(g),
	}
	cellOf := func(p geom.Point) int {
		cx := idx.clamp(int((p.X - domain.Lo.X) / idx.cellW))
		cy := idx.clamp(int((p.Y - domain.Lo.Y) / idx.cellH))
		return cy*g + cx
	}
	// Counting sort into CSR.
	counts := make([]int32, g*g+1)
	for _, p := range points {
		counts[cellOf(p)+1]++
	}
	idx.starts = make([]int32, g*g+1)
	for c := 1; c <= g*g; c++ {
		idx.starts[c] = idx.starts[c-1] + counts[c]
	}
	idx.pts = make([]geom.Point, len(points))
	cursor := make([]int32, g*g)
	copy(cursor, idx.starts[:g*g])
	for _, p := range points {
		c := cellOf(p)
		idx.pts[cursor[c]] = p
		cursor[c]++
	}
	// Prefix sums over cell counts.
	idx.prefix = make([]int64, (g+1)*(g+1))
	for cy := 0; cy < g; cy++ {
		var row int64
		for cx := 0; cx < g; cx++ {
			row += int64(idx.starts[cy*g+cx+1] - idx.starts[cy*g+cx])
			idx.prefix[(cy+1)*(g+1)+cx+1] = idx.prefix[cy*(g+1)+cx+1] + row
		}
	}
	return idx, nil
}

func (idx *CountIndex) clamp(c int) int {
	if c < 0 {
		return 0
	}
	if c >= idx.g {
		return idx.g - 1
	}
	return c
}

// Len returns the number of indexed points.
func (idx *CountIndex) Len() int { return len(idx.pts) }

// Domain returns the indexed domain.
func (idx *CountIndex) Domain() geom.Rect { return idx.domain }

// rectSum returns the point count of the cell rectangle [cx0,cx1)×[cy0,cy1)
// via the prefix table.
func (idx *CountIndex) rectSum(cx0, cy0, cx1, cy1 int) int64 {
	if cx0 >= cx1 || cy0 >= cy1 {
		return 0
	}
	g1 := idx.g + 1
	return idx.prefix[cy1*g1+cx1] - idx.prefix[cy0*g1+cx1] -
		idx.prefix[cy1*g1+cx0] + idx.prefix[cy0*g1+cx0]
}

// Count returns the exact number of indexed points inside q.
func (idx *CountIndex) Count(q geom.Rect) int64 {
	inter, ok := idx.domain.Intersect(q)
	if !ok {
		// Points clamp into the domain at indexing time, so anything
		// outside contributes nothing — but q may still contain boundary
		// points exactly on the domain edge; treat via full scan of edge
		// cells only when q touches the domain at all.
		return 0
	}
	// Cell range the query touches.
	cx0 := idx.clamp(int(math.Floor((inter.Lo.X - idx.domain.Lo.X) / idx.cellW)))
	cx1 := idx.clamp(int(math.Ceil((inter.Hi.X-idx.domain.Lo.X)/idx.cellW)) - 1)
	cy0 := idx.clamp(int(math.Floor((inter.Lo.Y - idx.domain.Lo.Y) / idx.cellH)))
	cy1 := idx.clamp(int(math.Ceil((inter.Hi.Y-idx.domain.Lo.Y)/idx.cellH)) - 1)

	// Interior cells fully covered by q.
	fx0, fy0 := cx0, cy0
	if idx.cellLoX(cx0) < q.Lo.X {
		fx0++
	}
	if idx.cellLoY(cy0) < q.Lo.Y {
		fy0++
	}
	fx1, fy1 := cx1, cy1
	if idx.cellHiX(cx1) > q.Hi.X {
		fx1--
	}
	if idx.cellHiY(cy1) > q.Hi.Y {
		fy1--
	}
	var total int64
	if fx0 <= fx1 && fy0 <= fy1 {
		total = idx.rectSum(fx0, fy0, fx1+1, fy1+1)
	} else {
		fx0, fx1 = cx1+1, cx0-1 // mark "no interior" for the boundary scan
		fy0, fy1 = cy1+1, cy0-1
	}
	// Boundary cells: scan points.
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			if cx >= fx0 && cx <= fx1 && cy >= fy0 && cy <= fy1 {
				continue // interior, already counted
			}
			c := cy*idx.g + cx
			for _, p := range idx.pts[idx.starts[c]:idx.starts[c+1]] {
				if q.Contains(p) {
					total++
				}
			}
		}
	}
	return total
}

func (idx *CountIndex) cellLoX(cx int) float64 {
	return idx.domain.Lo.X + float64(cx)*idx.cellW
}
func (idx *CountIndex) cellHiX(cx int) float64 {
	return idx.domain.Lo.X + float64(cx+1)*idx.cellW
}
func (idx *CountIndex) cellLoY(cy int) float64 {
	return idx.domain.Lo.Y + float64(cy)*idx.cellH
}
func (idx *CountIndex) cellHiY(cy int) float64 {
	return idx.domain.Lo.Y + float64(cy+1)*idx.cellH
}

// QueryShape is a rectangular query size in domain units; the paper
// expresses shapes in degrees, e.g. (15, 0.2) is a 1050 × 14 mile strip.
type QueryShape struct {
	W, H float64
}

// String implements fmt.Stringer in the paper's "(w,h)" notation.
func (s QueryShape) String() string {
	return fmt.Sprintf("(%g,%g)", s.W, s.H)
}

// PaperShapes lists the query shapes used across Figures 3, 5 and 6.
var PaperShapes = []QueryShape{{1, 1}, {5, 5}, {10, 10}, {15, 0.2}}

// Queries is a query workload with precomputed exact answers.
type Queries struct {
	Shape   QueryShape
	Rects   []geom.Rect
	Answers []float64
}

// GenQueries generates count queries of the given shape placed uniformly at
// random inside the domain, keeping only queries with a non-zero exact
// answer (as the paper does), until n queries are found. It gives up with
// an error if the acceptance rate is pathologically low.
func GenQueries(idx *CountIndex, shape QueryShape, n int, seed int64) (*Queries, error) {
	dom := idx.Domain()
	w := math.Min(shape.W, dom.Width())
	h := math.Min(shape.H, dom.Height())
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("workload: non-positive query shape %v", shape)
	}
	src := newSplitmix(seed ^ 0x717565)
	q := &Queries{Shape: shape}
	attempts := 0
	maxAttempts := 1000*n + 1000
	for len(q.Rects) < n {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("workload: only %d/%d non-empty %v queries after %d attempts",
				len(q.Rects), n, shape, attempts)
		}
		x := dom.Lo.X + src.float()*(dom.Width()-w)
		y := dom.Lo.Y + src.float()*(dom.Height()-h)
		r := geom.Rect{Lo: geom.Point{X: x, Y: y}, Hi: geom.Point{X: x + w, Y: y + h}}
		ans := idx.Count(r)
		if ans <= 0 {
			continue
		}
		q.Rects = append(q.Rects, r)
		q.Answers = append(q.Answers, float64(ans))
	}
	return q, nil
}

// Median returns the median of a slice (not modifying it).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// splitmix is a tiny self-contained PRNG so query generation does not
// perturb the shared rng streams used by mechanisms.
type splitmix struct{ s uint64 }

func newSplitmix(seed int64) *splitmix { return &splitmix{s: uint64(seed)*2862933555777941757 + 1} }

func (m *splitmix) next() uint64 {
	m.s += 0x9e3779b97f4a7c15
	z := m.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (m *splitmix) float() float64 {
	return float64(m.next()>>11) / float64(1<<53)
}
