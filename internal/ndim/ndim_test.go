package ndim

import (
	"math"
	"testing"

	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/geom"
	"psd/internal/rng"
)

func cube(d int, lo, hi float64) Box {
	l := make([]float64, d)
	h := make([]float64, d)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	b, err := NewBox(l, h)
	if err != nil {
		panic(err)
	}
	return b
}

func randPoints(n, d int, box Box, seed int64) [][]float64 {
	src := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for k := 0; k < d; k++ {
			p[k] = src.UniformIn(box.Lo[k], box.Hi[k])
		}
		pts[i] = p
	}
	return pts
}

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox([]float64{0}, []float64{1, 2}); err == nil {
		t.Error("dim mismatch should error")
	}
	if _, err := NewBox(nil, nil); err == nil {
		t.Error("zero dims should error")
	}
	if _, err := NewBox([]float64{1}, []float64{1}); err == nil {
		t.Error("degenerate extent should error")
	}
	if _, err := NewBox([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN bound should error")
	}
}

func TestBoxOperations(t *testing.T) {
	b := cube(3, 0, 4)
	if b.Volume() != 64 {
		t.Errorf("Volume = %v, want 64", b.Volume())
	}
	if !b.Contains([]float64{0, 0, 0}) || b.Contains([]float64{4, 0, 0}) {
		t.Error("half-open containment wrong")
	}
	inner := cube(3, 1, 2)
	if !b.ContainsBox(inner) || !b.Intersects(inner) {
		t.Error("containment/intersection wrong")
	}
	far := cube(3, 10, 11)
	if b.Intersects(far) {
		t.Error("disjoint boxes intersect")
	}
	if got := inner.OverlapFraction(b); math.Abs(got-1) > 1e-12 {
		t.Errorf("full overlap fraction = %v", got)
	}
	half, _ := NewBox([]float64{0, 0, 0}, []float64{2, 4, 4})
	if got := b.OverlapFraction(half); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half overlap fraction = %v", got)
	}
}

func TestOrthantsTile(t *testing.T) {
	b := cube(3, 0, 8)
	var vol float64
	for k := 0; k < 8; k++ {
		o := b.orthant(k)
		vol += o.Volume()
		if !b.ContainsBox(o) {
			t.Errorf("orthant %d escapes parent", k)
		}
		for j := 0; j < k; j++ {
			if o.Intersects(b.orthant(j)) {
				t.Errorf("orthants %d and %d overlap", k, j)
			}
		}
	}
	if math.Abs(vol-b.Volume()) > 1e-9 {
		t.Errorf("orthant volumes sum to %v, want %v", vol, b.Volume())
	}
}

func TestBuildValidation(t *testing.T) {
	box3 := cube(3, 0, 1)
	if _, err := Build(nil, Box{}, Config{Height: 1, Epsilon: 1}); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := Build(nil, box3, Config{Height: -1, Epsilon: 1}); err == nil {
		t.Error("negative height should error")
	}
	if _, err := Build(nil, box3, Config{Height: 1}); err == nil {
		t.Error("zero epsilon should error")
	}
	if _, err := Build([][]float64{{0.5}}, box3, Config{Height: 1, Epsilon: 1}); err == nil {
		t.Error("dim-mismatched point should error")
	}
	if _, err := Build([][]float64{{math.NaN(), 0, 0}}, box3, Config{Height: 1, Epsilon: 1}); err == nil {
		t.Error("NaN point should error")
	}
	if _, err := Build(nil, cube(3, 0, 1), Config{Height: 9, Epsilon: 1}); err == nil {
		t.Error("oversized tree should error")
	}
}

func TestOctreeExactCounts(t *testing.T) {
	box := cube(3, 0, 8)
	pts := randPoints(4096, 3, box, 1)
	tr, err := Build(pts, box, Config{Height: 2, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dims() != 3 || tr.Fanout() != 8 {
		t.Errorf("dims/fanout = %d/%d", tr.Dims(), tr.Fanout())
	}
	if got := tr.Count(box); math.Abs(got-4096) > 1e-9 {
		t.Errorf("full count = %v, want 4096", got)
	}
	// Octant-aligned queries are exact.
	oct := cube(3, 0, 4)
	want := 0.0
	for _, p := range pts {
		if oct.Contains(p) {
			want++
		}
	}
	if got := tr.Count(oct); math.Abs(got-want) > 1e-9 {
		t.Errorf("octant count = %v, want %v", got, want)
	}
	// Query equals the exact recursion for arbitrary boxes.
	q, _ := NewBox([]float64{0.7, 1.3, 2.9}, []float64{5.1, 6.6, 7.2})
	if got, wantU := tr.Count(q), tr.TrueCount(q); math.Abs(got-wantU) > 1e-9 {
		t.Errorf("unaligned count = %v, want %v", got, wantU)
	}
}

func TestPrivacyCostAndNoise(t *testing.T) {
	box := cube(4, 0, 16)
	pts := randPoints(2000, 4, box, 2)
	tr, err := Build(pts, box, Config{Height: 2, Epsilon: 0.8, Seed: 3, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.PrivacyCost(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 0.8", got)
	}
	got := tr.Count(box)
	if math.Abs(got-2000) > 500 {
		t.Errorf("full count = %v, want ≈ 2000", got)
	}
	// Dim-mismatched query returns NaN rather than nonsense.
	if !math.IsNaN(tr.Count(cube(2, 0, 1))) {
		t.Error("dim mismatch should return NaN")
	}
}

func TestOptimalRatio(t *testing.T) {
	// d=2 recovers Lemma 3's 2^(1/3).
	if got := OptimalRatio(2); math.Abs(got-math.Cbrt(2)) > 1e-12 {
		t.Errorf("OptimalRatio(2) = %v, want 2^(1/3)", got)
	}
	// Higher dimensions grow the ratio: more of n(Q) concentrates at the
	// leaves (n(Q) = O(f^{h(1-1/d)})).
	if OptimalRatio(3) <= OptimalRatio(2) {
		t.Error("optimal ratio should grow with d")
	}
}

// The d-dimensional OLS restatement must agree exactly with the 2-D
// implementation: build the same structure through both engines with the
// same noisy counts and compare every estimate.
func TestOLSAgreesWith2D(t *testing.T) {
	src := rng.New(7)
	const h = 3
	dom2 := geom.NewRect(0, 0, 16, 16)
	var pts2 []geom.Point
	var ptsN [][]float64
	for i := 0; i < 1500; i++ {
		x, y := src.UniformIn(0, 16), src.UniformIn(0, 16)
		pts2 = append(pts2, geom.Point{X: x, Y: y})
		ptsN = append(ptsN, []float64{x, y})
	}
	// Same seed/noise through the same dp.Laplace stream order requires the
	// same node enumeration; instead compare with zero noise, where OLS is
	// the identity on consistent inputs, and separately with a shared
	// deterministic "noise" pattern below.
	p2, err := core.Build(pts2, dom2, core.Config{Kind: core.Quadtree, Height: h, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	box2 := cube(2, 0, 16)
	pn, err := Build(ptsN, box2, Config{Height: h, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Len() != pn.Len() {
		t.Fatalf("node counts differ: %d vs %d", p2.Len(), pn.Len())
	}
	// Exact counts agree per node index modulo child ordering; compare
	// through queries instead, which are ordering-independent.
	for trial := 0; trial < 50; trial++ {
		x1, x2 := src.UniformIn(0, 16), src.UniformIn(0, 16)
		y1, y2 := src.UniformIn(0, 16), src.UniformIn(0, 16)
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		if x2 <= x1 || y2 <= y1 {
			continue
		}
		q2 := geom.NewRect(x1, y1, x2, y2)
		qn, _ := NewBox([]float64{x1, y1}, []float64{x2, y2})
		a, b := p2.Query(q2), pn.Count(qn)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("2-D %v vs ndim %v on %v", a, b, q2)
		}
	}

	// Now with noise: both engines get identical per-node "noise" via a
	// deterministic pattern source, then OLS runs in each; estimates must
	// agree through queries (the OLS solution is unique).
	pattern := &patternNoise{}
	p2n, err := core.Build(pts2, dom2, core.Config{
		Kind: core.Quadtree, Height: h, Epsilon: 1, Noise: pattern,
		Strategy: budget.Geometric{}, PostProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pattern2 := &patternNoise{}
	pnn, err := Build(ptsN, box2, Config{
		Height: h, Epsilon: 1, Noise: pattern2,
		Strategy: budget.Geometric{}, PostProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The two engines enumerate nodes in different child orders, so
	// per-node noise differs; but with a value-dependent deterministic
	// pattern (noise = g(true count, eps)) the multiset of (node, noisy)
	// pairs per region is identical, and query answers must match.
	for trial := 0; trial < 50; trial++ {
		x1, x2 := src.UniformIn(0, 16), src.UniformIn(0, 16)
		y1, y2 := src.UniformIn(0, 16), src.UniformIn(0, 16)
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		if x2 <= x1 || y2 <= y1 {
			continue
		}
		a := p2n.Query(geom.NewRect(x1, y1, x2, y2))
		qn, _ := NewBox([]float64{x1, y1}, []float64{x2, y2})
		b := pnn.Count(qn)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("post-processed: 2-D %v vs ndim %v", a, b)
		}
	}
}

// patternNoise perturbs deterministically as a function of (value, eps):
// the same logical node gets the same "noise" in both engines regardless of
// enumeration order.
type patternNoise struct{}

func (patternNoise) Add(value, _, eps float64) float64 {
	return value + math.Sin(value*13.37+eps*7.7)/eps
}

func (patternNoise) Variance(_, eps float64) float64 { return 0.5 / (eps * eps) }

// The Lemma 2 d-dimensional remark: worst-case n(Q) grows like
// f^{h(1-1/d)} = (2^(d-1))^h. Verify empirically that an octree's maximal
// node count for large queries exceeds the quadtree's at equal height
// (more dimensions → more boundary).
func TestNodeGrowthWithDimension(t *testing.T) {
	src := rng.New(11)
	count := func(d, h int) int {
		box := cube(d, 0, 1)
		pts := randPoints(512, d, box, int64(d*100+h))
		tr, err := Build(pts, box, Config{Height: h, NonPrivate: true})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0
		for trial := 0; trial < 40; trial++ {
			lo := make([]float64, d)
			hi := make([]float64, d)
			for k := 0; k < d; k++ {
				a, b := src.UniformIn(0, 1), src.UniformIn(0, 1)
				if b < a {
					a, b = b, a
				}
				lo[k], hi[k] = a*0.3, 0.6+b*0.4 // large-ish boxes
			}
			q, err := NewBox(lo, hi)
			if err != nil {
				continue
			}
			n := tr.maximalNodes(0, q)
			if n > worst {
				worst = n
			}
		}
		return worst
	}
	q2 := count(2, 3)
	q3 := count(3, 3)
	if q3 <= q2 {
		t.Errorf("octree worst n(Q)=%d should exceed quadtree's %d", q3, q2)
	}
}
