// Package ndim extends the private spatial decompositions to d dimensions,
// the generalization the paper sketches: Section 4 remarks that the Lemma 2
// node-count analysis "extends to d dimensional decompositions, where the
// behavior is n(Q) = O(f^{h(1-1/d)})", and Section 9 names higher
// dimensional data as ongoing work.
//
// The package implements the data-independent member of the family — the
// generalized quadtree (octree for d = 3, hyperoctree in general) with
// midpoint splits and fanout 2^d — together with the full count pipeline of
// the 2-D engine: per-level Laplace budgets from a budget.Strategy, the
// three-phase OLS post-processing of Section 5 (which is dimension-
// agnostic: it only sees the complete tree), and canonical range queries
// with the uniformity assumption.
//
// Points and boxes are plain float64 slices; dimensions up to MaxDims are
// supported, bounded by the 2^d fanout.
package ndim

import (
	"fmt"
	"math"

	"psd/internal/budget"
	"psd/internal/dp"
	"psd/internal/rng"
)

// MaxDims bounds the dimensionality (fanout 2^d grows fast; 6 dims is a
// 64-ary tree).
const MaxDims = 6

// Box is an axis-aligned half-open box: [Lo[i], Hi[i]) per dimension.
type Box struct {
	Lo, Hi []float64
}

// NewBox validates and returns a box over the given bounds.
func NewBox(lo, hi []float64) (Box, error) {
	if len(lo) != len(hi) {
		return Box{}, fmt.Errorf("ndim: bounds have %d and %d dims", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Box{}, fmt.Errorf("ndim: zero-dimensional box")
	}
	for i := range lo {
		if !(lo[i] < hi[i]) || math.IsNaN(lo[i]) || math.IsInf(lo[i], 0) || math.IsInf(hi[i], 0) {
			return Box{}, fmt.Errorf("ndim: invalid extent [%v, %v) in dim %d", lo[i], hi[i], i)
		}
	}
	return Box{Lo: append([]float64(nil), lo...), Hi: append([]float64(nil), hi...)}, nil
}

// Dims returns the box's dimensionality.
func (b Box) Dims() int { return len(b.Lo) }

// Volume returns the product of the box's extents.
func (b Box) Volume() float64 {
	v := 1.0
	for i := range b.Lo {
		v *= b.Hi[i] - b.Lo[i]
	}
	return v
}

// Contains reports whether p lies inside the half-open box.
func (b Box) Contains(p []float64) bool {
	for i := range b.Lo {
		if p[i] < b.Lo[i] || p[i] >= b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely within b.
func (b Box) ContainsBox(o Box) bool {
	for i := range b.Lo {
		if o.Lo[i] < b.Lo[i] || o.Hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share interior volume.
func (b Box) Intersects(o Box) bool {
	for i := range b.Lo {
		if b.Lo[i] >= o.Hi[i] || o.Lo[i] >= b.Hi[i] {
			return false
		}
	}
	return true
}

// OverlapFraction returns vol(b ∩ q)/vol(b), the d-dimensional uniformity
// weight; 0 for empty boxes or no overlap.
func (b Box) OverlapFraction(q Box) float64 {
	vol := b.Volume()
	if vol <= 0 {
		return 0
	}
	inter := 1.0
	for i := range b.Lo {
		lo := math.Max(b.Lo[i], q.Lo[i])
		hi := math.Min(b.Hi[i], q.Hi[i])
		if hi <= lo {
			return 0
		}
		inter *= hi - lo
	}
	return inter / vol
}

// orthant returns the k-th orthant of b (bit i of k selects the upper half
// along dimension i).
func (b Box) orthant(k int) Box {
	lo := make([]float64, b.Dims())
	hi := make([]float64, b.Dims())
	for i := range b.Lo {
		mid := (b.Lo[i] + b.Hi[i]) / 2
		if k&(1<<i) == 0 {
			lo[i], hi[i] = b.Lo[i], mid
		} else {
			lo[i], hi[i] = mid, b.Hi[i]
		}
	}
	return Box{Lo: lo, Hi: hi}
}

// Config controls a d-dimensional build.
type Config struct {
	// Height is the tree height; the tree has (2^d)^Height leaves.
	Height int
	// Epsilon is the total privacy budget.
	Epsilon float64
	// Strategy allocates the budget per level (default budget.Geometric
	// with the d-dimensional optimal ratio; see OptimalRatio).
	Strategy budget.Strategy
	// PostProcess runs the OLS re-estimation (default recommended).
	PostProcess bool
	// Noise is the count mechanism (default seeded Laplace).
	Noise dp.NoiseSource
	// Seed fixes randomness.
	Seed int64
	// NonPrivate builds the exact baseline (no noise; Epsilon ignored).
	NonPrivate bool
}

// OptimalRatio returns the geometric budget ratio minimizing the worst-case
// error model in d dimensions: the Lemma 2 remark gives n_i growing by
// f^(1-1/d) per level with f = 2^d, so the Cauchy–Schwarz optimum of
// Lemma 3 becomes (2^(d-1))^(1/3).
func OptimalRatio(d int) float64 {
	return math.Cbrt(math.Pow(2, float64(d-1)))
}

// Tree is a built d-dimensional private decomposition.
type Tree struct {
	dims    int
	fanout  int
	height  int
	offsets []int
	boxes   []Box
	trueCt  []float64
	est     []float64
	pub     []bool
	eps     []float64
	epsilon float64
}

// node count helpers mirroring internal/tree, for fanout 2^d.
func levelOffsets(fanout, height int) ([]int, error) {
	offsets := make([]int, height+2)
	total, size := 0, 1
	for dph := 0; dph <= height; dph++ {
		offsets[dph] = total
		total += size
		if total > 1<<24 {
			return nil, fmt.Errorf("ndim: tree too large (fanout %d, height %d)", fanout, height)
		}
		size *= fanout
	}
	offsets[height+1] = total
	return offsets, nil
}

// Build constructs the decomposition over points inside domain. Points
// outside the domain are clamped; non-finite coordinates are an error.
func Build(points [][]float64, domain Box, cfg Config) (*Tree, error) {
	d := domain.Dims()
	if d < 1 || d > MaxDims {
		return nil, fmt.Errorf("ndim: %d dimensions outside [1,%d]", d, MaxDims)
	}
	if cfg.Height < 0 {
		return nil, fmt.Errorf("ndim: negative height")
	}
	if !cfg.NonPrivate && (cfg.Epsilon <= 0 || math.IsNaN(cfg.Epsilon) || math.IsInf(cfg.Epsilon, 0)) {
		return nil, fmt.Errorf("ndim: invalid epsilon %v", cfg.Epsilon)
	}
	if cfg.Strategy == nil {
		cfg.Strategy = budget.Geometric{Ratio: OptimalRatio(d)}
	}
	if cfg.Noise == nil {
		if cfg.NonPrivate {
			cfg.Noise = dp.ZeroNoise{}
		} else {
			cfg.Noise = newSeededLaplace(cfg.Seed)
		}
	}
	fanout := 1 << d
	offsets, err := levelOffsets(fanout, cfg.Height)
	if err != nil {
		return nil, err
	}
	total := offsets[cfg.Height+1]
	t := &Tree{
		dims:    d,
		fanout:  fanout,
		height:  cfg.Height,
		offsets: offsets,
		boxes:   make([]Box, total),
		trueCt:  make([]float64, total),
		est:     make([]float64, total),
		pub:     make([]bool, total),
		epsilon: cfg.Epsilon,
	}

	// Clamp points into the domain.
	pts := make([][]float64, len(points))
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("ndim: point %d has %d dims, want %d", i, len(p), d)
		}
		q := make([]float64, d)
		for k, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("ndim: point %d has non-finite coordinate", i)
			}
			if v < domain.Lo[k] {
				v = domain.Lo[k]
			}
			if v >= domain.Hi[k] {
				v = math.Nextafter(domain.Hi[k], math.Inf(-1))
			}
			q[k] = v
		}
		pts[i] = q
	}

	// Structure + exact counts by recursive orthant partition.
	t.boxes[0] = domain
	var rec func(idx int, pts [][]float64, depth int)
	rec = func(idx int, sub [][]float64, depth int) {
		t.trueCt[idx] = float64(len(sub))
		if depth == cfg.Height {
			return
		}
		box := t.boxes[idx]
		cs := t.childStart(idx)
		// Bucket points by orthant (stable, out-of-place; subtree slices
		// stay views into this node's buffer region).
		buckets := make([][][]float64, fanout)
		for _, p := range sub {
			k := 0
			for i := 0; i < d; i++ {
				if p[i] >= (box.Lo[i]+box.Hi[i])/2 {
					k |= 1 << i
				}
			}
			buckets[k] = append(buckets[k], p)
		}
		for k := 0; k < fanout; k++ {
			t.boxes[cs+k] = box.orthant(k)
			rec(cs+k, buckets[k], depth+1)
		}
	}
	rec(0, pts, 0)

	// Counts per level.
	var levels []float64
	if cfg.NonPrivate {
		levels = make([]float64, cfg.Height+1)
		for i := range t.est {
			t.est[i] = t.trueCt[i]
			t.pub[i] = true
		}
	} else {
		levels, err = cfg.Strategy.Levels(cfg.Height, cfg.Epsilon)
		if err != nil {
			return nil, err
		}
		noisy := make([]float64, total)
		for dph := 0; dph <= cfg.Height; dph++ {
			eps := levels[cfg.Height-dph]
			lo, hi := offsets[dph], offsets[dph+1]
			for i := lo; i < hi; i++ {
				if eps > 0 {
					noisy[i] = cfg.Noise.Add(t.trueCt[i], 1, eps)
					t.pub[i] = true
				}
			}
		}
		if cfg.PostProcess {
			if err := estimateOLS(t, noisy, levels); err != nil {
				return nil, err
			}
		} else {
			for i := range noisy {
				if t.pub[i] {
					t.est[i] = noisy[i]
				}
			}
		}
	}
	t.eps = levels
	return t, nil
}

func (t *Tree) childStart(idx int) int {
	dph := t.depth(idx)
	pos := idx - t.offsets[dph]
	return t.offsets[dph+1] + pos*t.fanout
}

func (t *Tree) parent(idx int) int {
	if idx == 0 {
		return -1
	}
	dph := t.depth(idx)
	pos := idx - t.offsets[dph]
	return t.offsets[dph-1] + pos/t.fanout
}

func (t *Tree) depth(idx int) int {
	for dph := t.height; dph >= 0; dph-- {
		if idx >= t.offsets[dph] {
			return dph
		}
	}
	panic("ndim: index out of range")
}

func (t *Tree) isLeaf(idx int) bool { return idx >= t.offsets[t.height] }

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Fanout returns 2^d.
func (t *Tree) Fanout() int { return t.fanout }

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.boxes) }

// PrivacyCost returns the per-path composition Σ ε_i.
func (t *Tree) PrivacyCost() float64 {
	var sum float64
	for _, e := range t.eps {
		sum += e
	}
	return sum
}

// Count estimates the number of points in q by the canonical method with
// the d-dimensional uniformity assumption.
func (t *Tree) Count(q Box) float64 {
	if q.Dims() != t.dims {
		return math.NaN()
	}
	return t.queryNode(0, q)
}

func (t *Tree) queryNode(idx int, q Box) float64 {
	box := t.boxes[idx]
	if !box.Intersects(q) {
		return 0
	}
	usable := t.pub[idx]
	if q.ContainsBox(box) && usable {
		return t.est[idx]
	}
	if t.isLeaf(idx) {
		if !usable {
			return 0
		}
		return t.est[idx] * box.OverlapFraction(q)
	}
	var sum float64
	cs := t.childStart(idx)
	for k := 0; k < t.fanout; k++ {
		sum += t.queryNode(cs+k, q)
	}
	return sum
}

// TrueCount returns the exact canonical-recursion answer (evaluation only).
func (t *Tree) TrueCount(q Box) float64 {
	return t.trueNode(0, q)
}

func (t *Tree) trueNode(idx int, q Box) float64 {
	box := t.boxes[idx]
	if !box.Intersects(q) {
		return 0
	}
	if q.ContainsBox(box) {
		return t.trueCt[idx]
	}
	if t.isLeaf(idx) {
		return t.trueCt[idx] * box.OverlapFraction(q)
	}
	var sum float64
	cs := t.childStart(idx)
	for k := 0; k < t.fanout; k++ {
		sum += t.trueNode(cs+k, q)
	}
	return sum
}

// estimateOLS is the Section 5 three-phase algorithm for arbitrary fanout —
// the same computation as internal/ols.Estimate, restated over this
// package's arena (the 2-D implementation is tied to the fanout-4 node
// type). TestOLSAgreesWith2D pins the two implementations to each other.
func estimateOLS(t *Tree, noisy, epsByLevel []float64) error {
	h := t.height
	eps2 := make([]float64, h+1)
	for i, e := range epsByLevel {
		if e < 0 || math.IsNaN(e) {
			return fmt.Errorf("ndim: invalid ε_%d = %v", i, e)
		}
		eps2[i] = e * e
	}
	if eps2[0] == 0 {
		return fmt.Errorf("ndim: leaf level carries no budget")
	}
	f := float64(t.fanout)
	powF := make([]float64, h+1)
	E := make([]float64, h+1)
	fj, acc := 1.0, 0.0
	for j := 0; j <= h; j++ {
		powF[j] = fj
		acc += fj * eps2[j]
		E[j] = acc
		fj *= f
	}
	pubNoisy := func(i, level int) float64 {
		if !t.pub[i] {
			return 0
		}
		_ = level
		return noisy[i]
	}
	z := make([]float64, t.Len())
	z[0] = eps2[h] * pubNoisy(0, h)
	for dph := 1; dph <= h; dph++ {
		lo, hi := t.offsets[dph], t.offsets[dph+1]
		level := h - dph
		for i := lo; i < hi; i++ {
			z[i] = z[t.parent(i)] + eps2[level]*pubNoisy(i, level)
		}
	}
	for dph := h - 1; dph >= 0; dph-- {
		lo, hi := t.offsets[dph], t.offsets[dph+1]
		for i := lo; i < hi; i++ {
			cs := t.childStart(i)
			var sum float64
			for k := 0; k < t.fanout; k++ {
				sum += z[cs+k]
			}
			z[i] = sum
		}
	}
	F := make([]float64, t.Len())
	t.est[0] = z[0] / E[h]
	t.pub[0] = true
	for dph := 1; dph <= h; dph++ {
		lo, hi := t.offsets[dph], t.offsets[dph+1]
		level := h - dph
		for i := lo; i < hi; i++ {
			p := t.parent(i)
			F[i] = F[p] + t.est[p]*eps2[level+1]
			t.est[i] = (z[i] - powF[level]*F[i]) / E[level]
			t.pub[i] = true
		}
	}
	return nil
}

// newSeededLaplace builds a deterministic Laplace source.
func newSeededLaplace(seed int64) dp.NoiseSource {
	return dp.NewLaplace(rng.New(seed ^ 0x6e64696d))
}

// maximalNodes counts the nodes maximally contained in q (partial leaves
// included) — the n(Q) statistic of the Section 4 error analysis.
func (t *Tree) maximalNodes(idx int, q Box) int {
	box := t.boxes[idx]
	if !box.Intersects(q) {
		return 0
	}
	if q.ContainsBox(box) || t.isLeaf(idx) {
		return 1
	}
	n := 0
	cs := t.childStart(idx)
	for k := 0; k < t.fanout; k++ {
		n += t.maximalNodes(cs+k, q)
	}
	return n
}
