package budget

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformLevels(t *testing.T) {
	levels, err := Uniform{}.Levels(9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 10 {
		t.Fatalf("len = %d, want 10", len(levels))
	}
	for i, e := range levels {
		if math.Abs(e-0.1) > 1e-12 {
			t.Errorf("ε_%d = %v, want 0.1", i, e)
		}
	}
	if err := Check(levels, 1.0); err != nil {
		t.Error(err)
	}
}

func TestGeometricLevels(t *testing.T) {
	const h, eps = 10, 0.5
	levels, err := Geometric{}.Levels(h, eps)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(levels, eps); err != nil {
		t.Error(err)
	}
	// Lemma 3 closed form: ε_i = 2^((h-i)/3)·ε·(2^(1/3)-1)/(2^((h+1)/3)-1).
	for i := 0; i <= h; i++ {
		want := math.Pow(2, float64(h-i)/3) * eps *
			(math.Cbrt(2) - 1) / (math.Pow(2, float64(h+1)/3) - 1)
		if math.Abs(levels[i]-want) > 1e-12 {
			t.Errorf("ε_%d = %v, want %v", i, levels[i], want)
		}
	}
	// Budget grows from root (level h) toward leaves (level 0) by 2^(1/3).
	for i := 0; i < h; i++ {
		ratio := levels[i] / levels[i+1]
		if math.Abs(ratio-GeometricRatio) > 1e-9 {
			t.Errorf("ratio at level %d = %v, want %v", i, ratio, GeometricRatio)
		}
	}
	if levels[0] <= levels[h] {
		t.Error("leaves should get the largest share")
	}
}

func TestGeometricRatioOne(t *testing.T) {
	levels, err := Geometric{Ratio: 1}.Levels(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := Uniform{}.Levels(4, 1)
	for i := range levels {
		if math.Abs(levels[i]-uniform[i]) > 1e-12 {
			t.Error("ratio-1 geometric should equal uniform")
		}
	}
}

func TestLeafOnly(t *testing.T) {
	levels, err := LeafOnly{}.Levels(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if levels[0] != 0.3 {
		t.Errorf("leaf budget = %v, want 0.3", levels[0])
	}
	for i := 1; i <= 5; i++ {
		if levels[i] != 0 {
			t.Errorf("level %d budget = %v, want 0", i, levels[i])
		}
	}
	if err := Check(levels, 0.3); err != nil {
		t.Error(err)
	}
}

func TestCustom(t *testing.T) {
	levels, err := Custom{Weights: []float64{1, 0, 1, 0}}.Levels(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0, 0.5, 0}
	for i := range want {
		if math.Abs(levels[i]-want[i]) > 1e-12 {
			t.Errorf("levels = %v, want %v", levels, want)
			break
		}
	}
	if _, err := (Custom{Weights: []float64{1, 2}}).Levels(3, 1); err == nil {
		t.Error("wrong weight length should error")
	}
	if _, err := (Custom{Weights: []float64{-1, 1, 1, 1}}).Levels(3, 1); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := (Custom{Weights: []float64{0, 0, 0, 0}}).Levels(3, 1); err == nil {
		t.Error("all-zero weights should error")
	}
}

func TestStrategyValidation(t *testing.T) {
	for _, s := range []Strategy{Uniform{}, Geometric{}, LeafOnly{}} {
		if _, err := s.Levels(-1, 1); err == nil {
			t.Errorf("%s: negative height should error", s.Name())
		}
		if _, err := s.Levels(3, 0); err == nil {
			t.Errorf("%s: zero budget should error", s.Name())
		}
		if _, err := s.Levels(3, math.Inf(1)); err == nil {
			t.Errorf("%s: infinite budget should error", s.Name())
		}
	}
	if _, err := (Geometric{Ratio: -2}).Levels(3, 1); err == nil {
		t.Error("negative ratio should error")
	}
}

func TestCheck(t *testing.T) {
	if err := Check([]float64{0.5, 0.5}, 1); err != nil {
		t.Error(err)
	}
	if err := Check([]float64{0.5, 0.6}, 1); err == nil {
		t.Error("over-budget should fail Check")
	}
	if err := Check([]float64{-0.1, 1.1}, 1); err == nil {
		t.Error("negative level should fail Check")
	}
}

// Property: all strategies sum to the budget for arbitrary valid inputs.
func TestStrategiesSumToBudgetQuick(t *testing.T) {
	strategies := []Strategy{Uniform{}, Geometric{}, Geometric{Ratio: 1.7}, LeafOnly{}}
	f := func(hRaw uint8, epsRaw float64) bool {
		h := int(hRaw) % 14
		eps := math.Abs(math.Mod(epsRaw, 10)) + 0.001
		for _, s := range strategies {
			levels, err := s.Levels(h, eps)
			if err != nil {
				return false
			}
			if Check(levels, eps) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLemma2Bounds(t *testing.T) {
	// Quadtree: n_i doubles per level until hitting the 4^(h-i) cap.
	if got := QuadtreeNodesAtLevel(10, 10); got != 1 {
		t.Errorf("root level bound = %v, want 1 (cap)", got)
	}
	if got := QuadtreeNodesAtLevel(10, 9); got != 4 {
		t.Errorf("level-9 bound = %v, want 4 (cap)", got)
	}
	if got := QuadtreeNodesAtLevel(10, 0); got != 8*1024 {
		t.Errorf("leaf bound = %v, want 8192", got)
	}
	// kd-tree: doubles every two levels.
	if got := KDTreeNodesAtLevel(10, 0); got != 8*math.Pow(2, 5) {
		t.Errorf("kd leaf bound = %v", got)
	}
	if KDTreeNodesAtLevel(10, 2) >= QuadtreeNodesAtLevel(10, 2)*8 {
		t.Error("kd bound should grow much slower than quad bound deep down")
	}
}

// Lemma 3: the geometric allocation minimizes the worst-case error among a
// dense sweep of geometric ratios, and beats uniform.
func TestLemma3Optimality(t *testing.T) {
	const h, eps = 10, 1.0
	errAt := func(ratio float64) float64 {
		levels, err := Geometric{Ratio: ratio}.Levels(h, eps)
		if err != nil {
			t.Fatal(err)
		}
		return WorstCaseErr(levels, func(hh, i int) float64 {
			return 8 * math.Pow(2, float64(hh-i)) // the Lemma 3 objective
		})
	}
	opt := errAt(GeometricRatio)
	for ratio := 1.02; ratio < 2.0; ratio += 0.02 {
		if e := errAt(ratio); e < opt*(1-1e-9) {
			t.Fatalf("ratio %v beats the Lemma 3 optimum: %v < %v", ratio, e, opt)
		}
	}
	uniformLevels, _ := Uniform{}.Levels(h, eps)
	uniformErr := WorstCaseErr(uniformLevels, func(hh, i int) float64 {
		return 8 * math.Pow(2, float64(hh-i))
	})
	if opt >= uniformErr {
		t.Errorf("geometric (%v) should beat uniform (%v)", opt, uniformErr)
	}
}

func TestClosedFormsAgree(t *testing.T) {
	// The closed forms match WorstCaseErr with the uncapped Lemma 3 bound.
	for h := 3; h <= 11; h++ {
		eps := 0.7
		uni, _ := Uniform{}.Levels(h, eps)
		got := WorstCaseErr(uni, func(hh, i int) float64 {
			return 8 * math.Pow(2, float64(hh-i))
		})
		want := UniformWorstCase(h, eps)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("h=%d uniform: %v vs closed form %v", h, got, want)
		}
		geo, _ := Geometric{}.Levels(h, eps)
		got = WorstCaseErr(geo, func(hh, i int) float64 {
			return 8 * math.Pow(2, float64(hh-i))
		})
		want = GeometricWorstCase(h, eps)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("h=%d geometric: %v vs closed form %v", h, got, want)
		}
		// The exact and "simple" forms grow at the same 2^h rate: their
		// ratio converges to 16/((2^(1/3)-1)³·64) ≈ 14.2 as h grows.
		ratio := want / GeometricWorstCaseSimple(h, eps)
		limit := 16 / (math.Pow(math.Cbrt(2)-1, 3) * 64)
		if h >= 8 && math.Abs(ratio-limit)/limit > 0.35 {
			t.Errorf("h=%d: exact/simple ratio %v, want ≈ %v", h, ratio, limit)
		}
	}
}

func TestFigure2(t *testing.T) {
	rows, err := Figure2(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// The paper's Figure 2: at h=10 uniform is ~2.5e5 (×16/ε²) while
	// geometric sits around 0.9e5 — a ~2.7x gap that widens with h
	// (uniform grows as (h+1)²·2^h, geometric as 2^h).
	last := rows[len(rows)-1]
	if last.H != 10 {
		t.Fatalf("last row h = %d", last.H)
	}
	if last.Uniform < 2.4e5 || last.Uniform > 2.6e5 {
		t.Errorf("uniform(10) = %v, want ≈ 2.48e5", last.Uniform)
	}
	if last.Geometric < 8.5e4 || last.Geometric > 9.7e4 {
		t.Errorf("geometric(10) = %v, want ≈ 9.1e4", last.Geometric)
	}
	if gap := last.Uniform / last.Geometric; gap < 2.3 || gap > 3.2 {
		t.Errorf("uniform/geometric gap at h=10 = %v, want ≈ 2.7", gap)
	}
	prevGap := 0.0
	for _, r := range rows {
		gap := r.Uniform / r.Geometric
		if gap <= prevGap {
			t.Errorf("h=%d: uniform/geometric gap %v should widen with h", r.H, gap)
		}
		prevGap = gap
	}
	if _, err := Figure2(5, 3); err == nil {
		t.Error("inverted range should error")
	}
}

func TestOptimalRatioForDoubling(t *testing.T) {
	if got := OptimalRatioForDoubling(2); math.Abs(got-math.Cbrt(2)) > 1e-12 {
		t.Errorf("ratio = %v, want 2^(1/3)", got)
	}
}

func TestUniformityErrHeuristic(t *testing.T) {
	// The heuristic is U-shaped in h: too-shallow trees pay uniformity
	// error, too-deep trees pay noise error.
	n := float64(1 << 20)
	if UniformityErrHeuristic(n, 2) <= UniformityErrHeuristic(n, 10) {
		t.Error("shallow tree should pay more uniformity error")
	}
	if UniformityErrHeuristic(n, 30) <= UniformityErrHeuristic(n, 20) {
		t.Error("very deep tree should pay more noise error")
	}
}

func TestWorstCaseErrSkipsZeroLevels(t *testing.T) {
	levels := []float64{1, 0, 0}
	got := WorstCaseErr(levels, QuadtreeNodesAtLevel)
	want := 2 * QuadtreeNodesAtLevel(2, 0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("WorstCaseErr = %v, want %v", got, want)
	}
}
