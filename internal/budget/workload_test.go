package budget

import (
	"math"
	"testing"

	"psd/internal/geom"
)

func TestLevelContributionsAlignedQueries(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	// A query exactly covering one depth-1 quadrant contributes one node at
	// level h-1 and nothing else.
	got, err := LevelContributions(dom, []geom.Rect{geom.NewRect(0, 0, 8, 8)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contributions = %v, want %v", got, want)
		}
	}
	// The full domain contributes only the root.
	got, _ = LevelContributions(dom, []geom.Rect{dom}, 3)
	if got[3] != 1 || got[0] != 0 {
		t.Errorf("full-domain contributions = %v", got)
	}
	// A tiny unaligned query lands on a handful of leaves.
	got, _ = LevelContributions(dom, []geom.Rect{geom.NewRect(3.5, 3.5, 4.5, 4.5)}, 3)
	if got[0] == 0 {
		t.Errorf("tiny-query contributions = %v, want leaf mass", got)
	}
	if got[3] != 0 {
		t.Errorf("tiny query should not touch the root: %v", got)
	}
}

func TestLevelContributionsAveragesOverWorkload(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	qs := []geom.Rect{
		geom.NewRect(0, 0, 8, 8),   // one level-2 node
		geom.NewRect(8, 8, 16, 16), // one level-2 node
	}
	got, err := LevelContributions(dom, qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 1 { // (1 + 1)/2
		t.Errorf("avg level-2 contributions = %v, want 1", got[2])
	}
}

func TestLevelContributionsValidation(t *testing.T) {
	if _, err := LevelContributions(geom.Rect{}, nil, 3); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := LevelContributions(geom.NewRect(0, 0, 1, 1), nil, -1); err == nil {
		t.Error("negative height should error")
	}
}

func TestTunedMatchesWorkloadShape(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	// Workload of quadrant-aligned queries: all mass at level 2. The tuned
	// strategy should put the whole budget there.
	levels, err := Tuned{Domain: dom, Queries: []geom.Rect{geom.NewRect(0, 0, 8, 8)}}.Levels(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if levels[2] != 1 {
		t.Errorf("levels = %v, want all budget at level 2", levels)
	}
	if err := Check(levels, 1); err != nil {
		t.Error(err)
	}
}

func TestTunedCubeRootRule(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	// Mixed workload: half the queries hit one level-2 node, half hit a
	// leaf-dominated shape. Weights follow n̄_i^(1/3).
	qs := []geom.Rect{
		geom.NewRect(0, 0, 8, 8),
		geom.NewRect(1.3, 1.3, 2.2, 2.2),
	}
	contrib, err := LevelContributions(dom, qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := Tuned{Domain: dom, Queries: qs}.Levels(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// ε_i ratios equal cbrt(n̄_i) ratios wherever both are positive.
	var refLevel = -1
	for i, c := range contrib {
		if c > 0 {
			refLevel = i
			break
		}
	}
	if refLevel < 0 {
		t.Fatal("no contributions")
	}
	for i, c := range contrib {
		if c == 0 {
			if levels[i] != 0 {
				t.Errorf("untouched level %d got budget %v", i, levels[i])
			}
			continue
		}
		wantRatio := math.Cbrt(c) / math.Cbrt(contrib[refLevel])
		gotRatio := levels[i] / levels[refLevel]
		if math.Abs(gotRatio-wantRatio) > 1e-9 {
			t.Errorf("level %d: ε ratio %v, want %v", i, gotRatio, wantRatio)
		}
	}
}

func TestTunedFloorSpreadsBudget(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	qs := []geom.Rect{geom.NewRect(0, 0, 8, 8)}
	levels, err := Tuned{Domain: dom, Queries: qs, Floor: 0.5}.Levels(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range levels {
		if e <= 0 {
			t.Errorf("floored tuned strategy left level %d empty: %v", i, levels)
		}
	}
	if levels[2] <= levels[0] {
		t.Error("workload level should still dominate")
	}
}

func TestTunedValidation(t *testing.T) {
	dom := geom.NewRect(0, 0, 1, 1)
	if _, err := (Tuned{Queries: []geom.Rect{dom}}).Levels(3, 1); err == nil {
		t.Error("missing domain should error")
	}
	if _, err := (Tuned{Domain: dom}).Levels(3, 1); err == nil {
		t.Error("missing workload should error")
	}
	if _, err := (Tuned{Domain: dom, Queries: []geom.Rect{dom}}).Levels(3, 0); err == nil {
		t.Error("zero budget should error")
	}
	// A workload entirely outside the domain touches nothing.
	out := geom.NewRect(50, 50, 60, 60)
	if _, err := (Tuned{Domain: dom, Queries: []geom.Rect{out}}).Levels(3, 1); err == nil {
		t.Error("disjoint workload should error")
	}
	if (Tuned{}).Name() != "workload-tuned" {
		t.Error("name wrong")
	}
}

// The tuned strategy recovers (approximately) the Lemma 3 geometric shape
// when the workload is worst-case-like: large random queries whose level
// profile doubles per level.
func TestTunedApproximatesGeometricOnGenericWorkload(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	var qs []geom.Rect
	// A spread of query sizes and positions.
	for i := 0; i < 60; i++ {
		fx := float64(i%6) / 6 * 40
		fy := float64(i%5) / 5 * 40
		w := 5 + float64(i%7)*7
		h := 5 + float64((i+3)%7)*7
		qs = append(qs, geom.NewRect(fx, fy, math.Min(fx+w, 64), math.Min(fy+h, 64)))
	}
	const h = 5
	tuned, err := Tuned{Domain: dom, Queries: qs}.Levels(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf level should receive the largest share, as in Lemma 3.
	for i := 1; i <= h; i++ {
		if tuned[0] < tuned[i] {
			t.Errorf("leaf budget %v below level-%d budget %v", tuned[0], i, tuned[i])
		}
	}
}

// End-to-end: on a leaf-heavy workload the tuned budget yields lower
// worst-case model error than the generic geometric budget evaluated on
// that same workload profile.
func TestTunedBeatsGeometricOnItsWorkload(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	var qs []geom.Rect
	for i := 0; i < 40; i++ {
		x := float64(i%8)*7 + 0.6
		y := float64(i/8)*9 + 0.3
		qs = append(qs, geom.NewRect(x, y, x+1.7, y+1.3))
	}
	const h = 5
	contrib, err := LevelContributions(dom, qs, h)
	if err != nil {
		t.Fatal(err)
	}
	model := func(levels []float64) float64 {
		var sum float64
		for i, e := range levels {
			if contrib[i] == 0 {
				continue
			}
			if e == 0 {
				return math.Inf(1)
			}
			sum += 2 * contrib[i] / (e * e)
		}
		return sum
	}
	tuned, err := Tuned{Domain: dom, Queries: qs}.Levels(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	geo, _ := Geometric{}.Levels(h, 1)
	if model(tuned) >= model(geo) {
		t.Errorf("tuned model error %v should beat geometric %v", model(tuned), model(geo))
	}
}
