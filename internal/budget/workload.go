package budget

import (
	"fmt"
	"math"

	"psd/internal/geom"
)

// This file implements the workload-aware budgeting that Section 4.2
// sketches: "if the workload is known a priori, one should analyze it to
// determine how frequently each node in the tree contributes to the
// answers", then allocate more budget where it is used more.
//
// For a per-level allocation the relevant statistic is n̄_i, the average
// number of level-i node counts the canonical query method adds for a
// workload query. The error model of equation (1) becomes
//
//	Err = Σ_i 2·n̄_i/ε_i²   subject to   Σ_i ε_i = ε,
//
// and the same Cauchy–Schwarz argument as Lemma 3 yields the optimum
// ε_i ∝ n̄_i^(1/3) — Lemma 3 is the special case n̄_i ∝ 2^(h-i).

// Tuned allocates the budget proportional to the cube root of each level's
// average contribution to a known query workload, measured on the
// data-independent (midpoint) quadtree over Domain. Levels that no query
// ever touches receive no budget.
type Tuned struct {
	// Domain is the tree's domain rectangle.
	Domain geom.Rect
	// Queries is the anticipated workload.
	Queries []geom.Rect
	// Floor guards against overfitting a narrow workload: every level's
	// contribution is raised to at least Floor times the peak level's
	// before the cube root, so no level is left entirely unfunded. Note
	// the cube root compresses aggressively — a floor of 1e-6 already
	// grants untouched levels ~1% of the peak budget. Zero disables.
	Floor float64
}

// Levels implements Strategy.
func (t Tuned) Levels(h int, eps float64) ([]float64, error) {
	if err := validate(h, eps); err != nil {
		return nil, err
	}
	if t.Domain.Empty() {
		return nil, fmt.Errorf("budget: tuned strategy needs a domain")
	}
	if len(t.Queries) == 0 {
		return nil, fmt.Errorf("budget: tuned strategy needs a workload")
	}
	counts, err := LevelContributions(t.Domain, t.Queries, h)
	if err != nil {
		return nil, err
	}
	var peak float64
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return nil, fmt.Errorf("budget: workload touches no tree level")
	}
	floor := t.Floor * peak
	weights := make([]float64, h+1)
	for i, c := range counts {
		if c < floor {
			c = floor
		}
		if c > 0 {
			weights[i] = math.Cbrt(c)
		}
	}
	return Custom{Weights: weights}.Levels(h, eps)
}

// Name implements Strategy.
func (Tuned) Name() string { return "workload-tuned" }

// LevelContributions returns, for each level i (leaves first), the average
// number of level-i nodes that are maximally contained in a workload query
// on the data-independent quadtree of height h over domain — the n̄_i of
// the workload-aware error model. Partially-intersected leaves count
// toward level 0, as in the paper's error analysis.
func LevelContributions(domain geom.Rect, queries []geom.Rect, h int) ([]float64, error) {
	if domain.Empty() {
		return nil, fmt.Errorf("budget: empty domain")
	}
	if h < 0 {
		return nil, fmt.Errorf("budget: negative height %d", h)
	}
	totals := make([]float64, h+1)
	for _, q := range queries {
		contributions(domain, q, h, h, totals)
	}
	n := float64(len(queries))
	if n == 0 {
		return totals, nil
	}
	for i := range totals {
		totals[i] /= n
	}
	return totals, nil
}

// contributions walks the implicit midpoint quadtree, tallying maximally
// contained nodes per level. level is the current node's level (root = h).
func contributions(cell, q geom.Rect, level, h int, totals []float64) {
	if !cell.Intersects(q) {
		return
	}
	if q.ContainsRect(cell) || level == 0 {
		totals[level]++
		return
	}
	for _, quad := range cell.Quadrants() {
		contributions(quad, q, level-1, h, totals)
	}
}
