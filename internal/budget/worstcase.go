package budget

import (
	"fmt"
	"math"
)

// This file carries the worst-case error analysis of Section 4: the n_i node
// bounds of Lemma 2, equation (1) for Err(Q), and the closed forms behind
// Figure 2.

// QuadtreeNodesAtLevel returns the Lemma 2(i) bound on the number of level-i
// nodes maximally contained in a worst-case range query over a quadtree of
// height h, including the footnote refinement n_i = min(8·2^(h-i), 4^(h-i)).
func QuadtreeNodesAtLevel(h, i int) float64 {
	d := h - i
	bound := 8 * math.Pow(2, float64(d))
	cells := math.Pow(4, float64(d))
	return math.Min(bound, cells)
}

// KDTreeNodesAtLevel returns the Lemma 2(ii) bound n_i ≤ 8·2^⌊(h-i+1)/2⌋
// for a binary kd-tree of height h, with the same cap at the total number
// of level-i nodes 2^(h-i).
func KDTreeNodesAtLevel(h, i int) float64 {
	d := h - i
	bound := 8 * math.Pow(2, math.Floor(float64(d+1)/2))
	cells := math.Pow(2, float64(d))
	return math.Min(bound, cells)
}

// WorstCaseErr evaluates equation (1), Err(Q) = Σ_i 2·n_i/ε_i², for a
// per-level allocation and a per-level node-count bound. Levels with ε_i = 0
// contribute nothing: they publish no counts, so a query never adds them
// (their mass is answered at other levels; the bound is then conservative).
func WorstCaseErr(levels []float64, nodesAtLevel func(h, i int) float64) float64 {
	h := len(levels) - 1
	var err float64
	for i, eps := range levels {
		if eps <= 0 {
			continue
		}
		err += 2 * nodesAtLevel(h, i) / (eps * eps)
	}
	return err
}

// UniformWorstCase returns the Section 4.2 closed-form worst-case error of
// the uniform strategy on a quadtree: (16/ε²)·(h+1)²·(2^(h+1)-1).
func UniformWorstCase(h int, eps float64) float64 {
	hp := float64(h + 1)
	return 16 / (eps * eps) * hp * hp * (math.Pow(2, hp) - 1)
}

// GeometricWorstCase returns the Lemma 3 closed-form worst-case error bound
// of the geometric strategy: (16/ε²)·(2^((h+1)/3)-1)³/(2^(1/3)-1)³.
func GeometricWorstCase(h int, eps float64) float64 {
	num := math.Pow(2, float64(h+1)/3) - 1
	den := math.Cbrt(2) - 1
	return 16 / (eps * eps) * math.Pow(num/den, 3)
}

// GeometricWorstCaseSimple returns the 2^(h+7)/ε² form that Lemma 3 states
// for readability. Note the paper's "≤" there only holds up to a constant:
// the exact bound is ≈ 16/(2^(1/3)-1)³ · 2^(h+1)/ε² ≈ 911·2^(h+1)/ε², which
// exceeds 2^(h+7)/ε² = 64·2^(h+1)/ε² by a factor ≈ 14. Both grow as 2^h,
// which is the point of the lemma; we keep this form for fidelity and test
// that the exact/simple ratio is a constant in h.
func GeometricWorstCaseSimple(h int, eps float64) float64 {
	return math.Pow(2, float64(h+7)) / (eps * eps)
}

// Figure2Row is one point of the paper's Figure 2: worst-case Err(Q) for the
// uniform and geometric strategies in units of 16/ε² (the figure's y-axis).
type Figure2Row struct {
	H         int
	Uniform   float64
	Geometric float64
}

// Figure2 reproduces the curves of Figure 2 for heights hLo..hHi.
func Figure2(hLo, hHi int) ([]Figure2Row, error) {
	if hLo < 0 || hHi < hLo {
		return nil, fmt.Errorf("budget: invalid height range [%d,%d]", hLo, hHi)
	}
	rows := make([]Figure2Row, 0, hHi-hLo+1)
	for h := hLo; h <= hHi; h++ {
		hp := float64(h + 1)
		rows = append(rows, Figure2Row{
			H:       h,
			Uniform: hp * hp * (math.Pow(2, hp) - 1),
			Geometric: math.Pow(
				(math.Pow(2, hp/3)-1)/(math.Cbrt(2)-1), 3),
		})
	}
	return rows, nil
}

// OptimalRatioForDoubling returns the geometric ratio that minimizes
// Σ_i g^(h-i)/ε_i² subject to Σ ε_i = ε when the node bound grows by a
// factor g per level: the Cauchy–Schwarz argument of Lemma 3 gives ε_i ∝
// g^((h-i)/3), i.e. ratio g^(1/3). For quadtrees g = 2 (Lemma 2(i)); for
// flattened kd-trees the same bound applies.
func OptimalRatioForDoubling(g float64) float64 {
	return math.Cbrt(g)
}

// UniformityErrHeuristic returns the Section 4.2 back-of-envelope total
// error model O(n/2^h + 2^(h/3)·something): the first term is the
// uniformity-assumption error for n points at height h, the second the
// noise error in the geometric scheme. It is exposed for the height-
// selection discussion around Figure 6.
func UniformityErrHeuristic(n float64, h int) float64 {
	return n/math.Pow(2, float64(h)) + math.Pow(2, float64(h)/3)
}
