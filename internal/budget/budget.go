// Package budget implements the noise-parameter allocation strategies of
// Section 4 of the paper. Given a total privacy budget ε and a tree of
// height h, a Strategy chooses per-level Laplace parameters ε_0, ..., ε_h
// (leaves are level 0, the root level h) with Σ ε_i = ε, so the sequential
// composition along every root-to-leaf path (Lemma 1) spends exactly ε.
//
// The package also carries the worst-case query error analysis of
// Section 4.2 (equation (1), Lemmas 2 and 3), which is what Figure 2 of the
// paper plots and what motivates the geometric strategy.
package budget

import (
	"fmt"
	"math"
)

// GeometricRatio is the per-level budget growth factor 2^(1/3) that Lemma 3
// proves optimal for quadtrees against the n_i ≤ 8·2^(h-i) bound.
var GeometricRatio = math.Cbrt(2)

// Strategy allocates a total budget across the h+1 levels of a tree.
type Strategy interface {
	// Levels returns ε_i for i = 0 (leaves) through h (root), summing to
	// eps. A level may receive 0, meaning no counts are released there.
	Levels(h int, eps float64) ([]float64, error)

	// Name returns a short identifier used in experiment tables.
	Name() string
}

func validate(h int, eps float64) error {
	if h < 0 {
		return fmt.Errorf("budget: negative height %d", h)
	}
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return fmt.Errorf("budget: invalid total budget %v", eps)
	}
	return nil
}

// Uniform is the baseline strategy ε_i = ε/(h+1) used by prior work [11].
type Uniform struct{}

// Levels implements Strategy.
func (Uniform) Levels(h int, eps float64) ([]float64, error) {
	if err := validate(h, eps); err != nil {
		return nil, err
	}
	out := make([]float64, h+1)
	share := eps / float64(h+1)
	for i := range out {
		out[i] = share
	}
	return out, nil
}

// Name implements Strategy.
func (Uniform) Name() string { return "uniform" }

// Geometric is the paper's strategy (Lemma 3): ε_i ∝ r^(h-i) with ratio
// r = 2^(1/3) by default, so the budget grows geometrically from the root
// down and leaf counts are reported most accurately.
type Geometric struct {
	// Ratio overrides the growth factor when non-zero. The Lemma 3 optimum
	// for 2-D quadtrees is 2^(1/3); other n_i profiles yield other optima
	// (see OptimalRatioForDoubling).
	Ratio float64
}

// Levels implements Strategy.
func (g Geometric) Levels(h int, eps float64) ([]float64, error) {
	if err := validate(h, eps); err != nil {
		return nil, err
	}
	r := g.Ratio
	if r == 0 {
		r = GeometricRatio
	}
	if r <= 0 {
		return nil, fmt.Errorf("budget: non-positive geometric ratio %v", r)
	}
	out := make([]float64, h+1)
	if r == 1 {
		return Uniform{}.Levels(h, eps)
	}
	// ε_i = r^(h-i) · ε · (r-1)/(r^(h+1)-1); closed form of the normalizer.
	norm := eps * (r - 1) / (math.Pow(r, float64(h+1)) - 1)
	for i := 0; i <= h; i++ {
		out[i] = math.Pow(r, float64(h-i)) * norm
	}
	return out, nil
}

// Name implements Strategy.
func (g Geometric) Name() string { return "geometric" }

// LeafOnly allocates the entire budget to the leaf level, as the private
// record matching scheme of [12] does. Queries computed from such a tree
// reduce to queries over the leaf grid; the hierarchy carries no counts.
type LeafOnly struct{}

// Levels implements Strategy.
func (LeafOnly) Levels(h int, eps float64) ([]float64, error) {
	if err := validate(h, eps); err != nil {
		return nil, err
	}
	out := make([]float64, h+1)
	out[0] = eps
	return out, nil
}

// Name implements Strategy.
func (LeafOnly) Name() string { return "leaf-only" }

// Custom normalizes arbitrary non-negative per-level weights (indexed by
// level, leaves first) to sum to the budget. It supports the "set ε_i = 0
// for some levels" family of strategies from Section 4.2.
type Custom struct {
	// Weights holds relative per-level weights; length must be h+1.
	Weights []float64
}

// Levels implements Strategy.
func (c Custom) Levels(h int, eps float64) ([]float64, error) {
	if err := validate(h, eps); err != nil {
		return nil, err
	}
	if len(c.Weights) != h+1 {
		return nil, fmt.Errorf("budget: %d weights for height %d (want %d)", len(c.Weights), h, h+1)
	}
	var total float64
	for i, w := range c.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("budget: invalid weight %v at level %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("budget: all-zero weights")
	}
	out := make([]float64, h+1)
	for i, w := range c.Weights {
		out[i] = eps * w / total
	}
	return out, nil
}

// Name implements Strategy.
func (c Custom) Name() string { return "custom" }

// Check verifies that a per-level allocation is a valid spend of the budget:
// non-negative entries summing to eps within floating-point tolerance.
func Check(levels []float64, eps float64) error {
	var sum float64
	for i, e := range levels {
		if e < 0 || math.IsNaN(e) {
			return fmt.Errorf("budget: invalid ε_%d = %v", i, e)
		}
		sum += e
	}
	if math.Abs(sum-eps) > 1e-9*(1+math.Abs(eps)) {
		return fmt.Errorf("budget: levels sum to %v, want %v", sum, eps)
	}
	return nil
}
