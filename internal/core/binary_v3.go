package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"math/bits"
	"os"
	"runtime"
	"sync"

	"psd/internal/geom"
)

// Release format v3 is the record-major, mmap-ready sibling of format v2:
// the node section is byte-for-byte the slab's packed 40-byte
// [lox,loy,hix,hiy,est] hot records, so on a little-endian host
// OpenSlabMmap can alias the mapping instead of decoding — open cost is
// mmap(2) plus header and bitset validation, independent of artifact size,
// with cold pages faulted on demand and the page cache shared across every
// process serving the same file.
//
// Layout (all integers and floats little-endian; every section starts on a
// 64-byte boundary, gaps zero-filled):
//
//	offset  size             field
//	0       4                magic "PSD3"
//	4       1                format version (3)
//	5       1                kind (same enumeration as v2)
//	6       1                fanout (must be 4)
//	7       1                height h (0..13)
//	8       8                epsilon (float64)
//	16      32               domain lox,loy,hix,hiy (4 × float64)
//	48      4                node count n (uint32; must match the shape)
//	52      4                pruned count p (uint32)
//	56      8                reserved, must be zero
//	64      n*40             node records [lox,loy,hix,hiy,est], breadth-first
//	(align 64)
//	...     ceil(n/64)*8     published bitset (uint64 words, LSB-first)
//	(align 64)
//	...     ceil(n/64)*8     pruned bitset (uint64 words, LSB-first; replaces
//	                         v2's delta-varint list so it maps directly)
//	(align 64)
//	...     16               footer: CRC-64/ECMA of every preceding byte
//	                         (uint64), then magic "PSD3END\0"
//
// The file ends exactly at the footer. The encoding is canonical: count
// slots of unpublished nodes must be zero bits, bitset tail bits and all
// padding must be zero, and the pruned count must equal the bitset
// popcount — the streaming decoder rejects any deviation, so a v3 artifact
// that decodes also round-trips byte-identically.
//
// The checksum is deliberately a trailer, not a gate: OpenSlabMmap returns
// without touching the node section (that is the whole point of the
// format), and (*Slab).Verify runs the deferred full-body pass — CRC plus
// the per-node validation the streaming decoder does inline — for callers
// (the serving registry) that want corruption surfaced at load time rather
// than as wrong answers.

// v3Magic opens every format-v3 artifact.
var v3Magic = [4]byte{'P', 'S', 'D', '3'}

// v3FooterMagic closes it; a torn or truncated rewrite loses the trailer.
var v3FooterMagic = [8]byte{'P', 'S', 'D', '3', 'E', 'N', 'D', 0}

const (
	v3Version    = 3
	v3HeaderSize = 64
	v3FooterSize = 16
	v3RecordSize = 40
	v3Align      = 64
)

// v3CRCTable is the CRC-64/ECMA polynomial table the footer checksum uses.
var v3CRCTable = crc64.MakeTable(crc64.ECMA)

// align64 rounds n up to the next 64-byte boundary.
func align64(n int64) int64 { return (n + v3Align - 1) &^ (v3Align - 1) }

// v3Layout holds the section offsets of a v3 artifact with a given node
// count. All arithmetic is int64: height 13 is ~89.5M nodes, ~3.6GB of
// records.
type v3Layout struct {
	recordsOff int64
	recordsEnd int64
	usableOff  int64
	bitsetLen  int64
	prunedOff  int64
	footerOff  int64
	size       int64
}

func v3LayoutFor(nodes int) v3Layout {
	var l v3Layout
	l.recordsOff = v3HeaderSize
	l.recordsEnd = l.recordsOff + int64(nodes)*v3RecordSize
	l.usableOff = align64(l.recordsEnd)
	l.bitsetLen = int64((nodes+63)/64) * 8
	l.prunedOff = align64(l.usableOff + l.bitsetLen)
	l.footerOff = align64(l.prunedOff + l.bitsetLen)
	l.size = l.footerOff + v3FooterSize
	return l
}

// WriteBinaryV3 serializes the slab in format v3, returning the number of
// bytes that reached w.
func (s *Slab) WriteBinaryV3(w io.Writer) (int64, error) {
	s.ensureOpen()
	crc := crc64.New(v3CRCTable)
	aw := newArtifactWriter(w, crc)
	n := s.Len()
	lay := v3LayoutFor(n)
	numPruned := 0
	for _, word := range s.pruned {
		numPruned += bits.OnesCount64(word)
	}

	var hdr [v3HeaderSize]byte
	copy(hdr[0:4], v3Magic[:])
	hdr[4] = v3Version
	hdr[5] = byte(s.kind)
	hdr[6] = 4
	hdr[7] = byte(s.height)
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(s.epsilon))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(s.domain.Lo.X))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(s.domain.Lo.Y))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(s.domain.Hi.X))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(s.domain.Hi.Y))
	binary.LittleEndian.PutUint32(hdr[48:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[52:], uint32(numPruned))
	aw.write(hdr[:])

	// Records go out record-major through a chunk-sized scratch, count
	// slots of unpublished nodes forced to zero so the section is exactly
	// what a decoded slab holds (and what a mapping aliases).
	var b [v3RecordSize * 204]byte
	off := 0
	for i := 0; i < n; i++ {
		nd := &s.nodes[i]
		for c := 0; c < 5; c++ {
			v := nd[c]
			if c == 4 && !s.usable.get(i) {
				v = 0
			}
			binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
			off += 8
		}
		if off == len(b) {
			aw.write(b[:off])
			off = 0
		}
	}
	aw.write(b[:off])
	aw.zeros(int(lay.usableOff - lay.recordsEnd))
	for _, word := range s.usable {
		aw.u64(word)
	}
	aw.zeros(int(lay.prunedOff - (lay.usableOff + lay.bitsetLen)))
	for _, word := range s.pruned {
		aw.u64(word)
	}
	aw.zeros(int(lay.footerOff - (lay.prunedOff + lay.bitsetLen)))

	// The checksum covers everything before the footer; the crc tee has
	// seen exactly those bytes, so detach it before the footer goes out.
	var ft [v3FooterSize]byte
	binary.LittleEndian.PutUint64(ft[0:8], crc.Sum64())
	copy(ft[8:], v3FooterMagic[:])
	aw.crc = nil
	aw.write(ft[:])
	aw.flush()
	return aw.n, aw.err
}

// WriteBinaryV3 serializes the release in format v3 after validating it.
func (r *Release) WriteBinaryV3(w io.Writer) (int64, error) {
	s, err := r.Slab()
	if err != nil {
		return 0, err
	}
	return s.WriteBinaryV3(w)
}

// parseV3Header validates a v3 header (magic already established) and
// returns the decoded fields. Every check runs before any node-sized
// allocation or mapping-sized slice is built.
func parseV3Header(hdr *[v3HeaderSize]byte) (kind Kind, height int, domain geom.Rect, epsilon float64, nodes, numPruned int, err error) {
	if hdr[4] != v3Version {
		return 0, 0, geom.Rect{}, 0, 0, 0, fmt.Errorf("core: unsupported binary release version %d", hdr[4])
	}
	if hdr[5] >= numKinds {
		return 0, 0, geom.Rect{}, 0, 0, 0, fmt.Errorf("core: unknown kind %d in binary release", hdr[5])
	}
	kind = Kind(hdr[5])
	nodes, err = checkShape(int(hdr[6]), int(hdr[7]))
	if err != nil {
		return 0, 0, geom.Rect{}, 0, 0, 0, err
	}
	height = int(hdr[7])
	epsilon = math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:]))
	if err = checkEpsilon(epsilon); err != nil {
		return 0, 0, geom.Rect{}, 0, 0, 0, err
	}
	var dom [4]float64
	for i := range dom {
		dom[i] = math.Float64frombits(binary.LittleEndian.Uint64(hdr[16+8*i:]))
	}
	if err = checkDomain(dom); err != nil {
		return 0, 0, geom.Rect{}, 0, 0, 0, err
	}
	if got := binary.LittleEndian.Uint32(hdr[48:]); got != uint32(nodes) {
		return 0, 0, geom.Rect{}, 0, 0, 0, fmt.Errorf("core: binary release declares %d nodes for a %d-node tree", got, nodes)
	}
	numPruned = int(binary.LittleEndian.Uint32(hdr[52:]))
	if numPruned < 0 || numPruned > nodes {
		return 0, 0, geom.Rect{}, 0, 0, 0, fmt.Errorf("core: binary release declares %d pruned nodes of %d", numPruned, nodes)
	}
	for _, b := range hdr[56:64] {
		if b != 0 {
			return 0, 0, geom.Rect{}, 0, 0, 0, fmt.Errorf("core: binary release has non-zero reserved header bytes")
		}
	}
	return kind, height, unflattenRect(dom), epsilon, nodes, numPruned, nil
}

// readBinaryV3 is the streaming (reader-based) v3 decoder: the portable
// path when mmap is unavailable, the host is big-endian, or the input is
// not a file. It decodes into fresh heap columns and enforces the full
// canonical-encoding contract — checksum, padding, tail bits, zeroed
// unpublished slots — so it accepts exactly the artifacts Verify would
// pass. The magic has already been consumed by ReadBinary.
func readBinaryV3(r io.Reader) (*Slab, error) {
	crc := crc64.New(v3CRCTable)
	crc.Write(v3Magic[:])
	tr := io.TeeReader(r, crc)

	var hdr [v3HeaderSize]byte
	copy(hdr[0:4], v3Magic[:])
	if _, err := io.ReadFull(tr, hdr[4:]); err != nil {
		return nil, fmt.Errorf("core: reading binary release header: %w", err)
	}
	kind, height, domain, epsilon, nodes, numPruned, err := parseV3Header(&hdr)
	if err != nil {
		return nil, err
	}
	lay := v3LayoutFor(nodes)

	s := newSlab(kind, height, domain, epsilon)
	// Records stream through a bounded scratch (a multiple of the record
	// size, ~1MB) so the decode never doubles the peak.
	buf := make([]byte, v3RecordSize*min(nodes, 26214))
	for base := 0; base < nodes; {
		b := buf[:min(len(buf), v3RecordSize*(nodes-base))]
		if _, err := io.ReadFull(tr, b); err != nil {
			return nil, fmt.Errorf("core: reading binary release records: %w", err)
		}
		for i := 0; i < len(b)/v3RecordSize; i++ {
			nd := &s.nodes[base+i]
			for c := 0; c < 5; c++ {
				nd[c] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*v3RecordSize+8*c:]))
			}
		}
		base += len(b) / v3RecordSize
	}
	if err := readZeroPad(tr, int(lay.usableOff-lay.recordsEnd)); err != nil {
		return nil, err
	}
	if err := readBitsetWords(tr, s.usable, "published"); err != nil {
		return nil, err
	}
	if err := readZeroPad(tr, int(lay.prunedOff-(lay.usableOff+lay.bitsetLen))); err != nil {
		return nil, err
	}
	if err := readBitsetWords(tr, s.pruned, "pruned"); err != nil {
		return nil, err
	}
	if err := readZeroPad(tr, int(lay.footerOff-(lay.prunedOff+lay.bitsetLen))); err != nil {
		return nil, err
	}
	if err := checkBitsetTails(s.usable, s.pruned, nodes, numPruned); err != nil {
		return nil, err
	}
	for i := 0; i < nodes; i++ {
		if err := checkV3Node(&s.nodes[i], i, s.usable.get(i)); err != nil {
			return nil, err
		}
	}

	// The footer is read from the underlying reader, past the crc tee: the
	// checksum covers everything before it, itself excluded.
	var ft [v3FooterSize]byte
	if _, err := io.ReadFull(r, ft[:]); err != nil {
		return nil, fmt.Errorf("core: reading binary release footer: %w", err)
	}
	if got := binary.LittleEndian.Uint64(ft[0:8]); got != crc.Sum64() {
		return nil, fmt.Errorf("core: binary release checksum mismatch: footer %#x, body %#x", got, crc.Sum64())
	}
	if [8]byte(ft[8:16]) != v3FooterMagic {
		return nil, fmt.Errorf("core: bad footer magic %q in binary release", ft[8:16])
	}
	if err := expectEOF(r); err != nil {
		return nil, err
	}
	s.computeEffLeaves()
	s.finish()
	return s, nil
}

// readZeroPad consumes n section-padding bytes, requiring them zero.
func readZeroPad(r io.Reader, n int) error {
	var b [v3Align]byte
	for n > 0 {
		k := min(n, len(b))
		if _, err := io.ReadFull(r, b[:k]); err != nil {
			return fmt.Errorf("core: reading binary release padding: %w", err)
		}
		for _, c := range b[:k] {
			if c != 0 {
				return fmt.Errorf("core: binary release has non-zero section padding")
			}
		}
		n -= k
	}
	return nil
}

// readBitsetWords fills dst from its on-disk little-endian words.
func readBitsetWords(r io.Reader, dst bitset, name string) error {
	raw := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, raw); err != nil {
		return fmt.Errorf("core: reading binary release %s bitset: %w", name, err)
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return nil
}

// checkBitsetTails enforces the canonical bitset contract: bits past the
// last node are zero in both bitsets, and the pruned popcount matches the
// header's declared count.
func checkBitsetTails(usable, pruned bitset, nodes, numPruned int) error {
	if tail := uint(nodes) & 63; tail != 0 {
		if usable[len(usable)-1]>>tail != 0 {
			return fmt.Errorf("core: binary release has published bits beyond node %d", nodes-1)
		}
		if pruned[len(pruned)-1]>>tail != 0 {
			return fmt.Errorf("core: binary release has pruned bits beyond node %d", nodes-1)
		}
	}
	got := 0
	for _, w := range pruned {
		got += bits.OnesCount64(w)
	}
	if got != numPruned {
		return fmt.Errorf("core: binary release declares %d pruned nodes but marks %d", numPruned, got)
	}
	return nil
}

// checkV3Node runs the per-node validation of Release.Validate on a packed
// record, plus the v3 canonicality rule: an unpublished node's count slot
// must be exactly zero bits (the decoder cannot force-zero a read-only
// mapping, so the writer must have).
func checkV3Node(nd *[5]float64, i int, usable bool) error {
	if !finiteRect([4]float64{nd[0], nd[1], nd[2], nd[3]}) {
		return fmt.Errorf("core: release node %d has non-finite rect", i)
	}
	if nd[0] > nd[2] || nd[1] > nd[3] {
		return fmt.Errorf("core: release node %d has inverted rect", i)
	}
	if usable {
		if c := nd[4]; math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("core: release node %d has non-finite count", i)
		}
	} else if math.Float64bits(nd[4]) != 0 {
		return fmt.Errorf("core: release node %d is unpublished but has a non-zero count slot", i)
	}
	return nil
}

// slabMapping owns one mmap'd artifact. Unmapping is idempotent: Close and
// the GC cleanup can race without a double-munmap.
type slabMapping struct {
	data []byte
	once sync.Once
	err  error
}

func (m *slabMapping) unmap() error {
	m.once.Do(func() { m.err = munmapBytes(m.data) })
	return m.err
}

// cleanupMapping is the GC fallback for slabs never explicitly Closed; the
// mapping (and the mapped file's inode) is released when the Slab becomes
// unreachable, so the serving registry can drop a replaced slab and let
// in-flight queries finish against the old pages.
func cleanupMapping(m *slabMapping) { m.unmap() }

// OpenSlabMmap opens a format-v3 artifact zero-copy: mmap(2), header and
// bitset validation, and pointer-free column slices aliased over the
// mapping. Open cost is independent of the node section's size — those
// pages fault in on first query. The node records are NOT validated here;
// call (*Slab).Verify for the deferred checksum + per-node pass, or use
// ReadBinary for a fully-validated heap decode. Fails (with
// errMmapUnsupported when the platform is the reason) on non-v3 artifacts,
// platforms without mmap, or big-endian hosts; OpenSlabFile in the public
// package falls back to the streaming decoder.
func OpenSlabMmap(path string) (*Slab, error) {
	if !mmapSupported {
		return nil, errMmapUnsupported
	}
	if !hostLittleEndian() {
		return nil, fmt.Errorf("core: mmap slab open requires a little-endian host")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < v3HeaderSize+v3FooterSize {
		return nil, fmt.Errorf("core: %s: %d bytes is too short for a v3 release", path, size)
	}
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	m := &slabMapping{data: data}
	s, err := slabFromMapping(m)
	if err != nil {
		m.unmap()
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return s, nil
}

// slabFromMapping builds the aliased slab over a whole-file mapping.
func slabFromMapping(m *slabMapping) (*Slab, error) {
	data := m.data
	hdr := (*[v3HeaderSize]byte)(data[:v3HeaderSize])
	if [4]byte(hdr[0:4]) != v3Magic {
		return nil, fmt.Errorf("core: bad magic %q in binary release (mmap open needs format v3)", hdr[0:4])
	}
	kind, height, domain, epsilon, nodes, numPruned, err := parseV3Header(hdr)
	if err != nil {
		return nil, err
	}
	lay := v3LayoutFor(nodes)
	if int64(len(data)) != lay.size {
		return nil, fmt.Errorf("core: binary release is %d bytes, v3 layout requires %d", len(data), lay.size)
	}
	s := &Slab{kind: kind, height: height, domain: domain, epsilon: epsilon}
	s.initShape(height)
	s.nodes = castRecords(data[lay.recordsOff:lay.recordsEnd], nodes)
	s.usable = bitset(castWords(data[lay.usableOff : lay.usableOff+lay.bitsetLen]))
	s.pruned = bitset(castWords(data[lay.prunedOff : lay.prunedOff+lay.bitsetLen]))
	if err := checkBitsetTails(s.usable, s.pruned, nodes, numPruned); err != nil {
		return nil, err
	}
	s.computeEffLeaves()
	s.finish()
	s.mapped = m
	s.cleanup = runtime.AddCleanup(s, cleanupMapping, m)
	return s, nil
}

// Verify runs the deferred full-body validation on an mmap-opened slab:
// footer checksum over the whole body, zero padding, and the per-node
// checks the streaming decoder performs inline. It reads every page of the
// mapping (once — sequentially, which is also an effective prefault before
// serving) but allocates nothing. On a slab that was decoded rather than
// mapped the contract already held at construction, so Verify is a no-op.
func (s *Slab) Verify() error {
	s.ensureOpen()
	if s.mapped == nil {
		return nil
	}
	data := s.mapped.data
	nodes := s.Len()
	lay := v3LayoutFor(nodes)
	crc := crc64.New(v3CRCTable)
	crc.Write(data[:lay.footerOff])
	ft := data[lay.footerOff:]
	if got := binary.LittleEndian.Uint64(ft[0:8]); got != crc.Sum64() {
		return fmt.Errorf("core: binary release checksum mismatch: footer %#x, body %#x", got, crc.Sum64())
	}
	if [8]byte(ft[8:16]) != v3FooterMagic {
		return fmt.Errorf("core: bad footer magic %q in binary release", ft[8:16])
	}
	for _, span := range [][2]int64{
		{lay.recordsEnd, lay.usableOff},
		{lay.usableOff + lay.bitsetLen, lay.prunedOff},
		{lay.prunedOff + lay.bitsetLen, lay.footerOff},
	} {
		for _, b := range data[span[0]:span[1]] {
			if b != 0 {
				return fmt.Errorf("core: binary release has non-zero section padding")
			}
		}
	}
	for i := 0; i < nodes; i++ {
		if err := checkV3Node(&s.nodes[i], i, s.usable.get(i)); err != nil {
			return err
		}
	}
	return nil
}
