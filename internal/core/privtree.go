package core

import (
	"sync"

	"psd/internal/dp"
	"psd/internal/par"
	"psd/internal/rng"
	"psd/internal/tree"
)

// saltPrivTree namespaces the per-node splitting-noise streams away from the
// median and count streams sharing Config.Seed.
const saltPrivTree = 0x707674726565 // "pvtree"

// privTreeRelease runs PrivTree's adaptive splitting rule (Zhang et al.,
// SIGMOD 2016) over the complete midpoint quadtree the structure phase built
// and publishes the adaptive leaves. It is the PrivTree replacement for the
// generic per-level count release of Build's phase 2.
//
// Top-down from the root, a visited node v at depth d computes the biased
// score b(v) = max(c(v) − d·δ, θ − δ) + Lap(λ) and splits — its children
// become visited — while b(v) > θ and v is not at the depth cap. A visited
// node that stops is an adaptive leaf: internal ones are marked Pruned
// (queries treat them as terminal, exactly like Section 7 pruning), and the
// subtree below stays structurally present but unpublished. Every split
// decision draws from rng.At(seed, node, saltPrivTree), so the decomposition
// is byte-identical at every worker count.
//
// The adaptive leaves partition the domain, so their noisy counts are one
// Laplace release of sensitivity 1 funded by the whole epsCount — unlike the
// fixed-height kinds, no per-level division — drawn from the node's count
// stream. Interior and unvisited nodes release nothing.
//
// It returns the per-level count budgets recorded for the PSD: epsCount in
// the leaf-level slot (one release covering the partition), zero elsewhere.
func privTreeRelease(arena *tree.Tree, cfg Config, epsStruct, epsCount float64, p *PSD, workers int) ([]float64, error) {
	h := arena.Height()
	noiseless := cfg.NonPrivate || cfg.TrueMedians
	lambda := cfg.Lambda
	if noiseless {
		lambda = 0
	} else if lambda == 0 {
		var err error
		lambda, err = dp.PrivTreeLambda(4, epsStruct)
		if err != nil {
			return nil, err
		}
	}
	delta := dp.PrivTreeDelta(lambda, 4)
	theta := cfg.Theta
	if !noiseless {
		// The splitting rule's actual spend: equals epsStruct when λ came
		// from the calibration, and stays honest under an explicit Lambda.
		p.structEps = dp.PrivTreeEpsilon(4, lambda)
	}

	// Phase A: top-down split decisions, one level at a time. A node's
	// decision depends only on its exact count, its depth and its own noise
	// stream, so each level sweeps in parallel once the previous level has
	// settled which nodes are visited.
	visited := make([]bool, arena.Len())
	visited[0] = true
	cut, leafLoss := 0, 0
	for d := 0; d < h; d++ {
		lo, hi := arena.DepthRange(d)
		sub := 1 << (2 * (h - d)) // leaves under a depth-d node
		var mu sync.Mutex
		par.For(workers, lo, hi, 512, func(a, b int) {
			localCut, localLoss := 0, 0
			for i := a; i < b; i++ {
				if !visited[i] {
					continue
				}
				n := &arena.Nodes[i]
				score := n.True - float64(d)*delta
				if floor := theta - delta; score < floor {
					score = floor
				}
				if lambda > 0 {
					src := rng.At(cfg.Seed, uint64(i), saltPrivTree)
					score += src.Laplace(lambda)
				}
				if score > theta {
					cs := arena.ChildStart(i)
					visited[cs], visited[cs+1], visited[cs+2], visited[cs+3] = true, true, true, true
				} else {
					n.Pruned = true
					localCut++
					localLoss += sub - 1
				}
			}
			mu.Lock()
			cut += localCut
			leafLoss += localLoss
			mu.Unlock()
		})
	}
	p.stats.PrunedSubtrees = cut
	p.effLeaves -= leafLoss

	// Phase B: publish the adaptive leaves. With a StreamNoise source node i
	// draws from stream i, so the sweep parallelizes without changing the
	// release; legacy sources consume their shared stream in index order.
	isAdaptiveLeaf := func(i int) bool {
		return visited[i] && (arena.IsLeaf(i) || arena.Nodes[i].Pruned)
	}
	if sn, streaming := cfg.Noise.(dp.StreamNoise); streaming {
		par.For(workers, 0, arena.Len(), 1024, func(a, b int) {
			for i := a; i < b; i++ {
				if !isAdaptiveLeaf(i) {
					continue
				}
				n := &arena.Nodes[i]
				n.Noisy = sn.AddAt(uint64(i), n.True, 1, epsCount)
				n.Published = true
			}
		})
	} else {
		for i := range arena.Nodes {
			if !isAdaptiveLeaf(i) {
				continue
			}
			n := &arena.Nodes[i]
			n.Noisy = cfg.Noise.Add(n.True, 1, epsCount)
			n.Published = true
		}
	}

	levels := make([]float64, h+1)
	levels[0] = epsCount
	return levels, nil
}
