package core

import (
	"fmt"
	"math"
	"sync"

	"psd/internal/dp"
	"psd/internal/geom"
	"psd/internal/grid"
	"psd/internal/median"
	"psd/internal/ols"
	"psd/internal/par"
	"psd/internal/rng"
	"psd/internal/tree"
)

// Per-purpose salts for the per-node randomness streams. A node's median
// stream and the count-noise stream of the same arena index must never
// collide even though they share Config.Seed.
const saltMedian = 0x6d656469616e // "median"

// medianStream maps a (node, slot) split to its RNG stream id. Each fanout-4
// expansion performs three splits — x (slot 0), left y (slot 1), right y
// (slot 2) — so a stride of 4 keeps node streams disjoint.
func medianStream(node, slot int) uint64 { return uint64(node)*4 + uint64(slot) }

// Build constructs a private spatial decomposition over points within
// domain. The input slice is not modified (Build partitions a copy).
// Points outside the domain are clamped onto its boundary so every input
// tuple is represented, matching how the grid baseline treats strays.
//
// Build is parallel by default (Config.Parallelism); for a fixed Seed the
// released tree is byte-identical at every worker count, because all
// randomness is drawn from per-node streams rather than one shared one.
func Build(points []geom.Point, domain geom.Rect, cfg Config) (*PSD, error) {
	cfg, err := cfg.withDefaults(domain)
	if err != nil {
		return nil, err
	}
	workers := par.Workers(cfg.Parallelism)
	arena, err := tree.NewComplete(4, cfg.Height)
	if err != nil {
		return nil, err
	}
	pts, err := clampPoints(points, domain)
	if err != nil {
		return nil, err
	}

	p := &PSD{
		kind:      cfg.Kind,
		arena:     arena,
		domain:    domain,
		epsilon:   cfg.Epsilon,
		pruneAt:   cfg.PruneThreshold,
		effLeaves: arena.NumLeaves(),
	}
	p.stats.Points = len(pts)

	// Split the budget between structure and counts.
	epsCount := cfg.Epsilon * cfg.CountFraction
	epsStruct := cfg.Epsilon - epsCount
	if cfg.NonPrivate {
		epsCount, epsStruct = 0, 0
	}

	// Phase 1: structure. Each builder assigns node rectangles and exact
	// counts, spending epsStruct on private medians (or the kd-cell grid).
	// Independent subtrees build concurrently once the frontier is wide
	// enough to feed the worker pool.
	switch cfg.Kind {
	case Quadtree, KD, Hybrid, KDNoisyMean, PrivTree:
		sp, serr := newSplitPlanner(cfg, epsStruct, p)
		if serr != nil {
			return nil, serr
		}
		if err := buildPartitionTree(arena, pts, domain, sp, workers); err != nil {
			return nil, err
		}
	case KDCell:
		g, gerr := buildCellGrid(pts, domain, cfg, epsStruct)
		if gerr != nil {
			return nil, gerr
		}
		sp := &cellSplitter{grid: g, psd: p}
		if err := buildPartitionTree(arena, pts, domain, sp, workers); err != nil {
			return nil, err
		}
		p.structEps = epsStruct // one grid release covers every split
	case HilbertR:
		if err := buildHilbertTree(arena, pts, domain, cfg, epsStruct, p, workers); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown kind %v", cfg.Kind)
	}

	// Phase 2: noisy counts, one Laplace release per published level
	// (sensitivity 1 per level; levels compose sequentially along paths).
	// With a StreamNoise source each node draws from its own stream, so the
	// per-level sweep parallelizes without changing the release.
	var levels []float64
	if cfg.Kind == PrivTree {
		// PrivTree replaces the per-level release entirely: the adaptive
		// splitting rule fixes the published shape, and one epsCount release
		// covers the adaptive leaf partition (privtree.go).
		levels, err = privTreeRelease(arena, cfg, epsStruct, epsCount, p, workers)
		if err != nil {
			return nil, err
		}
	} else if cfg.NonPrivate {
		levels = make([]float64, cfg.Height+1)
		par.For(workers, 0, arena.Len(), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arena.Nodes[i].Noisy = arena.Nodes[i].True
				arena.Nodes[i].Published = true
			}
		})
	} else {
		levels, err = cfg.Strategy.Levels(cfg.Height, epsCount)
		if err != nil {
			return nil, err
		}
		sn, streaming := cfg.Noise.(dp.StreamNoise)
		for d := 0; d <= cfg.Height; d++ {
			level := cfg.Height - d
			eps := levels[level]
			if eps <= 0 {
				continue
			}
			lo, hi := arena.DepthRange(d)
			if streaming {
				par.For(workers, lo, hi, 1024, func(a, b int) {
					for i := a; i < b; i++ {
						n := &arena.Nodes[i]
						n.Noisy = sn.AddAt(uint64(i), n.True, 1, eps)
						n.Published = true
					}
				})
			} else {
				// Legacy noise sources consume one shared stream; keep the
				// historical level-order consumption so their releases stay
				// reproducible.
				for i := lo; i < hi; i++ {
					n := &arena.Nodes[i]
					n.Noisy = cfg.Noise.Add(n.True, 1, eps)
					n.Published = true
				}
			}
		}
	}
	p.countEps = levels

	// Phase 3: post-processing (Section 5) or raw estimates.
	if cfg.PostProcess && !cfg.NonPrivate {
		if err := ols.EstimateWorkers(arena, levels, workers); err != nil {
			return nil, err
		}
		p.postProcessed = true
	} else {
		ols.CopyNoisyToEstWorkers(arena, workers)
	}

	// Phase 4: pruning (Section 7), applied after post-processing.
	if cfg.PruneThreshold > 0 {
		cut, leafLoss := prune(arena, cfg.PruneThreshold, workers)
		p.stats.PrunedSubtrees = cut
		p.effLeaves -= leafLoss
	}

	p.stats.MedianCalls = int(p.medianCalls.Load())
	return p, nil
}

// clampPoints copies points, clamping strays onto the domain boundary
// (just inside the half-open upper edges). Non-finite coordinates are an
// error: silently folding them anywhere would misattribute a tuple.
func clampPoints(points []geom.Point, domain geom.Rect) ([]geom.Point, error) {
	out := make([]geom.Point, len(points))
	for i, p := range points {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("core: point %d has non-finite coordinates %v", i, p)
		}
		if p.X < domain.Lo.X {
			p.X = domain.Lo.X
		}
		if p.Y < domain.Lo.Y {
			p.Y = domain.Lo.Y
		}
		if p.X >= domain.Hi.X {
			p.X = beforeUp(domain.Hi.X)
		}
		if p.Y >= domain.Hi.Y {
			p.Y = beforeUp(domain.Hi.Y)
		}
		out[i] = p
	}
	return out, nil
}

// beforeUp returns the largest float64 strictly below v.
func beforeUp(v float64) float64 {
	return math.Nextafter(v, math.Inf(-1))
}

// splitPlanner chooses split coordinates for the generic fanout-4
// partition-tree builder. node is the arena index of the node being split
// and slot distinguishes the x split (0) from the two y splits (1 left,
// 2 right), giving every split of the tree its own identity — the key to
// order-independent randomness. sc carries the calling worker's scratch
// buffers.
type splitPlanner interface {
	Split(pts []geom.Point, axis geom.Axis, r geom.Rect, depth, node, slot int, sc *median.Scratch) (float64, error)

	// Sequential reports whether splits must run in DFS order on a single
	// goroutine (a legacy Finder with hidden stream state).
	Sequential() bool
}

// buildTask is one pending subtree of a parallel build.
type buildTask struct {
	idx   int
	depth int
	pts   []geom.Point
}

// buildPartitionTree assigns rectangles and exact counts to every node of
// the arena by recursively splitting the point set: first along x, then
// each half along y, producing four children per node (the flattened
// fanout-4 layout of Section 6.2).
//
// With workers > 1 the top of the tree is expanded breadth-first until
// there are enough independent subtrees to occupy the pool, then each
// subtree builds depth-first on its own goroutine. Subtrees touch disjoint
// arena ranges and disjoint sub-slices of pts, and every split draws from a
// stream keyed by its node index, so the result is identical to the
// sequential build.
func buildPartitionTree(arena *tree.Tree, pts []geom.Point, domain geom.Rect, sp splitPlanner, workers int) error {
	arena.Nodes[0].Rect = domain
	if sp.Sequential() {
		workers = 1
	}
	var sc median.Scratch
	if workers <= 1 || arena.Height() == 0 {
		return buildSubtree(arena, sp, 0, pts, 0, &sc)
	}

	queue := []buildTask{{idx: 0, depth: 0, pts: pts}}
	for len(queue) > 0 && len(queue) < 4*workers {
		t := queue[0]
		queue = queue[1:]
		if arena.IsLeaf(t.idx) {
			arena.Nodes[t.idx].True = float64(len(t.pts))
			continue
		}
		kids, err := expandNode(arena, sp, t.idx, t.pts, t.depth, &sc)
		if err != nil {
			return err
		}
		cs := arena.ChildStart(t.idx)
		for j := 0; j < 4; j++ {
			queue = append(queue, buildTask{idx: cs + j, depth: t.depth + 1, pts: kids[j]})
		}
	}
	return runTasks(workers, queue, func(t buildTask, wsc *median.Scratch) error {
		return buildSubtree(arena, sp, t.idx, t.pts, t.depth, wsc)
	})
}

// runTasks drains tasks on a pool of at most workers goroutines, each with
// its own scratch. The first error aborts remaining work.
func runTasks[T any](workers int, tasks []T, run func(t T, sc *median.Scratch) error) error {
	if len(tasks) == 0 {
		return nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ch := make(chan T, len(tasks))
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc median.Scratch
			for t := range ch {
				if errs[w] != nil {
					continue // drain after a failure
				}
				errs[w] = run(t, &sc)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildSubtree builds the subtree rooted at idx depth-first.
func buildSubtree(arena *tree.Tree, sp splitPlanner, idx int, pts []geom.Point, depth int, sc *median.Scratch) error {
	if arena.IsLeaf(idx) {
		arena.Nodes[idx].True = float64(len(pts))
		return nil
	}
	kids, err := expandNode(arena, sp, idx, pts, depth, sc)
	if err != nil {
		return err
	}
	cs := arena.ChildStart(idx)
	for j := 0; j < 4; j++ {
		if err := buildSubtree(arena, sp, cs+j, kids[j], depth+1, sc); err != nil {
			return err
		}
	}
	return nil
}

// expandNode performs one fanout-4 expansion: it records the node's exact
// count, chooses the x and two y splits, assigns the child rectangles and
// partitions pts into the four child sub-slices (in place — children own
// disjoint ranges of the parent's slice).
func expandNode(arena *tree.Tree, sp splitPlanner, idx int, pts []geom.Point, depth int, sc *median.Scratch) ([4][]geom.Point, error) {
	n := &arena.Nodes[idx]
	n.True = float64(len(pts))
	xs, err := sp.Split(pts, geom.AxisX, n.Rect, depth, idx, 0, sc)
	if err != nil {
		return [4][]geom.Point{}, err
	}
	rL, rR := n.Rect.SplitX(xs)
	mid := partitionBelow(pts, geom.AxisX, rL.Hi.X)
	ptsL, ptsR := pts[:mid], pts[mid:]

	ysL, err := sp.Split(ptsL, geom.AxisY, rL, depth, idx, 1, sc)
	if err != nil {
		return [4][]geom.Point{}, err
	}
	ysR, err := sp.Split(ptsR, geom.AxisY, rR, depth, idx, 2, sc)
	if err != nil {
		return [4][]geom.Point{}, err
	}
	r0, r1 := rL.SplitY(ysL)
	r2, r3 := rR.SplitY(ysR)
	midL := partitionBelow(ptsL, geom.AxisY, r0.Hi.Y)
	midR := partitionBelow(ptsR, geom.AxisY, r2.Hi.Y)

	cs := arena.ChildStart(idx)
	arena.Nodes[cs+0].Rect = r0
	arena.Nodes[cs+1].Rect = r1
	arena.Nodes[cs+2].Rect = r2
	arena.Nodes[cs+3].Rect = r3
	return [4][]geom.Point{ptsL[:midL], ptsL[midL:], ptsR[:midR], ptsR[midR:]}, nil
}

// partitionBelow reorders pts so entries with coordinate < split along axis
// come first and returns their count.
func partitionBelow(pts []geom.Point, axis geom.Axis, split float64) int {
	i, j := 0, len(pts)
	for i < j {
		if axis.Coord(pts[i]) < split {
			i++
			continue
		}
		j--
		pts[i], pts[j] = pts[j], pts[i]
	}
	return i
}

// newSplitPlanner builds the planner for the partition-tree kinds.
func newSplitPlanner(cfg Config, epsStruct float64, p *PSD) (splitPlanner, error) {
	switch cfg.Kind {
	case Quadtree, PrivTree:
		// PrivTree geometry is a plain midpoint quadtree; its adaptivity —
		// which subtrees publish — is decided at release time (privtree.go).
		return midpointSplitter{}, nil
	case KD, KDNoisyMean:
		return newMedianSplitter(cfg, cfg.Height, epsStruct, p)
	case Hybrid:
		ms, err := newMedianSplitter(cfg, cfg.SwitchLevel, epsStruct, p)
		if err != nil {
			return nil, err
		}
		return &hybridSplitter{median: ms, switchLevel: cfg.SwitchLevel}, nil
	}
	return nil, fmt.Errorf("core: no split planner for %v", cfg.Kind)
}

// midpointSplitter performs data-independent quadtree splits.
type midpointSplitter struct{}

func (midpointSplitter) Split(_ []geom.Point, axis geom.Axis, r geom.Rect, _, _, _ int, _ *median.Scratch) (float64, error) {
	lo, hi := r.Range(axis)
	return (lo + hi) / 2, nil
}

func (midpointSplitter) Sequential() bool { return false }

// medianSplitter performs private-median splits. Along any root-to-leaf
// path each flattened level incurs two median computations (x then y), so
// with dataLevels data-dependent levels the per-median budget is
// epsStruct/(2·dataLevels) and the per-path structural spend is epsStruct
// (Section 6.2's uniform median budgeting).
//
// When the configured Finder supports per-call streams (every built-in one
// does), each split draws from rng.At(seed, medianStream(node, slot)):
// identical splits whatever order — or goroutine — computes them.
type medianSplitter struct {
	f      median.Finder
	sf     median.StreamFinder // nil when f has hidden stream state
	seed   int64
	epsPer float64
	psd    *PSD
}

func newMedianSplitter(cfg Config, dataLevels int, epsStruct float64, p *PSD) (*medianSplitter, error) {
	ms := &medianSplitter{f: cfg.Median, seed: cfg.Seed, psd: p}
	if median.Streamable(cfg.Median) {
		ms.sf, _ = cfg.Median.(median.StreamFinder)
	}
	if dataLevels > 0 && epsStruct > 0 {
		ms.epsPer = epsStruct / float64(2*dataLevels)
		p.structEps = epsStruct
	}
	return ms, nil
}

func (ms *medianSplitter) Sequential() bool { return ms.sf == nil }

func (ms *medianSplitter) Split(pts []geom.Point, axis geom.Axis, r geom.Rect, _, node, slot int, sc *median.Scratch) (float64, error) {
	lo, hi := r.Range(axis)
	if hi <= lo {
		return lo, nil
	}
	ms.psd.medianCalls.Add(1)
	if ms.sf != nil {
		vals := sc.Coords(len(pts))
		for i, p := range pts {
			vals[i] = axis.Coord(p)
		}
		return ms.sf.MedianAt(rng.At(ms.seed, medianStream(node, slot), saltMedian), sc, vals, lo, hi, ms.epsPer)
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = axis.Coord(p)
	}
	return ms.f.Median(vals, lo, hi, ms.epsPer)
}

// hybridSplitter uses private medians above switchLevel and midpoints below
// (Section 3.2's hybrid tree).
type hybridSplitter struct {
	median      *medianSplitter
	switchLevel int
}

func (h *hybridSplitter) Sequential() bool { return h.median.Sequential() }

func (h *hybridSplitter) Split(pts []geom.Point, axis geom.Axis, r geom.Rect, depth, node, slot int, sc *median.Scratch) (float64, error) {
	if depth < h.switchLevel {
		return h.median.Split(pts, axis, r, depth, node, slot, sc)
	}
	return midpointSplitter{}.Split(pts, axis, r, depth, node, slot, sc)
}

// buildCellGrid releases the fixed-resolution grid that drives kd-cell
// splits ([26]). The grid release is a single epsStruct-DP publication
// (cells partition the data), after which every median is post-processing.
func buildCellGrid(pts []geom.Point, domain geom.Rect, cfg Config, epsStruct float64) (*grid.Grid, error) {
	nx := int(domain.Width()/cfg.CellSize + 0.5)
	ny := int(domain.Height()/cfg.CellSize + 0.5)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	for nx*ny > grid.MaxCells {
		nx = (nx + 1) / 2
		ny = (ny + 1) / 2
	}
	return grid.Build(pts, domain, nx, ny, epsStruct, cfg.Noise)
}

// cellSplitter reads kd-cell split points off the noisy grid. The grid is
// immutable once released, so splits are trivially parallel-safe.
type cellSplitter struct {
	grid *grid.Grid
	psd  *PSD
}

func (c *cellSplitter) Sequential() bool { return false }

func (c *cellSplitter) Split(_ []geom.Point, axis geom.Axis, r geom.Rect, _, _, _ int, sc *median.Scratch) (float64, error) {
	c.psd.medianCalls.Add(1)
	nx, ny := c.grid.Dims()
	n := nx
	if axis == geom.AxisY {
		n = ny
	}
	return c.grid.MedianAlongBuf(r, axis, sc.Coords(n)), nil
}

// prune implements Section 7: descendants of any node whose estimated count
// falls below threshold are removed (the node becomes an effective leaf).
// It returns the number of subtrees cut and the number of leaf regions the
// cuts removed from the flat view (each pruned depth-d root replaces its
// 4^(h-d) leaves with itself). Children of pruned nodes are not themselves
// marked; queries stop at the first pruned ancestor. Levels prune in
// parallel: a node only consults strictly shallower ancestors, which the
// preceding level pass has already finalized.
func prune(arena *tree.Tree, threshold float64, workers int) (cut, leafLoss int) {
	h := arena.Height()
	for d := 0; d < h; d++ {
		lo, hi := arena.DepthRange(d)
		sub := 1 << (2 * (h - d)) // leaves under a depth-d node
		var mu sync.Mutex
		par.For(workers, lo, hi, 512, func(a, b int) {
			localCut, localLoss := 0, 0
			for i := a; i < b; i++ {
				if arena.Nodes[i].Pruned {
					continue
				}
				// Skip nodes under an already-pruned ancestor.
				if d > 0 && prunedAncestor(arena, i) {
					continue
				}
				if arena.Nodes[i].Est < threshold {
					arena.Nodes[i].Pruned = true
					localCut++
					localLoss += sub - 1
				}
			}
			mu.Lock()
			cut += localCut
			leafLoss += localLoss
			mu.Unlock()
		})
	}
	return cut, leafLoss
}

func prunedAncestor(arena *tree.Tree, i int) bool {
	for p := arena.Parent(i); p >= 0; p = arena.Parent(p) {
		if arena.Nodes[p].Pruned {
			return true
		}
	}
	return false
}
