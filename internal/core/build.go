package core

import (
	"fmt"
	"math"
	"time"

	"psd/internal/geom"
	"psd/internal/grid"
	"psd/internal/median"
	"psd/internal/ols"
	"psd/internal/tree"
)

// Build constructs a private spatial decomposition over points within
// domain. The input slice is not modified (Build partitions a copy).
// Points outside the domain are clamped onto its boundary so every input
// tuple is represented, matching how the grid baseline treats strays.
func Build(points []geom.Point, domain geom.Rect, cfg Config) (*PSD, error) {
	start := time.Now()
	cfg, err := cfg.withDefaults(domain)
	if err != nil {
		return nil, err
	}
	arena, err := tree.NewComplete(4, cfg.Height)
	if err != nil {
		return nil, err
	}
	pts, err := clampPoints(points, domain)
	if err != nil {
		return nil, err
	}

	p := &PSD{
		kind:    cfg.Kind,
		arena:   arena,
		domain:  domain,
		epsilon: cfg.Epsilon,
		pruneAt: cfg.PruneThreshold,
	}
	p.stats.Points = len(pts)

	// Split the budget between structure and counts.
	epsCount := cfg.Epsilon * cfg.CountFraction
	epsStruct := cfg.Epsilon - epsCount
	if cfg.NonPrivate {
		epsCount, epsStruct = 0, 0
	}

	// Phase 1: structure. Each builder assigns node rectangles and exact
	// counts, spending epsStruct on private medians (or the kd-cell grid).
	switch cfg.Kind {
	case Quadtree, KD, Hybrid, KDNoisyMean:
		sp, serr := newSplitPlanner(cfg, epsStruct, p)
		if serr != nil {
			return nil, serr
		}
		if err := buildPartitionTree(arena, pts, domain, sp); err != nil {
			return nil, err
		}
	case KDCell:
		g, gerr := buildCellGrid(pts, domain, cfg, epsStruct)
		if gerr != nil {
			return nil, gerr
		}
		sp := &cellSplitter{grid: g, psd: p}
		if err := buildPartitionTree(arena, pts, domain, sp); err != nil {
			return nil, err
		}
		p.structEps = epsStruct // one grid release covers every split
	case HilbertR:
		if err := buildHilbertTree(arena, pts, domain, cfg, epsStruct, p); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown kind %v", cfg.Kind)
	}

	// Phase 2: noisy counts, one Laplace release per published level
	// (sensitivity 1 per level; levels compose sequentially along paths).
	var levels []float64
	if cfg.NonPrivate {
		levels = make([]float64, cfg.Height+1)
		for i := range arena.Nodes {
			arena.Nodes[i].Noisy = arena.Nodes[i].True
			arena.Nodes[i].Published = true
		}
	} else {
		levels, err = cfg.Strategy.Levels(cfg.Height, epsCount)
		if err != nil {
			return nil, err
		}
		for d := 0; d <= cfg.Height; d++ {
			level := cfg.Height - d
			eps := levels[level]
			lo, hi := arena.DepthRange(d)
			for i := lo; i < hi; i++ {
				n := &arena.Nodes[i]
				if eps > 0 {
					n.Noisy = cfg.Noise.Add(n.True, 1, eps)
					n.Published = true
				}
			}
		}
	}
	p.countEps = levels

	// Phase 3: post-processing (Section 5) or raw estimates.
	if cfg.PostProcess && !cfg.NonPrivate {
		if err := ols.Estimate(arena, levels); err != nil {
			return nil, err
		}
		p.postProcessed = true
	} else {
		ols.CopyNoisyToEst(arena)
	}

	// Phase 4: pruning (Section 7), applied after post-processing.
	if cfg.PruneThreshold > 0 {
		p.stats.PrunedSubtrees = prune(arena, cfg.PruneThreshold)
	}

	p.stats.Duration = time.Since(start)
	return p, nil
}

// clampPoints copies points, clamping strays onto the domain boundary
// (just inside the half-open upper edges). Non-finite coordinates are an
// error: silently folding them anywhere would misattribute a tuple.
func clampPoints(points []geom.Point, domain geom.Rect) ([]geom.Point, error) {
	out := make([]geom.Point, len(points))
	for i, p := range points {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("core: point %d has non-finite coordinates %v", i, p)
		}
		if p.X < domain.Lo.X {
			p.X = domain.Lo.X
		}
		if p.Y < domain.Lo.Y {
			p.Y = domain.Lo.Y
		}
		if p.X >= domain.Hi.X {
			p.X = beforeUp(domain.Hi.X)
		}
		if p.Y >= domain.Hi.Y {
			p.Y = beforeUp(domain.Hi.Y)
		}
		out[i] = p
	}
	return out, nil
}

// beforeUp returns the largest float64 strictly below v.
func beforeUp(v float64) float64 {
	return math.Nextafter(v, math.Inf(-1))
}

// splitPlanner chooses split coordinates for the generic fanout-4
// partition-tree builder. depth is the flattened depth of the node being
// split (root = 0).
type splitPlanner interface {
	SplitX(pts []geom.Point, r geom.Rect, depth int) (float64, error)
	SplitY(pts []geom.Point, r geom.Rect, depth int) (float64, error)
}

// buildPartitionTree assigns rectangles and exact counts to every node of
// the arena by recursively splitting the point set: first along x, then
// each half along y, producing four children per node (the flattened
// fanout-4 layout of Section 6.2).
func buildPartitionTree(arena *tree.Tree, pts []geom.Point, domain geom.Rect, sp splitPlanner) error {
	arena.Nodes[0].Rect = domain
	var rec func(idx int, pts []geom.Point, depth int) error
	rec = func(idx int, pts []geom.Point, depth int) error {
		n := &arena.Nodes[idx]
		n.True = float64(len(pts))
		if arena.IsLeaf(idx) {
			return nil
		}
		xs, err := sp.SplitX(pts, n.Rect, depth)
		if err != nil {
			return err
		}
		rL, rR := n.Rect.SplitX(xs)
		mid := partitionBelow(pts, geom.AxisX, rL.Hi.X)
		ptsL, ptsR := pts[:mid], pts[mid:]

		ysL, err := sp.SplitY(ptsL, rL, depth)
		if err != nil {
			return err
		}
		ysR, err := sp.SplitY(ptsR, rR, depth)
		if err != nil {
			return err
		}
		r0, r1 := rL.SplitY(ysL)
		r2, r3 := rR.SplitY(ysR)
		midL := partitionBelow(ptsL, geom.AxisY, r0.Hi.Y)
		midR := partitionBelow(ptsR, geom.AxisY, r2.Hi.Y)

		cs := arena.ChildStart(idx)
		arena.Nodes[cs+0].Rect = r0
		arena.Nodes[cs+1].Rect = r1
		arena.Nodes[cs+2].Rect = r2
		arena.Nodes[cs+3].Rect = r3
		if err := rec(cs+0, ptsL[:midL], depth+1); err != nil {
			return err
		}
		if err := rec(cs+1, ptsL[midL:], depth+1); err != nil {
			return err
		}
		if err := rec(cs+2, ptsR[:midR], depth+1); err != nil {
			return err
		}
		return rec(cs+3, ptsR[midR:], depth+1)
	}
	return rec(0, pts, 0)
}

// partitionBelow reorders pts so entries with coordinate < split along axis
// come first and returns their count.
func partitionBelow(pts []geom.Point, axis geom.Axis, split float64) int {
	i, j := 0, len(pts)
	for i < j {
		if axis.Coord(pts[i]) < split {
			i++
			continue
		}
		j--
		pts[i], pts[j] = pts[j], pts[i]
	}
	return i
}

// newSplitPlanner builds the planner for the partition-tree kinds.
func newSplitPlanner(cfg Config, epsStruct float64, p *PSD) (splitPlanner, error) {
	switch cfg.Kind {
	case Quadtree:
		return midpointSplitter{}, nil
	case KD, KDNoisyMean:
		return newMedianSplitter(cfg, cfg.Height, epsStruct, p)
	case Hybrid:
		ms, err := newMedianSplitter(cfg, cfg.SwitchLevel, epsStruct, p)
		if err != nil {
			return nil, err
		}
		return &hybridSplitter{median: ms, switchLevel: cfg.SwitchLevel}, nil
	}
	return nil, fmt.Errorf("core: no split planner for %v", cfg.Kind)
}

// midpointSplitter performs data-independent quadtree splits.
type midpointSplitter struct{}

func (midpointSplitter) SplitX(_ []geom.Point, r geom.Rect, _ int) (float64, error) {
	return r.Center().X, nil
}

func (midpointSplitter) SplitY(_ []geom.Point, r geom.Rect, _ int) (float64, error) {
	return r.Center().Y, nil
}

// medianSplitter performs private-median splits. Along any root-to-leaf
// path each flattened level incurs two median computations (x then y), so
// with dataLevels data-dependent levels the per-median budget is
// epsStruct/(2·dataLevels) and the per-path structural spend is epsStruct
// (Section 6.2's uniform median budgeting).
type medianSplitter struct {
	f      median.Finder
	epsPer float64
	psd    *PSD
}

func newMedianSplitter(cfg Config, dataLevels int, epsStruct float64, p *PSD) (*medianSplitter, error) {
	ms := &medianSplitter{f: cfg.Median, psd: p}
	if dataLevels > 0 && epsStruct > 0 {
		ms.epsPer = epsStruct / float64(2*dataLevels)
		p.structEps = epsStruct
	}
	return ms, nil
}

func (ms *medianSplitter) split(pts []geom.Point, axis geom.Axis, lo, hi float64) (float64, error) {
	if hi <= lo {
		return lo, nil
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = axis.Coord(p)
	}
	ms.psd.stats.MedianCalls++
	return ms.f.Median(vals, lo, hi, ms.epsPer)
}

func (ms *medianSplitter) SplitX(pts []geom.Point, r geom.Rect, _ int) (float64, error) {
	return ms.split(pts, geom.AxisX, r.Lo.X, r.Hi.X)
}

func (ms *medianSplitter) SplitY(pts []geom.Point, r geom.Rect, _ int) (float64, error) {
	return ms.split(pts, geom.AxisY, r.Lo.Y, r.Hi.Y)
}

// hybridSplitter uses private medians above switchLevel and midpoints below
// (Section 3.2's hybrid tree).
type hybridSplitter struct {
	median      *medianSplitter
	switchLevel int
}

func (h *hybridSplitter) SplitX(pts []geom.Point, r geom.Rect, depth int) (float64, error) {
	if depth < h.switchLevel {
		return h.median.SplitX(pts, r, depth)
	}
	return midpointSplitter{}.SplitX(pts, r, depth)
}

func (h *hybridSplitter) SplitY(pts []geom.Point, r geom.Rect, depth int) (float64, error) {
	if depth < h.switchLevel {
		return h.median.SplitY(pts, r, depth)
	}
	return midpointSplitter{}.SplitY(pts, r, depth)
}

// buildCellGrid releases the fixed-resolution grid that drives kd-cell
// splits ([26]). The grid release is a single epsStruct-DP publication
// (cells partition the data), after which every median is post-processing.
func buildCellGrid(pts []geom.Point, domain geom.Rect, cfg Config, epsStruct float64) (*grid.Grid, error) {
	nx := int(domain.Width()/cfg.CellSize + 0.5)
	ny := int(domain.Height()/cfg.CellSize + 0.5)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	for nx*ny > grid.MaxCells {
		nx = (nx + 1) / 2
		ny = (ny + 1) / 2
	}
	return grid.Build(pts, domain, nx, ny, epsStruct, cfg.Noise)
}

// cellSplitter reads kd-cell split points off the noisy grid.
type cellSplitter struct {
	grid *grid.Grid
	psd  *PSD
}

func (c *cellSplitter) SplitX(_ []geom.Point, r geom.Rect, _ int) (float64, error) {
	c.psd.stats.MedianCalls++
	return c.grid.MedianAlong(r, geom.AxisX), nil
}

func (c *cellSplitter) SplitY(_ []geom.Point, r geom.Rect, _ int) (float64, error) {
	c.psd.stats.MedianCalls++
	return c.grid.MedianAlong(r, geom.AxisY), nil
}

// prune implements Section 7: descendants of any node whose estimated count
// falls below threshold are removed (the node becomes an effective leaf).
// It returns the number of subtrees cut. Children of pruned nodes are not
// themselves marked; queries stop at the first pruned ancestor.
func prune(arena *tree.Tree, threshold float64) int {
	cut := 0
	for d := 0; d < arena.Height(); d++ {
		lo, hi := arena.DepthRange(d)
		for i := lo; i < hi; i++ {
			if arena.Nodes[i].Pruned {
				continue
			}
			// Skip nodes under an already-pruned ancestor.
			if d > 0 && prunedAncestor(arena, i) {
				continue
			}
			if arena.Nodes[i].Est < threshold {
				arena.Nodes[i].Pruned = true
				cut++
			}
		}
	}
	return cut
}

func prunedAncestor(arena *tree.Tree, i int) bool {
	for p := arena.Parent(i); p >= 0; p = arena.Parent(p) {
		if arena.Nodes[p].Pruned {
			return true
		}
	}
	return false
}
