package core

import (
	"psd/internal/geom"
)

// QueryStats describes how a query was answered.
type QueryStats struct {
	// NodesAdded is n(Q): the number of node counts summed into the answer
	// (Section 4.1). Partial leaves count too.
	NodesAdded int
	// NodesVisited is the number of nodes the recursion touched.
	NodesVisited int
	// PartialLeaves is the number of leaves answered under the uniformity
	// assumption.
	PartialLeaves int
}

// Query estimates the number of data points inside q using the canonical
// range-query method of Section 4.1: starting from the root, nodes fully
// contained in q contribute their (post-processed) count, partially
// intersecting internal nodes recurse, and partially intersecting leaves
// contribute under the uniformity assumption.
func (p *PSD) Query(q geom.Rect) float64 {
	var st QueryStats
	return p.queryNode(0, q, &st)
}

// QueryWithStats is Query plus diagnostics.
func (p *PSD) QueryWithStats(q geom.Rect) (float64, QueryStats) {
	var st QueryStats
	ans := p.queryNode(0, q, &st)
	return ans, st
}

// TrueAnswer returns the exact count of data points in q, computed from the
// retained exact leaf counts with exact recursion (partial leaves use the
// uniformity assumption over true counts — the same residual error a
// non-private tree of this height has; see the kd-pure baseline). It exists
// for evaluation and is not part of a private release.
func (p *PSD) TrueAnswer(q geom.Rect) float64 {
	return p.trueNode(0, q)
}

func (p *PSD) queryNode(idx int, q geom.Rect, st *QueryStats) float64 {
	n := &p.arena.Nodes[idx]
	st.NodesVisited++
	if !n.Rect.Intersects(q) {
		return 0
	}
	usable := n.Published || p.postProcessed
	if q.ContainsRect(n.Rect) && usable {
		st.NodesAdded++
		return n.Est
	}
	if p.arena.IsLeaf(idx) || n.Pruned {
		if !usable {
			return 0 // no released information at or below this node
		}
		st.NodesAdded++
		st.PartialLeaves++
		return n.Est * n.Rect.OverlapFraction(q)
	}
	var sum float64
	cs := p.arena.ChildStart(idx)
	for j := 0; j < 4; j++ {
		sum += p.queryNode(cs+j, q, st)
	}
	return sum
}

func (p *PSD) trueNode(idx int, q geom.Rect) float64 {
	n := &p.arena.Nodes[idx]
	if !n.Rect.Intersects(q) {
		return 0
	}
	if q.ContainsRect(n.Rect) {
		return n.True
	}
	if p.arena.IsLeaf(idx) {
		return n.True * n.Rect.OverlapFraction(q)
	}
	var sum float64
	cs := p.arena.ChildStart(idx)
	for j := 0; j < 4; j++ {
		sum += p.trueNode(cs+j, q)
	}
	return sum
}

// LeafRegions returns the rectangles and estimated counts of the effective
// leaves of the release: actual leaves plus pruned subtree roots. This is
// the flat view applications like record matching block on.
func (p *PSD) LeafRegions() ([]geom.Rect, []float64) {
	var rects []geom.Rect
	var counts []float64
	var rec func(idx int)
	rec = func(idx int) {
		n := &p.arena.Nodes[idx]
		if p.arena.IsLeaf(idx) || n.Pruned {
			rects = append(rects, n.Rect)
			counts = append(counts, n.Est)
			return
		}
		cs := p.arena.ChildStart(idx)
		for j := 0; j < 4; j++ {
			rec(cs + j)
		}
	}
	rec(0)
	return rects, counts
}
