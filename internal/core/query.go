package core

import (
	"psd/internal/geom"
	"psd/internal/par"
)

// QueryStats describes how a query was answered.
type QueryStats struct {
	// NodesAdded is n(Q): the number of node counts summed into the answer
	// (Section 4.1). Partial leaves count too.
	NodesAdded int
	// NodesVisited is the number of nodes the traversal touched.
	NodesVisited int
	// PartialLeaves is the number of leaves answered under the uniformity
	// assumption.
	PartialLeaves int
}

// queryStack is the explicit DFS stack of the iterative query engine. A
// complete fanout-4 tree never holds more than 3h+1 pending nodes, so one
// small reusable buffer replaces the recursion the hot loops used to pay
// for. int32 suffices: tree.MaxNodes < 2^31.
type queryStack []int32

// getQueryStack borrows a stack from the PSD's pool (putQueryStack returns
// it), so single queries allocate nothing after the pool warms up.
func (p *PSD) getQueryStack() *queryStack {
	if v := p.stacks.Get(); v != nil {
		return v.(*queryStack)
	}
	st := make(queryStack, 0, 3*p.arena.Height()+1)
	return &st
}

func (p *PSD) putQueryStack(st *queryStack) { p.stacks.Put(st) }

// Query estimates the number of data points inside q using the canonical
// range-query method of Section 4.1: starting from the root, nodes fully
// contained in q contribute their (post-processed) count, partially
// intersecting internal nodes descend, and partially intersecting leaves
// contribute under the uniformity assumption.
func (p *PSD) Query(q geom.Rect) float64 {
	var st QueryStats
	stack := p.getQueryStack()
	ans := p.queryIter(q, stack, &st)
	p.putQueryStack(stack)
	return ans
}

// QueryWithStats is Query plus diagnostics.
func (p *PSD) QueryWithStats(q geom.Rect) (float64, QueryStats) {
	var st QueryStats
	stack := p.getQueryStack()
	ans := p.queryIter(q, stack, &st)
	p.putQueryStack(stack)
	return ans, st
}

// CountAll answers a batch of range queries, spreading them across one
// worker per available core. Answers come back in input order and are
// identical to issuing each Query alone (queries are pure reads of the
// released tree). Use CountAllWorkers to bound the pool.
func (p *PSD) CountAll(qs []geom.Rect) []float64 {
	return p.CountAllWorkers(qs, 0)
}

// CountAllWorkers is CountAll with an explicit worker bound (0 = one per
// core, 1 = inline on the caller's goroutine).
func (p *PSD) CountAllWorkers(qs []geom.Rect, workers int) []float64 {
	out := make([]float64, len(qs))
	par.For(par.Workers(workers), 0, len(qs), 8, func(lo, hi int) {
		stack := p.getQueryStack()
		var st QueryStats
		for i := lo; i < hi; i++ {
			out[i] = p.queryIter(qs[i], stack, &st)
		}
		p.putQueryStack(stack)
	})
	return out
}

// Sealed returns the PSD's cached flat slab, materializing it on first
// use. The slab answers every query bit-identically to the arena (pinned
// by the slab tests), so it is the engine behind the batch query path; the
// arena remains the source of truth and stays fully usable.
func (p *PSD) Sealed() *Slab {
	p.sealOnce.Do(func() { p.sealed = p.Seal() })
	return p.sealed
}

// CountBatch answers a batch of range queries through the node-major batch
// engine (one traversal per batch instead of one DFS per query; see
// Slab.CountBatch). Answers come back in input order and are bit-identical
// to issuing each Query alone.
func (p *PSD) CountBatch(qs []geom.Rect) []float64 {
	return p.Sealed().CountBatch(qs)
}

// CountBatchWorkers is CountBatch with an explicit worker bound (0 = one
// per core, 1 = a single traversal on the caller's goroutine).
func (p *PSD) CountBatchWorkers(qs []geom.Rect, workers int) []float64 {
	return p.Sealed().CountBatchWorkers(qs, workers)
}

// CountBatchInto is Slab.CountBatchInto on the cached sealed slab: answers
// into out plus the batch's aggregate traversal statistics.
func (p *PSD) CountBatchInto(out []float64, qs []geom.Rect, workers int) QueryStats {
	return p.Sealed().CountBatchInto(out, qs, workers)
}

// queryIter runs the canonical method with an explicit stack, reusing the
// caller's buffer across queries.
func (p *PSD) queryIter(q geom.Rect, stack *queryStack, st *QueryStats) float64 {
	nodes := p.arena.Nodes
	s := (*stack)[:0]
	s = append(s, 0)
	var sum float64
	for len(s) > 0 {
		idx := int(s[len(s)-1])
		s = s[:len(s)-1]
		n := &nodes[idx]
		st.NodesVisited++
		if !n.Rect.Intersects(q) {
			continue
		}
		usable := n.Published || p.postProcessed
		if q.ContainsRect(n.Rect) && usable {
			st.NodesAdded++
			sum += n.Est
			continue
		}
		if p.arena.IsLeaf(idx) || n.Pruned {
			if !usable {
				continue // no released information at or below this node
			}
			st.NodesAdded++
			st.PartialLeaves++
			sum += n.Est * n.Rect.OverlapFraction(q)
			continue
		}
		cs := p.arena.ChildStart(idx)
		// Push in reverse so children pop — and contribute — in order.
		s = append(s, int32(cs+3), int32(cs+2), int32(cs+1), int32(cs))
	}
	*stack = s
	return sum
}

// TrueAnswer returns the exact count of data points in q, computed from the
// retained exact leaf counts with exact recursion (partial leaves use the
// uniformity assumption over true counts — the same residual error a
// non-private tree of this height has; see the kd-pure baseline). It exists
// for evaluation and is not part of a private release.
func (p *PSD) TrueAnswer(q geom.Rect) float64 {
	return p.trueNode(0, q)
}

func (p *PSD) trueNode(idx int, q geom.Rect) float64 {
	n := &p.arena.Nodes[idx]
	if !n.Rect.Intersects(q) {
		return 0
	}
	if q.ContainsRect(n.Rect) {
		return n.True
	}
	if p.arena.IsLeaf(idx) {
		return n.True * n.Rect.OverlapFraction(q)
	}
	var sum float64
	cs := p.arena.ChildStart(idx)
	for j := 0; j < 4; j++ {
		sum += p.trueNode(cs+j, q)
	}
	return sum
}

// LeafRegions returns the rectangles and estimated counts of the effective
// leaves of the release: actual leaves plus pruned subtree roots. This is
// the flat view applications like record matching block on. The traversal
// is iterative and the output exactly pre-sized (the build tracks how many
// leaf regions pruning removed), so large trees pay a single allocation
// per slice instead of a realloc cascade.
func (p *PSD) LeafRegions() ([]geom.Rect, []float64) {
	capHint := p.effLeaves
	if capHint < 1 {
		capHint = 1
	}
	rects := make([]geom.Rect, 0, capHint)
	counts := make([]float64, 0, capHint)
	stackp := p.getQueryStack()
	stack := append((*stackp)[:0], 0)
	for len(stack) > 0 {
		idx := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		n := &p.arena.Nodes[idx]
		if p.arena.IsLeaf(idx) || n.Pruned {
			rects = append(rects, n.Rect)
			counts = append(counts, n.Est)
			continue
		}
		cs := p.arena.ChildStart(idx)
		// Reverse push keeps the historical left-to-right region order.
		stack = append(stack, int32(cs+3), int32(cs+2), int32(cs+1), int32(cs))
	}
	*stackp = stack
	p.putQueryStack(stackp)
	return rects, counts
}
