package core

import (
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"math"
	"math/bits"
)

// Release format v2 is a little-endian binary columnar encoding of the same
// artifact the versioned JSON (format 1) carries. It exists for the serving
// hot path: ReadBinary decodes straight into a Slab — raw float64 columns
// copied into place, one bitset for the published flags, no per-count
// pointer or interface allocation — where the JSON decoder pays reflection
// and a heap pointer per count.
//
// Layout (all integers and floats little-endian):
//
//	offset  size        field
//	0       4           magic "PSD2"
//	4       1           format version (2)
//	5       1           kind (the Kind enumeration: 0 quadtree, 1 kd,
//	                    2 kd-hybrid, 3 hilbert-r, 4 kd-cell, 5 kd-noisymean,
//	                    6 privtree; append-only for v2)
//	6       1           fanout (must be 4)
//	7       1           height h (0..13)
//	8       8           epsilon (float64)
//	16      32          domain lox,loy,hix,hiy (4 × float64)
//	48      4           node count n (uint32; must equal (4^(h+1)-1)/3)
//	52      4           pruned count p (uint32)
//	56      n*8 each    five columns, breadth-first: lox, loy, hix, hiy, count
//	...     ceil(n/64)*8  published bitset (uint64 words, LSB-first)
//	...     p uvarints  pruned node indices, delta-encoded (first index, then
//	                    gaps), strictly ascending
//
// The artifact ends exactly after the pruned list: the decoder requires EOF
// there, so a concatenated or trailing-garbage file is rejected rather than
// "successfully" decoded (which would defeat the canonical-encoding
// guarantee and the serving tier's corrupt-file quarantine).
//
// Count slots of unpublished nodes are written as zero and forced to zero on
// read, so a decoded slab never carries garbage into LeafRegions. The
// decoder applies the same hardening as Release.Validate before and after
// the column reads: shape, epsilon and domain checks gate the allocation,
// per-node checks reject non-finite or inverted rectangles and non-finite
// published counts, and pruned indices must be in-range and ascending.
//
// Release format v3 (binary_v3.go) is the record-major, mmap-ready sibling:
// ReadBinary accepts both, dispatching on the magic.

// binaryMagic opens every format-v2 artifact; SniffBinary keys on it.
var binaryMagic = [4]byte{'P', 'S', 'D', '2'}

// binaryVersion is the format-v2 serialization version byte.
const binaryVersion = 2

// binaryHeaderSize is the fixed-size v2 prefix before the columns.
const binaryHeaderSize = 56

// numKinds bounds the kind byte (the Kind enumeration is 0..numKinds-1).
const numKinds = 7

// SniffBinary reports whether the first bytes of an artifact announce one of
// the binary formats (v2 or v3). JSON releases start with '{', so four bytes
// decide.
func SniffBinary(prefix []byte) bool {
	if len(prefix) < 4 {
		return false
	}
	m := [4]byte(prefix[:4])
	return m == binaryMagic || m == v3Magic
}

// WriteBinary serializes the release in format v2. The release is validated
// first, so a malformed in-memory artifact cannot produce undecodable bytes.
func (r *Release) WriteBinary(w io.Writer) (int64, error) {
	s, err := r.Slab()
	if err != nil {
		return 0, err
	}
	return s.WriteBinary(w)
}

// artifactWriter batches encoded bytes into a fixed chunk before handing
// them to the destination, counting exactly the bytes the destination
// accepted. The binary encoders write through it instead of a bufio.Writer
// so the (n, err) they return has one unambiguous meaning: n is what
// actually reached w — on a mid-stream failure included — never inflated by
// bytes a buffer accepted but never delivered. When crc is non-nil every
// written byte also feeds it (the v3 body checksum).
type artifactWriter struct {
	w   io.Writer
	crc hash.Hash64
	buf []byte
	n   int64 // bytes the destination accepted
	err error // first destination error; later writes are dropped
}

// artifactChunk is the destination write size: large enough that per-value
// encoding never reaches the destination as 8-byte writes.
const artifactChunk = 64 << 10

func newArtifactWriter(w io.Writer, crc hash.Hash64) *artifactWriter {
	return &artifactWriter{w: w, crc: crc, buf: make([]byte, 0, artifactChunk)}
}

// flush delivers the buffered chunk, folding short writes into errors.
func (aw *artifactWriter) flush() {
	if aw.err != nil || len(aw.buf) == 0 {
		aw.buf = aw.buf[:0]
		return
	}
	n, err := aw.w.Write(aw.buf)
	if n > len(aw.buf) {
		n = len(aw.buf)
	}
	aw.n += int64(n)
	if err == nil && n < len(aw.buf) {
		err = io.ErrShortWrite
	}
	aw.err = err
	aw.buf = aw.buf[:0]
}

// write buffers p, flushing full chunks as it goes.
func (aw *artifactWriter) write(p []byte) {
	if aw.err != nil {
		return
	}
	if aw.crc != nil {
		aw.crc.Write(p) // hash.Hash.Write never errors
	}
	for len(p) > 0 {
		free := cap(aw.buf) - len(aw.buf)
		if free == 0 {
			aw.flush()
			if aw.err != nil {
				return
			}
			free = cap(aw.buf)
		}
		k := min(free, len(p))
		aw.buf = append(aw.buf, p[:k]...)
		p = p[k:]
	}
}

// u64 writes one little-endian uint64.
func (aw *artifactWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	aw.write(b[:])
}

// zeros writes n zero bytes (section padding).
func (aw *artifactWriter) zeros(n int) {
	var z [64]byte
	for n > 0 {
		k := min(n, len(z))
		aw.write(z[:k])
		n -= k
	}
}

// WriteBinary serializes the slab's release in format v2, returning the
// number of bytes that reached w (on error, the bytes delivered before the
// failure).
func (s *Slab) WriteBinary(w io.Writer) (int64, error) {
	s.ensureOpen()
	aw := newArtifactWriter(w, nil)
	n := s.Len()

	var hdr [binaryHeaderSize]byte
	copy(hdr[0:4], binaryMagic[:])
	hdr[4] = binaryVersion
	hdr[5] = byte(s.kind)
	hdr[6] = 4
	hdr[7] = byte(s.height)
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(s.epsilon))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(s.domain.Lo.X))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(s.domain.Lo.Y))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(s.domain.Hi.X))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(s.domain.Hi.Y))
	binary.LittleEndian.PutUint32(hdr[48:], uint32(n))
	pruned := s.prunedIndices()
	binary.LittleEndian.PutUint32(hdr[52:], uint32(len(pruned)))
	aw.write(hdr[:])

	// The four bound columns are stored scalar-per-column on disk (columnar
	// layouts align and compress well); in memory the slab packs them per
	// node, so the writer de-interleaves, encoding through a value-batch
	// scratch so the destination sees chunk-sized writes. The count column
	// writes zero for unpublished slots so the encoding is canonical (a
	// round trip through ReadBinary re-serializes byte-identically).
	var b [8 << 10]byte
	for col := 0; col < 5; col++ {
		off := 0
		for i := 0; i < n; i++ {
			v := s.nodes[i][col]
			if col == 4 && !s.usable.get(i) {
				v = 0
			}
			binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
			off += 8
			if off == len(b) {
				aw.write(b[:off])
				off = 0
			}
		}
		aw.write(b[:off])
	}
	for _, word := range s.usable {
		aw.u64(word)
	}
	var vb [binary.MaxVarintLen64]byte
	prev := 0
	for i, idx := range pruned {
		delta := idx - prev
		if i == 0 {
			delta = idx
		}
		k := binary.PutUvarint(vb[:], uint64(delta))
		aw.write(vb[:k])
		prev = idx
	}
	aw.flush()
	return aw.n, aw.err
}

// prunedIndices lists the pruned subtree roots in ascending order. The
// output is sized from a popcount over the bitset and filled by iterating
// its set bits, so heavily-pruned releases (adaptive PrivTree shapes can
// prune most of the tree) pay O(words + pruned), not repeated append growth
// over an O(n) scan.
func (s *Slab) prunedIndices() []int {
	count := 0
	for _, w := range s.pruned {
		count += bits.OnesCount64(w)
	}
	if count == 0 {
		return nil
	}
	out := make([]int, 0, count)
	for wi, w := range s.pruned {
		for w != 0 {
			out = append(out, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// ReadBinary parses and validates a binary release — format v2 or v3,
// dispatched on the magic — decoding straight into a query-ready Slab. The
// input is treated as untrusted: the header is fully checked before any
// node-sized allocation, and every per-node check of Release.Validate runs
// on the columns, so a successfully decoded slab is structurally sound. The
// reader must be exhausted by the artifact: trailing bytes are an error.
func ReadBinary(r io.Reader) (*Slab, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading binary release header: %w", err)
	}
	switch magic {
	case binaryMagic:
		return readBinaryV2(r)
	case v3Magic:
		return readBinaryV3(r)
	}
	return nil, fmt.Errorf("core: bad magic %q in binary release", magic[:])
}

// readBinaryV2 decodes a format-v2 body (magic already consumed).
func readBinaryV2(r io.Reader) (*Slab, error) {
	var hdr [binaryHeaderSize]byte
	copy(hdr[0:4], binaryMagic[:])
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return nil, fmt.Errorf("core: reading binary release header: %w", err)
	}
	if hdr[4] != binaryVersion {
		return nil, fmt.Errorf("core: unsupported binary release version %d", hdr[4])
	}
	if hdr[5] >= numKinds {
		return nil, fmt.Errorf("core: unknown kind %d in binary release", hdr[5])
	}
	kind := Kind(hdr[5])
	nodes, err := checkShape(int(hdr[6]), int(hdr[7]))
	if err != nil {
		return nil, err
	}
	height := int(hdr[7])
	epsilon := math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:]))
	if err := checkEpsilon(epsilon); err != nil {
		return nil, err
	}
	var domain [4]float64
	for i := range domain {
		domain[i] = math.Float64frombits(binary.LittleEndian.Uint64(hdr[16+8*i:]))
	}
	if err := checkDomain(domain); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(hdr[48:]); got != uint32(nodes) {
		return nil, fmt.Errorf("core: binary release declares %d nodes for a %d-node tree", got, nodes)
	}
	numPruned := int(binary.LittleEndian.Uint32(hdr[52:]))
	if numPruned < 0 || numPruned > nodes {
		return nil, fmt.Errorf("core: binary release declares %d pruned nodes of %d", numPruned, nodes)
	}

	s := newSlab(kind, height, unflattenRect(domain), epsilon)
	// Columns stream through a bounded scratch buffer: a worst-case tree has
	// tens of millions of nodes, and the scratch must not double the peak.
	const scratchBytes = 1 << 20
	buf := make([]byte, min(8*nodes, scratchBytes))
	readColumn := func(assign func(i int, v float64)) error {
		for base := 0; base < nodes; {
			b := buf[:min(len(buf), 8*(nodes-base))]
			if _, err := io.ReadFull(r, b); err != nil {
				return fmt.Errorf("core: reading binary release column: %w", err)
			}
			for i := 0; i < len(b)/8; i++ {
				assign(base+i, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
			}
			base += len(b) / 8
		}
		return nil
	}
	// The on-disk scalar columns interleave into the packed per-node
	// records as they stream.
	for col := 0; col < 5; col++ {
		col := col
		if err := readColumn(func(i int, v float64) { s.nodes[i][col] = v }); err != nil {
			return nil, err
		}
	}
	words := make([]byte, 8*len(s.usable))
	if _, err := io.ReadFull(r, words); err != nil {
		return nil, fmt.Errorf("core: reading binary release published bitset: %w", err)
	}
	for i := range s.usable {
		s.usable[i] = binary.LittleEndian.Uint64(words[8*i:])
	}
	// Trailing bits of the last bitset word must be clear: they describe no
	// node, and canonical encoding keeps round trips byte-identical.
	if tail := uint(nodes) & 63; tail != 0 && len(s.usable) > 0 {
		if s.usable[len(s.usable)-1]>>tail != 0 {
			return nil, fmt.Errorf("core: binary release has published bits beyond node %d", nodes-1)
		}
	}

	for i := 0; i < nodes; i++ {
		nd := &s.nodes[i]
		if !finiteRect([4]float64{nd[0], nd[1], nd[2], nd[3]}) {
			return nil, fmt.Errorf("core: release node %d has non-finite rect", i)
		}
		if nd[0] > nd[2] || nd[1] > nd[3] {
			return nil, fmt.Errorf("core: release node %d has inverted rect", i)
		}
		if s.usable.get(i) {
			if c := nd[4]; math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("core: release node %d has non-finite count", i)
			}
		} else {
			nd[4] = 0
		}
	}

	br := byteReaderFor(r)
	prev := -1
	for k := 0; k < numPruned; k++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading binary release pruned list: %w", err)
		}
		idx := prev + int(delta)
		if k == 0 {
			idx = int(delta)
		}
		if idx <= prev || idx >= nodes {
			return nil, fmt.Errorf("core: pruned index %d out of range", idx)
		}
		s.markPruned(idx)
		prev = idx
	}
	if err := expectEOF(r); err != nil {
		return nil, err
	}
	s.computeEffLeaves()
	s.finish()
	return s, nil
}

// expectEOF requires the reader to be exhausted: a binary artifact's length
// is implied by its header, so any byte past the end means concatenation,
// corruption, or a torn rewrite — none of which may decode "successfully".
func expectEOF(r io.Reader) error {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != io.EOF {
		return fmt.Errorf("core: binary release has trailing bytes past its end")
	}
	return nil
}

// byteReaderFor adapts any reader for varint decoding without buffering
// ahead (the pruned list is the trailer, so lookahead is harmless, but a
// one-byte adapter keeps the contract obvious).
func byteReaderFor(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return &oneByteReader{r: r}
}

type oneByteReader struct {
	r io.Reader
	b [1]byte
}

func (o *oneByteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(o.r, o.b[:])
	return o.b[0], err
}
