package core

import (
	"bytes"
	"sync"
	"testing"

	"psd/internal/geom"
)

// slabTestConfigs covers every decomposition family plus the post-processing
// and pruning axes the query engine branches on.
func slabTestConfigs() []Config {
	return []Config{
		{Kind: Quadtree, Height: 3, Epsilon: 1, Seed: 11, PostProcess: true},
		{Kind: Quadtree, Height: 4, Epsilon: 0.5, Seed: 12}, // raw noisy counts, per-level Published flags
		{Kind: KD, Height: 3, Epsilon: 1, Seed: 13, PostProcess: true},
		{Kind: Hybrid, Height: 4, Epsilon: 0.5, Seed: 14, PostProcess: true, PruneThreshold: 16},
		{Kind: HilbertR, Height: 3, Epsilon: 1, Seed: 15},
		{Kind: KDCell, Height: 3, Epsilon: 1, Seed: 16, PostProcess: true},
		{Kind: KDNoisyMean, Height: 3, Epsilon: 0.5, Seed: 17},
		// Adaptive depth: unpublished interior + pruned adaptive leaves.
		{Kind: PrivTree, Height: 4, Epsilon: 0.5, Seed: 18},
		{Kind: PrivTree, Height: 3, Epsilon: 1, Seed: 19, Theta: 24},
	}
}

// slabTestQueries exercises every traversal outcome: full domain, strict
// containment, partial leaves, thin slivers, disjoint, and inverted-ish
// degenerate boxes.
func slabTestQueries(dom geom.Rect) []geom.Rect {
	w, h := dom.Width(), dom.Height()
	at := func(fx0, fy0, fx1, fy1 float64) geom.Rect {
		return geom.Rect{
			Lo: geom.Point{X: dom.Lo.X + fx0*w, Y: dom.Lo.Y + fy0*h},
			Hi: geom.Point{X: dom.Lo.X + fx1*w, Y: dom.Lo.Y + fy1*h},
		}
	}
	return []geom.Rect{
		dom,
		at(0, 0, 0.5, 0.5),
		at(0.25, 0.25, 0.75, 0.75),
		at(0.1, 0.6, 0.9, 0.95),
		at(0.47, 0.47, 0.53, 0.53),
		at(0, 0, 0.125, 1),
		at(0.013, 0.77, 0.981, 0.791), // thin horizontal sliver
		at(-0.5, -0.5, 1.5, 1.5),      // superset of the domain
		at(1.1, 1.1, 1.2, 1.2),        // disjoint
		at(0.3, 0.3, 0.3, 0.8),        // zero-width degenerate
	}
}

// TestSlabMatchesArena pins the tentpole invariant: the sealed slab answers
// every query bit-identically to the arena path, with identical traversal
// statistics, and reproduces LeafRegions exactly.
func TestSlabMatchesArena(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 7)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
		s := p.Seal()
		if s.Kind() != p.Kind() || s.Height() != p.Height() || s.Fanout() != 4 ||
			s.Len() != p.Len() || s.Domain() != p.Domain() || s.PrivacyCost() != p.PrivacyCost() {
			t.Fatalf("%v: slab metadata differs from PSD", cfg.Kind)
		}
		for _, q := range slabTestQueries(dom) {
			wantV, wantSt := p.QueryWithStats(q)
			gotV, gotSt := s.QueryWithStats(q)
			if gotV != wantV {
				t.Errorf("%v: slab Query(%v) = %v, arena %v", cfg.Kind, q, gotV, wantV)
			}
			if gotSt != wantSt {
				t.Errorf("%v: slab stats for %v = %+v, arena %+v", cfg.Kind, q, gotSt, wantSt)
			}
			if g := s.Query(q); g != wantV {
				t.Errorf("%v: slab Query(%v) = %v, want %v", cfg.Kind, q, g, wantV)
			}
		}
		wantR, wantC := p.LeafRegions()
		gotR, gotC := s.LeafRegions()
		if len(gotR) != len(wantR) || len(gotC) != len(wantC) {
			t.Fatalf("%v: slab LeafRegions %d/%d, arena %d/%d",
				cfg.Kind, len(gotR), len(gotC), len(wantR), len(wantC))
		}
		if s.NumRegions() != len(wantR) {
			t.Errorf("%v: NumRegions = %d, want %d", cfg.Kind, s.NumRegions(), len(wantR))
		}
		for i := range wantR {
			if gotR[i] != wantR[i] || gotC[i] != wantC[i] {
				t.Fatalf("%v: leaf region %d = %v/%v, want %v/%v",
					cfg.Kind, i, gotR[i], gotC[i], wantR[i], wantC[i])
			}
		}
	}
}

// TestSlabFromReleaseMatchesOpenRelease pins that decoding a release
// straight into a slab answers exactly as the arena OpenRelease path.
func TestSlabFromReleaseMatchesOpenRelease(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(2048, dom, 21)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rel := p.Release()
		arena, err := OpenRelease(rel)
		if err != nil {
			t.Fatal(err)
		}
		slab, err := rel.Slab()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range slabTestQueries(dom) {
			if a, b := arena.Query(q), slab.Query(q); a != b {
				t.Errorf("%v: release slab Query(%v) = %v, arena %v", cfg.Kind, q, b, a)
			}
		}
		ra, ca := arena.LeafRegions()
		rs, cs := slab.LeafRegions()
		if len(ra) != len(rs) {
			t.Fatalf("%v: release slab has %d regions, arena %d", cfg.Kind, len(rs), len(ra))
		}
		for i := range ra {
			if ra[i] != rs[i] || ca[i] != cs[i] {
				t.Fatalf("%v: release slab region %d differs", cfg.Kind, i)
			}
		}
	}
}

// TestSlabReleaseRoundTrip pins that Slab.Release reconstructs the artifact
// byte-identically: PSD -> Release -> JSON equals PSD -> Seal -> Release ->
// JSON, and a slab decoded from a release re-serializes the same bytes.
func TestSlabReleaseRoundTrip(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 31)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var direct bytes.Buffer
		if _, err := p.Release().WriteTo(&direct); err != nil {
			t.Fatal(err)
		}
		var sealed bytes.Buffer
		if _, err := p.Seal().Release().WriteTo(&sealed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Bytes(), sealed.Bytes()) {
			t.Errorf("%v: sealed slab release differs from PSD release", cfg.Kind)
		}
		slab, err := p.Release().Slab()
		if err != nil {
			t.Fatal(err)
		}
		var reopened bytes.Buffer
		if _, err := slab.Release().WriteTo(&reopened); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Bytes(), reopened.Bytes()) {
			t.Errorf("%v: release->slab->release round trip differs", cfg.Kind)
		}
	}
}

// TestSlabCountAllDeterministic pins batch answers to the sequential ones
// at every worker count — the parallel-determinism guarantee the build
// already makes, extended to the slab read path.
func TestSlabCountAllDeterministic(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(2048, dom, 41)
	p, err := Build(pts, dom, Config{Kind: Hybrid, Height: 4, Epsilon: 0.5, Seed: 42, PostProcess: true, PruneThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Seal()
	qs := make([]geom.Rect, 0, 64)
	for i := 0; i < 64; i++ {
		base := slabTestQueries(dom)
		qs = append(qs, base[i%len(base)])
	}
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i] = s.Query(q)
	}
	for _, workers := range []int{1, 2, 3, 8, 0} {
		got := s.CountAllWorkers(qs, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: CountAll[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
	arena := p.CountAll(qs)
	for i := range want {
		if arena[i] != want[i] {
			t.Fatalf("arena CountAll[%d] = %v, slab %v", i, arena[i], want[i])
		}
	}
}

// TestSlabConcurrentQueries hammers the pooled-stack path from many
// goroutines (run with -race in CI): answers must stay exact.
func TestSlabConcurrentQueries(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 51)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 4, Epsilon: 1, Seed: 52, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Seal()
	qs := slabTestQueries(dom)
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i] = s.Query(q)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				i := (g + rep) % len(qs)
				if got := s.Query(qs[i]); got != want[i] {
					errs <- "concurrent slab query diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
