package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"psd/internal/geom"
	"psd/internal/tree"
)

// Release is the serializable private artifact of a PSD: the tree geometry
// plus the released counts, and nothing derived from the raw data beyond
// them. This is what a curator actually publishes; OpenRelease reconstructs
// a query-only tree from it with no access to the original points.
//
// The format is versioned JSON. Counts are the post-processed estimates
// when post-processing ran (they are a deterministic function of the noisy
// counts, so publishing them is free), otherwise the raw noisy counts.
type Release struct {
	// Version identifies the format.
	Version int `json:"version"`
	// Kind names the decomposition family.
	Kind string `json:"kind"`
	// Epsilon is the total privacy budget the release consumed.
	Epsilon float64 `json:"epsilon"`
	// Fanout and Height describe the complete tree.
	Fanout int `json:"fanout"`
	Height int `json:"height"`
	// Domain is the released domain rectangle [lox,loy,hix,hiy].
	Domain [4]float64 `json:"domain"`
	// Rects holds every node rectangle in breadth-first order, flattened as
	// [lox,loy,hix,hiy].
	Rects [][4]float64 `json:"rects"`
	// Counts holds the released estimate per node; NaN marks unpublished
	// nodes (serialized as null).
	Counts []*float64 `json:"counts"`
	// Pruned holds the indices of pruned subtree roots.
	Pruned []int `json:"pruned,omitempty"`
}

// releaseVersion is the current serialization version.
const releaseVersion = 1

// Release extracts the publishable artifact from a built PSD.
func (p *PSD) Release() *Release {
	ar := p.arena
	rel := &Release{
		Version: releaseVersion,
		Kind:    p.kind.String(),
		Epsilon: p.PrivacyCost(),
		Fanout:  ar.Fanout(),
		Height:  ar.Height(),
		Domain:  flattenRect(p.domain),
		Rects:   make([][4]float64, ar.Len()),
		Counts:  make([]*float64, ar.Len()),
	}
	for i := range ar.Nodes {
		n := &ar.Nodes[i]
		rel.Rects[i] = flattenRect(n.Rect)
		if n.Published || p.postProcessed {
			v := n.Est
			rel.Counts[i] = &v
		}
		if n.Pruned {
			rel.Pruned = append(rel.Pruned, i)
		}
	}
	return rel
}

// WriteTo serializes the release as JSON.
func (r *Release) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := json.NewEncoder(cw).Encode(r); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadRelease parses a JSON release.
func ReadRelease(r io.Reader) (*Release, error) {
	var rel Release
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rel); err != nil {
		return nil, fmt.Errorf("core: parsing release: %w", err)
	}
	return &rel, nil
}

// OpenRelease reconstructs a query-only PSD from a release. The resulting
// tree answers Query/QueryWithStats/LeafRegions exactly as the original
// did; TrueAnswer is unavailable (the release carries no exact counts) and
// returns NaN-free zeros.
func OpenRelease(rel *Release) (*PSD, error) {
	if rel.Version != releaseVersion {
		return nil, fmt.Errorf("core: unsupported release version %d", rel.Version)
	}
	if rel.Fanout != 4 {
		return nil, fmt.Errorf("core: unsupported fanout %d", rel.Fanout)
	}
	ar, err := tree.NewComplete(rel.Fanout, rel.Height)
	if err != nil {
		return nil, err
	}
	if len(rel.Rects) != ar.Len() || len(rel.Counts) != ar.Len() {
		return nil, fmt.Errorf("core: release has %d rects / %d counts for a %d-node tree",
			len(rel.Rects), len(rel.Counts), ar.Len())
	}
	for i := range ar.Nodes {
		ar.Nodes[i].Rect = unflattenRect(rel.Rects[i])
		if !ar.Nodes[i].Rect.Valid() {
			return nil, fmt.Errorf("core: release node %d has invalid rect", i)
		}
		if c := rel.Counts[i]; c != nil {
			if math.IsNaN(*c) || math.IsInf(*c, 0) {
				return nil, fmt.Errorf("core: release node %d has non-finite count", i)
			}
			ar.Nodes[i].Est = *c
			ar.Nodes[i].Published = true
		}
	}
	effLeaves := ar.NumLeaves()
	for _, i := range rel.Pruned {
		if i < 0 || i >= ar.Len() {
			return nil, fmt.Errorf("core: pruned index %d out of range", i)
		}
		ar.Nodes[i].Pruned = true
		// Each pruned depth-d root collapses its 4^(h-d) leaves into one
		// region; track the loss so LeafRegions can pre-size exactly.
		if d := ar.Depth(i); d < rel.Height {
			effLeaves -= 1<<(2*(rel.Height-d)) - 1
		}
	}
	if effLeaves < 1 {
		effLeaves = 1
	}
	kind, err := parseKind(rel.Kind)
	if err != nil {
		return nil, err
	}
	return &PSD{
		kind:    kind,
		arena:   ar,
		domain:  unflattenRect(rel.Domain),
		epsilon: rel.Epsilon,
		// Per-node Published flags carry which counts exist; a release of a
		// post-processed tree has counts everywhere, so queries behave
		// identically to the original either way.
		postProcessed: false,
		countEps:      make([]float64, rel.Height+1),
		structEps:     rel.Epsilon, // conservative: the whole spend
		effLeaves:     effLeaves,
	}, nil
}

func parseKind(s string) (Kind, error) {
	for _, k := range []Kind{Quadtree, KD, Hybrid, HilbertR, KDCell, KDNoisyMean} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown kind %q in release", s)
}

func flattenRect(r geom.Rect) [4]float64 {
	return [4]float64{r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y}
}

func unflattenRect(v [4]float64) geom.Rect {
	return geom.Rect{
		Lo: geom.Point{X: v[0], Y: v[1]},
		Hi: geom.Point{X: v[2], Y: v[3]},
	}
}
