package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"psd/internal/geom"
	"psd/internal/tree"
)

// Release is the serializable private artifact of a PSD: the tree geometry
// plus the released counts, and nothing derived from the raw data beyond
// them. This is what a curator actually publishes; OpenRelease reconstructs
// a query-only tree from it with no access to the original points.
//
// The format is versioned JSON. Counts are the post-processed estimates
// when post-processing ran (they are a deterministic function of the noisy
// counts, so publishing them is free), otherwise the raw noisy counts.
type Release struct {
	// Version identifies the format.
	Version int `json:"version"`
	// Kind names the decomposition family.
	Kind string `json:"kind"`
	// Epsilon is the total privacy budget the release consumed.
	Epsilon float64 `json:"epsilon"`
	// Fanout and Height describe the complete tree.
	Fanout int `json:"fanout"`
	Height int `json:"height"`
	// Domain is the released domain rectangle [lox,loy,hix,hiy].
	Domain [4]float64 `json:"domain"`
	// Rects holds every node rectangle in breadth-first order, flattened as
	// [lox,loy,hix,hiy].
	Rects [][4]float64 `json:"rects"`
	// Counts holds the released estimate per node; NaN marks unpublished
	// nodes (serialized as null).
	Counts []*float64 `json:"counts"`
	// Pruned holds the indices of pruned subtree roots.
	Pruned []int `json:"pruned,omitempty"`
}

// releaseVersion is the current serialization version.
const releaseVersion = 1

// Release extracts the publishable artifact from a built PSD.
func (p *PSD) Release() *Release {
	ar := p.arena
	rel := &Release{
		Version: releaseVersion,
		Kind:    p.kind.String(),
		Epsilon: p.PrivacyCost(),
		Fanout:  ar.Fanout(),
		Height:  ar.Height(),
		Domain:  flattenRect(p.domain),
		Rects:   make([][4]float64, ar.Len()),
		Counts:  make([]*float64, ar.Len()),
	}
	for i := range ar.Nodes {
		n := &ar.Nodes[i]
		rel.Rects[i] = flattenRect(n.Rect)
		if n.Published || p.postProcessed {
			v := n.Est
			rel.Counts[i] = &v
		}
		if n.Pruned {
			rel.Pruned = append(rel.Pruned, i)
		}
	}
	return rel
}

// WriteTo serializes the release as JSON.
func (r *Release) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := json.NewEncoder(cw).Encode(r); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadRelease parses and validates a JSON release. The input is treated as
// untrusted: a successfully parsed release is structurally sound (see
// Validate), so callers may hand the result straight to OpenRelease.
func ReadRelease(r io.Reader) (*Release, error) {
	var rel Release
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rel); err != nil {
		return nil, fmt.Errorf("core: parsing release: %w", err)
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return &rel, nil
}

// maxReleaseHeight bounds the tree height a release may declare. It matches
// the build-side cap in Config.withDefaults; together with the fanout check
// it keeps a malicious artifact from forcing a huge arena allocation before
// the length checks run.
const maxReleaseHeight = 13

// Validate checks a release for structural soundness without allocating the
// arena: version and kind are known, the fanout/height product is sane and
// matches the rects/counts lengths, every rectangle is finite and ordered,
// every published count is finite, epsilon is a finite non-negative budget,
// the domain is a finite non-empty rectangle, and pruned indices are
// in-range and distinct. OpenRelease validates automatically; ReadRelease
// rejects artifacts that fail these checks at parse time.
func (r *Release) Validate() error {
	if r.Version != releaseVersion {
		return fmt.Errorf("core: unsupported release version %d", r.Version)
	}
	if _, err := parseKind(r.Kind); err != nil {
		return err
	}
	nodes, err := checkShape(r.Fanout, r.Height)
	if err != nil {
		return err
	}
	if len(r.Rects) != nodes || len(r.Counts) != nodes {
		return fmt.Errorf("core: release has %d rects / %d counts for a %d-node tree",
			len(r.Rects), len(r.Counts), nodes)
	}
	if err := checkEpsilon(r.Epsilon); err != nil {
		return err
	}
	if err := checkDomain(r.Domain); err != nil {
		return err
	}
	for i, fr := range r.Rects {
		if !finiteRect(fr) {
			return fmt.Errorf("core: release node %d has non-finite rect", i)
		}
		if !unflattenRect(fr).Valid() {
			return fmt.Errorf("core: release node %d has inverted rect", i)
		}
	}
	for i, c := range r.Counts {
		if c != nil && (math.IsNaN(*c) || math.IsInf(*c, 0)) {
			return fmt.Errorf("core: release node %d has non-finite count", i)
		}
	}
	if len(r.Pruned) > 0 {
		seen := make(map[int]bool, len(r.Pruned))
		for _, i := range r.Pruned {
			if i < 0 || i >= nodes {
				return fmt.Errorf("core: pruned index %d out of range", i)
			}
			if seen[i] {
				return fmt.Errorf("core: duplicate pruned index %d", i)
			}
			seen[i] = true
		}
	}
	return nil
}

func finiteRect(v [4]float64) bool {
	for _, f := range v {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// checkShape validates the declared fanout/height and returns the node
// count of the complete tree. Shared by the JSON and binary (format v2)
// decoders; the checks run before any node-sized allocation.
func checkShape(fanout, height int) (int, error) {
	if fanout != 4 {
		return 0, fmt.Errorf("core: unsupported fanout %d", fanout)
	}
	if height < 0 || height > maxReleaseHeight {
		return 0, fmt.Errorf("core: release height %d outside [0,%d]", height, maxReleaseHeight)
	}
	nodes := 0
	for d, level := 0, 1; d <= height; d, level = d+1, level*fanout {
		nodes += level
		if nodes > tree.MaxNodes {
			return 0, fmt.Errorf("core: fanout %d height %d exceeds %d nodes", fanout, height, tree.MaxNodes)
		}
	}
	return nodes, nil
}

// checkEpsilon validates a declared privacy budget.
func checkEpsilon(eps float64) error {
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 {
		return fmt.Errorf("core: invalid release epsilon %v", eps)
	}
	return nil
}

// checkDomain validates a declared domain rectangle.
func checkDomain(v [4]float64) error {
	if !finiteRect(v) {
		return fmt.Errorf("core: release domain %v is not finite", v)
	}
	if d := unflattenRect(v); !d.Valid() || d.Empty() {
		return fmt.Errorf("core: release domain %v is inverted or empty", v)
	}
	return nil
}

// OpenRelease reconstructs a query-only PSD from a release. The resulting
// tree answers Query/QueryWithStats/LeafRegions exactly as the original
// did; TrueAnswer is unavailable (the release carries no exact counts) and
// returns NaN-free zeros.
func OpenRelease(rel *Release) (*PSD, error) {
	// Validate before NewComplete: the checks are allocation-free, so a
	// malformed artifact (e.g. a huge declared height with a tiny rects
	// array) is rejected before the arena is ever sized.
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	ar, err := tree.NewComplete(rel.Fanout, rel.Height)
	if err != nil {
		return nil, err
	}
	for i := range ar.Nodes {
		ar.Nodes[i].Rect = unflattenRect(rel.Rects[i])
		if c := rel.Counts[i]; c != nil {
			ar.Nodes[i].Est = *c
			ar.Nodes[i].Published = true
		}
	}
	effLeaves := ar.NumLeaves()
	for _, i := range rel.Pruned {
		ar.Nodes[i].Pruned = true
		// Each pruned depth-d root collapses its 4^(h-d) leaves into one
		// region; track the loss so LeafRegions can pre-size exactly.
		if d := ar.Depth(i); d < rel.Height {
			effLeaves -= 1<<(2*(rel.Height-d)) - 1
		}
	}
	if effLeaves < 1 {
		effLeaves = 1
	}
	kind, err := parseKind(rel.Kind)
	if err != nil {
		return nil, err
	}
	return &PSD{
		kind:    kind,
		arena:   ar,
		domain:  unflattenRect(rel.Domain),
		epsilon: rel.Epsilon,
		// Per-node Published flags carry which counts exist; a release of a
		// post-processed tree has counts everywhere, so queries behave
		// identically to the original either way.
		postProcessed: false,
		countEps:      make([]float64, rel.Height+1),
		structEps:     rel.Epsilon, // conservative: the whole spend
		effLeaves:     effLeaves,
	}, nil
}

func parseKind(s string) (Kind, error) {
	for _, k := range []Kind{Quadtree, KD, Hybrid, HilbertR, KDCell, KDNoisyMean, PrivTree} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown kind %q in release", s)
}

func flattenRect(r geom.Rect) [4]float64 {
	return [4]float64{r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y}
}

func unflattenRect(v [4]float64) geom.Rect {
	return geom.Rect{
		Lo: geom.Point{X: v[0], Y: v[1]},
		Hi: geom.Point{X: v[2], Y: v[3]},
	}
}
