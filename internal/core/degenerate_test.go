package core

import (
	"testing"

	"psd/internal/geom"
)

// degenerateQueries are the boundary-shaped rectangles that historically
// diverge between query engines if any comparison flips between < and <=:
// zero-width and zero-height slivers, point queries, and bounds lying
// exactly on node edges of the midpoint grid (the half-open convention
// makes an on-edge bound intersect exactly one side).
func degenerateQueries(dom geom.Rect) []geom.Rect {
	w, h := dom.Width(), dom.Height()
	at := func(fx0, fy0, fx1, fy1 float64) geom.Rect {
		return geom.Rect{
			Lo: geom.Point{X: dom.Lo.X + fx0*w, Y: dom.Lo.Y + fy0*h},
			Hi: geom.Point{X: dom.Lo.X + fx1*w, Y: dom.Lo.Y + fy1*h},
		}
	}
	return []geom.Rect{
		at(0.25, 0.1, 0.25, 0.9),     // zero width, interior
		at(0.1, 0.5, 0.9, 0.5),       // zero height, on the h=1 midpoint edge
		at(0.5, 0.5, 0.5, 0.5),       // point, on the root midpoint corner
		at(0.3, 0.7, 0.3, 0.7),       // point, interior
		at(0, 0, 0, 0),               // point, on the domain's lower corner
		at(1, 1, 1, 1),               // point, on the domain's upper corner (outside: half-open)
		at(0.25, 0.25, 0.75, 0.75),   // all four bounds on h=2 node edges
		at(0, 0.125, 1, 0.375),       // full-width band between h=3 edges
		at(0.5, 0, 0.5, 1),           // zero width along the root split line
		at(0.125, 0.125, 0.125, 0.5), // zero width starting on an h=3 corner
		at(-0.25, 0.5, 0, 0.75),      // zero overlap: upper bound on the domain's lower edge
		dom,                          // the domain itself (edges everywhere)
	}
}

// TestDegenerateRectsPinnedAcrossEngines pins degenerate query rectangles
// bit-identical across all three engines — the arena DFS (PSD.Query), the
// slab DFS (Slab.Query) and the node-major batch engine (CountBatch) — for
// every decomposition family, including pruned and partially published
// trees. Values AND traversal statistics must match; batch answers must
// also be independent of the surrounding batch.
func TestDegenerateRectsPinnedAcrossEngines(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 97)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
		s := p.Sealed()
		qs := degenerateQueries(dom)
		var batchWantSt QueryStats
		want := make([]float64, len(qs))
		for i, q := range qs {
			av, ast := p.QueryWithStats(q)
			sv, sst := s.QueryWithStats(q)
			if av != sv {
				t.Errorf("%v: %v: arena %v, slab %v", cfg.Kind, q, av, sv)
			}
			if ast != sst {
				t.Errorf("%v: %v: arena stats %+v, slab %+v", cfg.Kind, q, ast, sst)
			}
			want[i] = av
			batchWantSt.NodesAdded += ast.NodesAdded
			batchWantSt.NodesVisited += ast.NodesVisited
			batchWantSt.PartialLeaves += ast.PartialLeaves
		}
		for _, workers := range []int{1, 0} {
			out := make([]float64, len(qs))
			st := s.CountBatchInto(out, qs, workers)
			for i := range qs {
				if out[i] != want[i] {
					t.Errorf("%v workers=%d: batch[%d] %v = %v, per-query %v",
						cfg.Kind, workers, i, qs[i], out[i], want[i])
				}
			}
			if st != batchWantSt {
				t.Errorf("%v workers=%d: batch stats %+v, per-query sum %+v",
					cfg.Kind, workers, st, batchWantSt)
			}
		}
		// Mixed into a larger batch of ordinary rects, the degenerate
		// answers must not change (the Morton clustering and leaf-parent
		// fusion paths see them next to dense work).
		mixed := append(append([]geom.Rect{}, qs...), slabTestQueries(dom)...)
		out := make([]float64, len(mixed))
		s.CountBatchInto(out, mixed, 0)
		for i := range qs {
			if out[i] != want[i] {
				t.Errorf("%v: mixed batch[%d] %v = %v, want %v", cfg.Kind, i, qs[i], out[i], want[i])
			}
		}
	}
}
