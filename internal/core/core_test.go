package core

import (
	"math"
	"testing"

	"psd/internal/budget"
	"psd/internal/dp"
	"psd/internal/geom"
	"psd/internal/median"
	"psd/internal/rng"
)

// gridPoints places one point in the middle of every cell of a g×g grid
// over dom — a perfectly uniform dataset with known counts everywhere.
func gridPoints(g int, dom geom.Rect) []geom.Point {
	pts := make([]geom.Point, 0, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			pts = append(pts, geom.Point{
				X: dom.Lo.X + (float64(i)+0.5)*dom.Width()/float64(g),
				Y: dom.Lo.Y + (float64(j)+0.5)*dom.Height()/float64(g),
			})
		}
	}
	return pts
}

func randomPoints(n int, dom geom.Rect, seed int64) []geom.Point {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		// Clustered: half the mass in the lower-left 10% of the domain.
		if src.Bernoulli(0.5) {
			pts[i] = geom.Point{
				X: dom.Lo.X + src.Uniform()*dom.Width()*0.1,
				Y: dom.Lo.Y + src.Uniform()*dom.Height()*0.1,
			}
		} else {
			pts[i] = geom.Point{
				X: src.UniformIn(dom.Lo.X, dom.Hi.X),
				Y: src.UniformIn(dom.Lo.Y, dom.Hi.Y),
			}
		}
	}
	return pts
}

func TestConfigValidation(t *testing.T) {
	dom := geom.NewRect(0, 0, 1, 1)
	pts := gridPoints(4, dom)
	cases := []Config{
		{Height: -1, Epsilon: 1},
		{Height: 20, Epsilon: 1},
		{Height: 3, Epsilon: 0},
		{Height: 3, Epsilon: math.Inf(1)},
		{Height: 3, Epsilon: 1, CountFraction: 1.5},
		{Height: 3, Epsilon: 1, Kind: Hybrid, SwitchLevel: 9},
		{Height: 3, Epsilon: 1, CellSize: -1},
	}
	for i, cfg := range cases {
		if _, err := Build(pts, dom, cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
	if _, err := Build(pts, geom.Rect{}, Config{Height: 2, Epsilon: 1}); err == nil {
		t.Error("empty domain should error")
	}
}

func TestQuadtreeExactWithZeroNoise(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	pts := gridPoints(16, dom) // 256 points, one per unit cell
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 4, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Arena().CheckConsistent(true); err != nil {
		t.Fatal(err)
	}
	if got := p.Arena().Root().True; got != 256 {
		t.Errorf("root count = %v, want 256", got)
	}
	// h=4 leaves are exactly the unit cells: one point each.
	for k := 0; k < p.Arena().NumLeaves(); k++ {
		if c := p.Arena().Nodes[p.Arena().LeafIndex(k)].True; c != 1 {
			t.Fatalf("leaf %d count = %v, want 1", k, c)
		}
	}
	// Cell-aligned queries are exact.
	for _, q := range []geom.Rect{
		geom.NewRect(0, 0, 8, 8),
		geom.NewRect(4, 4, 12, 12),
		geom.NewRect(0, 0, 16, 16),
		geom.NewRect(15, 15, 16, 16),
	} {
		want := float64(geom.CountIn(pts, q))
		if got := p.Query(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("query %v = %v, want %v", q, got, want)
		}
	}
	// Unaligned queries are exact here too: uniform data matches the
	// uniformity assumption.
	q := geom.NewRect(0.5, 0.5, 10.5, 3.25)
	want := p.TrueAnswer(q)
	if got := p.Query(q); math.Abs(got-want) > 1e-9 {
		t.Errorf("unaligned query = %v, want %v", got, want)
	}
}

// Figure 1 / Section 4.1: the canonical method answers a query covering two
// whole quadrants with exactly those two node counts, and mixes levels when
// the query extends further.
func TestCanonicalDecompositionNodeCounts(t *testing.T) {
	dom := geom.NewRect(0, 0, 4, 4)
	pts := gridPoints(4, dom)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 2, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Left half = SW + NW quadrants: 2 node adds.
	ans, st := p.QueryWithStats(geom.NewRect(0, 0, 2, 4))
	if st.NodesAdded != 2 {
		t.Errorf("left half: NodesAdded = %d, want 2", st.NodesAdded)
	}
	if math.Abs(ans-8) > 1e-9 {
		t.Errorf("left half = %v, want 8", ans)
	}
	// [0,3)x[0,4): 2 quadrants + 4 unit leaves.
	ans, st = p.QueryWithStats(geom.NewRect(0, 0, 3, 4))
	if st.NodesAdded != 6 {
		t.Errorf("three-quarters: NodesAdded = %d, want 6", st.NodesAdded)
	}
	if math.Abs(ans-12) > 1e-9 {
		t.Errorf("three-quarters = %v, want 12", ans)
	}
	if st.PartialLeaves != 0 {
		t.Errorf("aligned query used %d partial leaves", st.PartialLeaves)
	}
	// An unaligned query uses the uniformity assumption on its boundary.
	_, st = p.QueryWithStats(geom.NewRect(0.5, 0.5, 3.5, 3.5))
	if st.PartialLeaves == 0 {
		t.Error("unaligned query should touch partial leaves")
	}
}

// Lemma 2(i): the number of level-i node counts the canonical method adds
// is at most 8·2^(h-i) for any query on a quadtree.
func TestLemma2QuadtreeBound(t *testing.T) {
	dom := geom.NewRect(0, 0, 1, 1)
	pts := gridPoints(32, dom)
	const h = 4
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: h, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		x1, x2 := src.Uniform(), src.Uniform()
		y1, y2 := src.Uniform(), src.Uniform()
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		q := geom.NewRect(x1, y1, x2, y2)
		perLevel := make([]int, h+1)
		countMaximal(p, 0, q, perLevel)
		total := 0
		for i, n := range perLevel {
			bound := int(budget.QuadtreeNodesAtLevel(h, i))
			if n > bound {
				t.Fatalf("query %v: level %d adds %d nodes > bound %d", q, i, n, bound)
			}
			total += n
		}
		if lim := int(8 * (math.Pow(2, h+1) - 1)); total > lim {
			t.Fatalf("query %v: n(Q) = %d > %d", q, total, lim)
		}
	}
}

// countMaximal counts, per level, nodes that are maximally contained in q
// (including partially-intersected leaves, as in the error analysis).
func countMaximal(p *PSD, idx int, q geom.Rect, perLevel []int) {
	n := &p.arena.Nodes[idx]
	if !n.Rect.Intersects(q) {
		return
	}
	level := p.arena.Level(idx)
	if q.ContainsRect(n.Rect) || p.arena.IsLeaf(idx) {
		perLevel[level]++
		return
	}
	cs := p.arena.ChildStart(idx)
	for j := 0; j < 4; j++ {
		countMaximal(p, cs+j, q, perLevel)
	}
}

func TestKDExactMediansBalanced(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(4096, dom, 1)
	p, err := Build(pts, dom, Config{Kind: KD, Height: 3, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Arena().CheckConsistent(false); err != nil {
		t.Fatal(err)
	}
	// Exact medians divide each node's points into four near-equal parts.
	ar := p.Arena()
	for d := 0; d < ar.Height(); d++ {
		lo, hi := ar.DepthRange(d)
		for i := lo; i < hi; i++ {
			parent := ar.Nodes[i].True
			if parent < 4 {
				continue
			}
			cs := ar.ChildStart(i)
			for j := 0; j < 4; j++ {
				c := ar.Nodes[cs+j].True
				if c < parent/4-2 || c > parent/4+2 {
					t.Fatalf("depth %d node %d: child count %v of parent %v not balanced",
						d, i, c, parent)
				}
			}
		}
	}
}

func TestKDPrivateBuild(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(8192, dom, 2)
	cfg := Config{
		Kind: KD, Height: 4, Epsilon: 1.0, Seed: 7,
		PostProcess: true,
	}
	p, err := Build(pts, dom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Arena().CheckConsistent(false); err != nil {
		t.Fatal(err)
	}
	// Budget accounting: 0.3ε structure + 0.7ε counts = ε.
	if got := p.PrivacyCost(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 1.0", got)
	}
	if got := p.StructureCost(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("StructureCost = %v, want 0.3", got)
	}
	// 2 median calls per internal node (x + 2 y's across the fanout-4
	// split is 3 calls per node, but per path it is 2 levels; the stat
	// counts calls: (4^4-1)/3 internal nodes × 3 calls).
	internal := (p.Len() - p.Arena().NumLeaves())
	if p.Stats().MedianCalls != 3*internal {
		t.Errorf("MedianCalls = %d, want %d", p.Stats().MedianCalls, 3*internal)
	}
	// The full-domain query returns roughly the total count.
	got := p.Query(dom)
	if math.Abs(got-8192) > 2000 {
		t.Errorf("full-domain query = %v, want ≈ 8192", got)
	}
}

func TestHybridSwitchesToMidpoints(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(2048, dom, 3)
	p, err := Build(pts, dom, Config{
		Kind: Hybrid, Height: 4, Epsilon: 1.0, SwitchLevel: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar := p.Arena()
	// Below the switch level every split is a midpoint: children of any
	// depth >= 2 node are its exact quadrants (up to ordering).
	for d := 2; d < ar.Height(); d++ {
		lo, hi := ar.DepthRange(d)
		for i := lo; i < hi; i++ {
			r := ar.Nodes[i].Rect
			if r.Empty() {
				continue
			}
			c := r.Center()
			cs := ar.ChildStart(i)
			for j := 0; j < 4; j++ {
				cr := ar.Nodes[cs+j].Rect
				// Every child corner coordinate is one of {lo, center, hi}.
				okX := cr.Lo.X == r.Lo.X || cr.Lo.X == c.X
				okY := cr.Lo.Y == r.Lo.Y || cr.Lo.Y == c.Y
				if !okX || !okY {
					t.Fatalf("depth %d node %d child %d: rect %v is not a quadrant of %v",
						d, i, j, cr, r)
				}
			}
		}
	}
	// Structure cost only covers the 2 data-dependent levels.
	if math.Abs(p.StructureCost()-0.3) > 1e-9 {
		t.Errorf("StructureCost = %v, want 0.3", p.StructureCost())
	}
}

func TestHilbertRStructure(t *testing.T) {
	dom := geom.NewRect(0, 0, 32, 32)
	pts := randomPoints(2048, dom, 4)
	p, err := Build(pts, dom, Config{
		Kind: HilbertR, Height: 3, NonPrivate: true, HilbertOrder: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar := p.Arena()
	if got := ar.Root().True; got != 2048 {
		t.Errorf("root count = %v, want 2048", got)
	}
	// Counts aggregate exactly (Hilbert ranges partition the data).
	for d := 0; d < ar.Height(); d++ {
		lo, hi := ar.DepthRange(d)
		for i := lo; i < hi; i++ {
			var sum float64
			cs := ar.ChildStart(i)
			for j := 0; j < 4; j++ {
				sum += ar.Nodes[cs+j].True
			}
			if sum != ar.Nodes[i].True {
				t.Fatalf("node %d: children sum %v != %v", i, sum, ar.Nodes[i].True)
			}
		}
	}
	// Child bounding boxes nest inside the parent's.
	for i := 1; i < ar.Len(); i++ {
		r := ar.Nodes[i].Rect
		pr := ar.Nodes[ar.Parent(i)].Rect
		if r.Area() > 0 && !pr.ContainsRect(r) {
			t.Fatalf("node %d bbox %v escapes parent %v", i, r, pr)
		}
	}
	// Full-domain query sees everything exactly (root bbox ⊆ query).
	if got := p.Query(geom.NewRect(-1, -1, 33, 33)); math.Abs(got-2048) > 1e-6 {
		t.Errorf("full query = %v, want 2048", got)
	}
}

func TestKDCellBuild(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(8192, dom, 5)
	p, err := Build(pts, dom, Config{
		Kind: KDCell, Height: 3, Epsilon: 1.0, Seed: 13, CellSize: 1,
		PostProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Arena().CheckConsistent(false); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.PrivacyCost()-1.0) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 1.0", p.PrivacyCost())
	}
	// The grid is one release: structure cost is the full 0.3ε regardless
	// of how many medians were read off it.
	if math.Abs(p.StructureCost()-0.3) > 1e-9 {
		t.Errorf("StructureCost = %v, want 0.3", p.StructureCost())
	}
	got := p.Query(geom.NewRect(0, 0, 50, 100))
	want := p.TrueAnswer(geom.NewRect(0, 0, 50, 100))
	if math.Abs(got-want) > float64(len(pts))/4 {
		t.Errorf("half-domain query = %v, want ≈ %v", got, want)
	}
}

func TestKDNoisyMeanUsesNM(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(4096, dom, 6)
	p, err := Build(pts, dom, Config{
		Kind: KDNoisyMean, Height: 3, Epsilon: 1.0, Seed: 17,
		// Median deliberately set to EM: KDNoisyMean must override it.
		Median: &median.EM{Src: rng.New(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != KDNoisyMean {
		t.Errorf("Kind = %v", p.Kind())
	}
	if math.Abs(p.PrivacyCost()-1.0) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 1.0", p.PrivacyCost())
	}
}

func TestTrueMediansBaseline(t *testing.T) {
	// kd-true: exact medians, noisy counts, full ε to counts.
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(4096, dom, 7)
	p, err := Build(pts, dom, Config{
		Kind: KD, Height: 3, Epsilon: 1.0, TrueMedians: true, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.StructureCost() != 0 {
		t.Errorf("kd-true StructureCost = %v, want 0", p.StructureCost())
	}
	if math.Abs(p.PrivacyCost()-1.0) > 1e-9 {
		t.Errorf("PrivacyCost = %v, want 1.0", p.PrivacyCost())
	}
	// Exact medians balance children like the non-private tree.
	ar := p.Arena()
	root := ar.Nodes[0].True
	cs := ar.ChildStart(0)
	for j := 0; j < 4; j++ {
		c := ar.Nodes[cs+j].True
		if c < root/4-2 || c > root/4+2 {
			t.Fatalf("kd-true child %d count %v unbalanced (root %v)", j, c, root)
		}
	}
}

func TestPruning(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	pts := gridPoints(8, dom) // 64 points
	p, err := Build(pts, dom, Config{
		Kind: Quadtree, Height: 3, Epsilon: 1.0, Seed: 23,
		PostProcess: true, PruneThreshold: 1e9, // prune everything
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().PrunedSubtrees == 0 {
		t.Fatal("nothing pruned at an enormous threshold")
	}
	// The root itself is pruned: queries answer from the root alone.
	_, st := p.QueryWithStats(geom.NewRect(0, 0, 8, 16))
	if st.NodesAdded != 1 {
		t.Errorf("NodesAdded = %d, want 1 (root only)", st.NodesAdded)
	}
	// LeafRegions collapses to the single pruned root.
	rects, counts := p.LeafRegions()
	if len(rects) != 1 || len(counts) != 1 {
		t.Errorf("LeafRegions = %d regions, want 1", len(rects))
	}

	// No pruning at threshold 0.
	p2, err := Build(pts, dom, Config{
		Kind: Quadtree, Height: 3, Epsilon: 1.0, Seed: 23, PostProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Stats().PrunedSubtrees != 0 {
		t.Error("threshold 0 should disable pruning")
	}
	rects, _ = p2.LeafRegions()
	if len(rects) != p2.Arena().NumLeaves() {
		t.Errorf("unpruned LeafRegions = %d, want %d", len(rects), p2.Arena().NumLeaves())
	}
}

func TestLeafOnlyStrategyWithoutPostProcessing(t *testing.T) {
	// All budget at the leaves, no OLS: internal nodes publish nothing and
	// queries must descend to leaf counts (Section 4.2's "other budget
	// strategies" / the [12] configuration).
	dom := geom.NewRect(0, 0, 16, 16)
	pts := gridPoints(16, dom)
	p, err := Build(pts, dom, Config{
		Kind: Quadtree, Height: 2, Epsilon: 5.0, Seed: 29,
		Strategy: budget.LeafOnly{},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(0, 0, 8, 8) // exactly one depth-1 quadrant
	ans, st := p.QueryWithStats(q)
	// The quadrant node is unpublished: the answer must come from its 4
	// leaf children.
	if st.NodesAdded != 4 {
		t.Errorf("NodesAdded = %d, want 4 leaves", st.NodesAdded)
	}
	if math.Abs(ans-64) > 30 {
		t.Errorf("quadrant query = %v, want ≈ 64", ans)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(2048, dom, 8)
	build := func() *PSD {
		p, err := Build(pts, dom, Config{
			Kind: KD, Height: 3, Epsilon: 0.5, Seed: 31, PostProcess: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(), build()
	q := geom.NewRect(10, 10, 60, 40)
	if a.Query(q) != b.Query(q) {
		t.Error("same seed should produce identical trees")
	}
	for i := range a.Arena().Nodes {
		if a.Arena().Nodes[i].Noisy != b.Arena().Nodes[i].Noisy {
			t.Fatal("noisy counts differ across identical builds")
		}
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	pts := randomPoints(500, dom, 9)
	orig := make([]geom.Point, len(pts))
	copy(orig, pts)
	if _, err := Build(pts, dom, Config{Kind: KD, Height: 2, Epsilon: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i] != orig[i] {
			t.Fatal("Build reordered the caller's point slice")
		}
	}
}

func TestOutOfDomainPointsAreClamped(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	pts := []geom.Point{{X: -5, Y: 3}, {X: 20, Y: 20}, {X: 5, Y: 5}}
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 1, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Arena().Root().True; got != 3 {
		t.Errorf("root count = %v, want 3 (clamped strays included)", got)
	}
}

// Statistical: OLS post-processing and geometric budgets each reduce query
// error versus the uniform baseline (the Figure 3 effect, in miniature).
func TestOptimizationsReduceError(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := gridPoints(64, dom) // 4096 points
	queries := []geom.Rect{
		geom.NewRect(3, 3, 17, 13),
		geom.NewRect(0, 0, 33, 33),
		geom.NewRect(20, 5, 60, 12),
		geom.NewRect(7, 7, 9, 9),
	}
	meanAbsErr := func(strategy budget.Strategy, post bool) float64 {
		var sum float64
		const trials = 30
		for s := int64(0); s < trials; s++ {
			p, err := Build(pts, dom, Config{
				Kind: Quadtree, Height: 5, Epsilon: 0.2, Seed: 1000 + s,
				Strategy: strategy, PostProcess: post,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				sum += math.Abs(p.Query(q) - p.TrueAnswer(q))
			}
		}
		return sum / float64(trials*len(queries))
	}
	baseline := meanAbsErr(budget.Uniform{}, false)
	geo := meanAbsErr(budget.Geometric{}, false)
	opt := meanAbsErr(budget.Geometric{}, true)
	if geo >= baseline {
		t.Errorf("geometric (%v) should beat uniform baseline (%v)", geo, baseline)
	}
	if opt >= geo {
		t.Errorf("geometric+OLS (%v) should beat geometric alone (%v)", opt, geo)
	}
}

// Noise variance at the root should match the analytic Laplace variance for
// a baseline quadtree (sanity link between tree release and dp mechanism).
func TestRootNoiseVariance(t *testing.T) {
	dom := geom.NewRect(0, 0, 8, 8)
	pts := gridPoints(8, dom)
	const h = 2
	const eps = 0.5
	levels, _ := budget.Uniform{}.Levels(h, eps)
	rootEps := levels[h]
	var sumSq float64
	const trials = 2000
	for s := int64(0); s < trials; s++ {
		p, err := Build(pts, dom, Config{
			Kind: Quadtree, Height: h, Epsilon: eps, Seed: s,
			Strategy: budget.Uniform{},
		})
		if err != nil {
			t.Fatal(err)
		}
		d := p.Arena().Root().Noisy - p.Arena().Root().True
		sumSq += d * d
	}
	got := sumSq / trials
	want := dp.LaplaceVariance(1, rootEps)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("root noise variance = %v, want ≈ %v", got, want)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Quadtree: "quadtree", KD: "kd", Hybrid: "kd-hybrid",
		HilbertR: "hilbert-r", KDCell: "kd-cell", KDNoisyMean: "kd-noisymean",
		PrivTree: "privtree",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
	if Quadtree.DataDependent() {
		t.Error("quadtree is data-independent")
	}
	if !KD.DataDependent() {
		t.Error("kd is data-dependent")
	}
}
