package core

import (
	"context"
	"sync/atomic"

	"psd/internal/geom"
)

// Request-deadline support for the serving tier. Queries over a released
// decomposition are pure post-processing, but they are not free: a large
// batch over a deep slab walks millions of node records, and a serving
// replica that cannot abandon a request past its deadline ties up a core
// that a within-deadline request could have used. The traversal engines
// therefore accept a context through the *Ctx entry points and poll it at
// bounded checkpoints: every cancelCheckInterval node visits, the walk
// checks the context's done channel and unwinds if it fired.
//
// The plain (context-free) entry points pass a nil token and pay one
// predictable nil-check branch per checkpoint site — nothing else changes
// on the hot path, and answers remain bit-identical.

// cancelCheckInterval is the number of node visits between deadline polls.
// Polling is a channel select (~tens of ns); at this interval the poll cost
// is noise even on the densest traversals, while the cancellation latency
// stays far below any realistic request deadline (4096 visits is ~a few µs
// of traversal).
const cancelCheckInterval = 4096

// cancelToken carries one goroutine's cancellation state through a
// traversal. It is single-goroutine by design (remain is unsynchronized);
// the sharded batch path gives every worker its own token over the shared
// done channel, and workers report through the shared fired flag.
type cancelToken struct {
	done <-chan struct{}
	// remain counts visits until the next poll.
	remain int
	// hit latches once this token observed cancellation.
	hit bool
	// fired, when non-nil, is the cross-worker latch: any worker observing
	// cancellation sets it, and the call as a whole reports the error.
	fired *atomic.Bool
}

// newCancelToken returns a token polling ctx, or nil when ctx can never be
// cancelled (context.Background and friends) so the traversal runs the
// plain path.
func newCancelToken(ctx context.Context, fired *atomic.Bool) *cancelToken {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return &cancelToken{done: done, remain: cancelCheckInterval, fired: fired}
}

// tick consumes n traversal visits and reports whether the traversal must
// abandon its work. The fast path is a subtraction and a branch; the done
// channel is polled only once the interval is spent.
func (c *cancelToken) tick(n int) bool {
	if c == nil {
		return false
	}
	if c.hit {
		return true
	}
	c.remain -= n
	if c.remain > 0 {
		return false
	}
	return c.poll()
}

// poll is the slow path of tick: reset the interval and check the channel.
func (c *cancelToken) poll() bool {
	c.remain = cancelCheckInterval
	select {
	case <-c.done:
		c.hit = true
		if c.fired != nil {
			c.fired.Store(true)
		}
		return true
	default:
		return false
	}
}

// QueryCtx is Query honoring ctx: the traversal polls for cancellation at
// bounded checkpoints and returns ctx.Err() if the deadline fires mid-walk.
// A partial sum is never returned. With a never-cancellable context this is
// exactly Query.
func (s *Slab) QueryCtx(ctx context.Context, q geom.Rect) (float64, error) {
	s.ensureOpen()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	tok := newCancelToken(ctx, nil)
	var st QueryStats
	stack := s.getStack()
	sum := s.queryIter(q, stack, &st, tok)
	s.putStack(stack)
	if tok != nil && tok.hit {
		return 0, ctx.Err()
	}
	return sum, nil
}

// CountBatchIntoCtx is CountBatchInto honoring ctx: every traversal worker
// polls for cancellation at bounded checkpoints, and the call returns
// ctx.Err() — with out undefined — if any worker observed the deadline
// firing mid-traversal. A batch whose traversal ran to completion is
// returned even if the deadline expires on the way out: the answers are
// complete and valid.
func (s *Slab) CountBatchIntoCtx(ctx context.Context, out []float64, qs []geom.Rect, workers int) (QueryStats, error) {
	s.ensureOpen()
	if err := ctx.Err(); err != nil {
		return QueryStats{}, err
	}
	done := ctx.Done()
	if done == nil {
		return s.CountBatchInto(out, qs, workers), nil
	}
	var fired atomic.Bool
	st := s.countBatchInto(out, qs, workers, done, &fired)
	if fired.Load() {
		return QueryStats{}, ctx.Err()
	}
	return st, nil
}
