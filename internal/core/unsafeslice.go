package core

import (
	"fmt"
	"unsafe"
)

// This file is the repo's single unsafe seam: the two casts that let a
// read-only mmap'd v3 artifact serve as the slab's columns without a decode
// copy. Both casts are pure reinterpretations — no lifetime is extended and
// no writes happen through them (every Slab mutation path builds heap
// columns) — and both check the preconditions the reinterpretation relies
// on: exact length and 8-byte alignment. The on-disk records are
// little-endian float64s, so aliasing additionally requires a little-endian
// host (hostLittleEndian); big-endian hosts take the streaming decoder.
//
// Alignment holds by construction: mmap(2) returns page-aligned memory and
// every v3 section offset is a multiple of 64. The checks stay anyway —
// they are cheap, run once per open, and turn a layout regression into a
// panic at open instead of corrupt reads later.

// castRecords reinterprets b as n packed 40-byte node records.
func castRecords(b []byte, n int) [][5]float64 {
	if n == 0 {
		return nil
	}
	if len(b) != n*v3RecordSize {
		panic(fmt.Sprintf("core: castRecords: %d bytes for %d records", len(b), n))
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		panic("core: castRecords: misaligned mapping")
	}
	return unsafe.Slice((*[5]float64)(unsafe.Pointer(&b[0])), n)
}

// castWords reinterprets b as bitset words.
func castWords(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if len(b)%8 != 0 {
		panic(fmt.Sprintf("core: castWords: %d bytes is not whole words", len(b)))
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		panic("core: castWords: misaligned mapping")
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// hostLittleEndian reports whether the host's native float64/uint64 byte
// order matches the on-disk little-endian encoding.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
