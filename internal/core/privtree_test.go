package core

import (
	"bytes"
	"math"
	"testing"

	"psd/internal/dp"
	"psd/internal/geom"
)

// TestPrivTreeAdaptiveShape pins the defining behavior of the adaptive
// decomposition on skewed data: the recursion goes deep where the mass is
// and stops early where it is not, publication is exactly the adaptive leaf
// partition, and every structural invariant of the partial-publication
// machinery holds.
func TestPrivTreeAdaptiveShape(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(8192, dom, 71) // half the mass in the lower-left 10%
	p, err := Build(pts, dom, Config{Kind: PrivTree, Height: 5, Epsilon: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != PrivTree {
		t.Fatalf("kind = %v", p.Kind())
	}
	ar := p.Arena()
	if p.Stats().PrunedSubtrees == 0 {
		t.Fatal("adaptive build on skewed data stopped nowhere (no pruned subtree roots)")
	}
	if p.Stats().PrunedSubtrees >= ar.Len() {
		t.Fatal("everything pruned")
	}

	// Published set == adaptive leaves: terminal nodes below no pruned
	// ancestor. Interior and unvisited nodes release nothing.
	published := 0
	for i := range ar.Nodes {
		n := &ar.Nodes[i]
		terminal := ar.IsLeaf(i) || n.Pruned
		switch {
		case n.Published && !terminal:
			t.Fatalf("interior node %d published", i)
		case n.Published && prunedAncestor(ar, i):
			t.Fatalf("node %d published under a pruned ancestor", i)
		case terminal && !prunedAncestor(ar, i) && !n.Published:
			t.Fatalf("adaptive leaf %d not published", i)
		}
		if n.Published {
			published++
		}
	}
	rects, counts := p.LeafRegions()
	if published != len(rects) || published != p.effLeaves {
		t.Fatalf("published %d, leaf regions %d, effLeaves %d", published, len(rects), p.effLeaves)
	}
	// The adaptive leaves tile the domain.
	var area float64
	for _, r := range rects {
		area += r.Area()
	}
	if math.Abs(area-dom.Area()) > 1e-6*dom.Area() {
		t.Fatalf("leaf regions cover %v of %v", area, dom.Area())
	}
	// The domain query is the full leaf release sum and lands near the truth.
	var sum float64
	for _, c := range counts {
		sum += c
	}
	got := p.Query(dom)
	if math.Abs(got-sum) > 1e-6*(1+math.Abs(sum)) {
		t.Fatalf("Query(domain) = %v, leaf sum %v", got, sum)
	}
	if math.Abs(got-8192) > 2000 {
		t.Fatalf("Query(domain) = %v, want near 8192", got)
	}

	// Adaptivity: the dense lower-left corner splits strictly deeper than
	// the sparse upper-right corner.
	depthAt := func(x, y float64) int {
		best := 0
		for i, n := range ar.Nodes {
			if n.Published && x >= n.Rect.Lo.X && x < n.Rect.Hi.X && y >= n.Rect.Lo.Y && y < n.Rect.Hi.Y {
				best = ar.Depth(i)
			}
		}
		return best
	}
	dense, sparse := depthAt(1, 1), depthAt(63, 63)
	if dense <= sparse {
		t.Fatalf("dense-corner leaf depth %d, sparse-corner %d: decomposition did not adapt", dense, sparse)
	}
}

// TestPrivTreePrivacyAccounting pins the budget bookkeeping: the calibrated
// build consumes exactly Epsilon (structure share + one count release), and
// an explicit Lambda is accounted at the ε that scale actually consumes.
func TestPrivTreePrivacyAccounting(t *testing.T) {
	dom := geom.NewRect(0, 0, 32, 32)
	pts := randomPoints(1024, dom, 3)
	p, err := Build(pts, dom, Config{Kind: PrivTree, Height: 3, Epsilon: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Default count fraction 0.7: counts get 0.56, structure 0.24.
	if got, want := p.StructureCost(), 0.3*0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("structure cost %v, want %v", got, want)
	}
	if got := p.PrivacyCost(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("privacy cost %v, want 0.8", got)
	}
	levels := p.CountBudgets()
	if math.Abs(levels[0]-0.7*0.8) > 1e-12 {
		t.Errorf("leaf-slot count budget %v, want %v", levels[0], 0.7*0.8)
	}
	for d, e := range levels[1:] {
		if e != 0 {
			t.Errorf("level %d has budget %v, want 0 (one release covers the partition)", d+1, e)
		}
	}

	// Explicit Lambda: structure spend follows the scale, honestly.
	lam := 10.0
	p2, err := Build(pts, dom, Config{Kind: PrivTree, Height: 3, Epsilon: 0.8, Seed: 1, Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p2.StructureCost(), dp.PrivTreeEpsilon(4, lam); math.Abs(got-want) > 1e-12 {
		t.Errorf("explicit-lambda structure cost %v, want %v", got, want)
	}
}

// TestPrivTreeTheta pins the threshold knob: raising θ stops the recursion
// earlier, so the release has no more regions than at θ = 0.
func TestPrivTreeTheta(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(4096, dom, 9)
	regions := func(theta float64) int {
		p, err := Build(pts, dom, Config{Kind: PrivTree, Height: 4, Epsilon: 1, Seed: 11, Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		r, _ := p.LeafRegions()
		return len(r)
	}
	lo, hi := regions(0), regions(256)
	if hi > lo {
		t.Fatalf("theta=256 released %d regions, theta=0 %d: threshold did not coarsen the tree", hi, lo)
	}
	if hi == 1<<(2*4) { // a fully split height-4 tree has 4^4 leaf regions
		t.Fatalf("theta=256 still fully split (%d regions)", hi)
	}
}

// TestPrivTreeRelease round-trips the artifact through both formats and
// both read paths: byte-identical re-serialization, and bit-identical
// answers from the reopened arena, the JSON slab and the binary slab.
func TestPrivTreeRelease(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 21)
	p, err := Build(pts, dom, Config{Kind: PrivTree, Height: 4, Epsilon: 0.5, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rel := p.Release()
	if rel.Kind != "privtree" {
		t.Fatalf("release kind %q", rel.Kind)
	}
	var js bytes.Buffer
	if _, err := rel.WriteTo(&js); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadRelease(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenRelease(reread)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Kind() != PrivTree {
		t.Fatalf("reopened kind %v", reopened.Kind())
	}
	slab, err := reread.Slab()
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if _, err := rel.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	binSlab, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range slabTestQueries(dom) {
		want := p.Query(q)
		if got := reopened.Query(q); got != want {
			t.Errorf("reopened Query(%v) = %v, want %v", q, got, want)
		}
		if got := slab.Query(q); got != want {
			t.Errorf("json slab Query(%v) = %v, want %v", q, got, want)
		}
		if got := binSlab.Query(q); got != want {
			t.Errorf("binary slab Query(%v) = %v, want %v", q, got, want)
		}
	}
	var again bytes.Buffer
	if _, err := reopened.Release().WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), js.Bytes()) {
		t.Error("reopened release does not re-serialize identically")
	}
	var binAgain bytes.Buffer
	if _, err := binSlab.WriteBinary(&binAgain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(binAgain.Bytes(), bin.Bytes()) {
		t.Error("binary release does not re-serialize identically")
	}
}

// TestPrivTreeValidation covers the configuration errors PrivTree adds.
func TestPrivTreeValidation(t *testing.T) {
	dom := geom.NewRect(0, 0, 1, 1)
	pts := gridPoints(4, dom)
	for i, cfg := range []Config{
		{Kind: PrivTree, Height: 3, Epsilon: 1, Lambda: -1},
		{Kind: PrivTree, Height: 3, Epsilon: 1, Lambda: math.NaN()},
		{Kind: PrivTree, Height: 3, Epsilon: 1, Theta: math.Inf(1)},
		{Kind: PrivTree, Height: 3, Epsilon: 1, PruneThreshold: 4},
		// ε entirely on counts leaves nothing to calibrate λ from.
		{Kind: PrivTree, Height: 3, Epsilon: 1, CountFraction: 1},
		{Kind: Quadtree, Height: 3, Epsilon: 1, Theta: 5},
		{Kind: KD, Height: 3, Epsilon: 1, Lambda: 2},
	} {
		if _, err := Build(pts, dom, cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
	// PostProcess is ignored, not an error (psd.Build sets it by default).
	p, err := Build(pts, dom, Config{Kind: PrivTree, Height: 2, Epsilon: 1, PostProcess: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.PostProcessed() {
		t.Error("privtree reported OLS post-processing")
	}
}
