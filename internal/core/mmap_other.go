//go:build !unix

package core

import (
	"errors"
	"os"
)

// Platforms without a (wired-up) mmap fall back to the streaming v3
// decoder: OpenSlabMmap fails fast with errMmapUnsupported and the public
// OpenSlabFile reads the same artifact through ReadBinary instead. The
// format is identical either way; only the open cost differs.
const mmapSupported = false

var errMmapUnsupported = errors.New("core: mmap is not supported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errMmapUnsupported
}

func munmapBytes(b []byte) error { return nil }
