package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"psd/internal/geom"
)

// nodeCountOf reads the node-count field of a format-v2 header (the seeds
// are all valid artifacts, so the field is trustworthy here).
func nodeCountOf(vb []byte) int {
	return int(binary.LittleEndian.Uint32(vb[48:]))
}

// FuzzReadRelease feeds arbitrary (and mutated-valid) bytes through the
// full untrusted-artifact paths the server uses — the JSON decoder and the
// format v2 and v3 binary decoders: parse, validate, open, query. Whatever the
// input, neither pipeline may panic, and anything that opens must answer
// with finite counts through both the arena and the slab read path.
func FuzzReadRelease(f *testing.F) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(512, dom, 31)
	for _, cfg := range []Config{
		{Kind: Quadtree, Height: 2, Epsilon: 1, Seed: 2, PostProcess: true},
		{Kind: Hybrid, Height: 3, Epsilon: 0.5, Seed: 3, PostProcess: true, PruneThreshold: 8},
		{Kind: HilbertR, Height: 2, Epsilon: 1, Seed: 4},
		{Kind: PrivTree, Height: 3, Epsilon: 1, Seed: 5},
	} {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := p.Release().WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		// A few systematic corruptions seed the interesting neighborhoods.
		for _, mut := range [][]byte{
			bytes.Replace(valid, []byte(`"version":1`), []byte(`"version":2`), 1),
			bytes.Replace(valid, []byte(`"height":`), []byte(`"height":9`), 1),
			bytes.Replace(valid, []byte(`quadtree`), []byte(`mystery`), 1),
			valid[:len(valid)/2],
			bytes.ToUpper(valid),
		} {
			f.Add(mut)
		}
		// The same artifact in format v2 seeds the binary decoder, with the
		// matching corruption classes: header fields, truncation, bit flips.
		var bin bytes.Buffer
		if _, err := p.Release().WriteBinary(&bin); err != nil {
			f.Fatal(err)
		}
		vb := bin.Bytes()
		f.Add(vb)
		for _, mut := range [][]byte{
			append([]byte{'P', 'S', 'D', '2', 9}, vb[5:]...),     // bad version
			append([]byte{'P', 'S', 'D', '2', 2, 77}, vb[6:]...), // bad kind
			vb[:len(vb)/2],
			vb[:binaryHeaderSize],
			append(append([]byte{}, vb[:40]...), bytes.Repeat([]byte{0xff}, len(vb)-40)...),
		} {
			f.Add(mut)
		}
		// Truncations at every section boundary: end of header, end of each
		// float64 column, end of the published bitset, one byte shy of the
		// full artifact (a torn pruned trailer).
		nodes := nodeCountOf(vb)
		for col := 1; col <= 5; col++ {
			if off := binaryHeaderSize + col*8*nodes; off <= len(vb) {
				f.Add(vb[:off])
			}
		}
		if off := binaryHeaderSize + 5*8*nodes + 8*((nodes+63)/64); off <= len(vb) {
			f.Add(vb[:off])
		}
		f.Add(vb[:len(vb)-1])
		// A valid artifact with a trailer appended: the decoder must read
		// one byte past its computed end and require io.EOF.
		f.Add(append(append([]byte{}, vb...), 0xAA))
		// Over-length claims: header fields inflated far past what the body
		// (or any tree) could carry — node count maxed, height past the
		// arena cap, pruned count past the node count.
		f.Add(corrupt(vb, 48, 0xff, 0xff, 0xff, 0xff))
		f.Add(corrupt(vb, 7, 13))
		f.Add(corrupt(vb, 7, 255))
		f.Add(corrupt(vb, 52, 0xff, 0xff, 0xff, 0x7f))

		// The same artifact in format v3 seeds the record-major decoder:
		// trailing garbage, truncations at every 64-aligned section boundary,
		// checksum and footer-magic damage, and flipped body bits.
		var b3 bytes.Buffer
		if _, err := p.Release().WriteBinaryV3(&b3); err != nil {
			f.Fatal(err)
		}
		v3 := b3.Bytes()
		lay := v3LayoutFor(nodes)
		f.Add(v3)
		f.Add(append(append([]byte{}, v3...), 0xAA))
		for _, cut := range []int64{v3HeaderSize, lay.recordsEnd, lay.usableOff + lay.bitsetLen,
			lay.prunedOff + lay.bitsetLen, lay.footerOff, int64(len(v3)) - 1} {
			f.Add(v3[:cut])
		}
		f.Add(corrupt(v3, 4, 9))                                    // bad version
		f.Add(corrupt(v3, 56, 1))                                   // non-zero reserved header
		f.Add(corrupt(v3, int(lay.recordsOff)+3, 0x40))             // record bit flip
		f.Add(corrupt(v3, int(lay.recordsEnd), 1))                  // non-zero pad
		f.Add(corrupt(v3, int(lay.footerOff), v3[lay.footerOff]^1)) // checksum damage
		f.Add(corrupt(v3, int(lay.footerOff)+8, 'X'))               // footer magic damage
	}
	f.Add([]byte(`{}`))
	// A bare over-claiming header with no body at all: the decoder must
	// reject it before any node-sized allocation.
	hostile := make([]byte, binaryHeaderSize)
	copy(hostile, "PSD2")
	hostile[4], hostile[6], hostile[7] = 2, 4, 12
	f.Add(hostile)
	f.Add([]byte(`{"version":1,"kind":"quadtree","fanout":4,"height":0,` +
		`"domain":[0,0,1,1],"rects":[[0,0,1,1]],"counts":[null]}`))
	f.Add([]byte("PSD2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Binary decode path: any input that decodes must be a sound slab.
		if slab, err := ReadBinary(bytes.NewReader(data)); err == nil {
			rects, counts := slab.LeafRegions()
			checkOpened(t, slab.Query(slab.Domain()), rects, counts)
			// Canonical encoding: decode(encode(decode(x))) is stable, in
			// both binary formats, whichever format x arrived in.
			var out bytes.Buffer
			if _, err := slab.WriteBinary(&out); err != nil {
				t.Fatalf("re-encoding a decoded binary release failed: %v", err)
			}
			if _, err := ReadBinary(bytes.NewReader(out.Bytes())); err != nil {
				t.Fatalf("re-encoded binary release does not decode: %v", err)
			}
			var out3 bytes.Buffer
			if _, err := slab.WriteBinaryV3(&out3); err != nil {
				t.Fatalf("re-encoding a decoded release as v3 failed: %v", err)
			}
			if _, err := ReadBinary(bytes.NewReader(out3.Bytes())); err != nil {
				t.Fatalf("re-encoded v3 release does not decode: %v", err)
			}
		}

		// JSON decode path, through both the arena and the slab.
		rel, err := ReadRelease(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as we didn't panic
		}
		p, err := OpenRelease(rel)
		if err != nil {
			t.Fatalf("ReadRelease validated but OpenRelease failed: %v", err)
		}
		rects, counts := p.LeafRegions()
		checkOpened(t, p.Query(p.Domain()), rects, counts)
		slab, err := rel.Slab()
		if err != nil {
			t.Fatalf("ReadRelease validated but Slab failed: %v", err)
		}
		if got, want := slab.Query(slab.Domain()), p.Query(p.Domain()); got != want {
			t.Fatalf("slab domain count %v, arena %v", got, want)
		}
	})
}

// checkOpened asserts the invariants every successfully opened artifact
// must satisfy regardless of format or read path.
func checkOpened(t *testing.T, domainCount float64, rects []geom.Rect, counts []float64) {
	t.Helper()
	if math.IsNaN(domainCount) || math.IsInf(domainCount, 0) {
		t.Fatalf("opened release answers non-finite domain count %v", domainCount)
	}
	if len(rects) != len(counts) {
		t.Fatalf("leaf regions: %d rects, %d counts", len(rects), len(counts))
	}
	for _, c := range counts {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("leaf region count %v not finite", c)
		}
	}
}

// FuzzCountBatch drives the node-major batch engine with arbitrary rect
// batches: whatever the batch, CountBatch must agree EXACTLY — answers and
// aggregate traversal statistics — with the sequential per-query loop, on
// both the arena and the slab read path, at several worker counts. Unlike
// FuzzCount, non-finite bounds are kept: the engine must treat them exactly
// as the per-query walk does (visit the root, answer 0).
func FuzzCountBatch(f *testing.F) {
	f.Add(0.0, 0.0, 64.0, 64.0, uint8(7), int64(1))
	f.Add(10.0, 20.0, 30.0, 40.0, uint8(40), int64(2))
	f.Add(-10.0, -10.0, 100.0, 100.0, uint8(3), int64(3))
	f.Add(1.5, 1.5, 1.5, 60.0, uint8(0), int64(4))
	f.Add(math.NaN(), 0.0, 64.0, 64.0, uint8(9), int64(5))
	f.Add(63.9, 0.1, math.Inf(1), 64.0, uint8(17), int64(6))
	// Degenerate rects: zero height, point queries (interior, on the root
	// midpoint corner, on the domain corners), and bounds exactly on node
	// edges of the midpoint grid.
	f.Add(8.0, 24.0, 56.0, 24.0, uint8(11), int64(7))
	f.Add(32.0, 32.0, 32.0, 32.0, uint8(5), int64(8))
	f.Add(13.0, 49.0, 13.0, 49.0, uint8(21), int64(9))
	f.Add(0.0, 0.0, 0.0, 0.0, uint8(2), int64(10))
	f.Add(64.0, 64.0, 64.0, 64.0, uint8(2), int64(11))
	f.Add(16.0, 16.0, 48.0, 48.0, uint8(13), int64(12))
	f.Add(32.0, 0.0, 32.0, 64.0, uint8(6), int64(13))

	f.Fuzz(func(t *testing.T, a, b, c, d float64, n uint8, seed int64) {
		// The seed rect plus n derived rects (shifted/scaled walks around
		// it) make a batch that mixes disjoint, contained, partial and
		// degenerate queries over the fixed trees.
		qs := make([]geom.Rect, 0, int(n)+1)
		qs = append(qs, geom.Rect{Lo: geom.Point{X: a, Y: b}, Hi: geom.Point{X: c, Y: d}})
		next := testRand(uint64(seed))
		for i := 0; i < int(n); i++ {
			x := next()*96 - 16
			y := next()*96 - 16
			w := next() * 48
			h := next() * 48
			qs = append(qs, geom.Rect{Lo: geom.Point{X: x, Y: y}, Hi: geom.Point{X: x + w, Y: y + h}})
		}

		for _, p := range fuzzTrees() {
			s := p.Sealed()
			want, wantSt := sumStats(s, qs)
			// The arena per-query loop must agree with the slab per-query
			// loop (already pinned, but it anchors this target's reference).
			for i, q := range qs {
				if av := p.Query(q); av != want[i] {
					t.Fatalf("arena Query(%v) = %v, slab %v", q, av, want[i])
				}
			}
			for _, workers := range []int{1, 3, 0} {
				out := make([]float64, len(qs))
				st := s.CountBatchInto(out, qs, workers)
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("workers=%d: CountBatch[%d](%v) = %v, per-query %v",
							workers, i, qs[i], out[i], want[i])
					}
				}
				if st != wantSt {
					t.Fatalf("workers=%d: batch stats %+v, per-query sum %+v", workers, st, wantSt)
				}
			}
		}
	})
}

// fuzzTrees builds the fixed post-processed trees FuzzCount checks
// against, once per process. Post-processing matters: the OLS estimates are
// consistent (each parent equals the sum of its children), which is what
// makes the leaf-sum and additivity identities below hold.
var fuzzTrees = sync.OnceValue(func() []*PSD {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(2048, dom, 33)
	var out []*PSD
	for _, cfg := range []Config{
		{Kind: Quadtree, Height: 3, Epsilon: 1, Seed: 5, PostProcess: true},
		{Kind: Hybrid, Height: 3, Epsilon: 0.5, Seed: 6, PostProcess: true, PruneThreshold: 16},
		// The adaptive kind: not post-processed, but its leaf-only release is
		// consistent by construction (every query decomposes over the
		// published adaptive-leaf partition), so the same identities hold.
		{Kind: PrivTree, Height: 3, Epsilon: 1, Seed: 7},
	} {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
})

// FuzzCount checks query-engine invariants on arbitrary rectangles: the
// canonical range query over a consistent tree must (a) be finite, (b)
// equal the leaf-region overlap sum, (c) answer the whole domain with the
// root estimate, and (d) be additive across a disjoint split of the query.
func FuzzCount(f *testing.F) {
	f.Add(0.0, 0.0, 64.0, 64.0)
	f.Add(10.0, 20.0, 30.0, 40.0)
	f.Add(-10.0, -10.0, 100.0, 100.0)
	f.Add(1.5, 1.5, 1.5, 60.0)
	f.Add(63.9, 0.1, 64.0, 64.0)
	// Degenerate rects: zero height, points (interior, root-midpoint corner,
	// domain corners), and bounds exactly on midpoint-grid node edges.
	f.Add(8.0, 24.0, 56.0, 24.0)
	f.Add(32.0, 32.0, 32.0, 32.0)
	f.Add(13.0, 49.0, 13.0, 49.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(64.0, 64.0, 64.0, 64.0)
	f.Add(16.0, 16.0, 48.0, 48.0)
	f.Add(32.0, 0.0, 32.0, 64.0)

	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("query rects are validated finite before reaching the engine")
			}
		}
		if c < a {
			a, c = c, a
		}
		if d < b {
			b, d = d, b
		}
		q := geom.Rect{Lo: geom.Point{X: a, Y: b}, Hi: geom.Point{X: c, Y: d}}
		for _, p := range fuzzTrees() {
			got := p.Query(q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Query(%v) = %v, not finite", q, got)
			}
			tol := 1e-6 * (1 + math.Abs(got))

			// (b) Leaf-region decomposition: summing every effective leaf's
			// estimate weighted by its overlap fraction is the flat-histogram
			// answer; on a consistent tree the hierarchical walk must agree.
			rects, counts := p.LeafRegions()
			var flat float64
			for i, r := range rects {
				flat += counts[i] * r.OverlapFraction(q)
			}
			if math.Abs(flat-got) > tol {
				t.Fatalf("Query(%v) = %v but leaf-region sum = %v", q, got, flat)
			}

			// (c) The whole domain is answered by the root estimate alone —
			// when the root released one (PrivTree publishes only adaptive
			// leaves, so its domain answer is the leaf sum checked in (b)).
			if p.Arena().Root().Published || p.PostProcessed() {
				if root := p.Query(p.Domain()); math.Abs(root-p.Arena().Root().Est) > 1e-6*(1+math.Abs(root)) {
					t.Fatalf("Query(domain) = %v, root estimate %v", root, p.Arena().Root().Est)
				}
			}

			// (d) Splitting q at an interior x coordinate partitions it
			// exactly (half-open boxes share no area), so the answers add.
			if q.Width() > 0 {
				mid := (q.Lo.X + q.Hi.X) / 2
				left, right := q.SplitX(mid)
				sum := p.Query(left) + p.Query(right)
				if math.Abs(sum-got) > tol {
					t.Fatalf("Query(%v) = %v but split sum = %v", q, got, sum)
				}
			}
		}
	})
}
