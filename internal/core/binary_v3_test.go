package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psd/internal/budget"
	"psd/internal/geom"
)

// v3Bytes serializes a built PSD's release in format v3.
func v3Bytes(t *testing.T, p *PSD) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := p.Release().WriteBinaryV3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteBinaryV3 reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// writeTempArtifact puts raw bytes on disk for the mmap open path.
func writeTempArtifact(t *testing.T, raw []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "release.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBinaryV3RoundTrip pins the canonical-encoding property for format v3
// across every family: decode(encode(release)) re-encodes byte-identically,
// answers exactly as the source tree, and converts to the v2 and JSON
// encodings identically to a direct serialization.
func TestBinaryV3RoundTrip(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 61)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw := v3Bytes(t, p)
		if len(raw)%v3Align != v3FooterSize {
			t.Errorf("%v: v3 artifact is %d bytes; sections are 64-aligned so size mod 64 must be the footer", cfg.Kind, len(raw))
		}
		slab, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%v: ReadBinary(v3): %v", cfg.Kind, err)
		}
		var again bytes.Buffer
		if _, err := slab.WriteBinaryV3(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again.Bytes()) {
			t.Errorf("%v: v3 round trip differs (%d vs %d bytes)", cfg.Kind, len(raw), again.Len())
		}
		for _, q := range slabTestQueries(dom) {
			if got, want := slab.Query(q), p.Query(q); got != want {
				t.Errorf("%v: v3 slab Query(%v) = %v, want %v", cfg.Kind, q, got, want)
			}
		}
		// The v2 and v3 encodings carry the same artifact: converting the
		// v3-decoded slab to v2 matches the direct v2 serialization.
		direct := binaryBytes(t, p)
		var viaV3 bytes.Buffer
		if _, err := slab.WriteBinary(&viaV3); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct, viaV3.Bytes()) {
			t.Errorf("%v: v3->v2 conversion differs from direct v2 encoding", cfg.Kind)
		}
	}
}

// TestReadBinaryRejectsTrailingGarbage pins the satellite bugfix: a valid
// artifact followed by extra bytes is not a valid artifact. Both binary
// decoders must read one byte past their end and require io.EOF.
func TestReadBinaryRejectsTrailingGarbage(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 81)
	p, err := Build(pts, dom, Config{Kind: Hybrid, Height: 3, Epsilon: 1, Seed: 82, PostProcess: true, PruneThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"v2": binaryBytes(t, p), "v3": v3Bytes(t, p)} {
		if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
			t.Fatalf("%s: clean artifact must decode: %v", name, err)
		}
		for _, trailer := range [][]byte{{0}, {0xff}, []byte("PSD2"), bytes.Repeat([]byte{7}, 1024)} {
			tainted := append(append([]byte{}, raw...), trailer...)
			_, err := ReadBinary(bytes.NewReader(tainted))
			if err == nil {
				t.Fatalf("%s: ReadBinary accepted %d trailing bytes", name, len(trailer))
			}
			if !strings.Contains(err.Error(), "trailing") {
				t.Errorf("%s: trailing-garbage error %q does not name the cause", name, err)
			}
		}
	}
}

// errInjected is the destination failure the failing-writer tests inject.
var errInjected = errors.New("injected write failure")

// failAfterWriter accepts exactly limit bytes, then fails — the
// faultfs-style error-after-N-bytes destination. n is ground truth for how
// many bytes actually arrived.
type failAfterWriter struct {
	limit int
	n     int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n >= w.limit {
		return 0, errInjected
	}
	k := min(len(p), w.limit-w.n)
	w.n += k
	if k < len(p) {
		return k, errInjected
	}
	return k, nil
}

// shortWriter accepts one byte less than offered and reports no error — the
// io.Writer contract violation bufio silently tolerates mid-stream.
type shortWriter struct{ n int }

func (w *shortWriter) Write(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:len(p)-1]
	}
	w.n += len(p)
	return len(p), nil
}

// TestWriteBinaryCountsDestinationBytes pins the satellite bugfix: the n the
// binary encoders return is exactly the bytes the destination accepted —
// never inflated by bytes parked in an intermediate buffer — for both
// formats, across fault offsets landing inside every section and on chunk
// boundaries.
func TestWriteBinaryCountsDestinationBytes(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(4096, dom, 83)
	// Height 6 is ~5.5k nodes, ~220KB per artifact: several 64KB chunks, so
	// faults land both inside and between destination writes.
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 6, Epsilon: 0.5, Seed: 84, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	slab := p.Sealed()
	encoders := map[string]func(io.Writer) (int64, error){
		"v2": slab.WriteBinary,
		"v3": slab.WriteBinaryV3,
	}
	for name, encode := range encoders {
		var ref bytes.Buffer
		n, err := encode(&ref)
		if err != nil {
			t.Fatal(err)
		}
		total := ref.Len()
		if n != int64(total) {
			t.Fatalf("%s: clean encode reported %d bytes, wrote %d", name, n, total)
		}
		limits := []int{
			0, 1, 55, 56, 1000,
			artifactChunk - 1, artifactChunk, artifactChunk + 1,
			2 * artifactChunk, 3*artifactChunk + 7,
			total / 2, total - 1,
		}
		for _, limit := range limits {
			fw := &failAfterWriter{limit: limit}
			n, err := encode(fw)
			if err == nil {
				t.Fatalf("%s: limit %d of %d: encoder reported success against a failing destination", name, limit, total)
			}
			if !errors.Is(err, errInjected) {
				t.Errorf("%s: limit %d: error %v does not wrap the destination failure", name, limit, err)
			}
			if n != int64(fw.n) {
				t.Errorf("%s: limit %d: encoder reported %d bytes, destination accepted %d", name, limit, n, fw.n)
			}
			if fw.n > limit {
				t.Errorf("%s: limit %d: destination accepted %d bytes past its limit?", name, limit, fw.n)
			}
		}
		// A destination that under-accepts without erroring must surface as
		// io.ErrShortWrite with the true delivered count, not spin or succeed.
		sw := &shortWriter{}
		n, err = encode(sw)
		if !errors.Is(err, io.ErrShortWrite) {
			t.Errorf("%s: short-writing destination: got error %v, want io.ErrShortWrite", name, err)
		}
		if n != int64(sw.n) {
			t.Errorf("%s: short write: encoder reported %d bytes, destination accepted %d", name, n, sw.n)
		}
	}
}

// prunedSlab builds a heavily-pruned adaptive release for the prunedIndices
// guards: PrivTree over clustered-ish data prunes most of a deep arena.
func prunedSlab(tb testing.TB, height int) *Slab {
	tb.Helper()
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(2048, dom, 91)
	p, err := Build(pts, dom, Config{Kind: PrivTree, Height: height, Epsilon: 0.5, Seed: 92})
	if err != nil {
		tb.Fatal(err)
	}
	return p.Sealed()
}

// TestPrunedIndicesAllocs pins the satellite fix: the pruned list is sized
// from a popcount up front, so building it costs exactly one allocation (or
// none when nothing is pruned), however many subtrees were pruned.
func TestPrunedIndicesAllocs(t *testing.T) {
	s := prunedSlab(t, 6)
	idx := s.prunedIndices()
	if len(idx) == 0 {
		t.Fatal("fixture pruned nothing; pick a prunier config")
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("pruned indices not strictly ascending at %d: %d then %d", i, idx[i-1], idx[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() { s.prunedIndices() })
	if allocs > 1 {
		t.Errorf("prunedIndices cost %.1f allocs per run, want at most 1 (pre-sized from popcount)", allocs)
	}
}

// BenchmarkPrunedIndices guards the popcount-presized bit iteration on a
// deep, mostly-pruned adaptive slab — the shape the encoder hits on every
// v2 write of a PrivTree release.
func BenchmarkPrunedIndices(b *testing.B) {
	s := prunedSlab(b, 8)
	idx := s.prunedIndices()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.prunedIndices(); len(got) != len(idx) {
			b.Fatalf("pruned count changed: %d vs %d", len(got), len(idx))
		}
	}
}

// TestCrossFormatEquivalence is the three-way read-path pin: the same
// release decoded from v2, decoded from v3, and mmap'd from v3 must be
// bit-identical under Query, QueryWithStats, CountBatchInto (answers AND
// traversal statistics), and LeafRegions.
func TestCrossFormatEquivalence(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 71)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		slabs := map[string]*Slab{}
		v2, err := ReadBinary(bytes.NewReader(binaryBytes(t, p)))
		if err != nil {
			t.Fatalf("%v: v2 decode: %v", cfg.Kind, err)
		}
		slabs["v2-decode"] = v2
		raw3 := v3Bytes(t, p)
		v3, err := ReadBinary(bytes.NewReader(raw3))
		if err != nil {
			t.Fatalf("%v: v3 decode: %v", cfg.Kind, err)
		}
		slabs["v3-decode"] = v3
		if mmapSupported && hostLittleEndian() {
			mm, err := OpenSlabMmap(writeTempArtifact(t, raw3))
			if err != nil {
				t.Fatalf("%v: OpenSlabMmap: %v", cfg.Kind, err)
			}
			defer mm.Close()
			if err := mm.Verify(); err != nil {
				t.Fatalf("%v: Verify on a clean mapping: %v", cfg.Kind, err)
			}
			slabs["v3-mmap"] = mm
		}

		ref := p.Sealed()
		qs := slabTestQueries(dom)
		wantOut := make([]float64, len(qs))
		wantSt := ref.CountBatchInto(wantOut, qs, 1)
		wantRects, wantCounts := ref.LeafRegions()
		for name, s := range slabs {
			for _, q := range qs {
				wv, wst := ref.QueryWithStats(q)
				gv, gst := s.QueryWithStats(q)
				if gv != wv || gst != wst {
					t.Errorf("%v/%s: QueryWithStats(%v) = (%v, %+v), want (%v, %+v)",
						cfg.Kind, name, q, gv, gst, wv, wst)
				}
			}
			for _, workers := range []int{1, 3} {
				out := make([]float64, len(qs))
				st := s.CountBatchInto(out, qs, workers)
				if st != wantSt {
					t.Errorf("%v/%s: batch stats %+v, want %+v", cfg.Kind, name, st, wantSt)
				}
				for i := range out {
					if out[i] != wantOut[i] {
						t.Errorf("%v/%s: CountBatch[%d] = %v, want %v", cfg.Kind, name, i, out[i], wantOut[i])
					}
				}
			}
			rects, counts := s.LeafRegions()
			if len(rects) != len(wantRects) {
				t.Errorf("%v/%s: %d leaf regions, want %d", cfg.Kind, name, len(rects), len(wantRects))
				continue
			}
			for i := range rects {
				if rects[i] != wantRects[i] || counts[i] != wantCounts[i] {
					t.Errorf("%v/%s: leaf region %d = (%v, %v), want (%v, %v)",
						cfg.Kind, name, i, rects[i], counts[i], wantRects[i], wantCounts[i])
				}
			}
		}
	}
}

// TestSlabClose pins the lifecycle contract for both construction paths:
// Close is idempotent, and any use after Close panics with a clear message
// — never a SIGBUS against unmapped pages or a nil-slice misanswer.
func TestSlabClose(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 41)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 3, Epsilon: 1, Seed: 42, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	raw := v3Bytes(t, p)

	open := map[string]func(t *testing.T) *Slab{
		"decoded": func(t *testing.T) *Slab {
			s, err := ReadBinary(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	if mmapSupported && hostLittleEndian() {
		open["mmap"] = func(t *testing.T) *Slab {
			s, err := OpenSlabMmap(writeTempArtifact(t, raw))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	q := geom.NewRect(10, 10, 50, 50)
	for name, openSlab := range open {
		t.Run(name, func(t *testing.T) {
			s := openSlab(t)
			want := p.Query(q)
			if got := s.Query(q); got != want {
				t.Fatalf("pre-Close Query = %v, want %v", got, want)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			uses := map[string]func(){
				"Query":          func() { s.Query(q) },
				"QueryWithStats": func() { s.QueryWithStats(q) },
				"CountBatchInto": func() { s.CountBatchInto(make([]float64, 1), []geom.Rect{q}, 1) },
				"LeafRegions":    func() { s.LeafRegions() },
				"Verify":         func() { s.Verify() },
				"WriteBinary":    func() { s.WriteBinary(io.Discard) },
				"WriteBinaryV3":  func() { s.WriteBinaryV3(io.Discard) },
			}
			for use, call := range uses {
				func() {
					defer func() {
						r := recover()
						if r == nil {
							t.Errorf("%s after Close did not panic", use)
							return
						}
						if !strings.Contains(fmt.Sprint(r), "after Close") {
							t.Errorf("%s after Close panicked with %v, want a use-after-Close message", use, r)
						}
					}()
					call()
				}()
			}
		})
	}
}

// patchV3CRC recomputes the footer checksum over a (deliberately mutated)
// v3 body, so corruption tests reach the check they target instead of
// tripping the checksum first.
func patchV3CRC(raw []byte) []byte {
	out := append([]byte(nil), raw...)
	body := out[:len(out)-v3FooterSize]
	binary.LittleEndian.PutUint64(out[len(body):], crc64.Checksum(body, v3CRCTable))
	return out
}

// TestReadBinaryV3RejectsMalformed drives the v3 decoder through the
// corruption classes the format claims to catch — and pins which of them the
// instant mmap open defers to Verify.
func TestReadBinaryV3RejectsMalformed(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(512, dom, 91)
	// Leaf-only budget: unpublished interior nodes, so the canonical
	// zero-count rule has teeth.
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 2, Epsilon: 1, Seed: 92, Strategy: budget.LeafOnly{}})
	if err != nil {
		t.Fatal(err)
	}
	raw := v3Bytes(t, p)
	const nodes = 21 // (4^3-1)/3 for height 2
	lay := v3LayoutFor(nodes)

	cases := map[string][]byte{
		"empty":               {},
		"magic only":          raw[:4],
		"truncated header":    raw[:v3HeaderSize-1],
		"bad version":         corrupt(raw, 4, 9),
		"bad kind":            corrupt(raw, 5, 200),
		"bad fanout":          corrupt(raw, 6, 3),
		"huge height":         corrupt(raw, 7, 99),
		"negative epsilon":    putF64(raw, 8, -1),
		"NaN domain":          putF64(raw, 16, math.NaN()),
		"node count mismatch": corrupt(raw, 48, 1, 0, 0, 0),
		"pruned overflow":     corrupt(raw, 52, 0xff, 0xff, 0xff, 0x7f),
		"reserved header":     corrupt(raw, 56, 1),
		"flipped record bit":  corrupt(raw, int(lay.recordsOff)+3, raw[lay.recordsOff+3]^0x40),
		"flipped bitset bit":  corrupt(raw, int(lay.usableOff), raw[lay.usableOff]^0x02),
		"corrupt checksum":    corrupt(raw, int(lay.footerOff), raw[lay.footerOff]^1),
		"bad footer magic":    corrupt(raw, int(lay.footerOff)+8, 'X'),
		"trailing byte":       append(append([]byte{}, raw...), 0),
		// CRC-consistent mutations: the checksum is honest but the canonical
		// encoding is violated, so the structural checks must fire.
		"nonzero pad":              patchV3CRC(corrupt(raw, int(lay.recordsEnd), 1)),
		"published tail bits":      patchV3CRC(corrupt(raw, int(lay.usableOff)+8*(nodes/64), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)),
		"pruned popcount mismatch": patchV3CRC(corrupt(raw, int(lay.prunedOff), raw[lay.prunedOff]^0x01)),
		"poisoned unpublished count": patchV3CRC(
			putF64(raw, int(lay.recordsOff)+4*8, 12345)), // root count slot; root unpublished under leaf-only
		"NaN rect": patchV3CRC(putF64(raw, int(lay.recordsOff), math.NaN())),
	}
	// Truncations at (and one byte into) every section boundary.
	for name, cut := range map[string]int64{
		"records": lay.recordsEnd, "published": lay.usableOff + lay.bitsetLen,
		"pruned": lay.prunedOff + lay.bitsetLen, "footer": lay.footerOff,
	} {
		cases["truncated at "+name] = raw[:cut]
		cases["truncated inside "+name] = raw[:cut-1]
	}
	cases["one byte shy"] = raw[:len(raw)-1]

	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: streaming v3 decoder accepted malformed input", name)
		}
	}
	if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
		t.Fatalf("clean fixture must decode: %v", err)
	}

	if !mmapSupported || !hostLittleEndian() {
		t.Skip("no mmap on this platform; deferred-verify split not applicable")
	}
	// The mmap open validates shape instantly and defers body checks: a
	// flipped record byte opens fine but must be caught by Verify.
	for name, data := range map[string][]byte{
		"flipped record bit":         cases["flipped record bit"],
		"flipped bitset bit":         cases["flipped bitset bit"],
		"nonzero pad":                cases["nonzero pad"],
		"bad footer magic":           cases["bad footer magic"],
		"poisoned unpublished count": cases["poisoned unpublished count"],
	} {
		s, err := OpenSlabMmap(writeTempArtifact(t, data))
		if err != nil {
			t.Errorf("%s: mmap open is shape-only and should defer this to Verify: %v", name, err)
			continue
		}
		if err := s.Verify(); err == nil {
			t.Errorf("%s: Verify accepted a corrupt mapping", name)
		}
		s.Close()
	}
	// Shape-level corruption fails at open, before any deferred pass.
	for name, data := range map[string][]byte{
		"bad kind":            cases["bad kind"],
		"node count mismatch": cases["node count mismatch"],
		"trailing byte":       cases["trailing byte"],
		"one byte shy":        cases["one byte shy"],
	} {
		if s, err := OpenSlabMmap(writeTempArtifact(t, data)); err == nil {
			s.Close()
			t.Errorf("%s: OpenSlabMmap accepted malformed input", name)
		}
	}
}
