package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"psd/internal/budget"
	"psd/internal/geom"
)

// binaryBytes serializes a built PSD's release in format v2.
func binaryBytes(t *testing.T, p *PSD) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := p.Release().WriteBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteBinary reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestBinaryRoundTrip pins the canonical-encoding property for every
// family: decode(encode(release)) re-encodes byte-identically, and the
// decoded slab answers exactly as the source tree.
func TestBinaryRoundTrip(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 61)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw := binaryBytes(t, p)
		slab, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%v: ReadBinary: %v", cfg.Kind, err)
		}
		var again bytes.Buffer
		if _, err := slab.WriteBinary(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again.Bytes()) {
			t.Errorf("%v: binary round trip differs (%d vs %d bytes)",
				cfg.Kind, len(raw), again.Len())
		}
		for _, q := range slabTestQueries(dom) {
			if got, want := slab.Query(q), p.Query(q); got != want {
				t.Errorf("%v: binary slab Query(%v) = %v, want %v", cfg.Kind, q, got, want)
			}
		}
		// The JSON and binary encodings carry the same artifact: converting
		// the decoded slab back to JSON matches the direct JSON serialization.
		var direct, viaBinary bytes.Buffer
		if _, err := p.Release().WriteTo(&direct); err != nil {
			t.Fatal(err)
		}
		if _, err := slab.Release().WriteTo(&viaBinary); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Bytes(), viaBinary.Bytes()) {
			t.Errorf("%v: binary->JSON conversion differs from direct JSON", cfg.Kind)
		}
	}
}

// TestBinarySmallerThanJSON sanity-checks the size motivation: the columnar
// encoding beats the JSON text encoding on every fixture family.
func TestBinarySmallerThanJSON(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(2048, dom, 71)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 5, Epsilon: 1, Seed: 72, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if _, err := p.Release().WriteTo(&js); err != nil {
		t.Fatal(err)
	}
	bin := binaryBytes(t, p)
	if len(bin) >= js.Len() {
		t.Errorf("binary release is %d bytes, JSON %d — expected smaller", len(bin), js.Len())
	}
}

// corrupt returns a copy of raw with one byte range overwritten.
func corrupt(raw []byte, off int, b ...byte) []byte {
	out := append([]byte(nil), raw...)
	copy(out[off:], b)
	return out
}

// putF64 little-endian encodes v at off.
func putF64(raw []byte, off int, v float64) []byte {
	out := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
	return out
}

// TestReadBinaryRejectsMalformed walks the hardening checklist: every
// corruption class Release.Validate rejects on the JSON path must be
// rejected by the binary decoder too, without panicking.
func TestReadBinaryRejectsMalformed(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 81)
	p, err := Build(pts, dom, Config{Kind: Hybrid, Height: 3, Epsilon: 1, Seed: 82, PostProcess: true, PruneThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	raw := binaryBytes(t, p)
	nodes := 85 // (4^4-1)/3 for height 3

	cases := map[string][]byte{
		"empty":               {},
		"truncated header":    raw[:40],
		"bad magic":           corrupt(raw, 0, 'J', 'S', 'O', 'N'),
		"bad version":         corrupt(raw, 4, 9),
		"bad kind":            corrupt(raw, 5, 200),
		"bad fanout":          corrupt(raw, 6, 3),
		"huge height":         corrupt(raw, 7, 99),
		"negative epsilon":    putF64(raw, 8, -1),
		"NaN epsilon":         putF64(raw, 8, math.NaN()),
		"NaN domain":          putF64(raw, 16, math.NaN()),
		"inverted domain":     putF64(raw, 16, 1e9),
		"node count mismatch": corrupt(raw, 48, 1, 0, 0, 0),
		"pruned overflow":     corrupt(raw, 52, 0xff, 0xff, 0xff, 0x7f),
		"truncated columns":   raw[:len(raw)/2],
		"NaN rect":            putF64(raw, binaryHeaderSize, math.NaN()),
		// lox of node 0 (the root/domain rect) pushed past its hix.
		"inverted rect": putF64(raw, binaryHeaderSize, 1e12),
		// First count made non-finite (root is published on these configs).
		"infinite count": putF64(raw, binaryHeaderSize+4*8*nodes, math.Inf(1)),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadBinary accepted malformed input", name)
		}
	}

	// Published bits beyond the node count break canonical encoding.
	bitsetOff := binaryHeaderSize + 5*8*nodes
	tail := corrupt(raw, bitsetOff+8*(nodes/64), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	if _, err := ReadBinary(bytes.NewReader(tail)); err == nil {
		t.Error("ReadBinary accepted published bits beyond the last node")
	}

	// A truncated pruned trailer must error rather than hang or succeed.
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		// Only fails when the fixture actually pruned something; the config
		// above prunes aggressively enough that the trailer is non-empty.
		t.Error("ReadBinary accepted a truncated pruned trailer")
	}
}

// TestReadBinaryZeroesUnpublishedCounts pins that garbage in an unpublished
// count slot cannot leak into LeafRegions: the decoder forces those slots
// to zero, matching the JSON path's nil counts.
func TestReadBinaryZeroesUnpublishedCounts(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(512, dom, 91)
	// Leaf-only budget leaves the internal levels unpublished.
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 2, Epsilon: 1, Seed: 92, Strategy: budget.LeafOnly{}})
	if err != nil {
		t.Fatal(err)
	}
	raw := binaryBytes(t, p)
	// Node 0 (the root) is unpublished under leaf-only budgets; poison its
	// count slot.
	poisoned := putF64(raw, binaryHeaderSize+4*8*21, 12345.0)
	slab, err := ReadBinary(bytes.NewReader(poisoned))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if _, err := slab.WriteBinary(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Error("decoder did not canonicalize a poisoned unpublished count slot")
	}
	for _, q := range slabTestQueries(dom) {
		if got, want := slab.Query(q), p.Query(q); got != want {
			t.Errorf("poisoned slab Query(%v) = %v, want %v", q, got, want)
		}
	}
}

// TestReadBinaryHostileHeaders pins the allocation-gating property the
// decoder claims: a 56-byte header making absurd size claims — height past
// the cap, a node count that cannot match any tree, a pruned count past the
// node count — must be rejected before any node-sized allocation happens.
// A hostile artifact is bytes on disk; it must not cost memory proportional
// to what it *claims* to be.
func TestReadBinaryHostileHeaders(t *testing.T) {
	// A minimal structurally-plausible header for a height-0 tree (1 node),
	// mutated per case. Each hostile header is complete (56 bytes) but has
	// no body at all, so acceptance of the header would hit EOF next.
	base := make([]byte, binaryHeaderSize)
	copy(base, binaryMagic[:])
	base[4] = binaryVersion
	base[5] = 0 // quadtree
	base[6] = 4
	base[7] = 0 // height 0 -> 1 node
	binary.LittleEndian.PutUint64(base[8:], math.Float64bits(1.0))   // epsilon
	binary.LittleEndian.PutUint64(base[16:], math.Float64bits(0))    // lox
	binary.LittleEndian.PutUint64(base[24:], math.Float64bits(0))    // loy
	binary.LittleEndian.PutUint64(base[32:], math.Float64bits(64.0)) // hix
	binary.LittleEndian.PutUint64(base[40:], math.Float64bits(64.0)) // hiy
	binary.LittleEndian.PutUint32(base[48:], 1)                      // nodes
	binary.LittleEndian.PutUint32(base[52:], 0)                      // pruned

	hostile := map[string][]byte{
		// Height 13 declares ~89M nodes, past the MaxNodes arena cap.
		"height over arena cap": corrupt(base, 7, 13),
		// Max height byte: 4^256 nodes if anyone tried to compute it.
		"height 255": corrupt(base, 7, 255),
		// Node count u32 maxed out against a height-0 shape.
		"node count over-claim": corrupt(base, 48, 0xff, 0xff, 0xff, 0xff),
		// Pruned count exceeds the (valid) node count.
		"pruned over-claim": corrupt(base, 52, 0xff, 0xff, 0xff, 0xff),
	}
	for name, hdr := range hostile {
		hdr := hdr
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(hdr)); err == nil {
				t.Fatal("ReadBinary accepted a hostile header")
			}
			// Rejection must be allocation-free (modulo the error value):
			// the header checks run before newSlab.
			allocs := testing.AllocsPerRun(10, func() {
				ReadBinary(bytes.NewReader(hdr))
			})
			if allocs > 8 {
				t.Errorf("rejecting a hostile header cost %.0f allocs — node-sized work before validation?", allocs)
			}
		})
	}
}

// TestReadBinaryTruncatedSections cuts a valid artifact at (and one byte
// into) every section boundary — header, each of the five columns, the
// published bitset, the pruned trailer. Every cut must produce a decode
// error, never a panic or a short successful read.
func TestReadBinaryTruncatedSections(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 83)
	p, err := Build(pts, dom, Config{Kind: Hybrid, Height: 3, Epsilon: 1, Seed: 84, PostProcess: true, PruneThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	raw := binaryBytes(t, p)
	const nodes = 85 // (4^4-1)/3 for height 3
	colBytes := 8 * nodes
	bitsetOff := binaryHeaderSize + 5*colBytes
	trailerOff := bitsetOff + 8*((nodes+63)/64)
	if trailerOff >= len(raw) {
		t.Fatalf("fixture has no pruned trailer (len %d, trailer at %d): pick a prunier config", len(raw), trailerOff)
	}

	cuts := []int{0, 1, binaryHeaderSize - 1, binaryHeaderSize}
	for col := 1; col <= 5; col++ {
		off := binaryHeaderSize + col*colBytes
		cuts = append(cuts, off-1, off)
	}
	cuts = append(cuts, bitsetOff+1, trailerOff, len(raw)-1)
	for _, cut := range cuts {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("ReadBinary accepted an artifact truncated to %d of %d bytes", cut, len(raw))
		}
	}
	if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
		t.Fatalf("untruncated fixture must decode: %v", err)
	}
}
