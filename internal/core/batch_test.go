package core

import (
	"math"
	"testing"

	"psd/internal/geom"
)

// testRand returns a cheap deterministic xorshift generator of floats in
// [0, 1), shared by the batch tests and FuzzCountBatch so their query
// distributions stay in sync.
func testRand(seed uint64) func() float64 {
	state := seed*0x9e3779b97f4a7c15 + 1
	return func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state>>11) / (1 << 53)
	}
}

// batchTestQueries is slabTestQueries plus a spread of random rectangles so
// batches mix every traversal outcome, plus degenerate NaN/inf bounds.
func batchTestQueries(dom geom.Rect, n int, seed int64) []geom.Rect {
	qs := append([]geom.Rect{}, slabTestQueries(dom)...)
	qs = append(qs,
		geom.Rect{Lo: geom.Point{X: math.NaN(), Y: 0}, Hi: geom.Point{X: 1, Y: 1}},
		geom.Rect{Lo: geom.Point{X: dom.Lo.X, Y: dom.Lo.Y}, Hi: geom.Point{X: math.Inf(1), Y: math.Inf(1)}},
	)
	next := testRand(uint64(seed))
	for len(qs) < n {
		x0 := dom.Lo.X + next()*dom.Width()
		y0 := dom.Lo.Y + next()*dom.Height()
		w := next() * dom.Width() * 0.6
		h := next() * dom.Height() * 0.6
		qs = append(qs, geom.Rect{Lo: geom.Point{X: x0, Y: y0}, Hi: geom.Point{X: x0 + w, Y: y0 + h}})
	}
	return qs
}

// sumStats answers qs one Query at a time, returning the answers and the
// summed per-query statistics — the reference the batch engine must match
// exactly.
func sumStats(q interface {
	QueryWithStats(geom.Rect) (float64, QueryStats)
}, qs []geom.Rect) ([]float64, QueryStats) {
	out := make([]float64, len(qs))
	var st QueryStats
	for i, r := range qs {
		v, s := q.QueryWithStats(r)
		out[i] = v
		st.NodesAdded += s.NodesAdded
		st.NodesVisited += s.NodesVisited
		st.PartialLeaves += s.PartialLeaves
	}
	return out, st
}

// TestCountBatchMatchesPerQuery pins the tentpole invariant: the node-major
// batch engine answers every query bit-identically to the per-query path —
// answers AND aggregate traversal statistics — across every decomposition
// family, pruning, partial publication, and worker count.
func TestCountBatchMatchesPerQuery(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 7)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
		s := p.Seal()
		qs := batchTestQueries(dom, 300, int64(cfg.Seed))
		wantV, wantSt := sumStats(s, qs)

		// Arena per-query answers agree too (slab is pinned to arena, but
		// assert the whole chain here for the batch path).
		arenaV, arenaSt := sumStats(p, qs)
		for i := range wantV {
			if arenaV[i] != wantV[i] {
				t.Fatalf("%v: arena Query[%d] = %v, slab %v", cfg.Kind, i, arenaV[i], wantV[i])
			}
		}
		if arenaSt != wantSt {
			t.Fatalf("%v: arena stats %+v, slab %+v", cfg.Kind, arenaSt, wantSt)
		}

		for _, workers := range []int{1, 2, 3, 8, 0} {
			out := make([]float64, len(qs))
			st := s.CountBatchInto(out, qs, workers)
			for i := range wantV {
				if out[i] != wantV[i] {
					t.Fatalf("%v workers=%d: CountBatch[%d] = %v, per-query %v (rect %v)",
						cfg.Kind, workers, i, out[i], wantV[i], qs[i])
				}
			}
			if st != wantSt {
				t.Fatalf("%v workers=%d: batch stats %+v, per-query sum %+v",
					cfg.Kind, workers, st, wantSt)
			}
		}

		// The allocating wrappers and the PSD-side lazy-seal path agree.
		for i, v := range s.CountBatch(qs) {
			if v != wantV[i] {
				t.Fatalf("%v: Slab.CountBatch[%d] = %v, want %v", cfg.Kind, i, v, wantV[i])
			}
		}
		for i, v := range p.CountBatch(qs) {
			if v != wantV[i] {
				t.Fatalf("%v: PSD.CountBatch[%d] = %v, want %v", cfg.Kind, i, v, wantV[i])
			}
		}
		if pst := p.CountBatchInto(make([]float64, len(qs)), qs, 2); pst != wantSt {
			t.Fatalf("%v: PSD batch stats %+v, want %+v", cfg.Kind, pst, wantSt)
		}
	}
}

// TestCountBatchMatchesOnRelease pins the batch engine on slabs opened from
// release artifacts (the serving path), where partial publication shows up
// as nil counts rather than Published flags.
func TestCountBatchMatchesOnRelease(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(2048, dom, 21)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		slab, err := p.Release().Slab()
		if err != nil {
			t.Fatal(err)
		}
		qs := batchTestQueries(dom, 200, int64(cfg.Seed)+99)
		wantV, wantSt := sumStats(slab, qs)
		for _, workers := range []int{1, 4, 0} {
			out := make([]float64, len(qs))
			st := slab.CountBatchInto(out, qs, workers)
			for i := range wantV {
				if out[i] != wantV[i] {
					t.Fatalf("%v workers=%d: release CountBatch[%d] = %v, want %v",
						cfg.Kind, workers, i, out[i], wantV[i])
				}
			}
			if st != wantSt {
				t.Fatalf("%v workers=%d: release batch stats %+v, want %+v",
					cfg.Kind, workers, st, wantSt)
			}
		}
	}
}

// TestCountBatchEdgeCases covers the empty batch, the single query, the
// duplicate-heavy batch, and mismatched output length.
func TestCountBatchEdgeCases(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 51)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 3, Epsilon: 1, Seed: 9, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Seal()

	if got := s.CountBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d answers", len(got))
	}
	var zero QueryStats
	if st := s.CountBatchInto(nil, nil, 0); st != zero {
		t.Fatalf("empty batch stats %+v", st)
	}

	q := slabTestQueries(dom)[2]
	want, wantSt := s.QueryWithStats(q)
	one := make([]float64, 1)
	if st := s.CountBatchInto(one, []geom.Rect{q}, 0); one[0] != want || st != wantSt {
		t.Fatalf("single-query batch = %v/%+v, want %v/%+v", one[0], st, want, wantSt)
	}

	// A batch of 500 copies of the same rect: every answer identical, stats
	// exactly 500x the single query's.
	dup := make([]geom.Rect, 500)
	for i := range dup {
		dup[i] = q
	}
	out := make([]float64, len(dup))
	st := s.CountBatchInto(out, dup, 0)
	for i, v := range out {
		if v != want {
			t.Fatalf("dup batch [%d] = %v, want %v", i, v, want)
		}
	}
	if st.NodesVisited != 500*wantSt.NodesVisited || st.NodesAdded != 500*wantSt.NodesAdded ||
		st.PartialLeaves != 500*wantSt.PartialLeaves {
		t.Fatalf("dup batch stats %+v, want 500x %+v", st, wantSt)
	}

	// CountBatchInto must reject a mismatched output buffer loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched output length did not panic")
		}
	}()
	s.CountBatchInto(make([]float64, 2), dup, 0)
}

// TestCountBatchIntoOverwrites pins that CountBatchInto treats dst as
// output only: stale values must not leak into answers.
func TestCountBatchIntoOverwrites(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(512, dom, 61)
	p, err := Build(pts, dom, Config{Kind: Hybrid, Height: 3, Epsilon: 1, Seed: 13, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Seal()
	qs := batchTestQueries(dom, 130, 5)
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i] = s.Query(q)
	}
	for _, workers := range []int{1, 3} {
		out := make([]float64, len(qs))
		for i := range out {
			out[i] = math.NaN()
		}
		s.CountBatchInto(out, qs, workers)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: stale dst leaked: [%d] = %v, want %v", workers, i, out[i], want[i])
			}
		}
	}
}

// TestCountBatchAllocs pins the steady-state allocation bar: after warmup,
// a single-worker batch performs zero allocations per call.
func TestCountBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(2048, dom, 71)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 5, Epsilon: 1, Seed: 3, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Seal()
	qs := batchTestQueries(dom, 256, 17)
	out := make([]float64, len(qs))
	s.CountBatchInto(out, qs, 1) // warm the scratch pool
	if avg := testing.AllocsPerRun(20, func() {
		s.CountBatchInto(out, qs, 1)
	}); avg != 0 {
		t.Fatalf("CountBatchInto(workers=1) allocates %.1f/op, want 0", avg)
	}
}

// TestPSDSealedCached pins that the lazy seal materializes once and that
// PSD.CountBatch agrees with the arena per-query path on a fresh tree.
func TestPSDSealedCached(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(1024, dom, 81)
	p, err := Build(pts, dom, Config{Kind: KD, Height: 3, Epsilon: 1, Seed: 23, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Sealed() != p.Sealed() {
		t.Fatal("Sealed() did not cache the slab")
	}
	qs := slabTestQueries(dom)
	got := p.CountBatch(qs)
	for i, q := range qs {
		if want := p.Query(q); got[i] != want {
			t.Fatalf("PSD.CountBatch[%d] = %v, arena %v", i, got[i], want)
		}
	}
}
