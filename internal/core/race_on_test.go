//go:build race

package core

// raceEnabled reports that the race detector is active: sync.Pool drops
// items randomly under the detector, so steady-state allocation
// assertions do not hold.
const raceEnabled = true
