//go:build unix

package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy open path; on unix it is real mmap(2).
const mmapSupported = true

// errMmapUnsupported is never returned on unix builds; it exists so the
// portable callers can test for the fallback condition uniformly.
var errMmapUnsupported = errors.New("core: mmap is not supported on this platform")

// mmapFile maps the first size bytes of f read-only and shared: replicas
// serving the same artifact share one page-cache copy, and pages fault in
// on first touch. The mapping outlives f — closing the descriptor (and
// even renaming or unlinking the file, which is how atomicfile publishes
// replacements) keeps the mapped inode's pages valid until munmap.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("cannot map %d bytes", size)
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("%d bytes exceeds the address space", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
