package core

import (
	"sync"
	"sync/atomic"

	"psd/internal/geom"
	"psd/internal/par"
)

// This file implements the node-major batched query engine for the slab —
// the read-path sequel to the slab itself. The paper's economics are
// build-once/query-forever (Section 4.1: queries are free post-processing),
// and decompositions are overwhelmingly queried in batches: error sweeps,
// heatmap tiles, evaluation workloads. Answering a batch as Q independent
// DFS walks re-streams the same hot node records from memory Q times; a
// kd h=8 slab is ~3.5 MB of packed records, so every per-query walk is a
// string of cache misses.
//
// The node-major engine inverts the loops: it traverses the tree ONCE per
// batch, carrying an active-query list per frontier node. At each internal
// node every still-active query is classified against the four children in
// a single pass over the packed 40-byte records — non-intersecting queries
// are dropped, fully-contained ones are retired with a single est load,
// and the rest descend — so bound data is loaded once per node per batch
// instead of once per node per query. The classification work (rect-vs-rect
// tests) is exactly what the per-query walks do; only the memory access
// pattern changes: the four child records stay register/L1-resident while
// the dense query bounds stream past them.
//
// Three schedule-level optimizations ride on top, none of which changes a
// single answered bit:
//
//   - Locality clustering: the batch is processed in Morton order of the
//     query centers (a stable radix sort), so shards land in disjoint
//     subtrees, active lists stay spatially dense, and classification
//     branches flip in long predictable runs.
//   - Leaf-parent fusion: at nodes whose children are leaves — roughly
//     half of all (node, query) pairs — contributions are computed inline
//     during classification, with no lists and all operands in registers.
//   - Thin-list handoff: once a subtree's active list has thinned below
//     batchThinList, the remaining queries finish with per-query walks
//     (batchSingle, the queryIter loop restarted mid-tree) over the now
//     cache-resident subtree.
//
// Answers and traversal statistics are bit-identical to issuing each Query
// alone. That holds because (a) every query's contributions arrive in the
// same DFS order as its own walk would produce them (children are processed
// in order, and a child's retirements are applied before its subtree
// recursion, exactly mirroring the per-query stack pops), and (b) the
// per-(node, query) visit accounting mirrors queryIter event for event.

// batchMinShard is the smallest per-worker batch slice worth the fan-out:
// below it, scheduling overhead beats the parallelism.
const batchMinShard = 64

// batchLists holds one internal node's classification output: per child,
// the queries that fully contain it (retire: their contribution is a
// single est load) and the queries that partially intersect it (descend).
// Keeping the two classes in separate lists makes the retire walk a plain
// gather-add and the descend walk a clean recursion input.
type batchLists struct {
	ret  [4][]int32
	desc [4][]int32
}

// batchScratch is the per-worker reusable state of one node-major
// traversal. Borrowed from a pool, so steady-state batches allocate
// nothing once the buffers have grown to the working size.
type batchScratch struct {
	// qb and acc are the dense query bounds and per-query accumulators of
	// the current run — always views into qbuf/abuf holding the shard's
	// clustered copy (the Morton reorder forces the copy). Dense
	// accumulators keep the retirement adds inside the shard's own cache
	// lines instead of false-sharing the caller's output slice across
	// workers.
	qb  []geom.Rect
	acc []float64
	// qbuf and abuf are the pooled backing arrays the sharded path copies
	// its clustered query subset into.
	qbuf []geom.Rect
	abuf []float64
	// active is the root's active-query list.
	active []int32
	// stack is the DFS stack of the thin-list fast path (batchSingle).
	stack []int32
	// levels[d] holds the child lists of the internal node currently being
	// processed at depth d. DFS means one node per depth is in flight, so
	// per-depth buffers are all the traversal ever needs.
	levels [maxReleaseHeight + 1]batchLists
	// Counters stay in scalar fields across the recursion; the caller
	// flushes them into a QueryStats once per shard.
	visited, added, partials int
	// cancel, when non-nil, is this worker's deadline token (cancel.go):
	// the traversal polls it at bounded checkpoints and unwinds when it
	// fires. Cleared before the scratch returns to the pool.
	cancel *cancelToken
}

// batchState is the per-call clustering state: the locality sort keys and
// query order, the radix-sort scratch, and the per-shard statistics.
type batchState struct {
	order []int32
	tmp   []int32
	keys  []uint32
	stats []QueryStats
}

func (s *Slab) getBatchScratch() *batchScratch {
	if v := s.batchScratches.Get(); v != nil {
		return v.(*batchScratch)
	}
	return &batchScratch{}
}

func (s *Slab) putBatchScratch(sc *batchScratch) {
	sc.qb, sc.acc, sc.cancel = nil, nil, nil
	s.batchScratches.Put(sc)
}

func (s *Slab) getBatchState() *batchState {
	if v := s.batchStates.Get(); v != nil {
		return v.(*batchState)
	}
	return &batchState{}
}

func (s *Slab) putBatchState(bs *batchState) { s.batchStates.Put(bs) }

// CountBatch answers a batch of range queries in one node-major pass over
// the slab (sharded across one worker per available core for large
// batches). Answers come back in input order and are bit-identical to
// issuing each Query alone.
func (s *Slab) CountBatch(qs []geom.Rect) []float64 {
	return s.CountBatchWorkers(qs, 0)
}

// CountBatchWorkers is CountBatch with an explicit worker bound (0 = one
// per core, 1 = a single traversal on the caller's goroutine).
func (s *Slab) CountBatchWorkers(qs []geom.Rect, workers int) []float64 {
	out := make([]float64, len(qs))
	s.CountBatchInto(out, qs, workers)
	return out
}

// CountBatchInto answers qs into out (whose length must match) and returns
// the batch's aggregate traversal statistics — exactly the sum of the
// QueryStats each individual Query would report. With workers <= 1 the
// steady-state call performs no allocations: all traversal state comes
// from pooled scratch.
//
// Large batches are sharded across workers after locality clustering:
// queries are pre-grouped by subtree (Morton order of their centers, whose
// leading bits pick the depth-2 subtree), so each shard's active lists
// stay dense and the slab streams near-sequentially. Answers and
// statistics are identical at every worker count.
func (s *Slab) CountBatchInto(out []float64, qs []geom.Rect, workers int) QueryStats {
	s.ensureOpen()
	return s.countBatchInto(out, qs, workers, nil, nil)
}

// batchCancelToken builds one worker's deadline token over the batch's
// shared done channel, or nil when the batch runs without a deadline.
func batchCancelToken(done <-chan struct{}, fired *atomic.Bool) *cancelToken {
	if done == nil {
		return nil
	}
	return &cancelToken{done: done, remain: cancelCheckInterval, fired: fired}
}

// countBatchInto is the batch engine proper. done, when non-nil, is the
// caller's cancellation channel (CountBatchIntoCtx): every traversal worker
// polls it at bounded checkpoints through its own cancelToken and unwinds
// when it fires, latching fired so the caller knows the output is partial
// and must be discarded. With done == nil this is exactly the plain path.
func (s *Slab) countBatchInto(out []float64, qs []geom.Rect, workers int, done <-chan struct{}, fired *atomic.Bool) QueryStats {
	if len(out) != len(qs) {
		panic("core: CountBatchInto output length does not match batch length")
	}
	var st QueryStats
	n := len(qs)
	if n == 0 {
		return st
	}
	// A batch at or below the thin-list threshold would immediately hand
	// every query to the per-query walk anyway; answer it directly and
	// skip the clustering machinery (the serving layer hits this on warm
	// caches with a handful of misses).
	if n <= batchThinList {
		tok := batchCancelToken(done, fired)
		stack := s.getStack()
		for i, q := range qs {
			out[i] = s.queryIter(q, stack, &st, tok)
		}
		s.putStack(stack)
		return st
	}

	w := par.Workers(workers)
	if maxW := (n + batchMinShard - 1) / batchMinShard; w > maxW {
		w = maxW
	}

	// Locality clustering: order the batch by the Morton interleave of each
	// query's center. The leading key bits are exactly which depth-2 (then
	// depth-3, ...) subtree the query lands in, so contiguous slices of the
	// order concentrate on the same parts of the slab — shards stay in
	// disjoint subtrees, active lists stay spatially dense, and a node's
	// child classifications flip in long predictable runs instead of
	// per-query coin flips. Clustering only permutes which position in the
	// traversal answers which query — every answer and every stat event is
	// computed identically — so this is pure scheduling, like the
	// build-side worker pools.
	bs := s.getBatchState()
	if cap(bs.order) < n {
		bs.order = make([]int32, n)
		bs.tmp = make([]int32, n)
		bs.keys = make([]uint32, n)
	}
	order, keys := bs.order[:n], bs.keys[:n]
	s.mortonKeys(qs, keys)
	for i := range order {
		order[i] = int32(i)
	}
	radixSortByKey(order, bs.tmp[:n], keys)

	if w <= 1 {
		sc := s.getBatchScratch()
		if cap(sc.qbuf) < n {
			sc.qbuf = make([]geom.Rect, n)
			sc.abuf = make([]float64, n)
		}
		qb, acc := sc.qbuf[:n], sc.abuf[:n]
		for i, qi := range order {
			qb[i] = qs[qi]
			acc[i] = 0
		}
		sc.qb, sc.acc = qb, acc
		sc.cancel = batchCancelToken(done, fired)
		s.countBatchShard(sc, &st)
		for i, qi := range order {
			out[qi] = acc[i]
		}
		s.putBatchScratch(sc)
		s.putBatchState(bs)
		return st
	}

	if cap(bs.stats) < w {
		bs.stats = make([]QueryStats, w)
	}
	stats := bs.stats[:w]
	for k := range stats {
		stats[k] = QueryStats{}
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo := k * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			sc := s.getBatchScratch()
			ids := order[lo:hi]
			m := len(ids)
			if cap(sc.qbuf) < m {
				sc.qbuf = make([]geom.Rect, m)
				sc.abuf = make([]float64, m)
			}
			qb, acc := sc.qbuf[:m], sc.abuf[:m]
			for i, qi := range ids {
				qb[i] = qs[qi]
				acc[i] = 0
			}
			sc.qb, sc.acc = qb, acc
			sc.cancel = batchCancelToken(done, fired)
			s.countBatchShard(sc, &stats[k])
			for i, qi := range ids {
				out[qi] = acc[i]
			}
			s.putBatchScratch(sc)
		}(k, lo, hi)
	}
	wg.Wait()
	for k := 0; k < w; k++ {
		st.NodesAdded += stats[k].NodesAdded
		st.NodesVisited += stats[k].NodesVisited
		st.PartialLeaves += stats[k].PartialLeaves
	}
	s.putBatchState(bs)
	return st
}

// mortonKeys computes the locality sort key of each query: the bit
// interleave of its center quantized to 16 bits per axis over the released
// domain. The top key bits are the depth-2 subtree of the center (for the
// midpoint-split families exactly; for median-split families a close
// spatial proxy), deeper bits refine within it. NaN centers clamp to 0 and
// sort together at the front, where the root filter drops them.
func (s *Slab) mortonKeys(qs []geom.Rect, keys []uint32) {
	dom := s.domain
	sx, sy := 0.0, 0.0
	if w := dom.Width(); w > 0 {
		sx = 65535.0 / w
	}
	if h := dom.Height(); h > 0 {
		sy = 65535.0 / h
	}
	for i, q := range qs {
		fx := ((q.Lo.X+q.Hi.X)*0.5 - dom.Lo.X) * sx
		fy := ((q.Lo.Y+q.Hi.Y)*0.5 - dom.Lo.Y) * sy
		var ux, uy uint32
		if fx > 0 { // NaN fails, clamping it to 0
			if fx > 65535 {
				fx = 65535
			}
			ux = uint32(fx)
		}
		if fy > 0 {
			if fy > 65535 {
				fy = 65535
			}
			uy = uint32(fy)
		}
		keys[i] = spreadBits16(ux)<<1 | spreadBits16(uy)
	}
}

// spreadBits16 spaces the low 16 bits of v one position apart (the Morton
// half-interleave).
func spreadBits16(v uint32) uint32 {
	v = (v | v<<8) & 0x00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// radixSortByKey sorts order by keys[order[i]] with a stable 4-pass LSD
// byte radix — deterministic (stability fixes the order of equal keys),
// allocation-free, and O(n). tmp must have the same length as order.
func radixSortByKey(order, tmp []int32, keys []uint32) {
	var counts [4][257]int32
	for _, qi := range order {
		k := keys[qi]
		counts[0][(k&0xff)+1]++
		counts[1][(k>>8&0xff)+1]++
		counts[2][(k>>16&0xff)+1]++
		counts[3][(k>>24)+1]++
	}
	src, dst := order, tmp
	for pass := 0; pass < 4; pass++ {
		c := &counts[pass]
		for b := 1; b < 257; b++ {
			c[b] += c[b-1]
		}
		shift := uint(8 * pass)
		for _, qi := range src {
			b := keys[qi] >> shift & 0xff
			dst[c[b]] = qi
			c[b]++
		}
		src, dst = dst, src
	}
	// Four passes land the sorted order back in the original slice.
}

// countBatchShard answers the dense queries sc.qb into sc.acc with one
// node-major traversal. The root is handled exactly as queryIter's
// unclassified-root path: every query visits it, non-intersecting and NaN
// queries answer 0, contained-and-usable queries take the root estimate,
// and the rest form the root's active list.
func (s *Slab) countBatchShard(sc *batchScratch, st *QueryStats) {
	qb, acc := sc.qb, sc.acc
	sc.visited, sc.added, sc.partials = 0, 0, 0
	active := sc.active[:0]
	r := &s.nodes[0]
	rootUsable := s.allUsable || s.usable.get(0)
	for i := range qb {
		q := &qb[i]
		if q.Lo.X != q.Lo.X || q.Lo.Y != q.Lo.Y || q.Hi.X != q.Hi.X || q.Hi.Y != q.Hi.Y {
			continue // NaN bound: the visit finds no intersection, answer 0
		}
		if r[0] >= q.Hi.X || q.Lo.X >= r[2] || r[1] >= q.Hi.Y || q.Lo.Y >= r[3] {
			continue
		}
		if q.Lo.X <= r[0] && r[2] <= q.Hi.X && q.Lo.Y <= r[1] && r[3] <= q.Hi.Y && rootUsable {
			sc.added++
			acc[i] = r[4]
			continue
		}
		active = append(active, int32(i))
	}
	sc.visited += len(qb) // every query pops the root exactly once
	sc.active = active
	if !sc.cancel.tick(len(qb)) {
		if len(active) > batchThinList {
			s.batchNode(sc, 0, 0, active)
		} else {
			for _, qi := range active {
				s.batchSingle(sc, 0, 0, qi)
			}
		}
	}
	st.NodesAdded += sc.added
	st.NodesVisited += sc.visited
	st.PartialLeaves += sc.partials
}

// batchLeafParent processes one internal node whose four children are all
// leaves — the hottest level of the traversal, roughly half of all
// (node, query) pairs. Because every child is terminal, each query's
// contributions at this node are computable in child order within a single
// pass: no lists, no recursion, all child bounds and estimates in
// registers. The arithmetic per contribution is operation-for-operation
// what the per-query pop performs (a retire's single est load, a partial
// leaf's est × overlapFraction — including the +0.0 add of a zero-area
// overlap), so the accumulation order and bits match exactly.
//
//lint:allow ctxpoll -- the visits here are pre-paid: batchNode ticks 4*len(active) before dispatching, covering all four terminal children
func (s *Slab) batchLeafParent(sc *batchScratch, cs int, active []int32) {
	nodes := s.nodes
	c0, c1, c2, c3 := &nodes[cs], &nodes[cs+1], &nodes[cs+2], &nodes[cs+3]
	c0x0, c0y0, c0x1, c0y1, e0 := c0[0], c0[1], c0[2], c0[3], c0[4]
	c1x0, c1y0, c1x1, c1y1, e1 := c1[0], c1[1], c1[2], c1[3], c1[4]
	c2x0, c2y0, c2x1, c2y1, e2 := c2[0], c2[1], c2[2], c2[3], c2[4]
	c3x0, c3y0, c3x1, c3y1, e3 := c3[0], c3[1], c3[2], c3[3], c3[4]
	a0 := (c0x1 - c0x0) * (c0y1 - c0y0)
	a1 := (c1x1 - c1x0) * (c1y1 - c1y0)
	a2 := (c2x1 - c2x0) * (c2y1 - c2y0)
	a3 := (c3x1 - c3x0) * (c3y1 - c3y0)
	allU := s.allUsable
	u0 := allU || s.usable.get(cs)
	u1 := allU || s.usable.get(cs+1)
	u2 := allU || s.usable.get(cs+2)
	u3 := allU || s.usable.get(cs+3)
	added, partials := 0, 0
	qb, acc := sc.qb, sc.acc
	for _, qi := range active {
		q := &qb[qi]
		lox, loy, hix, hiy := q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y
		sum := acc[qi]

		if c0x0 < hix && lox < c0x1 && c0y0 < hiy && loy < c0y1 {
			if lox <= c0x0 && c0x1 <= hix && loy <= c0y0 && c0y1 <= hiy && u0 {
				added++
				sum += e0
			} else if u0 {
				added++
				partials++
				sum += e0 * leafOverlap(a0, max(c0x0, lox), min(c0x1, hix), max(c0y0, loy), min(c0y1, hiy))
			}
		}
		if c1x0 < hix && lox < c1x1 && c1y0 < hiy && loy < c1y1 {
			if lox <= c1x0 && c1x1 <= hix && loy <= c1y0 && c1y1 <= hiy && u1 {
				added++
				sum += e1
			} else if u1 {
				added++
				partials++
				sum += e1 * leafOverlap(a1, max(c1x0, lox), min(c1x1, hix), max(c1y0, loy), min(c1y1, hiy))
			}
		}
		if c2x0 < hix && lox < c2x1 && c2y0 < hiy && loy < c2y1 {
			if lox <= c2x0 && c2x1 <= hix && loy <= c2y0 && c2y1 <= hiy && u2 {
				added++
				sum += e2
			} else if u2 {
				added++
				partials++
				sum += e2 * leafOverlap(a2, max(c2x0, lox), min(c2x1, hix), max(c2y0, loy), min(c2y1, hiy))
			}
		}
		if c3x0 < hix && lox < c3x1 && c3y0 < hiy && loy < c3y1 {
			if lox <= c3x0 && c3x1 <= hix && loy <= c3y0 && c3y1 <= hiy && u3 {
				added++
				sum += e3
			} else if u3 {
				added++
				partials++
				sum += e3 * leafOverlap(a3, max(c3x0, lox), min(c3x1, hix), max(c3y0, loy), min(c3y1, hiy))
			}
		}
		acc[qi] = sum
	}
	sc.visited += 4 * len(active)
	sc.added += added
	sc.partials += partials
}

// leafOverlap is overlapFraction with the node area and clipped interval
// bounds precomputed by the caller — the same operations in the same
// order, so the result bits match.
func leafOverlap(a, lo, hi, lo2, hi2 float64) float64 {
	if a <= 0 {
		return 0
	}
	if lo >= hi || lo2 >= hi2 {
		return 0
	}
	return (hi - lo) * (hi2 - lo2) / a
}

// batchNode processes one node the parent classified as active (it
// intersects every query in the list but is not contained-and-usable for
// any of them), recursing child by child in order so each query's
// floating-point accumulation order matches its own DFS exactly.
func (s *Slab) batchNode(sc *batchScratch, idx, d int, active []int32) {
	if sc.cancel.tick(4 * len(active)) {
		return // deadline fired: the caller discards the partial batch
	}
	nodes := s.nodes
	if d+1 == s.height && !(s.hasPruned && s.pruned.get(idx)) {
		cs := int(s.offsets[d+1]) + (idx-int(s.offsets[d]))*4
		s.batchLeafParent(sc, cs, active)
		return
	}
	if d == s.height || (s.hasPruned && s.pruned.get(idx)) {
		// Terminal node (leaf or pruned root): uniformity assumption.
		if !(s.allUsable || s.usable.get(idx)) {
			return // no released information at or below this node
		}
		nd := &nodes[idx]
		sc.added += len(active)
		sc.partials += len(active)
		qb, acc := sc.qb, sc.acc
		for _, qi := range active {
			acc[qi] += nd[4] * overlapFraction(nd, qb[qi])
		}
		return
	}

	// Classify every active query against the four children in one pass:
	// the child bounds are hoisted into locals (registers), so only the
	// query bounds stream. The outcomes mirror queryIter's classification
	// loop exactly — drop, retire, or descend — and each (query, child)
	// pair costs one visit, just as each per-query walk pops or discards
	// that child once. The Morton processing order makes these branches
	// cheap: spatially adjacent queries classify the same way, so each
	// child's outcome flips in long runs the predictor learns instead of
	// per-query coin flips.
	cs := int(s.offsets[d+1]) + (idx-int(s.offsets[d]))*4
	lv := &sc.levels[d]
	na := len(active)
	if cap(lv.desc[0]) < na {
		for j := 0; j < 4; j++ {
			lv.desc[j] = make([]int32, na)
			lv.ret[j] = make([]int32, na)
		}
	}
	l0, l1, l2, l3 := lv.desc[0][:na], lv.desc[1][:na], lv.desc[2][:na], lv.desc[3][:na]
	r0, r1, r2, r3 := lv.ret[0][:na], lv.ret[1][:na], lv.ret[2][:na], lv.ret[3][:na]
	c0, c1, c2, c3 := &nodes[cs], &nodes[cs+1], &nodes[cs+2], &nodes[cs+3]
	c0x0, c0y0, c0x1, c0y1 := c0[0], c0[1], c0[2], c0[3]
	c1x0, c1y0, c1x1, c1y1 := c1[0], c1[1], c1[2], c1[3]
	c2x0, c2y0, c2x1, c2y1 := c2[0], c2[1], c2[2], c2[3]
	c3x0, c3y0, c3x1, c3y1 := c3[0], c3[1], c3[2], c3[3]
	allU := s.allUsable
	u0 := allU || s.usable.get(cs)
	u1 := allU || s.usable.get(cs+1)
	u2 := allU || s.usable.get(cs+2)
	u3 := allU || s.usable.get(cs+3)
	var n0, n1, n2, n3, m0, m1, m2, m3 int
	qb := sc.qb
	for _, qi := range active {
		q := &qb[qi]
		lox, loy, hix, hiy := q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y

		if c0x0 < hix && lox < c0x1 && c0y0 < hiy && loy < c0y1 {
			if lox <= c0x0 && c0x1 <= hix && loy <= c0y0 && c0y1 <= hiy && u0 {
				r0[m0] = qi
				m0++
			} else {
				l0[n0] = qi
				n0++
			}
		}
		if c1x0 < hix && lox < c1x1 && c1y0 < hiy && loy < c1y1 {
			if lox <= c1x0 && c1x1 <= hix && loy <= c1y0 && c1y1 <= hiy && u1 {
				r1[m1] = qi
				m1++
			} else {
				l1[n1] = qi
				n1++
			}
		}
		if c2x0 < hix && lox < c2x1 && c2y0 < hiy && loy < c2y1 {
			if lox <= c2x0 && c2x1 <= hix && loy <= c2y0 && c2y1 <= hiy && u2 {
				r2[m2] = qi
				m2++
			} else {
				l2[n2] = qi
				n2++
			}
		}
		if c3x0 < hix && lox < c3x1 && c3y0 < hiy && loy < c3y1 {
			if lox <= c3x0 && c3x1 <= hix && loy <= c3y0 && c3y1 <= hiy && u3 {
				r3[m3] = qi
				m3++
			} else {
				l3[n3] = qi
				n3++
			}
		}
	}
	sc.visited += 4 * na
	sc.added += m0 + m1 + m2 + m3
	lv.desc[0], lv.desc[1], lv.desc[2], lv.desc[3] = l0[:n0], l1[:n1], l2[:n2], l3[:n3]
	lv.ret[0], lv.ret[1], lv.ret[2], lv.ret[3] = r0[:m0], r1[:m1], r2[:m2], r3[:m3]

	// Process children in order: walk child j's retire list (each entry a
	// single est load, exactly the per-query pre-classified pop) and then
	// its subtree. Child j's contributions — retirements and subtree alike
	// — land before child j+1's for every query, which is precisely the
	// per-query stack's pop order.
	acc := sc.acc
	for j := 0; j < 4; j++ {
		if rl := lv.ret[j]; len(rl) > 0 {
			est := nodes[cs+j][4]
			for _, qi := range rl {
				acc[qi] += est
			}
		}
		l := lv.desc[j]
		if len(l) > batchThinList {
			s.batchNode(sc, cs+j, d+1, l)
		} else {
			for _, qi := range l {
				s.batchSingle(sc, cs+j, d+1, qi)
			}
		}
	}
}

// batchThinList is the active-list length at or below which a subtree is
// finished with per-query walks instead of node-major list processing.
// Once a list has thinned this far the child records are no longer shared
// across enough queries to pay for the list bookkeeping; the walks run
// back to back over the same (now cache-resident) subtree, so locality is
// kept either way. Purely a scheduling choice: answers and statistics are
// identical on both sides of the threshold.
const batchThinList = 3

// batchSingle finishes one query's traversal below a node its parent
// classified as partial — the per-query engine's explicit-stack loop
// (queryIter), restarted mid-tree. It is bit-identical by construction:
// the same classification tests, the same push order, and the same
// running-sum accumulation the per-query stack performs, continued on the
// query's accumulator. The parent already accounted the entry node's
// visit, so the counter starts at -1 to cancel the first pop.
func (s *Slab) batchSingle(sc *batchScratch, idx, d int, qi int32) {
	nodes := s.nodes
	height := s.height
	allUsable, hasPruned := s.allUsable, s.hasPruned
	q := sc.qb[qi]
	stk := append(sc.stack[:0], int32(idx<<5|d<<1))
	sum := sc.acc[qi]
	visited, added, partials := -1, 0, 0
	for len(stk) > 0 {
		if sc.cancel.tick(1) {
			break // deadline fired: the caller discards the partial batch
		}
		e := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		visited++
		if e&slabAddWhole != 0 {
			added++
			sum += nodes[e>>1][4]
			continue
		}
		i := int(e >> 5)
		dd := int(e>>1) & 0xF
		if dd == height || (hasPruned && s.pruned.get(i)) {
			if !(allUsable || s.usable.get(i)) {
				continue
			}
			nd := &nodes[i]
			added++
			partials++
			sum += nd[4] * overlapFraction(nd, q)
			continue
		}
		cs := int(s.offsets[dd+1]) + (i-int(s.offsets[dd]))*4
		cd := (dd + 1) << 1
		for j := 3; j >= 0; j-- {
			c := cs + j
			cr := &nodes[c]
			if cr[0] >= q.Hi.X || q.Lo.X >= cr[2] || cr[1] >= q.Hi.Y || q.Lo.Y >= cr[3] {
				visited++
				continue
			}
			if q.Lo.X <= cr[0] && cr[2] <= q.Hi.X && q.Lo.Y <= cr[1] && cr[3] <= q.Hi.Y &&
				(allUsable || s.usable.get(c)) {
				stk = append(stk, int32(c<<1|slabAddWhole))
				continue
			}
			stk = append(stk, int32(c<<5|cd))
		}
	}
	sc.stack = stk
	sc.acc[qi] = sum
	sc.visited += visited
	sc.added += added
	sc.partials += partials
}
