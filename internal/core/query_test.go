package core

import (
	"math"
	"testing"

	"psd/internal/budget"
	"psd/internal/geom"
	"psd/internal/rng"
)

// With zero noise and exact medians, Query must equal TrueAnswer for every
// query and every decomposition family: both run the same canonical
// recursion over identical estimates. This pins the query engine to the
// exact reference implementation across the whole design space.
func TestNonPrivateQueryMatchesTrueAnswerAllKinds(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(4096, dom, 31)
	kinds := []Kind{Quadtree, KD, Hybrid, HilbertR, KDCell, KDNoisyMean, PrivTree}
	src := rng.New(32)
	for _, kind := range kinds {
		cfg := Config{Kind: kind, Height: 3, NonPrivate: true, HilbertOrder: 10, CellSize: 1}
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for trial := 0; trial < 100; trial++ {
			x1, x2 := src.UniformIn(-5, 69), src.UniformIn(-5, 69)
			y1, y2 := src.UniformIn(-5, 69), src.UniformIn(-5, 69)
			if x2 < x1 {
				x1, x2 = x2, x1
			}
			if y2 < y1 {
				y1, y2 = y2, y1
			}
			q := geom.NewRect(x1, y1, x2, y2)
			got, want := p.Query(q), p.TrueAnswer(q)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("%v: query %v = %v, true recursion %v", kind, q, got, want)
			}
		}
	}
}

// The exact full-domain count is preserved by every non-private build: no
// family loses or duplicates points during structure construction.
func TestNoKindLosesPoints(t *testing.T) {
	dom := geom.NewRect(-10, -10, 10, 10)
	pts := randomPoints(2500, dom, 33)
	for _, kind := range []Kind{Quadtree, KD, Hybrid, HilbertR, KDCell, KDNoisyMean, PrivTree} {
		p, err := Build(pts, dom, Config{Kind: kind, Height: 3, NonPrivate: true, HilbertOrder: 9, CellSize: 0.5})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := p.Arena().Root().True; got != 2500 {
			t.Errorf("%v: root holds %v points, want 2500", kind, got)
		}
		// Leaf counts sum to the total as well.
		var sum float64
		for k := 0; k < p.Arena().NumLeaves(); k++ {
			sum += p.Arena().Nodes[p.Arena().LeafIndex(k)].True
		}
		if sum != 2500 {
			t.Errorf("%v: leaves hold %v points, want 2500", kind, sum)
		}
	}
}

func TestQueryOutsideDomainIsZero(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	pts := randomPoints(500, dom, 34)
	for _, kind := range []Kind{Quadtree, HilbertR} {
		p, err := Build(pts, dom, Config{Kind: kind, Height: 2, NonPrivate: true, HilbertOrder: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Query(geom.NewRect(100, 100, 200, 200)); got != 0 {
			t.Errorf("%v: disjoint query = %v", kind, got)
		}
	}
}

func TestHilbertDegenerateRangesAreHarmless(t *testing.T) {
	// All points identical: after a few splits most Hilbert ranges are
	// empty and their rects degenerate. Build and query must stay sane.
	dom := geom.NewRect(0, 0, 10, 10)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: 5, Y: 5}
	}
	p, err := Build(pts, dom, Config{Kind: HilbertR, Height: 3, Epsilon: 1, Seed: 35, HilbertOrder: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Arena().Root().True; got != 100 {
		t.Errorf("root = %v, want 100", got)
	}
	// The full domain finds everything. A tight query around the mass may
	// legitimately undercount: the mass's leaf bbox can be much larger than
	// the point cluster and the uniformity assumption spreads the count
	// over it — exactly the Hilbert R-tree failure mode Section 8.2 reports
	// ("comparably good performance on some queries, much higher errors on
	// others"). We only require sanity, not accuracy, here.
	got := p.Query(geom.NewRect(-1, -1, 11, 11))
	if math.Abs(got-100) > 30 {
		t.Errorf("full-domain query = %v, want ≈ 100", got)
	}
	if tight := p.Query(geom.NewRect(4, 4, 6, 6)); tight < 0 || tight > 200 {
		t.Errorf("point-mass query = %v, want sane", tight)
	}
}

func TestQueryStatsAccounting(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	pts := gridPoints(16, dom)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 2, NonPrivate: true})
	if err != nil {
		t.Fatal(err)
	}
	_, st := p.QueryWithStats(geom.NewRect(0, 0, 16, 16))
	if st.NodesAdded != 1 || st.NodesVisited != 1 {
		t.Errorf("full-domain stats = %+v, want 1 node", st)
	}
	_, st = p.QueryWithStats(geom.NewRect(0.1, 0.1, 15.9, 15.9))
	if st.PartialLeaves == 0 || st.NodesVisited <= st.NodesAdded {
		t.Errorf("interior-query stats implausible: %+v", st)
	}
}

// Query error decreases monotonically (statistically) as epsilon grows —
// the privacy/utility dial works end to end.
func TestErrorShrinksWithEpsilon(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := gridPoints(64, dom)
	q := geom.NewRect(3, 3, 30, 27)
	meanErr := func(eps float64) float64 {
		var sum float64
		const trials = 25
		for s := int64(0); s < trials; s++ {
			p, err := Build(pts, dom, Config{
				Kind: Quadtree, Height: 4, Epsilon: eps, Seed: 600 + s,
				Strategy: budget.Geometric{}, PostProcess: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(p.Query(q) - p.TrueAnswer(q))
		}
		return sum / trials
	}
	e1, e2, e3 := meanErr(0.05), meanErr(0.5), meanErr(5)
	if !(e3 < e2 && e2 < e1) {
		t.Errorf("errors should fall with eps: %v, %v, %v", e1, e2, e3)
	}
}
