package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"psd/internal/budget"
	"psd/internal/geom"
)

func TestReleaseRoundTrip(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(4096, dom, 21)
	orig, err := Build(pts, dom, Config{
		Kind: Hybrid, Height: 4, Epsilon: 0.5, Seed: 3,
		PostProcess: true, PruneThreshold: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.Release().WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	rel, err := ReadRelease(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenRelease(rel)
	if err != nil {
		t.Fatal(err)
	}
	// Queries through the reopened release match the original exactly.
	queries := []geom.Rect{
		dom,
		geom.NewRect(10, 10, 40, 60),
		geom.NewRect(0, 0, 1, 1),
		geom.NewRect(99, 99, 100, 100),
	}
	for _, q := range queries {
		a, b := orig.Query(q), reopened.Query(q)
		if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
			t.Errorf("query %v: original %v, reopened %v", q, a, b)
		}
	}
	// Metadata survives.
	if reopened.Kind() != orig.Kind() {
		t.Errorf("kind = %v, want %v", reopened.Kind(), orig.Kind())
	}
	if math.Abs(reopened.PrivacyCost()-orig.PrivacyCost()) > 1e-9 {
		t.Errorf("privacy cost = %v, want %v", reopened.PrivacyCost(), orig.PrivacyCost())
	}
	// Pruned regions survive: the effective leaf sets agree.
	ra, ca := orig.LeafRegions()
	rb, cb := reopened.LeafRegions()
	if len(ra) != len(rb) {
		t.Fatalf("leaf regions: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] || math.Abs(ca[i]-cb[i]) > 1e-9 {
			t.Fatalf("region %d mismatch", i)
		}
	}
}

func TestReleaseLeafOnlyRoundTrip(t *testing.T) {
	// Releases without post-processing publish only some levels; the
	// reopened tree must still answer by descending to published nodes.
	dom := geom.NewRect(0, 0, 16, 16)
	pts := gridPoints(16, dom)
	orig, err := Build(pts, dom, Config{
		Kind: Quadtree, Height: 2, Epsilon: 4, Seed: 5,
		Strategy: budget.LeafOnly{},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.Release().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rel, err := ReadRelease(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenRelease(rel)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(0, 0, 8, 8)
	if a, b := orig.Query(q), reopened.Query(q); math.Abs(a-b) > 1e-9 {
		t.Errorf("leaf-only query: original %v, reopened %v", a, b)
	}
}

func TestReleaseCarriesNoTrueCounts(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	pts := randomPoints(1000, dom, 22)
	p, err := Build(pts, dom, Config{Kind: Quadtree, Height: 2, Epsilon: 0.5, Seed: 7, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Release().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The serialized artifact must not contain the exact root count — a
	// crude but effective leak check (the true count is an integer; the
	// noisy estimates almost surely are not).
	exact := p.Arena().Root().True
	if exact != 1000 {
		t.Fatalf("unexpected root count %v", exact)
	}
	if strings.Contains(buf.String(), `"true"`) {
		t.Error("release JSON contains a field named true")
	}
	rel, _ := ReadRelease(bytes.NewReader(buf.Bytes()))
	reopened, _ := OpenRelease(rel)
	for i := range reopened.Arena().Nodes {
		if reopened.Arena().Nodes[i].True != 0 {
			t.Fatal("reopened release has exact counts")
		}
	}
}

func TestOpenReleaseValidation(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	pts := randomPoints(100, dom, 23)
	p, _ := Build(pts, dom, Config{Kind: Quadtree, Height: 1, Epsilon: 1, Seed: 1})
	good := p.Release()

	bad := *good
	bad.Version = 99
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("bad version should error")
	}
	bad = *good
	bad.Fanout = 2
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("bad fanout should error")
	}
	bad = *good
	bad.Rects = bad.Rects[:1]
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("truncated rects should error")
	}
	bad = *good
	bad.Kind = "mystery"
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("unknown kind should error")
	}
	bad = *good
	bad.Pruned = []int{999}
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("out-of-range pruned index should error")
	}
	bad = *good
	nan := math.NaN()
	bad.Counts = append([]*float64{}, good.Counts...)
	bad.Counts[0] = &nan
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("NaN count should error")
	}
	bad = *good
	bad.Rects = append([][4]float64{}, good.Rects...)
	bad.Rects[0] = [4]float64{5, 5, 1, 1}
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("inverted rect should error")
	}
	bad = *good
	bad.Rects = append([][4]float64{}, good.Rects...)
	bad.Rects[1] = [4]float64{0, 0, math.Inf(1), 1}
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("non-finite rect should error")
	}
	bad = *good
	bad.Epsilon = math.Inf(1)
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("non-finite epsilon should error")
	}
	bad = *good
	bad.Epsilon = -1
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("negative epsilon should error")
	}
	bad = *good
	bad.Domain = [4]float64{0, 0, math.NaN(), 10}
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("non-finite domain should error")
	}
	bad = *good
	bad.Domain = [4]float64{10, 10, 0, 0}
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("inverted domain should error")
	}
	bad = *good
	bad.Pruned = []int{1, 1}
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("duplicate pruned index should error")
	}
	bad = *good
	bad.Height = -1
	if _, err := OpenRelease(&bad); err == nil {
		t.Error("negative height should error")
	}
	if _, err := ReadRelease(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON should error")
	}
	// A huge declared height with a tiny rects array must be rejected by the
	// pre-allocation length check, not by attempting to size the arena.
	if _, err := ReadRelease(strings.NewReader(
		`{"version":1,"kind":"quadtree","epsilon":1,"fanout":4,"height":12,` +
			`"domain":[0,0,1,1],"rects":[[0,0,1,1]],"counts":[1]}`)); err == nil {
		t.Error("height/length mismatch should error")
	}
	if _, err := ReadRelease(strings.NewReader(
		`{"version":1,"kind":"quadtree","epsilon":1,"fanout":4,"height":30,` +
			`"domain":[0,0,1,1],"rects":[],"counts":[]}`)); err == nil {
		t.Error("absurd height should error")
	}
}

func TestBuildRejectsNonFinitePoints(t *testing.T) {
	dom := geom.NewRect(0, 0, 10, 10)
	for _, p := range []geom.Point{
		{X: math.NaN(), Y: 1},
		{X: 1, Y: math.Inf(1)},
	} {
		if _, err := Build([]geom.Point{p}, dom, Config{Kind: Quadtree, Height: 1, Epsilon: 1}); err == nil {
			t.Errorf("point %v should be rejected", p)
		}
	}
}
