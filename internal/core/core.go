// Package core implements the paper's primary contribution: private spatial
// decompositions (PSDs). A PSD is a complete fanout-4 tree over a 2-D
// domain whose node rectangles describe a hierarchical partition of space
// and whose node counts are released under ε-differential privacy.
//
// The package provides every member of the paper's design space:
//
//   - Quadtree (Section 3.3): data-independent midpoint splits; the whole
//     budget goes to counts.
//   - KD (Section 6): data-dependent private-median splits, built as a
//     binary kd-tree flattened to fanout 4 (Section 6.2, "flattening the
//     kd-tree"); the budget is split between medians and counts.
//   - Hybrid (Section 3.2): kd splits for the first SwitchLevel flattened
//     levels, then quadtree (midpoint) splits below.
//   - HilbertR (Sections 3.2-3.3): a one-dimensional kd-tree over Hilbert
//     values whose node rectangles are the data-independent bounding boxes
//     of each node's Hilbert index range.
//   - KDCell (Xiao et al. [26]): split points read off a fixed-resolution
//     noisy grid released once; the grid is the only structural spend.
//   - KDNoisyMean (Inan et al. [12]): kd splits by the noisy-mean surrogate.
//
// All variants share the same count pipeline: per-level Laplace budgets from
// a budget.Strategy (uniform, geometric, leaf-only, ...), optional OLS
// post-processing (Section 5), optional pruning (Section 7), and the
// canonical range-query algorithm with the uniformity assumption
// (Section 4.1).
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"psd/internal/budget"
	"psd/internal/dp"
	"psd/internal/geom"
	"psd/internal/median"
	"psd/internal/rng"
	"psd/internal/tree"
)

// Kind selects the decomposition family.
type Kind int

// The decomposition families of the paper's design space.
const (
	Quadtree Kind = iota
	KD
	Hybrid
	HilbertR
	KDCell
	KDNoisyMean
	// PrivTree is the adaptive decomposition of Zhang et al. (SIGMOD 2016):
	// midpoint (quadtree) geometry whose recursion depth is data-adaptive —
	// a node splits while its depth-decayed noisy count exceeds a threshold,
	// at a privacy cost independent of the depth. Internally it is a
	// complete quadtree of the configured Height in which non-split
	// subtrees are structurally present but unpublished, so the release,
	// slab and batch paths serve it unchanged.
	PrivTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Quadtree:
		return "quadtree"
	case KD:
		return "kd"
	case Hybrid:
		return "kd-hybrid"
	case HilbertR:
		return "hilbert-r"
	case KDCell:
		return "kd-cell"
	case KDNoisyMean:
		return "kd-noisymean"
	case PrivTree:
		return "privtree"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DataDependent reports whether the kind spends budget on structure.
func (k Kind) DataDependent() bool { return k != Quadtree }

// Config controls a Build. The zero value is not usable: Height and Epsilon
// must be set. Every other field has a sensible default (see field docs).
type Config struct {
	// Kind selects the decomposition family. Default Quadtree.
	Kind Kind

	// Height is the fanout-4 tree height h; the tree has h+1 count levels
	// and 4^h leaves. Required.
	Height int

	// Epsilon is the total privacy budget ε for the release. Required.
	// Set NonPrivate to build the exact baselines instead.
	Epsilon float64

	// Strategy allocates the count budget across levels. Default
	// budget.Geometric{} (the paper's recommendation).
	Strategy budget.Strategy

	// CountFraction is the share of ε given to counts; the rest funds the
	// structure (medians or the kd-cell grid). Defaults: 1.0 for quadtrees,
	// 0.7 for every data-dependent kind (the εcount = 0.7ε / εmedian = 0.3ε
	// division Section 8.2 settles on). Must be in (0, 1].
	CountFraction float64

	// Median finds private split points for data-dependent kinds. Default:
	// the exponential mechanism (the paper's recommendation), seeded from
	// Seed. KDNoisyMean ignores this and always uses the noisy mean.
	Median median.Finder

	// SwitchLevel is the number of data-dependent flattened levels ℓ of a
	// Hybrid tree before switching to midpoint splits. Default: Height/2
	// (the paper found switching about half-way down works best). Ignored
	// by other kinds.
	SwitchLevel int

	// PostProcess runs the OLS post-processing of Section 5. Default false;
	// the presets in psd.go turn it on where the paper does.
	PostProcess bool

	// PruneThreshold is the Section 7 pruning threshold m: after
	// post-processing, subtrees under nodes with estimated count below m
	// are cut. Zero disables pruning.
	PruneThreshold float64

	// Noise perturbs counts. Default: the Laplace mechanism seeded from
	// Seed.
	Noise dp.NoiseSource

	// Seed makes the build deterministic. Two builds with equal Config and
	// data produce identical trees.
	Seed int64

	// HilbertOrder is the curve order for HilbertR (default 18, the paper's
	// choice; Section 8.2 found orders 16-24 equivalent).
	HilbertOrder uint

	// Lambda is the PrivTree splitting-noise scale λ (PrivTree only). Zero
	// calibrates it from the structure budget — λ = (2β−1)/((β−1)·ε_struct)
	// with β = 4, the smallest scale Zhang et al.'s Theorem 1 permits — so
	// the decomposition consumes exactly ε_struct. An explicit positive
	// Lambda overrides the calibration; StructureCost then reports the ε
	// that scale actually consumes, which may differ from ε_struct.
	Lambda float64

	// Theta is the PrivTree split threshold θ (PrivTree only): a node
	// splits while its depth-decayed noisy count exceeds it. θ spends no
	// privacy; the default 0 is the paper's choice.
	Theta float64

	// CellSize is the kd-cell grid cell edge length in domain units
	// (default: the paper's 0.01 scaled to the domain — domain width/2182,
	// matching 0.01 degrees over the TIGER bounding box — capped so the
	// grid stays within grid.MaxCells).
	CellSize float64

	// NonPrivate builds the exact baselines of Section 8.2: no count noise
	// and (for data-dependent kinds) exact medians. Epsilon is ignored.
	// With TrueCountsOnly unset this is "kd-pure"/quad with exact counts;
	// see TrueMedians for "kd-true".
	NonPrivate bool

	// TrueMedians uses exact medians but keeps count noise — the paper's
	// kd-true baseline ("exact medians but noisy counts"). The whole ε then
	// funds counts.
	TrueMedians bool

	// Parallelism bounds the number of worker goroutines Build uses across
	// all phases (subtree construction, the noisy-count release, OLS
	// post-processing and pruning). Zero means one worker per available
	// core (runtime.GOMAXPROCS); 1 forces a fully sequential build. The
	// released tree is byte-identical at every setting for a fixed Seed.
	// Negative values are an error.
	Parallelism int
}

// withDefaults returns a copy of c with defaults filled in, or an error if
// required fields are missing or inconsistent.
func (c Config) withDefaults(domain geom.Rect) (Config, error) {
	if c.Height < 0 {
		return c, fmt.Errorf("core: negative height %d", c.Height)
	}
	if c.Height > 13 {
		return c, fmt.Errorf("core: height %d too large (4^%d leaves)", c.Height, c.Height)
	}
	if !c.NonPrivate {
		if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
			return c, fmt.Errorf("core: invalid epsilon %v", c.Epsilon)
		}
	}
	if domain.Empty() {
		return c, fmt.Errorf("core: empty domain %v", domain)
	}
	if c.Parallelism < 0 {
		return c, fmt.Errorf("core: negative parallelism %d", c.Parallelism)
	}
	if c.Kind == PrivTree {
		if c.Lambda < 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
			return c, fmt.Errorf("core: invalid privtree lambda %v", c.Lambda)
		}
		if math.IsNaN(c.Theta) || math.IsInf(c.Theta, 0) {
			return c, fmt.Errorf("core: invalid privtree theta %v", c.Theta)
		}
		if c.PruneThreshold > 0 {
			return c, fmt.Errorf("core: privtree does not support PruneThreshold " +
				"(its adaptive stopping rule is the pruning; tune Theta instead)")
		}
		// OLS post-processing models one Laplace release per level; PrivTree
		// publishes a single release over the adaptive leaf partition, so the
		// per-level model does not apply and the flag is ignored. (Leaving it
		// set would also mark every node usable, including the unpublished
		// interior whose estimate is zero.)
		c.PostProcess = false
	} else if c.Lambda != 0 || c.Theta != 0 {
		return c, fmt.Errorf("core: Lambda/Theta apply only to PrivTree (kind %v)", c.Kind)
	}
	if c.Strategy == nil {
		c.Strategy = budget.Geometric{}
	}
	if c.CountFraction == 0 {
		if c.Kind.DataDependent() && !c.NonPrivate && !c.TrueMedians {
			c.CountFraction = 0.7
		} else {
			c.CountFraction = 1.0
		}
	}
	if c.CountFraction < 0 || c.CountFraction > 1 {
		return c, fmt.Errorf("core: count fraction %v outside (0,1]", c.CountFraction)
	}
	if !c.Kind.DataDependent() || c.NonPrivate || c.TrueMedians {
		c.CountFraction = 1.0
	}
	if c.Median == nil {
		c.Median = &median.EM{Src: rng.New(c.Seed ^ 0x6d656469616e)}
	}
	if c.NonPrivate || c.TrueMedians {
		c.Median = median.Exact{}
	}
	if c.Kind == KDNoisyMean && !c.NonPrivate && !c.TrueMedians {
		c.Median = &median.NM{Src: rng.New(c.Seed ^ 0x6e6d)}
	}
	if c.Kind == Hybrid && c.SwitchLevel == 0 {
		c.SwitchLevel = (c.Height + 1) / 2
	}
	if c.SwitchLevel < 0 || c.SwitchLevel > c.Height {
		return c, fmt.Errorf("core: switch level %d outside [0,%d]", c.SwitchLevel, c.Height)
	}
	if c.Noise == nil {
		if c.NonPrivate {
			c.Noise = dp.ZeroNoise{}
		} else {
			// A StreamNoise source: node i draws from stream i, so the
			// release is identical however the level sweep is scheduled.
			c.Noise = dp.NewSeededLaplace(c.Seed ^ 0x636f756e74)
		}
	}
	if c.HilbertOrder == 0 {
		c.HilbertOrder = 18
	}
	if c.CellSize == 0 {
		c.CellSize = domain.Width() / 2182 // ≈ 0.01 degrees on the TIGER box
	}
	if c.CellSize < 0 {
		return c, fmt.Errorf("core: negative cell size %v", c.CellSize)
	}
	return c, nil
}

// BuildStats reports what a Build did.
type BuildStats struct {
	// Duration is the wall-clock build time.
	Duration time.Duration
	// MedianCalls counts private median computations.
	MedianCalls int
	// PrunedSubtrees counts nodes whose descendants were cut.
	PrunedSubtrees int
	// Points is the number of data points indexed.
	Points int
}

// PSD is a built private spatial decomposition.
type PSD struct {
	kind    Kind
	arena   *tree.Tree
	domain  geom.Rect
	epsilon float64
	// countEps[i] is the count budget of level i (leaves are level 0).
	countEps []float64
	// structEps is the total per-path structural spend (medians or grid).
	structEps     float64
	postProcessed bool
	pruneAt       float64
	stats         BuildStats
	// effLeaves is the number of effective leaf regions (actual leaves plus
	// pruned subtree roots); LeafRegions pre-sizes its output with it.
	effLeaves int
	// medianCalls accumulates across build workers; Stats() reads the
	// settled value.
	medianCalls atomic.Int64
	// stacks pools query DFS stacks so single queries are allocation-free.
	stacks sync.Pool
	// sealOnce/sealed cache the flat slab the batch query path answers
	// through (Sealed); the arena remains the source of truth.
	sealOnce sync.Once
	sealed   *Slab
}

// Kind returns the decomposition family.
func (p *PSD) Kind() Kind { return p.kind }

// Domain returns the indexed domain rectangle.
func (p *PSD) Domain() geom.Rect { return p.domain }

// Height returns the tree height.
func (p *PSD) Height() int { return p.arena.Height() }

// Fanout returns the tree fanout (always 4; Section 6.2 flattens kd-trees
// so every PSD compares at equal fanout).
func (p *PSD) Fanout() int { return p.arena.Fanout() }

// Len returns the number of tree nodes.
func (p *PSD) Len() int { return p.arena.Len() }

// Stats returns build statistics.
func (p *PSD) Stats() BuildStats { return p.stats }

// SetBuildDuration records the wall-clock build time observed by the
// caller. Build itself never reads a clock — core must stay free of
// wall-clock inputs so rebuilds are byte-identical — so the timing
// observation lives with whoever invoked Build.
func (p *PSD) SetBuildDuration(d time.Duration) { p.stats.Duration = d }

// CountBudgets returns a copy of the per-level count budgets ε_i (leaves
// first).
func (p *PSD) CountBudgets() []float64 {
	out := make([]float64, len(p.countEps))
	copy(out, p.countEps)
	return out
}

// PrivacyCost returns the total ε consumed along any root-to-leaf path —
// the privacy guarantee of the release (Section 6.2): the structural spend
// plus the sum of per-level count budgets.
func (p *PSD) PrivacyCost() float64 {
	var sum float64
	for _, e := range p.countEps {
		sum += e
	}
	return sum + p.structEps
}

// StructureCost returns the per-path ε spent on the tree structure.
func (p *PSD) StructureCost() float64 { return p.structEps }

// PostProcessed reports whether OLS post-processing ran.
func (p *PSD) PostProcessed() bool { return p.postProcessed }

// Arena exposes the underlying complete tree. It is intended for the
// evaluation harness and tools in this module; mutating it invalidates the
// PSD.
func (p *PSD) Arena() *tree.Tree { return p.arena }
