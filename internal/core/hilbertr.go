package core

import (
	"math"

	"psd/internal/geom"
	"psd/internal/hilbert"
	"psd/internal/tree"
)

// buildHilbertTree constructs the private Hilbert R-tree of Sections
// 3.2-3.3: points are mapped to their Hilbert values, a one-dimensional
// kd-tree over the values is built with private median splits (flattened to
// fanout 4 like the 2-D kd-trees), and each node's rectangle is the exact
// bounding box of its Hilbert index range — a data-independent function of
// the range, so rectangles cost no budget beyond the medians that chose the
// ranges.
//
// Per root-to-leaf path, each flattened level spends two median budgets
// (the value split plus the relevant sub-split), identical to the kd
// accounting.
func buildHilbertTree(arena *tree.Tree, pts []geom.Point, domain geom.Rect, cfg Config, epsStruct float64, p *PSD) error {
	mapper, err := hilbert.NewMapper(cfg.HilbertOrder, domain)
	if err != nil {
		return err
	}
	vals := make([]float64, len(pts))
	for i, pt := range pts {
		// Hilbert indices up to 4^31 are exactly representable in float64
		// only through order 26; the default order 18 is far inside that.
		vals[i] = float64(mapper.Index(pt))
	}
	var epsPer float64
	if cfg.Height > 0 && epsStruct > 0 {
		epsPer = epsStruct / float64(2*cfg.Height)
		p.structEps = epsStruct
	}
	total := float64(mapper.Curve().NumCells())

	rect := func(lo, hi float64) (geom.Rect, error) {
		// The node owns integer Hilbert values in [ceil(lo), ceil(hi)-1].
		a := uint64(math.Ceil(lo))
		bf := math.Ceil(hi) - 1
		if bf < float64(a) {
			// No whole index falls in the interval: a degenerate, zero-area
			// rectangle that never matches queries (the node is empty).
			corner := geom.Point{X: domain.Lo.X, Y: domain.Lo.Y}
			return geom.Rect{Lo: corner, Hi: corner}, nil
		}
		return mapper.RangeBounds(a, uint64(bf))
	}

	rootRect, err := rect(0, total)
	if err != nil {
		return err
	}
	arena.Nodes[0].Rect = rootRect

	var rec func(idx int, vals []float64, lo, hi float64) error
	rec = func(idx int, vals []float64, lo, hi float64) error {
		n := &arena.Nodes[idx]
		n.True = float64(len(vals))
		if arena.IsLeaf(idx) {
			return nil
		}
		// Flattened binary splits: m1 over [lo,hi), then m2 over [lo,m1)
		// and m3 over [m1,hi).
		m1, err := splitValue(cfg, vals, lo, hi, epsPer, p)
		if err != nil {
			return err
		}
		mid := partitionValues(vals, m1)
		left, right := vals[:mid], vals[mid:]
		m2, err := splitValue(cfg, left, lo, m1, epsPer, p)
		if err != nil {
			return err
		}
		m3, err := splitValue(cfg, right, m1, hi, epsPer, p)
		if err != nil {
			return err
		}
		midL := partitionValues(left, m2)
		midR := partitionValues(right, m3)

		bounds := [5]float64{lo, m2, m1, m3, hi}
		cs := arena.ChildStart(idx)
		for j := 0; j < 4; j++ {
			r, rerr := rect(bounds[j], bounds[j+1])
			if rerr != nil {
				return rerr
			}
			arena.Nodes[cs+j].Rect = r
		}
		if err := rec(cs+0, left[:midL], bounds[0], bounds[1]); err != nil {
			return err
		}
		if err := rec(cs+1, left[midL:], bounds[1], bounds[2]); err != nil {
			return err
		}
		if err := rec(cs+2, right[:midR], bounds[2], bounds[3]); err != nil {
			return err
		}
		return rec(cs+3, right[midR:], bounds[3], bounds[4])
	}
	return rec(0, vals, 0, total)
}

// splitValue runs the configured median finder over one-dimensional Hilbert
// values, clamping the result into (lo, hi) so child intervals stay nested.
func splitValue(cfg Config, vals []float64, lo, hi, eps float64, p *PSD) (float64, error) {
	if hi <= lo {
		return lo, nil
	}
	p.stats.MedianCalls++
	m, err := cfg.Median.Median(vals, lo, hi, eps)
	if err != nil {
		return 0, err
	}
	if m < lo {
		m = lo
	}
	if m > hi {
		m = hi
	}
	return m, nil
}

// partitionValues reorders vals so entries < split come first, returning
// their count.
func partitionValues(vals []float64, split float64) int {
	i, j := 0, len(vals)
	for i < j {
		if vals[i] < split {
			i++
			continue
		}
		j--
		vals[i], vals[j] = vals[j], vals[i]
	}
	return i
}
