package core

import (
	"math"

	"psd/internal/geom"
	"psd/internal/hilbert"
	"psd/internal/median"
	"psd/internal/rng"
	"psd/internal/tree"
)

// buildHilbertTree constructs the private Hilbert R-tree of Sections
// 3.2-3.3: points are mapped to their Hilbert values, a one-dimensional
// kd-tree over the values is built with private median splits (flattened to
// fanout 4 like the 2-D kd-trees), and each node's rectangle is the exact
// bounding box of its Hilbert index range — a data-independent function of
// the range, so rectangles cost no budget beyond the medians that chose the
// ranges.
//
// Per root-to-leaf path, each flattened level spends two median budgets
// (the value split plus the relevant sub-split), identical to the kd
// accounting. Like the partition-tree builder, subtrees fan out across a
// worker pool with per-node randomness streams, so the parallel build
// releases the same tree as a sequential one.
func buildHilbertTree(arena *tree.Tree, pts []geom.Point, domain geom.Rect, cfg Config, epsStruct float64, p *PSD, workers int) error {
	mapper, err := hilbert.NewMapper(cfg.HilbertOrder, domain)
	if err != nil {
		return err
	}
	vals := make([]float64, len(pts))
	for i, pt := range pts {
		// Hilbert indices up to 4^31 are exactly representable in float64
		// only through order 26; the default order 18 is far inside that.
		vals[i] = float64(mapper.Index(pt))
	}
	hb := &hilbertBuilder{cfg: cfg, psd: p, domain: domain, mapper: mapper}
	if median.Streamable(cfg.Median) {
		hb.sf, _ = cfg.Median.(median.StreamFinder)
	}
	if cfg.Height > 0 && epsStruct > 0 {
		hb.epsPer = epsStruct / float64(2*cfg.Height)
		p.structEps = epsStruct
	}
	total := float64(mapper.Curve().NumCells())

	rootRect, err := hb.rect(0, total)
	if err != nil {
		return err
	}
	arena.Nodes[0].Rect = rootRect

	if hb.sf == nil {
		workers = 1
	}
	var sc median.Scratch
	if workers <= 1 || arena.Height() == 0 {
		return hb.buildSubtree(arena, 0, vals, 0, total, &sc)
	}
	queue := []hilbertTask{{idx: 0, vals: vals, lo: 0, hi: total}}
	for len(queue) > 0 && len(queue) < 4*workers {
		t := queue[0]
		queue = queue[1:]
		if arena.IsLeaf(t.idx) {
			arena.Nodes[t.idx].True = float64(len(t.vals))
			continue
		}
		kids, err := hb.expandNode(arena, t, &sc)
		if err != nil {
			return err
		}
		queue = append(queue, kids[:]...)
	}
	return runTasks(workers, queue, func(t hilbertTask, wsc *median.Scratch) error {
		return hb.buildSubtree(arena, t.idx, t.vals, t.lo, t.hi, wsc)
	})
}

// hilbertTask is one pending subtree over a Hilbert value range [lo, hi).
type hilbertTask struct {
	idx    int
	vals   []float64
	lo, hi float64
}

type hilbertBuilder struct {
	cfg    Config
	sf     median.StreamFinder // nil forces the sequential legacy path
	epsPer float64
	psd    *PSD
	domain geom.Rect
	mapper *hilbert.Mapper
}

// rect maps a half-open Hilbert value interval to the bounding box of the
// integer indices it contains.
func (hb *hilbertBuilder) rect(lo, hi float64) (geom.Rect, error) {
	// The node owns integer Hilbert values in [ceil(lo), ceil(hi)-1].
	a := uint64(math.Ceil(lo))
	bf := math.Ceil(hi) - 1
	if bf < float64(a) {
		// No whole index falls in the interval: a degenerate, zero-area
		// rectangle that never matches queries (the node is empty).
		corner := geom.Point{X: hb.domain.Lo.X, Y: hb.domain.Lo.Y}
		return geom.Rect{Lo: corner, Hi: corner}, nil
	}
	return hb.mapper.RangeBounds(a, uint64(bf))
}

func (hb *hilbertBuilder) buildSubtree(arena *tree.Tree, idx int, vals []float64, lo, hi float64, sc *median.Scratch) error {
	if arena.IsLeaf(idx) {
		arena.Nodes[idx].True = float64(len(vals))
		return nil
	}
	kids, err := hb.expandNode(arena, hilbertTask{idx: idx, vals: vals, lo: lo, hi: hi}, sc)
	if err != nil {
		return err
	}
	for _, k := range kids {
		if err := hb.buildSubtree(arena, k.idx, k.vals, k.lo, k.hi, sc); err != nil {
			return err
		}
	}
	return nil
}

// expandNode performs one flattened fanout-4 expansion over a value range:
// m1 over [lo,hi), then m2 over [lo,m1) and m3 over [m1,hi).
func (hb *hilbertBuilder) expandNode(arena *tree.Tree, t hilbertTask, sc *median.Scratch) ([4]hilbertTask, error) {
	var out [4]hilbertTask
	arena.Nodes[t.idx].True = float64(len(t.vals))
	m1, err := hb.splitValue(t.idx, 0, t.vals, t.lo, t.hi, sc)
	if err != nil {
		return out, err
	}
	mid := partitionValues(t.vals, m1)
	left, right := t.vals[:mid], t.vals[mid:]
	m2, err := hb.splitValue(t.idx, 1, left, t.lo, m1, sc)
	if err != nil {
		return out, err
	}
	m3, err := hb.splitValue(t.idx, 2, right, m1, t.hi, sc)
	if err != nil {
		return out, err
	}
	midL := partitionValues(left, m2)
	midR := partitionValues(right, m3)

	bounds := [5]float64{t.lo, m2, m1, m3, t.hi}
	cs := arena.ChildStart(t.idx)
	for j := 0; j < 4; j++ {
		r, rerr := hb.rect(bounds[j], bounds[j+1])
		if rerr != nil {
			return out, rerr
		}
		arena.Nodes[cs+j].Rect = r
	}
	out[0] = hilbertTask{idx: cs + 0, vals: left[:midL], lo: bounds[0], hi: bounds[1]}
	out[1] = hilbertTask{idx: cs + 1, vals: left[midL:], lo: bounds[1], hi: bounds[2]}
	out[2] = hilbertTask{idx: cs + 2, vals: right[:midR], lo: bounds[2], hi: bounds[3]}
	out[3] = hilbertTask{idx: cs + 3, vals: right[midR:], lo: bounds[3], hi: bounds[4]}
	return out, nil
}

// splitValue runs the configured median finder over one-dimensional Hilbert
// values, clamping the result into (lo, hi) so child intervals stay nested.
// The randomness stream is keyed by (node, slot), exactly as in the 2-D
// builder.
func (hb *hilbertBuilder) splitValue(node, slot int, vals []float64, lo, hi float64, sc *median.Scratch) (float64, error) {
	if hi <= lo {
		return lo, nil
	}
	hb.psd.medianCalls.Add(1)
	var m float64
	var err error
	if hb.sf != nil {
		buf := sc.Coords(len(vals))
		copy(buf, vals)
		m, err = hb.sf.MedianAt(rng.At(hb.cfg.Seed, medianStream(node, slot), saltMedian), sc, buf, lo, hi, hb.epsPer)
	} else {
		m, err = hb.cfg.Median.Median(vals, lo, hi, hb.epsPer)
	}
	if err != nil {
		return 0, err
	}
	if m < lo {
		m = lo
	}
	if m > hi {
		m = hi
	}
	return m, nil
}

// partitionValues reorders vals so entries < split come first, returning
// their count.
func partitionValues(vals []float64, split float64) int {
	i, j := 0, len(vals)
	for i < j {
		if vals[i] < split {
			i++
			continue
		}
		j--
		vals[i], vals[j] = vals[j], vals[i]
	}
	return i
}
