package core

import (
	"testing"

	"psd/internal/geom"
	"psd/internal/median"
	"psd/internal/rng"
)

// buildCfgs covers every decomposition family plus the post-processing and
// pruning variations, so the parallel-equals-sequential guarantee is pinned
// across the whole pipeline, not just the structure phase.
func equivalenceConfigs() map[string]Config {
	return map[string]Config{
		"quadtree":      {Kind: Quadtree, Height: 4, Epsilon: 1, Seed: 41, PostProcess: true},
		"kd":            {Kind: KD, Height: 4, Epsilon: 1, Seed: 42, PostProcess: true},
		"kd-hybrid":     {Kind: Hybrid, Height: 4, Epsilon: 1, Seed: 43},
		"hilbert-r":     {Kind: HilbertR, Height: 4, Epsilon: 1, Seed: 44, HilbertOrder: 8},
		"kd-cell":       {Kind: KDCell, Height: 3, Epsilon: 1, Seed: 45, CellSize: 2},
		"kd-noisymean":  {Kind: KDNoisyMean, Height: 3, Epsilon: 1, Seed: 46},
		"kd-nonprivate": {Kind: KD, Height: 3, NonPrivate: true},
		"privtree":      {Kind: PrivTree, Height: 4, Epsilon: 1, Seed: 50},
		"privtree-theta": {Kind: PrivTree, Height: 3, Epsilon: 1, Seed: 51,
			Theta: 16, Lambda: 4},
		"kd-true":     {Kind: KD, Height: 3, Epsilon: 1, Seed: 47, TrueMedians: true},
		"quad-pruned": {Kind: Quadtree, Height: 4, Epsilon: 1, Seed: 48, PostProcess: true, PruneThreshold: 40},
		"kd-sampled": {Kind: KD, Height: 3, Epsilon: 1, Seed: 49,
			Median: &median.Sampled{Inner: &median.EM{}, Rate: 0.5}},
	}
}

func nodesEqual(t *testing.T, name string, a, b *PSD) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: tree sizes differ: %d vs %d", name, a.Len(), b.Len())
	}
	for i := range a.Arena().Nodes {
		if a.Arena().Nodes[i] != b.Arena().Nodes[i] {
			t.Fatalf("%s: node %d differs:\n  %+v\n  %+v",
				name, i, a.Arena().Nodes[i], b.Arena().Nodes[i])
		}
	}
}

// The headline guarantee of the parallel pipeline: for a fixed seed, every
// worker count releases the same tree, byte for byte — rectangles, exact
// counts, noisy counts, post-processed estimates and pruning flags.
func TestParallelBuildIdenticalToSequential(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(6000, dom, 77)
	for name, cfg := range equivalenceConfigs() {
		seq := cfg
		seq.Parallelism = 1
		ref, err := Build(pts, dom, seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		for _, workers := range []int{2, 4, 16} {
			pcfg := cfg
			pcfg.Parallelism = workers
			got, err := Build(pts, dom, pcfg)
			if err != nil {
				t.Fatalf("%s par=%d: %v", name, workers, err)
			}
			nodesEqual(t, name, ref, got)
			if ref.Stats().MedianCalls != got.Stats().MedianCalls {
				t.Errorf("%s par=%d: MedianCalls %d != %d",
					name, workers, got.Stats().MedianCalls, ref.Stats().MedianCalls)
			}
			if ref.Stats().PrunedSubtrees != got.Stats().PrunedSubtrees {
				t.Errorf("%s par=%d: PrunedSubtrees %d != %d",
					name, workers, got.Stats().PrunedSubtrees, ref.Stats().PrunedSubtrees)
			}
		}
	}
}

// Two identical parallel builds must agree with each other (seed
// determinism survives goroutine scheduling).
func TestParallelBuildSeedDeterminism(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(4000, dom, 88)
	for name, cfg := range equivalenceConfigs() {
		cfg.Parallelism = 8
		a, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nodesEqual(t, name, a, b)
	}
}

// seqOnlyFinder hides the stream interface: builds must detect it and fall
// back to the deterministic sequential path instead of racing on its state.
type seqOnlyFinder struct {
	src *rng.Source
}

func (f *seqOnlyFinder) Median(values []float64, lo, hi, eps float64) (float64, error) {
	e := median.EM{Src: f.src}
	return e.Median(values, lo, hi, eps)
}

func (f *seqOnlyFinder) Name() string { return "seq-only" }

// A Sampled wrapper around a legacy inner finder satisfies StreamFinder
// syntactically but delegates to hidden stream state; the build must treat
// it as sequential-only or parallel workers would race on the inner source.
func TestSampledLegacyInnerForcesSequential(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(3000, dom, 100)
	build := func() *PSD {
		cfg := Config{
			Kind: KD, Height: 3, Epsilon: 1, Seed: 6, Parallelism: 8,
			Median: &median.Sampled{Inner: &seqOnlyFinder{src: rng.New(321)}, Src: rng.New(11), Rate: 0.5},
		}
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	nodesEqual(t, "sampled-legacy-inner", build(), build())
}

func TestLegacyFinderForcesSequentialDeterminism(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(3000, dom, 99)
	build := func() *PSD {
		cfg := Config{
			Kind: KD, Height: 3, Epsilon: 1, Seed: 5, Parallelism: 8,
			Median: &seqOnlyFinder{src: rng.New(123)},
		}
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	nodesEqual(t, "seq-only", build(), build())
}

// CountAll must agree exactly with one-at-a-time Query whatever the worker
// count; under -race this also exercises the concurrent read path.
func TestCountAllMatchesQuery(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	pts := randomPoints(5000, dom, 111)
	p, err := Build(pts, dom, Config{Kind: Hybrid, Height: 5, Epsilon: 0.5, Seed: 7, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	qs := make([]geom.Rect, 300)
	for i := range qs {
		x1, x2 := src.UniformIn(-5, 105), src.UniformIn(-5, 105)
		y1, y2 := src.UniformIn(-5, 105), src.UniformIn(-5, 105)
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		qs[i] = geom.NewRect(x1, y1, x2+1e-9, y2+1e-9)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := p.CountAllWorkers(qs, workers)
		if len(got) != len(qs) {
			t.Fatalf("workers=%d: %d answers for %d queries", workers, len(got), len(qs))
		}
		for i, q := range qs {
			if want := p.Query(q); got[i] != want {
				t.Fatalf("workers=%d query %d: CountAll=%v Query=%v", workers, i, got[i], want)
			}
		}
	}
	if out := p.CountAll(nil); len(out) != 0 {
		t.Errorf("CountAll(nil) = %v, want empty", out)
	}
}

// LeafRegions' iterative traversal must reproduce the recursive reference
// order and its capacity pre-sizing must be exact (no realloc, no slack).
func TestLeafRegionsIterativeMatchesRecursive(t *testing.T) {
	dom := geom.NewRect(0, 0, 64, 64)
	pts := randomPoints(4000, dom, 222)
	for _, cfg := range []Config{
		{Kind: Quadtree, Height: 4, Epsilon: 1, Seed: 3, PostProcess: true},
		{Kind: Quadtree, Height: 4, Epsilon: 1, Seed: 3, PostProcess: true, PruneThreshold: 30},
		{Kind: KD, Height: 3, Epsilon: 1, Seed: 4, PostProcess: true, PruneThreshold: 100},
	} {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wantRects []geom.Rect
		var wantCounts []float64
		var rec func(idx int)
		rec = func(idx int) {
			n := &p.arena.Nodes[idx]
			if p.arena.IsLeaf(idx) || n.Pruned {
				wantRects = append(wantRects, n.Rect)
				wantCounts = append(wantCounts, n.Est)
				return
			}
			cs := p.arena.ChildStart(idx)
			for j := 0; j < 4; j++ {
				rec(cs + j)
			}
		}
		rec(0)
		rects, counts := p.LeafRegions()
		if len(rects) != len(wantRects) {
			t.Fatalf("prune=%v: %d regions, want %d", cfg.PruneThreshold, len(rects), len(wantRects))
		}
		for i := range rects {
			if rects[i] != wantRects[i] || counts[i] != wantCounts[i] {
				t.Fatalf("prune=%v: region %d = (%v, %v), want (%v, %v)",
					cfg.PruneThreshold, i, rects[i], counts[i], wantRects[i], wantCounts[i])
			}
		}
		// cap == len proves the pruned-subtree pre-sizing was exact: a short
		// estimate would have forced append to grow (cap > len), a long one
		// would leave slack.
		if cap(rects) != len(rects) || cap(counts) != len(counts) {
			t.Errorf("prune=%v: capacity %d/%d not exact for %d regions",
				cfg.PruneThreshold, cap(rects), cap(counts), len(rects))
		}
	}
}

// A pruned release must round-trip its effective-leaf pre-sizing through
// serialization: OpenRelease recomputes it from the pruned node list.
func TestOpenReleaseLeafRegionPresizing(t *testing.T) {
	dom := geom.NewRect(0, 0, 32, 32)
	pts := randomPoints(2000, dom, 333)
	p, err := Build(pts, dom, Config{
		Kind: Quadtree, Height: 3, Epsilon: 1, Seed: 9,
		PostProcess: true, PruneThreshold: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	re, err := OpenRelease(p.Release())
	if err != nil {
		t.Fatal(err)
	}
	gotR, gotC := re.LeafRegions()
	wantR, wantC := p.LeafRegions()
	if len(gotR) != len(wantR) {
		t.Fatalf("reopened release has %d regions, want %d", len(gotR), len(wantR))
	}
	for i := range gotR {
		if gotR[i] != wantR[i] || gotC[i] != wantC[i] {
			t.Fatalf("region %d differs after round-trip", i)
		}
	}
	if cap(gotR) != len(gotR) {
		t.Errorf("reopened release: capacity %d not exact for %d regions", cap(gotR), len(gotR))
	}
}
