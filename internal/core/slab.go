package core

import (
	"io"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"psd/internal/geom"
	"psd/internal/par"
	"psd/internal/tree"
)

// Slab is the flat structure-of-arrays read path of a decomposition: the
// minimum the canonical range query of Section 4.1 needs, laid out as
// contiguous per-field columns instead of an arena of full tree.Node
// structs. A query DFS through the arena drags ~64 bytes of Node (exact and
// noisy counts included) through cache per visited node; the slab touches
// only the rectangle bounds, the released estimate, and one child offset.
//
// A slab is immutable once materialized — by Seal from a built PSD, by
// Release.Slab from a parsed JSON artifact, or by ReadBinary straight from a
// format-v2 binary artifact — and is safe for concurrent queries. It is the
// only representation internal/serve serves.
type Slab struct {
	kind    Kind
	height  int
	domain  geom.Rect
	epsilon float64

	// offsets[d] is the index of the first node at depth d; offsets[height+1]
	// is the node count (the breadth-first layout of tree.Tree). A fixed
	// array: entries are L1-resident and the 4-bit stack depth can never
	// index past it, so the hot loop pays no bounds checks.
	offsets [maxReleaseHeight + 4]int32

	// nodes holds the packed per-node hot record [lox, loy, hix, hiy, est],
	// breadth-first — the 40 bytes per node the read path actually needs
	// (versus the ~64-byte arena Node). Profiling drove this layout: scalar
	// per-field columns make every child classification touch independent
	// memory streams (one cache line and TLB entry per field per fanout),
	// where the packed record streams children through 2-3 adjacent lines.
	// The binary release format v2 still stores scalar columns on disk;
	// ReadBinary interleaves while decoding.
	nodes [][5]float64
	// usable marks nodes with released information (Published, or everything
	// on a post-processed tree); pruned marks pruned subtree roots.
	usable bitset
	pruned bitset
	// allUsable and hasPruned summarize the bitsets so the common serving
	// case (post-processed release, no pruning) never touches them in the
	// hot loop. Child offsets need no column at all: the complete-tree
	// layout derives them from the offsets array.
	allUsable bool
	hasPruned bool

	// effLeaves is the number of effective leaf regions; LeafRegions
	// pre-sizes its output with it.
	effLeaves int

	// mapped is non-nil when the columns alias an mmap'd v3 artifact
	// (OpenSlabMmap) instead of heap memory; Close unmaps it, and a GC
	// cleanup unmaps it if the slab is dropped without Close. closed makes
	// use-after-Close a clean panic at the public entry points rather than
	// a SIGBUS from a faulted-out mapping.
	mapped  *slabMapping
	cleanup runtime.Cleanup
	closed  atomic.Bool

	// stacks pools query DFS stacks so single queries are allocation-free.
	stacks sync.Pool
	// batchScratches and batchStates pool the node-major batch engine's
	// per-worker traversal state and per-call clustering state (batch.go),
	// so steady-state CountBatch calls are allocation-free.
	batchScratches sync.Pool
	batchStates    sync.Pool
}

// bitset is a packed bool-per-node column.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// full reports whether all n tracked bits are set.
func (b bitset) full(n int) bool {
	for i, w := range b {
		want := ^uint64(0)
		if rem := n - 64*i; rem < 64 {
			want = 1<<uint(rem) - 1
		}
		if w != want {
			return false
		}
	}
	return true
}

// any reports whether any bit is set.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// newSlab allocates the columns of a fanout-4 complete-tree slab and fills
// in the child offsets. Terminal marking (leaves and pruned roots) is the
// caller's job; children default to the complete-tree layout with leaves -1.
func newSlab(kind Kind, height int, domain geom.Rect, epsilon float64) *Slab {
	s := &Slab{
		kind:    kind,
		height:  height,
		domain:  domain,
		epsilon: epsilon,
	}
	n := s.initShape(height)
	s.nodes = make([][5]float64, n)
	s.usable = newBitset(n)
	s.pruned = newBitset(n)
	return s
}

// initShape fills the depth-offset array of a fanout-4 complete tree and
// returns its node count. Shared by newSlab and the mmap open path, which
// aliases its columns over a mapping instead of allocating them.
func (s *Slab) initShape(height int) int {
	total := int32(0)
	level := int32(1)
	for d := 0; d <= height; d++ {
		s.offsets[d] = total
		total += level
		level *= 4
	}
	for d := height + 1; d < len(s.offsets); d++ {
		s.offsets[d] = total
	}
	return int(total)
}

// Close releases the slab. For an mmap-backed slab (OpenSlabMmap) it
// unmaps the artifact; any later use of the slab panics ("used after
// Close") instead of faulting on unmapped pages. Concurrent queries must
// be drained first — Close is for owners, not for racing with readers (the
// serving registry instead drops its reference and lets the GC cleanup
// unmap once in-flight queries finish). Closing a heap-backed slab just
// marks it unusable. Close is idempotent.
func (s *Slab) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.mapped == nil {
		return nil
	}
	s.cleanup.Stop()
	// Drop the aliased columns so a stale reference that slips past
	// ensureOpen hits a nil-slice panic, not the unmapped pages.
	s.nodes, s.usable, s.pruned = nil, nil, nil
	return s.mapped.unmap()
}

// ensureOpen guards every public entry point: one atomic load on the hot
// path, a clean panic instead of a SIGBUS after Close.
func (s *Slab) ensureOpen() {
	if s.closed.Load() {
		panic("core: Slab used after Close")
	}
}

// setRect fills node i's rectangle entry.
func (s *Slab) setRect(i int, lox, loy, hix, hiy float64) {
	n := &s.nodes[i]
	n[0], n[1], n[2], n[3] = lox, loy, hix, hiy
}

// markPruned records node i as a pruned subtree root: queries treat it as a
// terminal node and its descendants become unreachable.
func (s *Slab) markPruned(i int) {
	s.pruned.set(i)
}

// finish derives the bitset summaries after the columns are filled.
func (s *Slab) finish() {
	s.allUsable = s.usable.full(s.Len())
	s.hasPruned = s.pruned.any()
}

// depth returns the depth of node i (root = 0).
func (s *Slab) depth(i int) int {
	for d := s.height; d >= 0; d-- {
		if int32(i) >= s.offsets[d] {
			return d
		}
	}
	return 0
}

// computeEffLeaves counts the effective leaf regions after pruning, exactly
// as OpenRelease does for the arena path. It iterates the set bits of the
// pruned bitset (O(words + pruned), not a per-node get loop): mmap open
// runs this on every artifact, so it must stay cheap at tens of millions
// of nodes.
func (s *Slab) computeEffLeaves() {
	eff := int(s.offsets[s.height+1] - s.offsets[s.height])
	for wi, w := range s.pruned {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			if d := s.depth(i); d < s.height {
				eff -= 1<<(2*(s.height-d)) - 1
			}
		}
	}
	if eff < 1 {
		eff = 1
	}
	s.effLeaves = eff
}

// Seal materializes the flat read path of a built PSD. The slab answers
// Query, CountAll and LeafRegions bit-identically to the PSD it was sealed
// from; the PSD itself remains usable (Seal copies, it does not steal).
func (p *PSD) Seal() *Slab {
	ar := p.arena
	s := newSlab(p.kind, ar.Height(), p.domain, p.PrivacyCost())
	for i := range ar.Nodes {
		n := &ar.Nodes[i]
		s.setRect(i, n.Rect.Lo.X, n.Rect.Lo.Y, n.Rect.Hi.X, n.Rect.Hi.Y)
		s.nodes[i][4] = n.Est
		if n.Published || p.postProcessed {
			s.usable.set(i)
		}
		if n.Pruned {
			s.markPruned(i)
		}
	}
	s.effLeaves = p.effLeaves
	if s.effLeaves < 1 {
		s.effLeaves = 1
	}
	s.finish()
	return s
}

// Slab decodes a parsed release straight into the flat read path, skipping
// the arena entirely: no tree.Node structs, no per-node pointer chasing.
// The release is validated first, so the result is structurally sound.
func (r *Release) Slab() (*Slab, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r.slab(), nil
}

// ReadSlab parses, validates and decodes a JSON release into a slab,
// validating exactly once (Release.Slab alone would re-run the per-node
// checks ReadRelease already performed).
func ReadSlab(rd io.Reader) (*Slab, error) {
	rel, err := ReadRelease(rd)
	if err != nil {
		return nil, err
	}
	return rel.slab(), nil
}

// slab builds the flat form of a release that has already passed Validate.
func (r *Release) slab() *Slab {
	s := newSlab(mustParseKind(r.Kind), r.Height, unflattenRect(r.Domain), r.Epsilon)
	for i, fr := range r.Rects {
		s.setRect(i, fr[0], fr[1], fr[2], fr[3])
	}
	for i, c := range r.Counts {
		if c != nil {
			s.nodes[i][4] = *c
			s.usable.set(i)
		}
	}
	for _, i := range r.Pruned {
		s.markPruned(i)
	}
	s.computeEffLeaves()
	s.finish()
	return s
}

// mustParseKind maps a kind name that Validate already accepted.
func mustParseKind(name string) Kind {
	k, err := parseKind(name)
	if err != nil {
		panic(err)
	}
	return k
}

// Release reconstructs the serializable artifact from the slab. A release
// round-tripped through a slab (JSON or binary) re-serializes identically.
func (s *Slab) Release() *Release {
	s.ensureOpen()
	n := s.Len()
	rel := &Release{
		Version: releaseVersion,
		Kind:    s.kind.String(),
		Epsilon: s.epsilon,
		Fanout:  4,
		Height:  s.height,
		Domain:  flattenRect(s.domain),
		Rects:   make([][4]float64, n),
		Counts:  make([]*float64, n),
	}
	for i := 0; i < n; i++ {
		nd := &s.nodes[i]
		rel.Rects[i] = [4]float64{nd[0], nd[1], nd[2], nd[3]}
		if s.usable.get(i) {
			v := nd[4]
			rel.Counts[i] = &v
		}
		if s.pruned.get(i) {
			rel.Pruned = append(rel.Pruned, i)
		}
	}
	return rel
}

// Kind returns the decomposition family.
func (s *Slab) Kind() Kind { return s.kind }

// Height returns the tree height.
func (s *Slab) Height() int { return s.height }

// Fanout returns the tree fanout (always 4).
func (s *Slab) Fanout() int { return 4 }

// Len returns the number of tree nodes.
func (s *Slab) Len() int { return int(s.offsets[s.height+1]) }

// Domain returns the released domain rectangle.
func (s *Slab) Domain() geom.Rect { return s.domain }

// PrivacyCost returns the total ε the release consumed.
func (s *Slab) PrivacyCost() float64 { return s.epsilon }

// NumRegions returns the number of effective leaf regions without
// materializing them.
func (s *Slab) NumRegions() int { return s.effLeaves }

// rect reassembles node i's rectangle from the packed record.
func (s *Slab) rect(i int) geom.Rect {
	r := &s.nodes[i]
	return geom.Rect{
		Lo: geom.Point{X: r[0], Y: r[1]},
		Hi: geom.Point{X: r[2], Y: r[3]},
	}
}

// getStack borrows a pooled DFS stack; putStack returns it. A complete
// fanout-4 traversal never holds more than 3h+1 pending entries.
func (s *Slab) getStack() *[]int32 {
	if v := s.stacks.Get(); v != nil {
		return v.(*[]int32)
	}
	st := make([]int32, 0, 3*s.height+4)
	return &st
}

func (s *Slab) putStack(st *[]int32) { s.stacks.Put(st) }

// Query estimates the number of data points inside q using the canonical
// range-query method of Section 4.1. Answers are bit-identical to the
// arena path (PSD.Query) on the same release: the slab traversal visits the
// same nodes and accumulates the same contributions in the same order.
func (s *Slab) Query(q geom.Rect) float64 {
	s.ensureOpen()
	var st QueryStats
	stack := s.getStack()
	sum := s.queryIter(q, stack, &st, nil)
	s.putStack(stack)
	return sum
}

// QueryWithStats is Query plus diagnostics.
func (s *Slab) QueryWithStats(q geom.Rect) (float64, QueryStats) {
	s.ensureOpen()
	var st QueryStats
	stack := s.getStack()
	sum := s.queryIter(q, stack, &st, nil)
	s.putStack(stack)
	return sum, st
}

// CountAll answers a batch of range queries, spreading them across one
// worker per available core. Answers come back in input order and are
// identical to issuing each Query alone.
func (s *Slab) CountAll(qs []geom.Rect) []float64 {
	return s.CountAllWorkers(qs, 0)
}

// CountAllWorkers is CountAll with an explicit worker bound (0 = one per
// core, 1 = inline on the caller's goroutine).
func (s *Slab) CountAllWorkers(qs []geom.Rect, workers int) []float64 {
	s.ensureOpen()
	out := make([]float64, len(qs))
	par.For(par.Workers(workers), 0, len(qs), 8, func(lo, hi int) {
		stack := s.getStack()
		var st QueryStats
		for i := lo; i < hi; i++ {
			out[i] = s.queryIter(qs[i], stack, &st, nil)
		}
		s.putStack(stack)
	})
	return out
}

// Stack entries pack the node's identity into an int32. The low bit is the
// tag: a set bit means the node was already classified as fully contained
// in the query and usable, so the pop adds est[e>>1] with no further loads.
// A clear bit means a full visit: the entry is idx<<5 | depth<<1, carrying
// the depth so the first-child index derives from the L1-resident depth
// offsets instead of a per-node column. tree.MaxNodes < 2^26 and depth < 16,
// so both encodings fit a non-negative int32.
const slabAddWhole = 1

// queryIter runs the canonical method over the columns with an explicit
// stack. At every partially intersecting internal node it classifies all
// four children in one pass over the contiguous rect column segment:
// children missing the query are never pushed (the arena path pushes and
// re-pops them), and children fully inside it are pushed pre-classified, so
// their pop is a single est load. The push order keeps pops — and therefore
// the floating-point accumulation order — exactly the arena path's.
//
// cancel, when non-nil, is polled at bounded checkpoints (see cancel.go);
// when it fires the walk abandons its partial sum, which the *Ctx callers
// discard. The plain callers pass nil and pay one predictable branch per
// pop.
func (s *Slab) queryIter(q geom.Rect, stack *[]int32, st *QueryStats, cancel *cancelToken) float64 {
	if q.Lo.X != q.Lo.X || q.Lo.Y != q.Lo.Y || q.Hi.X != q.Hi.X || q.Hi.Y != q.Hi.Y {
		// A NaN bound fails every interval test: like the arena path, the
		// walk visits the root, finds no intersection, and answers 0.
		st.NodesVisited++
		return 0
	}
	stk := append((*stack)[:0], 0) // root: idx 0, depth 0, unclassified
	nodes := s.nodes
	height := s.height
	allUsable, hasPruned := s.allUsable, s.hasPruned
	var sum float64
	// Counters stay in registers across the loop; st is written once at the
	// end.
	var visited, added, partials int
	for len(stk) > 0 {
		if cancel.tick(1) {
			break // deadline fired: the caller discards the partial sum
		}
		e := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		visited++
		if e&slabAddWhole != 0 {
			added++
			sum += nodes[e>>1][4]
			continue
		}
		idx := int(e >> 5)
		d := int(e>>1) & 0xF
		if e == 0 {
			// Only the root arrives unclassified (every other entry went
			// through its parent's classification): run the tests pushes
			// normally pre-answer.
			r := &nodes[0]
			if r[0] >= q.Hi.X || q.Lo.X >= r[2] || r[1] >= q.Hi.Y || q.Lo.Y >= r[3] {
				continue
			}
			if q.Lo.X <= r[0] && r[2] <= q.Hi.X && q.Lo.Y <= r[1] && r[3] <= q.Hi.Y &&
				(allUsable || s.usable.get(0)) {
				added++
				sum += r[4]
				continue
			}
		}
		// The node intersects q but is not (contained and usable).
		if d == height || (hasPruned && s.pruned.get(idx)) {
			// Terminal node (leaf or pruned root): uniformity assumption.
			if !(allUsable || s.usable.get(idx)) {
				continue // no released information at or below this node
			}
			nd := &nodes[idx]
			added++
			partials++
			sum += nd[4] * overlapFraction(nd, q)
			continue
		}
		// Classify the fanout in one pass; push in reverse so children pop —
		// and contribute — in order.
		cs := int(s.offsets[d+1]) + (idx-int(s.offsets[d]))*4
		cd := (d + 1) << 1
		for j := 3; j >= 0; j-- {
			c := cs + j
			cr := &nodes[c]
			if cr[0] >= q.Hi.X || q.Lo.X >= cr[2] || cr[1] >= q.Hi.Y || q.Lo.Y >= cr[3] {
				// The arena path would pop it just to discard it; account for
				// the visit without the stack round-trip.
				visited++
				continue
			}
			if q.Lo.X <= cr[0] && cr[2] <= q.Hi.X && q.Lo.Y <= cr[1] && cr[3] <= q.Hi.Y &&
				(allUsable || s.usable.get(c)) {
				stk = append(stk, int32(c<<1|slabAddWhole))
				continue
			}
			stk = append(stk, int32(c<<5|cd))
		}
	}
	*stack = stk
	st.NodesVisited += visited
	st.NodesAdded += added
	st.PartialLeaves += partials
	return sum
}

// overlapFraction is geom.Rect.OverlapFraction over a packed node record:
// area(node ∩ q) / area(node), 0 for zero-area nodes. The arithmetic
// matches geom operation-for-operation — the builtin max/min share
// math.Max/math.Min semantics exactly but inline — so slab answers stay
// bit-identical.
func overlapFraction(r *[5]float64, q geom.Rect) float64 {
	a := (r[2] - r[0]) * (r[3] - r[1])
	if a <= 0 {
		return 0
	}
	lo := max(r[0], q.Lo.X)
	hi := min(r[2], q.Hi.X)
	lo2 := max(r[1], q.Lo.Y)
	hi2 := min(r[3], q.Hi.Y)
	if lo >= hi || lo2 >= hi2 {
		return 0
	}
	return (hi - lo) * (hi2 - lo2) / a
}

// LeafRegions returns the rectangles and estimated counts of the effective
// leaves of the release (actual leaves plus pruned subtree roots), exactly
// as PSD.LeafRegions does, with the output pre-sized from the tracked
// effective-leaf count.
func (s *Slab) LeafRegions() ([]geom.Rect, []float64) {
	s.ensureOpen()
	capHint := s.effLeaves
	if capHint < 1 {
		capHint = 1
	}
	rects := make([]geom.Rect, 0, capHint)
	counts := make([]float64, 0, capHint)
	stack := s.getStack()
	stk := append((*stack)[:0], 0) // idx<<4 | depth
	height := s.height
	for len(stk) > 0 {
		e := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		idx := int(e >> 4)
		d := int(e) & 0xF
		if d == height || (s.hasPruned && s.pruned.get(idx)) {
			rects = append(rects, s.rect(idx))
			counts = append(counts, s.nodes[idx][4])
			continue
		}
		cs := int(s.offsets[d+1]) + (idx-int(s.offsets[d]))*4
		// Reverse push keeps the historical left-to-right region order.
		cd := int32(d + 1)
		stk = append(stk, int32(cs+3)<<4|cd, int32(cs+2)<<4|cd, int32(cs+1)<<4|cd, int32(cs)<<4|cd)
	}
	*stack = stk
	s.putStack(stack)
	return rects, counts
}

// maxSlabNodes re-exports the arena bound the slab shares.
const maxSlabNodes = tree.MaxNodes
