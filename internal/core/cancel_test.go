package core

import (
	"context"
	"sync/atomic"
	"testing"

	"psd/internal/geom"
)

// TestQueryCtxMatchesQuery pins the deadline plumbing's zero-cost contract:
// with a live context — background (nil token fast path) or cancellable but
// not cancelled (token engaged, polls never fire) — QueryCtx answers are
// bit-identical to Query, and a context cancelled up front errors without
// traversing.
func TestQueryCtxMatchesQuery(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(2048, dom, 11)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
		s := p.Seal()
		qs := batchTestQueries(dom, 64, int64(cfg.Seed))
		live, cancel := context.WithCancel(context.Background())
		for i, q := range qs {
			want := s.Query(q)
			got, err := s.QueryCtx(context.Background(), q)
			if err != nil || got != want {
				t.Fatalf("%v: QueryCtx(background)[%d] = %v, %v; want %v", cfg.Kind, i, got, err, want)
			}
			got, err = s.QueryCtx(live, q)
			if err != nil || got != want {
				t.Fatalf("%v: QueryCtx(live)[%d] = %v, %v; want %v", cfg.Kind, i, got, err, want)
			}
		}
		cancel()
		if _, err := s.QueryCtx(live, qs[0]); err != context.Canceled {
			t.Fatalf("%v: QueryCtx(cancelled) err = %v, want context.Canceled", cfg.Kind, err)
		}
	}
}

// TestCountBatchIntoCtxMatchesPlain pins the batch-side contract: a live
// context changes nothing — answers and statistics are bit-identical to
// CountBatchInto at every worker count — and a cancelled context errors.
func TestCountBatchIntoCtxMatchesPlain(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(2048, dom, 13)
	for _, cfg := range slabTestConfigs() {
		p, err := Build(pts, dom, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
		s := p.Seal()
		qs := batchTestQueries(dom, 200, int64(cfg.Seed))
		want := make([]float64, len(qs))
		wantSt := s.CountBatchInto(want, qs, 0)
		live, cancel := context.WithCancel(context.Background())
		for _, workers := range []int{1, 2, 0} {
			for _, ctx := range []context.Context{context.Background(), live} {
				out := make([]float64, len(qs))
				st, err := s.CountBatchIntoCtx(ctx, out, qs, workers)
				if err != nil {
					t.Fatalf("%v workers=%d: CountBatchIntoCtx: %v", cfg.Kind, workers, err)
				}
				if st != wantSt {
					t.Fatalf("%v workers=%d: ctx batch stats %+v, want %+v", cfg.Kind, workers, st, wantSt)
				}
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("%v workers=%d: ctx batch[%d] = %v, want %v", cfg.Kind, workers, i, out[i], want[i])
					}
				}
			}
		}
		cancel()
		if _, err := s.CountBatchIntoCtx(live, make([]float64, len(qs)), qs, 0); err != context.Canceled {
			t.Fatalf("%v: CountBatchIntoCtx(cancelled) err = %v, want context.Canceled", cfg.Kind, err)
		}
	}
}

// TestCancelUnwindsTraversal proves cancellation actually interrupts work
// in flight, deterministically: a done channel that is already closed when
// the traversal starts must fire at the first exhausted checkpoint interval
// and unwind, latching the shared fired flag. (The ctx entry points check
// ctx.Err() up front, so this drives the internal engines directly — the
// state a concurrent cancel mid-walk produces.)
func TestCancelUnwindsTraversal(t *testing.T) {
	dom := geom.NewRect(0, 0, 128, 64)
	pts := randomPoints(4096, dom, 17)
	cfg := slabTestConfigs()[0]
	p, err := Build(pts, dom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Seal()
	done := make(chan struct{})
	close(done)

	// Per-query walk: a token one tick from polling observes the closed
	// channel on the first pop and unwinds immediately.
	tok := &cancelToken{done: done, remain: 1}
	var st QueryStats
	stack := s.getStack()
	s.queryIter(dom, stack, &st, tok)
	s.putStack(stack)
	if !tok.hit {
		t.Fatal("queryIter did not observe a closed done channel")
	}
	if st.NodesVisited > 1 {
		t.Fatalf("queryIter visited %d nodes after cancellation fired", st.NodesVisited)
	}

	// Batch engine, single worker: 512 queries tick far past one
	// cancelCheckInterval, so the worker's token must poll, fire, and latch
	// the shared flag — regardless of where in the traversal the interval
	// ran out.
	qs := batchTestQueries(dom, 512, 1)
	var fired atomic.Bool
	out := make([]float64, len(qs))
	s.countBatchInto(out, qs, 1, done, &fired)
	if !fired.Load() {
		t.Fatal("countBatchInto did not latch fired on a closed done channel")
	}
}
