package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"psd"
)

// buildTree constructs a small deterministic tree for serving tests.
func buildTree(t testing.TB, seed int64) *psd.Tree {
	t.Helper()
	dom := psd.NewRect(0, 0, 100, 100)
	pts := make([]psd.Point, 0, 2000)
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / float64(1<<53)
	}
	for i := 0; i < 2000; i++ {
		pts = append(pts, psd.Point{X: 100 * next(), Y: 100 * next()})
	}
	tree, err := psd.Build(pts, dom, psd.Options{
		Kind: psd.QuadtreeKind, Height: 4, Epsilon: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func releaseBytes(t *testing.T, tree *psd.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tree.WriteRelease(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, api *API) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	tree := buildTree(t, 7)
	reg := NewRegistry(1024)
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	// Empty registry: health is up, count 404s.
	var health struct {
		Status   string `json:"status"`
		Releases int    `json:"releases"`
	}
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Releases != 0 {
		t.Fatalf("healthz = %+v", health)
	}
	getJSON(t, srv.URL+"/v1/releases/roads/count?rect=0,0,1,1", http.StatusNotFound, nil)

	// Register over HTTP.
	var info releaseInfo
	postJSON(t, srv.URL+"/v1/releases/roads", releaseBytes(t, tree), http.StatusCreated, &info)
	if info.Kind != "quadtree" || info.Height != 4 {
		t.Fatalf("register info = %+v", info)
	}

	// Single count matches the in-process tree exactly.
	q := psd.NewRect(10, 20, 55, 70)
	want := tree.Count(q)
	var single struct {
		Count  float64 `json:"count"`
		Cached bool    `json:"cached"`
	}
	url := fmt.Sprintf("%s/v1/releases/roads/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y)
	getJSON(t, url, http.StatusOK, &single)
	if single.Count != want {
		t.Fatalf("served count %v, want %v", single.Count, want)
	}
	if single.Cached {
		t.Fatal("first query reported cached")
	}
	getJSON(t, url, http.StatusOK, &single)
	if single.Count != want || !single.Cached {
		t.Fatalf("repeat query = %+v, want cached %v", single, want)
	}

	// Batch matches CountAll exactly (including a repeated rect → cache hit).
	qs := []psd.Rect{
		psd.NewRect(0, 0, 100, 100),
		psd.NewRect(25, 25, 75, 75),
		q, // cached from above
	}
	wantAll := tree.CountAll(qs)
	body, _ := json.Marshal(map[string][][4]float64{"rects": {
		{0, 0, 100, 100}, {25, 25, 75, 75}, {q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y},
	}})
	var batch struct {
		Counts    []float64 `json:"counts"`
		CacheHits int       `json:"cache_hits"`
	}
	postJSON(t, srv.URL+"/v1/releases/roads/batch", body, http.StatusOK, &batch)
	if len(batch.Counts) != len(wantAll) {
		t.Fatalf("batch returned %d counts", len(batch.Counts))
	}
	for i := range wantAll {
		if batch.Counts[i] != wantAll[i] {
			t.Fatalf("batch[%d] = %v, want %v", i, batch.Counts[i], wantAll[i])
		}
	}
	if batch.CacheHits < 1 {
		t.Fatalf("batch cache hits = %d, want >= 1", batch.CacheHits)
	}

	// Regions match.
	rects, counts := tree.Regions()
	var regions struct {
		Rects  [][4]float64 `json:"rects"`
		Counts []float64    `json:"counts"`
	}
	getJSON(t, srv.URL+"/v1/releases/roads/regions", http.StatusOK, &regions)
	if len(regions.Rects) != len(rects) || len(regions.Counts) != len(counts) {
		t.Fatalf("regions: %d/%d, want %d/%d",
			len(regions.Rects), len(regions.Counts), len(rects), len(counts))
	}
	for i := range counts {
		if regions.Counts[i] != counts[i] {
			t.Fatalf("region count %d = %v, want %v", i, regions.Counts[i], counts[i])
		}
	}

	// Stats reflect the traffic.
	var statsResp struct {
		Stats StatsSnapshot `json:"stats"`
	}
	getJSON(t, srv.URL+"/v1/releases/roads/stats", http.StatusOK, &statsResp)
	st := statsResp.Stats
	if st.Requests != 3 || st.Queries != 5 {
		t.Fatalf("stats = %+v, want 3 requests / 5 queries", st)
	}
	if st.CacheHits != 2 || st.CacheHitRate != 0.4 {
		t.Fatalf("stats = %+v, want 2 hits (rate 0.4)", st)
	}

	// List, then delete.
	var list struct {
		Releases []releaseInfo `json:"releases"`
	}
	getJSON(t, srv.URL+"/v1/releases", http.StatusOK, &list)
	if len(list.Releases) != 1 || list.Releases[0].Name != "roads" {
		t.Fatalf("list = %+v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/releases/roads", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	getJSON(t, srv.URL+"/v1/releases/roads/count?rect=0,0,1,1", http.StatusNotFound, nil)
}

func TestServerRejectsBadInput(t *testing.T) {
	tree := buildTree(t, 9)
	reg := NewRegistry(16)
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg, MaxBatch: 4}
	srv := newTestServer(t, api)

	getJSON(t, srv.URL+"/v1/releases/r/count", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=1,2,3", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=a,b,c,d", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=NaN,0,1,1", http.StatusBadRequest, nil)

	// Inverted bounds are normalized, not rejected.
	var single struct {
		Count float64 `json:"count"`
	}
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=60,60,20,20", http.StatusOK, &single)
	if want := tree.Count(psd.NewRect(20, 20, 60, 60)); single.Count != want {
		t.Fatalf("normalized count %v, want %v", single.Count, want)
	}

	postJSON(t, srv.URL+"/v1/releases/r/batch", []byte("{bad"), http.StatusBadRequest, nil)
	over, _ := json.Marshal(map[string][][4]float64{"rects": {
		{0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1},
	}})
	postJSON(t, srv.URL+"/v1/releases/r/batch", over, http.StatusRequestEntityTooLarge, nil)
	nanBatch, _ := json.Marshal(map[string][]any{"rects": {[]any{math.MaxFloat64, 0, "NaN", 1}}})
	postJSON(t, srv.URL+"/v1/releases/r/batch", nanBatch, http.StatusBadRequest, nil)

	// Malformed artifacts never register.
	postJSON(t, srv.URL+"/v1/releases/bad", []byte("{not a release"), http.StatusBadRequest, nil)
	postJSON(t, srv.URL+"/v1/releases/bad",
		[]byte(`{"version":1,"kind":"quadtree","epsilon":1,"fanout":4,"height":12,"domain":[0,0,1,1],"rects":[[0,0,1,1]],"counts":[1]}`),
		http.StatusBadRequest, nil)
	postJSON(t, srv.URL+"/v1/releases/bad%2Fname", releaseBytes(t, tree), http.StatusBadRequest, nil)
	if _, ok := reg.Get("bad"); ok {
		t.Fatal("malformed artifact was registered")
	}

	// Reload without a watch dir is a 400.
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusBadRequest, nil)
}

func TestWatchDirReload(t *testing.T) {
	dir := t.TempDir()
	treeA := buildTree(t, 11)
	if err := os.WriteFile(filepath.Join(dir, "alpha.json"), releaseBytes(t, treeA), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(64)
	api := &API{Registry: reg, WatchDir: dir}
	srv := newTestServer(t, api)

	var out struct {
		Loaded  []string `json:"loaded"`
		Skipped []string `json:"skipped"`
	}
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusOK, &out)
	if len(out.Loaded) != 1 || out.Loaded[0] != "alpha" {
		t.Fatalf("first scan loaded %v", out.Loaded)
	}

	// Unchanged files are skipped (cache and stats survive).
	rel, _ := reg.Get("alpha")
	rel.Count(psd.NewRect(0, 0, 50, 50))
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusOK, &out)
	if len(out.Skipped) != 1 || len(out.Loaded) != 0 {
		t.Fatalf("second scan = %+v", out)
	}
	if rel2, _ := reg.Get("alpha"); rel2 != rel {
		t.Fatal("unchanged file was re-registered")
	}

	// A new file registers under its basename; a bad file reports an error
	// without blocking the good ones.
	treeB := buildTree(t, 12)
	if err := os.WriteFile(filepath.Join(dir, "beta.json"), releaseBytes(t, treeB), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var third struct {
		Loaded  []string `json:"loaded"`
		Skipped []string `json:"skipped"`
		Error   string   `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&third); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("scan with bad file: status %d", resp.StatusCode)
	}
	if len(third.Loaded) != 1 || third.Loaded[0] != "beta" || third.Error == "" {
		t.Fatalf("third scan = %+v", third)
	}
	if _, ok := reg.Get("beta"); !ok {
		t.Fatal("beta not registered")
	}

	// An API-posted release under a watched name must not stick: even with
	// the file unchanged on disk, the next rescan reinstates the file's
	// artifact (the skip requires the live entry to still be file-sourced).
	os.Remove(filepath.Join(dir, "broken.json"))
	if _, err := reg.Register("alpha", "api", bytes.NewReader(releaseBytes(t, treeB))); err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusOK, &out)
	reinstated, _ := reg.Get("alpha")
	if reinstated.Source == "api" {
		t.Fatal("rescan did not reinstate the watched file over the API-posted release")
	}
}

// TestConcurrentQueriesAndHotReload is the acceptance race check: many
// goroutines query while others repeatedly hot-swap the same release. Every
// answer must equal one of the two valid trees' answers — never a torn mix.
func TestConcurrentQueriesAndHotReload(t *testing.T) {
	treeA := buildTree(t, 21)
	treeB := buildTree(t, 22)
	relA, relB := releaseBytes(t, treeA), releaseBytes(t, treeB)

	reg := NewRegistry(512)
	if _, err := reg.Register("hot", "test", bytes.NewReader(relA)); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	q := psd.NewRect(12.5, 12.5, 87.5, 87.5)
	wantA, wantB := treeA.Count(q), treeB.Count(q)
	if wantA == wantB {
		t.Fatal("test needs distinguishable trees")
	}

	const readers, swaps, queries = 8, 40, 60
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	url := fmt.Sprintf("%s/v1/releases/hot/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				resp, err := http.Get(url)
				if err != nil {
					errc <- err
					return
				}
				var out struct {
					Count float64 `json:"count"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if out.Count != wantA && out.Count != wantB {
					errc <- fmt.Errorf("torn answer %v (want %v or %v)", out.Count, wantA, wantB)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			body := relA
			if i%2 == 0 {
				body = relB
			}
			resp, err := http.Post(srv.URL+"/v1/releases/hot", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errc <- fmt.Errorf("swap status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestCountBatchIntoMatchesPerQuery pins the serving batch path: one
// node-major engine call per request, per-query cache semantics preserved,
// answers and traversal stats identical to the per-rect Count loop at every
// cache state.
func TestCountBatchIntoMatchesPerQuery(t *testing.T) {
	tree := buildTree(t, 31)
	slab := tree.Seal()
	var artifact bytes.Buffer
	if err := tree.WriteBinaryRelease(&artifact); err != nil {
		t.Fatal(err)
	}
	d := tree.Domain()
	qs := make([]psd.Rect, 0, 96)
	for i := 0; i < 96; i++ {
		fx := float64(i%12) / 12
		fy := float64(i/12) / 12
		qs = append(qs, psd.NewRect(
			d.Lo.X+fx*0.8*d.Width(), d.Lo.Y+fy*0.8*d.Height(),
			d.Lo.X+(fx*0.8+0.2)*d.Width(), d.Lo.Y+(fy*0.8+0.2)*d.Height(),
		))
	}
	want := make([]float64, len(qs))
	var wantSt psd.QueryStats
	for i, q := range qs {
		want[i] = slab.Count(q)
	}
	wantSt = slab.CountBatchIntoWorkers(make([]float64, len(qs)), qs, 1)

	for _, cacheSize := range []int{0, 8, 4096} {
		reg := NewRegistry(cacheSize)
		rel, err := reg.Register("b", "test", bytes.NewReader(artifact.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// Cold: every answer fresh, stats cover the whole batch.
		vals := make([]float64, len(qs))
		hits, st := rel.CountBatchInto(vals, qs)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("cache=%d: batch[%d] = %v, want %v", cacheSize, i, vals[i], want[i])
			}
		}
		if hits != 0 {
			t.Fatalf("cache=%d: cold batch reported %d hits", cacheSize, hits)
		}
		if st != wantSt {
			t.Fatalf("cache=%d: cold batch stats %+v, want %+v", cacheSize, st, wantSt)
		}
		// Warm: answers unchanged; with a big enough cache everything hits
		// and the engine does no traversal at all.
		for i := range vals {
			vals[i] = -1
		}
		hits, st = rel.CountBatchInto(vals, qs)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("cache=%d: warm batch[%d] = %v, want %v", cacheSize, i, vals[i], want[i])
			}
		}
		if cacheSize >= len(qs) {
			if hits != len(qs) || st != (psd.QueryStats{}) {
				t.Fatalf("cache=%d: warm batch hits=%d stats=%+v, want all hits / zero stats",
					cacheSize, hits, st)
			}
		}
		// The allocating wrapper agrees.
		wvals, _ := rel.CountBatch(qs)
		for i := range want {
			if wvals[i] != want[i] {
				t.Fatalf("cache=%d: CountBatch[%d] = %v, want %v", cacheSize, i, wvals[i], want[i])
			}
		}
	}
}

// TestCacheEvictionsSurfaced pins the eviction counter: a cache smaller
// than the query mix must report evictions through the stats snapshot and
// the /stats endpoint.
func TestCacheEvictionsSurfaced(t *testing.T) {
	tree := buildTree(t, 33)
	reg := NewRegistry(16) // 16 shards x 1 entry
	rel, err := reg.Register("tiny", "test", bytes.NewReader(releaseBytes(t, tree)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		f := float64(i)
		rel.Count(psd.NewRect(f/10, f/10, f/10+1, f/10+1))
	}
	snap := rel.Stats()
	if snap.CacheEvictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", snap)
	}
	api := &API{Registry: reg}
	srv := newTestServer(t, api)
	var statsResp struct {
		Stats StatsSnapshot `json:"stats"`
	}
	getJSON(t, srv.URL+"/v1/releases/tiny/stats", http.StatusOK, &statsResp)
	if statsResp.Stats.CacheEvictions == 0 {
		t.Fatalf("/stats = %+v, want cache_evictions > 0", statsResp.Stats)
	}

	// A fresh all-hit release reports zero evictions.
	reg2 := NewRegistry(4096)
	rel2, err := reg2.Register("big", "test", bytes.NewReader(releaseBytes(t, tree)))
	if err != nil {
		t.Fatal(err)
	}
	rel2.Count(psd.NewRect(0, 0, 1, 1))
	rel2.Count(psd.NewRect(0, 0, 1, 1))
	if s := rel2.Stats(); s.CacheEvictions != 0 {
		t.Fatalf("big cache stats = %+v, want 0 evictions", s)
	}
}

// TestBatchEndpointStats pins the /batch response's per-batch stats field:
// it must equal the engine's aggregate over the missed rectangles.
func TestBatchEndpointStats(t *testing.T) {
	tree := buildTree(t, 35)
	slab := tree.Seal()
	reg := NewRegistry(1024)
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, &API{Registry: reg})

	qs := []psd.Rect{psd.NewRect(0, 0, 50, 50), psd.NewRect(10, 10, 90, 40)}
	wantSt := slab.CountBatchIntoWorkers(make([]float64, len(qs)), qs, 1)
	body, _ := json.Marshal(map[string][][4]float64{"rects": {
		{0, 0, 50, 50}, {10, 10, 90, 40},
	}})
	var batch struct {
		Counts    []float64      `json:"counts"`
		CacheHits int            `json:"cache_hits"`
		Stats     psd.QueryStats `json:"stats"`
	}
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusOK, &batch)
	if batch.Stats != wantSt {
		t.Fatalf("/batch stats = %+v, want %+v", batch.Stats, wantSt)
	}
	// Second, fully cached request: zero traversal.
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusOK, &batch)
	if batch.CacheHits != len(qs) || batch.Stats != (psd.QueryStats{}) {
		t.Fatalf("cached /batch = %+v, want all hits / zero stats", batch)
	}
}
