package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"psd"
)

// testPoints generates n deterministic points over [0,100)² via splitmix64
// hashing (no internal/rng import). Every skip-th point is pulled into the
// lower-left corner; skip 0 leaves the cloud uniform.
func testPoints(seed int64, n, skip int) []psd.Point {
	pts := make([]psd.Point, 0, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		x, y := 100*next(), 100*next()
		if skip > 0 && i%skip == 0 {
			x, y = x*0.2, y*0.2
		}
		pts = append(pts, psd.Point{X: x, Y: y})
	}
	return pts
}

// buildTree constructs a small deterministic tree for serving tests.
func buildTree(t testing.TB, seed int64) *psd.Tree {
	t.Helper()
	dom := psd.NewRect(0, 0, 100, 100)
	tree, err := psd.Build(testPoints(seed, 2000, 0), dom, psd.Options{
		Kind: psd.QuadtreeKind, Height: 4, Epsilon: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func releaseBytes(t *testing.T, tree *psd.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tree.WriteRelease(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, api *API) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	tree := buildTree(t, 7)
	reg := NewRegistry(1024)
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	// Empty registry: health is up, count 404s.
	var health struct {
		Status   string `json:"status"`
		Releases int    `json:"releases"`
	}
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Releases != 0 {
		t.Fatalf("healthz = %+v", health)
	}
	getJSON(t, srv.URL+"/v1/releases/roads/count?rect=0,0,1,1", http.StatusNotFound, nil)

	// Register over HTTP.
	var info releaseInfo
	postJSON(t, srv.URL+"/v1/releases/roads", releaseBytes(t, tree), http.StatusCreated, &info)
	if info.Kind != "quadtree" || info.Height != 4 {
		t.Fatalf("register info = %+v", info)
	}

	// Single count matches the in-process tree exactly.
	q := psd.NewRect(10, 20, 55, 70)
	want := tree.Count(q)
	var single struct {
		Count  float64 `json:"count"`
		Cached bool    `json:"cached"`
	}
	url := fmt.Sprintf("%s/v1/releases/roads/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y)
	getJSON(t, url, http.StatusOK, &single)
	if single.Count != want {
		t.Fatalf("served count %v, want %v", single.Count, want)
	}
	if single.Cached {
		t.Fatal("first query reported cached")
	}
	getJSON(t, url, http.StatusOK, &single)
	if single.Count != want || !single.Cached {
		t.Fatalf("repeat query = %+v, want cached %v", single, want)
	}

	// Batch matches CountAll exactly (including a repeated rect → cache hit).
	qs := []psd.Rect{
		psd.NewRect(0, 0, 100, 100),
		psd.NewRect(25, 25, 75, 75),
		q, // cached from above
	}
	wantAll := tree.CountAll(qs)
	body, _ := json.Marshal(map[string][][4]float64{"rects": {
		{0, 0, 100, 100}, {25, 25, 75, 75}, {q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y},
	}})
	var batch struct {
		Counts    []float64 `json:"counts"`
		CacheHits int       `json:"cache_hits"`
	}
	postJSON(t, srv.URL+"/v1/releases/roads/batch", body, http.StatusOK, &batch)
	if len(batch.Counts) != len(wantAll) {
		t.Fatalf("batch returned %d counts", len(batch.Counts))
	}
	for i := range wantAll {
		if batch.Counts[i] != wantAll[i] {
			t.Fatalf("batch[%d] = %v, want %v", i, batch.Counts[i], wantAll[i])
		}
	}
	if batch.CacheHits < 1 {
		t.Fatalf("batch cache hits = %d, want >= 1", batch.CacheHits)
	}

	// Regions match.
	rects, counts := tree.Regions()
	var regions struct {
		Rects  [][4]float64 `json:"rects"`
		Counts []float64    `json:"counts"`
	}
	getJSON(t, srv.URL+"/v1/releases/roads/regions", http.StatusOK, &regions)
	if len(regions.Rects) != len(rects) || len(regions.Counts) != len(counts) {
		t.Fatalf("regions: %d/%d, want %d/%d",
			len(regions.Rects), len(regions.Counts), len(rects), len(counts))
	}
	for i := range counts {
		if regions.Counts[i] != counts[i] {
			t.Fatalf("region count %d = %v, want %v", i, regions.Counts[i], counts[i])
		}
	}

	// Stats reflect the traffic.
	var statsResp struct {
		Stats StatsSnapshot `json:"stats"`
	}
	getJSON(t, srv.URL+"/v1/releases/roads/stats", http.StatusOK, &statsResp)
	st := statsResp.Stats
	if st.Requests != 3 || st.Queries != 5 {
		t.Fatalf("stats = %+v, want 3 requests / 5 queries", st)
	}
	if st.CacheHits != 2 || st.CacheHitRate != 0.4 {
		t.Fatalf("stats = %+v, want 2 hits (rate 0.4)", st)
	}

	// List, then delete.
	var list struct {
		Releases []releaseInfo `json:"releases"`
	}
	getJSON(t, srv.URL+"/v1/releases", http.StatusOK, &list)
	if len(list.Releases) != 1 || list.Releases[0].Name != "roads" {
		t.Fatalf("list = %+v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/releases/roads", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	getJSON(t, srv.URL+"/v1/releases/roads/count?rect=0,0,1,1", http.StatusNotFound, nil)
}

func TestServerRejectsBadInput(t *testing.T) {
	tree := buildTree(t, 9)
	reg := NewRegistry(16)
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg, MaxBatch: 4}
	srv := newTestServer(t, api)

	getJSON(t, srv.URL+"/v1/releases/r/count", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=1,2,3", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=a,b,c,d", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=NaN,0,1,1", http.StatusBadRequest, nil)

	// Inverted bounds are normalized, not rejected.
	var single struct {
		Count float64 `json:"count"`
	}
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=60,60,20,20", http.StatusOK, &single)
	if want := tree.Count(psd.NewRect(20, 20, 60, 60)); single.Count != want {
		t.Fatalf("normalized count %v, want %v", single.Count, want)
	}

	postJSON(t, srv.URL+"/v1/releases/r/batch", []byte("{bad"), http.StatusBadRequest, nil)
	over, _ := json.Marshal(map[string][][4]float64{"rects": {
		{0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1},
	}})
	postJSON(t, srv.URL+"/v1/releases/r/batch", over, http.StatusRequestEntityTooLarge, nil)
	nanBatch, _ := json.Marshal(map[string][]any{"rects": {[]any{math.MaxFloat64, 0, "NaN", 1}}})
	postJSON(t, srv.URL+"/v1/releases/r/batch", nanBatch, http.StatusBadRequest, nil)

	// Malformed artifacts never register.
	postJSON(t, srv.URL+"/v1/releases/bad", []byte("{not a release"), http.StatusBadRequest, nil)
	postJSON(t, srv.URL+"/v1/releases/bad",
		[]byte(`{"version":1,"kind":"quadtree","epsilon":1,"fanout":4,"height":12,"domain":[0,0,1,1],"rects":[[0,0,1,1]],"counts":[1]}`),
		http.StatusBadRequest, nil)
	postJSON(t, srv.URL+"/v1/releases/bad%2Fname", releaseBytes(t, tree), http.StatusBadRequest, nil)
	if _, ok := reg.Get("bad"); ok {
		t.Fatal("malformed artifact was registered")
	}

	// Reload without a watch dir is a 400.
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusBadRequest, nil)
}

// TestOverLimitBodiesReturn413 pins the HTTP status split between "too big"
// and "malformed": a batch body over -max-body must be 413 (like the
// over-MaxBatch rect-count path), never a generic 400 decode error — and
// the same for an over-limit artifact upload.
func TestOverLimitBodiesReturn413(t *testing.T) {
	tree := buildTree(t, 10)
	artifact := releaseBytes(t, tree)
	reg := NewRegistry(16)
	if _, err := reg.Register("r", "test", bytes.NewReader(artifact)); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg, MaxBodyBytes: 512, MaxBatch: 100000}
	srv := newTestServer(t, api)

	// A structurally valid batch body that is simply too large.
	big := map[string][][4]float64{"rects": {}}
	for i := 0; i < 200; i++ {
		big["rects"] = append(big["rects"], [4]float64{0, 0, float64(i), float64(i)})
	}
	body, _ := json.Marshal(big)
	if len(body) <= 512 {
		t.Fatalf("test body is only %d bytes", len(body))
	}
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusRequestEntityTooLarge, nil)

	// Under the limit, the same shape still works.
	small, _ := json.Marshal(map[string][][4]float64{"rects": {{0, 0, 1, 1}}})
	postJSON(t, srv.URL+"/v1/releases/r/batch", small, http.StatusOK, nil)

	// Artifact uploads over the limit are 413 too (and register nothing).
	if len(artifact) <= 512 {
		t.Fatalf("artifact is only %d bytes", len(artifact))
	}
	postJSON(t, srv.URL+"/v1/releases/toobig", artifact, http.StatusRequestEntityTooLarge, nil)
	if _, ok := reg.Get("toobig"); ok {
		t.Fatal("over-limit artifact was registered")
	}

	// A malformed (but small) body keeps its 400.
	postJSON(t, srv.URL+"/v1/releases/r/batch", []byte("{bad"), http.StatusBadRequest, nil)
}

// ageFile pushes a file's mtime far enough into the past that a rescan can
// trust an unchanged {size, mtime} (see fileState.settled).
func ageFile(t *testing.T, path string) {
	t.Helper()
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

func TestWatchDirReload(t *testing.T) {
	dir := t.TempDir()
	treeA := buildTree(t, 11)
	if err := os.WriteFile(filepath.Join(dir, "alpha.json"), releaseBytes(t, treeA), 0o644); err != nil {
		t.Fatal(err)
	}
	// Settle the mtime: a freshly written file is deliberately rescanned
	// until its mtime-granularity window closes (TestWatchDirRescansFreshMtime).
	ageFile(t, filepath.Join(dir, "alpha.json"))
	reg := NewRegistry(64)
	api := &API{Registry: reg, WatchDir: dir}
	srv := newTestServer(t, api)

	var out struct {
		Loaded  []string `json:"loaded"`
		Skipped []string `json:"skipped"`
	}
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusOK, &out)
	if len(out.Loaded) != 1 || out.Loaded[0] != "alpha" {
		t.Fatalf("first scan loaded %v", out.Loaded)
	}

	// Unchanged files are skipped (cache and stats survive).
	rel, _ := reg.Get("alpha")
	rel.Count(psd.NewRect(0, 0, 50, 50))
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusOK, &out)
	if len(out.Skipped) != 1 || len(out.Loaded) != 0 {
		t.Fatalf("second scan = %+v", out)
	}
	if rel2, _ := reg.Get("alpha"); rel2 != rel {
		t.Fatal("unchanged file was re-registered")
	}

	// A new file registers under its basename; a bad file reports an error
	// without blocking the good ones.
	treeB := buildTree(t, 12)
	if err := os.WriteFile(filepath.Join(dir, "beta.json"), releaseBytes(t, treeB), 0o644); err != nil {
		t.Fatal(err)
	}
	ageFile(t, filepath.Join(dir, "beta.json"))
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var third struct {
		Loaded  []string `json:"loaded"`
		Skipped []string `json:"skipped"`
		Error   string   `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&third); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("scan with bad file: status %d", resp.StatusCode)
	}
	if len(third.Loaded) != 1 || third.Loaded[0] != "beta" || third.Error == "" {
		t.Fatalf("third scan = %+v", third)
	}
	if _, ok := reg.Get("beta"); !ok {
		t.Fatal("beta not registered")
	}

	// An API-posted release under a watched name must not stick: even with
	// the file unchanged on disk, the next rescan reinstates the file's
	// artifact (the skip requires the live entry to still be file-sourced).
	os.Remove(filepath.Join(dir, "broken.json"))
	if _, err := reg.Register("alpha", "api", bytes.NewReader(releaseBytes(t, treeB))); err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+"/v1/reload", nil, http.StatusOK, &out)
	reinstated, _ := reg.Get("alpha")
	if reinstated.Source == "api" {
		t.Fatal("rescan did not reinstate the watched file over the API-posted release")
	}
}

// TestWatchDirRescansFreshMtime is the regression test for the coarse-mtime
// skip bug: a release overwritten with an equal-length artifact inside the
// mtime's granularity window keeps the exact {size, mtime} it was loaded
// with, so a skip keyed on that pair alone would serve the stale artifact
// forever. A rescan must not trust an unsettled {size, mtime} match.
func TestWatchDirRescansFreshMtime(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hot.json")
	relA := releaseBytes(t, buildTree(t, 11))
	relB := releaseBytes(t, buildTree(t, 12))
	// Pad to a common length (trailing whitespace is valid JSON padding), so
	// the rewrite below is size-preserving, as in the bug scenario.
	for len(relA) < len(relB) {
		relA = append(relA, '\n')
	}
	for len(relB) < len(relA) {
		relB = append(relB, '\n')
	}
	if err := os.WriteFile(path, relA, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(64)
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	q := psd.NewRect(0, 0, 50, 50)
	relHot, _ := reg.Get("hot")
	before, _ := relHot.Count(q)

	// Same-tick rewrite: equal length, and the mtime pinned to the value the
	// scan recorded — exactly what a coarse-mtime filesystem produces when
	// the file is overwritten within the same second it was scanned.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, relB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, info.ModTime(), info.ModTime()); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := reg.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0] != "hot" {
		t.Fatalf("rescan after a same-size same-mtime rewrite skipped the file (loaded %v)", loaded)
	}
	relHot, _ = reg.Get("hot")
	after, _ := relHot.Count(q)
	slab, err := psd.OpenSlab(bytes.NewReader(relB))
	if err != nil {
		t.Fatal(err)
	}
	if after != slab.Count(q) {
		t.Fatalf("rescan served %v, want the rewritten artifact's %v (stale %v)", after, slab.Count(q), before)
	}

	// Once the mtime window has settled, unchanged files skip again — the
	// warm-cache optimization is only suspended inside the window.
	ageFile(t, path)
	if loaded, _, err := reg.ScanDir(dir); err != nil || len(loaded) != 1 {
		t.Fatalf("settling scan = %v, %v", loaded, err)
	}
	rel2, _ := reg.Get("hot")
	if _, skipped, err := reg.ScanDir(dir); err != nil || len(skipped) != 1 {
		t.Fatalf("settled rescan did not skip: %v, %v", skipped, err)
	}
	if rel3, _ := reg.Get("hot"); rel3 != rel2 {
		t.Fatal("settled rescan re-registered an unchanged file")
	}

	// A far-future mtime (skewed writer clock) must settle too: perpetually
	// reloading would wipe the warm cache on every scan with no signal.
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if loaded, _, err := reg.ScanDir(dir); err != nil || len(loaded) != 1 {
		t.Fatalf("future-mtime scan = %v, %v", loaded, err)
	}
	rel4, _ := reg.Get("hot")
	if _, skipped, err := reg.ScanDir(dir); err != nil || len(skipped) != 1 {
		t.Fatalf("future-mtime rescan did not skip: %v, %v", skipped, err)
	}
	if rel5, _ := reg.Get("hot"); rel5 != rel4 {
		t.Fatal("future-mtime rescan re-registered an unchanged file")
	}
}

// TestConcurrentQueriesAndHotReload is the acceptance race check: many
// goroutines query while others repeatedly hot-swap the same release. Every
// answer must equal one of the two valid trees' answers — never a torn mix.
func TestConcurrentQueriesAndHotReload(t *testing.T) {
	treeA := buildTree(t, 21)
	treeB := buildTree(t, 22)
	relA, relB := releaseBytes(t, treeA), releaseBytes(t, treeB)

	reg := NewRegistry(512)
	if _, err := reg.Register("hot", "test", bytes.NewReader(relA)); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	q := psd.NewRect(12.5, 12.5, 87.5, 87.5)
	wantA, wantB := treeA.Count(q), treeB.Count(q)
	if wantA == wantB {
		t.Fatal("test needs distinguishable trees")
	}

	const readers, swaps, queries = 8, 40, 60
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	url := fmt.Sprintf("%s/v1/releases/hot/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				resp, err := http.Get(url)
				if err != nil {
					errc <- err
					return
				}
				var out struct {
					Count float64 `json:"count"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if out.Count != wantA && out.Count != wantB {
					errc <- fmt.Errorf("torn answer %v (want %v or %v)", out.Count, wantA, wantB)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			body := relA
			if i%2 == 0 {
				body = relB
			}
			resp, err := http.Post(srv.URL+"/v1/releases/hot", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errc <- fmt.Errorf("swap status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestCountBatchIntoMatchesPerQuery pins the serving batch path: one
// node-major engine call per request, per-query cache semantics preserved,
// answers and traversal stats identical to the per-rect Count loop at every
// cache state.
func TestCountBatchIntoMatchesPerQuery(t *testing.T) {
	tree := buildTree(t, 31)
	slab := tree.Seal()
	var artifact bytes.Buffer
	if err := tree.WriteBinaryRelease(&artifact); err != nil {
		t.Fatal(err)
	}
	d := tree.Domain()
	qs := make([]psd.Rect, 0, 96)
	for i := 0; i < 96; i++ {
		fx := float64(i%12) / 12
		fy := float64(i/12) / 12
		qs = append(qs, psd.NewRect(
			d.Lo.X+fx*0.8*d.Width(), d.Lo.Y+fy*0.8*d.Height(),
			d.Lo.X+(fx*0.8+0.2)*d.Width(), d.Lo.Y+(fy*0.8+0.2)*d.Height(),
		))
	}
	want := make([]float64, len(qs))
	var wantSt psd.QueryStats
	for i, q := range qs {
		want[i] = slab.Count(q)
	}
	wantSt = slab.CountBatchIntoWorkers(make([]float64, len(qs)), qs, 1)

	for _, cacheSize := range []int{0, 8, 4096} {
		reg := NewRegistry(cacheSize)
		rel, err := reg.Register("b", "test", bytes.NewReader(artifact.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// Cold: every answer fresh, stats cover the whole batch.
		vals := make([]float64, len(qs))
		hits, st := rel.CountBatchInto(vals, qs)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("cache=%d: batch[%d] = %v, want %v", cacheSize, i, vals[i], want[i])
			}
		}
		if hits != 0 {
			t.Fatalf("cache=%d: cold batch reported %d hits", cacheSize, hits)
		}
		if st != wantSt {
			t.Fatalf("cache=%d: cold batch stats %+v, want %+v", cacheSize, st, wantSt)
		}
		// Warm: answers unchanged; with a big enough cache everything hits
		// and the engine does no traversal at all.
		for i := range vals {
			vals[i] = -1
		}
		hits, st = rel.CountBatchInto(vals, qs)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("cache=%d: warm batch[%d] = %v, want %v", cacheSize, i, vals[i], want[i])
			}
		}
		if cacheSize >= len(qs) {
			if hits != len(qs) || st != (psd.QueryStats{}) {
				t.Fatalf("cache=%d: warm batch hits=%d stats=%+v, want all hits / zero stats",
					cacheSize, hits, st)
			}
		}
		// The allocating wrapper agrees.
		wvals, _ := rel.CountBatch(qs)
		for i := range want {
			if wvals[i] != want[i] {
				t.Fatalf("cache=%d: CountBatch[%d] = %v, want %v", cacheSize, i, wvals[i], want[i])
			}
		}
	}
}

// TestDegenerateRectsThroughCache pins degenerate query rectangles —
// zero-width, zero-height, points, bounds exactly on node edges — through
// the serving cache: the first (miss) answer, the cached answer, and the
// batch-path answer must all equal the raw engine's, for both a fixed-height
// and an adaptive (privtree, pruned + partially published) release.
func TestDegenerateRectsThroughCache(t *testing.T) {
	dom := psd.NewRect(0, 0, 100, 100)
	// Skew half the mass into the corner so the adaptive tree actually prunes.
	pts := testPoints(77, 3000, 2)
	qs := []psd.Rect{
		psd.NewRect(25, 10, 25, 90),     // zero width, on an h=2 node edge
		psd.NewRect(10, 50, 90, 50),     // zero height, on the root midpoint
		psd.NewRect(50, 50, 50, 50),     // point on the root corner
		psd.NewRect(33, 77, 33, 77),     // interior point
		psd.NewRect(0, 0, 0, 0),         // domain lower corner
		psd.NewRect(100, 100, 100, 100), // domain upper corner (half-open: outside)
		psd.NewRect(25, 25, 75, 75),     // all bounds on node edges
		psd.NewRect(0, 0, 100, 100),     // the domain
	}
	for _, kind := range []psd.Kind{psd.QuadtreeKind, psd.PrivTreeKind} {
		tree, err := psd.Build(pts, dom, psd.Options{Kind: kind, Height: 4, Epsilon: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		slab := tree.Seal()
		var artifact bytes.Buffer
		if err := tree.WriteBinaryRelease(&artifact); err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry(1024)
		rel, err := reg.Register("d", "test", bytes.NewReader(artifact.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			want := slab.Count(q)
			if got, cached := rel.Count(q); got != want || cached {
				t.Errorf("%v: miss Count(%v) = %v (cached=%v), want %v", kind, q, got, cached, want)
			}
			if got, cached := rel.Count(q); got != want || !cached {
				t.Errorf("%v: hit Count(%v) = %v (cached=%v), want %v", kind, q, got, cached, want)
			}
		}
		// The batch path agrees, fully warm (all hits) and on a fresh
		// registry (all misses through one engine call).
		vals, hits := rel.CountBatch(qs)
		if hits != len(qs) {
			t.Errorf("%v: warm batch hits = %d, want %d", kind, hits, len(qs))
		}
		for i, q := range qs {
			if want := slab.Count(q); vals[i] != want {
				t.Errorf("%v: warm batch[%d] = %v, want %v", kind, i, vals[i], want)
			}
		}
		reg2 := NewRegistry(1024)
		rel2, err := reg2.Register("d2", "test", bytes.NewReader(artifact.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		vals2, hits2 := rel2.CountBatch(qs)
		if hits2 != 0 {
			t.Errorf("%v: cold batch hits = %d, want 0", kind, hits2)
		}
		for i, q := range qs {
			if want := slab.Count(q); vals2[i] != want {
				t.Errorf("%v: cold batch[%d] = %v, want %v", kind, i, vals2[i], want)
			}
		}
	}
}

// TestCacheEvictionsSurfaced pins the eviction counter: a cache smaller
// than the query mix must report evictions through the stats snapshot and
// the /stats endpoint.
func TestCacheEvictionsSurfaced(t *testing.T) {
	tree := buildTree(t, 33)
	reg := NewRegistry(16) // 16 shards x 1 entry
	rel, err := reg.Register("tiny", "test", bytes.NewReader(releaseBytes(t, tree)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		f := float64(i)
		rel.Count(psd.NewRect(f/10, f/10, f/10+1, f/10+1))
	}
	snap := rel.Stats()
	if snap.CacheEvictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", snap)
	}
	api := &API{Registry: reg}
	srv := newTestServer(t, api)
	var statsResp struct {
		Stats StatsSnapshot `json:"stats"`
	}
	getJSON(t, srv.URL+"/v1/releases/tiny/stats", http.StatusOK, &statsResp)
	if statsResp.Stats.CacheEvictions == 0 {
		t.Fatalf("/stats = %+v, want cache_evictions > 0", statsResp.Stats)
	}

	// A fresh all-hit release reports zero evictions.
	reg2 := NewRegistry(4096)
	rel2, err := reg2.Register("big", "test", bytes.NewReader(releaseBytes(t, tree)))
	if err != nil {
		t.Fatal(err)
	}
	rel2.Count(psd.NewRect(0, 0, 1, 1))
	rel2.Count(psd.NewRect(0, 0, 1, 1))
	if s := rel2.Stats(); s.CacheEvictions != 0 {
		t.Fatalf("big cache stats = %+v, want 0 evictions", s)
	}
}

// TestBatchEndpointStats pins the /batch response's per-batch stats field:
// it must equal the engine's aggregate over the missed rectangles.
func TestBatchEndpointStats(t *testing.T) {
	tree := buildTree(t, 35)
	slab := tree.Seal()
	reg := NewRegistry(1024)
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, &API{Registry: reg})

	qs := []psd.Rect{psd.NewRect(0, 0, 50, 50), psd.NewRect(10, 10, 90, 40)}
	wantSt := slab.CountBatchIntoWorkers(make([]float64, len(qs)), qs, 1)
	body, _ := json.Marshal(map[string][][4]float64{"rects": {
		{0, 0, 50, 50}, {10, 10, 90, 40},
	}})
	var batch struct {
		Counts    []float64      `json:"counts"`
		CacheHits int            `json:"cache_hits"`
		Stats     psd.QueryStats `json:"stats"`
	}
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusOK, &batch)
	if batch.Stats != wantSt {
		t.Fatalf("/batch stats = %+v, want %+v", batch.Stats, wantSt)
	}
	// Second, fully cached request: zero traversal.
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusOK, &batch)
	if batch.CacheHits != len(qs) || batch.Stats != (psd.QueryStats{}) {
		t.Fatalf("cached /batch = %+v, want all hits / zero stats", batch)
	}
}

// TestGracefulDrain pins the drain sequence a rolling restart relies on:
// readiness flips to 503 while the listener still serves (the grace window
// for load balancers to route away), an in-flight batch completes across
// Shutdown, and new connections are refused once the listener closes.
func TestGracefulDrain(t *testing.T) {
	tree := buildTree(t, 31)
	reg := NewRegistry(0)
	if _, err := reg.Register("live", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	unpark := make(chan struct{})
	api := &API{Registry: reg}
	api.testHookBatch = func() {
		close(entered)
		<-unpark
	}
	api.SetReady(true)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: api.Handler()}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Park one /batch in flight.
	rect := tree.Domain()
	body, _ := json.Marshal(map[string]any{
		"rects": [][4]float64{{rect.Lo.X, rect.Lo.Y, rect.Hi.X, rect.Hi.Y}},
	})
	type batchResult struct {
		status int
		counts []float64
		err    error
	}
	inflight := make(chan batchResult, 1)
	go func() {
		resp, err := http.Post(base+"/v1/releases/live/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- batchResult{err: err}
			return
		}
		defer resp.Body.Close()
		var out struct {
			Counts []float64 `json:"counts"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		inflight <- batchResult{status: resp.StatusCode, counts: out.Counts, err: err}
	}()
	<-entered

	// Grace window: readiness is down, but the replica still serves.
	api.SetReady(false)
	getJSON(t, base+"/readyz", http.StatusServiceUnavailable, nil)
	getJSON(t, base+"/healthz", http.StatusOK, nil)

	// Shutdown blocks on the parked request; the listener closes first.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	refused := false
	for i := 0; i < 200; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			refused = true
			break
		}
		c.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Fatal("listener still accepting connections after Shutdown began")
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	default:
	}

	// Unpark: the in-flight batch must complete normally.
	close(unpark)
	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight batch: %v", res.err)
	}
	if res.status != http.StatusOK || len(res.counts) != 1 {
		t.Fatalf("in-flight batch: status %d, counts %v", res.status, res.counts)
	}
	if want := tree.Count(rect); res.counts[0] != want {
		t.Fatalf("in-flight batch answered %v, want %v", res.counts[0], want)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}
