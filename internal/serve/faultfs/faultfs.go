// Package faultfs is a fault-injecting filesystem for the serving and
// ingest tiers' robustness tests. It implements the registry's filesystem
// seam (serve.FS, structurally) and the WAL's write-side seam (ingest.FS,
// structurally) over the real filesystem, but lets a test script failures
// per path: failed opens and stats, read errors after N bytes, truncated
// content served with a clean EOF, write errors after N appended bytes
// (with the prefix actually reaching the disk — a torn write), failed
// fsyncs, failed renames, and injected delays. Faults can be bounded (fire
// k times, then heal), which is how transient-versus-permanent
// classification, retry/backoff, and WAL self-healing are proven
// deterministically.
//
// The harness also counts opens per path, which is what pins the quarantine
// contract "never more than one decode attempt per file change": the test
// rescans a quarantined file many times and asserts the open count stayed
// put.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Fault describes what should go wrong for one path. The zero value injects
// nothing. Faults compose: a Delay applies before whatever failure follows.
type Fault struct {
	// OpenErr fails Open outright.
	OpenErr error
	// StatErr fails Stat outright.
	StatErr error
	// ReadErr, when non-nil, fails reads after ReadErrAfter bytes have been
	// served — a mid-stream I/O error, the transient-failure shape.
	ReadErr      error
	ReadErrAfter int
	// TruncateAt, when > 0, serves only the first TruncateAt bytes and then
	// a clean EOF — exactly what a reader sees after a partial (non-atomic)
	// write that was interrupted. The registry must classify this as
	// permanent corruption, not a retryable I/O error.
	TruncateAt int
	// WriteErr, when non-nil, fails appends through OpenAppend after
	// WriteErrAfter bytes have been accepted. The accepted prefix reaches
	// the real file — the torn-write shape an ENOSPC or a yanked disk
	// leaves, which is what the WAL's self-healing truncation must absorb.
	WriteErr      error
	WriteErrAfter int
	// SyncErr fails the file's Sync (fsync). A WAL append whose fsync fails
	// must not be acknowledged.
	SyncErr error
	// RenameErr fails Rename — the commit step of atomicfile-style segment
	// rotation.
	RenameErr error
	// Delay stalls Open and Stat — enough to hold a rescan mid-flight while
	// a test mutates the directory underneath it.
	Delay time.Duration
	// Times bounds how many faulted operations fire before the fault heals
	// itself (0 means forever). Each failed Open/Stat/Rename and each
	// faulted open of a truncating/erroring/appending file consumes one.
	Times int
}

// FS is the injectable filesystem. The zero value is not usable; call New.
type FS struct {
	mu     sync.Mutex
	faults map[string]*Fault
	opens  map[string]int
}

// New returns a fault-free FS over the real filesystem.
func New() *FS {
	return &FS{faults: make(map[string]*Fault), opens: make(map[string]int)}
}

// Set installs (or replaces) the fault for path.
func (f *FS) Set(path string, flt Fault) {
	f.mu.Lock()
	f.faults[path] = &flt
	f.mu.Unlock()
}

// Clear heals path.
func (f *FS) Clear(path string) {
	f.mu.Lock()
	delete(f.faults, path)
	f.mu.Unlock()
}

// OpenCount reports how many times path was opened — the decode-attempt
// counter of the quarantine tests (every registry decode attempt starts
// with exactly one Open).
func (f *FS) OpenCount(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens[path]
}

// ResetCounts zeroes every open counter.
func (f *FS) ResetCounts() {
	f.mu.Lock()
	f.opens = make(map[string]int)
	f.mu.Unlock()
}

// take fetches the active fault for path, consuming one bounded application
// if the fault would actually fire for this operation.
func (f *FS) take(path string) Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	flt := f.faults[path]
	if flt == nil {
		return Fault{}
	}
	out := *flt
	if flt.Times > 0 {
		flt.Times--
		if flt.Times == 0 {
			delete(f.faults, path)
		}
	}
	return out
}

// peek fetches the active fault without consuming an application (for
// operations the fault does not affect).
func (f *FS) peek(path string) Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if flt := f.faults[path]; flt != nil {
		return *flt
	}
	return Fault{}
}

// faulted reports whether flt would alter an Open (directly or through the
// reader it returns).
func openFaulted(flt Fault) bool {
	return flt.OpenErr != nil || flt.ReadErr != nil || flt.TruncateAt > 0
}

// Open implements the seam: the real file, filtered through path's fault.
func (f *FS) Open(name string) (io.ReadCloser, error) {
	f.mu.Lock()
	f.opens[name]++
	f.mu.Unlock()
	flt := f.peek(name)
	if openFaulted(flt) {
		flt = f.take(name)
	}
	if flt.Delay > 0 {
		time.Sleep(flt.Delay)
	}
	if flt.OpenErr != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: flt.OpenErr}
	}
	file, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	if flt.ReadErr == nil && flt.TruncateAt <= 0 {
		return file, nil
	}
	return &faultReader{file: file, fault: flt}, nil
}

// Stat implements the seam.
func (f *FS) Stat(name string) (fs.FileInfo, error) {
	flt := f.peek(name)
	if flt.StatErr != nil {
		flt = f.take(name)
	}
	if flt.Delay > 0 {
		time.Sleep(flt.Delay)
	}
	if flt.StatErr != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: flt.StatErr}
	}
	return os.Stat(name)
}

// Glob implements the seam (never faulted: directory listing is not an
// interesting failure surface for the registry — a missing file already
// covers it).
func (f *FS) Glob(pattern string) ([]string, error) {
	return filepath.Glob(pattern)
}

// faultReader serves a file through a read fault: clean EOF at TruncateAt,
// or ReadErr once ReadErrAfter bytes have been served.
type faultReader struct {
	file   *os.File
	fault  Fault
	served int
}

func (r *faultReader) Read(p []byte) (int, error) {
	// ReadErr wins over TruncateAt when both are set.
	if r.fault.ReadErr != nil {
		if r.served >= r.fault.ReadErrAfter {
			return 0, r.fault.ReadErr
		}
		if rem := r.fault.ReadErrAfter - r.served; len(p) > rem {
			p = p[:rem]
		}
	} else if r.fault.TruncateAt > 0 {
		if r.served >= r.fault.TruncateAt {
			return 0, io.EOF
		}
		if rem := r.fault.TruncateAt - r.served; len(p) > rem {
			p = p[:rem]
		}
	}
	n, err := r.file.Read(p)
	r.served += n
	return n, err
}

func (r *faultReader) Close() error { return r.file.Close() }

// appendFaulted reports whether flt would alter an OpenAppend (directly or
// through the writer it returns).
func appendFaulted(flt Fault) bool {
	return flt.OpenErr != nil || flt.WriteErr != nil || flt.SyncErr != nil
}

// OpenAppend implements the ingest seam: the real file opened for appending
// (created if absent), filtered through path's write faults.
func (f *FS) OpenAppend(name string) (io.WriteCloser, error) {
	f.mu.Lock()
	f.opens[name]++
	f.mu.Unlock()
	flt := f.peek(name)
	if appendFaulted(flt) {
		flt = f.take(name)
	}
	if flt.Delay > 0 {
		time.Sleep(flt.Delay)
	}
	if flt.OpenErr != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: flt.OpenErr}
	}
	file, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultWriter{file: file, path: name, fault: flt}, nil
}

// Rename implements the seam, honoring RenameErr.
func (f *FS) Rename(oldpath, newpath string) error {
	flt := f.peek(oldpath)
	if flt.RenameErr != nil {
		flt = f.take(oldpath)
	}
	if flt.RenameErr != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: flt.RenameErr}
	}
	return os.Rename(oldpath, newpath)
}

// Remove implements the seam (never faulted).
func (f *FS) Remove(name string) error { return os.Remove(name) }

// Truncate implements the seam (never faulted: it is the WAL's self-healing
// move, and a fault there is just the broken-WAL terminal state a test can
// reach through WriteErr already).
func (f *FS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements the seam (never faulted; per-file SyncErr covers the
// interesting ack-durability surface).
func (f *FS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// faultWriter appends through a write fault: WriteErr once WriteErrAfter
// bytes were accepted (the accepted prefix reaches the disk), SyncErr on
// Sync.
type faultWriter struct {
	file     *os.File
	path     string
	fault    Fault
	accepted int
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if w.fault.WriteErr != nil && w.accepted+len(p) > w.fault.WriteErrAfter {
		keep := w.fault.WriteErrAfter - w.accepted
		if keep < 0 {
			keep = 0
		}
		n := 0
		if keep > 0 {
			var err error
			n, err = w.file.Write(p[:keep])
			w.accepted += n
			if err != nil {
				return n, err
			}
		}
		return n, &fs.PathError{Op: "write", Path: w.path, Err: w.fault.WriteErr}
	}
	n, err := w.file.Write(p)
	w.accepted += n
	return n, err
}

func (w *faultWriter) Sync() error {
	if w.fault.SyncErr != nil {
		return &fs.PathError{Op: "sync", Path: w.path, Err: w.fault.SyncErr}
	}
	return w.file.Sync()
}

func (w *faultWriter) Close() error { return w.file.Close() }
