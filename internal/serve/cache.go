package serve

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
)

// queryKey identifies a range query for caching: the four rectangle bounds
// as a fixed-width binary key (4×float64, bit-for-bit — no per-lookup
// formatting or string allocation). Queries against a fixed release are
// deterministic post-processing of the published counts (Section 4.1 — no
// budget is spent at query time), so caching answers is semantically free:
// a hit returns exactly what recomputation would.
type queryKey [4]float64

// cacheShards is the fixed shard count of a Cache; a power of two so shard
// selection is a mask. 16 shards keep lock contention negligible for the
// worker counts this library targets while staying cheap for tiny caches.
const cacheShards = 16

// Cache is a bounded, sharded LRU map from query rectangles to answers.
// Each shard holds its own lock, hash bucket map and recency list, so
// concurrent readers on different shards never contend. A nil *Cache is
// valid and always misses, which is how caching is disabled. Hit/miss
// accounting lives in the per-release stats, not here, so the hot path
// pays no extra atomics.
type Cache struct {
	shards [cacheShards]cacheShard
	// evictions counts answers displaced by capacity pressure — the signal
	// that the cache is undersized for the live query mix. Surfaced in the
	// /stats endpoint.
	evictions atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	items map[queryKey]*list.Element
	order *list.List // front = most recently used
	cap   int
}

type cacheEntry struct {
	key queryKey
	val float64
}

// NewCache returns a cache holding at most capacity answers in total,
// spread evenly over its shards. Capacity <= 0 returns nil (caching off).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			items: make(map[queryKey]*list.Element, perShard),
			order: list.New(),
			cap:   perShard,
		}
	}
	return c
}

// shardOf hashes the key's bit patterns down to a shard index
// (splitmix64-style finalizer; the inputs are not adversarial — worst case
// a hot shard — so a fast non-cryptographic mix is fine).
func shardOf(k queryKey) int {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, f := range k {
		h ^= math.Float64bits(f)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	return int(h & (cacheShards - 1))
}

// Get returns the cached answer for k, marking it most recently used.
func (c *Cache) Get(k queryKey) (float64, bool) {
	if c == nil {
		return 0, false
	}
	s := &c.shards[shardOf(k)]
	s.mu.Lock()
	el, ok := s.items[k]
	var v float64
	if ok {
		s.order.MoveToFront(el)
		// Read under the lock: Put updates existing entries in place.
		v = el.Value.(*cacheEntry).val
	}
	s.mu.Unlock()
	return v, ok
}

// Put stores the answer for k, evicting the shard's least recently used
// entry when full.
func (c *Cache) Put(k queryKey, v float64) {
	if c == nil {
		return
	}
	s := &c.shards[shardOf(k)]
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		el.Value.(*cacheEntry).val = v
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	if s.order.Len() >= s.cap {
		oldest := s.order.Back()
		if oldest != nil {
			delete(s.items, oldest.Value.(*cacheEntry).key)
			s.order.Remove(oldest)
			c.evictions.Add(1)
		}
	}
	s.items[k] = s.order.PushFront(&cacheEntry{key: k, val: v})
	s.mu.Unlock()
}

// Evictions returns the total number of answers evicted to make room.
func (c *Cache) Evictions() uint64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// Len returns the number of cached answers.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
