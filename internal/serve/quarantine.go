package serve

import (
	"math/rand/v2"
	"sort"
	"time"
)

// Quarantine: the watch-dir scanner's memory of artifacts that failed to
// load. One corrupt file in a watched directory must not cost a full decode
// attempt — and a log line — on every rescan forever; and a transient I/O
// hiccup (NFS blip, slow copy) must not brand a good artifact as bad. So a
// failed load is recorded keyed on the file's {size, mtime}: permanent
// failures (the bytes decoded cleanly but are wrong — corruption, validation)
// are never re-read until the file changes, while transient failures (the
// read itself errored) earn a bounded number of retries with exponential
// backoff before they too go quiet. Either way the artifact stays visible —
// /v1/releases lists the quarantine — and the moment the file's {size,
// mtime} changes the slate is wiped and it gets a fresh attempt.

// maxLoadAttempts bounds how many times a transiently-failing artifact is
// retried before the scanner stops re-reading it (until the file changes).
const maxLoadAttempts = 4

// defaultRetryBase is the first retry delay ceiling for transient
// failures; each further attempt doubles it. The actual delay is a full-
// jitter draw from [0, ceiling]: N replicas watching one shared release
// directory all see the same NFS blip at the same moment, and pure
// exponential backoff would march them back in lockstep, re-thundering
// the filer on every attempt. Jitter decorrelates their schedules
// (AWS-style "full jitter"; the fleet proxy's retry path does the same).
const defaultRetryBase = time.Second

// fullJitter draws the retry delay uniformly from [0, d].
func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d) + 1))
}

// Quarantine kinds: how a load failed, which decides the retry policy.
const (
	// quarantineCorrupt marks a permanent failure: the artifact's bytes were
	// read cleanly and are simply not a valid release (truncated write,
	// corruption, failed validation). Re-reading identical bytes cannot
	// succeed, so the file is not touched again until {size, mtime} change.
	quarantineCorrupt = "corrupt"
	// quarantineIO marks a transient failure: the read or stat itself
	// errored, so the bytes were never judged. Retried with backoff, up to
	// maxLoadAttempts.
	quarantineIO = "io"
	// quarantineConflict marks a file rejected by NAME, without reading a
	// byte: a malformed '@' version suffix, or a bare name.bin coexisting
	// with a versioned name@vN.bin family (ambiguous — which should the
	// bare name serve?). Unlike corrupt/io records, conflicts are
	// re-evaluated from the directory listing on every scan and clear
	// themselves the moment the ambiguity is resolved.
	quarantineConflict = "conflict"
)

// QuarantineInfo is the public (and JSON) shape of one quarantined artifact,
// as surfaced by /v1/releases and /v1/reload.
type QuarantineInfo struct {
	Name      string    `json:"name"`
	Path      string    `json:"path"`
	Reason    string    `json:"reason"`
	Kind      string    `json:"kind"`
	Attempts  int       `json:"attempts"`
	FirstSeen time.Time `json:"first_seen"`
	LastTried time.Time `json:"last_tried"`
}

// quarantineEntry is the registry's record of one failing artifact: the
// public info plus the {size, mtime} the failure was observed at (the key
// that decides "has the file changed") and the earliest next retry.
type quarantineEntry struct {
	info      QuarantineInfo
	state     fileState
	nextRetry time.Time
}

// Quarantined returns the current quarantine, sorted by name.
func (g *Registry) Quarantined() []QuarantineInfo {
	g.mu.RLock()
	out := make([]QuarantineInfo, 0, len(g.quarantine))
	for _, qe := range g.quarantine {
		out = append(out, qe.info)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// QuarantineLen returns the number of quarantined artifacts.
func (g *Registry) QuarantineLen() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.quarantine)
}

// quarantineGate decides whether the scanner should skip path without
// touching its bytes. A changed (or not-yet-settled) {size, mtime} wipes the
// record and earns a fresh attempt; an unchanged corrupt file, an exhausted
// transient one, or a transient one whose backoff has not elapsed is skipped
// silently — no read, no decode, no log line.
func (g *Registry) quarantineGate(path string, st fileState, now time.Time) (skip bool) {
	g.mu.RLock()
	qe := g.quarantine[path]
	g.mu.RUnlock()
	if qe == nil {
		return false
	}
	if qe.state.size != st.size || !qe.state.modTime.Equal(st.modTime) || !qe.state.settled() {
		g.mu.Lock()
		delete(g.quarantine, path)
		g.mu.Unlock()
		return false
	}
	if qe.info.Kind == quarantineCorrupt {
		return true
	}
	return qe.info.Attempts >= maxLoadAttempts || now.Before(qe.nextRetry)
}

// noteLoadFailure records one actual failed load attempt of path, creating
// or updating its quarantine entry, and emits the one log line this attempt
// gets. Silent rescans of an unchanged quarantined file never come through
// here — only real attempts do, so the log volume is bounded by
// maxLoadAttempts per file change, not by the rescan rate.
func (g *Registry) noteLoadFailure(name, path string, st fileState, transient bool, err error, now time.Time) {
	kind := quarantineCorrupt
	if transient {
		kind = quarantineIO
	}
	g.mu.Lock()
	qe := g.quarantine[path]
	if qe == nil {
		qe = &quarantineEntry{info: QuarantineInfo{Name: name, Path: path, FirstSeen: now}}
		g.quarantine[path] = qe
	}
	qe.info.Attempts++
	qe.info.Kind = kind
	qe.info.Reason = err.Error()
	qe.info.LastTried = now
	qe.state = st
	delay := g.jitterFn()(g.retryBase << (qe.info.Attempts - 1))
	qe.nextRetry = now.Add(delay)
	attempts := qe.info.Attempts
	g.mu.Unlock()
	switch {
	case kind == quarantineCorrupt:
		g.logf("serve: quarantined %s (corrupt, no re-read until the file changes): %v", path, err)
	case attempts >= maxLoadAttempts:
		g.logf("serve: quarantined %s (io, %d attempts exhausted, no re-read until the file changes): %v",
			path, attempts, err)
	default:
		g.logf("serve: load failed %s (io, attempt %d/%d, next retry in %s): %v",
			path, attempts, maxLoadAttempts, delay.Round(time.Millisecond), err)
	}
}

// noteConflict records a name-level rejection of path (kind "conflict").
// It is called on every scan while the conflict persists, so it logs only
// when the conflict is first seen or its reason changes — rescans of a
// standing conflict are silent, like rescans of an unchanged corrupt file.
// If the conflicted file had already been loaded under this name in an
// earlier scan, that live entry is dropped: an ambiguous name must not keep
// shadowing the versioned family it conflicts with.
func (g *Registry) noteConflict(name, path, reason string, now time.Time) {
	g.mu.Lock()
	qe := g.quarantine[path]
	fresh := qe == nil || qe.info.Kind != quarantineConflict || qe.info.Reason != reason
	if qe == nil {
		qe = &quarantineEntry{info: QuarantineInfo{Name: name, Path: path, FirstSeen: now}}
		g.quarantine[path] = qe
	}
	qe.info.Kind = quarantineConflict
	qe.info.Reason = reason
	qe.info.LastTried = now
	var evicted bool
	if rel, ok := g.entries[name]; ok && rel.Source == path {
		delete(g.entries, name)
		delete(g.files, path)
		evicted = true
	}
	g.mu.Unlock()
	if fresh {
		g.logf("serve: quarantined %s (conflict): %s", path, reason)
	}
	if evicted {
		g.logf("serve: unregistered %q: its file is now conflict-quarantined", name)
	}
}

// clearConflict wipes a conflict record whose cause is gone, so the file
// gets a fresh load. Corrupt/io records are left alone — their causes live
// in the file's bytes, not the directory listing.
func (g *Registry) clearConflict(path string) {
	g.mu.Lock()
	if qe := g.quarantine[path]; qe != nil && qe.info.Kind == quarantineConflict {
		delete(g.quarantine, path)
	}
	g.mu.Unlock()
}

// pruneQuarantine drops quarantine records of paths no longer present in
// the watch directory: a deleted bad file is resolved, not remembered.
func (g *Registry) pruneQuarantine(present map[string]bool) {
	g.mu.Lock()
	for p := range g.quarantine {
		if !present[p] {
			delete(g.quarantine, p)
		}
	}
	g.mu.Unlock()
}
