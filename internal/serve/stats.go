package serve

import (
	"sync/atomic"
	"time"
)

// stats accumulates serving counters for one release. All fields are
// atomics: queries from many connections record concurrently with no lock.
type stats struct {
	requests  atomic.Uint64 // HTTP-level count/batch requests
	queries   atomic.Uint64 // individual rectangles answered
	cacheHits atomic.Uint64 // rectangles answered from the cache
	totalNs   atomic.Int64  // summed request latency
	maxNs     atomic.Int64  // worst request latency
}

func (s *stats) record(queries, hits uint64, d time.Duration) {
	s.requests.Add(1)
	s.queries.Add(queries)
	s.cacheHits.Add(hits)
	ns := d.Nanoseconds()
	s.totalNs.Add(ns)
	for {
		cur := s.maxNs.Load()
		if ns <= cur || s.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// StatsSnapshot is the JSON shape of /v1/releases/{name}/stats.
type StatsSnapshot struct {
	// Requests is the number of count/batch requests served.
	Requests uint64 `json:"requests"`
	// Queries is the number of individual rectangles answered (a batch of
	// 100 adds 100).
	Queries uint64 `json:"queries"`
	// CacheHits / CacheMisses split Queries by whether the answer came from
	// the cache; CacheHitRate is their ratio (0 when no queries ran).
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheLen is the number of answers currently cached.
	CacheLen int `json:"cache_len"`
	// CacheEvictions is the number of answers displaced by capacity
	// pressure — the sizing signal for the -cache flag.
	CacheEvictions uint64 `json:"cache_evictions"`
	// MeanLatencyNs and MaxLatencyNs summarize request latency as observed
	// inside the handler (excluding network and JSON encoding of the
	// response body).
	MeanLatencyNs int64 `json:"mean_latency_ns"`
	MaxLatencyNs  int64 `json:"max_latency_ns"`
}

func (s *stats) snapshot(c *Cache) StatsSnapshot {
	snap := StatsSnapshot{
		Requests:       s.requests.Load(),
		Queries:        s.queries.Load(),
		CacheHits:      s.cacheHits.Load(),
		CacheLen:       c.Len(),
		CacheEvictions: c.Evictions(),
		MaxLatencyNs:   s.maxNs.Load(),
	}
	// The counters are loaded independently while writers run; clamp so a
	// snapshot racing a record can't underflow the misses.
	if snap.CacheHits > snap.Queries {
		snap.CacheHits = snap.Queries
	}
	snap.CacheMisses = snap.Queries - snap.CacheHits
	if snap.Queries > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(snap.Queries)
	}
	if snap.Requests > 0 {
		snap.MeanLatencyNs = s.totalNs.Load() / int64(snap.Requests)
	}
	return snap
}
