package serve

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Versioned releases. A registry key is either a bare name ("taxi" — the
// original single-artifact mode) or a versioned key "taxi@vN" as published
// by the streaming ingest tier, one immutable artifact per version. The two
// modes share the entries map; what versioning adds is RESOLUTION: a query
// for the bare base name serves the pinned version if an operator promoted
// one, else the highest registered version, so `latest` advances atomically
// the instant a new version's artifact is registered — readers never see a
// half-switched state, and time travel is one ?version= away.
//
// The canonical version syntax is strict — "v" followed by a positive
// decimal with no leading zero — because these keys appear in file names,
// URLs, manifests, and the privacy ledger, and two spellings of one version
// ("v2" / "v02") would make budget accounting ambiguous.

// parseVersionSuffix parses the canonical "vN" form (N ≥ 1, no leading
// zero).
func parseVersionSuffix(s string) (int, bool) {
	if len(s) < 2 || len(s) > 10 || s[0] != 'v' || s[1] == '0' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// versionKey builds the canonical versioned key.
func versionKey(base string, v int) string { return fmt.Sprintf("%s@v%d", base, v) }

// parseKey splits a registry key into base name and version. Bare names
// return versioned=false. The error spells out exactly what is wrong —
// it becomes the quarantine reason for misnamed watch-dir files.
func parseKey(key string) (base string, version int, versioned bool, err error) {
	i := strings.IndexByte(key, '@')
	if i < 0 {
		return key, 0, false, validateName(key)
	}
	base, suffix := key[:i], key[i+1:]
	if err := validateName(base); err != nil {
		return "", 0, true, err
	}
	if strings.IndexByte(suffix, '@') >= 0 {
		return "", 0, true, fmt.Errorf("serve: invalid release key %q: more than one '@'", key)
	}
	v, ok := parseVersionSuffix(suffix)
	if !ok {
		return "", 0, true, fmt.Errorf("serve: invalid release key %q: version suffix must be v1, v2, … (no leading zero)", key)
	}
	return base, v, true, nil
}

// validateKey admits bare names and canonical versioned keys.
func validateKey(key string) error {
	_, _, _, err := parseKey(key)
	return err
}

// VersionInfo describes one registered version of a base name.
type VersionInfo struct {
	Version  int       `json:"version"`
	Key      string    `json:"key"`
	Bytes    int64     `json:"bytes"`
	Source   string    `json:"source"`
	LoadedAt time.Time `json:"loaded_at"`
	// Pinned: an operator promoted this version explicitly.
	Pinned bool `json:"pinned,omitempty"`
	// Active: this is the version the bare base name currently resolves to.
	Active bool `json:"active,omitempty"`
}

// SetKeepVersions bounds how many versions per base name the registry
// retains (0 keeps everything). Applies on each install; the pinned
// version is never evicted. Call before the registry serves traffic.
func (g *Registry) SetKeepVersions(k int) { g.keepVersions = k }

// noteInstallLocked maintains the version index after entries[key] was set.
func (g *Registry) noteInstallLocked(key string) {
	base, v, versioned, err := parseKey(key)
	if err != nil || !versioned {
		return
	}
	if v > g.latest[base] {
		g.latest[base] = v
	}
	g.evictVersionsLocked(base)
}

// evictVersionsLocked drops versions at or below latest−keep, except the
// pinned one. Evicted entries also forget their file state, so a
// reappearing artifact would reload cleanly.
func (g *Registry) evictVersionsLocked(base string) {
	if g.keepVersions <= 0 {
		return
	}
	floor := g.latest[base] - g.keepVersions
	pin := g.pinned[base]
	for key, rel := range g.entries {
		b, v, versioned, err := parseKey(key)
		if err != nil || !versioned || b != base {
			continue
		}
		if v <= floor && v != pin {
			delete(g.entries, key)
			delete(g.files, rel.Source)
		}
	}
}

// dropVersionLocked removes a versioned entry's index bookkeeping after its
// map entry was deleted: latest is recomputed from what remains, and a pin
// on the removed version is released (a pin must never point at nothing —
// the bare name would 404 while newer versions sit unreachable).
func (g *Registry) dropVersionLocked(base string, removed int) {
	if g.pinned[base] == removed {
		delete(g.pinned, base)
	}
	max := 0
	for key := range g.entries {
		b, v, versioned, err := parseKey(key)
		if err == nil && versioned && b == base && v > max {
			max = v
		}
	}
	if max == 0 {
		delete(g.latest, base)
	} else {
		g.latest[base] = max
	}
}

// Resolve returns the release name refers to. version may be "" (default
// resolution), "vN", or plain "N". Default resolution: an exact entry wins
// (bare single-artifact names, or a full "name@vN" path), else the base
// name serves its pinned version if set, else its highest version. The
// error text is the 404 body, so it names what was actually looked for.
func (g *Registry) Resolve(name, version string) (*Release, error) {
	if version != "" {
		if strings.IndexByte(name, '@') >= 0 {
			return nil, fmt.Errorf("name %q already carries a version; drop ?version=", name)
		}
		v, ok := parseVersionSuffix(version)
		if !ok {
			if n, err := strconv.Atoi(version); err == nil && n >= 1 {
				v, ok = n, true
			}
		}
		if !ok {
			return nil, fmt.Errorf("bad version %q (want vN or N, N ≥ 1)", version)
		}
		key := versionKey(name, v)
		if rel, ok := g.Get(key); ok {
			return rel, nil
		}
		return nil, fmt.Errorf("no release %q", key)
	}
	if rel, ok := g.Get(name); ok {
		return rel, nil
	}
	g.mu.RLock()
	v := g.pinned[name]
	if v == 0 {
		v = g.latest[name]
	}
	g.mu.RUnlock()
	if v > 0 {
		if rel, ok := g.Get(versionKey(name, v)); ok {
			return rel, nil
		}
	}
	return nil, fmt.Errorf("no release %q", name)
}

// Promote pins the bare base name to an explicit registered version;
// version 0 unpins it, returning the name to latest-wins resolution. The
// check-and-pin is atomic, so a resolve never observes a pin to a version
// that was absent at promote time.
func (g *Registry) Promote(base string, version int) error {
	if err := validateName(base); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if version == 0 {
		delete(g.pinned, base)
		return nil
	}
	if version < 0 {
		return fmt.Errorf("serve: bad version %d", version)
	}
	key := versionKey(base, version)
	if _, ok := g.entries[key]; !ok {
		return fmt.Errorf("serve: cannot promote %s: no such release", key)
	}
	g.pinned[base] = version
	return nil
}

// Versions lists the registered versions of a base name, oldest first,
// with the pin and the active (default-resolution) version marked.
func (g *Registry) Versions(base string) []VersionInfo {
	g.mu.RLock()
	defer g.mu.RUnlock()
	active := g.pinned[base]
	if active == 0 {
		active = g.latest[base]
	}
	// A bare entry shadows every version in default resolution.
	if _, bare := g.entries[base]; bare {
		active = 0
	}
	var out []VersionInfo
	for key, rel := range g.entries {
		b, v, versioned, err := parseKey(key)
		if err != nil || !versioned || b != base {
			continue
		}
		out = append(out, VersionInfo{
			Version:  v,
			Key:      key,
			Bytes:    rel.Bytes,
			Source:   rel.Source,
			LoadedAt: rel.LoadedAt,
			Pinned:   v == g.pinned[base],
			Active:   v == active,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// pruneVanishedVersions unregisters versioned entries that were loaded from
// files in dir which no longer exist there — the serving mirror of the
// ingest tier's artifact pruning. Bare-name entries are untouched (their
// lifecycle is operator-driven), as are entries sourced elsewhere (API
// uploads, manifests, other directories).
func (g *Registry) pruneVanishedVersions(dir string, present map[string]bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for key, rel := range g.entries {
		base, v, versioned, err := parseKey(key)
		if err != nil || !versioned {
			continue
		}
		if filepath.Dir(rel.Source) != dir || present[rel.Source] {
			continue
		}
		delete(g.entries, key)
		delete(g.files, rel.Source)
		g.dropVersionLocked(base, v)
	}
}

// VersionedBases returns the base names that have versioned entries, sorted.
func (g *Registry) VersionedBases() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.latest))
	for base := range g.latest {
		out = append(out, base)
	}
	sort.Strings(out)
	return out
}
