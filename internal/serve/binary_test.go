package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"psd"
)

// binaryReleaseBytes serializes a tree's release in binary format v2.
func binaryReleaseBytes(t *testing.T, tree *psd.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tree.WriteBinaryRelease(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRegisterBinaryArtifact pins content negotiation on the upload path:
// a binary-v2 body registers exactly like the JSON body of the same
// release, and the two served releases answer identically.
func TestRegisterBinaryArtifact(t *testing.T) {
	tree := buildTree(t, 31)
	reg := NewRegistry(64)
	if _, err := reg.Register("json", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	binRel, err := reg.Register("bin", "test", bytes.NewReader(binaryReleaseBytes(t, tree)))
	if err != nil {
		t.Fatalf("registering binary artifact: %v", err)
	}
	if binRel.Slab.Kind() != tree.Kind() || binRel.Slab.Height() != tree.Height() {
		t.Fatalf("binary release metadata = %s h=%d", binRel.Slab.Kind(), binRel.Slab.Height())
	}
	jsonRel, _ := reg.Get("json")
	for _, q := range []psd.Rect{
		psd.NewRect(0, 0, 100, 100),
		psd.NewRect(10, 20, 55, 70),
		psd.NewRect(47, 47, 53, 53),
	} {
		want := tree.Count(q)
		if got, _ := binRel.Count(q); got != want {
			t.Errorf("binary release Count(%v) = %v, want %v", q, got, want)
		}
		if got, _ := jsonRel.Count(q); got != want {
			t.Errorf("json release Count(%v) = %v, want %v", q, got, want)
		}
	}

	// Over HTTP too: POST the binary body, query it back.
	api := &API{Registry: NewRegistry(64)}
	srv := newTestServer(t, api)
	var info releaseInfo
	postJSON(t, srv.URL+"/v1/releases/roads", binaryReleaseBytes(t, tree), http.StatusCreated, &info)
	if info.Kind != "quadtree" || info.Height != tree.Height() {
		t.Fatalf("binary register info = %+v", info)
	}
	q := psd.NewRect(10, 20, 55, 70)
	var single struct {
		Count float64 `json:"count"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/releases/roads/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y), http.StatusOK, &single)
	if want := tree.Count(q); single.Count != want {
		t.Fatalf("served binary count %v, want %v", single.Count, want)
	}

	// Truncated binary bodies must not register.
	bin := binaryReleaseBytes(t, tree)
	if _, err := api.Registry.Register("trunc", "test", bytes.NewReader(bin[:len(bin)/2])); err == nil {
		t.Fatal("truncated binary artifact registered")
	}
}

// TestScanDirBinary pins watch-directory support for *.bin artifacts
// alongside *.json ones.
func TestScanDirBinary(t *testing.T) {
	dir := t.TempDir()
	treeA, treeB := buildTree(t, 33), buildTree(t, 34)
	if err := os.WriteFile(filepath.Join(dir, "alpha.bin"), binaryReleaseBytes(t, treeA), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "beta.json"), releaseBytes(t, treeB), 0o644); err != nil {
		t.Fatal(err)
	}
	// Settle the mtimes so the rescan-skip assertions below are about the
	// steady state, not the deliberately-rescanned fresh-mtime window.
	ageFile(t, filepath.Join(dir, "alpha.bin"))
	ageFile(t, filepath.Join(dir, "beta.json"))
	reg := NewRegistry(64)
	loaded, _, err := reg.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("scan loaded %v, want alpha+beta", loaded)
	}
	alpha, ok := reg.Get("alpha")
	if !ok {
		t.Fatal("alpha.bin not registered under its stem")
	}
	q := psd.NewRect(5, 5, 80, 80)
	if got, _ := alpha.Count(q); got != treeA.Count(q) {
		t.Fatalf("alpha Count = %v, want %v", got, treeA.Count(q))
	}

	// Unchanged .bin files are skipped on rescan, like .json ones.
	_, skipped, err := reg.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 2 {
		t.Fatalf("rescan skipped %v, want both", skipped)
	}

	// A stem collision (alpha.json next to alpha.bin) resolves to the JSON
	// file — and stays stable: the next rescan skips it instead of
	// ping-ponging between the two encodings and wiping the warm cache.
	if err := os.WriteFile(filepath.Join(dir, "alpha.json"), releaseBytes(t, treeB), 0o644); err != nil {
		t.Fatal(err)
	}
	ageFile(t, filepath.Join(dir, "alpha.json"))
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	alpha, _ = reg.Get("alpha")
	if got, _ := alpha.Count(q); got != treeB.Count(q) {
		t.Fatalf("collision winner answered %v, want the JSON artifact's %v", got, treeB.Count(q))
	}
	winner := alpha
	_, skipped, err = reg.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 2 {
		t.Fatalf("collision rescan skipped %v, want both names", skipped)
	}
	if again, _ := reg.Get("alpha"); again != winner {
		t.Fatal("unchanged collision winner was re-registered on rescan")
	}
}

// TestServedFormatsAgree serves the same release once from JSON and once
// from binary and requires bit-identical answers over the full HTTP stack.
func TestServedFormatsAgree(t *testing.T) {
	tree := buildTree(t, 35)
	reg := NewRegistry(0) // cache off: every answer recomputed
	if _, err := reg.Register("j", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("b", "test", bytes.NewReader(binaryReleaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, &API{Registry: reg})
	rects := [][4]float64{
		{0, 0, 100, 100}, {25, 25, 75, 75}, {10, 60, 90, 95}, {47, 47, 53, 53},
	}
	body, _ := json.Marshal(map[string]any{"rects": rects})
	answers := map[string][]float64{}
	for _, name := range []string{"j", "b"} {
		var out struct {
			Counts []float64 `json:"counts"`
		}
		postJSON(t, srv.URL+"/v1/releases/"+name+"/batch", body, http.StatusOK, &out)
		answers[name] = out.Counts
	}
	for i := range rects {
		if answers["j"][i] != answers["b"][i] {
			t.Fatalf("rect %d: json-served %v, binary-served %v", i, answers["j"][i], answers["b"][i])
		}
	}
}
