package serve

import (
	"bytes"
	"net/http"

	"psd/internal/promtext"
)

// GET /metrics: the same counters /stats and /v1/releases/{name}/stats
// already expose, in Prometheus text exposition format so a scraper can
// watch the fleet without bespoke JSON glue. No external dependencies —
// the exposition writer is internal/promtext.

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	pw := promtext.NewWriter(&buf)
	st := a.serverStats()

	pw.Family("psdserve_ready", "gauge", "1 when the replica reports ready, 0 while loading or draining.")
	pw.Sample("psdserve_ready", nil, boolGauge(st.Ready))
	pw.Family("psdserve_releases", "gauge", "Number of releases currently served.")
	pw.Sample("psdserve_releases", nil, float64(st.Releases))
	pw.Family("psdserve_quarantined", "gauge", "Number of quarantined watch-dir artifacts.")
	pw.Sample("psdserve_quarantined", nil, float64(st.Quarantined))
	if bases := a.Registry.VersionedBases(); len(bases) > 0 {
		type baseVer struct {
			base           string
			count          int
			latest, active float64
		}
		bvs := make([]baseVer, 0, len(bases))
		for _, b := range bases {
			bv := baseVer{base: b}
			for _, v := range a.Registry.Versions(b) {
				bv.count++
				if float64(v.Version) > bv.latest {
					bv.latest = float64(v.Version)
				}
				if v.Active {
					bv.active = float64(v.Version)
				}
			}
			bvs = append(bvs, bv)
		}
		baseLabel := func(b string) []promtext.Label {
			return []promtext.Label{{Name: "base", Value: b}}
		}
		pw.Family("psdserve_release_versions", "gauge", "Registered versions per base release name.")
		for _, bv := range bvs {
			pw.Sample("psdserve_release_versions", baseLabel(bv.base), float64(bv.count))
		}
		pw.Family("psdserve_release_version_latest", "gauge", "Highest registered version per base release name.")
		for _, bv := range bvs {
			pw.Sample("psdserve_release_version_latest", baseLabel(bv.base), bv.latest)
		}
		pw.Family("psdserve_release_version_active", "gauge", "Version the bare base name resolves to (pinned or latest).")
		for _, bv := range bvs {
			pw.Sample("psdserve_release_version_active", baseLabel(bv.base), bv.active)
		}
	}
	pw.Family("psdserve_in_flight", "gauge", "Concurrently served /v1 requests right now.")
	pw.Sample("psdserve_in_flight", nil, float64(st.InFlight))
	pw.Family("psdserve_panics_total", "counter", "Handler panics recovered.")
	pw.Sample("psdserve_panics_total", nil, float64(st.Panics))
	pw.Family("psdserve_sheds_total", "counter", "Requests shed with 503 at the in-flight cap.")
	pw.Sample("psdserve_sheds_total", nil, float64(st.Sheds))
	pw.Family("psdserve_timeouts_total", "counter", "Requests abandoned at the per-request deadline.")
	pw.Sample("psdserve_timeouts_total", nil, float64(st.Timeouts))

	rels := a.Registry.List()
	relLabel := func(name string) []promtext.Label {
		return []promtext.Label{{Name: "release", Value: name}}
	}
	// One stats snapshot per release, reused across families (the format
	// wants each family's samples grouped under its TYPE line).
	snaps := make([]StatsSnapshot, len(rels))
	for i, rel := range rels {
		snaps[i] = rel.Stats()
	}
	perRelease := []struct {
		name, typ, help string
		value           func(StatsSnapshot) float64
	}{
		{"psdserve_release_requests_total", "counter", "Count/batch requests served, per release.",
			func(s StatsSnapshot) float64 { return float64(s.Requests) }},
		{"psdserve_release_queries_total", "counter", "Individual rectangles answered, per release.",
			func(s StatsSnapshot) float64 { return float64(s.Queries) }},
		{"psdserve_release_cache_hits_total", "counter", "Rectangles answered from the cache, per release.",
			func(s StatsSnapshot) float64 { return float64(s.CacheHits) }},
		{"psdserve_release_cache_hit_rate", "gauge", "Cache hit rate since load, per release.",
			func(s StatsSnapshot) float64 { return s.CacheHitRate }},
		{"psdserve_release_cache_len", "gauge", "Answers currently cached, per release.",
			func(s StatsSnapshot) float64 { return float64(s.CacheLen) }},
		{"psdserve_release_cache_evictions_total", "counter", "Cached answers displaced by capacity pressure, per release.",
			func(s StatsSnapshot) float64 { return float64(s.CacheEvictions) }},
	}
	for _, fam := range perRelease {
		pw.Family(fam.name, fam.typ, fam.help)
		for i, rel := range rels {
			pw.Sample(fam.name, relLabel(rel.Name), fam.value(snaps[i]))
		}
	}
	if pw.Err() != nil {
		writeError(w, http.StatusInternalServerError, "rendering metrics: %v", pw.Err())
		return
	}
	w.Header().Set("Content-Type", promtext.ContentType)
	w.Write(buf.Bytes())
}
