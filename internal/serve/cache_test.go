package serve

import (
	"sync"
	"testing"
)

func key(a, b, c, d float64) queryKey { return queryKey{a, b, c, d} }

func TestCacheGetPut(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get(key(0, 0, 1, 1)); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put(key(0, 0, 1, 1), 42)
	if v, ok := c.Get(key(0, 0, 1, 1)); !ok || v != 42 {
		t.Fatalf("got (%v,%v), want (42,true)", v, ok)
	}
	// Overwrite updates the value in place.
	c.Put(key(0, 0, 1, 1), 43)
	if v, _ := c.Get(key(0, 0, 1, 1)); v != 43 {
		t.Fatalf("got %v, want 43", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheBounded(t *testing.T) {
	const capacity = 128
	c := NewCache(capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(key(float64(i), 0, float64(i)+1, 1), float64(i))
	}
	if n := c.Len(); n > capacity+cacheShards {
		t.Fatalf("cache grew to %d entries, capacity %d", n, capacity)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// A capacity-16 cache has one slot per shard; within a shard the oldest
	// entry goes first. Fill one slot, touch it, add a colliding entry, and
	// confirm the recently used one survived. To guarantee a collision we
	// find two keys in the same shard.
	c := NewCache(cacheShards)
	a := key(1, 2, 3, 4)
	shard := shardOf(a)
	var b queryKey
	for i := 5.0; ; i++ {
		b = key(i, i, i+1, i+1)
		if shardOf(b) == shard && b != a {
			break
		}
	}
	c.Put(a, 1)
	c.Get(a) // a is now most recently used in its shard
	c.Put(b, 2)
	if _, ok := c.Get(b); !ok {
		t.Fatal("fresh entry b evicted")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	c.Put(key(0, 0, 1, 1), 1)
	if _, ok := c.Get(key(0, 0, 1, 1)); ok {
		t.Fatal("nil cache should always miss")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache should be empty")
	}
	if NewCache(0) != nil {
		t.Fatal("NewCache(0) should disable caching")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(float64(i%100), float64(g), 1, 1)
				if v, ok := c.Get(k); ok && v != float64(i%100) {
					t.Errorf("corrupted value %v for %v", v, k)
					return
				}
				c.Put(k, float64(i%100))
			}
		}(g)
	}
	wg.Wait()
}
