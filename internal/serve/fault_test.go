package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"psd"
	"psd/internal/serve/faultfs"
)

// The fault-injection suite: every failure mode the robustness layer claims
// to absorb, exercised deterministically through the faultfs seam —
// corrupt releases, truncated writes, transient I/O errors, handler panics,
// overload, and expired deadlines. Throughout, the server must stay up,
// keep serving what it already had, and surface each fault through the
// /stats counters and the quarantine list.

// writeFile writes an artifact into the watch dir and settles its mtime so
// rescans may trust {size, mtime}.
func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ageFile(t, path)
}

// quietRegistry returns a registry with immediate transient retries and a
// captured log, wired to the given fault filesystem.
func quietRegistry(cacheSize int, ffs *faultfs.FS, logBuf *bytes.Buffer) *Registry {
	reg := NewRegistry(cacheSize)
	reg.retryBase = 0
	reg.SetFS(ffs)
	reg.SetLogger(log.New(logBuf, "", 0))
	return reg
}

func serverStatsOf(t *testing.T, url string) ServerStats {
	t.Helper()
	var st ServerStats
	getJSON(t, url+"/stats", http.StatusOK, &st)
	return st
}

// TestQuarantineCorruptRelease pins the permanent-failure path: a corrupt
// artifact in the watch dir fails its one decode attempt, lands in
// quarantine, and is never re-read on later rescans until the file changes
// — at which point it gets exactly one fresh attempt. The good artifact
// next to it keeps serving the whole time.
func TestQuarantineCorruptRelease(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	writeFile(t, good, releaseBytes(t, buildTree(t, 41)))
	writeFile(t, bad, []byte("this is not a release"))

	ffs := faultfs.New()
	var logBuf bytes.Buffer
	reg := quietRegistry(64, ffs, &logBuf)
	api := &API{Registry: reg, WatchDir: dir}
	srv := newTestServer(t, api)

	if _, _, err := reg.ScanDir(dir); err == nil {
		t.Fatal("scan with a corrupt artifact reported success")
	}
	if _, ok := reg.Get("good"); !ok {
		t.Fatal("corrupt artifact blocked the good one")
	}
	q := reg.Quarantined()
	if len(q) != 1 || q[0].Name != "bad" || q[0].Kind != quarantineCorrupt || q[0].Attempts != 1 {
		t.Fatalf("quarantine = %+v", q)
	}
	if got := strings.Count(logBuf.String(), "quarantined"); got != 1 {
		t.Fatalf("first failure logged %d quarantine lines:\n%s", got, logBuf.String())
	}

	// Rescans skip the unchanged corrupt file: no decode attempts, no new
	// errors, no new log lines.
	for i := 0; i < 5; i++ {
		if _, _, err := reg.ScanDir(dir); err != nil {
			t.Fatalf("rescan %d re-reported the quarantined file: %v", i, err)
		}
	}
	if n := ffs.OpenCount(bad); n != 1 {
		t.Fatalf("quarantined file was opened %d times, want exactly 1 per change", n)
	}
	if got := strings.Count(logBuf.String(), "quarantined"); got != 1 {
		t.Fatalf("rescans added log lines (%d total):\n%s", got, logBuf.String())
	}

	// The quarantine is visible to operators: /v1/releases and /stats.
	var list struct {
		Releases    []releaseInfo    `json:"releases"`
		Quarantined []QuarantineInfo `json:"quarantined"`
	}
	getJSON(t, srv.URL+"/v1/releases", http.StatusOK, &list)
	if len(list.Quarantined) != 1 || list.Quarantined[0].Name != "bad" {
		t.Fatalf("/v1/releases quarantine = %+v", list.Quarantined)
	}
	if st := serverStatsOf(t, srv.URL); st.Quarantined != 1 || st.Releases != 1 {
		t.Fatalf("/stats = %+v, want 1 quarantined / 1 release", st)
	}

	// Fixing the file earns a fresh attempt, which succeeds and clears it.
	writeFile(t, bad, releaseBytes(t, buildTree(t, 42)))
	loaded, _, err := reg.ScanDir(dir)
	if err != nil {
		t.Fatalf("scan after fix: %v", err)
	}
	if len(loaded) != 1 || loaded[0] != "bad" {
		t.Fatalf("scan after fix loaded %v", loaded)
	}
	if n := reg.QuarantineLen(); n != 0 {
		t.Fatalf("quarantine not cleared after fix: %d", n)
	}
}

// TestTruncatedWriteQuarantinedAsCorrupt pins the partial-write failure
// mode: a binary artifact cut off mid-file reads cleanly up to EOF and then
// fails to decode — permanent corruption (re-reading identical bytes cannot
// help), one decode attempt per file change, no retries.
func TestTruncatedWriteQuarantinedAsCorrupt(t *testing.T) {
	dir := t.TempDir()
	tree := buildTree(t, 43)
	var bin bytes.Buffer
	if err := tree.WriteBinaryRelease(&bin); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cut.bin")
	writeFile(t, path, bin.Bytes())

	ffs := faultfs.New()
	// Serve only the first 100 bytes with a clean EOF: what a reader sees
	// after an interrupted non-atomic write.
	ffs.Set(path, faultfs.Fault{TruncateAt: 100})
	var logBuf bytes.Buffer
	reg := quietRegistry(64, ffs, &logBuf)

	if _, _, err := reg.ScanDir(dir); err == nil {
		t.Fatal("truncated artifact loaded")
	}
	q := reg.Quarantined()
	if len(q) != 1 || q[0].Kind != quarantineCorrupt {
		t.Fatalf("quarantine = %+v, want one corrupt entry", q)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := reg.ScanDir(dir); err != nil {
			t.Fatalf("rescan %d re-attempted the truncated file: %v", i, err)
		}
	}
	if n := ffs.OpenCount(path); n != 1 {
		t.Fatalf("truncated file was opened %d times, want 1", n)
	}

	// Healing the seam and touching the file gets it served.
	ffs.Clear(path)
	now := time.Now().Add(-30 * time.Second)
	if err := os.Chtimes(path, now, now); err != nil {
		t.Fatal(err)
	}
	if loaded, _, err := reg.ScanDir(dir); err != nil || len(loaded) != 1 {
		t.Fatalf("scan after heal = %v, %v", loaded, err)
	}
}

// TestTransientIORetryAndBackoff pins the transient-failure path: a read
// that dies with a genuine I/O error is retried (the bytes were never
// judged), with backoff, at most maxLoadAttempts times — and a mid-stream
// error after some clean bytes still counts as transient.
func TestTransientIORetryAndBackoff(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flaky.json")
	writeFile(t, path, releaseBytes(t, buildTree(t, 44)))
	errIO := errors.New("injected EIO")

	// One-shot failure: the first scan fails transiently, the immediate
	// retry (retryBase 0) succeeds.
	ffs := faultfs.New()
	ffs.Set(path, faultfs.Fault{ReadErr: errIO, ReadErrAfter: 64, Times: 1})
	var logBuf bytes.Buffer
	reg := quietRegistry(64, ffs, &logBuf)
	if _, _, err := reg.ScanDir(dir); err == nil {
		t.Fatal("faulted scan reported success")
	}
	q := reg.Quarantined()
	if len(q) != 1 || q[0].Kind != quarantineIO || q[0].Attempts != 1 {
		t.Fatalf("quarantine = %+v, want one io entry with 1 attempt", q)
	}
	loaded, _, err := reg.ScanDir(dir)
	if err != nil || len(loaded) != 1 {
		t.Fatalf("retry scan = %v, %v", loaded, err)
	}
	if reg.QuarantineLen() != 0 {
		t.Fatal("successful retry did not clear the quarantine")
	}
	if n := ffs.OpenCount(path); n != 2 {
		t.Fatalf("open count %d, want 2 (one failure, one retry)", n)
	}

	// Unhealing failure: attempts are bounded. After maxLoadAttempts the
	// scanner goes quiet until the file changes.
	ffs2 := faultfs.New()
	ffs2.Set(path, faultfs.Fault{ReadErr: errIO})
	reg2 := quietRegistry(64, ffs2, &logBuf)
	for i := 0; i < maxLoadAttempts+3; i++ {
		reg2.ScanDir(dir)
	}
	if n := ffs2.OpenCount(path); n != maxLoadAttempts {
		t.Fatalf("unhealing file was opened %d times, want %d", n, maxLoadAttempts)
	}
	if q := reg2.Quarantined(); len(q) != 1 || q[0].Attempts != maxLoadAttempts {
		t.Fatalf("quarantine after exhaustion = %+v", q)
	}

	// Backoff gating: with a long retryBase, the failed attempt is not
	// retried on an immediate rescan at all.
	ffs3 := faultfs.New()
	ffs3.Set(path, faultfs.Fault{ReadErr: errIO})
	reg3 := quietRegistry(64, ffs3, &logBuf)
	reg3.retryBase = time.Hour
	// Pin the jitter to its ceiling: this test is about the gate holding
	// for the full backoff window, not about the draw.
	reg3.jitter = func(d time.Duration) time.Duration { return d }
	reg3.ScanDir(dir)
	for i := 0; i < 3; i++ {
		if _, _, err := reg3.ScanDir(dir); err != nil {
			t.Fatalf("backoff rescan %d attempted a load: %v", i, err)
		}
	}
	if n := ffs3.OpenCount(path); n != 1 {
		t.Fatalf("backoff rescans opened the file %d times, want 1", n)
	}

	// A stat failure is transient too: it heals, the artifact loads.
	ffs4 := faultfs.New()
	ffs4.Set(path, faultfs.Fault{StatErr: errIO, Times: 1})
	reg4 := quietRegistry(64, ffs4, &logBuf)
	if _, _, err := reg4.ScanDir(dir); err == nil {
		t.Fatal("stat-faulted scan reported success")
	}
	if loaded, _, err := reg4.ScanDir(dir); err != nil || len(loaded) != 1 {
		t.Fatalf("scan after stat heal = %v, %v", loaded, err)
	}
}

// TestBadReloadKeepsServingOldRelease pins crash-safety across a bad
// republish: when a served file is overwritten with garbage (a crashed
// writer's torn output), the rescan quarantines the new bytes but the old
// release keeps serving untouched — a malformed artifact never displaces a
// live one.
func TestBadReloadKeepsServingOldRelease(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.json")
	tree := buildTree(t, 45)
	writeFile(t, path, releaseBytes(t, tree))

	ffs := faultfs.New()
	var logBuf bytes.Buffer
	reg := quietRegistry(64, ffs, &logBuf)
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	rel, _ := reg.Get("live")
	q := psd.NewRect(10, 10, 60, 60)
	want, _ := rel.Count(q)

	// Torn overwrite: half a JSON artifact.
	writeFile(t, path, releaseBytes(t, tree)[:40])
	if _, _, err := reg.ScanDir(dir); err == nil {
		t.Fatal("torn artifact loaded")
	}
	rel2, ok := reg.Get("live")
	if !ok {
		t.Fatal("torn overwrite removed the live release")
	}
	if rel2 != rel {
		t.Fatal("torn overwrite displaced the live release")
	}
	if got, _ := rel2.Count(q); got != want {
		t.Fatalf("after torn overwrite Count = %v, want %v", got, want)
	}
	if qr := reg.Quarantined(); len(qr) != 1 || qr[0].Kind != quarantineCorrupt {
		t.Fatalf("quarantine = %+v", qr)
	}

	// Leftover temp files from a crashed atomic writer are invisible to the
	// scanner (glob only sees *.json / *.bin).
	if err := os.WriteFile(filepath.Join(dir, ".live.json.tmp123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeFile(t, path, releaseBytes(t, tree))
	if loaded, _, err := reg.ScanDir(dir); err != nil || len(loaded) != 1 {
		t.Fatalf("scan with leftover tmp = %v, %v", loaded, err)
	}
}

// TestSlowIODoesNotBlockServing pins the isolation between scanning and
// serving: a rescan stalled in slow I/O must not stop the server from
// answering queries against already-loaded releases.
func TestSlowIODoesNotBlockServing(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.json")
	slow := filepath.Join(dir, "slow.json")
	writeFile(t, live, releaseBytes(t, buildTree(t, 46)))

	ffs := faultfs.New()
	var logBuf bytes.Buffer
	reg := quietRegistry(64, ffs, &logBuf)
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	writeFile(t, slow, releaseBytes(t, buildTree(t, 47)))
	ffs.Set(slow, faultfs.Fault{Delay: 150 * time.Millisecond})

	api := &API{Registry: reg, WatchDir: dir}
	srv := newTestServer(t, api)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		reg.ScanDir(dir)
	}()
	// While the scan crawls, queries answer promptly.
	deadline := time.Now().Add(100 * time.Millisecond)
	served := 0
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/v1/releases/live/count?rect=0,0,50,50", http.StatusOK, nil)
		served++
	}
	<-scanDone
	if served == 0 {
		t.Fatal("no queries served during the slow scan")
	}
	if _, ok := reg.Get("slow"); !ok {
		t.Fatal("slow artifact did not load")
	}
}

// TestHandlerPanicRecovered pins the panic middleware: a panicking handler
// answers 500, the stack is logged, the counter moves — and the very same
// server keeps answering.
func TestHandlerPanicRecovered(t *testing.T) {
	tree := buildTree(t, 48)
	reg := NewRegistry(64)
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	api := &API{Registry: reg, Logger: log.New(&logBuf, "", 0)}
	boom := true
	api.testHookBatch = func() {
		if boom {
			boom = false
			panic("injected handler panic")
		}
	}
	srv := newTestServer(t, api)

	body, _ := json.Marshal(map[string][][4]float64{"rects": {{0, 0, 10, 10}}})
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusInternalServerError, nil)
	if !strings.Contains(logBuf.String(), "injected handler panic") {
		t.Fatalf("panic not logged:\n%s", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "fault_test") && !strings.Contains(logBuf.String(), "goroutine") {
		t.Fatalf("no stack in panic log:\n%s", logBuf.String())
	}

	// The server is still alive and correct.
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusOK, nil)
	if st := serverStatsOf(t, srv.URL); st.Panics != 1 {
		t.Fatalf("/stats panics = %d, want 1", st.Panics)
	}
}

// TestLoadShedding pins the backpressure path: past MaxInFlight, requests
// are refused immediately with 503 + Retry-After, the shed counter moves,
// and the in-flight request completes untouched.
func TestLoadShedding(t *testing.T) {
	tree := buildTree(t, 49)
	reg := NewRegistry(64)
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg, MaxInFlight: 1, RetryAfter: 2 * time.Second}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	api.testHookBatch = func() {
		select {
		case entered <- struct{}{}:
			<-release // first request parks here, holding its in-flight slot
		default:
		}
	}
	srv := newTestServer(t, api)

	body, _ := json.Marshal(map[string][][4]float64{"rects": {{0, 0, 10, 10}}})
	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/releases/r/batch", "application/json", bytes.NewReader(body))
		if err == nil {
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("held request finished with %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		firstDone <- err
	}()
	<-entered // the slot is provably occupied

	resp, err := http.Post(srv.URL+"/v1/releases/r/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request got %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}

	// Probes bypass the gate even at capacity.
	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
	st := serverStatsOf(t, srv.URL)
	if st.Sheds != 1 || st.InFlight != 1 {
		t.Fatalf("/stats = %+v, want 1 shed / 1 in flight", st)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	// Capacity is back.
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusOK, nil)
}

// TestRequestDeadline pins the per-request deadline: a request that
// outlives RequestTimeout abandons its traversal and answers 503 +
// Retry-After, and the timeout counter moves. The request is provably late
// (the hook sleeps past the deadline), so the outcome is deterministic.
func TestRequestDeadline(t *testing.T) {
	tree := buildTree(t, 50)
	reg := NewRegistry(0) // caching off: the miss path must consult the deadline
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg, RequestTimeout: 5 * time.Millisecond}
	api.testHookBatch = func() { time.Sleep(30 * time.Millisecond) }
	srv := newTestServer(t, api)

	body, _ := json.Marshal(map[string][][4]float64{"rects": {{0, 0, 10, 10}}})
	resp, err := http.Post(srv.URL+"/v1/releases/r/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("late request got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("late request has no Retry-After")
	}
	if st := serverStatsOf(t, srv.URL); st.Timeouts != 1 {
		t.Fatalf("/stats timeouts = %d, want 1", st.Timeouts)
	}

	// Within the deadline, the same endpoint answers fine.
	api.testHookBatch = nil
	postJSON(t, srv.URL+"/v1/releases/r/batch", body, http.StatusOK, nil)
}

// TestReadyzLifecycle pins the health/readiness split: /healthz is
// liveness-only (200 from birth), /readyz is 503 until the server is marked
// ready and 503 again when a drain begins — while /v1 keeps answering
// through it all (draining replicas finish their in-flight work; only the
// balancer's routing changes).
func TestReadyzLifecycle(t *testing.T) {
	tree := buildTree(t, 51)
	reg := NewRegistry(64)
	if _, err := reg.Register("r", "test", bytes.NewReader(releaseBytes(t, tree))); err != nil {
		t.Fatal(err)
	}
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
	getJSON(t, srv.URL+"/readyz", http.StatusServiceUnavailable, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=0,0,10,10", http.StatusOK, nil)

	api.SetReady(true)
	getJSON(t, srv.URL+"/readyz", http.StatusOK, nil)

	api.SetReady(false) // drain begins
	getJSON(t, srv.URL+"/readyz", http.StatusServiceUnavailable, nil)
	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
	getJSON(t, srv.URL+"/v1/releases/r/count?rect=0,0,10,10", http.StatusOK, nil)
}
