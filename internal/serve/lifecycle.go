package serve

import (
	"context"
	"errors"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// Request-lifecycle hardening: the middleware and probe endpoints that keep
// one replica alive and honest under fault and overload. Three layers wrap
// the API mux, outermost first:
//
//   - recoverPanics: a panicking handler answers 500 (when nothing was
//     written yet), logs the stack, bumps the panics counter — and the
//     process lives on. One poisoned request must never take down the
//     replica serving everyone else.
//   - shed: past MaxInFlight concurrently-served /v1 requests, further ones
//     are refused immediately with 503 + Retry-After. Queries are pure CPU
//     post-processing, so queueing past the core count only grows latency
//     for everyone; a fast 503 lets the load balancer place the request on
//     a replica with capacity.
//   - deadline: with RequestTimeout set, each /v1 request carries a
//     deadline through its context into the traversal's cancellation
//     checkpoints (internal/core); an over-deadline traversal is abandoned
//     mid-walk and answered 503 + Retry-After.
//
// Probe endpoints stay outside the shed gate — a saturated replica is still
// alive, and the load balancer must be able to see that.

// DefaultRetryAfter is the Retry-After hint on shed and over-deadline
// responses when API.RetryAfter is zero.
const DefaultRetryAfter = time.Second

// SetReady flips the readiness probe. psdserve sets it true once the
// initial releases are loaded and the listener is up, and back to false on
// SIGTERM — before the listener closes — so load balancers stop routing new
// work to a draining replica while its in-flight requests complete.
func (a *API) SetReady(ready bool) { a.ready.Store(ready) }

// Ready reports the current readiness state.
func (a *API) Ready() bool { return a.ready.Load() }

// ServerStats is the process-level counter snapshot of GET /stats —
// the fleet-facing view (per-release serving stats live under
// /v1/releases/{name}/stats).
type ServerStats struct {
	Ready       bool `json:"ready"`
	Releases    int  `json:"releases"`
	Quarantined int  `json:"quarantined"`
	// VersionedBases counts base names served through versioned releases
	// ("name@vN" families from the streaming ingest tier).
	VersionedBases int    `json:"versioned_bases"`
	InFlight       int64  `json:"in_flight"`
	Panics         uint64 `json:"panics"`
	Sheds          uint64 `json:"sheds"`
	Timeouts       uint64 `json:"timeouts"`
	Uptime         string `json:"uptime"`
}

func (a *API) serverStats() ServerStats {
	return ServerStats{
		Ready:          a.ready.Load(),
		Releases:       a.Registry.Len(),
		Quarantined:    a.Registry.QuarantineLen(),
		VersionedBases: len(a.Registry.VersionedBases()),
		InFlight:       a.inflight.Load(),
		Panics:         a.panics.Load(),
		Sheds:          a.sheds.Load(),
		Timeouts:       a.timeouts.Load(),
		Uptime:         time.Since(a.started).Round(time.Millisecond).String(),
	}
}

func (a *API) handleServerStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.serverStats())
}

// handleReadyz is the readiness probe: 503 until the initial releases are
// loaded, 503 again once a drain began. Liveness (/healthz) is separate —
// an unready replica is still alive and must not be restarted.
func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ready"
	if !a.ready.Load() {
		status = http.StatusServiceUnavailable
		state = "unready"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"releases": a.Registry.Len(),
	})
}

func (a *API) logf(format string, args ...any) {
	if a.Logger != nil {
		a.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// retryAfter formats the Retry-After header value in whole seconds
// (minimum 1 — zero would tell clients to hammer).
func (a *API) retryAfter() string {
	d := a.RetryAfter
	if d <= 0 {
		d = DefaultRetryAfter
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// statusWriter remembers whether a response was started, so the panic
// recoverer knows whether a 500 can still be written.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (s *statusWriter) WriteHeader(code int) {
	s.wrote = true
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(p []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(p)
}

// recoverPanics is the outermost middleware: a panic below it is logged
// with its stack, counted, and answered with a 500 if the response had not
// started — and the server keeps serving. http.ErrAbortHandler is re-raised
// untouched: it is net/http's own control flow for deliberately dropped
// connections, not a defect.
func (a *API) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			a.panics.Add(1)
			a.logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if !sw.wrote {
				writeError(sw, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// shed applies the in-flight cap and the per-request deadline to /v1
// traffic. Probes (/healthz, /readyz, /stats) bypass both: they are how
// operators see a saturated replica, and they do no traversal work.
func (a *API) shed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		n := a.inflight.Add(1)
		defer a.inflight.Add(-1)
		if limit := a.MaxInFlight; limit > 0 && n > int64(limit) {
			a.sheds.Add(1)
			w.Header().Set("Retry-After", a.retryAfter())
			writeError(w, http.StatusServiceUnavailable,
				"server at capacity (%d requests in flight)", limit)
			return
		}
		if d := a.RequestTimeout; d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// countErr answers a failed ctx-aware count: an expired deadline is a 503
// with Retry-After (the replica is fine — this request ran out of time); a
// client that went away gets its write attempted and dropped by net/http.
func (a *API) countErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		a.timeouts.Add(1)
		w.Header().Set("Retry-After", a.retryAfter())
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded")
		return
	}
	// Client cancellation: nobody is listening, but complete the exchange.
	writeError(w, http.StatusServiceUnavailable, "request cancelled")
}
