// Package serve implements an HTTP serving layer over published PSD
// releases: the deployment shape the paper's publish-then-serve split
// implies (Section 4.1). A curator builds a tree once, spending the entire
// privacy budget, and publishes the release artifact; from then on every
// range query is free post-processing of the published counts. This package
// holds the machinery behind cmd/psdserve — a registry of opened releases
// with atomic hot reload, a bounded sharded answer cache, per-release
// serving statistics, and the HTTP handlers.
//
// Everything here works purely on release artifacts through the public psd
// API: the server never sees raw points, so nothing it does can spend
// privacy budget.
package serve

import (
	"context"
	"fmt"
	"io"
	"log"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"psd"
)

// countingReader counts bytes read so Register can report the artifact
// size without buffering the body.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Release is one opened release being served: an immutable query-only slab
// plus its answer cache and serving statistics. Fields set at registration
// never change; a hot reload installs a whole new Release, so goroutines
// holding a pointer to the old one keep answering against a consistent
// slab.
type Release struct {
	// Name is the registry key.
	Name string
	// Slab is the reopened flat query-only decomposition. The serving layer
	// works exclusively on slabs: artifacts in either format (JSON or binary
	// v2) decode into the same columnar read path.
	Slab *psd.Slab
	// Source says where the artifact came from: a file path or "api".
	Source string
	// Bytes is the serialized artifact size.
	Bytes int64
	// LoadedAt is the registration time.
	LoadedAt time.Time
	// NumRegions is the effective leaf-region count.
	NumRegions int

	cache *Cache
	stats stats
	// batchBufs pools the miss-tracking scratch of CountBatchInto so
	// steady-state batches (warm cache, or caching off) allocate nothing.
	batchBufs sync.Pool
}

// batchBuf is the reusable scratch of one batch request: which positions
// missed the cache, their rectangles, and the engine's answers for them.
type batchBuf struct {
	missIdx  []int32
	missQs   []psd.Rect
	missVals []float64
}

// Count answers one range query through the cache, recording stats.
func (r *Release) Count(q psd.Rect) (val float64, cached bool) {
	val, cached, _ = r.CountCtx(context.Background(), q)
	return val, cached
}

// CountCtx is Count honoring ctx: a cache hit answers immediately (the
// lookup is far cheaper than any deadline), a miss runs the traversal with
// cancellation checkpoints and returns ctx.Err() if the deadline fires
// mid-walk. An abandoned traversal records nothing — no cache fill, no
// stats — so shed work never pollutes the serving state.
func (r *Release) CountCtx(ctx context.Context, q psd.Rect) (val float64, cached bool, err error) {
	start := time.Now()
	k := queryKey{q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y}
	if v, ok := r.cache.Get(k); ok {
		r.stats.record(1, 1, time.Since(start))
		return v, true, nil
	}
	v, err := r.Slab.CountCtx(ctx, q)
	if err != nil {
		return 0, false, err
	}
	r.cache.Put(k, v)
	r.stats.record(1, 0, time.Since(start))
	return v, false, nil
}

// CountBatch answers a batch of queries: cached answers are filled
// directly, the misses go through ONE node-major batch engine call, and
// every fresh answer is inserted into the cache. Answers come back in
// input order and equal what Count would return per rectangle.
func (r *Release) CountBatch(qs []psd.Rect) (vals []float64, hits int) {
	vals = make([]float64, len(qs))
	hits, _ = r.CountBatchInto(vals, qs)
	return vals, hits
}

// CountBatchInto is CountBatch writing into vals (whose length must match
// the batch). It preserves the per-query cache lookup/fill of the
// single-query path and executes exactly one engine call for the misses,
// returning the hit count plus the engine's aggregate traversal statistics
// over the missed rectangles (the sum of what each individual query would
// report). With a warm cache — or caching disabled — the steady-state call
// allocates nothing: the miss-tracking scratch is pooled and the engine
// runs out of pooled traversal state.
func (r *Release) CountBatchInto(vals []float64, qs []psd.Rect) (hits int, st psd.QueryStats) {
	hits, st, _ = r.CountBatchIntoCtx(context.Background(), vals, qs)
	return hits, st
}

// CountBatchIntoCtx is CountBatchInto honoring ctx: the miss traversal runs
// with cancellation checkpoints and the call returns ctx.Err() — with vals
// undefined — if the deadline fires mid-walk. An abandoned batch records
// nothing: no cache fills, no stats, so shed work never pollutes the
// serving state.
func (r *Release) CountBatchIntoCtx(ctx context.Context, vals []float64, qs []psd.Rect) (hits int, st psd.QueryStats, err error) {
	start := time.Now()
	bb, _ := r.batchBufs.Get().(*batchBuf)
	if bb == nil {
		bb = &batchBuf{}
	}
	missIdx, missQs := bb.missIdx[:0], bb.missQs[:0]
	for i, q := range qs {
		k := queryKey{q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y}
		if v, ok := r.cache.Get(k); ok {
			vals[i] = v
			hits++
			continue
		}
		missIdx = append(missIdx, int32(i))
		missQs = append(missQs, q)
	}
	if len(missQs) > 0 {
		if cap(bb.missVals) < len(missQs) {
			bb.missVals = make([]float64, len(missQs))
		}
		missVals := bb.missVals[:len(missQs)]
		// One traversal on this goroutine: under serving load, concurrency
		// comes from concurrent requests already saturating the cores, and
		// the single-worker engine path is the one that is allocation-free
		// on every machine (the sharded path spawns per-request workers).
		st, err = r.Slab.CountBatchIntoWorkersCtx(ctx, missVals, missQs, 1)
		if err != nil {
			bb.missIdx, bb.missQs = missIdx[:0], missQs[:0]
			r.batchBufs.Put(bb)
			return 0, psd.QueryStats{}, err
		}
		for j, i := range missIdx {
			vals[i] = missVals[j]
			q := missQs[j]
			r.cache.Put(queryKey{q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y}, missVals[j])
		}
	}
	bb.missIdx, bb.missQs = missIdx[:0], missQs[:0]
	r.batchBufs.Put(bb)
	r.stats.record(uint64(len(qs)), uint64(hits), time.Since(start))
	return hits, st, nil
}

// Stats returns a snapshot of the release's serving counters.
func (r *Release) Stats() StatsSnapshot {
	return r.stats.snapshot(r.cache)
}

// fileState remembers what was loaded from a watch-directory file so an
// unchanged file is not re-registered (re-registering would needlessly drop
// the release's warm cache and stats).
type fileState struct {
	size    int64
	modTime time.Time
	// loadedAt is when this state was recorded. Filesystem mtimes can be as
	// coarse as a second (ext4 without high-resolution timestamps) or two
	// (FAT), so a file rewritten with an equal-length artifact within the
	// same tick carries the exact {size, mtime} it was loaded with. The skip
	// therefore only trusts an unchanged {size, mtime} once the mtime's
	// granularity window had already closed when the state was recorded —
	// any rewrite since then must bump the mtime out of the window.
	loadedAt time.Time
}

// mtimeGranularity is the coarsest file-mtime resolution the rescan skip
// defends against (FAT's 2s; ext4 and friends are finer).
const mtimeGranularity = 2 * time.Second

// settled reports whether the recorded {size, mtime} can be trusted to
// detect any rewrite: a file whose mtime was still within one granularity
// window of the load is rescanned unconditionally, because a same-size
// rewrite inside that window would be invisible. An mtime far in the
// *future* (skewed NFS server clock, artifact extracted with a bogus
// timestamp) also counts as settled — a later rewrite by the same skewed
// writer lands at a correspondingly later mtime, so the equality check
// still catches it; treating it as unsettled would instead reload the
// release on every scan forever, silently wiping the warm cache the skip
// exists to preserve.
func (f fileState) settled() bool {
	return f.modTime.Add(mtimeGranularity).Before(f.loadedAt) ||
		f.modTime.After(f.loadedAt.Add(mtimeGranularity))
}

// Registry is a named set of served releases. Reads take a shared lock for
// a single map lookup; everything heavy (opening an artifact, answering
// queries) happens outside the lock. Registration swaps the map entry
// atomically, so a reload never exposes a torn tree: in-flight queries
// finish against the release they already resolved.
type Registry struct {
	cacheSize int
	// fsys is the filesystem seam every file load flows through (nil means
	// the real filesystem); retryBase scales the transient-failure backoff
	// ceiling and jitter draws the actual delay from [0, ceiling] (nil
	// means fullJitter — tests pin it to identity for determinism); logger
	// receives quarantine lines (nil means the standard logger). All are
	// setup-time knobs, set before the registry serves traffic.
	fsys      FS
	logger    *log.Logger
	retryBase time.Duration
	jitter    func(time.Duration) time.Duration

	// keepVersions bounds retained versions per base name (versions.go).
	keepVersions int

	mu         sync.RWMutex
	entries    map[string]*Release
	files      map[string]fileState
	quarantine map[string]*quarantineEntry
	// latest/pinned index the versioned entries ("name@vN") per base name:
	// latest is the highest registered version, pinned an operator override
	// of default resolution (versions.go).
	latest map[string]int
	pinned map[string]int
	// manifest is the last applied rollout manifest (manifest.go);
	// manifestOwned tracks which entries it installed so a later
	// manifest can remove the ones it no longer names.
	manifest      *Manifest
	manifestAt    time.Time
	manifestOwned map[string]bool
}

// NewRegistry returns an empty registry whose releases each get an answer
// cache of the given capacity (<= 0 disables caching).
func NewRegistry(cacheSize int) *Registry {
	return &Registry{
		cacheSize:  cacheSize,
		retryBase:  defaultRetryBase,
		entries:    make(map[string]*Release),
		files:      make(map[string]fileState),
		quarantine: make(map[string]*quarantineEntry),
		latest:     make(map[string]int),
		pinned:     make(map[string]int),
	}
}

// SetFS swaps the filesystem seam (fault-injection tests). Call before the
// registry serves traffic.
func (g *Registry) SetFS(fsys FS) { g.fsys = fsys }

// SetLogger directs the registry's quarantine log lines. Call before the
// registry serves traffic.
func (g *Registry) SetLogger(l *log.Logger) { g.logger = l }

func (g *Registry) fs() FS {
	if g.fsys != nil {
		return g.fsys
	}
	return osFS{}
}

func (g *Registry) jitterFn() func(time.Duration) time.Duration {
	if g.jitter != nil {
		return g.jitter
	}
	return fullJitter
}

func (g *Registry) logf(format string, args ...any) {
	if g.logger != nil {
		g.logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Get returns the named release.
func (g *Registry) Get(name string) (*Release, bool) {
	g.mu.RLock()
	r, ok := g.entries[name]
	g.mu.RUnlock()
	return r, ok
}

// List returns every registered release, sorted by name.
func (g *Registry) List() []*Release {
	g.mu.RLock()
	out := make([]*Release, 0, len(g.entries))
	for _, r := range g.entries {
		out = append(out, r)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered releases.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Remove deletes the release under the given key (bare name or "name@vN"),
// reporting whether it existed. Removing a versioned entry re-derives the
// base name's latest version and releases a pin that pointed at it.
func (g *Registry) Remove(name string) bool {
	g.mu.Lock()
	_, ok := g.entries[name]
	delete(g.entries, name)
	if ok {
		if base, v, versioned, err := parseKey(name); err == nil && versioned {
			g.dropVersionLocked(base, v)
		}
	}
	g.mu.Unlock()
	return ok
}

// Register opens a serialized release from r and installs it under name —
// a bare name or a versioned key like "taxi@v3" — replacing any previous
// release of that key in one atomic map swap. The artifact is fully parsed
// and validated before the swap, so a malformed body can never displace a
// live release.
func (g *Registry) Register(name, source string, r io.Reader) (*Release, error) {
	if err := validateKey(name); err != nil {
		return nil, err
	}
	cr := &countingReader{r: r}
	slab, err := psd.OpenSlab(cr)
	if err != nil {
		return nil, err
	}
	rel := &Release{
		Name:       name,
		Slab:       slab,
		Source:     source,
		Bytes:      cr.n,
		LoadedAt:   time.Now(),
		NumRegions: slab.NumRegions(),
		cache:      NewCache(g.cacheSize),
	}
	g.mu.Lock()
	g.entries[name] = rel
	g.noteInstallLocked(name)
	g.mu.Unlock()
	return rel, nil
}

// validateName keeps registry names unambiguous in URLs and file names.
func validateName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("serve: invalid release name %q", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("serve: invalid release name %q (use [A-Za-z0-9._-])", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("serve: invalid release name %q", name)
	}
	return nil
}

// LoadFile opens a release artifact from path and registers it under name.
func (g *Registry) LoadFile(name, path string) (*Release, error) {
	rel, _, err := g.loadFile(name, path)
	return rel, err
}

// loadFile is LoadFile reporting, on failure, whether the failure was
// transient (the open or read itself errored — worth retrying) or permanent
// (the bytes were read cleanly and are simply not a valid release). The
// distinction drives the quarantine's retry policy.
func (g *Registry) loadFile(name, path string) (rel *Release, transient bool, err error) {
	if so, ok := g.fs().(slabOpener); ok {
		return g.loadFileDirect(so, name, path)
	}
	f, err := g.fs().Open(path)
	if err != nil {
		return nil, true, err
	}
	defer f.Close()
	tr := &readTracker{r: f}
	rel, err = g.Register(name, path, tr)
	if err != nil {
		return nil, tr.ioErr != nil, fmt.Errorf("%s: %w", path, err)
	}
	return rel, false, nil
}

// loadFileDirect loads through the FS's slabOpener capability: a v3
// artifact is mmap'd (no decode, no copy — replicas share the page cache)
// and then fully verified — footer checksum plus per-node validation — so
// the corrupt-artifact guarantee is identical to the decode path: a bad
// file is quarantined, never installed. Verify reads the mapping
// sequentially, which doubles as a prefault: the first query after a load
// never stalls on page faults.
func (g *Registry) loadFileDirect(so slabOpener, name, path string) (*Release, bool, error) {
	if err := validateKey(name); err != nil {
		return nil, false, err
	}
	slab, err := so.OpenSlab(path)
	if err != nil {
		return nil, transientOpenErr(err), fmt.Errorf("%s: %w", path, err)
	}
	if err := slab.Verify(); err != nil {
		// The bytes were mapped and read cleanly; a verification failure
		// means the artifact itself is bad. Unmap eagerly — nothing else
		// holds this slab.
		slab.Close()
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	var size int64
	if info, err := g.fs().Stat(path); err == nil {
		size = info.Size()
	}
	rel := &Release{
		Name:       name,
		Slab:       slab,
		Source:     path,
		Bytes:      size,
		LoadedAt:   time.Now(),
		NumRegions: slab.NumRegions(),
		cache:      NewCache(g.cacheSize),
	}
	// The atomic swap drops any previous release of this name; if that one
	// was mmap-backed, its mapping is released by the GC cleanup once
	// in-flight queries against it finish (Close here would race them).
	g.mu.Lock()
	g.entries[name] = rel
	g.noteInstallLocked(name)
	g.mu.Unlock()
	return rel, false, nil
}

// ScanDir loads every *.json and *.bin artifact in dir, naming each release
// after its file (minus the extension); JSON and binary-v2 artifacts are
// equally welcome, exactly as in the upload endpoint. Files whose size and
// mtime are unchanged since the last scan are skipped, preserving their
// warm caches and stats; changed or new files are (re)loaded with an atomic
// swap. When x.json and x.bin both exist, only x.json is considered (one
// file per name keeps the unchanged-file skip meaningful — alternating
// loads would wipe the warm cache on every rescan). It returns the names
// loaded and skipped this scan; per-file load errors are collected rather
// than aborting the scan, so one bad artifact can't block the rest.
//
// Failed loads are quarantined (see quarantine.go): a file that failed is
// not re-read — and not re-reported in the error return — until its {size,
// mtime} change, except that transient I/O failures get maxLoadAttempts
// retries with exponential backoff first. The error return therefore
// reflects the loads actually attempted this scan, so a rescan that only
// skips known-bad unchanged files reports success.
func (g *Registry) ScanDir(dir string) (loaded, skipped []string, err error) {
	jsons, err := g.fs().Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	bins, err := g.fs().Glob(filepath.Join(dir, "*.bin"))
	if err != nil {
		return nil, nil, err
	}
	// One path per name, JSON preferred on a stem collision.
	byName := make(map[string]string, len(jsons)+len(bins))
	for _, path := range append(bins, jsons...) {
		byName[strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))] = path
	}
	// Classify the stems: versioned keys ("taxi@v3") index their base name;
	// malformed '@' spellings are rejected up front, by name alone — their
	// bytes are never read. A bare stem whose base also has versioned files
	// is ambiguous (which artifact should "taxi" serve?) and is rejected the
	// same way rather than guessed at.
	badKey := make(map[string]error)
	maxVer := make(map[string]int)
	for stem := range byName {
		base, v, versioned, err := parseKey(stem)
		if err != nil {
			badKey[byName[stem]] = err
			continue
		}
		if versioned && v > maxVer[base] {
			maxVer[base] = v
		}
	}
	conflict := make(map[string]string)
	for stem, path := range byName {
		if !strings.ContainsRune(stem, '@') && maxVer[stem] > 0 {
			conflict[path] = fmt.Sprintf(
				"ambiguous release name %q: both %s and a versioned family %s@vN are present; remove one",
				stem, filepath.Base(path), stem)
		}
	}
	glob := make([]string, 0, len(byName))
	present := make(map[string]bool, len(byName))
	for _, path := range byName {
		glob = append(glob, path)
		present[path] = true
	}
	sort.Strings(glob)
	g.pruneQuarantine(present)
	g.pruneVanishedVersions(dir, present)
	var errs []string
	for _, path := range glob {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		now := time.Now()
		if err, bad := badKey[path]; bad {
			g.noteConflict(name, path, err.Error(), now)
			continue
		}
		if reason, ok := conflict[path]; ok {
			g.noteConflict(name, path, reason, now)
			continue
		}
		// A conflict record from an earlier scan whose cause is gone (the
		// other side of the ambiguity was removed) is wiped so the file gets
		// a fresh load this very scan.
		g.clearConflict(path)
		// Versions below the retention floor are skipped without a read:
		// reloading them would only re-evict them (churning the version
		// index) — the ingest tier prunes these artifacts shortly anyway.
		if g.keepVersions > 0 {
			if base, v, versioned, err := parseKey(name); err == nil && versioned &&
				v <= maxVer[base]-g.keepVersions {
				skipped = append(skipped, name)
				continue
			}
		}
		info, err := g.fs().Stat(path)
		if err != nil {
			// The file was listed but cannot be statted: a transient
			// filesystem failure (it vanishing between glob and stat lands
			// here too, and resolves by pruning on the next scan). There is
			// no {size, mtime} to key on, so the record uses an impossible
			// size; a later successful stat always reads as a change.
			st := fileState{size: -1, loadedAt: now}
			if g.quarantineGate(path, st, now) {
				continue
			}
			errs = append(errs, err.Error())
			g.noteLoadFailure(name, path, st, true, err, now)
			continue
		}
		st := fileState{size: info.Size(), modTime: info.ModTime(), loadedAt: now}
		if g.quarantineGate(path, st, now) {
			continue
		}
		g.mu.RLock()
		prev, known := g.files[path]
		live, exists := g.entries[name]
		g.mu.RUnlock()
		// Skip only when the live entry still comes from this file (an API
		// POST under the same name must not block the file from being
		// reinstated by the next rescan), {size, mtime} are unchanged, AND
		// the recorded mtime had settled out of its granularity window — a
		// same-size rewrite within the window leaves {size, mtime} intact on
		// coarse-mtime filesystems, so an unsettled match proves nothing.
		if known && exists && live.Source == path &&
			prev.size == st.size && prev.modTime.Equal(st.modTime) && prev.settled() {
			skipped = append(skipped, name)
			continue
		}
		if _, transient, err := g.loadFile(name, path); err != nil {
			errs = append(errs, err.Error())
			g.noteLoadFailure(name, path, st, transient, err, now)
			continue
		}
		g.mu.Lock()
		g.files[path] = st
		delete(g.quarantine, path)
		g.mu.Unlock()
		loaded = append(loaded, name)
	}
	if len(errs) > 0 {
		return loaded, skipped, fmt.Errorf("serve: %s", strings.Join(errs, "; "))
	}
	return loaded, skipped, nil
}
