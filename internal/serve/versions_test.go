package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"psd"
	"psd/internal/serve/faultfs"
)

// writeBinArtifact writes a small valid binary release artifact to path.
func writeBinArtifact(t *testing.T, path string, seed int64) {
	t.Helper()
	tree := buildTree(t, seed)
	var buf bytes.Buffer
	if err := tree.WriteBinaryRelease(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseKey(t *testing.T) {
	cases := []struct {
		key       string
		base      string
		v         int
		versioned bool
		bad       bool
	}{
		{"taxi", "taxi", 0, false, false},
		{"taxi@v1", "taxi", 1, true, false},
		{"taxi@v42", "taxi", 42, true, false},
		{"a.b-c_d@v7", "a.b-c_d", 7, true, false},
		{"taxi@v0", "", 0, true, true},
		{"taxi@v02", "", 0, true, true},
		{"taxi@2", "", 0, true, true},
		{"taxi@latest", "", 0, true, true},
		{"taxi@", "", 0, true, true},
		{"@v2", "", 0, true, true},
		{"taxi@v1@v2", "", 0, true, true},
		{"bad name", "", 0, false, true},
	}
	for _, c := range cases {
		base, v, versioned, err := parseKey(c.key)
		if c.bad {
			if err == nil {
				t.Errorf("parseKey(%q): want error", c.key)
			}
			continue
		}
		if err != nil || base != c.base || v != c.v || versioned != c.versioned {
			t.Errorf("parseKey(%q) = (%q, %d, %v, %v), want (%q, %d, %v, nil)",
				c.key, base, v, versioned, err, c.base, c.v, c.versioned)
		}
	}
}

func bytesReaderFor(t *testing.T, seed int64) *bytes.Reader {
	t.Helper()
	return bytes.NewReader(releaseBytes(t, buildTree(t, seed)))
}

// TestVersionedResolution pins default resolution, time travel, and promote.
func TestVersionedResolution(t *testing.T) {
	reg := NewRegistry(16)
	for v := 1; v <= 3; v++ {
		if _, err := reg.Register(fmt.Sprintf("taxi@v%d", v), "api", bytesReaderFor(t, int64(v))); err != nil {
			t.Fatal(err)
		}
	}
	// Bare name resolves to the latest version.
	rel, err := reg.Resolve("taxi", "")
	if err != nil || rel.Name != "taxi@v3" {
		t.Fatalf("Resolve(taxi) = %v, %v; want taxi@v3", rel, err)
	}
	// Time travel, both spellings.
	for _, spec := range []string{"v1", "1"} {
		rel, err = reg.Resolve("taxi", spec)
		if err != nil || rel.Name != "taxi@v1" {
			t.Fatalf("Resolve(taxi, %q) = %v, %v; want taxi@v1", spec, rel, err)
		}
	}
	// Explicit key in the name position.
	if rel, err = reg.Resolve("taxi@v2", ""); err != nil || rel.Name != "taxi@v2" {
		t.Fatalf("Resolve(taxi@v2) = %v, %v", rel, err)
	}
	if _, err = reg.Resolve("taxi@v2", "v1"); err == nil {
		t.Fatal("versioned name plus ?version= must be rejected")
	}
	if _, err = reg.Resolve("taxi", "v9"); err == nil {
		t.Fatal("missing version must not resolve")
	}

	// Promote pins; new registrations do not move the pin; unpin restores
	// latest-wins.
	if err := reg.Promote("taxi", 9); err == nil {
		t.Fatal("promoting an absent version must fail")
	}
	if err := reg.Promote("taxi", 2); err != nil {
		t.Fatal(err)
	}
	if rel, _ = reg.Resolve("taxi", ""); rel.Name != "taxi@v2" {
		t.Fatalf("pinned resolution = %s, want taxi@v2", rel.Name)
	}
	if _, err := reg.Register("taxi@v4", "api", bytesReaderFor(t, 4)); err != nil {
		t.Fatal(err)
	}
	if rel, _ = reg.Resolve("taxi", ""); rel.Name != "taxi@v2" {
		t.Fatalf("pin moved on new registration: %s", rel.Name)
	}
	vs := reg.Versions("taxi")
	if len(vs) != 4 || !vs[1].Pinned || !vs[1].Active || vs[3].Active {
		t.Fatalf("Versions = %+v", vs)
	}
	if err := reg.Promote("taxi", 0); err != nil {
		t.Fatal(err)
	}
	if rel, _ = reg.Resolve("taxi", ""); rel.Name != "taxi@v4" {
		t.Fatalf("unpinned resolution = %s, want taxi@v4", rel.Name)
	}

	// Removing the latest version re-derives latest.
	if !reg.Remove("taxi@v4") {
		t.Fatal("Remove(taxi@v4) = false")
	}
	if rel, _ = reg.Resolve("taxi", ""); rel.Name != "taxi@v3" {
		t.Fatalf("after removing v4: %s, want taxi@v3", rel.Name)
	}
	// Removing a pinned version releases the pin instead of 404ing the base.
	if err := reg.Promote("taxi", 1); err != nil {
		t.Fatal(err)
	}
	reg.Remove("taxi@v1")
	if rel, err = reg.Resolve("taxi", ""); err != nil || rel.Name != "taxi@v3" {
		t.Fatalf("after removing pinned v1: %v, %v; want taxi@v3", rel, err)
	}
}

// TestVersionedKeepEviction: SetKeepVersions bounds retained versions, never
// evicting the pin.
func TestVersionedKeepEviction(t *testing.T) {
	reg := NewRegistry(16)
	reg.SetKeepVersions(2)
	for v := 1; v <= 5; v++ {
		if v == 2 {
			// Pin v1 while it is still present; it must survive eviction.
			if err := reg.Promote("taxi", 1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := reg.Register(fmt.Sprintf("taxi@v%d", v), "api", bytesReaderFor(t, int64(v))); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]bool{}
	for _, vi := range reg.Versions("taxi") {
		got[vi.Version] = true
	}
	want := map[int]bool{1: true, 4: true, 5: true}
	if len(got) != len(want) {
		t.Fatalf("retained versions %v, want %v", got, want)
	}
	for v := range want {
		if !got[v] {
			t.Fatalf("retained versions %v, want %v", got, want)
		}
	}
}

// TestScanDirVersioned: versioned artifact files register under their full
// key, the bare base name serves the latest, and files pruned from the dir
// unregister on the next scan.
func TestScanDirVersioned(t *testing.T) {
	dir := t.TempDir()
	writeBinArtifact(t, filepath.Join(dir, "taxi@v1.bin"), 1)
	writeBinArtifact(t, filepath.Join(dir, "taxi@v2.bin"), 2)
	reg := NewRegistry(16)
	loaded, _, err := reg.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %v", loaded)
	}
	rel, err := reg.Resolve("taxi", "")
	if err != nil || rel.Name != "taxi@v2" {
		t.Fatalf("Resolve = %v, %v", rel, err)
	}
	if _, err := reg.Resolve("taxi", "v1"); err != nil {
		t.Fatal("time travel to v1 failed:", err)
	}

	// The ingest tier prunes v1; the next scan mirrors that.
	if err := os.Remove(filepath.Join(dir, "taxi@v1.bin")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve("taxi", "v1"); err == nil {
		t.Fatal("vanished v1 still resolves")
	}
	if rel, _ := reg.Resolve("taxi", ""); rel.Name != "taxi@v2" {
		t.Fatalf("latest after prune = %s", rel.Name)
	}
}

// TestScanDirConflict: a bare name.bin next to a versioned family is
// rejected by name with a clear quarantine reason, re-evaluated every scan —
// and clears itself the moment the ambiguity is resolved.
func TestScanDirConflict(t *testing.T) {
	dir := t.TempDir()
	writeBinArtifact(t, filepath.Join(dir, "taxi.bin"), 1)
	reg := NewRegistry(16)
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	if rel, err := reg.Resolve("taxi", ""); err != nil || rel.Name != "taxi" {
		t.Fatalf("bare load failed: %v, %v", rel, err)
	}

	// A versioned sibling appears: the bare file becomes ambiguous. It is
	// quarantined AND its live entry is dropped, so the family takes over.
	writeBinArtifact(t, filepath.Join(dir, "taxi@v1.bin"), 2)
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	q := reg.Quarantined()
	if len(q) != 1 || q[0].Kind != quarantineConflict {
		t.Fatalf("quarantine = %+v, want one conflict entry", q)
	}
	if q[0].Path != filepath.Join(dir, "taxi.bin") {
		t.Fatalf("quarantined path = %s", q[0].Path)
	}
	rel, err := reg.Resolve("taxi", "")
	if err != nil || rel.Name != "taxi@v1" {
		t.Fatalf("conflicted bare name did not yield to the family: %v, %v", rel, err)
	}

	// The conflict stands (and stays quarantined) across rescans.
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	if reg.QuarantineLen() != 1 {
		t.Fatal("conflict record lost across rescans")
	}

	// Removing the family resolves the ambiguity: the bare file loads again.
	if err := os.Remove(filepath.Join(dir, "taxi@v1.bin")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	if reg.QuarantineLen() != 0 {
		t.Fatalf("conflict did not clear: %+v", reg.Quarantined())
	}
	if rel, err := reg.Resolve("taxi", ""); err != nil || rel.Name != "taxi" {
		t.Fatalf("bare file not reinstated: %v, %v", rel, err)
	}
}

// TestScanDirBadVersionSuffix: malformed '@' spellings are rejected by name
// alone — quarantined with a reason that says what is wrong, bytes unread.
func TestScanDirBadVersionSuffix(t *testing.T) {
	dir := t.TempDir()
	writeBinArtifact(t, filepath.Join(dir, "taxi@v02.bin"), 1)
	writeBinArtifact(t, filepath.Join(dir, "taxi@latest.bin"), 2)
	reg := NewRegistry(16)
	ffs := faultfs.New()
	reg.SetFS(ffs)
	if _, _, err := reg.ScanDir(dir); err != nil {
		t.Fatal(err)
	}
	q := reg.Quarantined()
	if len(q) != 2 {
		t.Fatalf("quarantine = %+v, want 2 conflict entries", q)
	}
	for _, e := range q {
		if e.Kind != quarantineConflict {
			t.Fatalf("kind = %s, want conflict", e.Kind)
		}
	}
	if n := ffs.OpenCount(filepath.Join(dir, "taxi@v02.bin")); n != 0 {
		t.Fatalf("misnamed file was opened %d times; rejection must be by name alone", n)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry has %d entries, want 0", reg.Len())
	}
}

// TestVersionedHTTP drives the whole surface over HTTP: upload versions,
// default + time-travel queries, the versions listing, promote, unpin.
func TestVersionedHTTP(t *testing.T) {
	reg := NewRegistry(1024)
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	tree1, tree2 := buildTree(t, 1), buildTree(t, 2)
	postJSON(t, srv.URL+"/v1/releases/taxi@v1", releaseBytes(t, tree1), http.StatusCreated, nil)
	postJSON(t, srv.URL+"/v1/releases/taxi@v2", releaseBytes(t, tree2), http.StatusCreated, nil)
	postJSON(t, srv.URL+"/v1/releases/taxi@v02", releaseBytes(t, tree2), http.StatusBadRequest, nil)

	q := psd.NewRect(10, 20, 55, 70)
	rect := fmt.Sprintf("rect=%g,%g,%g,%g", q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y)
	var out struct {
		Release string  `json:"release"`
		Count   float64 `json:"count"`
	}
	getJSON(t, srv.URL+"/v1/releases/taxi/count?"+rect, http.StatusOK, &out)
	if out.Release != "taxi@v2" || out.Count != tree2.Count(q) {
		t.Fatalf("default resolution answered %+v, want taxi@v2=%v", out, tree2.Count(q))
	}
	getJSON(t, srv.URL+"/v1/releases/taxi/count?version=v1&"+rect, http.StatusOK, &out)
	if out.Release != "taxi@v1" || out.Count != tree1.Count(q) {
		t.Fatalf("time travel answered %+v, want taxi@v1=%v", out, tree1.Count(q))
	}
	getJSON(t, srv.URL+"/v1/releases/taxi/count?version=v9&"+rect, http.StatusNotFound, nil)
	getJSON(t, srv.URL+"/v1/releases/taxi/count?version=bogus&"+rect, http.StatusBadRequest, nil)

	var vlist struct {
		Versions []VersionInfo `json:"versions"`
	}
	getJSON(t, srv.URL+"/v1/releases/taxi/versions", http.StatusOK, &vlist)
	if len(vlist.Versions) != 2 || !vlist.Versions[1].Active {
		t.Fatalf("versions = %+v", vlist.Versions)
	}
	getJSON(t, srv.URL+"/v1/releases/nosuch/versions", http.StatusNotFound, nil)

	postJSON(t, srv.URL+"/v1/releases/taxi/promote?version=1", nil, http.StatusOK, nil)
	getJSON(t, srv.URL+"/v1/releases/taxi/count?"+rect, http.StatusOK, &out)
	if out.Release != "taxi@v1" {
		t.Fatalf("after promote: %s", out.Release)
	}
	postJSON(t, srv.URL+"/v1/releases/taxi/promote?version=9", nil, http.StatusNotFound, nil)
	postJSON(t, srv.URL+"/v1/releases/taxi/promote?version=latest", nil, http.StatusOK, nil)
	getJSON(t, srv.URL+"/v1/releases/taxi/count?"+rect, http.StatusOK, &out)
	if out.Release != "taxi@v2" {
		t.Fatalf("after unpin: %s", out.Release)
	}
}
