package serve

import (
	"bytes"
	"testing"

	"psd"
)

// BenchmarkServeCount measures Release.Count — the full serving hot path
// under the HTTP handler (cache lookup, slab query, stats) — with the
// cache disabled (every call runs the query engine) and with a warm cache.
// Allocs are the headline: the acceptance bar is 0 allocs/op for both.
func BenchmarkServeCount(b *testing.B) {
	tree := buildTree(b, 77)
	var artifact bytes.Buffer
	if err := tree.WriteBinaryRelease(&artifact); err != nil {
		b.Fatal(err)
	}
	q := psd.NewRect(10, 20, 55, 70)

	for _, mode := range []struct {
		name      string
		cacheSize int
	}{
		{"nocache", 0},
		{"cachehit", 1024},
	} {
		b.Run(mode.name, func(b *testing.B) {
			reg := NewRegistry(mode.cacheSize)
			rel, err := reg.Register("bench", "bench", bytes.NewReader(artifact.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			rel.Count(q) // warm the cache (and the stack pool)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel.Count(q)
			}
		})
	}
}

// BenchmarkRegister measures artifact open into the registry — the hot
// reload path — for both encodings of the same release.
func BenchmarkRegister(b *testing.B) {
	tree := buildTree(b, 78)
	var jsonBuf, binBuf bytes.Buffer
	if err := tree.WriteRelease(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	if err := tree.WriteBinaryRelease(&binBuf); err != nil {
		b.Fatal(err)
	}
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"json", jsonBuf.Bytes()},
		{"binary", binBuf.Bytes()},
	} {
		b.Run(enc.name, func(b *testing.B) {
			reg := NewRegistry(0)
			b.ReportAllocs()
			b.SetBytes(int64(len(enc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Register("bench", "bench", bytes.NewReader(enc.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
