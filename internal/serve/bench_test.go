package serve

import (
	"bytes"
	"testing"

	"psd"
)

// BenchmarkServeCount measures Release.Count — the full serving hot path
// under the HTTP handler (cache lookup, slab query, stats) — with the
// cache disabled (every call runs the query engine) and with a warm cache.
// Allocs are the headline: the acceptance bar is 0 allocs/op for both.
func BenchmarkServeCount(b *testing.B) {
	tree := buildTree(b, 77)
	var artifact bytes.Buffer
	if err := tree.WriteBinaryRelease(&artifact); err != nil {
		b.Fatal(err)
	}
	q := psd.NewRect(10, 20, 55, 70)

	for _, mode := range []struct {
		name      string
		cacheSize int
	}{
		{"nocache", 0},
		{"cachehit", 1024},
	} {
		b.Run(mode.name, func(b *testing.B) {
			reg := NewRegistry(mode.cacheSize)
			rel, err := reg.Register("bench", "bench", bytes.NewReader(artifact.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			rel.Count(q) // warm the cache (and the stack pool)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel.Count(q)
			}
		})
	}
}

// BenchmarkServeBatch measures Release.CountBatchInto — the engine call
// behind the /batch endpoint — at serving batch sizes, with the cache off
// (every rectangle runs through one node-major engine call) and fully warm
// (every rectangle is a hit). Allocs are the headline: the acceptance bar
// is 0 allocs/op steady-state for both, since the miss scratch and the
// engine's traversal state are pooled (cache-miss insertions are excluded
// by construction: nocache never inserts, cachehit never misses).
func BenchmarkServeBatch(b *testing.B) {
	tree := buildTree(b, 79)
	var artifact bytes.Buffer
	if err := tree.WriteBinaryRelease(&artifact); err != nil {
		b.Fatal(err)
	}
	d := tree.Domain()
	qs := make([]psd.Rect, 256)
	for i := range qs {
		fx := float64(i%16) / 16
		fy := float64(i/16) / 16
		qs[i] = psd.NewRect(
			d.Lo.X+fx*d.Width()*0.9, d.Lo.Y+fy*d.Height()*0.9,
			d.Lo.X+(fx+0.1)*d.Width()*0.9, d.Lo.Y+(fy+0.1)*d.Height()*0.9,
		)
	}
	for _, mode := range []struct {
		name      string
		cacheSize int
	}{
		{"nocache", 0},
		{"cachehit", 1 << 14},
	} {
		b.Run(mode.name, func(b *testing.B) {
			reg := NewRegistry(mode.cacheSize)
			rel, err := reg.Register("bench", "bench", bytes.NewReader(artifact.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			vals := make([]float64, len(qs))
			rel.CountBatchInto(vals, qs) // warm the cache and the pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel.CountBatchInto(vals, qs)
			}
			b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkRegister measures artifact open into the registry — the hot
// reload path — for both encodings of the same release.
func BenchmarkRegister(b *testing.B) {
	tree := buildTree(b, 78)
	var jsonBuf, binBuf bytes.Buffer
	if err := tree.WriteRelease(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	if err := tree.WriteBinaryRelease(&binBuf); err != nil {
		b.Fatal(err)
	}
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"json", jsonBuf.Bytes()},
		{"binary", binBuf.Bytes()},
	} {
		b.Run(enc.name, func(b *testing.B) {
			reg := NewRegistry(0)
			b.ReportAllocs()
			b.SetBytes(int64(len(enc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Register("bench", "bench", bytes.NewReader(enc.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
