package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"psd"
)

// API builds the HTTP handler of psdserve. All mutable state is atomic
// counters or lives in the Registry; the API is safe for concurrent use.
type API struct {
	// Registry holds the served releases.
	Registry *Registry
	// WatchDir, when non-empty, is rescanned by POST /v1/reload.
	WatchDir string
	// MaxBodyBytes bounds uploaded release artifacts and batch bodies
	// (default 256 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds the rectangles per batch request (default 65536).
	MaxBatch int
	// MaxInFlight caps concurrently-served /v1 requests; past it, new ones
	// are shed with 503 + Retry-After (0 disables shedding).
	MaxInFlight int
	// RequestTimeout bounds each /v1 request; an over-deadline traversal is
	// abandoned at its next cancellation checkpoint and answered 503 +
	// Retry-After (0 disables deadlines).
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on shed and over-deadline
	// responses (default DefaultRetryAfter).
	RetryAfter time.Duration
	// Logger receives panic stacks (nil means the standard logger).
	Logger *log.Logger

	started time.Time
	// ready gates /readyz: false until initial loading finished, false
	// again once a drain began (SetReady).
	ready atomic.Bool
	// inflight is the live /v1 request count; panics, sheds and timeouts
	// are the monotonic fault counters of GET /stats.
	inflight atomic.Int64
	panics   atomic.Uint64
	sheds    atomic.Uint64
	timeouts atomic.Uint64
	// testHookBatch, when set, runs inside handleBatch between resolving
	// the release and answering — the graceful-drain test uses it to hold a
	// request in flight at a known point.
	testHookBatch func()
}

// DefaultMaxBodyBytes bounds request bodies when API.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 256 << 20

// DefaultMaxBatch bounds batch sizes when API.MaxBatch is zero.
const DefaultMaxBatch = 65536

// Handler returns the routed HTTP handler:
//
//	GET    /healthz                      liveness + release count
//	GET    /readyz                       readiness (503 while loading/draining)
//	GET    /stats                        process-level counters (ServerStats)
//	GET    /v1/releases                  list releases, metadata + quarantine
//	POST   /v1/releases/{name}           register/replace a release from the body
//	                                     (JSON or binary v2, sniffed)
//	DELETE /v1/releases/{name}           unregister
//	GET    /v1/releases/{name}/count     one query: ?rect=lox,loy,hix,hiy
//	POST   /v1/releases/{name}/batch     many queries: {"rects":[[4]...]}
//	GET    /v1/releases/{name}/regions   effective leaf regions + counts
//	GET    /v1/releases/{name}/stats     serving counters
//	POST   /v1/reload                    rescan the watch directory
//
// The handler is wrapped in the lifecycle middleware (lifecycle.go): panic
// recovery outermost, then load shedding and per-request deadlines on the
// /v1 routes. Note /v1 routes are NOT gated on readiness — a draining
// replica keeps answering requests already routed to it; only the /readyz
// probe tells the balancer to stop sending new ones.
func (a *API) Handler() http.Handler {
	a.started = time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /readyz", a.handleReadyz)
	mux.HandleFunc("GET /stats", a.handleServerStats)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /v1/manifest", a.handleManifestGet)
	mux.HandleFunc("POST /v1/manifest", a.handleManifestApply)
	mux.HandleFunc("GET /v1/releases", a.handleList)
	mux.HandleFunc("POST /v1/releases/{name}", a.handleRegister)
	mux.HandleFunc("DELETE /v1/releases/{name}", a.handleDelete)
	mux.HandleFunc("GET /v1/releases/{name}/count", a.handleCount)
	mux.HandleFunc("POST /v1/releases/{name}/batch", a.handleBatch)
	mux.HandleFunc("GET /v1/releases/{name}/regions", a.handleRegions)
	mux.HandleFunc("GET /v1/releases/{name}/stats", a.handleStats)
	mux.HandleFunc("GET /v1/releases/{name}/versions", a.handleVersions)
	mux.HandleFunc("POST /v1/releases/{name}/promote", a.handlePromote)
	mux.HandleFunc("POST /v1/reload", a.handleReload)
	return a.recoverPanics(a.shed(mux))
}

func (a *API) maxBody() int64 {
	if a.MaxBodyBytes > 0 {
		return a.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

func (a *API) maxBatch() int {
	if a.MaxBatch > 0 {
		return a.MaxBatch
	}
	return DefaultMaxBatch
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is gone; nothing sane to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// release resolves the {name} path segment — a bare name (served at its
// pinned or latest version when versioned artifacts exist), an explicit
// "name@vN", or a bare name plus ?version=vN time travel — writing a 404
// (or 400 for a malformed version) on a miss.
func (a *API) release(w http.ResponseWriter, r *http.Request) (*Release, bool) {
	name := r.PathValue("name")
	version := r.URL.Query().Get("version")
	rel, err := a.Registry.Resolve(name, version)
	if err != nil {
		status := http.StatusNotFound
		if version != "" && (strings.HasPrefix(err.Error(), "bad version") ||
			strings.Contains(err.Error(), "already carries a version")) {
			status = http.StatusBadRequest
		}
		writeError(w, status, "%v", err)
		return nil, false
	}
	return rel, true
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"releases": a.Registry.Len(),
		"uptime":   time.Since(a.started).Round(time.Millisecond).String(),
	})
}

// releaseInfo is the metadata shape of /v1/releases.
type releaseInfo struct {
	Name       string     `json:"name"`
	Kind       string     `json:"kind"`
	Height     int        `json:"height"`
	Epsilon    float64    `json:"epsilon"`
	Domain     [4]float64 `json:"domain"`
	NumRegions int        `json:"num_regions"`
	Bytes      int64      `json:"bytes"`
	Source     string     `json:"source"`
	LoadedAt   time.Time  `json:"loaded_at"`
}

func infoOf(rel *Release) releaseInfo {
	d := rel.Slab.Domain()
	return releaseInfo{
		Name:       rel.Name,
		Kind:       rel.Slab.Kind(),
		Height:     rel.Slab.Height(),
		Epsilon:    rel.Slab.PrivacyCost(),
		Domain:     [4]float64{d.Lo.X, d.Lo.Y, d.Hi.X, d.Hi.Y},
		NumRegions: rel.NumRegions,
		Bytes:      rel.Bytes,
		Source:     rel.Source,
		LoadedAt:   rel.LoadedAt,
	}
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	rels := a.Registry.List()
	infos := make([]releaseInfo, len(rels))
	for i, rel := range rels {
		infos[i] = infoOf(rel)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"releases":    infos,
		"quarantined": a.Registry.Quarantined(),
	})
}

func (a *API) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, a.maxBody())
	rel, err := a.Registry.Register(name, "api", body)
	if err != nil {
		if tooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"register %q: artifact exceeds the %d-byte body limit", name, a.maxBody())
			return
		}
		writeError(w, http.StatusBadRequest, "register %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(rel))
}

// tooLarge recognizes http.MaxBytesReader's failure inside a decode or
// parse error chain: an over-limit request is the client asking for too
// much (413), not a malformed body (400), so the two must not share a
// status.
func tooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

func (a *API) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !a.Registry.Remove(name) {
		writeError(w, http.StatusNotFound, "no release %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// parseRect parses "lox,loy,hix,hiy" into a finite, ordered rectangle
// (inverted bounds are swapped, matching psdtool).
func parseRect(s string) (psd.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return psd.Rect{}, fmt.Errorf("want lox,loy,hix,hiy, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return psd.Rect{}, fmt.Errorf("bad coordinate %q", p)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return psd.Rect{}, fmt.Errorf("non-finite coordinate %q", p)
		}
		v[i] = f
	}
	return rectFrom(v)
}

// rectFrom orders and validates four bounds as a query rectangle.
func rectFrom(v [4]float64) (psd.Rect, error) {
	for _, f := range v {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return psd.Rect{}, fmt.Errorf("non-finite rect %v", v)
		}
	}
	if v[2] < v[0] {
		v[0], v[2] = v[2], v[0]
	}
	if v[3] < v[1] {
		v[1], v[3] = v[3], v[1]
	}
	return psd.Rect{Lo: psd.Point{X: v[0], Y: v[1]}, Hi: psd.Point{X: v[2], Y: v[3]}}, nil
}

func (a *API) handleCount(w http.ResponseWriter, r *http.Request) {
	rel, ok := a.release(w, r)
	if !ok {
		return
	}
	spec := r.URL.Query().Get("rect")
	if spec == "" {
		writeError(w, http.StatusBadRequest, "missing ?rect=lox,loy,hix,hiy")
		return
	}
	q, err := parseRect(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad rect: %v", err)
		return
	}
	val, cached, err := rel.CountCtx(r.Context(), q)
	if err != nil {
		a.countErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"release": rel.Name,
		"rect":    [4]float64{q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y},
		"count":   val,
		"cached":  cached,
	})
}

// batchRequest is the body of POST /v1/releases/{name}/batch.
type batchRequest struct {
	Rects [][4]float64 `json:"rects"`
}

func (a *API) handleBatch(w http.ResponseWriter, r *http.Request) {
	rel, ok := a.release(w, r)
	if !ok {
		return
	}
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, a.maxBody())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		// An over--max-body request surfaces as a decode error; report it as
		// 413 like the over-MaxBatch path below, not as a malformed body.
		if tooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch body exceeds the %d-byte limit", a.maxBody())
			return
		}
		writeError(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Rects) > a.maxBatch() {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds limit %d", len(req.Rects), a.maxBatch())
		return
	}
	qs := make([]psd.Rect, len(req.Rects))
	for i, v := range req.Rects {
		q, err := rectFrom(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "rect %d: %v", i, err)
			return
		}
		qs[i] = q
	}
	if a.testHookBatch != nil {
		a.testHookBatch()
	}
	// One node-major engine call answers every miss; hits fill from the
	// cache per query, exactly as the single-query endpoint would.
	vals := make([]float64, len(qs))
	hits, bst, err := rel.CountBatchIntoCtx(r.Context(), vals, qs)
	if err != nil {
		a.countErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"release":    rel.Name,
		"counts":     vals,
		"cache_hits": hits,
		"stats":      bst,
	})
}

func (a *API) handleRegions(w http.ResponseWriter, r *http.Request) {
	rel, ok := a.release(w, r)
	if !ok {
		return
	}
	rects, counts := rel.Slab.Regions()
	flat := make([][4]float64, len(rects))
	for i, rc := range rects {
		flat[i] = [4]float64{rc.Lo.X, rc.Lo.Y, rc.Hi.X, rc.Hi.Y}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"release": rel.Name,
		"rects":   flat,
		"counts":  counts,
	})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	rel, ok := a.release(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"release": rel.Name,
		"stats":   rel.Stats(),
	})
}

// handleVersions lists the registered versions of a base name with the pin
// and active markers — the time-travel index.
func (a *API) handleVersions(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	versions := a.Registry.Versions(name)
	if len(versions) == 0 {
		writeError(w, http.StatusNotFound, "no versioned releases for %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "versions": versions})
}

// handlePromote pins a base name to ?version=N (or vN); ?version=0 or
// ?version=latest unpins, returning the name to latest-wins resolution.
func (a *API) handlePromote(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec := r.URL.Query().Get("version")
	if spec == "" {
		writeError(w, http.StatusBadRequest, "missing ?version=N (0 or \"latest\" to unpin)")
		return
	}
	v := 0
	if spec != "latest" {
		var ok bool
		if v, ok = parseVersionSuffix(spec); !ok {
			n, err := strconv.Atoi(spec)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "bad version %q (want N, vN, 0, or \"latest\")", spec)
				return
			}
			v = n
		}
	}
	if err := a.Registry.Promote(name, v); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if v == 0 {
		a.logf("serve: unpinned %q (latest-wins resolution)", name)
	} else {
		a.logf("serve: promoted %q to v%d", name, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "versions": a.Registry.Versions(name)})
}

// handleManifestGet reports the last applied rollout manifest; 404 until
// one has been applied (a watch-dir or flag-loaded replica has none).
func (a *API) handleManifestGet(w http.ResponseWriter, r *http.Request) {
	st, ok := a.Registry.CurrentManifest()
	if !ok {
		writeError(w, http.StatusNotFound, "no manifest applied")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleManifestApply pulls, verifies, and atomically installs a rollout
// manifest. A failed apply changes nothing (400: the replica still
// serves its previous set), which is what the fleet coordinator's
// rollback leans on.
func (a *API) handleManifestApply(w http.ResponseWriter, r *http.Request) {
	var m Manifest
	body := http.MaxBytesReader(w, r.Body, a.maxBody())
	if err := json.NewDecoder(body).Decode(&m); err != nil {
		if tooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"manifest exceeds the %d-byte body limit", a.maxBody())
			return
		}
		writeError(w, http.StatusBadRequest, "bad manifest body: %v", err)
		return
	}
	if err := a.Registry.ApplyManifest(m); err != nil {
		writeError(w, http.StatusBadRequest, "apply manifest: %v", err)
		return
	}
	a.logf("serve: applied manifest %q (%d releases)", m.Version, len(m.Releases))
	st, _ := a.Registry.CurrentManifest()
	writeJSON(w, http.StatusOK, st)
}

func (a *API) handleReload(w http.ResponseWriter, r *http.Request) {
	if a.WatchDir == "" {
		writeError(w, http.StatusBadRequest, "no watch directory configured (-dir)")
		return
	}
	loaded, skipped, err := a.Registry.ScanDir(a.WatchDir)
	resp := map[string]any{
		"loaded":      loaded,
		"skipped":     skipped,
		"quarantined": a.Registry.Quarantined(),
	}
	if err != nil {
		resp["error"] = err.Error()
		writeJSON(w, http.StatusInternalServerError, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
