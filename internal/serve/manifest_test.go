package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"psd"
	"psd/internal/serve/faultfs"
)

// manifestFor builds a manifest over already-written artifact files,
// checksumming each the way a publisher would.
func manifestFor(t *testing.T, version string, artifacts map[string]string) Manifest {
	t.Helper()
	m := Manifest{Version: version}
	for name, path := range artifacts {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m.Releases = append(m.Releases, ManifestEntry{Name: name, Path: path, CRC64: ChecksumBytes(data)})
	}
	return m
}

func TestManifestApplyAndOwnership(t *testing.T) {
	dir := t.TempDir()
	treeA, treeB := buildTree(t, 11), buildTree(t, 22)
	pathA := filepath.Join(dir, "a.bin")
	pathB := filepath.Join(dir, "b.bin")
	writeFile(t, pathA, releaseBytes(t, treeA))
	writeFile(t, pathB, releaseBytes(t, treeB))

	reg := NewRegistry(256)
	reg.SetLogger(log.New(io.Discard, "", 0))
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	// No manifest applied yet: GET 404s.
	getJSON(t, srv.URL+"/v1/manifest", http.StatusNotFound, nil)

	// A hand-registered release, to prove manifests leave it alone.
	postJSON(t, srv.URL+"/v1/releases/manual", releaseBytes(t, treeA), http.StatusCreated, nil)

	// Apply v1: two releases.
	m1 := manifestFor(t, "v1", map[string]string{"alpha": pathA, "beta": pathB})
	body, _ := json.Marshal(m1)
	var st ManifestStatus
	postJSON(t, srv.URL+"/v1/manifest", body, http.StatusOK, &st)
	if st.Manifest.Version != "v1" || len(st.Manifest.Releases) != 2 {
		t.Fatalf("apply status = %+v", st)
	}
	getJSON(t, srv.URL+"/v1/manifest", http.StatusOK, &st)
	if st.Manifest.Version != "v1" {
		t.Fatalf("GET manifest version = %q, want v1", st.Manifest.Version)
	}

	// Served answers match the source trees bit-for-bit.
	q := psd.NewRect(5, 5, 80, 60)
	var got struct {
		Count float64 `json:"count"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/releases/alpha/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y), http.StatusOK, &got)
	if want := treeA.Count(q); got.Count != want {
		t.Fatalf("alpha count %v, want %v", got.Count, want)
	}

	// Apply v2: beta gone, alpha now serves tree B's artifact. The
	// manifest owns its release set — beta is removed — but the manual
	// release survives.
	m2 := manifestFor(t, "v2", map[string]string{"alpha": pathB})
	body, _ = json.Marshal(m2)
	postJSON(t, srv.URL+"/v1/manifest", body, http.StatusOK, &st)
	if st.Manifest.Version != "v2" {
		t.Fatalf("v2 apply status = %+v", st)
	}
	getJSON(t, srv.URL+"/v1/releases/beta/count?rect=0,0,1,1", http.StatusNotFound, nil)
	getJSON(t, srv.URL+"/v1/releases/manual/count?rect=0,0,1,1", http.StatusOK, nil)
	getJSON(t, fmt.Sprintf("%s/v1/releases/alpha/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y), http.StatusOK, &got)
	if want := treeB.Count(q); got.Count != want {
		t.Fatalf("alpha after v2: count %v, want %v (tree B)", got.Count, want)
	}
}

// TestManifestApplyIsAtomic pins the rollback contract: a manifest that
// fails on any artifact — checksum mismatch, corrupt bytes, unreadable
// path — changes nothing at all.
func TestManifestApplyIsAtomic(t *testing.T) {
	dir := t.TempDir()
	tree := buildTree(t, 33)
	goodPath := filepath.Join(dir, "good.bin")
	writeFile(t, goodPath, releaseBytes(t, tree))

	reg := NewRegistry(256)
	reg.SetLogger(log.New(io.Discard, "", 0))
	api := &API{Registry: reg}
	srv := newTestServer(t, api)

	m1 := manifestFor(t, "v1", map[string]string{"alpha": goodPath})
	body, _ := json.Marshal(m1)
	postJSON(t, srv.URL+"/v1/manifest", body, http.StatusOK, nil)

	// Checksum mismatch: manifest lies about the bytes.
	bad := m1
	bad.Version = "v2"
	bad.Releases = append([]ManifestEntry(nil), m1.Releases...)
	bad.Releases[0].CRC64 = ChecksumBytes([]byte("not the file"))
	bad.Releases = append(bad.Releases, ManifestEntry{
		Name: "newrel", Path: goodPath, CRC64: ChecksumBytes(releaseBytes(t, tree))})
	body, _ = json.Marshal(bad)
	postJSON(t, srv.URL+"/v1/manifest", body, http.StatusBadRequest, nil)

	// Corrupt artifact whose checksum is honest (decode fails).
	corruptPath := filepath.Join(dir, "corrupt.bin")
	writeFile(t, corruptPath, []byte("garbage artifact"))
	m3 := manifestFor(t, "v3", map[string]string{"alpha": corruptPath})
	body, _ = json.Marshal(m3)
	postJSON(t, srv.URL+"/v1/manifest", body, http.StatusBadRequest, nil)

	// Unreadable path.
	m4 := manifestFor(t, "v4", map[string]string{"alpha": goodPath})
	m4.Releases[0].Path = filepath.Join(dir, "missing.bin")
	body, _ = json.Marshal(m4)
	postJSON(t, srv.URL+"/v1/manifest", body, http.StatusBadRequest, nil)

	// Transient read fault through the FS seam.
	ffs := faultfs.New()
	ffs.Set(goodPath, faultfs.Fault{ReadErr: errors.New("injected EIO")})
	reg.SetFS(ffs)
	m5 := manifestFor(t, "v5", map[string]string{"alpha": goodPath})
	body, _ = json.Marshal(m5)
	postJSON(t, srv.URL+"/v1/manifest", body, http.StatusBadRequest, nil)

	// After all four failures: still v1, still serving, answers intact.
	var st ManifestStatus
	getJSON(t, srv.URL+"/v1/manifest", http.StatusOK, &st)
	if st.Manifest.Version != "v1" {
		t.Fatalf("after failed applies: version %q, want v1", st.Manifest.Version)
	}
	q := psd.NewRect(10, 10, 90, 90)
	var got struct {
		Count float64 `json:"count"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/releases/alpha/count?rect=%g,%g,%g,%g",
		srv.URL, q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y), http.StatusOK, &got)
	if want := tree.Count(q); got.Count != want {
		t.Fatalf("alpha count after failed applies %v, want %v", got.Count, want)
	}
	getJSON(t, srv.URL+"/v1/releases/newrel/count?rect=0,0,1,1", http.StatusNotFound, nil)
}

func TestManifestValidate(t *testing.T) {
	good := ManifestEntry{Name: "a", Path: "/x/a.bin", CRC64: ChecksumBytes([]byte("x"))}
	cases := []struct {
		name string
		m    Manifest
	}{
		{"no version", Manifest{Releases: []ManifestEntry{good}}},
		{"no releases", Manifest{Version: "v1"}},
		{"duplicate name", Manifest{Version: "v1", Releases: []ManifestEntry{good, good}}},
		{"no path", Manifest{Version: "v1", Releases: []ManifestEntry{{Name: "a", CRC64: good.CRC64}}}},
		{"bad crc", Manifest{Version: "v1", Releases: []ManifestEntry{{Name: "a", Path: "/x", CRC64: "zz"}}}},
		{"bad name", Manifest{Version: "v1", Releases: []ManifestEntry{{Name: "../evil", Path: "/x", CRC64: good.CRC64}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.m)
		}
	}
	ok := Manifest{Version: "v1", Releases: []ManifestEntry{good}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

// TestTransientBackoffJitterDecorrelates pins the full-jitter satellite:
// two registries with the same retryBase must not produce identical
// retry schedules — that lockstep is exactly what re-thunders a shared
// filer after a blip.
func TestTransientBackoffJitterDecorrelates(t *testing.T) {
	// The draw itself: bounded by the ceiling, not constant.
	const samples = 8
	drawsA := make([]time.Duration, samples)
	drawsB := make([]time.Duration, samples)
	for i := 0; i < samples; i++ {
		drawsA[i] = fullJitter(time.Hour)
		drawsB[i] = fullJitter(time.Hour)
		for _, d := range []time.Duration{drawsA[i], drawsB[i]} {
			if d < 0 || d > time.Hour {
				t.Fatalf("fullJitter(1h) = %v, outside [0, 1h]", d)
			}
		}
	}
	same := true
	for i := range drawsA {
		if drawsA[i] != drawsB[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("two independent jitter sequences identical: %v", drawsA)
	}
	if fullJitter(0) != 0 {
		t.Fatal("fullJitter(0) != 0")
	}

	// End to end: two replicas watching the same flaky artifact with the
	// same retryBase record different drawn delays.
	dir := t.TempDir()
	path := filepath.Join(dir, "flaky.bin")
	writeFile(t, path, releaseBytes(t, buildTree(t, 55)))
	errIO := errors.New("injected EIO")

	delays := make(map[*Registry]time.Duration)
	mkReg := func() *Registry {
		ffs := faultfs.New()
		ffs.Set(path, faultfs.Fault{ReadErr: errIO})
		var logBuf bytes.Buffer
		reg := quietRegistry(64, ffs, &logBuf)
		reg.retryBase = time.Hour
		reg.jitter = func(d time.Duration) time.Duration {
			v := fullJitter(d) // the real draw, recorded
			delays[reg] = v
			return v
		}
		return reg
	}
	reg1, reg2 := mkReg(), mkReg()
	reg1.ScanDir(dir)
	reg2.ScanDir(dir)
	d1, ok1 := delays[reg1]
	d2, ok2 := delays[reg2]
	if !ok1 || !ok2 {
		t.Fatalf("jitter draw not recorded: %v %v", ok1, ok2)
	}
	if d1 > time.Hour || d2 > time.Hour {
		t.Fatalf("drawn delays %v, %v exceed the retryBase ceiling", d1, d2)
	}
	if d1 == d2 {
		t.Fatalf("two same-retryBase registries drew the identical delay %v", d1)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition: content type,
// server gauges, and per-release counters consistent with /stats.
func TestMetricsEndpoint(t *testing.T) {
	tree := buildTree(t, 66)
	reg := NewRegistry(256)
	reg.SetLogger(log.New(io.Discard, "", 0))
	api := &API{Registry: reg}
	api.SetReady(true)
	srv := newTestServer(t, api)

	postJSON(t, srv.URL+"/v1/releases/roads", releaseBytes(t, tree), http.StatusCreated, nil)
	// Two identical queries: 2 requests, 1 cache hit.
	for i := 0; i < 2; i++ {
		getJSON(t, srv.URL+"/v1/releases/roads/count?rect=0,0,50,50", http.StatusOK, nil)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE psdserve_ready gauge",
		"psdserve_ready 1",
		"psdserve_releases 1",
		"# TYPE psdserve_release_requests_total counter",
		`psdserve_release_requests_total{release="roads"} 2`,
		`psdserve_release_cache_hits_total{release="roads"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
	// Exposition sanity: every non-comment line is name[{labels}] value.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}
