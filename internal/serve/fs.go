package serve

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"psd"
)

// FS is the registry's filesystem seam: every byte the watch-dir scanner and
// file loader touch flows through it. Production uses the real filesystem
// (osFS); the fault-injection tests swap in faultfs.FS to make I/O fail,
// truncate, or stall on demand, which is how the quarantine, retry, and
// partial-write behavior is proven deterministically.
type FS interface {
	Open(name string) (io.ReadCloser, error)
	Stat(name string) (fs.FileInfo, error)
	Glob(pattern string) ([]string, error)
}

// slabOpener is an optional FS capability: open a release artifact by path
// through the cheapest route the platform allows — zero-copy mmap for v3
// artifacts, a streaming decode otherwise. The real filesystem implements
// it; faultfs does not, so the fault-injection suite keeps exercising the
// byte-level reader path the quarantine classification was proven on.
type slabOpener interface {
	OpenSlab(path string) (*psd.Slab, error)
}

// osFS is the real filesystem, the default seam.
type osFS struct{}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)   { return os.Stat(name) }
func (osFS) Glob(pattern string) ([]string, error)   { return filepath.Glob(pattern) }
func (osFS) OpenSlab(path string) (*psd.Slab, error) { return psd.OpenSlabFile(path) }

// transientOpenErr classifies a direct-open failure for the quarantine
// policy, mirroring readTracker's distinction: a *fs.PathError means the
// filesystem operation itself failed (open, stat, mmap, a read syscall
// during fallback decode) and is worth retrying; anything else means the
// bytes were reachable and are simply not a valid release — permanent
// until the file changes.
func transientOpenErr(err error) bool {
	var pe *fs.PathError
	return errors.As(err, &pe)
}

// readTracker wraps an artifact reader and remembers whether any read failed
// with a genuine I/O error (as opposed to a clean EOF). The distinction is
// what separates transient failures from permanent corruption during
// quarantine classification: a decode error over a cleanly-read byte stream
// means the bytes themselves are bad (retrying cannot help until the file
// changes), while a decode error after EIO means the read may simply be
// retried.
type readTracker struct {
	r     io.Reader
	ioErr error
}

func (t *readTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF {
		t.ioErr = err
	}
	return n, err
}
