package serve

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"hash/crc64"
	"io"
	"sort"
	"time"

	"psd"
)

// Manifest-driven rollouts: a manifest names a versioned set of release
// artifacts (path + CRC-64/ECMA checksum each). A replica applies a
// manifest by pulling and fully validating every artifact — checksum
// over the raw file bytes first, then the decode-time validation every
// load path already performs — and only then swapping the whole set into
// the registry atomically. A manifest that fails at any point changes
// nothing: the replica keeps serving exactly what it served before,
// which is what makes fleet-level rollback safe (the coordinator just
// re-applies the previous manifest). The CRC algorithm matches binary
// format v3's footer checksum (CRC-64/ECMA), so v3 artifacts carry the
// same integrity story end to end.

// Manifest is the rollout unit: a version tag plus the artifact set.
type Manifest struct {
	// Version labels this artifact set; any non-empty string, compared
	// for equality only (rollouts gate on "replica reports this exact
	// version").
	Version string `json:"version"`
	// Releases is the artifact set the manifest installs. Names absent
	// from a later manifest are removed when that manifest applies —
	// the manifest owns its release set.
	Releases []ManifestEntry `json:"releases"`
}

// ManifestEntry is one artifact in a manifest.
type ManifestEntry struct {
	// Name is the registry key the artifact serves under.
	Name string `json:"name"`
	// Path is where the replica pulls the artifact from (a file path on
	// storage every replica can read).
	Path string `json:"path"`
	// CRC64 is the hex CRC-64/ECMA checksum of the artifact's bytes.
	CRC64 string `json:"crc64"`
}

var manifestCRCTable = crc64.MakeTable(crc64.ECMA)

// ChecksumBytes returns the hex CRC-64/ECMA of data, the value a
// ManifestEntry.CRC64 must carry.
func ChecksumBytes(data []byte) string {
	return fmt.Sprintf("%016x", crc64.Checksum(data, manifestCRCTable))
}

// Validate rejects manifests that could not be applied unambiguously.
func (m *Manifest) Validate() error {
	if m.Version == "" {
		return fmt.Errorf("serve: manifest has no version")
	}
	if len(m.Releases) == 0 {
		return fmt.Errorf("serve: manifest %q names no releases", m.Version)
	}
	seen := make(map[string]bool, len(m.Releases))
	for _, e := range m.Releases {
		// Versioned keys ("taxi@v3") roll out exactly like bare names.
		if err := validateKey(e.Name); err != nil {
			return err
		}
		if seen[e.Name] {
			return fmt.Errorf("serve: manifest %q names %q twice", m.Version, e.Name)
		}
		seen[e.Name] = true
		if e.Path == "" {
			return fmt.Errorf("serve: manifest %q: release %q has no path", m.Version, e.Name)
		}
		if _, err := hex.DecodeString(e.CRC64); err != nil || len(e.CRC64) != 16 {
			return fmt.Errorf("serve: manifest %q: release %q has bad crc64 %q (want 16 hex digits)",
				m.Version, e.Name, e.CRC64)
		}
	}
	return nil
}

// ManifestStatus is the JSON shape of GET /v1/manifest: what the replica
// last applied.
type ManifestStatus struct {
	Manifest  Manifest  `json:"manifest"`
	AppliedAt time.Time `json:"applied_at"`
}

// CurrentManifest returns the last applied manifest, if any.
func (g *Registry) CurrentManifest() (ManifestStatus, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.manifest == nil {
		return ManifestStatus{}, false
	}
	return ManifestStatus{Manifest: *g.manifest, AppliedAt: g.manifestAt}, true
}

// ApplyManifest pulls, verifies, and warms every artifact the manifest
// names, then installs the whole set in one atomic swap: releases named
// by the manifest are replaced (fresh caches), releases owned by the
// previous manifest but absent from this one are removed, and releases
// installed outside any manifest (watch dir, API uploads) are left
// alone. On any failure — unreadable path, checksum mismatch, artifact
// that fails validation — the registry is untouched and the error says
// which artifact broke.
func (g *Registry) ApplyManifest(m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	// Pull + verify + warm everything before touching the registry. The
	// decoded slab is the warmed state: a fully parsed, query-ready
	// artifact (OpenSlab validates as it decodes).
	fresh := make([]*Release, 0, len(m.Releases))
	for _, e := range m.Releases {
		rel, err := g.pullManifestArtifact(e)
		if err != nil {
			return fmt.Errorf("serve: manifest %q: %w", m.Version, err)
		}
		fresh = append(fresh, rel)
	}
	g.mu.Lock()
	owned := make(map[string]bool, len(m.Releases))
	for _, rel := range fresh {
		owned[rel.Name] = true
	}
	for name := range g.manifestOwned {
		if !owned[name] {
			delete(g.entries, name)
			if base, v, versioned, err := parseKey(name); err == nil && versioned {
				g.dropVersionLocked(base, v)
			}
		}
	}
	for _, rel := range fresh {
		g.entries[rel.Name] = rel
		g.noteInstallLocked(rel.Name)
	}
	mCopy := m
	mCopy.Releases = append([]ManifestEntry(nil), m.Releases...)
	sort.Slice(mCopy.Releases, func(i, j int) bool {
		return mCopy.Releases[i].Name < mCopy.Releases[j].Name
	})
	g.manifest = &mCopy
	g.manifestAt = time.Now()
	g.manifestOwned = owned
	g.mu.Unlock()
	return nil
}

// pullManifestArtifact reads one manifest entry through the FS seam,
// checks its checksum, and opens it into a served release. The bytes are
// read in full for the CRC regardless of format — one sequential pass,
// which doubles as the warm-up read the rollout's "pull/warm/swap"
// contract promises.
func (g *Registry) pullManifestArtifact(e ManifestEntry) (*Release, error) {
	f, err := g.fs().Open(e.Path)
	if err != nil {
		return nil, fmt.Errorf("release %q: %w", e.Name, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("release %q: reading %s: %w", e.Name, e.Path, err)
	}
	if got := ChecksumBytes(data); got != e.CRC64 {
		return nil, fmt.Errorf("release %q: checksum mismatch for %s: manifest says %s, file is %s",
			e.Name, e.Path, e.CRC64, got)
	}
	slab, err := psd.OpenSlab(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("release %q: %s: %w", e.Name, e.Path, err)
	}
	return &Release{
		Name:       e.Name,
		Slab:       slab,
		Source:     e.Path,
		Bytes:      int64(len(data)),
		LoadedAt:   time.Now(),
		NumRegions: slab.NumRegions(),
		cache:      NewCache(g.cacheSize),
	}, nil
}
