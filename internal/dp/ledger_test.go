package dp

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAccountantManyEpochs pins the compensated-summation fix: a million
// epoch charges that sum to exactly the budget in real arithmetic must all
// be admitted (a naive float64 running sum drifts by ~1e-11 here, enough to
// falsely refuse the tail under an exact check), and the very next epoch
// must be refused.
func TestAccountantManyEpochs(t *testing.T) {
	const n = 1_000_000
	const eps = 1e-6
	a := NewAccountant(1.0)
	for i := 0; i < n; i++ {
		if err := a.Charge("epoch", eps); err != nil {
			t.Fatalf("epoch %d falsely refused: %v", i, err)
		}
	}
	if got := a.Spent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Spent = %.17g, want 1.0 within 1e-12", got)
	}
	if err := a.Charge("one too many", eps); err == nil {
		t.Fatal("charge past an exhausted budget was admitted")
	}
	if len(a.Charges()) != n {
		t.Fatalf("Charges len = %d, want %d", len(a.Charges()), n)
	}
}

// TestAccountantUlpTolerance pins the tolerance at one ulp: rounding noise
// from splitting a budget is admitted, anything materially beyond it is not.
func TestAccountantUlpTolerance(t *testing.T) {
	a := NewAccountant(1.0)
	third := 1.0 / 3
	for i := 0; i < 3; i++ {
		if err := a.Charge("third", third); err != nil {
			t.Fatalf("third %d refused: %v", i, err)
		}
	}
	// 3*float64(1/3) is one ulp below 1.0; a further 1e-15 crosses the line.
	if err := a.Charge("overshoot", 1e-15); err == nil {
		t.Fatal("charge more than one ulp past the budget was admitted")
	}
	// The old check admitted up to budget*(1+1e-9)+1e-9 — real overspend.
	b := NewAccountant(1.0)
	if err := b.Charge("full", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge("sneak", 1e-10); err == nil {
		t.Fatal("sub-tolerance overspend of the old loose check must now be refused")
	}
	if err := b.Charge("nan", math.NaN()); err == nil {
		t.Fatal("NaN charge admitted")
	}
	if err := b.Charge("inf", math.Inf(1)); err == nil {
		t.Fatal("Inf charge admitted")
	}
}

func TestLedgerChargeAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenLedger(path, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("roads", "roads@v1", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("roads", "roads@v2", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("salaries", "salaries@v1", 0.9); err != nil {
		t.Fatal(err)
	}
	if got := l.Spent("roads"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Spent(roads) = %v, want 0.5", got)
	}
	if !l.Charged("roads", "roads@v2") || l.Charged("roads", "roads@v3") {
		t.Fatal("Charged lookup wrong")
	}
	if err := l.Charge("salaries", "salaries@v2", 0.2); err == nil {
		t.Fatal("over-budget charge admitted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the journal replays into identical state, and the refused
	// charge left no trace.
	l2, err := OpenLedger(path, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Spent("roads"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("replayed Spent(roads) = %v, want 0.5", got)
	}
	if got := l2.Spent("salaries"); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("replayed Spent(salaries) = %v, want 0.9", got)
	}
	if !l2.Charged("roads", "roads@v1") || l2.Charged("salaries", "salaries@v2") {
		t.Fatal("replayed Charged lookup wrong")
	}
	if got := len(l2.Charges("roads")); got != 2 {
		t.Fatalf("replayed Charges(roads) len = %d, want 2", got)
	}
	if got := l2.Remaining("unseen"); got != 1.0 {
		t.Fatalf("Remaining(unseen) = %v, want full budget", got)
	}
}

// TestLedgerTornTail pins crash recovery: a torn final line (the shape a
// kill mid-append leaves) is truncated away and the ledger keeps working;
// the spend already durable is preserved.
func TestLedgerTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenLedger(path, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("roads", "roads@v1", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("roads", "roads@v2", 0.25); err != nil {
		t.Fatal(err)
	}
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	// Every torn prefix of the last line must recover to exactly the first
	// charge — never more, never a parse failure.
	full := lines[0] + lines[1] + "\n"
	for cut := len(lines[0]); cut < len(full); cut++ {
		if err := os.WriteFile(path, []byte(full[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := OpenLedger(path, 1.0)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if got := l2.Spent("roads"); math.Abs(got-0.25) > 1e-12 {
			t.Fatalf("cut=%d: Spent = %v, want 0.25", cut, got)
		}
		// The ledger must remain appendable after tail truncation.
		if err := l2.Charge("roads", "roads@v2b", 0.1); err != nil {
			t.Fatalf("cut=%d: charge after recovery: %v", cut, err)
		}
		l2.Close()
	}
}

// TestLedgerMidFileCorruption pins the loud-failure path: a corrupt record
// with intact records after it means durable spend is unreadable, and the
// open must fail rather than silently under-count.
func TestLedgerMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenLedger(path, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i, lbl := range []string{"a", "b", "c"} {
		if err := l.Charge("roads", lbl, 0.1*float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the FIRST line.
	corrupted := append([]byte(nil), data...)
	corrupted[len(ledgerLinePrefix)+20] ^= 0x01
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLedger(path, 1.0); err == nil {
		t.Fatal("mid-file corruption with records following must fail the open")
	}
}

// TestLedgerAppendFailureLatchesAndRecovers pins the failed-append
// contract: a Charge whose journal append fails commits nothing in memory —
// no seq advance, no accountant spend — so the on-disk record sequence can
// never gap (the old behavior bumped seq first; a later successful charge
// then wrote a gapped record the next open refused to replay). When even
// the tail rollback fails the ledger latches broken and refuses further
// charges until a reopen replays the durable prefix.
func TestLedgerAppendFailureLatchesAndRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("roads", "roads@v1", 1); err != nil {
		t.Fatal(err)
	}
	// Close the handle out from under the ledger: the append fails, and so
	// does the rollback truncate — the broken-latch path.
	l.f.Close()
	if err := l.Charge("roads", "roads@v2", 1); err == nil {
		t.Fatal("charge with failed append reported success")
	}
	if got := l.Spent("roads"); got != 1 {
		t.Fatalf("failed charge leaked into memory: Spent = %v, want 1", got)
	}
	if err := l.Charge("roads", "roads@v3", 1); err == nil {
		t.Fatal("broken ledger admitted a further charge")
	}

	// Reopen: the durable prefix replays, and charging resumes with the
	// very seq the failed attempt would have used — no gap, no duplicate.
	l2, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Spent("roads"); got != 1 {
		t.Fatalf("replayed Spent = %v, want 1", got)
	}
	if err := l2.Charge("roads", "roads@v2", 1); err != nil {
		t.Fatalf("charge after recovery: %v", err)
	}
	l2.Close()
	l3, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatalf("journal left unreplayable by the failure: %v", err)
	}
	defer l3.Close()
	if got := l3.Spent("roads"); got != 2 {
		t.Fatalf("final Spent = %v, want 2", got)
	}
}

// TestLedgerReplayExceedsBudget pins the over-count-safe direction: records
// already on disk are replayed even past a (now smaller) budget — a durable
// spend is a fact — and further charges are refused.
func TestLedgerReplayExceedsBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenLedger(path, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("roads", "roads@v1", 0.8); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := OpenLedger(path, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Spent("roads"); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("replayed Spent = %v, want 0.8 (replay must not drop durable spend)", got)
	}
	if l2.Remaining("roads") != 0 {
		t.Fatalf("Remaining = %v, want 0", l2.Remaining("roads"))
	}
	if err := l2.Charge("roads", "roads@v2", 0.01); err == nil {
		t.Fatal("charge admitted past exhausted budget")
	}
}
