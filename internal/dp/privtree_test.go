package dp

import (
	"math"
	"testing"
)

func TestPrivTreeCalibration(t *testing.T) {
	// β = 4, ε = 0.3: λ = (7/3)/0.3, δ = λ·ln4, and the epsilon inversion
	// recovers the budget exactly.
	lam, err := PrivTreeLambda(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if want := (7.0 / 3.0) / 0.3; math.Abs(lam-want) > 1e-12 {
		t.Errorf("lambda = %v, want %v", lam, want)
	}
	if got, want := PrivTreeDelta(lam, 4), lam*math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("delta = %v, want %v", got, want)
	}
	if got := PrivTreeEpsilon(4, lam); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("epsilon(lambda) = %v, want 0.3", got)
	}
	// Noiseless splits consume unbounded budget; zero decay.
	if got := PrivTreeEpsilon(4, 0); !math.IsInf(got, 1) {
		t.Errorf("epsilon(0) = %v, want +Inf", got)
	}
	if got := PrivTreeDelta(0, 4); got != 0 {
		t.Errorf("delta(0) = %v, want 0", got)
	}
	for _, bad := range []struct {
		fanout int
		eps    float64
	}{{1, 1}, {4, 0}, {4, -1}, {4, math.NaN()}, {4, math.Inf(1)}} {
		if _, err := PrivTreeLambda(bad.fanout, bad.eps); err == nil {
			t.Errorf("PrivTreeLambda(%d, %v): expected error", bad.fanout, bad.eps)
		}
	}
}
