// Package dp implements the differential privacy mechanisms of Section 3 of
// the paper, plus the composition and amplification results the tree
// constructions rely on:
//
//   - the Laplace mechanism (Definition 2) and its variance,
//   - the geometric mechanism of [10] as an integer-valued alternative,
//   - a generic exponential-mechanism sampler (Definition 5 is built on it),
//   - sequential composition accounting (Lemma 1),
//   - privacy amplification by Bernoulli sampling (Theorem 7),
//   - the smooth-sensitivity noise calibration constant ξ (Definition 4).
//
// Noise enters through the NoiseSource interface so tests can substitute a
// deterministic zero-noise source and assert exact structural invariants.
package dp

import (
	"errors"
	"fmt"
	"math"

	"psd/internal/rng"
)

// NoiseSource perturbs numeric query answers to achieve ε-differential
// privacy. Implementations must be safe to call sequentially; they are not
// required to be goroutine-safe.
type NoiseSource interface {
	// Add returns value perturbed with enough noise to make its release
	// eps-differentially private given the stated L1 sensitivity. An eps of
	// zero means "release nothing useful": implementations return value
	// unchanged and callers are responsible for not releasing it (the tree
	// code treats eps == 0 levels as unpublished).
	Add(value, sensitivity, eps float64) float64

	// Variance returns the variance of the noise Add would inject for the
	// given sensitivity and eps. Zero eps yields +Inf (an unpublished value
	// carries no information).
	Variance(sensitivity, eps float64) float64
}

// StreamNoise is a NoiseSource that can additionally derive its noise from
// a caller-chosen stream id instead of an internal sequential stream. The
// variate for a given (stream, value, sensitivity, eps) is a pure function
// of the source's seed and the arguments — independent of call order and
// safe to invoke from many goroutines at once — which is what lets the tree
// release loop run in parallel while staying byte-identical to a sequential
// release.
type StreamNoise interface {
	NoiseSource

	// AddAt is Add drawing from the stream-th noise stream.
	AddAt(stream uint64, value, sensitivity, eps float64) float64
}

// saltNoise namespaces the per-stream noise draws away from any other use
// of the same base seed.
const saltNoise = 0x6e6f697365 // "noise"

// SeededLaplace is the Laplace mechanism with order-independent per-stream
// noise: stream i's variate depends only on (seed, i). It also supports the
// legacy sequential Add for callers without a natural stream id (the grid
// release uses it cell-by-cell).
type SeededLaplace struct {
	seed int64
	seq  *rng.Source
}

// NewSeededLaplace returns a Laplace StreamNoise derived from seed.
func NewSeededLaplace(seed int64) *SeededLaplace {
	return &SeededLaplace{seed: seed, seq: rng.New(seed)}
}

// Add implements NoiseSource from the internal sequential stream.
func (l *SeededLaplace) Add(value, sensitivity, eps float64) float64 {
	if eps <= 0 {
		return value
	}
	return value + l.seq.Laplace(sensitivity/eps)
}

// AddAt implements StreamNoise.
func (l *SeededLaplace) AddAt(stream uint64, value, sensitivity, eps float64) float64 {
	if eps <= 0 {
		return value
	}
	src := rng.At(l.seed, stream, saltNoise)
	return value + src.Laplace(sensitivity/eps)
}

// Variance implements NoiseSource.
func (l *SeededLaplace) Variance(sensitivity, eps float64) float64 {
	return LaplaceVariance(sensitivity, eps)
}

// Laplace is the standard Laplace mechanism (Definition 2): it adds
// Lap(sensitivity/eps) noise.
type Laplace struct {
	src *rng.Source
}

// NewLaplace returns a Laplace mechanism drawing from src.
func NewLaplace(src *rng.Source) *Laplace { return &Laplace{src: src} }

// Add implements NoiseSource.
func (l *Laplace) Add(value, sensitivity, eps float64) float64 {
	if eps <= 0 {
		return value
	}
	return value + l.src.Laplace(sensitivity/eps)
}

// Variance implements NoiseSource. Var(Lap(b)) = 2b².
func (l *Laplace) Variance(sensitivity, eps float64) float64 {
	return LaplaceVariance(sensitivity, eps)
}

// LaplaceVariance returns 2·(sensitivity/eps)², the variance of the Laplace
// mechanism, or +Inf when eps <= 0.
func LaplaceVariance(sensitivity, eps float64) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	b := sensitivity / eps
	return 2 * b * b
}

// Geometric is the geometric mechanism of Ghosh, Roughgarden and
// Sundararajan [10]: integer-valued two-sided geometric noise with parameter
// α = exp(-eps/sensitivity). For count queries it is the utility-optimal
// ε-DP mechanism; the paper cites it as related work and we provide it as an
// alternative NoiseSource.
type Geometric struct {
	src *rng.Source
}

// NewGeometric returns a geometric mechanism drawing from src.
func NewGeometric(src *rng.Source) *Geometric { return &Geometric{src: src} }

// Add implements NoiseSource.
func (g *Geometric) Add(value, sensitivity, eps float64) float64 {
	if eps <= 0 {
		return value
	}
	alpha := math.Exp(-eps / sensitivity)
	return value + float64(g.src.TwoSidedGeometric(alpha))
}

// Variance implements NoiseSource. Var = 2α/(1-α)² for parameter α.
func (g *Geometric) Variance(sensitivity, eps float64) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	alpha := math.Exp(-eps / sensitivity)
	d := 1 - alpha
	return 2 * alpha / (d * d)
}

// ZeroNoise is a NoiseSource that adds nothing. It provides NO privacy and
// exists so tests and the non-private baselines (kd-pure, kd-true) can run
// through the identical code path as the private trees.
type ZeroNoise struct{}

// Add implements NoiseSource by returning value unchanged.
func (ZeroNoise) Add(value, _, _ float64) float64 { return value }

// AddAt implements StreamNoise by returning value unchanged.
func (ZeroNoise) AddAt(_ uint64, value, _, _ float64) float64 { return value }

// Variance implements NoiseSource; the zero source is noiseless.
func (ZeroNoise) Variance(_, _ float64) float64 { return 0 }

// ExpMechanism samples an index from {0, ..., len(scores)-1} with
// probability proportional to weight(i) · exp(eps · scores(i) / (2·sens)),
// where weight is an optional non-negative base measure (pass nil for
// uniform). This is the exponential mechanism of McSherry and Talwar [19];
// Definition 5 of the paper instantiates it for medians with score
// -|rank(x) - rank(median)| and sens = 1.
//
// The computation is done in log space with a max-shift so it cannot
// overflow regardless of eps or score magnitudes.
func ExpMechanism(src *rng.Source, scores []float64, weight []float64, eps, sens float64) (int, error) {
	return ExpMechanismBuf(src, scores, weight, eps, sens, nil)
}

// ExpMechanismBuf is ExpMechanism with a caller-provided scratch buffer for
// the log-weights. When len(buf) >= len(scores) no allocation happens; a
// nil or short buf falls back to allocating. The buffer's contents are
// overwritten.
func ExpMechanismBuf(src *rng.Source, scores []float64, weight []float64, eps, sens float64, buf []float64) (int, error) {
	n := len(scores)
	if n == 0 {
		return 0, errors.New("dp: exponential mechanism over empty outcome set")
	}
	if weight != nil && len(weight) != n {
		return 0, fmt.Errorf("dp: weight length %d != scores length %d", len(weight), n)
	}
	if sens <= 0 {
		return 0, errors.New("dp: exponential mechanism needs positive sensitivity")
	}
	logw := buf
	if len(logw) < n {
		logw = make([]float64, n)
	}
	logw = logw[:n]
	maxLog := math.Inf(-1)
	for i, s := range scores {
		lw := eps * s / (2 * sens)
		if weight != nil {
			if weight[i] < 0 {
				return 0, fmt.Errorf("dp: negative base weight %v at %d", weight[i], i)
			}
			if weight[i] == 0 {
				lw = math.Inf(-1)
			} else {
				lw += math.Log(weight[i])
			}
		}
		logw[i] = lw
		if lw > maxLog {
			maxLog = lw
		}
	}
	if math.IsInf(maxLog, -1) {
		return 0, errors.New("dp: all outcomes have zero weight")
	}
	var total float64
	for i := range logw {
		logw[i] = math.Exp(logw[i] - maxLog)
		total += logw[i]
	}
	u := src.Uniform() * total
	var cum float64
	for i, w := range logw {
		cum += w
		if u < cum {
			return i, nil
		}
	}
	return n - 1, nil // numeric slack: land on the last outcome
}

// SmoothXi returns ξ = eps / (4·(1 + ln(2/delta))), the smoothing parameter
// of Definition 4 used by the smooth-sensitivity median mechanism [20].
// It returns an error unless 0 < eps < 1 and 0 < delta < 1, the ranges the
// definition is stated for.
func SmoothXi(eps, delta float64) (float64, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("dp: smooth sensitivity requires 0 < eps < 1, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("dp: smooth sensitivity requires 0 < delta < 1, got %v", delta)
	}
	return eps / (4 * (1 + math.Log(2/delta))), nil
}

// AmplifiedEpsilon implements Theorem 7: running an eps-DP algorithm on a
// Bernoulli(p) sample of the input is (2·p·e^eps)-differentially private.
func AmplifiedEpsilon(eps, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	return 2 * p * math.Exp(eps)
}

// SampledBudget inverts Theorem 7: it returns the eps the sampled algorithm
// may spend so the overall release is target-DP when run on a Bernoulli(p)
// sample: eps = ln(target / (2p)). It returns an error when the target is
// unachievable (target <= 2p would require eps <= 0).
func SampledBudget(target, p float64) (float64, error) {
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("dp: sampling rate must be in (0,1], got %v", p)
	}
	if target <= 0 {
		return 0, fmt.Errorf("dp: non-positive privacy target %v", target)
	}
	eps := math.Log(target / (2 * p))
	if eps <= 0 {
		return 0, fmt.Errorf("dp: target %v unachievable at sampling rate %v", target, p)
	}
	return eps, nil
}

// TightAmplifiedEpsilon is the exact amplification-by-sampling bound of
// Kasiviswanathan et al. [14] that Theorem 7 loosens: running an eps-DP
// algorithm on a Bernoulli(p) sample is ln(1 + p·(e^eps − 1))-DP. Unlike the
// 2·p·e^eps form, this is always at most eps, so it remains usable when the
// target budget is small — which is how the paper's Figure 4 sampled
// variants get a budget "about 50 times larger" at p = 1% for a per-level
// target of 0.01 (Theorem 7's constant would make that target infeasible).
func TightAmplifiedEpsilon(eps, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	return math.Log1p(p * math.Expm1(eps))
}

// TightSampledBudget inverts TightAmplifiedEpsilon: the eps a sampled
// algorithm may spend so the composition achieves target-DP,
// eps = ln(1 + (e^target − 1)/p).
func TightSampledBudget(target, p float64) (float64, error) {
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("dp: sampling rate must be in (0,1], got %v", p)
	}
	if target <= 0 {
		return 0, fmt.Errorf("dp: non-positive privacy target %v", target)
	}
	return math.Log1p(math.Expm1(target) / p), nil
}
