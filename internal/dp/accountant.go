package dp

import (
	"fmt"
	"math"
)

// Accountant tracks the sequential composition of differentially private
// releases (Lemma 1) against a total budget. The tree builders use one
// accountant per root-to-leaf path class: in a partition tree only releases
// along the same path compose (Section 3.3), so the accountant models the
// per-path spend, which is identical for all paths in a complete tree.
type Accountant struct {
	budget float64
	spent  float64
	items  []Charge
}

// Charge records a single composed release.
type Charge struct {
	Label string
	Eps   float64
}

// NewAccountant returns an accountant for the given total ε budget.
// A non-positive budget is allowed and means "no spending permitted".
func NewAccountant(budget float64) *Accountant {
	return &Accountant{budget: budget}
}

// Charge records an eps-DP release with a human-readable label. It returns
// an error — and records nothing — if the charge would exceed the budget
// beyond a small floating-point tolerance.
func (a *Accountant) Charge(label string, eps float64) error {
	if eps < 0 {
		return fmt.Errorf("dp: negative charge %v (%s)", eps, label)
	}
	const tol = 1e-9
	if a.spent+eps > a.budget*(1+tol)+tol {
		return fmt.Errorf("dp: budget exceeded: spent %v + charge %v (%s) > budget %v",
			a.spent, eps, label, a.budget)
	}
	a.spent += eps
	a.items = append(a.items, Charge{Label: label, Eps: eps})
	return nil
}

// Spent returns the total ε consumed so far.
func (a *Accountant) Spent() float64 { return a.spent }

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	return math.Max(0, a.budget-a.spent)
}

// Budget returns the configured total budget.
func (a *Accountant) Budget() float64 { return a.budget }

// Charges returns a copy of the recorded charges, in order.
func (a *Accountant) Charges() []Charge {
	out := make([]Charge, len(a.items))
	copy(out, a.items)
	return out
}

// Compose returns the sequential composition of a set of per-release
// epsilons: their sum (Lemma 1).
func Compose(eps ...float64) float64 {
	var total float64
	for _, e := range eps {
		total += e
	}
	return total
}
