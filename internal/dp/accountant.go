package dp

import (
	"fmt"
	"math"
)

// Accountant tracks the sequential composition of differentially private
// releases (Lemma 1) against a total budget. The tree builders use one
// accountant per root-to-leaf path class: in a partition tree only releases
// along the same path compose (Section 3.3), so the accountant models the
// per-path spend, which is identical for all paths in a complete tree.
//
// The spend is accumulated with Neumaier compensated summation: a
// continual-observation deployment charges one epoch per published version,
// and over many thousands of small charges a naive float64 running sum
// drifts by far more than an ulp — enough to falsely refuse a final charge
// that sums to exactly the budget, or (with a loose tolerance papering over
// the drift) to quietly admit real overspend. Compensation keeps the
// recorded total correctly rounded, so the admission check can be tight: a
// charge is refused iff it pushes the true total more than one ulp past the
// budget.
type Accountant struct {
	budget float64
	// spent + comp is the Neumaier-compensated running total: spent carries
	// the naive sum, comp the rounding error each addition discarded.
	spent float64
	comp  float64
	items []Charge
}

// Charge records a single composed release.
type Charge struct {
	Label string
	Eps   float64
}

// NewAccountant returns an accountant for the given total ε budget.
// A non-positive budget is allowed and means "no spending permitted".
func NewAccountant(budget float64) *Accountant {
	return &Accountant{budget: budget}
}

// neumaierAdd adds x to the compensated pair (sum, comp), returning the new
// pair. The invariant is sum+comp == the exact running total up to one
// final rounding.
func neumaierAdd(sum, comp, x float64) (float64, float64) {
	t := sum + x
	if math.Abs(sum) >= math.Abs(x) {
		comp += (sum - t) + x
	} else {
		comp += (x - t) + sum
	}
	return t, comp
}

// Charge records an eps-DP release with a human-readable label. It returns
// an error — and records nothing — if the charge would push the total spend
// beyond the budget by more than one ulp (the compensated total is
// correctly rounded, so a set of charges that sums to exactly the budget is
// always admitted in full, while anything beyond representational rounding
// is refused).
func (a *Accountant) Charge(label string, eps float64) error {
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("dp: invalid charge %v (%s)", eps, label)
	}
	sum, comp := neumaierAdd(a.spent, a.comp, eps)
	if total := sum + comp; total > math.Nextafter(a.budget, math.Inf(1)) {
		return fmt.Errorf("dp: budget exceeded: spent %v + charge %v (%s) > budget %v",
			a.Spent(), eps, label, a.budget)
	}
	a.spent, a.comp = sum, comp
	a.items = append(a.items, Charge{Label: label, Eps: eps})
	return nil
}

// CanCharge reports whether Charge(·, eps) would be admitted, recording
// nothing either way.
func (a *Accountant) CanCharge(eps float64) bool {
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return false
	}
	sum, comp := neumaierAdd(a.spent, a.comp, eps)
	return sum+comp <= math.Nextafter(a.budget, math.Inf(1))
}

// Spent returns the total ε consumed so far (compensated, so it equals the
// exact sum of the recorded charges up to one rounding).
func (a *Accountant) Spent() float64 { return a.spent + a.comp }

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	return math.Max(0, a.budget-a.Spent())
}

// Budget returns the configured total budget.
func (a *Accountant) Budget() float64 { return a.budget }

// Charges returns a copy of the recorded charges, in order.
func (a *Accountant) Charges() []Charge {
	out := make([]Charge, len(a.items))
	copy(out, a.items)
	return out
}

// Compose returns the sequential composition of a set of per-release
// epsilons: their sum (Lemma 1).
func Compose(eps ...float64) float64 {
	var total float64
	for _, e := range eps {
		total += e
	}
	return total
}
