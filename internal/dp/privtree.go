package dp

import (
	"fmt"
	"math"
)

// PrivTree noise calibration (Zhang, Xiao, Xie. "PrivTree: A Differentially
// Private Algorithm for Hierarchical Decompositions." SIGMOD 2016).
//
// PrivTree removes the fixed-height hyperparameter of the paper's
// decompositions with a noisy-threshold splitting rule whose privacy cost is
// independent of the recursion depth: a node v splits while its biased count
// b(v) = c(v) − depth(v)·δ, floored at θ − δ and perturbed with Lap(λ),
// exceeds the threshold θ. The decay δ shrinks deeper scores geometrically,
// which is what lets a single λ cover every level at once (their Lemma 2 /
// Theorem 1): for a fanout-β hierarchy the decomposition is ε-DP when
//
//	λ ≥ (2β − 1) / (β − 1) · 1/ε   and   δ = λ·ln β.
//
// The threshold θ is a free accuracy knob (it spends no privacy); the paper
// uses θ = 0.

// PrivTreeLambda returns the smallest Laplace scale λ that makes the
// PrivTree splitting rule eps-differentially private for a fanout-β
// hierarchy of unit-sensitivity counts: λ = (2β−1)/((β−1)·eps).
func PrivTreeLambda(fanout int, eps float64) (float64, error) {
	if fanout < 2 {
		return 0, fmt.Errorf("dp: privtree needs fanout >= 2, got %d", fanout)
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return 0, fmt.Errorf("dp: privtree needs a positive finite structure budget, got %v", eps)
	}
	b := float64(fanout)
	return (2*b - 1) / ((b - 1) * eps), nil
}

// PrivTreeEpsilon inverts PrivTreeLambda: the ε the splitting rule consumes
// when run with Laplace scale lambda, ε = (2β−1)/((β−1)·λ). A zero lambda
// (noiseless splits) consumes no finite budget and reports +Inf; callers
// gate on it.
func PrivTreeEpsilon(fanout int, lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	b := float64(fanout)
	return (2*b - 1) / ((b - 1) * lambda)
}

// PrivTreeDelta returns the per-level score decay δ = λ·ln β paired with the
// given Laplace scale (the choice Theorem 1's telescoping argument needs).
func PrivTreeDelta(lambda float64, fanout int) float64 {
	if lambda <= 0 {
		return 0
	}
	return lambda * math.Log(float64(fanout))
}
