package dp

import (
	"math"
	"testing"

	"psd/internal/rng"
)

func TestLaplaceMechanismUnbiased(t *testing.T) {
	l := NewLaplace(rng.New(1))
	const n = 100000
	const truth, sens, eps = 40.0, 1.0, 0.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := l.Add(truth, sens, eps)
		sum += v
		d := v - truth
		sumSq += d * d
	}
	mean := sum / n
	if math.Abs(mean-truth) > 0.1 {
		t.Errorf("mean = %v, want ~%v", mean, truth)
	}
	wantVar := LaplaceVariance(sens, eps)
	gotVar := sumSq / n
	if math.Abs(gotVar-wantVar)/wantVar > 0.05 {
		t.Errorf("variance = %v, want ~%v", gotVar, wantVar)
	}
}

func TestLaplaceVariance(t *testing.T) {
	if v := LaplaceVariance(1, 1); math.Abs(v-2) > 1e-12 {
		t.Errorf("Var(Lap(1)) = %v, want 2", v)
	}
	if v := LaplaceVariance(2, 0.5); math.Abs(v-32) > 1e-12 {
		t.Errorf("Var(Lap(4)) = %v, want 32", v)
	}
	if !math.IsInf(LaplaceVariance(1, 0), 1) {
		t.Error("zero eps should have infinite variance")
	}
	l := NewLaplace(rng.New(1))
	if l.Variance(1, 1) != LaplaceVariance(1, 1) {
		t.Error("method and function disagree")
	}
}

func TestLaplaceZeroEpsPassesThrough(t *testing.T) {
	l := NewLaplace(rng.New(1))
	if got := l.Add(7, 1, 0); got != 7 {
		t.Errorf("eps=0 Add = %v, want passthrough 7", got)
	}
}

func TestGeometricMechanism(t *testing.T) {
	g := NewGeometric(rng.New(2))
	const n = 100000
	const eps = 1.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Add(10, 1, eps)
		if v != math.Trunc(v) {
			t.Fatalf("geometric mechanism output %v is not integer", v)
		}
		sum += v
		d := v - 10
		sumSq += d * d
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	wantVar := g.Variance(1, eps)
	if gotVar := sumSq / n; math.Abs(gotVar-wantVar)/wantVar > 0.05 {
		t.Errorf("variance = %v, want ~%v", gotVar, wantVar)
	}
	// The geometric mechanism is strictly better than Laplace for counts.
	if g.Variance(1, eps) >= LaplaceVariance(1, eps) {
		t.Error("geometric variance should undercut Laplace at sens=1")
	}
}

func TestZeroNoise(t *testing.T) {
	var z ZeroNoise
	if z.Add(5, 1, 0.1) != 5 {
		t.Error("ZeroNoise must pass values through")
	}
	if z.Variance(1, 0.1) != 0 {
		t.Error("ZeroNoise variance must be 0")
	}
}

func TestExpMechanismConcentratesOnHighScores(t *testing.T) {
	src := rng.New(3)
	scores := []float64{0, -1, -2, -10}
	counts := make([]int, len(scores))
	const n = 20000
	for i := 0; i < n; i++ {
		idx, err := ExpMechanism(src, scores, nil, 4.0, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	// exp(0) : exp(-2) : exp(-4) : exp(-20); outcome 0 dominates.
	if frac := float64(counts[0]) / n; frac < 0.80 {
		t.Errorf("best outcome frequency = %v, want > 0.80", frac)
	}
	if counts[3] > n/100 {
		t.Errorf("worst outcome chosen %d times, want rare", counts[3])
	}
	// Monotone: better scores chosen at least roughly as often.
	if counts[1] < counts[2] {
		t.Errorf("score ordering not respected: %v", counts)
	}
}

func TestExpMechanismUniformAtZeroEps(t *testing.T) {
	src := rng.New(4)
	scores := []float64{0, -5, -10}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		idx, err := ExpMechanism(src, scores, nil, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("eps=0 outcome %d frequency = %v, want ~1/3", i, frac)
		}
	}
}

func TestExpMechanismBaseWeights(t *testing.T) {
	src := rng.New(5)
	scores := []float64{0, 0}
	weight := []float64{3, 1}
	hits := 0
	const n = 40000
	for i := 0; i < n; i++ {
		idx, err := ExpMechanism(src, scores, weight, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("weighted pick rate = %v, want ~0.75", frac)
	}
	// Zero-weight outcomes are never selected.
	for i := 0; i < 1000; i++ {
		idx, err := ExpMechanism(src, []float64{0, 100}, []float64{1, 0}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 1 {
			t.Fatal("zero-weight outcome selected")
		}
	}
}

func TestExpMechanismErrors(t *testing.T) {
	src := rng.New(6)
	if _, err := ExpMechanism(src, nil, nil, 1, 1); err == nil {
		t.Error("empty outcome set should error")
	}
	if _, err := ExpMechanism(src, []float64{1}, []float64{1, 2}, 1, 1); err == nil {
		t.Error("mismatched weights should error")
	}
	if _, err := ExpMechanism(src, []float64{1}, nil, 1, 0); err == nil {
		t.Error("zero sensitivity should error")
	}
	if _, err := ExpMechanism(src, []float64{1}, []float64{-1}, 1, 1); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := ExpMechanism(src, []float64{1, 2}, []float64{0, 0}, 1, 1); err == nil {
		t.Error("all-zero weights should error")
	}
}

func TestExpMechanismNoOverflow(t *testing.T) {
	src := rng.New(7)
	// Huge scores would overflow exp() without the log-space max shift.
	scores := []float64{1e6, 1e6 - 1}
	idx, err := ExpMechanism(src, scores, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 && idx != 1 {
		t.Fatalf("index out of range: %d", idx)
	}
}

func TestSmoothXi(t *testing.T) {
	xi, err := SmoothXi(0.5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 / (4 * (1 + math.Log(2/1e-4)))
	if math.Abs(xi-want) > 1e-12 {
		t.Errorf("xi = %v, want %v", xi, want)
	}
	for _, bad := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}, {-1, 0.5}} {
		if _, err := SmoothXi(bad[0], bad[1]); err == nil {
			t.Errorf("SmoothXi(%v,%v) should error", bad[0], bad[1])
		}
	}
}

func TestAmplification(t *testing.T) {
	// Theorem 7: eps' = 2·p·e^eps.
	got := AmplifiedEpsilon(0.9, 0.01)
	want := 2 * 0.01 * math.Exp(0.9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AmplifiedEpsilon = %v, want %v", got, want)
	}
	// The paper's worked example: sampling at 1% and adding Laplace noise
	// with parameter 0.9 achieves roughly 0.05-DP (the paper rounds to 0.1).
	if got > 0.1 {
		t.Errorf("paper example: amplified eps %v should be ≤ 0.1", got)
	}
	if AmplifiedEpsilon(1, 0) != 0 {
		t.Error("p=0 amplifies to 0")
	}
	// p > 1 is clamped.
	if AmplifiedEpsilon(1, 2) != AmplifiedEpsilon(1, 1) {
		t.Error("p > 1 should clamp")
	}
}

func TestSampledBudget(t *testing.T) {
	// Round trip: budget for target then amplify back.
	eps, err := SampledBudget(0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	back := AmplifiedEpsilon(eps, 0.01)
	if math.Abs(back-0.1) > 1e-12 {
		t.Errorf("round trip = %v, want 0.1", back)
	}
	if _, err := SampledBudget(0.1, 0.2); err == nil {
		t.Error("unachievable target should error (needs eps<=0)")
	}
	if _, err := SampledBudget(0, 0.01); err == nil {
		t.Error("zero target should error")
	}
	if _, err := SampledBudget(0.1, 0); err == nil {
		t.Error("zero rate should error")
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Charge("root count", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge("leaf count", 0.6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Spent()-1.0) > 1e-12 {
		t.Errorf("Spent = %v, want 1.0", a.Spent())
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %v, want 0", a.Remaining())
	}
	if err := a.Charge("over", 0.01); err == nil {
		t.Error("overspend should error")
	}
	if len(a.Charges()) != 2 {
		t.Errorf("Charges len = %d, want 2 (failed charge must not record)", len(a.Charges()))
	}
	if a.Budget() != 1.0 {
		t.Errorf("Budget = %v", a.Budget())
	}
	if err := a.Charge("negative", -0.1); err == nil {
		t.Error("negative charge should error")
	}
}

func TestAccountantFloatTolerance(t *testing.T) {
	// Ten charges of eps/10 must exactly exhaust the budget despite float
	// rounding — this mirrors the uniform budget strategy.
	a := NewAccountant(0.1)
	for i := 0; i < 10; i++ {
		if err := a.Charge("level", 0.1/10); err != nil {
			t.Fatalf("charge %d rejected: %v", i, err)
		}
	}
}

func TestCompose(t *testing.T) {
	if got := Compose(0.1, 0.2, 0.3); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Compose = %v, want 0.6", got)
	}
	if Compose() != 0 {
		t.Error("empty composition should be 0")
	}
}

func TestTightAmplification(t *testing.T) {
	// Tight bound is always at most the input eps and at most Theorem 7.
	for _, eps := range []float64{0.1, 0.5, 1, 2} {
		for _, p := range []float64{0.01, 0.1, 0.5, 1} {
			tight := TightAmplifiedEpsilon(eps, p)
			if tight > eps+1e-12 {
				t.Errorf("tight(%v,%v) = %v exceeds eps", eps, p, tight)
			}
			if loose := AmplifiedEpsilon(eps, p); tight > loose {
				t.Errorf("tight(%v,%v) = %v exceeds Theorem 7 bound %v", eps, p, tight, loose)
			}
		}
	}
	// p = 1 is a no-op.
	if got := TightAmplifiedEpsilon(0.7, 1); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("p=1 amplification = %v, want 0.7", got)
	}
	if TightAmplifiedEpsilon(1, 0) != 0 {
		t.Error("p=0 should amplify to 0")
	}
}

func TestTightSampledBudgetRoundTrip(t *testing.T) {
	// The Figure 4 configuration: target 0.01 per level at 1% sampling gives
	// an inner budget ~0.70 — the paper's "about 50 times larger".
	inner, err := TightSampledBudget(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if inner < 0.6 || inner > 0.8 {
		t.Errorf("inner budget = %v, want ≈ 0.70", inner)
	}
	back := TightAmplifiedEpsilon(inner, 0.01)
	if math.Abs(back-0.01) > 1e-12 {
		t.Errorf("round trip = %v, want 0.01", back)
	}
	if _, err := TightSampledBudget(0, 0.01); err == nil {
		t.Error("zero target should error")
	}
	if _, err := TightSampledBudget(0.1, 0); err == nil {
		t.Error("zero rate should error")
	}
}
