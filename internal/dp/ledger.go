package dp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"sync"
	"time"
)

// Ledger is a durable, per-name privacy-budget journal: the persistence
// layer under Accountant for deployments that publish repeatedly. Every
// Charge is appended to a checksummed journal file and fsync'd BEFORE it
// returns, so a caller that charges-then-publishes can guarantee the spend
// is on disk before the artifact becomes visible — a crash between charge
// and publish leaves the ledger over-counting (an unpublished epoch), never
// under-counting, which is the safe direction for a privacy budget.
//
// The journal is append-only; each record is one line
//
//	PSDL1 <crc64-hex> <json>\n
//
// with the CRC-64/ECMA taken over the JSON bytes. Opening a ledger replays
// the journal into one Accountant per name (all sharing the configured
// per-name budget). A torn or corrupt final line — the shape a crash
// mid-append leaves — is truncated away; corruption before the final line
// means acknowledged spend records are unreadable, and the open fails loudly
// rather than silently under-count.
type Ledger struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	budget float64
	seq    uint64
	// off is the durable end of the journal — the offset every successful
	// append advances and every failed append rolls the file back to, so the
	// on-disk record sequence never gaps.
	off    int64
	accts  map[string]*Accountant
	labels map[string]map[string]bool
	// broken, once set, refuses further charges: a failed append could not
	// be rolled back, so the journal tail is in an unknown state and a
	// further append could write a gapped or duplicate seq that the next
	// open would refuse to replay. Reopening recovers.
	broken error
}

// LedgerRecord is the JSON shape of one journal line.
type LedgerRecord struct {
	Seq   uint64    `json:"seq"`
	Name  string    `json:"name"`
	Label string    `json:"label"`
	Eps   float64   `json:"eps"`
	At    time.Time `json:"at"`
}

const ledgerLinePrefix = "PSDL1 "

var ledgerCRCTable = crc64.MakeTable(crc64.ECMA)

// OpenLedger opens (creating if absent) the journal at path and replays it.
// budget is the per-name ε budget every replayed and future charge is
// admitted against.
func OpenLedger(path string, budget float64) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Ledger{
		path:   path,
		f:      f,
		budget: budget,
		accts:  make(map[string]*Accountant),
		labels: make(map[string]map[string]bool),
	}
	if err := l.replay(); err != nil {
		_ = f.Close() // the replay error wins; nothing was written yet
		return nil, err
	}
	return l, nil
}

// replay reads the whole journal, validates each framed line, applies the
// charges, and truncates a torn tail.
func (l *Ledger) replay() error {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return err
	}
	valid := 0
	for len(data) > valid {
		rest := data[valid:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// No newline: a torn final line (crash mid-append). Truncate.
			break
		}
		line := rest[:nl]
		rec, err := parseLedgerLine(line)
		if err != nil {
			// A framed line that fails its checksum can only be the torn or
			// bit-flipped tail of the last append — unless complete records
			// follow it, which would mean acknowledged spend is unreadable.
			if bytes.IndexByte(rest[nl+1:], '\n') >= 0 {
				return fmt.Errorf("dp: ledger %s corrupt at byte %d (records follow): %v", l.path, valid, err)
			}
			break
		}
		if err := l.apply(rec); err != nil {
			return fmt.Errorf("dp: ledger %s replay: %w", l.path, err)
		}
		valid += nl + 1
	}
	if valid < len(data) {
		if err := l.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("dp: ledger %s: truncating torn tail: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(int64(valid), 0); err != nil {
		return err
	}
	l.off = int64(valid)
	return nil
}

// parseLedgerLine validates one framed journal line.
func parseLedgerLine(line []byte) (LedgerRecord, error) {
	var rec LedgerRecord
	if !bytes.HasPrefix(line, []byte(ledgerLinePrefix)) {
		return rec, fmt.Errorf("bad line prefix")
	}
	rest := line[len(ledgerLinePrefix):]
	sp := bytes.IndexByte(rest, ' ')
	if sp != 16 {
		return rec, fmt.Errorf("bad checksum field")
	}
	var want uint64
	if _, err := fmt.Sscanf(string(rest[:sp]), "%016x", &want); err != nil {
		return rec, fmt.Errorf("bad checksum: %v", err)
	}
	payload := rest[sp+1:]
	if crc64.Checksum(payload, ledgerCRCTable) != want {
		return rec, fmt.Errorf("checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("bad record json: %v", err)
	}
	return rec, nil
}

// apply admits one replayed record into the in-memory state.
func (l *Ledger) apply(rec LedgerRecord) error {
	if rec.Name == "" || rec.Seq != l.seq+1 {
		return fmt.Errorf("record %d out of sequence (want %d) or unnamed", rec.Seq, l.seq+1)
	}
	if err := l.acct(rec.Name).Charge(rec.Label, rec.Eps); err != nil {
		// A recorded spend is a fact; replay must never drop it, even if it
		// exceeds the (possibly re-configured, smaller) budget. Force it in:
		// the accountant refuses only prospective charges, so re-create the
		// over-budget state explicitly.
		a := l.acct(rec.Name)
		a.spent, a.comp = neumaierAdd(a.spent, a.comp, rec.Eps)
		a.items = append(a.items, Charge{Label: rec.Label, Eps: rec.Eps})
	}
	set := l.labels[rec.Name]
	if set == nil {
		set = make(map[string]bool)
		l.labels[rec.Name] = set
	}
	set[rec.Label] = true
	l.seq = rec.Seq
	return nil
}

func (l *Ledger) acct(name string) *Accountant {
	a := l.accts[name]
	if a == nil {
		a = NewAccountant(l.budget)
		l.accts[name] = a
	}
	return a
}

// Charge admits an eps-DP publication of name against its budget and makes
// it durable: the record is appended and fsync'd before Charge returns nil,
// and only then is the in-memory state (seq, accountant, labels) advanced —
// so the open ledger never runs ahead of the disk and a later successful
// charge can never write a gapped seq the next open would refuse to replay.
// On a refused charge nothing is recorded anywhere. On an append or sync
// FAILURE the journal tail is rolled back to the pre-call offset (the bytes
// may or may not have reached the disk; truncating restores a known state),
// the charge is not counted, and the error tells the caller to abort the
// publication. If even the rollback fails the ledger latches a broken state
// that refuses every further charge until a reopen replays the disk — the
// invariant either way is that the durable ledger never under-counts the ε
// of anything published.
func (l *Ledger) Charge(name, label string, eps float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("dp: ledger is offline after an unrecovered append failure (reopen to recover): %w", l.broken)
	}
	a := l.acct(name)
	if !a.CanCharge(eps) {
		// Refused: Charge on the accountant reports the detailed reason and
		// records nothing.
		return a.Charge(label, eps)
	}
	rec := LedgerRecord{Seq: l.seq + 1, Name: name, Label: label, Eps: eps, At: time.Now().UTC()} //lint:allow determinism -- ledger timestamps are audit metadata on the durable journal, never release bytes
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dp: ledger: encoding record: %w", err)
	}
	line := fmt.Sprintf("%s%016x %s\n", ledgerLinePrefix, crc64.Checksum(payload, ledgerCRCTable), payload)
	if _, err := l.f.WriteString(line); err != nil {
		return l.rollbackTail(fmt.Errorf("dp: ledger append failed (nothing charged, abort the publication): %w", err))
	}
	if err := l.f.Sync(); err != nil {
		return l.rollbackTail(fmt.Errorf("dp: ledger sync failed (nothing charged, abort the publication): %w", err))
	}
	l.off += int64(len(line))
	l.seq = rec.Seq
	if err := a.Charge(label, eps); err != nil {
		// Unreachable: CanCharge admitted the same eps under the same lock.
		return err
	}
	set := l.labels[name]
	if set == nil {
		set = make(map[string]bool)
		l.labels[name] = set
	}
	set[label] = true
	return nil
}

// rollbackTail restores the journal to the last durable record boundary
// after a failed append: truncate back to off, make the truncation durable,
// and reposition the write offset. If any of that fails the tail is in an
// unknown state and the ledger latches broken — a further append could
// produce a gapped or duplicate seq, which the next open would (rightly)
// refuse to replay.
func (l *Ledger) rollbackTail(cause error) error {
	if err := l.f.Truncate(l.off); err != nil {
		l.broken = fmt.Errorf("%w (and tail rollback failed: %v)", cause, err)
		return l.broken
	}
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("%w (and tail rollback sync failed: %v)", cause, err)
		return l.broken
	}
	if _, err := l.f.Seek(l.off, 0); err != nil {
		l.broken = fmt.Errorf("%w (and seek after rollback failed: %v)", cause, err)
		return l.broken
	}
	return cause
}

// CanCharge reports whether a Charge of eps for name would be admitted,
// without recording anything — the publisher's pre-flight check, so a
// budget-exhausted refusal costs no journal growth.
func (l *Ledger) CanCharge(name string, eps float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acct(name).CanCharge(eps)
}

// Charged reports whether a charge with the given label was already
// recorded for name — the recovery-idempotency lookup: a crashed publisher
// that already charged its epoch must complete the publication without
// charging again.
func (l *Ledger) Charged(name, label string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.labels[name][label]
}

// Spent returns the total ε recorded for name.
func (l *Ledger) Spent(name string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a := l.accts[name]; a != nil {
		return a.Spent()
	}
	return 0
}

// Remaining returns name's unspent budget (never negative).
func (l *Ledger) Remaining(name string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a := l.accts[name]; a != nil {
		return a.Remaining()
	}
	return l.budget
}

// Budget returns the per-name budget.
func (l *Ledger) Budget() float64 { return l.budget }

// Charges returns the recorded charges for name, in order.
func (l *Ledger) Charges(name string) []Charge {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a := l.accts[name]; a != nil {
		return a.Charges()
	}
	return nil
}

// Close releases the journal file handle.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
