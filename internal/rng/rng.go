// Package rng is the randomness substrate for the library's differential
// privacy mechanisms. It wraps math/rand with the distributions the paper
// needs — Laplace, exponential, two-sided geometric, Bernoulli — behind a
// small Source type that is explicitly seeded so every experiment is
// reproducible.
//
// Nothing in this package is cryptographically secure; for an actual privacy
// deployment the uniform source should be replaced with crypto/rand. The
// paper's experiments (and ours) measure utility, for which a seeded PRNG is
// both sufficient and preferable.
package rng

import (
	"math"
	"math/rand"
)

// Source produces random variates for the DP mechanisms. It is not safe for
// concurrent use; create one Source per goroutine (see Split).
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new, independent Source from s. Each call advances s, so
// repeated splits yield distinct streams. Use it to hand child components
// their own deterministic randomness.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// Uniform returns a uniform variate in [0, 1).
func (s *Source) Uniform() float64 { return s.r.Float64() }

// UniformIn returns a uniform variate in [lo, hi).
func (s *Source) UniformIn(lo, hi float64) float64 {
	return lo + s.r.Float64()*(hi-lo)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Laplace returns a variate from the Laplace distribution with mean 0 and
// scale b (density (1/2b)·exp(-|x|/b)). Its variance is 2b².
//
// A scale of 0 returns 0 (degenerate distribution); this is what lets a
// "no-noise" configuration share the same code path. A negative scale panics.
func (s *Source) Laplace(b float64) float64 {
	switch {
	case b == 0:
		return 0
	case b < 0:
		panic("rng: negative Laplace scale")
	}
	// Inverse CDF on u ∈ (-1/2, 1/2): x = -b·sgn(u)·ln(1-2|u|).
	u := s.r.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// Exponential returns a variate from the exponential distribution with rate
// lambda (mean 1/lambda). It panics if lambda <= 0.
func (s *Source) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: non-positive exponential rate")
	}
	return s.r.ExpFloat64() / lambda
}

// Gaussian returns a variate from N(mean, stddev²).
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// TwoSidedGeometric returns a variate from the two-sided geometric
// distribution with parameter alpha ∈ (0, 1):
//
//	Pr[X = k] = (1-alpha)/(1+alpha) · alpha^|k|,  k ∈ ℤ.
//
// With alpha = exp(-ε) this is the geometric mechanism of Ghosh, Roughgarden
// and Sundararajan [10], the utility-optimal integer-valued ε-DP noise for
// counts. It panics unless 0 < alpha < 1.
func (s *Source) TwoSidedGeometric(alpha float64) int64 {
	if alpha <= 0 || alpha >= 1 {
		panic("rng: two-sided geometric parameter must be in (0,1)")
	}
	// Sample magnitude |X| and a sign; |X| = 0 with prob (1-alpha)/(1+alpha),
	// otherwise |X| ~ Geometric(1-alpha) over {1, 2, ...} split evenly by sign.
	u := s.r.Float64()
	p0 := (1 - alpha) / (1 + alpha)
	if u < p0 {
		return 0
	}
	// Remaining mass is split evenly between the positive and negative tails,
	// each tail k = 1, 2, ... carrying weight p0·alpha^k.
	mag := int64(1) + int64(math.Floor(s.r.ExpFloat64()/(-math.Log(alpha))))
	if s.r.Float64() < 0.5 {
		return -mag
	}
	return mag
}

// Shuffle randomly permutes the first n elements using swap, in the manner
// of rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	s.r.Shuffle(n, swap)
}

// SampleBernoulli returns the indices of a Bernoulli(p) subsample of
// {0, ..., n-1}. It is the sampling primitive behind Theorem 7 of the paper
// (privacy amplification by sampling).
func (s *Source) SampleBernoulli(n int, p float64) []int {
	if p >= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	var idx []int
	if p <= 0 {
		return idx
	}
	idx = make([]int, 0, int(float64(n)*p*1.2)+8)
	for i := 0; i < n; i++ {
		if s.r.Float64() < p {
			idx = append(idx, i)
		}
	}
	return idx
}
