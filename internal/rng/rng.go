// Package rng is the randomness substrate for the library's differential
// privacy mechanisms. It provides the distributions the paper needs —
// Laplace, exponential, two-sided geometric, Bernoulli — behind a small
// Source type that is explicitly seeded so every experiment is reproducible.
//
// Source is a counter-based splitmix64 generator (a Weyl sequence pushed
// through an avalanching mixer, as in Java's SplittableRandom). Two design
// points matter for this library:
//
//   - State is two machine words and seeding is a handful of multiplies, so
//     a fresh stream per tree node costs nothing. At(seed, stream, salt)
//     derives the stream deterministically from its coordinates alone,
//     which is what makes parallel tree builds byte-identical to sequential
//     ones: node randomness depends on the node's index, never on the order
//     goroutines reach it.
//   - Every distribution is implemented directly on the raw generator
//     (inverse CDF or rejection), with no hidden shared state, so a Source
//     value can live on the stack of a worker goroutine.
//
// Nothing in this package is cryptographically secure; for an actual privacy
// deployment the uniform source should be replaced with crypto/rand. The
// paper's experiments (and ours) measure utility, for which a seeded PRNG is
// both sufficient and preferable.
package rng

import (
	"math"
	"math/bits"
)

// Source produces random variates for the DP mechanisms. It is not safe for
// concurrent use; create one Source per goroutine (see Split and At).
type Source struct {
	state uint64
	gamma uint64 // odd Weyl increment; distinct gammas give distinct streams
}

// goldenGamma is 2^64/φ rounded to odd, the canonical splitmix64 increment.
const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output function (Stafford variant 13).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mixGamma turns an arbitrary word into a usable Weyl increment: odd, and
// rejected toward better bit mixing when its bit transitions are too regular
// (the SplittableRandom heuristic).
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 33)) | 1
	if bits.OnesCount64(z^(z>>1)) < 24 {
		z ^= 0xaaaaaaaaaaaaaaaa
	}
	return z
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	s := At(seed, 0, 0)
	return &s
}

// At returns the Source for stream (stream, salt) of the given base seed,
// as a value so hot paths can derive per-node streams without allocation.
// The derivation is pure: any call order, any goroutine, same stream.
// Conventionally stream indexes the consumer (a tree node) and salt the
// purpose (median vs count noise), so independent subsystems sharing one
// user-facing seed never collide.
func At(seed int64, stream, salt uint64) Source {
	h := mix64(uint64(seed) + goldenGamma)
	h = mix64(h + stream + 0x3c6ef372fe94f82b) // distinct odd round constants
	h = mix64(h + salt + 0xdaa66d2c7ddf743f)   // keep the three inputs separated
	return Source{state: h, gamma: mixGamma(h + goldenGamma)}
}

// Split derives a new, independent Source from s. Each call advances s, so
// repeated splits yield distinct streams. Use it to hand child components
// their own deterministic randomness.
func (s *Source) Split() *Source {
	c := Source{state: mix64(s.Uint64()), gamma: mixGamma(s.Uint64())}
	return &c
}

// Uint64 returns a uniform 64-bit word, advancing the stream.
func (s *Source) Uint64() uint64 {
	s.state += s.gamma
	return mix64(s.state)
}

// Uniform returns a uniform variate in [0, 1).
func (s *Source) Uniform() float64 { return s.Float64() }

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// UniformIn returns a uniform variate in [lo, hi).
func (s *Source) UniformIn(lo, hi float64) float64 {
	return lo + s.Float64()*(hi-lo)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// (Lemire's multiply-shift rejection keeps it bias-free.)
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative 63-bit integer.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Laplace returns a variate from the Laplace distribution with mean 0 and
// scale b (density (1/2b)·exp(-|x|/b)). Its variance is 2b².
//
// A scale of 0 returns 0 (degenerate distribution); this is what lets a
// "no-noise" configuration share the same code path. A negative scale panics.
func (s *Source) Laplace(b float64) float64 {
	switch {
	case b == 0:
		return 0
	case b < 0:
		panic("rng: negative Laplace scale")
	}
	// Inverse CDF on u ∈ (-1/2, 1/2): x = -b·sgn(u)·ln(1-2|u|).
	u := s.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// Exponential returns a variate from the exponential distribution with rate
// lambda (mean 1/lambda). It panics if lambda <= 0.
func (s *Source) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: non-positive exponential rate")
	}
	// Inverse CDF; Float64 < 1 keeps the log argument strictly positive.
	return -math.Log(1-s.Float64()) / lambda
}

// Gaussian returns a variate from N(mean, stddev²) via Box–Muller. The
// second variate of the pair is discarded so a Source carries no state
// beyond its generator words.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	u1 := 1 - s.Float64() // (0, 1]: keeps the log finite
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	return mean + stddev*r*math.Cos(2*math.Pi*u2)
}

// TwoSidedGeometric returns a variate from the two-sided geometric
// distribution with parameter alpha ∈ (0, 1):
//
//	Pr[X = k] = (1-alpha)/(1+alpha) · alpha^|k|,  k ∈ ℤ.
//
// With alpha = exp(-ε) this is the geometric mechanism of Ghosh, Roughgarden
// and Sundararajan [10], the utility-optimal integer-valued ε-DP noise for
// counts. It panics unless 0 < alpha < 1.
func (s *Source) TwoSidedGeometric(alpha float64) int64 {
	if alpha <= 0 || alpha >= 1 {
		panic("rng: two-sided geometric parameter must be in (0,1)")
	}
	// Sample magnitude |X| and a sign; |X| = 0 with prob (1-alpha)/(1+alpha),
	// otherwise |X| ~ Geometric(1-alpha) over {1, 2, ...} split evenly by sign.
	u := s.Float64()
	p0 := (1 - alpha) / (1 + alpha)
	if u < p0 {
		return 0
	}
	// Remaining mass is split evenly between the positive and negative tails,
	// each tail k = 1, 2, ... carrying weight p0·alpha^k.
	mag := int64(1) + int64(math.Floor(s.Exponential(1)/(-math.Log(alpha))))
	if s.Float64() < 0.5 {
		return -mag
	}
	return mag
}

// Shuffle randomly permutes the first n elements using swap (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// SampleBernoulli returns the indices of a Bernoulli(p) subsample of
// {0, ..., n-1}. It is the sampling primitive behind Theorem 7 of the paper
// (privacy amplification by sampling).
func (s *Source) SampleBernoulli(n int, p float64) []int {
	var idx []int
	if p > 0 && p < 1 {
		idx = make([]int, 0, int(float64(n)*p*1.2)+8)
	}
	return s.SampleBernoulliInto(idx, n, p)
}

// SampleBernoulliInto is SampleBernoulli appending into dst[:0], so hot
// paths can reuse one index buffer across calls.
func (s *Source) SampleBernoulliInto(dst []int, n int, p float64) []int {
	dst = dst[:0]
	if p <= 0 {
		return dst
	}
	if p >= 1 {
		for i := 0; i < n; i++ {
			dst = append(dst, i)
		}
		return dst
	}
	for i := 0; i < n; i++ {
		if s.Float64() < p {
			dst = append(dst, i)
		}
	}
	return dst
}
