package rng

import (
	"math"
	"sort"
	"testing"
)

func TestDeterminismBySeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Laplace(1) != b.Laplace(1) {
			t.Fatal("same seed should produce identical streams")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uniform() != c.Uniform() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(7)
	c1 := s.Split()
	c2 := s.Split()
	if c1.Uniform() == c2.Uniform() && c1.Uniform() == c2.Uniform() {
		t.Error("split sources appear correlated")
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(1)
	const n = 200000
	const b = 2.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Laplace(b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	want := 2 * b * b
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", variance, want)
	}
}

func TestLaplaceMedianAndSymmetry(t *testing.T) {
	s := New(2)
	const n = 100000
	pos := 0
	for i := 0; i < n; i++ {
		if s.Laplace(1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("positive fraction = %v, want ~0.5", frac)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	s := New(3)
	for i := 0; i < 10; i++ {
		if s.Laplace(0) != 0 {
			t.Fatal("Laplace(0) must be exactly 0")
		}
	}
}

func TestLaplaceNegativeScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative scale")
		}
	}()
	New(1).Laplace(-1)
}

func TestLaplaceTailQuantile(t *testing.T) {
	// Pr[|X| > b·ln(1/q)] = q for Laplace(b).
	s := New(4)
	const n = 100000
	const b = 1.0
	thr := b * math.Log(1/0.05) // 5% two-sided tail
	exceed := 0
	for i := 0; i < n; i++ {
		if math.Abs(s.Laplace(b)) > thr {
			exceed++
		}
	}
	frac := float64(exceed) / n
	if math.Abs(frac-0.05) > 0.01 {
		t.Errorf("tail fraction = %v, want ~0.05", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	const n = 100000
	const lambda = 3.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda)/(1/lambda) > 0.05 {
		t.Errorf("Exponential mean = %v, want ~%v", mean, 1/lambda)
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(6)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Gaussian(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Gaussian mean = %v, want ~3", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("Gaussian sd = %v, want ~2", sd)
	}
}

func TestTwoSidedGeometric(t *testing.T) {
	s := New(7)
	alpha := math.Exp(-0.5) // geometric mechanism at eps = 0.5
	const n = 200000
	var sum float64
	zero := 0
	for i := 0; i < n; i++ {
		k := s.TwoSidedGeometric(alpha)
		sum += float64(k)
		if k == 0 {
			zero++
		}
	}
	mean := sum / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("two-sided geometric mean = %v, want ~0", mean)
	}
	p0 := (1 - alpha) / (1 + alpha)
	frac := float64(zero) / n
	if math.Abs(frac-p0) > 0.01 {
		t.Errorf("Pr[X=0] = %v, want ~%v", frac, p0)
	}
}

func TestTwoSidedGeometricPanics(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v should panic", bad)
				}
			}()
			New(1).TwoSidedGeometric(bad)
		}()
	}
}

func TestBernoulli(t *testing.T) {
	s := New(8)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", frac)
	}
}

func TestUniformIn(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		v := s.UniformIn(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("UniformIn out of range: %v", v)
		}
	}
}

func TestSampleBernoulli(t *testing.T) {
	s := New(10)
	const n = 50000
	idx := s.SampleBernoulli(n, 0.1)
	frac := float64(len(idx)) / n
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("sample rate = %v, want ~0.1", frac)
	}
	if !sort.IntsAreSorted(idx) {
		t.Error("sample indices should be emitted in order")
	}
	for _, i := range idx {
		if i < 0 || i >= n {
			t.Fatalf("index out of range: %d", i)
		}
	}
	if got := s.SampleBernoulli(100, 0); len(got) != 0 {
		t.Error("p=0 should sample nothing")
	}
	if got := s.SampleBernoulli(100, 1); len(got) != 100 {
		t.Error("p=1 should sample everything")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(11)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", vals)
	}
}
