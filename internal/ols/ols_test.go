package ols

import (
	"math"
	"math/rand"
	"testing"

	"psd/internal/geom"
	"psd/internal/tree"
)

// newTestTree builds a complete tree with trivial geometry (geometry is
// irrelevant to OLS) and the given noisy counts by level.
func newTestTree(t *testing.T, fanout, height int) *tree.Tree {
	t.Helper()
	tr, err := tree.NewComplete(fanout, height)
	if err != nil {
		t.Fatal(err)
	}
	tr.Nodes[0].Rect = geom.NewRect(0, 0, 1, 1)
	return tr
}

// setNoisy marks all nodes published with the given counts.
func setNoisy(tr *tree.Tree, y []float64) {
	for i := range tr.Nodes {
		tr.Nodes[i].Noisy = y[i]
		tr.Nodes[i].Published = true
	}
}

// bruteForceOLS solves the constrained weighted least-squares problem
// directly: parameterize by leaf values x, β = Hx, minimize
// (Y−Hx)ᵀ W (Y−Hx) via the normal equations HᵀWH x = HᵀW Y solved by
// Gaussian elimination. Exponential in nothing, but O(leaves³) — fine for
// the small trees used in tests.
func bruteForceOLS(tr *tree.Tree, epsByLevel []float64) []float64 {
	m := tr.Len()
	n := tr.NumLeaves()
	h := tr.Height()

	// H[v][leaf] = 1 iff leaf is under v.
	H := make([][]float64, m)
	for v := 0; v < m; v++ {
		H[v] = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		v := tr.LeafIndex(k)
		for v >= 0 {
			H[v][k] = 1
			v = tr.Parent(v)
		}
	}
	w := make([]float64, m)
	for v := 0; v < m; v++ {
		e := epsByLevel[h-tr.Depth(v)]
		if tr.Nodes[v].Published {
			w[v] = e * e
		}
	}
	// A = HᵀWH (n×n), b = HᵀWY.
	A := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		A[i] = make([]float64, n)
	}
	for v := 0; v < m; v++ {
		if w[v] == 0 {
			continue
		}
		y := tr.Nodes[v].Noisy
		for i := 0; i < n; i++ {
			if H[v][i] == 0 {
				continue
			}
			b[i] += w[v] * y
			for j := 0; j < n; j++ {
				if H[v][j] != 0 {
					A[i][j] += w[v]
				}
			}
		}
	}
	x := solveGauss(A, b)
	beta := make([]float64, m)
	for v := 0; v < m; v++ {
		for k := 0; k < n; k++ {
			if H[v][k] != 0 {
				beta[v] += x[k]
			}
		}
	}
	return beta
}

// solveGauss solves Ax = b with partial pivoting, destroying its inputs.
func solveGauss(A [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			factor := A[r][col] / A[col][col]
			for c := col; c < n; c++ {
				A[r][c] -= factor * A[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= A[r][c] * x[c]
		}
		x[r] = sum / A[r][r]
	}
	return x
}

// Section 5's worked example: a root with four children, uniform ε/2 per
// level. The OLS is β_a = (4·Y_a + Y_b + Y_c + Y_d + Y_e)/5.
func TestWorkedExampleUniform(t *testing.T) {
	tr := newTestTree(t, 4, 1)
	setNoisy(tr, []float64{10, 1, 2, 3, 4})
	eps := []float64{0.5, 0.5} // levels: leaf, root
	if err := Estimate(tr, eps); err != nil {
		t.Fatal(err)
	}
	want := (4*10.0 + 1 + 2 + 3 + 4) / 5.0
	if got := tr.Nodes[0].Est; math.Abs(got-want) > 1e-9 {
		t.Errorf("β_root = %v, want %v", got, want)
	}
	// Consistency.
	var sum float64
	for j := 1; j <= 4; j++ {
		sum += tr.Nodes[j].Est
	}
	if math.Abs(sum-tr.Nodes[0].Est) > 1e-9 {
		t.Errorf("children sum %v != root %v", sum, tr.Nodes[0].Est)
	}
}

// Section 5's non-uniform generalization:
// β_a = (4ε₁²·Y_a + ε₀²·ΣY_children)/(4ε₁² + ε₀²).
func TestWorkedExampleNonUniform(t *testing.T) {
	tr := newTestTree(t, 4, 1)
	y := []float64{7, 1, 0, 2, 5}
	setNoisy(tr, y)
	eps1, eps0 := 0.2, 0.8
	if err := Estimate(tr, []float64{eps0, eps1}); err != nil {
		t.Fatal(err)
	}
	den := 4*eps1*eps1 + eps0*eps0
	want := (4*eps1*eps1*y[0] + eps0*eps0*(y[1]+y[2]+y[3]+y[4])) / den
	if got := tr.Nodes[0].Est; math.Abs(got-want) > 1e-9 {
		t.Errorf("β_root = %v, want %v", got, want)
	}
}

func TestRootVarianceFormula(t *testing.T) {
	// Var(β_a) = 8/(4ε₁²+ε₀²) < 2/ε₁² = Var(Y_a) per Section 5.
	v := RootVariance(4, 0.25, 0.25)
	want := 8.0 / (4*0.25*0.25 + 0.25*0.25)
	if math.Abs(v-want) > 1e-12 {
		t.Errorf("RootVariance = %v, want %v", v, want)
	}
	if v >= 2/(0.25*0.25) {
		t.Error("OLS root variance should beat the raw count variance")
	}
}

func TestMatchesBruteForceRandomTrees(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	configs := []struct{ f, h int }{
		{2, 1}, {2, 2}, {2, 3}, {3, 2}, {4, 1}, {4, 2},
	}
	for _, cfg := range configs {
		for trial := 0; trial < 5; trial++ {
			tr := newTestTree(t, cfg.f, cfg.h)
			y := make([]float64, tr.Len())
			for i := range y {
				y[i] = rnd.NormFloat64() * 10
			}
			setNoisy(tr, y)
			eps := make([]float64, cfg.h+1)
			for i := range eps {
				eps[i] = 0.05 + rnd.Float64()
			}
			if err := Estimate(tr, eps); err != nil {
				t.Fatal(err)
			}
			want := bruteForceOLS(tr, eps)
			for v := 0; v < tr.Len(); v++ {
				if math.Abs(tr.Nodes[v].Est-want[v]) > 1e-6*(1+math.Abs(want[v])) {
					t.Fatalf("f=%d h=%d trial %d node %d: Est %v, brute force %v",
						cfg.f, cfg.h, trial, v, tr.Nodes[v].Est, want[v])
				}
			}
		}
	}
}

func TestMatchesBruteForceWithZeroLevels(t *testing.T) {
	// A middle level with ε = 0 (unpublished counts) — the skip-level
	// strategy of Section 4.2. Unpublished nodes must carry no weight.
	rnd := rand.New(rand.NewSource(7))
	tr := newTestTree(t, 2, 3)
	y := make([]float64, tr.Len())
	for i := range y {
		y[i] = rnd.NormFloat64() * 5
	}
	setNoisy(tr, y)
	// Mark level-1 nodes (depth 2) unpublished with garbage noisy values to
	// prove they are ignored.
	lo, hi := tr.DepthRange(2)
	for i := lo; i < hi; i++ {
		tr.Nodes[i].Published = false
		tr.Nodes[i].Noisy = 1e12
	}
	eps := []float64{0.7, 0, 0.3, 0.5}
	if err := Estimate(tr, eps); err != nil {
		t.Fatal(err)
	}
	want := bruteForceOLS(tr, eps)
	for v := 0; v < tr.Len(); v++ {
		if math.Abs(tr.Nodes[v].Est-want[v]) > 1e-6*(1+math.Abs(want[v])) {
			t.Fatalf("node %d: Est %v, brute force %v", v, tr.Nodes[v].Est, want[v])
		}
	}
}

func TestLeafOnlyBudgetIsIdentityOnLeaves(t *testing.T) {
	// With observations only at the leaves, the OLS fixes β_leaf = Y_leaf
	// and aggregates upward.
	tr := newTestTree(t, 4, 2)
	rnd := rand.New(rand.NewSource(9))
	for i := range tr.Nodes {
		tr.Nodes[i].Published = false
	}
	var leafSum float64
	for k := 0; k < tr.NumLeaves(); k++ {
		i := tr.LeafIndex(k)
		tr.Nodes[i].Noisy = rnd.Float64() * 10
		tr.Nodes[i].Published = true
		leafSum += tr.Nodes[i].Noisy
	}
	if err := Estimate(tr, []float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < tr.NumLeaves(); k++ {
		i := tr.LeafIndex(k)
		if math.Abs(tr.Nodes[i].Est-tr.Nodes[i].Noisy) > 1e-9 {
			t.Fatalf("leaf %d: Est %v != Noisy %v", k, tr.Nodes[i].Est, tr.Nodes[i].Noisy)
		}
	}
	if math.Abs(tr.Nodes[0].Est-leafSum) > 1e-9 {
		t.Errorf("root Est %v != leaf sum %v", tr.Nodes[0].Est, leafSum)
	}
}

func TestConsistentInputIsFixedPoint(t *testing.T) {
	// If the noisy counts are already consistent (e.g. zero noise), the OLS
	// must return them unchanged: the objective reaches zero there.
	tr := newTestTree(t, 4, 3)
	for k := 0; k < tr.NumLeaves(); k++ {
		tr.Nodes[tr.LeafIndex(k)].True = float64(k % 5)
	}
	tr.AggregateTrueCounts()
	for i := range tr.Nodes {
		tr.Nodes[i].Noisy = tr.Nodes[i].True
		tr.Nodes[i].Published = true
	}
	geo := make([]float64, 4)
	for i := range geo {
		geo[i] = 0.1 * math.Pow(1.26, float64(3-i))
	}
	if err := Estimate(tr, geo); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Nodes {
		if math.Abs(tr.Nodes[i].Est-tr.Nodes[i].True) > 1e-9 {
			t.Fatalf("node %d: fixed point violated: Est %v, want %v",
				i, tr.Nodes[i].Est, tr.Nodes[i].True)
		}
	}
}

func TestConsistencyInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	tr := newTestTree(t, 4, 4)
	y := make([]float64, tr.Len())
	for i := range y {
		y[i] = rnd.NormFloat64() * 100
	}
	setNoisy(tr, y)
	if err := Estimate(tr, []float64{0.4, 0.3, 0.2, 0.05, 0.05}); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < tr.Height(); d++ {
		lo, hi := tr.DepthRange(d)
		for i := lo; i < hi; i++ {
			var sum float64
			cs := tr.ChildStart(i)
			for j := 0; j < tr.Fanout(); j++ {
				sum += tr.Nodes[cs+j].Est
			}
			if math.Abs(sum-tr.Nodes[i].Est) > 1e-6*(1+math.Abs(sum)) {
				t.Fatalf("node %d: children sum %v != Est %v", i, sum, tr.Nodes[i].Est)
			}
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	tr := newTestTree(t, 2, 2)
	setNoisy(tr, make([]float64, tr.Len()))
	if err := Estimate(tr, []float64{1, 1}); err == nil {
		t.Error("wrong budget length should error")
	}
	if err := Estimate(tr, []float64{0, 1, 1}); err == nil {
		t.Error("zero leaf budget should error (singular)")
	}
	if err := Estimate(tr, []float64{1, -1, 1}); err == nil {
		t.Error("negative budget should error")
	}
	if err := Estimate(tr, []float64{1, math.NaN(), 1}); err == nil {
		t.Error("NaN budget should error")
	}
}

func TestCopyNoisyToEst(t *testing.T) {
	tr := newTestTree(t, 2, 1)
	setNoisy(tr, []float64{5, 2, 3})
	tr.Nodes[2].Published = false
	CopyNoisyToEst(tr)
	if tr.Nodes[0].Est != 5 || tr.Nodes[1].Est != 2 {
		t.Error("published estimates should equal noisy counts")
	}
	if tr.Nodes[2].Est != 0 {
		t.Error("unpublished estimate should reset to 0")
	}
}

// Statistical properties: the OLS root estimate is unbiased and has lower
// variance than the raw noisy root count (Section 5's claim).
func TestVarianceReduction(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	const trueRoot = 1000.0
	const trials = 3000
	lap := func(b float64) float64 {
		u := rnd.Float64() - 0.5
		if u < 0 {
			return b * math.Log(1+2*u)
		}
		return -b * math.Log(1-2*u)
	}
	eps := []float64{0.5, 0.5}
	var sumRaw, sumRawSq, sumOLS, sumOLSSq float64
	for trial := 0; trial < trials; trial++ {
		tr, _ := tree.NewComplete(4, 1)
		// True distribution: root 1000 split evenly.
		tr.Nodes[0].Noisy = trueRoot + lap(1/eps[1])
		for j := 1; j <= 4; j++ {
			tr.Nodes[j].Noisy = trueRoot/4 + lap(1/eps[0])
		}
		for i := range tr.Nodes {
			tr.Nodes[i].Published = true
		}
		raw := tr.Nodes[0].Noisy
		if err := Estimate(tr, eps); err != nil {
			t.Fatal(err)
		}
		est := tr.Nodes[0].Est
		sumRaw += raw
		sumRawSq += (raw - trueRoot) * (raw - trueRoot)
		sumOLS += est
		sumOLSSq += (est - trueRoot) * (est - trueRoot)
	}
	meanOLS := sumOLS / trials
	if math.Abs(meanOLS-trueRoot) > 2 {
		t.Errorf("OLS mean = %v, want ~%v (unbiased)", meanOLS, trueRoot)
	}
	varRaw := sumRawSq / trials
	varOLS := sumOLSSq / trials
	if varOLS >= varRaw {
		t.Errorf("OLS variance %v should beat raw %v", varOLS, varRaw)
	}
	// Section 5: Var(β_a) = 8/(4ε₁²+ε₀²) = (4/5)·Var(Y_a) at uniform ε.
	wantRatio := RootVariance(4, eps[1], eps[0]) / (2 / (eps[1] * eps[1]))
	gotRatio := varOLS / varRaw
	if math.Abs(gotRatio-wantRatio) > 0.08 {
		t.Errorf("variance ratio = %v, want ≈ %v", gotRatio, wantRatio)
	}
}

func BenchmarkEstimateQuadH8(b *testing.B) {
	tr, err := tree.NewComplete(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := range tr.Nodes {
		tr.Nodes[i].Noisy = float64(i % 97)
		tr.Nodes[i].Published = true
	}
	eps := make([]float64, 9)
	for i := range eps {
		eps[i] = 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Estimate(tr, eps); err != nil {
			b.Fatal(err)
		}
	}
}
