package ols

import (
	"testing"

	"psd/internal/rng"
	"psd/internal/tree"
)

// The chunked parallel sweeps must be bit-identical to the sequential
// three-phase algorithm: same nodes, same arithmetic, only the schedule
// differs.
func TestEstimateWorkersBitIdentical(t *testing.T) {
	const h = 6
	build := func() *tree.Tree {
		tr, err := tree.NewComplete(4, h)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(17)
		for i := range tr.Nodes {
			tr.Nodes[i].Noisy = src.Laplace(3) + float64(i%7)
			tr.Nodes[i].Published = i%5 != 0
		}
		return tr
	}
	eps := make([]float64, h+1)
	for i := range eps {
		eps[i] = 0.1 * float64(i+1)
	}

	ref := build()
	if err := EstimateWorkers(ref, eps, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got := build()
		if err := EstimateWorkers(got, eps, workers); err != nil {
			t.Fatal(err)
		}
		for i := range got.Nodes {
			if got.Nodes[i].Est != ref.Nodes[i].Est {
				t.Fatalf("workers=%d node %d: Est %v != %v",
					workers, i, got.Nodes[i].Est, ref.Nodes[i].Est)
			}
		}
	}

	seq := build()
	CopyNoisyToEstWorkers(seq, 1)
	parr := build()
	CopyNoisyToEstWorkers(parr, 8)
	for i := range seq.Nodes {
		if seq.Nodes[i].Est != parr.Nodes[i].Est {
			t.Fatalf("CopyNoisyToEst workers mismatch at node %d", i)
		}
	}
}
