// Package ols implements the post-processing of Section 5 of the paper: the
// ordinary least squares (OLS) re-estimation of all node counts from the
// released noisy counts.
//
// Given a complete tree whose level-i counts were perturbed with Laplace
// parameter ε_i, the OLS estimator β is the unique vector that
//
//   - is consistent: β_v = Σ_{u ∈ child(v)} β_u for every internal v, and
//   - minimizes Σ_v ε_{h(v)}² (Y_v − β_v)².
//
// Among all linear unbiased estimators derived from the noisy counts Y, β
// achieves minimum variance for every range query, and since it only
// post-processes the differentially private output it costs no additional
// privacy budget.
//
// Estimate implements the three-phase linear-time algorithm of Lemma 4 /
// Theorem 5, generalized (as in the paper) to arbitrary non-uniform
// per-level ε_i, including levels with ε_i = 0 that release no counts (the
// "conserve budget by skipping levels" strategies of Section 4.2): such
// levels simply carry zero weight in the normal equations.
package ols

import (
	"fmt"
	"math"

	"psd/internal/par"
	"psd/internal/tree"
)

// Estimate computes the OLS estimator over t's noisy counts and stores the
// result in each node's Est field. epsByLevel[i] is the Laplace budget of
// level i (leaves are level 0); it must have h+1 entries and a strictly
// positive leaf entry — with no information at the leaves the system is
// singular (E_0 = 0) and no consistent estimate exists.
//
// Unpublished nodes (Published == false) contribute nothing regardless of
// their Noisy field, and receive consistent estimates like everyone else.
// The running time and extra space are O(number of nodes).
func Estimate(t *tree.Tree, epsByLevel []float64) error {
	return EstimateWorkers(t, epsByLevel, 0)
}

// EstimateWorkers is Estimate with an explicit worker bound (0 = one per
// core, 1 = sequential). All three phases are per-level sweeps whose nodes
// depend only on the previous level, so each level chunks across the pool;
// per-node arithmetic is untouched and the result is bit-identical at any
// worker count.
func EstimateWorkers(t *tree.Tree, epsByLevel []float64, workers int) error {
	h := t.Height()
	if len(epsByLevel) != h+1 {
		return fmt.Errorf("ols: %d level budgets for height %d (want %d)", len(epsByLevel), h, h+1)
	}
	eps2 := make([]float64, h+1)
	for i, e := range epsByLevel {
		if e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("ols: invalid ε_%d = %v", i, e)
		}
		eps2[i] = e * e
	}
	if eps2[0] == 0 {
		return fmt.Errorf("ols: leaf level carries no budget; system is singular")
	}

	f := float64(t.Fanout())
	// E_l = Σ_{j=0}^{l} f^j ε_j², and the powers f^l, both precomputed.
	powF := make([]float64, h+1)
	E := make([]float64, h+1)
	fj, acc := 1.0, 0.0
	for j := 0; j <= h; j++ {
		powF[j] = fj
		acc += fj * eps2[j]
		E[j] = acc
		fj *= f
	}

	workers = par.Workers(workers)
	nodes := t.Nodes
	fan := t.Fanout()
	// Parent/child indices come from the level offsets directly (cheaper
	// than tree.Parent's depth scan in these hot loops): the i-th node of
	// depth d has parent pLo + (i-lo)/fan and first child cLo + (i-lo)*fan.

	// Phase I (top-down): α_u = α_par(u) + ε²_{h(u)}·Y_u, so each leaf v ends
	// with Z_v = Σ_{w ∈ anc(v)} ε²_{h(w)}·Y_w.
	z := make([]float64, len(nodes))
	z[0] = eps2[h] * publishedNoisy(&nodes[0])
	for d := 1; d <= h; d++ {
		lo, hi := t.DepthRange(d)
		pLo, _ := t.DepthRange(d - 1)
		level := h - d
		par.For(workers, lo, hi, 2048, func(a, b int) {
			for i := a; i < b; i++ {
				z[i] = z[pLo+(i-lo)/fan] + eps2[level]*publishedNoisy(&nodes[i])
			}
		})
	}

	// Phase II (bottom-up): internal Z_v = Σ_{u ∈ child(v)} Z_u, giving
	// Z_v = Σ_{u ≺ v} Σ_{w ∈ anc(u)} ε²_{h(w)}·Y_w.
	for d := h - 1; d >= 0; d-- {
		lo, hi := t.DepthRange(d)
		cLo, _ := t.DepthRange(d + 1)
		par.For(workers, lo, hi, 2048, func(a, b int) {
			for i := a; i < b; i++ {
				cs := cLo + (i-lo)*fan
				var sum float64
				for j := 0; j < fan; j++ {
					sum += z[cs+j]
				}
				z[i] = sum
			}
		})
	}

	// Phase III (top-down): with F_v = Σ_{w ∈ anc(v)\{v}} β_w·ε²_{h(w)},
	//   β_root = Z_root/E_h,
	//   F_v    = F_par(v) + β_par(v)·ε²_{h(v)+1},
	//   β_v    = (Z_v − f^{h(v)}·F_v) / E_{h(v)}.
	F := make([]float64, len(nodes))
	nodes[0].Est = z[0] / E[h]
	for d := 1; d <= h; d++ {
		lo, hi := t.DepthRange(d)
		pLo, _ := t.DepthRange(d - 1)
		level := h - d
		par.For(workers, lo, hi, 2048, func(a, b int) {
			for i := a; i < b; i++ {
				p := pLo + (i-lo)/fan
				F[i] = F[p] + nodes[p].Est*eps2[level+1]
				nodes[i].Est = (z[i] - powF[level]*F[i]) / E[level]
			}
		})
	}
	return nil
}

func publishedNoisy(n *tree.Node) float64 {
	if !n.Published {
		return 0
	}
	return n.Noisy
}

// CopyNoisyToEst resets every published node's estimate to its raw noisy
// count, and unpublished nodes to 0. It is the "no post-processing"
// configuration (quad-baseline, quad-geo) and the state Estimate expects to
// improve on.
func CopyNoisyToEst(t *tree.Tree) {
	CopyNoisyToEstWorkers(t, 0)
}

// CopyNoisyToEstWorkers is CopyNoisyToEst over a bounded worker pool.
func CopyNoisyToEstWorkers(t *tree.Tree, workers int) {
	par.For(par.Workers(workers), 0, len(t.Nodes), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if t.Nodes[i].Published {
				t.Nodes[i].Est = t.Nodes[i].Noisy
			} else {
				t.Nodes[i].Est = 0
			}
		}
	})
}

// RootVariance returns the variance of the OLS estimate of the root count
// for a two-level tree (root plus f leaves) with root budget eps1 and leaf
// budget eps0 — the worked example of Section 5, Var(β_a) = 8/(4ε_1²+ε_0²)
// for f = 4. Exposed for tests and documentation.
func RootVariance(f int, eps1, eps0 float64) float64 {
	ff := float64(f)
	return 2 * ff / (ff*eps1*eps1 + eps0*eps0)
}
