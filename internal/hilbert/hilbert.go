// Package hilbert implements the two-dimensional Hilbert space-filling curve
// used by the private Hilbert R-tree (Sections 3.2 and 3.3 of the paper,
// following Kamel and Faloutsos [13]).
//
// A curve of order k visits every cell of a 2^k × 2^k grid exactly once.
// Encode maps a grid cell to its position along the curve ("Hilbert value"),
// Decode inverts it, and RangeBounds computes the exact bounding box of all
// cells whose Hilbert value falls in a given index range — the operation the
// private R-tree uses to derive node rectangles without touching the data.
//
// RangeBounds exploits a structural property of the curve: every aligned
// index block [m·4^j, (m+1)·4^j) occupies exactly one aligned 2^j × 2^j
// subsquare. An arbitrary range therefore decomposes into O(log N) aligned
// blocks whose squares are unioned, giving an exact bbox in O(order²) time.
package hilbert

import (
	"fmt"

	"psd/internal/geom"
)

// MaxOrder is the largest supported curve order; 4^31 indices fit in uint64
// with room to spare.
const MaxOrder = 31

// Curve is a Hilbert curve of a fixed order.
type Curve struct {
	order uint
	side  uint32 // 2^order
}

// New returns a curve of the given order (1 ≤ order ≤ MaxOrder).
func New(order uint) (*Curve, error) {
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("hilbert: order %d out of range [1,%d]", order, MaxOrder)
	}
	return &Curve{order: order, side: 1 << order}, nil
}

// Order returns the curve order.
func (c *Curve) Order() uint { return c.order }

// Side returns the grid side length 2^order.
func (c *Curve) Side() uint32 { return c.side }

// NumCells returns the total number of grid cells, 4^order.
func (c *Curve) NumCells() uint64 { return uint64(c.side) * uint64(c.side) }

// Encode returns the Hilbert value of grid cell (x, y). Coordinates outside
// the grid are an error.
func (c *Curve) Encode(x, y uint32) (uint64, error) {
	if x >= c.side || y >= c.side {
		return 0, fmt.Errorf("hilbert: cell (%d,%d) outside %dx%d grid", x, y, c.side, c.side)
	}
	var d uint64
	for s := c.side / 2; s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rotate(s, x, y, rx, ry)
	}
	return d, nil
}

// Decode returns the grid cell at Hilbert value d.
func (c *Curve) Decode(d uint64) (x, y uint32, err error) {
	if d >= c.NumCells() {
		return 0, 0, fmt.Errorf("hilbert: index %d outside curve of %d cells", d, c.NumCells())
	}
	t := d
	for s := uint32(1); s < c.side; s *= 2 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y, nil
}

// rotate applies the quadrant rotation/reflection of the Hilbert recursion.
func rotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// CellBounds returns the integer bounds {minX, minY, maxX, maxY} (inclusive)
// of all grid cells with Hilbert value in [lo, hi]. lo and hi are clamped to
// the curve; it is an error if lo > hi.
func (c *Curve) CellBounds(lo, hi uint64) (minX, minY, maxX, maxY uint32, err error) {
	if lo > hi {
		return 0, 0, 0, 0, fmt.Errorf("hilbert: inverted range [%d,%d]", lo, hi)
	}
	if max := c.NumCells() - 1; hi > max {
		hi = max
	}
	first := true
	for _, b := range alignedBlocks(lo, hi) {
		// An aligned block of 4^j cells starting at b.start occupies the
		// aligned 2^j square containing its first cell.
		x, y, derr := c.Decode(b.start)
		if derr != nil {
			return 0, 0, 0, 0, derr
		}
		mask := (uint32(1) << b.level) - 1
		bx, by := x&^mask, y&^mask
		tx, ty := bx+mask, by+mask
		if first {
			minX, minY, maxX, maxY = bx, by, tx, ty
			first = false
			continue
		}
		if bx < minX {
			minX = bx
		}
		if by < minY {
			minY = by
		}
		if tx > maxX {
			maxX = tx
		}
		if ty > maxY {
			maxY = ty
		}
	}
	return minX, minY, maxX, maxY, nil
}

type block struct {
	start uint64
	level uint // block covers 4^level indices
}

// alignedBlocks decomposes the inclusive index range [lo, hi] into maximal
// 4^j-aligned blocks, segment-tree style. The result has O(2·log4(hi-lo))
// entries.
func alignedBlocks(lo, hi uint64) []block {
	var out []block
	pos := lo
	for pos <= hi {
		level := uint(0)
		// Grow the block while it stays aligned and inside the range.
		for {
			next := level + 1
			size := uint64(1) << (2 * next)
			if pos%size != 0 {
				break
			}
			if pos+size-1 > hi || pos+size-1 < pos { // overflow guard
				break
			}
			level = next
		}
		out = append(out, block{start: pos, level: level})
		step := uint64(1) << (2 * level)
		if pos+step < pos { // overflow: covered the top of the index space
			break
		}
		pos += step
	}
	return out
}

// Mapper translates between continuous points in a rectangular domain and
// Hilbert values on a curve of the given order. It is how the Hilbert R-tree
// moves between the original space and the one-dimensional Hilbert space.
type Mapper struct {
	curve  *Curve
	domain geom.Rect
	cellW  float64
	cellH  float64
}

// NewMapper returns a mapper for the given domain. The domain must have
// positive area.
func NewMapper(order uint, domain geom.Rect) (*Mapper, error) {
	if domain.Empty() {
		return nil, fmt.Errorf("hilbert: empty domain %v", domain)
	}
	c, err := New(order)
	if err != nil {
		return nil, err
	}
	side := float64(c.Side())
	return &Mapper{
		curve:  c,
		domain: domain,
		cellW:  domain.Width() / side,
		cellH:  domain.Height() / side,
	}, nil
}

// Curve returns the underlying curve.
func (m *Mapper) Curve() *Curve { return m.curve }

// Domain returns the mapped domain rectangle.
func (m *Mapper) Domain() geom.Rect { return m.domain }

// Cell returns the grid cell containing p, clamping points on the domain's
// closed upper boundary into the last cell.
func (m *Mapper) Cell(p geom.Point) (x, y uint32) {
	fx := (p.X - m.domain.Lo.X) / m.cellW
	fy := (p.Y - m.domain.Lo.Y) / m.cellH
	x = clampCell(fx, m.curve.side)
	y = clampCell(fy, m.curve.side)
	return x, y
}

func clampCell(f float64, side uint32) uint32 {
	if f < 0 {
		return 0
	}
	if f >= float64(side) {
		return side - 1
	}
	return uint32(f)
}

// Index returns the Hilbert value of the cell containing p.
func (m *Mapper) Index(p geom.Point) uint64 {
	x, y := m.Cell(p)
	d, err := m.curve.Encode(x, y)
	if err != nil {
		// Cell clamps into the grid, so Encode cannot fail.
		panic(err)
	}
	return d
}

// CellRect returns the continuous rectangle of grid cell (x, y).
func (m *Mapper) CellRect(x, y uint32) geom.Rect {
	return geom.Rect{
		Lo: geom.Point{
			X: m.domain.Lo.X + float64(x)*m.cellW,
			Y: m.domain.Lo.Y + float64(y)*m.cellH,
		},
		Hi: geom.Point{
			X: m.domain.Lo.X + float64(x+1)*m.cellW,
			Y: m.domain.Lo.Y + float64(y+1)*m.cellH,
		},
	}
}

// RangeBounds returns the exact bounding rectangle (in continuous
// coordinates) of all cells whose Hilbert value lies in [lo, hi]. This is
// data-independent: it depends only on the curve and the range, so releasing
// it costs no privacy budget.
func (m *Mapper) RangeBounds(lo, hi uint64) (geom.Rect, error) {
	minX, minY, maxX, maxY, err := m.curve.CellBounds(lo, hi)
	if err != nil {
		return geom.Rect{}, err
	}
	lower := m.CellRect(minX, minY)
	upper := m.CellRect(maxX, maxY)
	return lower.Union(upper), nil
}
