package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psd/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("order 0 should error")
	}
	if _, err := New(MaxOrder + 1); err == nil {
		t.Error("order above MaxOrder should error")
	}
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Side() != 8 || c.NumCells() != 64 || c.Order() != 3 {
		t.Errorf("order-3 curve: side=%d cells=%d", c.Side(), c.NumCells())
	}
}

// The order-1 curve visits (0,0),(0,1),(1,1),(1,0) — the canonical U shape.
func TestOrder1Canonical(t *testing.T) {
	c, _ := New(1)
	want := [][2]uint32{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for d, cell := range want {
		x, y, err := c.Decode(uint64(d))
		if err != nil {
			t.Fatal(err)
		}
		if x != cell[0] || y != cell[1] {
			t.Errorf("Decode(%d) = (%d,%d), want (%d,%d)", d, x, y, cell[0], cell[1])
		}
		back, err := c.Encode(cell[0], cell[1])
		if err != nil {
			t.Fatal(err)
		}
		if back != uint64(d) {
			t.Errorf("Encode%v = %d, want %d", cell, back, d)
		}
	}
}

func TestEncodeDecodeRoundTripExhaustive(t *testing.T) {
	for order := uint(1); order <= 5; order++ {
		c, _ := New(order)
		seen := make(map[uint64]bool)
		for x := uint32(0); x < c.Side(); x++ {
			for y := uint32(0); y < c.Side(); y++ {
				d, err := c.Encode(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if d >= c.NumCells() {
					t.Fatalf("order %d: index %d out of range", order, d)
				}
				if seen[d] {
					t.Fatalf("order %d: duplicate index %d", order, d)
				}
				seen[d] = true
				rx, ry, err := c.Decode(d)
				if err != nil {
					t.Fatal(err)
				}
				if rx != x || ry != y {
					t.Fatalf("order %d: roundtrip (%d,%d) -> %d -> (%d,%d)",
						order, x, y, d, rx, ry)
				}
			}
		}
		if uint64(len(seen)) != c.NumCells() {
			t.Fatalf("order %d: curve is not a bijection", order)
		}
	}
}

// Property-based roundtrip at a large order.
func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	c, _ := New(18)
	f := func(x, y uint32) bool {
		x %= c.Side()
		y %= c.Side()
		d, err := c.Encode(x, y)
		if err != nil {
			return false
		}
		rx, ry, err := c.Decode(d)
		return err == nil && rx == x && ry == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Consecutive Hilbert values are adjacent grid cells (Manhattan distance 1):
// the locality property that makes the curve useful for R-trees.
func TestLocality(t *testing.T) {
	c, _ := New(6)
	px, py, err := c.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	for d := uint64(1); d < c.NumCells(); d++ {
		x, y, err := c.Decode(d)
		if err != nil {
			t.Fatal(err)
		}
		dist := absDiff(x, px) + absDiff(y, py)
		if dist != 1 {
			t.Fatalf("indices %d and %d map to cells at distance %d", d-1, d, dist)
		}
		px, py = x, y
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestEncodeDecodeErrors(t *testing.T) {
	c, _ := New(2)
	if _, err := c.Encode(4, 0); err == nil {
		t.Error("out-of-grid Encode should error")
	}
	if _, _, err := c.Decode(16); err == nil {
		t.Error("out-of-range Decode should error")
	}
}

func TestAlignedBlocks(t *testing.T) {
	// [0,15] is a single level-2 block.
	bs := alignedBlocks(0, 15)
	if len(bs) != 1 || bs[0].level != 2 || bs[0].start != 0 {
		t.Errorf("alignedBlocks(0,15) = %+v", bs)
	}
	// [1,14] fragments into smaller blocks that exactly tile the range.
	bs = alignedBlocks(1, 14)
	covered := make(map[uint64]bool)
	for _, b := range bs {
		size := uint64(1) << (2 * b.level)
		if b.start%size != 0 {
			t.Errorf("block %+v not aligned", b)
		}
		for i := uint64(0); i < size; i++ {
			if covered[b.start+i] {
				t.Errorf("index %d covered twice", b.start+i)
			}
			covered[b.start+i] = true
		}
	}
	for i := uint64(1); i <= 14; i++ {
		if !covered[i] {
			t.Errorf("index %d not covered", i)
		}
	}
	if len(covered) != 14 {
		t.Errorf("covered %d indices, want 14", len(covered))
	}
}

// CellBounds must equal the brute-force bbox of decoded cells.
func TestCellBoundsMatchesBruteForce(t *testing.T) {
	c, _ := New(4) // 256 cells — exhaustive check is cheap
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		a := uint64(rng.Intn(256))
		b := uint64(rng.Intn(256))
		if a > b {
			a, b = b, a
		}
		minX, minY, maxX, maxY, err := c.CellBounds(a, b)
		if err != nil {
			t.Fatal(err)
		}
		wMinX, wMinY := uint32(255), uint32(255)
		var wMaxX, wMaxY uint32
		for d := a; d <= b; d++ {
			x, y, _ := c.Decode(d)
			if x < wMinX {
				wMinX = x
			}
			if y < wMinY {
				wMinY = y
			}
			if x > wMaxX {
				wMaxX = x
			}
			if y > wMaxY {
				wMaxY = y
			}
		}
		if minX != wMinX || minY != wMinY || maxX != wMaxX || maxY != wMaxY {
			t.Fatalf("CellBounds(%d,%d) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				a, b, minX, minY, maxX, maxY, wMinX, wMinY, wMaxX, wMaxY)
		}
	}
}

func TestCellBoundsClampsAndValidates(t *testing.T) {
	c, _ := New(2)
	if _, _, _, _, err := c.CellBounds(5, 3); err == nil {
		t.Error("inverted range should error")
	}
	// hi beyond the curve is clamped to the last cell.
	minX, minY, maxX, maxY, err := c.CellBounds(0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if minX != 0 || minY != 0 || maxX != 3 || maxY != 3 {
		t.Errorf("full-range bounds = (%d,%d,%d,%d), want full grid", minX, minY, maxX, maxY)
	}
}

func TestMapper(t *testing.T) {
	dom := geom.NewRect(-10, 0, 10, 40)
	m, err := NewMapper(3, dom)
	if err != nil {
		t.Fatal(err)
	}
	if m.Domain() != dom {
		t.Error("Domain not preserved")
	}
	// The lower-left corner maps to cell (0,0); upper-right clamps to (7,7).
	if x, y := m.Cell(geom.Point{X: -10, Y: 0}); x != 0 || y != 0 {
		t.Errorf("lower corner cell = (%d,%d)", x, y)
	}
	if x, y := m.Cell(geom.Point{X: 10, Y: 40}); x != 7 || y != 7 {
		t.Errorf("upper corner cell = (%d,%d)", x, y)
	}
	// Out-of-domain points clamp, never panic.
	if x, y := m.Cell(geom.Point{X: -999, Y: 999}); x != 0 || y != 7 {
		t.Errorf("clamped cell = (%d,%d)", x, y)
	}
	// Cell rectangles tile the domain.
	var area float64
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			area += m.CellRect(x, y).Area()
		}
	}
	if diff := area - dom.Area(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cell areas sum to %v, want %v", area, dom.Area())
	}
}

func TestMapperIndexConsistentWithCell(t *testing.T) {
	dom := geom.NewRect(0, 0, 1, 1)
	m, _ := NewMapper(8, dom)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		d := m.Index(p)
		x, y, err := m.Curve().Decode(d)
		if err != nil {
			t.Fatal(err)
		}
		if !m.CellRect(x, y).ContainsClosed(p) {
			t.Fatalf("point %v not inside its Hilbert cell %v", p, m.CellRect(x, y))
		}
	}
}

func TestRangeBoundsContainsRangePoints(t *testing.T) {
	dom := geom.NewRect(0, 0, 16, 16)
	m, _ := NewMapper(4, dom)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := uint64(rng.Intn(256))
		b := uint64(rng.Intn(256))
		if a > b {
			a, b = b, a
		}
		bbox, err := m.RangeBounds(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for d := a; d <= b; d++ {
			x, y, _ := m.Curve().Decode(d)
			if !bbox.ContainsRect(m.CellRect(x, y)) {
				t.Fatalf("range [%d,%d]: bbox %v misses cell (%d,%d)", a, b, bbox, x, y)
			}
		}
	}
}

func TestNewMapperEmptyDomain(t *testing.T) {
	if _, err := NewMapper(3, geom.Rect{}); err == nil {
		t.Error("empty domain should error")
	}
}

func BenchmarkEncodeOrder18(b *testing.B) {
	c, _ := New(18)
	for i := 0; i < b.N; i++ {
		_, _ = c.Encode(uint32(i)%c.Side(), uint32(i*7919)%c.Side())
	}
}

func BenchmarkCellBoundsOrder18(b *testing.B) {
	c, _ := New(18)
	n := c.NumCells()
	for i := 0; i < b.N; i++ {
		lo := uint64(i*7919) % (n / 2)
		_, _, _, _, _ = c.CellBounds(lo, lo+n/3)
	}
}
