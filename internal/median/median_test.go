package median

import (
	"math"
	"testing"

	"psd/internal/rng"
)

// uniformData returns n evenly spaced values in [lo, hi].
func uniformData(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*(float64(i)+0.5)/float64(n)
	}
	return out
}

func allFinders(src *rng.Source) []Finder {
	return []Finder{
		Exact{},
		&EM{Src: src.Split()},
		&SS{Src: src.Split(), Delta: 1e-4},
		&NM{Src: src.Split()},
		&Cell{Src: src.Split(), Cells: 1024},
		&Sampled{Inner: &EM{Src: src.Split()}, Src: src.Split(), Rate: 0.05},
	}
}

func TestExactMedian(t *testing.T) {
	m, err := Exact{}.Median([]float64{5, 1, 3}, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Errorf("median = %v, want 3", m)
	}
	// Lower median for even n.
	m, _ = Exact{}.Median([]float64{1, 2, 3, 4}, 0, 10, 0)
	if m != 2 {
		t.Errorf("even-n median = %v, want 2 (lower)", m)
	}
	// Empty input: domain midpoint.
	m, _ = Exact{}.Median(nil, 0, 10, 0)
	if m != 5 {
		t.Errorf("empty median = %v, want 5", m)
	}
	// Values clamp into the domain.
	m, _ = Exact{}.Median([]float64{-100, 2, 100}, 0, 10, 0)
	if m != 2 {
		t.Errorf("clamped median = %v, want 2", m)
	}
}

func TestDomainValidation(t *testing.T) {
	src := rng.New(1)
	for _, f := range allFinders(src) {
		if _, err := f.Median([]float64{1}, 5, 5, 1); err == nil {
			t.Errorf("%s: degenerate domain should error", f.Name())
		}
		if _, err := f.Median([]float64{1}, math.NaN(), 1, 1); err == nil {
			t.Errorf("%s: NaN domain should error", f.Name())
		}
	}
}

func TestAllFindersStayInDomain(t *testing.T) {
	src := rng.New(2)
	data := uniformData(501, 10, 20)
	for _, f := range allFinders(src) {
		for trial := 0; trial < 50; trial++ {
			m, err := f.Median(data, 0, 100, 0.5)
			if err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			if m < 0 || m > 100 {
				t.Fatalf("%s: median %v escapes domain [0,100]", f.Name(), m)
			}
		}
	}
}

func TestAllFindersHandleEmptyInput(t *testing.T) {
	src := rng.New(3)
	for _, f := range allFinders(src) {
		m, err := f.Median(nil, 0, 10, 0.5)
		if err != nil {
			t.Fatalf("%s on empty input: %v", f.Name(), err)
		}
		if m < 0 || m > 10 {
			t.Fatalf("%s: empty-input median %v outside domain", f.Name(), m)
		}
	}
}

func TestEMAccurateAtHighEps(t *testing.T) {
	src := rng.New(4)
	em := &EM{Src: src}
	data := uniformData(2001, 0, 1000) // median 500.25
	var errSum float64
	const trials = 50
	for i := 0; i < trials; i++ {
		m, err := em.Median(data, 0, 1000, 5.0)
		if err != nil {
			t.Fatal(err)
		}
		errSum += RankError(data, m)
	}
	if avg := errSum / trials; avg > 0.01 {
		t.Errorf("EM rank error at eps=5: %v, want < 1%%", avg)
	}
}

func TestEMDegradesAtLowEps(t *testing.T) {
	src := rng.New(5)
	em := &EM{Src: src}
	data := uniformData(101, 0, 1000)
	hi := avgRankError(t, em, data, 0, 1000, 5.0, 80)
	lo := avgRankError(t, em, data, 0, 1000, 0.001, 80)
	if lo <= hi {
		t.Errorf("rank error should grow as eps shrinks: eps=5 %v vs eps=0.001 %v", hi, lo)
	}
}

func avgRankError(t *testing.T, f Finder, data []float64, lo, hi, eps float64, trials int) float64 {
	t.Helper()
	var sum float64
	for i := 0; i < trials; i++ {
		m, err := f.Median(data, lo, hi, eps)
		if err != nil {
			t.Fatal(err)
		}
		sum += RankError(data, m)
	}
	return sum / float64(trials)
}

func TestEMIdenticalValues(t *testing.T) {
	src := rng.New(6)
	em := &EM{Src: src}
	data := []float64{7, 7, 7, 7, 7}
	m, err := em.Median(data, 0, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0 || m > 10 {
		t.Errorf("median %v outside domain", m)
	}
}

func TestSmoothSensitivityProperties(t *testing.T) {
	data := uniformData(101, 0, 100)
	// ξ → ∞ kills every k > 0 term: σ_s = local sensitivity at k=0.
	sigmaTight := SmoothSensitivity(data, 0, 100, 1e9)
	m := lowerMedianIndex(len(data))
	localMax := 0.0
	x := func(i int) float64 {
		if i < 1 {
			return 0.0
		}
		if i > len(data) {
			return 100.0
		}
		return data[i-1]
	}
	for tt := 0; tt <= 1; tt++ {
		if d := x(m+tt) - x(m+tt-1); d > localMax {
			localMax = d
		}
	}
	if math.Abs(sigmaTight-localMax) > 1e-9 {
		t.Errorf("sigma at huge xi = %v, want local sensitivity %v", sigmaTight, localMax)
	}
	// ξ = 0 gives the global bound: the whole range.
	sigmaLoose := SmoothSensitivity(data, 0, 100, 0)
	if math.Abs(sigmaLoose-100) > 1e-9 {
		t.Errorf("sigma at xi=0 = %v, want 100 (global)", sigmaLoose)
	}
	// Monotone: smaller ξ (less smoothing decay) cannot shrink σ_s.
	s1 := SmoothSensitivity(data, 0, 100, 0.01)
	s2 := SmoothSensitivity(data, 0, 100, 0.1)
	if s1 < s2 {
		t.Errorf("sigma should not increase with xi: xi=0.01 %v < xi=0.1 %v", s1, s2)
	}
	// σ_s never exceeds the domain size.
	if s1 > 100 || s2 > 100 {
		t.Error("sigma exceeds domain size")
	}
}

func TestSSMedianReasonable(t *testing.T) {
	src := rng.New(7)
	ss := &SS{Src: src, Delta: 1e-4}
	data := uniformData(5001, 0, 1000)
	if avg := avgRankError(t, ss, data, 0, 1000, 0.9, 40); avg > 0.15 {
		t.Errorf("SS rank error at eps=0.9: %v, want < 0.15", avg)
	}
}

func TestSSRejectsBadParams(t *testing.T) {
	src := rng.New(8)
	ss := &SS{Src: src, Delta: 0}
	if _, err := ss.Median([]float64{1, 2}, 0, 10, 0.5); err == nil {
		t.Error("delta=0 should error")
	}
	ss = &SS{Src: src, Delta: 1e-4}
	if _, err := ss.Median([]float64{1, 2}, 0, 10, 2.0); err == nil {
		t.Error("eps >= 1 should error (Definition 4 requires eps < 1)")
	}
}

func TestNMOnSymmetricData(t *testing.T) {
	src := rng.New(9)
	nm := &NM{Src: src}
	data := uniformData(10001, 400, 600) // mean == median == 500
	var sum float64
	const trials = 40
	for i := 0; i < trials; i++ {
		m, err := nm.Median(data, 0, 1000, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		sum += m
	}
	if avg := sum / trials; math.Abs(avg-500) > 10 {
		t.Errorf("NM average = %v, want ~500", avg)
	}
}

func TestNMSkewBias(t *testing.T) {
	// On skewed data the mean is a poor median surrogate — the failure mode
	// the paper attributes to kd-noisymean. 90% of mass near 0, 10% at 1000.
	src := rng.New(10)
	nm := &NM{Src: src}
	data := make([]float64, 0, 1000)
	for i := 0; i < 900; i++ {
		data = append(data, float64(i%10))
	}
	for i := 0; i < 100; i++ {
		data = append(data, 1000)
	}
	var sum float64
	const trials = 40
	for i := 0; i < trials; i++ {
		m, _ := nm.Median(data, 0, 1000, 2.0)
		sum += m
	}
	avg := sum / trials
	trueMed, _ := Exact{}.Median(data, 0, 1000, 0)
	if avg < trueMed+50 {
		t.Errorf("NM should be pulled far above the true median %v, got %v", trueMed, avg)
	}
}

func TestNMZeroEps(t *testing.T) {
	src := rng.New(11)
	nm := &NM{Src: src}
	m, err := nm.Median([]float64{1, 2, 3}, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 {
		t.Errorf("zero-eps NM = %v, want midpoint 5", m)
	}
}

func TestCellMedian(t *testing.T) {
	src := rng.New(12)
	c := &Cell{Src: src, Cells: 256}
	data := uniformData(4096, 0, 1000)
	if avg := avgRankError(t, c, data, 0, 1000, 1.0, 40); avg > 0.05 {
		t.Errorf("cell rank error = %v, want < 0.05", avg)
	}
	// Needs at least one cell.
	bad := &Cell{Src: src, Cells: 0}
	if _, err := bad.Median(data, 0, 1000, 1.0); err == nil {
		t.Error("zero cells should error")
	}
}

func TestCellCoarseGridLimitsAccuracy(t *testing.T) {
	// With a single cell the method can only interpolate linearly across the
	// whole domain — skewed data then yields a biased median.
	src := rng.New(13)
	c := &Cell{Src: src, Cells: 1}
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 10 // all mass at 10, true median 10
	}
	m, err := c.Median(data, 0, 1000, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if m < 400 {
		t.Errorf("one-cell median = %v; expected ~500 (interpolation artifact)", m)
	}
}

func TestSampledWrapper(t *testing.T) {
	src := rng.New(14)
	s := &Sampled{Inner: &EM{Src: src.Split()}, Src: src.Split(), Rate: 0.1}
	if s.Name() != "em-s" {
		t.Errorf("Name = %q, want em-s", s.Name())
	}
	data := uniformData(20000, 0, 1000)
	if avg := avgRankError(t, s, data, 0, 1000, 0.1, 20); avg > 0.1 {
		t.Errorf("sampled EM rank error = %v, want < 0.1", avg)
	}
	bad := &Sampled{Inner: &EM{Src: src.Split()}, Src: src.Split(), Rate: 0}
	if _, err := bad.Median(data, 0, 1000, 0.1); err == nil {
		t.Error("rate 0 should error")
	}
}

func TestRankError(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := RankError(data, 5.5); got != 0 {
		t.Errorf("RankError at true median = %v, want 0", got)
	}
	if got := RankError(data, 1.5); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("RankError near min = %v, want 0.4", got)
	}
	if got := RankError(data, -5); got != 1 {
		t.Errorf("RankError below range = %v, want 1 (worst case)", got)
	}
	if got := RankError(data, 50); got != 1 {
		t.Errorf("RankError above range = %v, want 1 (worst case)", got)
	}
	if got := RankError(nil, 3); got != 0 {
		t.Errorf("RankError on empty = %v, want 0", got)
	}
}

// Lemma 6: under the 80/20 rule, EM lands in [x_{n/5}, x_{4n/5}] with
// probability at least 1/6, and SS with probability > (1 − e^{-ε/4})/2.
func TestLemma6(t *testing.T) {
	src := rng.New(15)
	// Uniform data satisfies the 80/20 rule: the central 80% of the data
	// spans 80% >= 20% of the range.
	const n = 4001
	data := uniformData(n, 0, 1000)
	loQ, hiQ := data[n/5], data[4*n/5]
	if hiQ-loQ < 1000/5 {
		t.Fatal("test data violates the 80/20 precondition")
	}

	const trials = 400
	const eps = 0.5

	em := &EM{Src: src.Split()}
	hits := 0
	for i := 0; i < trials; i++ {
		m, err := em.Median(data, 0, 1000, eps)
		if err != nil {
			t.Fatal(err)
		}
		if m >= loQ && m <= hiQ {
			hits++
		}
	}
	if frac := float64(hits) / trials; frac < 1.0/6 {
		t.Errorf("EM good-split probability %v < Lemma 6 bound 1/6", frac)
	}

	ss := &SS{Src: src.Split(), Delta: 1e-4}
	// Check the ξn ≥ 4.03 precondition of Lemma 6(i).
	xi := eps / (4 * (1 + math.Log(2/1e-4)))
	if xi*float64(n) < 4.03 {
		t.Fatalf("precondition xi*n >= 4.03 violated: %v", xi*float64(n))
	}
	hits = 0
	for i := 0; i < trials; i++ {
		m, err := ss.Median(data, 0, 1000, eps)
		if err != nil {
			t.Fatal(err)
		}
		if m >= loQ && m <= hiQ {
			hits++
		}
	}
	bound := 0.5 * (1 - math.Exp(-eps/4))
	if frac := float64(hits) / trials; frac < bound {
		t.Errorf("SS good-split probability %v < Lemma 6 bound %v", frac, bound)
	}
}

// The paper's Figure 4 ordering at depth 0: EM is the most accurate method;
// NM is poor on skewed data.
func TestFinderRelativeQuality(t *testing.T) {
	src := rng.New(16)
	// Skewed data: exponential-ish spacing.
	n := 8192
	data := make([]float64, n)
	for i := range data {
		u := (float64(i) + 0.5) / float64(n)
		data[i] = 1000 * u * u * u // cubed: mass concentrated near 0
	}
	const eps = 0.5
	em := avgRankError(t, &EM{Src: src.Split()}, data, 0, 1000, eps, 30)
	nm := avgRankError(t, &NM{Src: src.Split()}, data, 0, 1000, eps, 30)
	if em >= nm {
		t.Errorf("EM (%v) should beat NM (%v) on skewed data", em, nm)
	}
}

func BenchmarkEMMedian(b *testing.B) {
	src := rng.New(100)
	em := &EM{Src: src}
	data := uniformData(1<<16, 0, 1<<26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Median(data, 0, 1<<26, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSMedian(b *testing.B) {
	src := rng.New(101)
	ss := &SS{Src: src, Delta: 1e-4}
	data := uniformData(1<<16, 0, 1<<26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ss.Median(data, 0, 1<<26, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
