// Package median implements the private median methods surveyed in
// Section 6.1 of the paper, which decide the split points of data-dependent
// trees (kd-trees, hybrid trees, Hilbert R-trees):
//
//   - EM:   the exponential mechanism over rank error (Definition 5),
//   - SS:   smooth sensitivity noise calibration (Definition 4, from [20]),
//   - NM:   the noisy-mean surrogate of the record-matching scheme [12],
//   - Cell: the fixed-grid heuristic of [26],
//
// plus the Bernoulli-sampling wrappers (EMs, SSs) of Section 7 and the
// non-private Exact finder that backs the kd-pure and kd-true baselines.
//
// All finders share the Finder interface: given a multiset of values inside
// a known public domain [lo, hi] and a privacy budget eps, return a private
// split point. Given an empty input every finder degrades to a data-
// independent choice, which costs no budget but is charged anyway for
// simplicity (a conservative accounting).
//
// Every built-in finder also implements StreamFinder, the hot-path variant
// the tree builders use: the caller supplies the randomness stream and a
// reusable Scratch, so a build performs no per-median allocation and a
// node's split depends only on its own stream — the property that lets
// subtrees build in parallel yet release byte-identical trees.
package median

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"psd/internal/dp"
	"psd/internal/rng"
)

// Finder computes a private median of a set of values within a public
// domain. Implementations consume eps of privacy budget per call.
type Finder interface {
	// Median returns a private estimate of the median of values, which need
	// not be sorted. lo < hi describe the public domain; values outside it
	// are clamped. The result always lies in [lo, hi].
	Median(values []float64, lo, hi, eps float64) (float64, error)

	// Name returns the identifier used in experiment tables (em, ss, nm,
	// cell, em-s, ss-s, exact).
	Name() string
}

// StreamFinder is a Finder whose randomness and working memory can be
// supplied per call. MedianAt must not retain sc, must draw all randomness
// from src, and must be safe for concurrent calls with distinct (src, sc)
// pairs. The tree builders require this interface for parallel
// construction; a Finder without it forces a sequential build.
//
// src travels by value deliberately: a Source is two words, and passing a
// pointer through an interface call would force a heap allocation per
// median (the callee type is opaque to escape analysis). The caller hands
// over a throwaway stream; whatever state is left after the call is
// discarded.
type StreamFinder interface {
	Finder

	// MedianAt is Median drawing randomness from src and using sc for all
	// temporary buffers. values may be overwritten.
	MedianAt(src rng.Source, sc *Scratch, values []float64, lo, hi, eps float64) (float64, error)
}

// Streamable reports whether f's MedianAt really is order-independent: f
// must implement StreamFinder, and wrappers must wrap streamable inners.
// A Sampled around a legacy Finder satisfies the StreamFinder interface
// syntactically but falls back to the inner's hidden stream state, so the
// tree builders must gate on this predicate — not a bare type assertion —
// before fanning splits across goroutines.
func Streamable(f Finder) bool {
	if s, ok := f.(*Sampled); ok {
		return Streamable(s.Inner)
	}
	_, ok := f.(StreamFinder)
	return ok
}

// Scratch holds the reusable buffers of the median hot path so repeated
// calls allocate nothing once the buffers have grown to the working-set
// size. The zero value is ready to use. A Scratch is not safe for
// concurrent use — keep one per goroutine.
type Scratch struct {
	coords  []float64 // axis coordinates, filled by the tree builders
	sorted  []float64 // clamped, sorted copy of the input values
	scores  []float64 // exponential-mechanism rank scores
	weights []float64 // exponential-mechanism interval widths
	logw    []float64 // exponential-mechanism log-weight accumulator
	sample  []float64 // Bernoulli-sampled subset (Sampled wrapper)
	idx     []int     // sampled index buffer
}

// Coords returns the scratch coordinate buffer resized to n. Tree builders
// fill it with the axis coordinates of a node's points before calling
// MedianAt; its contents are invalidated by the next median call.
func (sc *Scratch) Coords(n int) []float64 { return growFloats(&sc.coords, n) }

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n, n+n/4+16)
	}
	*buf = (*buf)[:n]
	return *buf
}

func checkDomain(lo, hi float64) error {
	if !(lo < hi) || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return fmt.Errorf("median: invalid domain [%v, %v]", lo, hi)
	}
	return nil
}

// sortedClamped fills sc.sorted with values clamped into [lo, hi], sorted
// ascending, and returns it.
func (sc *Scratch) sortedClamped(values []float64, lo, hi float64) []float64 {
	out := growFloats(&sc.sorted, len(values))
	for i, v := range values {
		switch {
		case v < lo:
			out[i] = lo
		case v > hi:
			out[i] = hi
		default:
			out[i] = v
		}
	}
	slices.Sort(out)
	return out
}

// lowerMedianIndex returns the 1-based index m of the (lower) median of n
// sorted values; m = ⌈n/2⌉.
func lowerMedianIndex(n int) int { return (n + 1) / 2 }

// Exact returns the true (non-private) median. It exists for the kd-pure
// and kd-true baselines of Section 8.2 and for tests; it offers no privacy.
type Exact struct{}

// Median implements Finder.
func (e Exact) Median(values []float64, lo, hi, eps float64) (float64, error) {
	var sc Scratch
	return e.MedianAt(rng.Source{}, &sc, values, lo, hi, eps)
}

// MedianAt implements StreamFinder; the exact median consumes no
// randomness, so src is ignored.
func (Exact) MedianAt(_ rng.Source, sc *Scratch, values []float64, lo, hi, _ float64) (float64, error) {
	if err := checkDomain(lo, hi); err != nil {
		return 0, err
	}
	if len(values) == 0 {
		return (lo + hi) / 2, nil
	}
	s := sc.sortedClamped(values, lo, hi)
	return s[lowerMedianIndex(len(s))-1], nil
}

// Name implements Finder.
func (Exact) Name() string { return "exact" }

// EM is the exponential-mechanism median of Definition 5: an output x is
// drawn with probability proportional to |I_k|·exp(-ε/2·|rank(x) − rank(x_m)|)
// over the intervals I_k between consecutive data values, then uniformly
// within the chosen interval. It is ε-differentially private (rank has
// sensitivity 1).
type EM struct {
	Src *rng.Source
}

// Median implements Finder, drawing from the finder's own Src.
func (e *EM) Median(values []float64, lo, hi, eps float64) (float64, error) {
	var sc Scratch
	return e.MedianAt(*e.Src.Split(), &sc, values, lo, hi, eps)
}

// MedianAt implements StreamFinder.
func (e *EM) MedianAt(src rng.Source, sc *Scratch, values []float64, lo, hi, eps float64) (float64, error) {
	if err := checkDomain(lo, hi); err != nil {
		return 0, err
	}
	if eps < 0 {
		return 0, fmt.Errorf("median: negative eps %v", eps)
	}
	n := len(values)
	if n == 0 {
		// All ranks are 0 = rank of the median: the mechanism is uniform
		// over the domain.
		return src.UniformIn(lo, hi), nil
	}
	s := sc.sortedClamped(values, lo, hi)
	m := lowerMedianIndex(n)
	// Intervals I_k = [x_k, x_{k+1}) for k = 0..n with x_0 = lo, x_{n+1} = hi
	// (1-based data). Interval k has rank k; score is -|k - m|.
	scores := growFloats(&sc.scores, n+1)
	weights := growFloats(&sc.weights, n+1)
	logw := growFloats(&sc.logw, n+1)
	for k := 0; k <= n; k++ {
		left := lo
		if k >= 1 {
			left = s[k-1]
		}
		right := hi
		if k < n {
			right = s[k]
		}
		scores[k] = -math.Abs(float64(k - m))
		weights[k] = right - left
	}
	k, err := dp.ExpMechanismBuf(&src, scores, weights, eps, 1, logw)
	if err != nil {
		// All intervals can have zero width (every value identical and equal
		// to a domain endpoint, say); any point of the collapsed support is
		// the right answer.
		return s[m-1], nil
	}
	left := lo
	if k >= 1 {
		left = s[k-1]
	}
	right := hi
	if k < n {
		right = s[k]
	}
	if right <= left {
		return left, nil
	}
	return src.UniformIn(left, right), nil
}

// Name implements Finder.
func (e *EM) Name() string { return "em" }

// SS is the smooth-sensitivity median of Definition 4 (Nissim,
// Raskhodnikova and Smith [20]): it releases x_m + (2σ_s/ε)·Lap(1) where
// σ_s is the ξ-smooth sensitivity of the median. It satisfies the slightly
// weaker (ε, δ)-differential privacy.
type SS struct {
	Src *rng.Source
	// Delta is the δ of (ε, δ)-DP; the paper's experiments use 1e-4.
	Delta float64
}

// Median implements Finder, drawing from the finder's own Src.
func (s *SS) Median(values []float64, lo, hi, eps float64) (float64, error) {
	var sc Scratch
	return s.MedianAt(*s.Src.Split(), &sc, values, lo, hi, eps)
}

// MedianAt implements StreamFinder.
func (s *SS) MedianAt(src rng.Source, sc *Scratch, values []float64, lo, hi, eps float64) (float64, error) {
	if err := checkDomain(lo, hi); err != nil {
		return 0, err
	}
	if len(values) == 0 {
		return src.UniformIn(lo, hi), nil
	}
	xi, err := dp.SmoothXi(eps, s.Delta)
	if err != nil {
		return 0, err
	}
	v := sc.sortedClamped(values, lo, hi)
	sigma := SmoothSensitivity(v, lo, hi, xi)
	m := lowerMedianIndex(len(v))
	out := v[m-1] + (2*sigma/eps)*src.Laplace(1)
	return clamp(out, lo, hi), nil
}

// Name implements Finder.
func (s *SS) Name() string { return "ss" }

// SmoothSensitivity computes σ_s(median) of Definition 4 over the sorted
// values v within domain [lo, hi]:
//
//	σ_s = max_{0≤k≤n} e^{-kξ} · max_{0≤t≤k+1} (x_{m+t} − x_{m+t−k−1})
//
// with x_i := lo for i < 1 and x_i := hi for i > n (1-based indexing).
// The scan over k stops as soon as e^{-kξ}·(hi−lo) cannot beat the current
// maximum, which keeps the common case far below the worst-case O(n²).
func SmoothSensitivity(v []float64, lo, hi, xi float64) float64 {
	n := len(v)
	m := lowerMedianIndex(n)
	M := hi - lo
	x := func(i int) float64 { // 1-based with boundary clamping
		if i < 1 {
			return lo
		}
		if i > n {
			return hi
		}
		return v[i-1]
	}
	best := 0.0
	for k := 0; k <= n; k++ {
		decay := math.Exp(-float64(k) * xi)
		if decay*M <= best {
			break // no later k can improve: the local term is at most M
		}
		local := 0.0
		for t := 0; t <= k+1; t++ {
			if d := x(m+t) - x(m+t-k-1); d > local {
				local = d
			}
		}
		if s := decay * local; s > best {
			best = s
		}
	}
	return best
}

// NM is the noisy-mean surrogate of Inan et al. [12]: a private mean
// computed as (noisy sum)/(noisy count), used in place of the median. The
// sum (of values shifted to [0, M]) has sensitivity M and the count has
// sensitivity 1; the budget is split evenly between them. It is fast but
// gives no guarantee of being close to the median (Section 6.1).
type NM struct {
	Src *rng.Source
}

// Median implements Finder, drawing from the finder's own Src.
func (nm *NM) Median(values []float64, lo, hi, eps float64) (float64, error) {
	var sc Scratch
	return nm.MedianAt(*nm.Src.Split(), &sc, values, lo, hi, eps)
}

// MedianAt implements StreamFinder.
func (nm *NM) MedianAt(src rng.Source, _ *Scratch, values []float64, lo, hi, eps float64) (float64, error) {
	if err := checkDomain(lo, hi); err != nil {
		return 0, err
	}
	if eps <= 0 {
		return (lo + hi) / 2, nil
	}
	M := hi - lo
	var sum float64
	for _, v := range values {
		sum += clamp(v, lo, hi) - lo
	}
	half := eps / 2
	noisySum := sum + src.Laplace(M/half)
	noisyCount := float64(len(values)) + src.Laplace(1/half)
	if noisyCount < 1 {
		// Too little signal to divide by; fall back to the domain midpoint,
		// which is what an (almost) empty node deserves.
		return (lo + hi) / 2, nil
	}
	return clamp(lo+noisySum/noisyCount, lo, hi), nil
}

// Name implements Finder.
func (nm *NM) Name() string { return "nm" }

// Cell is the fixed-resolution-grid heuristic of Xiao et al. [26]: lay a
// uniform grid over the domain, release a noisy count per cell (sensitivity
// 1), and read the median off the noisy cumulative distribution with linear
// interpolation inside the crossing cell.
type Cell struct {
	Src *rng.Source
	// Cells is the number of grid cells; the Figure 4 experiment uses a
	// cell length of 2^10 over a domain of 2^26, i.e. 2^16 cells.
	Cells int
}

// Median implements Finder, drawing from the finder's own Src.
func (c *Cell) Median(values []float64, lo, hi, eps float64) (float64, error) {
	var sc Scratch
	return c.MedianAt(*c.Src.Split(), &sc, values, lo, hi, eps)
}

// MedianAt implements StreamFinder.
func (c *Cell) MedianAt(src rng.Source, sc *Scratch, values []float64, lo, hi, eps float64) (float64, error) {
	if err := checkDomain(lo, hi); err != nil {
		return 0, err
	}
	if c.Cells < 1 {
		return 0, fmt.Errorf("median: cell method needs at least 1 cell, got %d", c.Cells)
	}
	width := (hi - lo) / float64(c.Cells)
	counts := growFloats(&sc.scores, c.Cells)
	clear(counts)
	for _, v := range values {
		idx := int((clamp(v, lo, hi) - lo) / width)
		if idx >= c.Cells {
			idx = c.Cells - 1
		}
		counts[idx]++
	}
	var total float64
	for i := range counts {
		counts[i] += src.Laplace(1 / eps)
		if counts[i] < 0 {
			counts[i] = 0 // negative mass would make the CDF non-monotone
		}
		total += counts[i]
	}
	if total <= 0 {
		return (lo + hi) / 2, nil
	}
	target := total / 2
	var cum float64
	for i, cnt := range counts {
		if cum+cnt >= target {
			frac := 0.5
			if cnt > 0 {
				frac = (target - cum) / cnt
			}
			return lo + (float64(i)+frac)*width, nil
		}
		cum += cnt
	}
	return hi, nil
}

// Name implements Finder.
func (c *Cell) Name() string { return "cell" }

// Sampled wraps a Finder with Bernoulli subsampling (Section 7): the inner
// finder runs on a Rate-sample of the data with the amplified budget that
// keeps the overall release eps-DP. The exact Kasiviswanathan et al.
// amplification bound is used (see dp.TightSampledBudget); at Rate = 1% a
// per-call target of ε = 0.01 turns into an inner budget ≈ 0.70, the
// "about 50 times larger" effect the paper reports.
type Sampled struct {
	Inner Finder
	Src   *rng.Source
	// Rate is the Bernoulli sampling probability in (0, 1].
	Rate float64
}

// Median implements Finder, drawing from the finder's own Src.
func (s *Sampled) Median(values []float64, lo, hi, eps float64) (float64, error) {
	var sc Scratch
	return s.MedianAt(*s.Src.Split(), &sc, values, lo, hi, eps)
}

// MedianAt implements StreamFinder. The sampling draw and the inner
// mechanism share src, so one stream fully determines the call. An Inner
// that is itself a StreamFinder keeps the call allocation-free and
// order-independent; a plain Finder falls back to its own Median (and its
// own internal randomness).
func (s *Sampled) MedianAt(src rng.Source, sc *Scratch, values []float64, lo, hi, eps float64) (float64, error) {
	if err := checkDomain(lo, hi); err != nil {
		return 0, err
	}
	if s.Rate <= 0 || s.Rate > 1 {
		return 0, fmt.Errorf("median: sampling rate %v outside (0,1]", s.Rate)
	}
	inner, err := dp.TightSampledBudget(eps, s.Rate)
	if err != nil {
		return 0, err
	}
	sc.idx = src.SampleBernoulliInto(sc.idx, len(values), s.Rate)
	sample := growFloats(&sc.sample, len(sc.idx))
	for i, j := range sc.idx {
		sample[i] = values[j]
	}
	if sf, ok := s.Inner.(StreamFinder); ok {
		return sf.MedianAt(src, sc, sample, lo, hi, inner)
	}
	return s.Inner.Median(sample, lo, hi, inner)
}

// Name implements Finder.
func (s *Sampled) Name() string { return s.Inner.Name() + "-s" }

// RankError returns the normalized rank error of a proposed median value
// against the data: |rank(v) − n/2| / n ∈ [0, 1]. Values outside the data
// range score the worst-case 1 (the paper's "100% relative error" for
// medians that fall outside [x_1, x_n]). The data need not be sorted.
func RankError(values []float64, v float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, values)
	slices.Sort(s)
	if v < s[0] || v > s[n-1] {
		return 1
	}
	rank := sort.SearchFloat64s(s, v)
	return math.Abs(float64(rank)-float64(n)/2) / float64(n)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
