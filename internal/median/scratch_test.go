package median

import (
	"testing"

	"psd/internal/rng"
)

// streamFinders enumerates the built-in finders through their hot-path
// interface. Every one must satisfy StreamFinder or parallel builds would
// silently degrade to sequential.
func streamFinders() map[string]StreamFinder {
	return map[string]StreamFinder{
		"exact": Exact{},
		"em":    &EM{},
		"ss":    &SS{Delta: 1e-4},
		"nm":    &NM{},
		"cell":  &Cell{Cells: 64},
		"em-s":  &Sampled{Inner: &EM{}, Rate: 0.5},
	}
}

type legacyOnly struct{ Exact }

// Median-only shadow: legacyOnly deliberately hides MedianAt.
func (legacyOnly) MedianAt() {}

func TestStreamable(t *testing.T) {
	for name, f := range streamFinders() {
		if !Streamable(f) {
			t.Errorf("%s: built-in finder should be streamable", name)
		}
	}
	var legacy Finder = legacyOnly{}
	if _, ok := legacy.(StreamFinder); ok {
		t.Fatal("test fixture unexpectedly implements StreamFinder")
	}
	if Streamable(legacy) {
		t.Error("legacy finder reported streamable")
	}
	if Streamable(&Sampled{Inner: legacy, Rate: 0.5}) {
		t.Error("Sampled around a legacy inner must not be streamable")
	}
	if !Streamable(&Sampled{Inner: &Sampled{Inner: &EM{}, Rate: 0.5}, Rate: 0.5}) {
		t.Error("nested streamable Sampled should be streamable")
	}
}

// MedianAt must be a pure function of (stream, inputs): same stream, same
// answer, regardless of scratch reuse or interleaving with other calls.
func TestMedianAtStreamDeterminism(t *testing.T) {
	vals := make([]float64, 500)
	seedSrc := rng.New(5)
	for i := range vals {
		vals[i] = seedSrc.UniformIn(0, 100)
	}
	for name, f := range streamFinders() {
		var sc1, sc2 Scratch
		in1 := append([]float64(nil), vals...)
		a, err := f.MedianAt(rng.At(99, 7, 1), &sc1, in1, 0, 100, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Interleave an unrelated call on the second scratch, then replay
		// the original stream: the answer must not move.
		if _, err := f.MedianAt(rng.At(1, 2, 3), &sc2, append([]float64(nil), vals...), 0, 100, 0.5); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := f.MedianAt(rng.At(99, 7, 1), &sc2, append([]float64(nil), vals...), 0, 100, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: replayed stream gave %v then %v", name, a, b)
		}
		if a < 0 || a > 100 {
			t.Errorf("%s: median %v outside domain", name, a)
		}
	}
}

// The whole point of Scratch: once warm, the median hot path allocates
// nothing per call.
func TestMedianAtAllocationFree(t *testing.T) {
	vals := make([]float64, 2048)
	seedSrc := rng.New(6)
	for i := range vals {
		vals[i] = seedSrc.UniformIn(0, 1)
	}
	in := make([]float64, len(vals))
	for name, f := range streamFinders() {
		var sc Scratch
		call := func() {
			copy(in, vals)
			if _, err := f.MedianAt(rng.At(42, 11, 2), &sc, in, 0, 1, 0.4); err != nil {
				t.Fatal(err)
			}
		}
		call() // warm the scratch buffers
		if avg := testing.AllocsPerRun(50, call); avg != 0 {
			t.Errorf("%s: %v allocs/op on a warm scratch, want 0", name, avg)
		}
	}
}

func BenchmarkEMMedianLegacy(b *testing.B) {
	vals := make([]float64, 4096)
	src := rng.New(7)
	for i := range vals {
		vals[i] = src.UniformIn(0, 1)
	}
	e := &EM{Src: rng.New(8)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Median(vals, 0, 1, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMMedianAtScratch(b *testing.B) {
	vals := make([]float64, 4096)
	src := rng.New(7)
	for i := range vals {
		vals[i] = src.UniformIn(0, 1)
	}
	in := make([]float64, len(vals))
	e := &EM{}
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(in, vals)
		if _, err := e.MedianAt(rng.At(1, uint64(i), 0), &sc, in, 0, 1, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}
