// Package atomicfile writes files crash-safely. A release artifact is
// published by writing it somewhere a server's watch-dir rescan will pick it
// up — and a rescan that runs mid-write must never see half an artifact. The
// classic discipline: stream into a hidden temp file in the destination
// directory (same filesystem, so the final step can be a rename), fsync it,
// then atomically rename it over the destination. Readers see either the old
// complete file or the new complete file, never a prefix; a crash at any
// point leaves at worst a hidden temp file behind, which directory globs for
// published artifacts do not match.
package atomicfile

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// Write streams write's output into path atomically, returning the byte
// count. On any failure the destination is untouched (whatever was at path
// before is still there) and the temp file is removed.
func Write(path string, write func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	n, err := writeTo(tmp, write)
	if err != nil {
		_ = tmp.Close() // the write error wins; the temp file is discarded
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	// Sync the directory so the rename itself survives a crash. Best-effort:
	// some filesystems refuse directory fsync, and the data is already safe.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return n, nil
}

// writeTo fills the temp file: buffered write, flush, fsync, then the mode
// fix-up (CreateTemp defaults to 0600; published artifacts are world-
// readable like any os.Create output).
func writeTo(tmp *os.File, write func(io.Writer) error) (int64, error) {
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return 0, err
	}
	info, err := tmp.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
