package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	payload := strings.Repeat("artifact bytes ", 1000)

	n, err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, payload)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("reported %d bytes, want %d", n, len(payload))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatal("content mismatch")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode %v, want 0644", info.Mode().Perm())
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("leftover files after success: %v", names)
	}
}

// TestWriteFailureLeavesOldFile pins the crash-safety contract: a failing
// write leaves the previous destination bytes untouched and no temp debris.
func TestWriteFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous good artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("serialization exploded")
	_, err := Write(path, func(w io.Writer) error {
		io.WriteString(w, "half an artif") // a prefix goes out before the failure
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the write error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous good artifact" {
		t.Fatalf("destination corrupted: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "out.json" {
		t.Fatalf("temp debris after failure: %v", names)
	}
}

// TestWriteTempInvisibleToGlobs pins the publishing interaction: the temp
// file is dot-hidden, so a watch-dir scanner globbing *.json / *.bin can
// never pick up a half-written artifact even mid-write.
func TestWriteTempInvisibleToGlobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.bin")
	_, err := Write(path, func(w io.Writer) error {
		// Mid-write, the only file a glob may see is a complete artifact.
		for _, pat := range []string{"*.bin", "*.json"} {
			m, err := filepath.Glob(filepath.Join(dir, pat))
			if err != nil {
				return err
			}
			if len(m) != 0 {
				t.Errorf("mid-write glob %s matched %v", pat, m)
			}
		}
		_, werr := io.WriteString(w, "data")
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
}
