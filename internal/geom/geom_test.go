package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %v, want 2", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if c := r.Center(); c != (Point{2, 1}) {
		t.Errorf("Center = %v, want (2,1)", c)
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported Empty")
	}
	if !NewRect(1, 1, 1, 5).Empty() {
		t.Error("zero-width rect not Empty")
	}
}

func TestNewRectPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect with inverted bounds did not panic")
		}
	}()
	NewRect(5, 0, 1, 1)
}

func TestContainsHalfOpen(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},     // lower corner included
		{Point{0.5, 0.5}, true}, // interior
		{Point{1, 0.5}, false},  // upper x edge excluded
		{Point{0.5, 1}, false},  // upper y edge excluded
		{Point{1, 1}, false},    // upper corner excluded
		{Point{-0.1, 0.5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsClosed(Point{1, 1}) {
		t.Error("ContainsClosed should include the upper corner")
	}
}

func TestContainsRect(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.ContainsRect(NewRect(2, 2, 8, 8)) {
		t.Error("inner rect should be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
	if outer.ContainsRect(NewRect(5, 5, 11, 8)) {
		t.Error("overflowing rect should not be contained")
	}
}

func TestIntersect(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	want := NewRect(2, 2, 4, 4)
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}

	// Touching edges do not intersect under the half-open convention.
	c := NewRect(4, 0, 8, 4)
	if a.Intersects(c) {
		t.Error("edge-adjacent rects should not intersect")
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("edge-adjacent Intersect should report no overlap")
	}
}

func TestUnion(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(3, 4, 5, 6)
	u := a.Union(b)
	want := NewRect(0, 0, 5, 6)
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
}

func TestOverlapFraction(t *testing.T) {
	leaf := NewRect(0, 0, 2, 2)
	q := NewRect(1, 0, 5, 2)
	if got := leaf.OverlapFraction(q); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OverlapFraction = %v, want 0.5", got)
	}
	if got := leaf.OverlapFraction(NewRect(10, 10, 11, 11)); got != 0 {
		t.Errorf("disjoint OverlapFraction = %v, want 0", got)
	}
	deg := NewRect(1, 1, 1, 5)
	if got := deg.OverlapFraction(q); got != 0 {
		t.Errorf("degenerate OverlapFraction = %v, want 0", got)
	}
	if got := leaf.OverlapFraction(leaf); math.Abs(got-1) > 1e-12 {
		t.Errorf("self OverlapFraction = %v, want 1", got)
	}
}

func TestQuadrantsTileParent(t *testing.T) {
	r := NewRect(-2, -3, 6, 5)
	qs := r.Quadrants()
	var area float64
	for _, q := range qs {
		area += q.Area()
		if !r.ContainsRect(q) {
			t.Errorf("quadrant %v escapes parent %v", q, r)
		}
	}
	if math.Abs(area-r.Area()) > 1e-9 {
		t.Errorf("quadrant areas sum to %v, want %v", area, r.Area())
	}
	// Pairwise disjoint.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if qs[i].Intersects(qs[j]) {
				t.Errorf("quadrants %d and %d overlap", i, j)
			}
		}
	}
	// Every point in r lands in exactly one quadrant.
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 200; k++ {
		p := Point{
			r.Lo.X + rng.Float64()*r.Width(),
			r.Lo.Y + rng.Float64()*r.Height(),
		}
		hits := 0
		for _, q := range qs {
			if q.Contains(p) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("point %v contained in %d quadrants, want 1", p, hits)
		}
	}
}

func TestSplitAxes(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	l, rr := r.SplitX(3)
	if l != NewRect(0, 0, 3, 10) || rr != NewRect(3, 0, 10, 10) {
		t.Errorf("SplitX = %v | %v", l, rr)
	}
	b, tp := r.SplitY(7)
	if b != NewRect(0, 0, 10, 7) || tp != NewRect(0, 7, 10, 10) {
		t.Errorf("SplitY = %v | %v", b, tp)
	}
	// Clamping: a wild split point still tiles the parent.
	l, rr = r.SplitX(-5)
	if l.Area() != 0 || rr != r {
		t.Errorf("clamped SplitX = %v | %v", l, rr)
	}
	l2, r2 := r.Split(AxisY, 4)
	wantL, wantR := r.SplitY(4)
	if l2 != wantL || r2 != wantR {
		t.Error("Split(AxisY) disagrees with SplitY")
	}
}

func TestAxisHelpers(t *testing.T) {
	if AxisX.Next() != AxisY || AxisY.Next() != AxisX {
		t.Error("Axis.Next should alternate")
	}
	p := Point{3, 7}
	if AxisX.Coord(p) != 3 || AxisY.Coord(p) != 7 {
		t.Error("Axis.Coord wrong")
	}
	if AxisX.String() != "x" || AxisY.String() != "y" {
		t.Error("Axis.String wrong")
	}
	lo, hi := NewRect(1, 2, 3, 4).Range(AxisY)
	if lo != 2 || hi != 4 {
		t.Errorf("Range(AxisY) = %v,%v", lo, hi)
	}
}

func TestBoundingBox(t *testing.T) {
	if bb := BoundingBox(nil); bb != (Rect{}) {
		t.Errorf("empty BoundingBox = %v, want zero", bb)
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	bb := BoundingBox(pts)
	for _, p := range pts {
		if !bb.Contains(p) {
			t.Errorf("BoundingBox %v does not contain %v", bb, p)
		}
	}
	if bb.Lo != (Point{-2, -1}) {
		t.Errorf("BoundingBox.Lo = %v", bb.Lo)
	}
}

func TestCountIn(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {5, 5}}
	if got := CountIn(pts, NewRect(0, 0, 3, 3)); got != 3 {
		t.Errorf("CountIn = %d, want 3", got)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{Point{ax, ay}, Point{ax + math.Abs(aw), ay + math.Abs(ah)}}
		b := Rect{Point{bx, by}, Point{bx + math.Abs(bw), by + math.Abs(bh)}}
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 || i1 != i2 {
			return false
		}
		if ok1 {
			if !a.ContainsRect(i1) || !b.ContainsRect(i1) {
				return false
			}
			if !a.Intersects(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ContainsRect implies Intersects (for non-empty inner rects) and
// OverlapFraction == 1.
func TestContainmentImpliesFullOverlap(t *testing.T) {
	f := func(x, y, w, h, dx, dy float64) bool {
		// Fold arbitrary float inputs into a numerically tame range so the
		// geometry cannot overflow; the property itself is what's under test.
		fold := func(v, scale float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, scale)
		}
		x, y = fold(x, 100), fold(y, 100)
		w, h = math.Abs(fold(w, 50))+0.1, math.Abs(fold(h, 50))+0.1
		outer := Rect{Point{x, y}, Point{x + 4*w, y + 4*h}}
		fx := math.Abs(math.Mod(fold(dx, 3), 1))
		fy := math.Abs(math.Mod(fold(dy, 3), 1))
		inner := Rect{
			Point{x + fx*w, y + fy*h},
			Point{x + fx*w + w, y + fy*h + h},
		}
		if !outer.ContainsRect(inner) {
			return true // construction may overflow with extreme floats; skip
		}
		return outer.Intersects(inner) &&
			math.Abs(inner.OverlapFraction(outer)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
