// Package geom provides the two-dimensional geometric primitives used by
// every spatial decomposition in this library: points, axis-aligned
// rectangles, and the intersection / containment / area operations the
// canonical range-query algorithm relies on.
//
// Conventions: rectangles are half-open boxes [Lo.X, Hi.X) × [Lo.Y, Hi.Y),
// so the children of a split tile their parent exactly and every point
// belongs to exactly one leaf. Degenerate rectangles (zero width or height)
// are permitted and have zero area.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Rect is the half-open axis-aligned box [Lo.X, Hi.X) × [Lo.Y, Hi.Y).
// A Rect is valid when Lo.X <= Hi.X and Lo.Y <= Hi.Y.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns the rectangle with the given bounds. It panics if the
// bounds are inverted; construction errors here are always programmer errors.
func NewRect(loX, loY, hiX, hiY float64) Rect {
	r := Rect{Lo: Point{loX, loY}, Hi: Point{hiX, hiY}}
	if !r.Valid() {
		panic(fmt.Sprintf("geom: invalid rect [%v,%v)x[%v,%v)", loX, hiX, loY, hiY))
	}
	return r
}

// Valid reports whether the rectangle's bounds are ordered.
func (r Rect) Valid() bool {
	return r.Lo.X <= r.Hi.X && r.Lo.Y <= r.Hi.Y
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.Hi.X - r.Lo.X }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.Hi.Y - r.Lo.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Empty reports whether r contains no points (zero width or height).
func (r Rect) Empty() bool { return r.Width() <= 0 || r.Height() <= 0 }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether the point p lies inside the half-open box r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsClosed reports whether p lies in the closure of r (boundary
// included). Queries use this when the data domain's upper edge must be
// inclusive.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Lo.X >= r.Lo.X && s.Hi.X <= r.Hi.X &&
		s.Lo.Y >= r.Lo.Y && s.Hi.Y <= r.Hi.Y
}

// Intersects reports whether r and s share interior points.
func (r Rect) Intersects(s Rect) bool {
	return r.Lo.X < s.Hi.X && s.Lo.X < r.Hi.X &&
		r.Lo.Y < s.Hi.Y && s.Lo.Y < r.Hi.Y
}

// Intersect returns the overlap of r and s. The second result is false when
// the rectangles do not overlap, in which case the returned Rect is the zero
// value.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Lo: Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)},
	}
	if out.Lo.X >= out.Hi.X || out.Lo.Y >= out.Hi.Y {
		return Rect{}, false
	}
	return out, true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Lo: Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// OverlapFraction returns area(r ∩ q) / area(r), the fraction of r covered
// by q. It returns 0 when r has zero area or the boxes do not overlap.
// This is the uniformity-assumption weight used when a query partially
// intersects a leaf.
func (r Rect) OverlapFraction(q Rect) float64 {
	a := r.Area()
	if a <= 0 {
		return 0
	}
	inter, ok := r.Intersect(q)
	if !ok {
		return 0
	}
	return inter.Area() / a
}

// Quadrants splits r at its center into four equal sub-rectangles in the
// order SW, SE, NW, NE (x-minor, y-major). This is the quadtree split rule.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{Lo: r.Lo, Hi: c}, // SW
		{Lo: Point{c.X, r.Lo.Y}, Hi: Point{r.Hi.X, c.Y}}, // SE
		{Lo: Point{r.Lo.X, c.Y}, Hi: Point{c.X, r.Hi.Y}}, // NW
		{Lo: c, Hi: r.Hi}, // NE
	}
}

// SplitX splits r at x into (left, right) halves. x is clamped into r so the
// result is always a valid tiling of r.
func (r Rect) SplitX(x float64) (Rect, Rect) {
	x = clamp(x, r.Lo.X, r.Hi.X)
	return Rect{Lo: r.Lo, Hi: Point{x, r.Hi.Y}},
		Rect{Lo: Point{x, r.Lo.Y}, Hi: r.Hi}
}

// SplitY splits r at y into (bottom, top) halves. y is clamped into r.
func (r Rect) SplitY(y float64) (Rect, Rect) {
	y = clamp(y, r.Lo.Y, r.Hi.Y)
	return Rect{Lo: r.Lo, Hi: Point{r.Hi.X, y}},
		Rect{Lo: Point{r.Lo.X, y}, Hi: r.Hi}
}

// Axis identifies a coordinate axis.
type Axis int

// The two axes of the plane.
const (
	AxisX Axis = iota
	AxisY
)

// Next returns the other axis; kd-trees cycle splits with it.
func (a Axis) Next() Axis {
	if a == AxisX {
		return AxisY
	}
	return AxisX
}

// String implements fmt.Stringer.
func (a Axis) String() string {
	if a == AxisX {
		return "x"
	}
	return "y"
}

// Coord returns the coordinate of p along axis a.
func (a Axis) Coord(p Point) float64 {
	if a == AxisX {
		return p.X
	}
	return p.Y
}

// Split splits r at value v along axis a.
func (r Rect) Split(a Axis, v float64) (Rect, Rect) {
	if a == AxisX {
		return r.SplitX(v)
	}
	return r.SplitY(v)
}

// Range returns the [lo, hi) extent of r along axis a.
func (r Rect) Range(a Axis) (lo, hi float64) {
	if a == AxisX {
		return r.Lo.X, r.Hi.X
	}
	return r.Lo.Y, r.Hi.Y
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g)x[%g,%g)", r.Lo.X, r.Hi.X, r.Lo.Y, r.Hi.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BoundingBox returns the smallest rectangle containing all pts, expanding
// the upper edge by a relative epsilon so every point satisfies Contains
// under the half-open convention. It returns the zero Rect when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		r.Lo.X = math.Min(r.Lo.X, p.X)
		r.Lo.Y = math.Min(r.Lo.Y, p.Y)
		r.Hi.X = math.Max(r.Hi.X, p.X)
		r.Hi.Y = math.Max(r.Hi.Y, p.Y)
	}
	r.Hi.X = nextAfterUp(r.Hi.X)
	r.Hi.Y = nextAfterUp(r.Hi.Y)
	return r
}

// nextAfterUp nudges v up so a half-open interval [lo, nextAfterUp(v))
// contains v itself.
func nextAfterUp(v float64) float64 {
	return math.Nextafter(v, math.Inf(1))
}

// CountIn returns the number of points of pts lying inside r.
func CountIn(pts []Point, r Rect) int {
	n := 0
	for _, p := range pts {
		if r.Contains(p) {
			n++
		}
	}
	return n
}
