// Package ingest is the streaming-ingest tier: a crash-safe write-ahead log
// of incoming points, a durable publish journal, and the orchestration that
// turns a continuously-growing point stream into versioned, privacy-charged
// release artifacts (the continual-observation regime — points arrive
// forever, releases are republished on a cadence, and every publication is
// charged to a persistent ε ledger BEFORE it becomes visible).
//
// The headline guarantee is kill-recovery: SIGKILL at any instant —
// mid-append, mid-rotation, mid-rebuild, mid-charge, mid-publish — must
// recover to a state where replaying the WAL reproduces every published
// release byte-identically (builds are deterministic per seed), no
// acknowledged point is lost, and the ledger never under-counts ε spent.
package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"psd"
)

// WAL segment format. A WAL is a directory of segment files
//
//	wal-<seq 16-digit decimal>.seg
//
// each laid out as
//
//	header:  magic "PSDWAL1\0" | u64 LE seq | u64 LE firstIndex
//	frames:  u32 LE payloadLen | payload | u64 LE CRC-64/ECMA(lenField‖payload)
//
// where a payload is 1..maxFramePoints points of 16 bytes each (LE float64
// x, y) and firstIndex is the number of points in all earlier segments (a
// replay cross-check). Every Append writes whole frames and fsyncs before
// acknowledging, so after a crash the durable prefix of the last segment is
// exactly the acknowledged stream; a torn or bit-flipped tail fails its
// frame checksum and is truncated away on recovery. Segments are created
// with the atomicfile rename discipline — header written and fsync'd into a
// dot-hidden temp file, renamed into place, directory fsync'd — so a
// visible segment always carries a complete, valid header.
const (
	segMagic        = "PSDWAL1\x00"
	segHeaderLen    = 24
	pointLen        = 16
	frameLenBytes   = 4
	frameCRCBytes   = 8
	maxFramePoints  = 65536
	maxFramePayload = maxFramePoints * pointLen

	// DefaultMaxSegmentBytes rotates segments at 16 MiB (~1M points each).
	DefaultMaxSegmentBytes = 16 << 20
)

var walCRCTable = crc64.MakeTable(crc64.ECMA)

// WAL is an open write-ahead log: an append handle on the active segment
// plus the replayed totals. It is NOT internally locked — the Ingester
// serializes access (and tests that need concurrency wrap it).
type WAL struct {
	dir         string
	fs          FS
	maxSegBytes int64

	seg      *syncWriter
	segPath  string
	segSeq   uint64
	segBytes int64
	// prevBytes is the total size of all sealed (non-active) segments.
	prevBytes int64
	count     uint64
	// broken, once set, refuses further appends: the log's tail could not
	// be restored to a frame boundary after a failed write, so nothing
	// further can be safely acknowledged. Reopening recovers.
	broken error
	// frameBuf is the reusable frame-encoding scratch.
	frameBuf []byte
}

// segName returns the file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

// OpenWAL opens (creating if needed) the WAL in dir, replaying every
// acknowledged point. Recovery truncates a torn FRAME tail of the last
// segment (the shape a crash mid-append leaves), removes leftover rotation
// temp files, and verifies segment contiguity and per-segment first-index
// cross-checks — corruption anywhere else, including a damaged or
// inconsistent header of the last segment (headers are fsync'd before the
// rename that makes a segment visible, so header damage is never a crash
// artifact), means acknowledged data is unreadable and fails loudly. fsys
// nil means the real filesystem; maxSegBytes <= 0 selects
// DefaultMaxSegmentBytes.
func OpenWAL(dir string, fsys FS, maxSegBytes int64) (*WAL, []psd.Point, error) {
	if fsys == nil {
		fsys = osFS{}
	}
	if maxSegBytes <= 0 {
		maxSegBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	w := &WAL{dir: dir, fs: fsys, maxSegBytes: maxSegBytes}

	// Leftover rotation temp files are invisible to the segment glob and
	// carry nothing acknowledged; clear them.
	if tmps, err := fsys.Glob(filepath.Join(dir, ".wal-*.tmp")); err == nil {
		for _, t := range tmps {
			_ = fsys.Remove(t)
		}
	}

	paths, err := fsys.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		if err := w.createSegment(1, 0); err != nil {
			return nil, nil, err
		}
		return w, nil, nil
	}

	var points []psd.Point
	for i, path := range paths {
		last := i == len(paths)-1
		wantSeq := uint64(i + 1)
		if filepath.Base(path) != segName(wantSeq) {
			return nil, nil, fmt.Errorf("ingest: wal segment gap: found %s, want %s", filepath.Base(path), segName(wantSeq))
		}
		pts, valid, derr := w.readSegment(path, wantSeq, w.count)
		if derr != nil {
			if !last {
				return nil, nil, fmt.Errorf("ingest: wal segment %s corrupt mid-log (acknowledged data unreadable): %w", path, derr)
			}
			if valid < segHeaderLen {
				// The header never decoded: a bad magic, a short file, or a
				// seq/first-index mismatch. Headers are written and fsync'd
				// before the rename that makes a segment visible, so none of
				// these is a crash artifact — truncating here would zero the
				// segment (dropping its header) and silently discard any
				// acknowledged appends behind the damage. Fail loudly instead.
				return nil, nil, fmt.Errorf("ingest: wal segment %s has an unreadable or inconsistent header (not a crash artifact; refusing to truncate): %w", path, derr)
			}
			// Torn tail of the active segment: truncate back to the last
			// complete frame. The bytes being dropped were never
			// acknowledged (acks happen after fsync of a complete frame).
			if err := fsys.Truncate(path, valid); err != nil {
				return nil, nil, fmt.Errorf("ingest: truncating torn wal tail of %s: %w", path, err)
			}
		}
		points = append(points, pts...)
		w.count += uint64(len(pts))
		if last {
			w.segSeq = wantSeq
			w.segPath = path
			w.segBytes = valid
		} else {
			w.prevBytes += valid
		}
	}
	seg, err := openSync(w.fs, w.segPath)
	if err != nil {
		return nil, nil, err
	}
	w.seg = seg
	return w, points, nil
}

// readSegment decodes one segment, returning its points and the byte length
// of the valid prefix (header + complete frames). A non-nil error reports
// where decoding stopped; for the last segment the caller truncates there.
func (w *WAL) readSegment(path string, wantSeq, wantFirst uint64) (pts []psd.Point, valid int64, err error) {
	f, err := w.fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	seq, first, err := parseSegmentHeader(data)
	if err != nil {
		// Headers are written and fsync'd before the rename that makes a
		// segment visible, so a bad header is never a crash artifact.
		return nil, 0, fmt.Errorf("ingest: %s: %w", path, err)
	}
	if seq != wantSeq || first != wantFirst {
		return nil, 0, fmt.Errorf("ingest: %s: header says seq=%d first=%d, replay expects seq=%d first=%d",
			path, seq, first, wantSeq, wantFirst)
	}
	pts, n, derr := decodeFrames(data[segHeaderLen:])
	valid = segHeaderLen + int64(n)
	if derr != nil {
		return pts, valid, fmt.Errorf("at byte %d: %w", valid, derr)
	}
	return pts, valid, nil
}

// parseSegmentHeader validates the 24-byte segment header.
func parseSegmentHeader(data []byte) (seq, firstIndex uint64, err error) {
	if len(data) < segHeaderLen {
		return 0, 0, fmt.Errorf("segment shorter than its header (%d bytes)", len(data))
	}
	if string(data[:8]) != segMagic {
		return 0, 0, fmt.Errorf("bad segment magic %q", data[:8])
	}
	return binary.LittleEndian.Uint64(data[8:16]), binary.LittleEndian.Uint64(data[16:24]), nil
}

// decodeFrames scans a segment's frame region, returning every point of
// every complete, checksum-valid frame and the byte count of that valid
// prefix. err is nil iff the region ends exactly on a frame boundary;
// otherwise it describes the torn or corrupt tail (whose bytes are NOT
// counted in valid).
func decodeFrames(data []byte) (pts []psd.Point, valid int, err error) {
	for valid < len(data) {
		rest := data[valid:]
		if len(rest) < frameLenBytes {
			return pts, valid, fmt.Errorf("torn frame length (%d bytes)", len(rest))
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen == 0 || plen > maxFramePayload || plen%pointLen != 0 {
			return pts, valid, fmt.Errorf("bad frame payload length %d", plen)
		}
		total := frameLenBytes + plen + frameCRCBytes
		if len(rest) < total {
			return pts, valid, fmt.Errorf("torn frame (%d of %d bytes)", len(rest), total)
		}
		want := binary.LittleEndian.Uint64(rest[frameLenBytes+plen:])
		if crc64.Checksum(rest[:frameLenBytes+plen], walCRCTable) != want {
			return pts, valid, fmt.Errorf("frame checksum mismatch")
		}
		payload := rest[frameLenBytes : frameLenBytes+plen]
		for o := 0; o < plen; o += pointLen {
			pts = append(pts, psd.Point{
				X: float64frombits(binary.LittleEndian.Uint64(payload[o:])),
				Y: float64frombits(binary.LittleEndian.Uint64(payload[o+8:])),
			})
		}
		valid += total
	}
	return pts, valid, nil
}

// encodeFrame appends one frame holding pts to buf.
func encodeFrame(buf []byte, pts []psd.Point) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pts)*pointLen))
	for _, p := range pts {
		buf = binary.LittleEndian.AppendUint64(buf, float64bits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, float64bits(p.Y))
	}
	return binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf[start:], walCRCTable))
}

// createSegment makes segment seq visible with the atomicfile rename
// discipline and makes it the active append target. The append handle is
// opened on the temp file and KEPT across the rename (the handle follows
// the file, not the name): the rename is the single commit point, so a
// rotation either fully happens or leaves the old segment active — there is
// no window where a fresh segment is visible but the writer still appends
// to the old one, which would desynchronize the new segment's first-index
// from the stream and strand acknowledged points behind it.
func (w *WAL) createSegment(seq, firstIndex uint64) error {
	final := filepath.Join(w.dir, segName(seq))
	tmp := filepath.Join(w.dir, fmt.Sprintf(".wal-%016d.tmp", seq))
	_ = w.fs.Remove(tmp)
	tw, err := openSync(w.fs, tmp)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], firstIndex)
	if _, err := tw.Write(hdr[:]); err != nil {
		_ = tw.Close() // the write error wins; the temp segment is discarded
		_ = w.fs.Remove(tmp)
		return err
	}
	if err := tw.Sync(); err != nil {
		_ = tw.Close()
		_ = w.fs.Remove(tmp)
		return err
	}
	if err := w.fs.Rename(tmp, final); err != nil {
		_ = tw.Close()
		_ = w.fs.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Best-effort on filesystems that
	// refuse directory fsync; the header bytes are already safe.
	_ = w.fs.SyncDir(w.dir)
	if w.seg != nil {
		// The outgoing segment's bytes were fsynced by the Append that
		// filled it; its close has nothing left to lose.
		_ = w.seg.Close()
		w.prevBytes += w.segBytes
	}
	w.seg, w.segPath, w.segSeq, w.segBytes = tw, final, seq, segHeaderLen
	return nil
}

// Append writes pts as one or more checksummed frames and fsyncs them.
// Only a nil return acknowledges the points: on any write or sync failure
// the tail is rolled back to the pre-call frame boundary (self-healing
// truncation), so the durable log never contains a partially-acknowledged
// batch; if even the rollback fails the WAL turns itself off (broken) —
// reopening recovers. Rotation to a fresh segment happens after a
// successful append that filled the active segment; a failed rotation is
// retried on the next append and never un-acknowledges data.
func (w *WAL) Append(pts []psd.Point) error {
	if w.broken != nil {
		return fmt.Errorf("ingest: wal is offline after an unrecovered append failure: %w", w.broken)
	}
	if len(pts) == 0 {
		return nil
	}
	buf := w.frameBuf[:0]
	for off := 0; off < len(pts); off += maxFramePoints {
		end := min(off+maxFramePoints, len(pts))
		buf = encodeFrame(buf, pts[off:end])
	}
	w.frameBuf = buf
	start := w.segBytes
	if _, err := w.seg.Write(buf); err != nil {
		return w.rollback(start, fmt.Errorf("ingest: wal append: %w", err))
	}
	if err := w.seg.Sync(); err != nil {
		// The bytes may or may not have reached the disk; either way they
		// are unacknowledged, so remove them to keep log == acked stream.
		return w.rollback(start, fmt.Errorf("ingest: wal sync: %w", err))
	}
	w.segBytes += int64(len(buf))
	w.count += uint64(len(pts))
	if w.segBytes >= w.maxSegBytes {
		// Rotation failure is not an append failure: the points are durable
		// and acknowledged; the oversized segment just keeps accepting until
		// a later rotation succeeds.
		_ = w.createSegment(w.segSeq+1, w.count)
	}
	return nil
}

// rollback restores the active segment to the pre-append frame boundary
// after a failed write or sync. If the tail cannot be restored the WAL
// marks itself broken: nothing further can be safely acknowledged until a
// reopen re-runs recovery.
func (w *WAL) rollback(to int64, cause error) error {
	_ = w.seg.Close() // cause (the failed append) wins; the tail is truncated next
	if err := w.fs.Truncate(w.segPath, to); err != nil {
		w.broken = fmt.Errorf("%w (and tail rollback failed: %v)", cause, err)
		return w.broken
	}
	seg, err := openSync(w.fs, w.segPath)
	if err != nil {
		w.broken = fmt.Errorf("%w (and reopen after rollback failed: %v)", cause, err)
		return w.broken
	}
	w.seg = seg
	return cause
}

// Count returns the total acknowledged points.
func (w *WAL) Count() uint64 { return w.count }

// Segments returns the number of visible segment files.
func (w *WAL) Segments() uint64 { return w.segSeq }

// Bytes returns the durable log size (valid bytes across all segments).
func (w *WAL) Bytes() int64 { return w.prevBytes + w.segBytes }

// Broken reports the sticky failure state, nil when healthy.
func (w *WAL) Broken() error { return w.broken }

// Close releases the active segment handle.
func (w *WAL) Close() error {
	if w.seg == nil {
		return nil
	}
	err := w.seg.Close()
	w.seg = nil
	return err
}

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
