package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"sort"
	"time"
)

// The versions journal is the publish-cycle commit log. Each publication
// walks a fixed durable order:
//
//  1. intent record     — version, point count P, seed, ε   (fsync)
//  2. ledger charge     — ε recorded in the privacy ledger  (fsync)
//  3. deterministic build over the first P WAL points with the recorded seed
//  4. atomic artifact publish (name@vN.bin via tmp+fsync+rename)
//  5. published record  — artifact CRC and size             (fsync)
//
// A crash between any two steps leaves a pending intent (an intent with no
// published record). Because the build is a pure function of (P, seed, ε)
// and the WAL durably holds at least P points (the intent is written only
// after they were acknowledged), recovery can always roll FORWARD: re-charge
// if the ledger lacks the version's label, rebuild, republish — and the
// artifact is byte-identical to what the uncrashed run would have produced.
// The ledger is charged before the artifact is visible, so no published
// release can ever be un-charged; the worst crash outcome is a charged,
// never-visible epoch — over-counting, the safe direction.
//
// Journal lines use the same framed discipline as the privacy ledger:
//
//	PSDJ1 <crc64-hex> <json>\n
//
// with torn-tail truncation on open and a loud failure on mid-file
// corruption.
const journalLinePrefix = "PSDJ1 "

var journalCRCTable = crc64.MakeTable(crc64.ECMA)

// artifactCRCTable fingerprints published artifacts. It deliberately uses a
// DIFFERENT polynomial (ISO) than the CRC-64/ECMA checksum the v3 artifact
// embeds in its own footer: a CRC taken over a message that ends with that
// message's own CRC (same polynomial) collapses to a fixed residue constant,
// the same for EVERY valid artifact — useless for telling two different
// releases apart. With a distinct polynomial the fingerprint is a real
// function of the bytes, so the verify audit's three-way bit-compare
// (journal vs rebuild vs on-disk) actually discriminates.
var artifactCRCTable = crc64.MakeTable(crc64.ISO)

// Journal phases.
const (
	phaseIntent    = "intent"
	phasePublished = "published"
	// phaseAbandoned closes out an intent that can never complete (for
	// example the budget was shrunk below its ε between runs). Recovery
	// writes it so the pending set converges instead of retrying forever.
	phaseAbandoned = "abandoned"
)

// VersionRecord is the JSON shape of one journal line.
type VersionRecord struct {
	Seq     uint64    `json:"seq"`
	Version int       `json:"version"`
	Phase   string    `json:"phase"`
	Points  uint64    `json:"points,omitempty"`
	Seed    int64     `json:"seed,omitempty"`
	Eps     float64   `json:"eps,omitempty"`
	CRC64   string    `json:"crc64,omitempty"`
	Bytes   int64     `json:"bytes,omitempty"`
	Reason  string    `json:"reason,omitempty"`
	At      time.Time `json:"at"`
}

// versionState is the replayed fate of one version.
type versionState struct {
	intent    VersionRecord
	published *VersionRecord
	abandoned bool
}

// Journal is the open versions journal.
type Journal struct {
	path     string
	f        *os.File
	seq      uint64
	versions map[int]*versionState
	maxVer   int
}

// OpenJournal opens (creating if absent) the versions journal at path and
// replays it. Torn final lines are truncated; corruption with complete
// records following fails loudly (acknowledged publish history would be
// unreadable).
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, versions: make(map[int]*versionState)}
	if err := j.replay(); err != nil {
		_ = f.Close() // the replay error wins; nothing was written yet
		return nil, err
	}
	return j, nil
}

func (j *Journal) replay() error {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return err
	}
	valid := 0
	for len(data) > valid {
		rest := data[valid:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break
		}
		rec, err := parseJournalLine(rest[:nl])
		if err != nil {
			if bytes.IndexByte(rest[nl+1:], '\n') >= 0 {
				return fmt.Errorf("ingest: versions journal %s corrupt at byte %d (records follow): %v", j.path, valid, err)
			}
			break
		}
		if err := j.apply(rec); err != nil {
			return fmt.Errorf("ingest: versions journal %s replay: %w", j.path, err)
		}
		valid += nl + 1
	}
	if valid < len(data) {
		if err := j.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("ingest: versions journal %s: truncating torn tail: %w", j.path, err)
		}
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	if _, err := j.f.Seek(int64(valid), 0); err != nil {
		return err
	}
	return nil
}

func parseJournalLine(line []byte) (VersionRecord, error) {
	var rec VersionRecord
	if !bytes.HasPrefix(line, []byte(journalLinePrefix)) {
		return rec, fmt.Errorf("bad line prefix")
	}
	rest := line[len(journalLinePrefix):]
	sp := bytes.IndexByte(rest, ' ')
	if sp != 16 {
		return rec, fmt.Errorf("bad checksum field")
	}
	var want uint64
	if _, err := fmt.Sscanf(string(rest[:sp]), "%016x", &want); err != nil {
		return rec, fmt.Errorf("bad checksum: %v", err)
	}
	payload := rest[sp+1:]
	if crc64.Checksum(payload, journalCRCTable) != want {
		return rec, fmt.Errorf("checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("bad record json: %v", err)
	}
	return rec, nil
}

func (j *Journal) apply(rec VersionRecord) error {
	if rec.Seq != j.seq+1 {
		return fmt.Errorf("record %d out of sequence (want %d)", rec.Seq, j.seq+1)
	}
	st := j.versions[rec.Version]
	switch rec.Phase {
	case phaseIntent:
		if st != nil {
			return fmt.Errorf("duplicate intent for v%d", rec.Version)
		}
		if rec.Version <= j.maxVer {
			return fmt.Errorf("intent for v%d not above max version v%d", rec.Version, j.maxVer)
		}
		j.versions[rec.Version] = &versionState{intent: rec}
		j.maxVer = rec.Version
	case phasePublished:
		if st == nil || st.published != nil || st.abandoned {
			return fmt.Errorf("published record for v%d without a matching open intent", rec.Version)
		}
		r := rec
		st.published = &r
	case phaseAbandoned:
		if st == nil || st.published != nil {
			return fmt.Errorf("abandoned record for v%d without a matching open intent", rec.Version)
		}
		st.abandoned = true
	default:
		return fmt.Errorf("unknown phase %q", rec.Phase)
	}
	j.seq = rec.Seq
	return nil
}

// appendRecord frames, appends, and fsyncs one record.
func (j *Journal) appendRecord(rec VersionRecord) error {
	rec.Seq = j.seq + 1
	rec.At = time.Now().UTC()
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%s%016x %s\n", journalLinePrefix, crc64.Checksum(payload, journalCRCTable), payload)
	if _, err := j.f.WriteString(line); err != nil {
		return fmt.Errorf("ingest: versions journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ingest: versions journal sync: %w", err)
	}
	return j.apply(rec)
}

// Intent durably records the decision to publish version v over the first
// points WAL points with the given seed and ε. It must precede the ledger
// charge: a crash after the charge can then still find (points, seed) and
// complete the exact same build.
func (j *Journal) Intent(v int, points uint64, seed int64, eps float64) error {
	return j.appendRecord(VersionRecord{Version: v, Phase: phaseIntent, Points: points, Seed: seed, Eps: eps})
}

// Published durably records that version v's artifact is visible, with its
// checksum and size.
func (j *Journal) Published(v int, crcHex string, size int64) error {
	return j.appendRecord(VersionRecord{Version: v, Phase: phasePublished, CRC64: crcHex, Bytes: size})
}

// Abandon durably closes out an uncompletable intent.
func (j *Journal) Abandon(v int, reason string) error {
	return j.appendRecord(VersionRecord{Version: v, Phase: phaseAbandoned, Reason: reason})
}

// NextVersion returns the version number a new intent must use: one above
// every version ever intended (published, pending, or abandoned — numbers
// are never reused, so seeds never collide).
func (j *Journal) NextVersion() int { return j.maxVer + 1 }

// Pending returns the intents with neither a published nor an abandoned
// record, in version order — what recovery must complete.
func (j *Journal) Pending() []VersionRecord {
	var out []VersionRecord
	for _, st := range j.versions {
		if st.published == nil && !st.abandoned {
			out = append(out, st.intent)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Version < out[b].Version })
	return out
}

// PublishedVersions returns the published records in version order.
func (j *Journal) PublishedVersions() []VersionRecord {
	var out []VersionRecord
	for _, st := range j.versions {
		if st.published != nil {
			r := *st.published
			r.Points, r.Seed, r.Eps = st.intent.Points, st.intent.Seed, st.intent.Eps
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Version < out[b].Version })
	return out
}

// Latest returns the highest published version's record (with the intent's
// points/seed/ε folded in) and ok=false if nothing is published yet.
func (j *Journal) Latest() (VersionRecord, bool) {
	pubs := j.PublishedVersions()
	if len(pubs) == 0 {
		return VersionRecord{}, false
	}
	return pubs[len(pubs)-1], true
}

// Close releases the journal file handle.
func (j *Journal) Close() error { return j.f.Close() }
