package ingest

import (
	"testing"
)

// FuzzDecodeFrames hammers the WAL segment frame decoder with arbitrary
// bytes. The decoder is the trust boundary of recovery — whatever a crash
// (or a flipped bit, or an adversarial file) left on disk flows through it —
// so the invariants are absolute: never panic, never count invalid bytes as
// valid, and be a fixpoint on its own valid prefix (decoding data[:valid]
// again yields the same points and a clean boundary — which is exactly what
// the torn-tail truncation relies on).
func FuzzDecodeFrames(f *testing.F) {
	// Seed with well-formed frame sequences and their torn/corrupt variants.
	var buf []byte
	buf = encodeFrame(buf, testPoints(1, 0.25))
	buf = encodeFrame(buf, testPoints(3, 0.5))
	f.Add(append([]byte(nil), buf...))
	for _, cut := range []int{1, frameLenBytes, len(buf) / 2, len(buf) - 1} {
		f.Add(append([]byte(nil), buf[:cut]...))
	}
	flipped := append([]byte(nil), buf...)
	flipped[frameLenBytes+7] ^= 0x80
	f.Add(flipped)
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	f.Add(huge)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		pts, valid, err := decodeFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of range [0, %d]", valid, len(data))
		}
		if err == nil && valid != len(data) {
			t.Fatalf("clean decode stopped early: valid %d of %d", valid, len(data))
		}
		if err != nil && valid == len(data) {
			t.Fatal("decoder consumed everything but still reported a tail error")
		}
		// Every decoded point costs at least pointLen bytes of valid frame.
		if len(pts)*pointLen > valid {
			t.Fatalf("%d points from %d valid bytes", len(pts), valid)
		}
		// Fixpoint: the valid prefix must re-decode to exactly the same
		// points with no error — recovery truncates to this boundary and
		// then trusts it.
		pts2, valid2, err2 := decodeFrames(data[:valid])
		if err2 != nil || valid2 != valid || len(pts2) != len(pts) {
			t.Fatalf("valid prefix is not a fixpoint: err=%v valid=%d/%d points=%d/%d",
				err2, valid2, valid, len(pts2), len(pts))
		}
		// Bit-compare (frames may legitimately carry NaN payloads, where ==
		// would lie).
		for i := range pts {
			if float64bits(pts[i].X) != float64bits(pts2[i].X) ||
				float64bits(pts[i].Y) != float64bits(pts2[i].Y) {
				t.Fatalf("point %d changed on re-decode: %v vs %v", i, pts[i], pts2[i])
			}
		}
	})
}
