package ingest

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
)

// FS is the ingest tier's filesystem seam: every byte the WAL writes or
// replays flows through it. Production uses the real filesystem (osFS); the
// fault suite swaps in faultfs.FS (which implements this interface
// structurally) to make appends tear, fsyncs fail, and rotations refuse —
// deterministically, under -race.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent. The
	// returned writer must also implement Sync() error (fsync); the WAL
	// checks once at open time and refuses a seam that cannot sync, because
	// an unsyncable WAL cannot acknowledge anything.
	OpenAppend(name string) (io.WriteCloser, error)
	Open(name string) (io.ReadCloser, error)
	Stat(name string) (iofs.FileInfo, error)
	Glob(pattern string) ([]string, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and creations in it
	// durable.
	SyncDir(dir string) error
}

// syncer is the fsync capability OpenAppend's writer must carry.
type syncer interface{ Sync() error }

// syncWriter is an append handle whose Sync capability has been verified.
type syncWriter struct {
	io.WriteCloser
	syncer
}

// openSync opens name for appending through fsys and verifies the handle
// can fsync.
func openSync(fsys FS, name string) (*syncWriter, error) {
	w, err := fsys.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	s, ok := w.(syncer)
	if !ok {
		_ = w.Close() // nothing was written through the handle
		return nil, fmt.Errorf("ingest: filesystem seam's append handle for %s cannot fsync", name)
	}
	return &syncWriter{WriteCloser: w, syncer: s}, nil
}

// osFS is the real filesystem, the default seam.
type osFS struct{}

func (osFS) OpenAppend(name string) (io.WriteCloser, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}
func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }
func (osFS) Stat(name string) (iofs.FileInfo, error) { return os.Stat(name) }
func (osFS) Glob(pattern string) ([]string, error)   { return filepath.Glob(pattern) }
func (osFS) Rename(oldpath, newpath string) error    { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error  { return os.Truncate(name, size) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
