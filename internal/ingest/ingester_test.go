package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"psd"
)

func testConfig(t *testing.T, root string) Config {
	t.Helper()
	return Config{
		Name:         "taxi",
		StateDir:     filepath.Join(root, "state"),
		PublishDir:   filepath.Join(root, "pub"),
		Domain:       psd.NewRect(0, 0, 1, 1),
		Build:        psd.Options{Height: 3, Seed: 42},
		Budget:       10,
		EpochEpsilon: 1,
	}
}

func mustIngest(t *testing.T, in *Ingester, pts []psd.Point) {
	t.Helper()
	if _, err := in.Ingest(pts); err != nil {
		t.Fatal(err)
	}
}

func artifactBytes(t *testing.T, cfg Config, v int) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(cfg.PublishDir, fmt.Sprintf("%s@v%d.bin", cfg.Name, v)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// referenceRun publishes two versions with no faults and returns the two
// artifacts — the byte-identicality baseline every crash scenario must hit.
func referenceRun(t *testing.T) (v1, v2 []byte) {
	t.Helper()
	cfg := testConfig(t, t.TempDir())
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	mustIngest(t, in, testPoints(100, 0.1))
	if _, err := in.Publish(TriggerManual); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, in, testPoints(50, 0.5))
	if _, err := in.Publish(TriggerManual); err != nil {
		t.Fatal(err)
	}
	return artifactBytes(t, cfg, 1), artifactBytes(t, cfg, 2)
}

// TestIngesterPublishDeterminism pins the foundation of crash recovery:
// identical WAL contents and config produce bit-identical releases.
func TestIngesterPublishDeterminism(t *testing.T) {
	a1, a2 := referenceRun(t)
	b1, b2 := referenceRun(t)
	if !equalBytes(a1, b1) || !equalBytes(a2, b2) {
		t.Fatal("two identical runs produced different release bytes")
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIngesterCrashRecoveryMatrix simulates a crash after EVERY durable step
// of the publish cycle and checks recovery completes the publication with
// byte-identical output, exactly one epoch charged, and the next version
// still publishable.
func TestIngesterCrashRecoveryMatrix(t *testing.T) {
	ref1, ref2 := referenceRun(t)
	for _, step := range []string{"intent", "charge", "build", "artifact"} {
		t.Run(step, func(t *testing.T) {
			cfg := testConfig(t, t.TempDir())
			in, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mustIngest(t, in, testPoints(100, 0.1))
			in.failpoint = func(s string) error {
				if s == step {
					return errors.New("simulated crash at " + s)
				}
				return nil
			}
			if _, err := in.Publish(TriggerManual); err == nil {
				t.Fatal("publish survived its simulated crash")
			}
			// Wedged: further publishes refuse until restart.
			if _, err := in.Publish(TriggerManual); err == nil {
				t.Fatal("wedged ingester accepted a publish")
			}
			if s := in.Stats(); s.Wedged == "" {
				t.Fatal("stats hide the wedged state")
			}
			in.Close()

			// "Restart": recovery must roll the cycle forward.
			in2, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer in2.Close()
			s := in2.Stats()
			if s.LatestVersion != 1 {
				t.Fatalf("recovered latest version = %d, want 1", s.LatestVersion)
			}
			if s.Recovered != 1 {
				t.Fatalf("Recovered = %d, want 1", s.Recovered)
			}
			if s.Spent != 1 {
				t.Fatalf("Spent = %v, want exactly one epoch (no double charge)", s.Spent)
			}
			if got := artifactBytes(t, cfg, 1); !equalBytes(got, ref1) {
				t.Fatal("recovered v1 differs from the uncrashed run's bytes")
			}
			// Life goes on: v2 publishes and matches the reference too.
			mustIngest(t, in2, testPoints(50, 0.5))
			if _, err := in2.Publish(TriggerManual); err != nil {
				t.Fatal(err)
			}
			if got := artifactBytes(t, cfg, 2); !equalBytes(got, ref2) {
				t.Fatal("post-recovery v2 differs from the uncrashed run's bytes")
			}
			if s := in2.Stats(); s.Spent != 2 {
				t.Fatalf("Spent after v2 = %v, want 2", s.Spent)
			}
		})
	}
}

// TestIngesterDoubleCrash crashes the publish AND then the recovery, then
// recovers for real: completion must still be exact and single-charged.
func TestIngesterDoubleCrash(t *testing.T) {
	ref1, _ := referenceRun(t)
	cfg := testConfig(t, t.TempDir())
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, in, testPoints(100, 0.1))
	in.failpoint = func(s string) error {
		if s == "charge" {
			return errors.New("crash 1")
		}
		return nil
	}
	if _, err := in.Publish(TriggerManual); err == nil {
		t.Fatal("publish survived crash 1")
	}
	in.Close()

	// Recovery attempt that itself crashes right after the (idempotent)
	// charge check, before the rebuild finishes its publish.
	if _, err := openWithFailpoint(cfg, "build", errors.New("crash 2")); err == nil {
		t.Fatal("recovery survived crash 2")
	}

	in3, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in3.Close()
	s := in3.Stats()
	if s.LatestVersion != 1 || s.Spent != 1 {
		t.Fatalf("after double crash: version %d spent %v, want 1 and 1", s.LatestVersion, s.Spent)
	}
	if got := artifactBytes(t, cfg, 1); !equalBytes(got, ref1) {
		t.Fatal("double-crash recovery produced different bytes")
	}
}

// openWithFailpoint opens an ingester whose recovery runs under a failpoint.
func openWithFailpoint(cfg Config, step string, fail error) (*Ingester, error) {
	// Recovery runs inside Open, so the failpoint has to be planted by the
	// recovery path itself: replicate Open's wiring with the hook set.
	in, err := openNoRecover(cfg)
	if err != nil {
		return nil, err
	}
	in.failpoint = func(s string) error {
		if s == step {
			return fail
		}
		return nil
	}
	if err := in.recover(); err != nil {
		in.Close()
		return nil, err
	}
	in.failpoint = nil
	return in, nil
}

// TestIngesterBudgetExhaustion: once the ledger cannot fund another epoch,
// publishing refuses (durably, across restarts) while ingest keeps working
// and the last release stays published.
func TestIngesterBudgetExhaustion(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Budget = 2.5 // funds exactly two 1.0 epochs
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, in, testPoints(10, 0.1))
	if _, err := in.Publish(TriggerManual); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, in, testPoints(10, 0.2))
	if _, err := in.Publish(TriggerManual); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, in, testPoints(10, 0.3))
	if _, err := in.Publish(TriggerManual); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("third epoch: got %v, want ErrBudgetExhausted", err)
	}
	s := in.Stats()
	if !s.BudgetExhausted || s.Refused != 1 {
		t.Fatalf("stats: exhausted=%v refused=%d", s.BudgetExhausted, s.Refused)
	}
	// Ingest still works; nothing about the refusal was recorded durably.
	mustIngest(t, in, testPoints(5, 0.4))
	in.Close()

	in2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	s = in2.Stats()
	if s.LatestVersion != 2 || !s.BudgetExhausted {
		t.Fatalf("after restart: version=%d exhausted=%v", s.LatestVersion, s.BudgetExhausted)
	}
	if s.Points != 35 {
		t.Fatalf("Points = %d, want 35", s.Points)
	}
	if _, err := in2.Publish(TriggerManual); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-restart publish: got %v, want ErrBudgetExhausted", err)
	}
	if _, err := os.Stat(filepath.Join(cfg.PublishDir, "taxi@v2.bin")); err != nil {
		t.Fatal("last release vanished:", err)
	}
}

// TestIngesterTriggers pins the cadence semantics.
func TestIngesterTriggers(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.RebuildCount = 10
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if _, err := in.Publish(TriggerInterval); !errors.Is(err, ErrNoNewPoints) {
		t.Fatalf("empty interval publish: %v", err)
	}
	mustIngest(t, in, testPoints(5, 0.1))
	if _, err := in.Publish(TriggerCount); !errors.Is(err, ErrNoTrigger) {
		t.Fatalf("5 < 10 points must not trigger: %v", err)
	}
	if _, err := in.Publish(TriggerInterval); err != nil {
		t.Fatalf("interval publish with new points: %v", err)
	}
	mustIngest(t, in, testPoints(10, 0.2))
	if _, err := in.Publish(TriggerCount); err != nil {
		t.Fatalf("10 ≥ 10 points must trigger: %v", err)
	}
	if _, err := in.Publish(TriggerManual); !errors.Is(err, ErrNoNewPoints) {
		t.Fatalf("manual republish with no new points: %v", err)
	}
}

// TestIngesterKeepPruning: only the newest Keep artifacts survive; the
// journal still remembers everything.
func TestIngesterKeepPruning(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Keep = 2
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	for i := 0; i < 4; i++ {
		mustIngest(t, in, testPoints(10, float64(i)))
		if _, err := in.Publish(TriggerManual); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v <= 4; v++ {
		_, err := os.Stat(filepath.Join(cfg.PublishDir, fmt.Sprintf("taxi@v%d.bin", v)))
		if kept := v > 2; kept != (err == nil) {
			t.Fatalf("v%d: kept=%v stat err=%v", v, kept, err)
		}
	}
	if s := in.Stats(); s.Published != 4 || s.LatestVersion != 4 {
		t.Fatalf("history lost: published=%d latest=%d", s.Published, s.LatestVersion)
	}
}

// TestIngesterRejectsNonFinite: NaN/Inf points never reach the WAL.
func TestIngesterRejectsNonFinite(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	bad := []psd.Point{{X: 0.5, Y: 0.5}, {X: nan(), Y: 0.1}}
	if _, err := in.Ingest(bad); !errors.Is(err, ErrBadPoint) {
		t.Fatalf("NaN point: got %v, want an ErrBadPoint (the daemon's 400-vs-500 classifier)", err)
	}
	if s := in.Stats(); s.Points != 0 {
		t.Fatalf("partial batch reached the WAL: %d points", s.Points)
	}
}

func nan() float64 {
	var z float64
	return z / z
}

// TestIngesterAbandonOnShrunkBudget: a pending intent whose ε the (now
// smaller) budget cannot fund is durably abandoned, and the ingester keeps
// working instead of retrying forever.
func TestIngesterAbandonOnShrunkBudget(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, in, testPoints(10, 0.1))
	in.failpoint = func(s string) error {
		if s == "intent" {
			return errors.New("crash before charge")
		}
		return nil
	}
	if _, err := in.Publish(TriggerManual); err == nil {
		t.Fatal("publish survived simulated crash")
	}
	in.Close()

	// Restart with a budget below one epoch: the pending v1 cannot be funded.
	cfg.Budget = 0.5
	in2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := in2.Stats()
	if s.LatestVersion != 0 || s.Spent != 0 {
		t.Fatalf("abandoned intent leaked: version=%d spent=%v", s.LatestVersion, s.Spent)
	}
	in2.Close()
	// And the abandonment is durable — a third open has nothing pending.
	in3, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in3.Close()
	if s := in3.Stats(); s.Recovered != 0 {
		t.Fatalf("abandoned intent re-recovered: %d", s.Recovered)
	}
}

// TestIngesterIngestDuringPublish pins the lock-scope contract: the rebuild
// and artifact serialization run outside the ingest mutex, so /ingest
// appends (and their durability acks) proceed while a publish is in flight
// instead of stalling for the full build. The build failpoint fires
// mid-cycle, after the point snapshot was taken; an Ingest issued there
// must complete promptly, and the published artifact must cover exactly the
// snapshot, not the late arrivals.
func TestIngesterIngestDuringPublish(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	mustIngest(t, in, testPoints(100, 0.1))
	in.failpoint = func(s string) error {
		if s != "build" {
			return nil
		}
		done := make(chan error, 1)
		go func() {
			_, err := in.Ingest(testPoints(5, 0.9))
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("mid-publish ingest failed: %v", err)
			}
			return nil
		case <-time.After(10 * time.Second):
			return errors.New("mid-publish ingest blocked behind the build")
		}
	}
	res, err := in.Publish(TriggerManual)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 100 {
		t.Fatalf("published %d points, want the 100-point snapshot", res.Points)
	}
	if s := in.Stats(); s.Points != 105 || s.PendingPoints != 5 {
		t.Fatalf("points=%d pending=%d, want 105 and 5", s.Points, s.PendingPoints)
	}
}

// TestIngesterUnlimitedBudget pins the daemon's default configuration: a
// non-positive budget means unlimited — publishing is never refused for
// budget reasons (the old behavior read 0 as "no spending permitted", so a
// default-flags daemon could never publish), spend is still recorded, and
// the stats snapshot stays JSON-encodable (no +Inf leaking out).
func TestIngesterUnlimitedBudget(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Budget = 0
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	for i := 0; i < 3; i++ {
		mustIngest(t, in, testPoints(10, float64(i)))
		if _, err := in.Publish(TriggerManual); err != nil {
			t.Fatalf("publish %d under an unlimited budget refused: %v", i+1, err)
		}
	}
	s := in.Stats()
	if s.BudgetExhausted {
		t.Fatal("unlimited budget reported exhausted")
	}
	if s.Budget != 0 || s.Remaining != 0 {
		t.Fatalf("unlimited budget must report the 0-means-unlimited convention, got budget=%v remaining=%v", s.Budget, s.Remaining)
	}
	if s.Spent != 3 {
		t.Fatalf("Spent = %v, want 3 (charges are still recorded)", s.Spent)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("stats snapshot not JSON-encodable: %v", err)
	}
}

// TestArtifactFingerprintDiscriminates guards against a subtle CRC footgun:
// the v3 artifact ends with its own CRC-64/ECMA, and a CRC taken with the
// SAME polynomial over message+CRC collapses to one residue constant for
// every valid artifact. The journal fingerprint must therefore use a
// different polynomial — two different releases must carry different
// fingerprints, or the verify audit proves nothing.
func TestArtifactFingerprintDiscriminates(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	mustIngest(t, in, testPoints(100, 0.1))
	r1, err := in.Publish(TriggerManual)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, in, testPoints(50, 0.5))
	r2, err := in.Publish(TriggerManual)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CRC64 == r2.CRC64 {
		t.Fatalf("v1 and v2 share fingerprint %s: the polynomial is degenerate over self-checksummed artifacts", r1.CRC64)
	}
	checks, err := in.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.OK {
			t.Fatalf("verify: %+v", c)
		}
	}
}
