package ingest

import (
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"psd"
	"psd/internal/atomicfile"
	"psd/internal/dp"
)

// Trigger says why a publish is being attempted; it decides how many new
// points are required before one actually runs.
type Trigger int

const (
	// TriggerCount publishes only when at least Config.RebuildCount points
	// arrived since the latest version (the count cadence).
	TriggerCount Trigger = iota
	// TriggerInterval publishes when ANY new points arrived (the time
	// cadence — driven by the daemon's ticker).
	TriggerInterval
	// TriggerManual is an operator-requested publish; it too requires new
	// points (republishing an identical dataset would burn ε for nothing).
	TriggerManual
)

// Sentinel errors the daemon maps onto HTTP statuses.
var (
	// ErrNoTrigger: the count cadence has not accumulated enough new points.
	ErrNoTrigger = errors.New("ingest: not enough new points to trigger a rebuild")
	// ErrNoNewPoints: nothing new since the latest version.
	ErrNoNewPoints = errors.New("ingest: no new points since the latest version")
	// ErrBudgetExhausted: the per-name ε budget cannot fund another epoch.
	// Ingesting and serving the last release continue; publishing refuses.
	ErrBudgetExhausted = errors.New("ingest: privacy budget exhausted: refusing to publish a new version")
	// ErrBadPoint: the batch contains a non-finite coordinate and was
	// rejected whole before anything reached the WAL — the client's fault
	// (HTTP 400), unlike an append failure (HTTP 500).
	ErrBadPoint = errors.New("ingest: batch rejected: non-finite coordinates")
)

// Config configures an Ingester.
type Config struct {
	// Name is the release name; versions publish as Name@vN.bin.
	Name string
	// StateDir holds the WAL directory, the privacy ledger, and the
	// versions journal — everything recovery needs.
	StateDir string
	// PublishDir is where release artifacts are atomically published
	// (typically a psdserve watch dir).
	PublishDir string
	// Domain is the data domain of every build.
	Domain psd.Rect
	// Build carries the decomposition options. Build.Seed is the BASE seed:
	// version v builds with Seed+v, so every version is deterministic (the
	// kill-recovery proof rests on this) yet draws fresh noise.
	// Build.Epsilon is ignored; EpochEpsilon funds each version.
	Build psd.Options
	// Budget is the total per-name ε the persistent ledger enforces. A
	// non-positive budget means UNLIMITED — every epoch is admitted and
	// publishing never refuses for budget reasons (spend is still recorded).
	Budget float64
	// EpochEpsilon is the ε charged for each published version.
	EpochEpsilon float64
	// RebuildCount triggers a publish every this-many new points (0
	// disables the count cadence).
	RebuildCount int
	// Keep retains this many published artifacts, pruning older ones
	// (0 keeps everything).
	Keep int
	// MaxSegmentBytes rotates WAL segments at this size (0 = default).
	MaxSegmentBytes int64
	// FS is the filesystem seam (nil = real filesystem).
	FS FS
	// Logger receives recovery and publish notes (nil = discard).
	Logger *log.Logger
}

// PublishResult describes one published version.
type PublishResult struct {
	Version int
	Points  uint64
	Seed    int64
	Eps     float64
	Path    string
	Bytes   int64
	CRC64   string
}

// Stats is a point-in-time snapshot for /stats and /metrics.
//
// An unlimited budget (Config.Budget <= 0) reports Budget and Remaining as
// 0 — the documented "0 = unlimited" wire convention, which also keeps the
// JSON encodable (the ledger's internal +Inf budget is not). Consumers must
// read BudgetExhausted, not Remaining, as the refusal signal.
type Stats struct {
	Name            string    `json:"name"`
	Points          uint64    `json:"points"`
	PendingPoints   uint64    `json:"pending_points"`
	WALSegments     uint64    `json:"wal_segments"`
	WALBytes        int64     `json:"wal_bytes"`
	WALBroken       bool      `json:"wal_broken"`
	Budget          float64   `json:"budget"`
	Spent           float64   `json:"spent"`
	Remaining       float64   `json:"remaining"`
	BudgetExhausted bool      `json:"budget_exhausted"`
	LatestVersion   int       `json:"latest_version"`
	LatestPoints    uint64    `json:"latest_points"`
	Published       uint64    `json:"published"`
	Recovered       uint64    `json:"recovered"`
	Refused         uint64    `json:"refused"`
	IngestErrors    uint64    `json:"ingest_errors"`
	Wedged          string    `json:"wedged,omitempty"`
	LastPublish     time.Time `json:"last_publish"`
}

// Ingester ties the tiers together: points go into the WAL (fsync before
// ack), publications walk the journal's durable five-step cycle, and every
// version is charged to the persistent ledger before its artifact becomes
// visible. Open replays everything and rolls incomplete publications
// forward, so a SIGKILL at any instant loses no acknowledged point and
// yields byte-identical releases on recovery.
type Ingester struct {
	cfg Config
	fs  FS
	log *log.Logger

	// pubMu serializes whole publish cycles (concurrent POST /publish
	// requests must not interleave intents). The build and artifact
	// serialization run under pubMu ONLY — mu is held just for the brief
	// shared-state reads and writes around them, so /ingest appends and
	// their durability acks never stall behind a rebuild.
	pubMu sync.Mutex

	mu      sync.Mutex
	wal     *WAL
	points  []psd.Point
	ledger  *dp.Ledger
	journal *Journal

	latestVersion int
	latestPoints  uint64
	published     uint64
	recovered     uint64
	refused       uint64
	ingestErrs    uint64
	lastPublish   time.Time
	// wedged records a mid-cycle publish failure. The crash-safety story is
	// restart-shaped: rather than improvise in-process repair of a
	// half-committed cycle, further publishes refuse until a restart re-runs
	// recovery (ingest and serving continue meanwhile).
	wedged error

	// failpoint, when set (fault tests only), runs after each durable step
	// of the publish cycle; returning an error simulates a crash there.
	failpoint func(step string) error
}

// versionLabel is the ledger label of one version's epoch charge.
func versionLabel(name string, v int) string { return fmt.Sprintf("%s@v%d", name, v) }

// artifactPath is where version v's release artifact lives.
func (in *Ingester) artifactPath(v int) string {
	return filepath.Join(in.cfg.PublishDir, fmt.Sprintf("%s@v%d.bin", in.cfg.Name, v))
}

// Open opens (creating if needed) the ingest state under cfg.StateDir,
// replays the WAL, ledger, and versions journal, and completes any publish
// cycle a crash interrupted.
func Open(cfg Config) (*Ingester, error) {
	in, err := openNoRecover(cfg)
	if err != nil {
		return nil, err
	}
	if err := in.recover(); err != nil {
		_ = in.Close() // the recovery error wins; state is re-replayed on reopen
		return nil, err
	}
	return in, nil
}

// openNoRecover does Open's state loading without the roll-forward pass —
// split out so fault tests can plant a failpoint inside recovery.
func openNoRecover(cfg Config) (*Ingester, error) {
	if cfg.Name == "" || cfg.StateDir == "" || cfg.PublishDir == "" {
		return nil, errors.New("ingest: Name, StateDir, and PublishDir are required")
	}
	if cfg.EpochEpsilon <= 0 || math.IsNaN(cfg.EpochEpsilon) || math.IsInf(cfg.EpochEpsilon, 0) {
		return nil, fmt.Errorf("ingest: invalid epoch epsilon %v", cfg.EpochEpsilon)
	}
	if cfg.FS == nil {
		cfg.FS = osFS{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	for _, dir := range []string{cfg.StateDir, cfg.PublishDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	wal, points, err := OpenWAL(filepath.Join(cfg.StateDir, "wal"), cfg.FS, cfg.MaxSegmentBytes)
	if err != nil {
		return nil, err
	}
	// A non-positive configured budget means unlimited. The accountant under
	// the ledger reads a non-positive budget as "no spending permitted", so
	// translate here: +Inf admits every finite epoch charge.
	budget := cfg.Budget
	if budget <= 0 {
		budget = math.Inf(1)
	}
	ledger, err := dp.OpenLedger(filepath.Join(cfg.StateDir, "ledger"), budget)
	if err != nil {
		_ = wal.Close() // the open error wins; nothing was appended yet
		return nil, err
	}
	journal, err := OpenJournal(filepath.Join(cfg.StateDir, "versions.log"))
	if err != nil {
		_ = wal.Close()
		_ = ledger.Close()
		return nil, err
	}
	in := &Ingester{cfg: cfg, fs: cfg.FS, log: logger, wal: wal, points: points, ledger: ledger, journal: journal}
	if latest, ok := journal.Latest(); ok {
		in.latestVersion, in.latestPoints = latest.Version, latest.Points
		in.published = uint64(len(journal.PublishedVersions()))
	}
	return in, nil
}

// recover rolls every pending publication forward. Each pending intent
// durably records (points P, seed, ε); the WAL holds at least P points (the
// intent was written only after their acks), the ledger knows whether its
// epoch was already charged, and the build is deterministic — so completion
// reproduces exactly the artifact the uncrashed run would have published.
func (in *Ingester) recover() error {
	for _, rec := range in.journal.Pending() {
		if rec.Points > uint64(len(in.points)) {
			return fmt.Errorf("ingest: intent v%d covers %d points but the WAL replayed only %d — acknowledged data is missing",
				rec.Version, rec.Points, len(in.points))
		}
		label := versionLabel(in.cfg.Name, rec.Version)
		if !in.ledger.Charged(in.cfg.Name, label) {
			if !in.ledger.CanCharge(in.cfg.Name, rec.Eps) {
				// The budget shrank between runs; this intent can never be
				// funded. Close it out so recovery converges.
				in.log.Printf("ingest: abandoning pending v%d: budget cannot fund ε=%v", rec.Version, rec.Eps)
				if err := in.journal.Abandon(rec.Version, "budget exhausted at recovery"); err != nil {
					return err
				}
				continue
			}
			if err := in.ledger.Charge(in.cfg.Name, label, rec.Eps); err != nil {
				return fmt.Errorf("ingest: recovery charge for v%d: %w", rec.Version, err)
			}
		}
		if err := in.fp("recover-charge"); err != nil {
			return err
		}
		if _, err := in.completeVersion(rec, in.points[:rec.Points:rec.Points]); err != nil {
			return fmt.Errorf("ingest: completing pending v%d: %w", rec.Version, err)
		}
		in.recovered++
		in.log.Printf("ingest: recovered pending publication %s", label)
	}
	return nil
}

// fp fires the test failpoint, if any.
func (in *Ingester) fp(step string) error {
	if in.failpoint != nil {
		return in.failpoint(step)
	}
	return nil
}

// Ingest appends pts to the WAL, acknowledging them (by returning the new
// total) only after they are durable. Non-finite coordinates are rejected
// whole-batch before anything is written, with an error matching
// ErrBadPoint under errors.Is.
func (in *Ingester) Ingest(pts []psd.Point) (uint64, error) {
	for i, p := range pts {
		if !finite(p.X) || !finite(p.Y) {
			return 0, fmt.Errorf("%w: point %d is (%v, %v)", ErrBadPoint, i, p.X, p.Y)
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if err := in.wal.Append(pts); err != nil {
		in.ingestErrs++
		return 0, err
	}
	in.points = append(in.points, pts...)
	return uint64(len(in.points)), nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Publish attempts to publish the next version over every acknowledged
// point. The durable order — intent, ledger charge, deterministic build,
// atomic artifact rename, published record — is what makes a kill at any
// instant recoverable; see the Journal docs. A refusal (no trigger, no new
// points, exhausted budget) records nothing anywhere.
//
// The cycle runs under pubMu; in.mu is taken only for the trigger check and
// the final stat updates, so ingestion proceeds while the (potentially
// seconds-long) build and serialization run. The point snapshot taken at
// the trigger check is safe to read lock-free: Ingest only ever appends,
// the snapshot's prefix is immutable, and psd.Build does not modify its
// input slice.
func (in *Ingester) Publish(trigger Trigger) (*PublishResult, error) {
	in.pubMu.Lock()
	defer in.pubMu.Unlock()
	in.mu.Lock()
	if in.wedged != nil {
		err := fmt.Errorf("ingest: publish pipeline wedged by an earlier mid-cycle failure (restart to recover): %w", in.wedged)
		in.mu.Unlock()
		return nil, err
	}
	count := uint64(len(in.points))
	fresh := count - in.latestPoints
	if trigger == TriggerCount {
		if in.cfg.RebuildCount <= 0 || fresh < uint64(in.cfg.RebuildCount) {
			in.mu.Unlock()
			return nil, ErrNoTrigger
		}
	} else if fresh == 0 {
		in.mu.Unlock()
		return nil, ErrNoNewPoints
	}
	if !in.ledger.CanCharge(in.cfg.Name, in.cfg.EpochEpsilon) {
		in.refused++
		in.mu.Unlock()
		return nil, ErrBudgetExhausted
	}
	pts := in.points[:count:count]
	in.mu.Unlock()

	v := in.journal.NextVersion()
	rec := VersionRecord{Version: v, Points: count, Seed: in.cfg.Build.Seed + int64(v), Eps: in.cfg.EpochEpsilon}
	if err := in.journal.Intent(v, rec.Points, rec.Seed, rec.Eps); err != nil {
		return nil, in.wedge(err)
	}
	if err := in.fp("intent"); err != nil {
		return nil, in.wedge(err)
	}
	if err := in.ledger.Charge(in.cfg.Name, versionLabel(in.cfg.Name, v), rec.Eps); err != nil {
		return nil, in.wedge(err)
	}
	if err := in.fp("charge"); err != nil {
		return nil, in.wedge(err)
	}
	res, err := in.completeVersion(rec, pts)
	if err != nil {
		return nil, in.wedge(err)
	}
	return res, nil
}

// wedge latches a mid-cycle failure.
func (in *Ingester) wedge(err error) error {
	in.mu.Lock()
	in.wedged = err
	in.mu.Unlock()
	return err
}

// completeVersion runs the non-durable-decision half of the publish cycle:
// deterministic build over the snapshot pts (the first rec.Points
// acknowledged points), atomic artifact publish, published record. Both the
// live path and recovery go through it, which is what makes the two
// byte-identical. It must be called without in.mu held — the build and
// serialization are the slow half, and taking mu only for the final stat
// updates is what keeps ingestion unblocked during them.
func (in *Ingester) completeVersion(rec VersionRecord, pts []psd.Point) (*PublishResult, error) {
	opts := in.cfg.Build
	opts.Seed = rec.Seed
	opts.Epsilon = rec.Eps
	tree, err := psd.Build(pts, in.cfg.Domain, opts)
	if err != nil {
		return nil, fmt.Errorf("ingest: building v%d: %w", rec.Version, err)
	}
	if err := in.fp("build"); err != nil {
		return nil, err
	}
	path := in.artifactPath(rec.Version)
	sum := crc64.New(artifactCRCTable)
	n, err := atomicfile.Write(path, func(w io.Writer) error {
		return tree.WriteBinaryV3Release(io.MultiWriter(w, sum))
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: publishing v%d: %w", rec.Version, err)
	}
	if err := in.fp("artifact"); err != nil {
		return nil, err
	}
	crcHex := fmt.Sprintf("%016x", sum.Sum64())
	if err := in.journal.Published(rec.Version, crcHex, n); err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.latestVersion, in.latestPoints = rec.Version, rec.Points
	in.published++
	in.lastPublish = time.Now()
	in.mu.Unlock()
	in.prune(rec.Version)
	in.log.Printf("ingest: published %s@v%d (%d points, %d bytes, crc64 %s)",
		in.cfg.Name, rec.Version, rec.Points, n, crcHex)
	return &PublishResult{
		Version: rec.Version, Points: rec.Points, Seed: rec.Seed, Eps: rec.Eps,
		Path: path, Bytes: n, CRC64: crcHex,
	}, nil
}

// prune removes artifacts of published versions older than the retention
// window behind latest. The journal keeps their records (history is cheap;
// artifacts are not), and a missing artifact is fine — pruning is
// best-effort.
func (in *Ingester) prune(latest int) {
	if in.cfg.Keep <= 0 {
		return
	}
	for _, pub := range in.journal.PublishedVersions() {
		if pub.Version <= latest-in.cfg.Keep {
			path := in.artifactPath(pub.Version)
			if err := in.fs.Remove(path); err == nil {
				in.log.Printf("ingest: pruned %s", path)
			}
		}
	}
}

// Stats snapshots the ingester.
func (in *Ingester) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := Stats{
		Name:          in.cfg.Name,
		Points:        uint64(len(in.points)),
		PendingPoints: uint64(len(in.points)) - in.latestPoints,
		WALSegments:   in.wal.Segments(),
		WALBytes:      in.wal.Bytes(),
		WALBroken:     in.wal.Broken() != nil,
		Budget:        in.ledger.Budget(),
		Spent:         in.ledger.Spent(in.cfg.Name),
		Remaining:     in.ledger.Remaining(in.cfg.Name),
		LatestVersion: in.latestVersion,
		LatestPoints:  in.latestPoints,
		Published:     in.published,
		Recovered:     in.recovered,
		Refused:       in.refused,
		IngestErrors:  in.ingestErrs,
		LastPublish:   in.lastPublish,
	}
	s.BudgetExhausted = !in.ledger.CanCharge(in.cfg.Name, in.cfg.EpochEpsilon)
	if math.IsInf(s.Budget, 1) {
		// Unlimited budget: report the 0-means-unlimited convention.
		s.Budget, s.Remaining = 0, 0
	}
	if in.wedged != nil {
		s.Wedged = in.wedged.Error()
	}
	return s
}

// Close releases every file handle. It does NOT flush anything — there is
// nothing to flush; every acknowledged byte is already durable.
func (in *Ingester) Close() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	var first error
	if in.wal != nil {
		if err := in.wal.Close(); err != nil {
			first = err
		}
	}
	if in.journal != nil {
		if err := in.journal.Close(); err != nil && first == nil {
			first = err
		}
	}
	if in.ledger != nil {
		if err := in.ledger.Close(); err != nil && first == nil {
			first = err
		}
	}
	in.wal, in.journal, in.ledger = nil, nil, nil
	return first
}
