package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"psd"
)

// testPoints returns n distinct, finite points.
func testPoints(n int, salt float64) []psd.Point {
	pts := make([]psd.Point, n)
	for i := range pts {
		pts[i] = psd.Point{X: salt + float64(i)*0.001, Y: salt - float64(i)*0.002}
	}
	return pts
}

func samePoints(t *testing.T, got, want []psd.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, pts, err := OpenWAL(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 || w.Count() != 0 {
		t.Fatalf("fresh WAL not empty: %d points", len(pts))
	}
	var all []psd.Point
	for batch := 0; batch < 5; batch++ {
		b := testPoints(10+batch, float64(batch))
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	if err := w.Append(nil); err != nil {
		t.Fatal("empty append must be a no-op, got", err)
	}
	if w.Count() != uint64(len(all)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(all))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, replayed, err := OpenWAL(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	samePoints(t, replayed, all)
	// And the reopened WAL keeps appending.
	if err := w2.Append(testPoints(3, 99)); err != nil {
		t.Fatal(err)
	}
	if w2.Count() != uint64(len(all)+3) {
		t.Fatalf("post-reopen Count = %d", w2.Count())
	}
}

// TestWALRotation drives the log across several segments and replays them.
func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	// ~6 points per segment: header 24 + frame overhead 12 + 16/point.
	w, _, err := OpenWAL(dir, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	var all []psd.Point
	for batch := 0; batch < 10; batch++ {
		b := testPoints(4, float64(batch))
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	if w.Segments() < 3 {
		t.Fatalf("expected several segments, got %d", w.Segments())
	}
	w.Close()
	w2, replayed, err := OpenWAL(dir, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	samePoints(t, replayed, all)
	if w2.Segments() != w.Segments() {
		t.Fatalf("reopen sees %d segments, writer had %d", w2.Segments(), w.Segments())
	}
}

// TestWALTornTail cuts the active segment at EVERY byte offset and checks
// recovery lands on the last complete frame — never more, never a failure.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three single-frame appends: frame boundaries are known.
	for batch := 0; batch < 3; batch++ {
		if err := w.Append(testPoints(2, float64(batch))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameLenBytes + 2*pointLen + frameCRCBytes
	if len(data) != segHeaderLen+3*frame {
		t.Fatalf("segment is %d bytes, want %d", len(data), segHeaderLen+3*frame)
	}
	for cut := segHeaderLen; cut < len(data); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, pts, err := OpenWAL(cutDir, nil, 0)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		wantFrames := (cut - segHeaderLen) / frame
		if len(pts) != wantFrames*2 {
			t.Fatalf("cut=%d: replayed %d points, want %d", cut, len(pts), wantFrames*2)
		}
		// The log must stay appendable after truncating the torn tail.
		if err := w2.Append(testPoints(1, 7)); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		w2.Close()
		w3, pts3, err := OpenWAL(cutDir, nil, 0)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(pts3) != wantFrames*2+1 {
			t.Fatalf("cut=%d: second replay %d points, want %d", cut, len(pts3), wantFrames*2+1)
		}
		w3.Close()
	}
}

// TestWALTailBitFlip corrupts the final frame's payload; recovery must drop
// exactly that frame.
func TestWALTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 2; batch++ {
		if err := w.Append(testPoints(2, float64(batch))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameLenBytes + 2*pointLen + frameCRCBytes
	data[segHeaderLen+frame+frameLenBytes+3] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, pts, err := OpenWAL(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(pts) != 2 {
		t.Fatalf("replayed %d points, want the 2 of the intact first frame", len(pts))
	}
}

// TestWALLastSegmentHeaderDamageFailsLoudly pins the header half of the
// recovery contract: a torn FRAME tail of the last segment is truncated
// away, but a damaged or inconsistent HEADER is never a crash artifact
// (headers are fsync'd before the rename that makes a segment visible), so
// truncating would zero the segment and silently discard acknowledged data
// behind the damage — the open must fail loudly instead.
func TestWALLastSegmentHeaderDamageFailsLoudly(t *testing.T) {
	corrupt := map[string]func(data []byte) []byte{
		"bad magic":            func(d []byte) []byte { d[0] ^= 0xff; return d },
		"short header":         func(d []byte) []byte { return d[:segHeaderLen-5] },
		"first-index mismatch": func(d []byte) []byte { d[16] ^= 0x01; return d },
		"seq mismatch":         func(d []byte) []byte { d[8] ^= 0x01; return d },
	}
	for name, mutate := range corrupt {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, _, err := OpenWAL(dir, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(testPoints(3, 1)); err != nil {
				t.Fatal(err)
			}
			w.Close()
			seg := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			mutated := mutate(append([]byte(nil), data...))
			if err := os.WriteFile(seg, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := OpenWAL(dir, nil, 0); err == nil {
				t.Fatal("header damage on the last segment must fail the open, not truncate it")
			}
			// The damaged segment must be left untouched for forensics — in
			// particular NOT truncated to a headerless stub.
			after, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if len(after) != len(mutated) {
				t.Fatalf("failed open modified the segment: %d bytes, had %d", len(after), len(mutated))
			}
		})
	}
}

// TestWALRotationSurvivesImmediateCrash pins the rotation commit point: the
// moment a fresh segment becomes visible it is also the active append
// target (the handle follows the rename), so a WAL reopened right after a
// rotation — the on-disk shape of a crash at that instant — replays
// everything and keeps appending into the new segment.
func TestWALRotationSurvivesImmediateCrash(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	var all []psd.Point
	for batch := 0; batch < 3; batch++ {
		b := testPoints(4, float64(batch))
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	if w.Segments() < 2 {
		t.Fatalf("need a rotation, got %d segments", w.Segments())
	}
	// "Crash": drop the handle without closing cleanly, then recover.
	w2, pts, err := OpenWAL(dir, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	samePoints(t, pts, all)
	if err := w2.Append(testPoints(2, 9)); err != nil {
		t.Fatal(err)
	}
	if w2.Count() != uint64(len(all)+2) {
		t.Fatalf("Count = %d, want %d", w2.Count(), len(all)+2)
	}
	w.Close()
}

// TestWALMidLogCorruption pins the loud-failure path: corruption in a sealed
// (non-last) segment means acknowledged data is unreadable, and the open
// must fail rather than silently drop points.
func TestWALMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 10; batch++ {
		if err := w.Append(testPoints(4, float64(batch))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Segments() < 2 {
		t.Fatalf("need ≥2 segments, got %d", w.Segments())
	}
	w.Close()
	seg1 := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+frameLenBytes+5] ^= 0x01
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, nil, 128); err == nil {
		t.Fatal("mid-log corruption must fail the open")
	}
}

// TestWALSegmentGap pins the contiguity check: a missing middle segment is
// lost acknowledged data and must fail the open.
func TestWALSegmentGap(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 12; batch++ {
		if err := w.Append(testPoints(4, float64(batch))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Segments() < 3 {
		t.Fatalf("need ≥3 segments, got %d", w.Segments())
	}
	w.Close()
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, nil, 128); err == nil {
		t.Fatal("segment gap must fail the open")
	}
}

// TestWALLeftoverTmp pins rotation-crash cleanup: a stray rotation temp file
// is removed at open and never replayed.
func TestWALLeftoverTmp(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testPoints(3, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	tmp := filepath.Join(dir, fmt.Sprintf(".wal-%016d.tmp", uint64(2)))
	if err := os.WriteFile(tmp, []byte("partial header"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, pts, err := OpenWAL(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(pts) != 3 {
		t.Fatalf("replayed %d points, want 3", len(pts))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover rotation temp file survived recovery")
	}
}
