package ingest

import (
	"fmt"
	"hash/crc64"
	"io"

	"psd"
)

// Verification: the auditable half of the crash-safety claim. Every
// published version's journal record carries (points P, seed, ε, CRC-64);
// the build is deterministic; the WAL holds every acknowledged point. So an
// auditor — or the e2e kill-loop — can rebuild any version from first
// principles and bit-compare three things: the journal's recorded checksum,
// a fresh rebuild from the replayed WAL, and the artifact actually sitting
// in the publish directory. All three agreeing is what "SIGKILL at any
// instant recovers to a byte-identical release" means, checked end to end.

// VersionCheck is one published version's verification result.
type VersionCheck struct {
	Version int    `json:"version"`
	Points  uint64 `json:"points"`
	// JournalCRC is the checksum the publish cycle recorded.
	JournalCRC string `json:"journal_crc"`
	// RebuiltCRC is a fresh deterministic rebuild from the WAL's points.
	RebuiltCRC string `json:"rebuilt_crc"`
	// ArtifactCRC is the on-disk artifact's checksum; empty when the
	// artifact was pruned by the retention window (expected, not a failure).
	ArtifactCRC string `json:"artifact_crc,omitempty"`
	Pruned      bool   `json:"pruned,omitempty"`
	// OK: rebuild matches the journal, and the artifact (when present)
	// matches too.
	OK bool `json:"ok"`
}

// Verify rebuilds every published version from the WAL and bit-compares it
// against the journal record and the published artifact. The returned error
// covers infrastructure failures only (a build that won't run); mismatches
// are reported per version in the checks.
func (in *Ingester) Verify() ([]VersionCheck, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	pubs := in.journal.PublishedVersions()
	checks := make([]VersionCheck, 0, len(pubs))
	for _, rec := range pubs {
		c := VersionCheck{Version: rec.Version, Points: rec.Points, JournalCRC: rec.CRC64}
		if rec.Points > uint64(len(in.points)) {
			return nil, fmt.Errorf("ingest: v%d covers %d points but the WAL holds only %d",
				rec.Version, rec.Points, len(in.points))
		}
		opts := in.cfg.Build
		opts.Seed = rec.Seed
		opts.Epsilon = rec.Eps
		tree, err := psd.Build(in.points[:rec.Points], in.cfg.Domain, opts)
		if err != nil {
			return nil, fmt.Errorf("ingest: rebuilding v%d: %w", rec.Version, err)
		}
		sum := crc64.New(artifactCRCTable)
		if err := tree.WriteBinaryV3Release(sum); err != nil {
			return nil, fmt.Errorf("ingest: serializing rebuilt v%d: %w", rec.Version, err)
		}
		c.RebuiltCRC = fmt.Sprintf("%016x", sum.Sum64())
		c.OK = c.RebuiltCRC == c.JournalCRC
		path := in.artifactPath(rec.Version)
		if f, err := in.fs.Open(path); err != nil {
			c.Pruned = true
		} else {
			fsum := crc64.New(artifactCRCTable)
			_, cpErr := io.Copy(fsum, f)
			f.Close()
			if cpErr != nil {
				return nil, fmt.Errorf("ingest: reading %s: %w", path, cpErr)
			}
			c.ArtifactCRC = fmt.Sprintf("%016x", fsum.Sum64())
			c.OK = c.OK && c.ArtifactCRC == c.JournalCRC
		}
		checks = append(checks, c)
	}
	return checks, nil
}
