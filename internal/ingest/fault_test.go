package ingest

import (
	"errors"
	"path/filepath"
	"testing"

	"psd/internal/serve/faultfs"
)

// The WAL fault suite drives the write path through faultfs: torn writes
// (prefix reaches the disk), failed fsyncs, and refused rotation renames —
// each deterministic, each asserting the acknowledgment contract: a failed
// Append acknowledges nothing, a successful one survives any subsequent
// crash.

var errInjected = errors.New("injected fault")

func TestWALTornWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	w, _, err := OpenWAL(dir, ffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testPoints(3, 1)); err != nil {
		t.Fatal(err)
	}
	// The next append tears 10 bytes in: the prefix reaches the disk, the
	// call fails, and the rollback truncates the tear away.
	seg := filepath.Join(dir, segName(1))
	ffs.Set(seg, faultfs.Fault{WriteErr: errInjected, WriteErrAfter: 10, Times: 1})
	// The fault binds at open time, so reopen the handle through the fault.
	w.Close()
	w, pts, err := OpenWAL(dir, ffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("replay before fault: %d points", len(pts))
	}
	if err := w.Append(testPoints(2, 2)); err == nil {
		t.Fatal("torn append reported success")
	}
	if w.Count() != 3 {
		t.Fatalf("Count after failed append = %d, want 3", w.Count())
	}
	if w.Broken() != nil {
		t.Fatalf("WAL broken after a clean rollback: %v", w.Broken())
	}
	// The log keeps working in-process…
	if err := w.Append(testPoints(2, 3)); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	w.Close()
	// …and replay sees exactly the acknowledged points.
	w2, pts, err := OpenWAL(dir, faultfs.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(pts) != 5 {
		t.Fatalf("replayed %d points, want 5 (3 acked + 2 post-rollback)", len(pts))
	}
}

func TestWALSyncFailureNotAcknowledged(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	w, _, err := OpenWAL(dir, ffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testPoints(2, 1)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	ffs.Set(seg, faultfs.Fault{SyncErr: errInjected, Times: 1})
	w.Close()
	w, _, err = OpenWAL(dir, ffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testPoints(4, 2)); err == nil {
		t.Fatal("append with failed fsync reported success")
	}
	if w.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (unsynced bytes are unacknowledged)", w.Count())
	}
	if err := w.Append(testPoints(1, 3)); err != nil {
		t.Fatalf("append after sync-failure rollback: %v", err)
	}
	w.Close()
	w2, pts, err := OpenWAL(dir, faultfs.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(pts) != 3 {
		t.Fatalf("replayed %d points, want 3", len(pts))
	}
}

func TestWALRotationRenameFailureRetries(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	// 128-byte segments: rotation fires on the second 4-point append.
	w, _, err := OpenWAL(dir, ffs, 128)
	if err != nil {
		t.Fatal(err)
	}
	tmp2 := filepath.Join(dir, ".wal-0000000000000002.tmp")
	ffs.Set(tmp2, faultfs.Fault{RenameErr: errInjected, Times: 1})
	if err := w.Append(testPoints(4, 1)); err != nil {
		t.Fatal(err)
	}
	// This append fills the segment; the rotation rename refuses. The
	// append itself must still succeed — the points are durable.
	if err := w.Append(testPoints(4, 2)); err != nil {
		t.Fatalf("append must not fail on a rotation failure: %v", err)
	}
	if w.Segments() != 1 {
		t.Fatalf("rotation should have failed, but Segments = %d", w.Segments())
	}
	// The next append retries the rotation (fault healed after one shot).
	if err := w.Append(testPoints(4, 3)); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 2 {
		t.Fatalf("rotation retry did not happen: Segments = %d", w.Segments())
	}
	w.Close()
	w2, pts, err := OpenWAL(dir, faultfs.New(), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(pts) != 12 {
		t.Fatalf("replayed %d points, want 12", len(pts))
	}
}

// failTruncFS makes self-healing truncation itself fail, driving the WAL
// into its terminal broken state.
type failTruncFS struct {
	FS
	err error
}

func (f failTruncFS) Truncate(name string, size int64) error { return f.err }

func TestWALBrokenWhenRollbackFails(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	w, _, err := OpenWAL(dir, failTruncFS{FS: ffs, err: errInjected}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testPoints(2, 1)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	ffs.Set(seg, faultfs.Fault{SyncErr: errInjected, Times: 1})
	w.Close()
	w, _, err = OpenWAL(dir, failTruncFS{FS: ffs, err: errInjected}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testPoints(2, 2)); err == nil {
		t.Fatal("append with failed fsync reported success")
	}
	if w.Broken() == nil {
		t.Fatal("WAL must be broken when the rollback truncate fails")
	}
	if err := w.Append(testPoints(1, 3)); err == nil {
		t.Fatal("broken WAL accepted an append")
	}
	w.Close()
	// Reopening through a healthy filesystem recovers: the unacknowledged
	// tail (possibly flushed by the kernel despite the failed fsync) is at
	// worst a complete frame; recovery keeps acknowledged data.
	w2, pts, err := OpenWAL(dir, faultfs.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(pts) < 2 {
		t.Fatalf("replayed %d points, want at least the 2 acknowledged", len(pts))
	}
	if err := w2.Append(testPoints(1, 4)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}
