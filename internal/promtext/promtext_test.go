package promtext

import (
	"strings"
	"testing"
)

func TestWriterExposition(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Family("app_requests_total", "counter", "Requests served.")
	w.Sample("app_requests_total", nil, 42)
	w.Family("app_temp", "gauge", "Help with\nnewline and back\\slash.")
	w.Sample("app_temp", []Label{{Name: "zone", Value: `a"b\c` + "\n"}}, 0.5)
	w.Sample("app_temp", []Label{{Name: "zone", Value: "plain"}, {Name: "shard", Value: "0"}}, 1e21)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	got := sb.String()
	want := "# HELP app_requests_total Requests served.\n" +
		"# TYPE app_requests_total counter\n" +
		"app_requests_total 42\n" +
		"# HELP app_temp Help with\\nnewline and back\\\\slash.\n" +
		"# TYPE app_temp gauge\n" +
		"app_temp{zone=\"a\\\"b\\\\c\\n\"} 0.5\n" +
		"app_temp{zone=\"plain\",shard=\"0\"} 1e+21\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "injected write failure" }

func TestWriterStickyError(t *testing.T) {
	fw := &failWriter{}
	w := NewWriter(fw)
	w.Family("m", "gauge", "h") // second printf fails
	w.Sample("m", nil, 1)
	w.Sample("m", nil, 2)
	if w.Err() == nil {
		t.Fatal("sticky error lost")
	}
	if fw.n != 2 {
		t.Fatalf("writes after failure: %d calls, want 2 (later calls must no-op)", fw.n)
	}
}
