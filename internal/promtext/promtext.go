// Package promtext writes the Prometheus text exposition format
// (version 0.0.4) with no external dependencies: just enough for
// psdserve and psdproxy to expose their existing counters as scrapeable
// GET /metrics endpoints. Only the subset the servers need is
// implemented — counter and gauge families with optional labels.
package promtext

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of a text exposition response.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Writer accumulates one exposition. Errors are sticky: the first write
// failure is remembered and later calls no-op, so callers check Err once
// at the end.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (p *Writer) Err() error { return p.err }

func (p *Writer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family starts a metric family: one # HELP and one # TYPE line. typ is
// "counter" or "gauge".
func (p *Writer) Family(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line of the current family. labels may be nil.
func (p *Writer) Sample(name string, labels []Label, v float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatValue(v))
		return
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	p.printf("%s{%s} %s\n", name, sb.String(), formatValue(v))
}

// formatValue renders v the way Prometheus parsers expect: shortest
// round-trippable decimal.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
