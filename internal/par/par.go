// Package par provides the small data-parallel helpers the build and query
// pipelines share. Everything here is deterministic-by-construction: the
// helpers only decide *where* work runs, never what it computes, so a loop
// body whose iterations are independent produces bit-identical results at
// any worker count.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested parallelism degree: values > 0 are taken as
// given, anything else means "use every available core" (GOMAXPROCS).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn over contiguous chunks covering [lo, hi), spread across at
// most workers goroutines. Ranges shorter than grain (or workers <= 1) run
// inline on the caller's goroutine — the fast path for small levels and
// sequential builds. fn must treat its chunk independently of the others.
func For(workers, lo, hi, grain int, fn func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if grain < 1 {
		grain = 1
	}
	if workers <= 1 || n <= grain {
		fn(lo, hi)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < grain {
		chunk = grain
	}
	var wg sync.WaitGroup
	for start := lo; start < hi; start += chunk {
		end := start + chunk
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			fn(a, b)
		}(start, end)
	}
	wg.Wait()
}
