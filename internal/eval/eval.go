// Package eval is the experiment harness behind Section 8: it builds the
// datasets and query workloads, runs every PSD configuration the paper
// compares, and produces the rows/series of each figure. The cmd/psdbench
// tool and the repository's bench_test.go are thin wrappers around this
// package.
//
// Experiments run at two scales: Paper (the full 1.63M-point dataset and
// 600 queries per shape, as in Section 8.1) and Quick (a 10× smaller
// dataset and 60 queries per shape) so `go test -bench` finishes in
// minutes. The *shapes* of the results — who wins, by what factor — hold at
// both scales; EXPERIMENTS.md records the paper-scale numbers.
package eval

import (
	"fmt"
	"math"

	"psd/internal/core"
	"psd/internal/workload"
)

// Scale sizes an experimental run.
type Scale struct {
	// Name labels output tables.
	Name string
	// Points is the dataset cardinality.
	Points int
	// QueriesPerShape is the number of random non-empty queries per shape.
	QueriesPerShape int
	// Reps is the number of independent trees built per configuration;
	// reported errors pool queries across reps (smaller workloads need more
	// reps for stable medians).
	Reps int
	// MedianValues is the input size for the Figure 4 one-dimensional
	// median study.
	MedianValues int
	// Seed fixes all randomness.
	Seed int64
}

// PaperScale reproduces Section 8.1 exactly.
var PaperScale = Scale{
	Name:            "paper",
	Points:          workload.TigerPoints,
	QueriesPerShape: 600,
	Reps:            1,
	MedianValues:    1 << 20,
	Seed:            20120403,
}

// QuickScale is a 10× reduced configuration for CI and benchmarks.
var QuickScale = Scale{
	Name:            "quick",
	Points:          163_000,
	QueriesPerShape: 60,
	Reps:            3,
	MedianValues:    1 << 17,
	Seed:            20120403,
}

// Env bundles the dataset, its exact-count index and cached query
// workloads. Build it once per experimental session.
type Env struct {
	Scale Scale
	Data  workload.Dataset
	Index *workload.CountIndex

	queries map[workload.QueryShape]*workload.Queries
}

// NewEnv generates the synthetic road dataset at the given scale and
// indexes it.
func NewEnv(scale Scale) (*Env, error) {
	if scale.Points <= 0 || scale.QueriesPerShape <= 0 {
		return nil, fmt.Errorf("eval: invalid scale %+v", scale)
	}
	if scale.Reps <= 0 {
		scale.Reps = 1
	}
	data := workload.RoadNetwork(workload.RoadNetworkConfig{
		N:    scale.Points,
		Seed: scale.Seed,
	})
	idx, err := workload.NewCountIndex(data.Points, data.Domain, 1024)
	if err != nil {
		return nil, err
	}
	return &Env{
		Scale:   scale,
		Data:    data,
		Index:   idx,
		queries: make(map[workload.QueryShape]*workload.Queries),
	}, nil
}

// Queries returns (and caches) the workload for one query shape.
func (e *Env) Queries(shape workload.QueryShape) (*workload.Queries, error) {
	if qs, ok := e.queries[shape]; ok {
		return qs, nil
	}
	qs, err := workload.GenQueries(e.Index, shape, e.Scale.QueriesPerShape,
		e.Scale.Seed^int64(shape.W*1000)^int64(shape.H*7000))
	if err != nil {
		return nil, err
	}
	e.queries[shape] = qs
	return qs, nil
}

// RelativeErrors returns the per-query relative errors (in %) of a PSD on a
// workload: 100·|estimate − truth|/truth. GenQueries guarantees truth ≥ 1.
// The whole workload is answered through the node-major batch engine
// (PSD.CountBatch) — one pass over the sealed slab per workload — so figure
// regeneration scales with the machine; answers are bit-identical to
// querying one rectangle at a time.
func RelativeErrors(p *core.PSD, qs *workload.Queries) []float64 {
	out := p.CountBatch(qs.Rects)
	for i, est := range out {
		out[i] = 100 * math.Abs(est-qs.Answers[i]) / qs.Answers[i]
	}
	return out
}

// MedianRelativeError returns the workload's median relative error in %,
// the paper's headline metric (Section 8.1).
func MedianRelativeError(p *core.PSD, qs *workload.Queries) float64 {
	return workload.Median(RelativeErrors(p, qs))
}

// RunSpec is one named tree configuration in a comparison.
type RunSpec struct {
	Name string
	Cfg  core.Config
}

// medianErrorOver builds spec.Reps trees (varying the seed) and pools the
// per-query relative errors before taking the median, stabilizing small
// workloads.
func (e *Env) medianErrorOver(spec RunSpec, qs *workload.Queries) (float64, error) {
	var pooled []float64
	for rep := 0; rep < e.Scale.Reps; rep++ {
		cfg := spec.Cfg
		cfg.Seed = e.Scale.Seed + int64(rep)*7919 + int64(len(spec.Name))
		p, err := core.Build(e.Data.Points, e.Data.Domain, cfg)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", spec.Name, err)
		}
		pooled = append(pooled, RelativeErrors(p, qs)...)
	}
	return workload.Median(pooled), nil
}
