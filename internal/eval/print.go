package eval

import (
	"fmt"
	"io"
	"sort"

	"psd/internal/budget"
)

// This file renders experiment results as the text tables cmd/psdbench
// prints — the same rows/series the paper's figures plot.

// PrintFigure2 writes the Figure 2 closed-form curves.
func PrintFigure2(w io.Writer, rows []budget.Figure2Row) {
	fmt.Fprintln(w, "Figure 2: worst-case Err(Q), uniform vs geometric budget (x 16/eps^2)")
	fmt.Fprintf(w, "%4s %16s %16s %8s\n", "h", "uniform", "geometric", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %16.1f %16.1f %8.2f\n", r.H, r.Uniform, r.Geometric, r.Uniform/r.Geometric)
	}
}

// PrintFigure3 writes the quadtree-optimization comparison.
func PrintFigure3(w io.Writer, rows []Figure3Row) {
	fmt.Fprintln(w, "Figure 3: quadtree optimizations, median relative error (%)")
	fmt.Fprintf(w, "%6s %10s %14s %10s %10s %10s\n",
		"eps", "shape", "quad-baseline", "quad-geo", "quad-post", "quad-opt")
	for _, r := range rows {
		fmt.Fprintf(w, "%6.2f %10s %14.3f %10.3f %10.3f %10.3f\n",
			r.Eps, r.Shape, r.Baseline, r.Geo, r.Post, r.Opt)
	}
}

// PrintFigure4 writes the private-median quality and timing study.
func PrintFigure4(w io.Writer, rows []Figure4Row) {
	fmt.Fprintln(w, "Figure 4: private medians, avg rank error (%) and time per depth")
	fmt.Fprintf(w, "%6s %6s %12s %14s\n", "method", "depth", "rank-err(%)", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%6s %6d %12.2f %14s\n", r.Method, r.Depth, r.RankErr, r.Time)
	}
}

// PrintFigure5 writes the kd-tree family comparison.
func PrintFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintln(w, "Figure 5: kd-tree variants, median relative error (%)")
	order := []string{"kd-pure", "kd-true", "kd-standard", "kd-hybrid", "kd-cell", "kd-noisymean"}
	fmt.Fprintf(w, "%6s %10s", "eps", "shape")
	for _, m := range order {
		fmt.Fprintf(w, " %13s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%6.2f %10s", r.Eps, r.Shape)
		for _, m := range order {
			fmt.Fprintf(w, " %13.3f", r.Errors[m])
		}
		fmt.Fprintln(w)
	}
}

// PrintFigure6 writes the best-of-family height sweep.
func PrintFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintln(w, "Figure 6: accuracy vs height (eps=0.5), median relative error (%)")
	order := []string{"quad-opt", "kd-hybrid", "kd-cell", "hilbert-r"}
	fmt.Fprintf(w, "%4s %10s", "h", "shape")
	for _, m := range order {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %10s", r.Height, r.Shape)
		for _, m := range order {
			fmt.Fprintf(w, " %12.3f", r.Errors[m])
		}
		fmt.Fprintln(w)
	}
}

// PrintFigure7a writes the construction-time comparison.
func PrintFigure7a(w io.Writer, rows []Figure7aRow) {
	fmt.Fprintln(w, "Figure 7a: construction time")
	fmt.Fprintf(w, "%12s %14s %10s\n", "method", "build-time", "nodes")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %14s %10d\n", r.Method, r.Build, r.Nodes)
	}
}

// PrintFigure7b writes the record-matching reduction ratios.
func PrintFigure7b(w io.Writer, rows []Figure7bRow) {
	fmt.Fprintln(w, "Figure 7b: private record matching, reduction ratio")
	order := []string{"quad-baseline", "kd-noisymean", "kd-standard"}
	fmt.Fprintf(w, "%6s", "eps")
	for _, m := range order {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%6.2f", r.Eps)
		for _, m := range order {
			fmt.Fprintf(w, " %14.4f", r.Ratios[m])
		}
		fmt.Fprintln(w)
	}
}

// PrintGridBaseline writes the flat-grid-vs-PSD comparison.
func PrintGridBaseline(w io.Writer, rows []GridBaselineRow) {
	fmt.Fprintln(w, "Grid baseline [6] vs optimized quadtree, median relative error (%)")
	fmt.Fprintf(w, "%10s %10s %12s %12s\n", "shape", "grid", "quad-opt", "grid-dims")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s %10.3f %12.3f %12s\n", r.Shape, r.GridErr, r.QuadErr, r.GridDims)
	}
}

// PrintSweep writes a one-parameter ablation sweep.
func PrintSweep(w io.Writer, title, param string, rows []SweepRow) {
	fmt.Fprintln(w, title)
	if len(rows) == 0 {
		return
	}
	shapes := make([]string, 0, len(rows[0].Errors))
	for s := range rows[0].Errors {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	fmt.Fprintf(w, "%10s", param)
	for _, s := range shapes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%10.3g", r.Param)
		for _, s := range shapes {
			fmt.Fprintf(w, " %12.3f", r.Errors[s])
		}
		fmt.Fprintln(w)
	}
}
