package eval

import (
	"psd/internal/geom"
	"psd/internal/matching"
	"psd/internal/rng"
)

// Figure7bRow is one point of Figure 7(b): reduction ratio per method at
// one privacy budget.
type Figure7bRow struct {
	Eps    float64
	Ratios map[string]float64 // keyed by matching.Method String()
	Recall map[string]float64
}

// Figure7bConfig sizes the record-matching experiment.
type Figure7bConfig struct {
	// PartySize is each party's record count (default 5000).
	PartySize int
	// Height is the blocking-tree height (default 5).
	Height int
	// Reps averages the ratio over independent releases (default 3).
	Reps int
	Seed int64
}

// Figure7b reproduces Figure 7(b): the reduction ratio of private record
// matching as the privacy budget grows, for the three blocking methods.
// The two parties are synthetic point sets with partially overlapping
// hotspots (see DESIGN.md on the substitution for the data of [12]).
func Figure7b(cfg Figure7bConfig, epss []float64) ([]Figure7bRow, error) {
	if cfg.PartySize == 0 {
		cfg.PartySize = 12000
	}
	if cfg.Height == 0 {
		cfg.Height = 5
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	dom := geom.NewRect(0, 0, 100, 100)
	partyA, partyB := matchingParties(cfg.PartySize, dom, cfg.Seed)

	methods := []matching.Method{
		matching.QuadBaseline, matching.KDNoisyMean, matching.KDStandard,
	}
	var rows []Figure7bRow
	for _, eps := range epss {
		row := Figure7bRow{
			Eps:    eps,
			Ratios: map[string]float64{},
			Recall: map[string]float64{},
		}
		for _, m := range methods {
			var rr, rec float64
			for rep := 0; rep < cfg.Reps; rep++ {
				res, err := matching.Run(partyA, partyB, dom, matching.Config{
					Method:  m,
					Height:  cfg.Height,
					Epsilon: eps,
					Seed:    cfg.Seed + int64(rep)*131 + int64(m),
				})
				if err != nil {
					return nil, err
				}
				rr += res.ReductionRatio
				rec += res.Recall
			}
			row.Ratios[m.String()] = rr / float64(cfg.Reps)
			row.Recall[m.String()] = rec / float64(cfg.Reps)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// matchingParties builds two clustered point sets with partially
// overlapping hotspots, the workload shape that makes blocking worthwhile.
func matchingParties(n int, dom geom.Rect, seed int64) (a, b []geom.Point) {
	src := rng.New(seed ^ 0x7061727479)
	cities := make([]geom.Point, 8)
	for i := range cities {
		cities[i] = geom.Point{
			X: src.UniformIn(dom.Lo.X, dom.Hi.X),
			Y: src.UniformIn(dom.Lo.Y, dom.Hi.Y),
		}
	}
	// Tight hotspots (σ = 1% of the domain) put the data in the skew regime
	// of real address data, where adaptive splits pay off.
	gen := func(n, lo, hi int) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			c := cities[lo+src.Intn(hi-lo)]
			pts[i] = geom.Point{
				X: clampF(c.X+src.Gaussian(0, dom.Width()/100), dom.Lo.X, dom.Hi.X),
				Y: clampF(c.Y+src.Gaussian(0, dom.Height()/100), dom.Lo.Y, dom.Hi.Y),
			}
		}
		return pts
	}
	return gen(n, 0, 6), gen(n, 3, 8)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v >= hi {
		return hi - 1e-9
	}
	return v
}
