package eval

import (
	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/workload"
)

// This file reproduces the "other parameter settings" sweeps that
// Section 8.2 summarizes without plots, plus ablations of the design
// choices DESIGN.md calls out.

// SweepRow is one point of a one-dimensional parameter sweep: median
// relative error (%) per query shape at one parameter value.
type SweepRow struct {
	Param  float64
	Errors map[string]float64 // keyed by shape string
}

// SwitchLevelSweep varies the hybrid tree's switch level ℓ from fully
// data-independent (0) to fully data-dependent (height). The paper found
// switching about half-way down gives the best results.
func SwitchLevelSweep(env *Env, height int, eps float64, shapes []workload.QueryShape) ([]SweepRow, error) {
	var rows []SweepRow
	for l := 0; l <= height; l++ {
		row := SweepRow{Param: float64(l), Errors: map[string]float64{}}
		spec := RunSpec{
			Name: "hybrid",
			Cfg: core.Config{
				Kind: core.Hybrid, Height: height, Epsilon: eps,
				// SwitchLevel 0 must mean "0 levels", not "use the default",
				// so route it through KD=0 ≡ quadtree via explicit config.
				SwitchLevel: l,
				Strategy:    budget.Geometric{}, PostProcess: true,
			},
		}
		if l == 0 {
			spec.Cfg.Kind = core.Quadtree // ℓ=0 hybrid is exactly a quadtree
			spec.Cfg.SwitchLevel = 0
		}
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			v, err := env.medianErrorOver(spec, qs)
			if err != nil {
				return nil, err
			}
			row.Errors[shape.String()] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CountFractionSweep varies the εcount/ε split for kd-trees. The paper
// settles on εcount = 0.7ε.
func CountFractionSweep(env *Env, height int, eps float64, fracs []float64, shapes []workload.QueryShape) ([]SweepRow, error) {
	var rows []SweepRow
	for _, f := range fracs {
		row := SweepRow{Param: f, Errors: map[string]float64{}}
		spec := RunSpec{
			Name: "kd",
			Cfg: core.Config{
				Kind: core.KD, Height: height, Epsilon: eps,
				CountFraction: f,
				Strategy:      budget.Geometric{}, PostProcess: true,
			},
		}
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			v, err := env.medianErrorOver(spec, qs)
			if err != nil {
				return nil, err
			}
			row.Errors[shape.String()] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// HilbertOrderSweep varies the Hilbert curve order. The paper found
// accuracy stable across orders 16-24 and used 18.
func HilbertOrderSweep(env *Env, height int, eps float64, orders []uint, shapes []workload.QueryShape) ([]SweepRow, error) {
	var rows []SweepRow
	for _, ord := range orders {
		row := SweepRow{Param: float64(ord), Errors: map[string]float64{}}
		spec := RunSpec{
			Name: "hilbert-r",
			Cfg: core.Config{
				Kind: core.HilbertR, Height: height, Epsilon: eps,
				HilbertOrder: ord,
				Strategy:     budget.Geometric{}, PostProcess: true,
			},
		}
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			v, err := env.medianErrorOver(spec, qs)
			if err != nil {
				return nil, err
			}
			row.Errors[shape.String()] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeometricRatioSweep varies the geometric budget ratio around the Lemma 3
// optimum 2^(1/3) ≈ 1.26 on quadtrees (ratio 1 is the uniform strategy).
func GeometricRatioSweep(env *Env, height int, eps float64, ratios []float64, shapes []workload.QueryShape) ([]SweepRow, error) {
	var rows []SweepRow
	for _, r := range ratios {
		row := SweepRow{Param: r, Errors: map[string]float64{}}
		spec := RunSpec{
			Name: "quad",
			Cfg: core.Config{
				Kind: core.Quadtree, Height: height, Epsilon: eps,
				Strategy: budget.Geometric{Ratio: r}, PostProcess: true,
			},
		}
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			v, err := env.medianErrorOver(spec, qs)
			if err != nil {
				return nil, err
			}
			row.Errors[shape.String()] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PruneThresholdSweep varies the Section 7 pruning threshold m on the
// hybrid tree (m = 0 disables pruning; the paper uses m = 32).
func PruneThresholdSweep(env *Env, height int, eps float64, thresholds []float64, shapes []workload.QueryShape) ([]SweepRow, error) {
	var rows []SweepRow
	for _, m := range thresholds {
		row := SweepRow{Param: m, Errors: map[string]float64{}}
		spec := RunSpec{
			Name: "hybrid",
			Cfg: core.Config{
				Kind: core.Hybrid, Height: height, Epsilon: eps,
				Strategy: budget.Geometric{}, PostProcess: true,
				PruneThreshold: m,
			},
		}
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			v, err := env.medianErrorOver(spec, qs)
			if err != nil {
				return nil, err
			}
			row.Errors[shape.String()] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}
