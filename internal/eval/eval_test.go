package eval

import (
	"bytes"
	"strings"
	"testing"

	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/workload"
)

// tinyScale keeps unit tests fast; benchmark/bench harness use QuickScale.
var tinyScale = Scale{
	Name:            "tiny",
	Points:          20000,
	QueriesPerShape: 30,
	Reps:            4,
	MedianValues:    1 << 12,
	Seed:            99,
}

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(Scale{}); err == nil {
		t.Error("zero scale should error")
	}
}

func TestEnvQueriesCached(t *testing.T) {
	env := tinyEnv(t)
	a, err := env.Queries(workload.QueryShape{W: 1, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Queries(workload.QueryShape{W: 1, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("queries should be cached per shape")
	}
	if len(a.Rects) != tinyScale.QueriesPerShape {
		t.Errorf("got %d queries", len(a.Rects))
	}
}

func TestRelativeErrorsExactTreeNearZero(t *testing.T) {
	env := tinyEnv(t)
	qs, err := env.Queries(workload.QueryShape{W: 5, H: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(env.Data.Points, env.Data.Domain, core.Config{
		Kind: core.Quadtree, Height: 8, NonPrivate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	med := MedianRelativeError(p, qs)
	// A deep exact quadtree's only error is the uniformity assumption on
	// partial leaves — small but non-zero.
	if med > 5 {
		t.Errorf("exact-tree median relative error = %v%%, want < 5%%", med)
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	env := tinyEnv(t)
	// The optimizations' advantage grows with tree height and noise share
	// (Section 4.2); h=8 at eps=0.1 is where Figure 3(a) lives.
	rows, err := Figure3(env, 8, []float64{0.1}, []workload.QueryShape{{W: 5, H: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// The paper's headline: quad-opt beats quad-baseline, by a lot.
	if r.Opt >= r.Baseline {
		t.Errorf("quad-opt (%v) should beat quad-baseline (%v)", r.Opt, r.Baseline)
	}
	// Each single optimization also helps.
	if r.Geo >= r.Baseline {
		t.Errorf("quad-geo (%v) should beat baseline (%v)", r.Geo, r.Baseline)
	}
	if r.Post >= r.Baseline {
		t.Errorf("quad-post (%v) should beat baseline (%v)", r.Post, r.Baseline)
	}
}

func TestFigure4SmallRun(t *testing.T) {
	cfg := Figure4Config{
		Values:     1 << 12,
		Domain:     1 << 20,
		Depths:     4,
		Eps:        0.05,
		Delta:      1e-4,
		SampleRate: 0.05,
		CellWidth:  1 << 10,
		Seed:       7,
	}
	rows, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*4 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	byMethod := map[string][]Figure4Row{}
	for _, r := range rows {
		byMethod[r.Method] = append(byMethod[r.Method], r)
		if r.RankErr < 0 || r.RankErr > 100 {
			t.Errorf("%s depth %d: rank error %v outside [0,100]", r.Method, r.Depth, r.RankErr)
		}
	}
	for _, m := range []string{"EM", "SS", "EMs", "SSs", "NM", "cell"} {
		if len(byMethod[m]) != 4 {
			t.Errorf("method %s has %d rows", m, len(byMethod[m]))
		}
	}
	// EM at the root of a large uniform dataset is nearly exact (Figure 4a).
	if em := byMethod["EM"][0]; em.RankErr > 5 {
		t.Errorf("EM root rank error = %v%%, want < 5%%", em.RankErr)
	}
	if _, err := Figure4(Figure4Config{}); err == nil {
		t.Error("zero config should error")
	}
}

func TestFigure5SmallRun(t *testing.T) {
	env := tinyEnv(t)
	rows, err := Figure5(env, 4, []float64{1.0}, []workload.QueryShape{{W: 10, H: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	errs := rows[0].Errors
	for _, m := range []string{"kd-pure", "kd-true", "kd-standard", "kd-hybrid", "kd-cell", "kd-noisymean"} {
		if _, ok := errs[m]; !ok {
			t.Errorf("missing method %s", m)
		}
	}
	// All errors are finite and sane. (Private variants are NOT required to
	// lose to kd-pure: kd-pure still pays uniformity-assumption error, and
	// a hybrid's quadtree-shaped leaves can align better with queries. The
	// paper-scale ordering is recorded in EXPERIMENTS.md.)
	for m, e := range errs {
		if e < 0 || e > 1e4 {
			t.Errorf("%s: implausible error %v%%", m, e)
		}
	}
	// kd-true (exact medians, noisy counts) stays close to kd-pure: the
	// paper's observation that count noise is not the dominant error source.
	if errs["kd-true"] > errs["kd-pure"]*10+5 {
		t.Errorf("kd-true (%v%%) should stay near kd-pure (%v%%)", errs["kd-true"], errs["kd-pure"])
	}
}

func TestFigure6SmallRun(t *testing.T) {
	env := tinyEnv(t)
	rows, err := Figure6(env, []int{4, 5}, 0.5, []workload.QueryShape{{W: 10, H: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, m := range []string{"quad-opt", "kd-hybrid", "kd-cell", "hilbert-r"} {
			if _, ok := r.Errors[m]; !ok {
				t.Errorf("h=%d missing method %s", r.Height, m)
			}
		}
	}
}

func TestFigure7aSmallRun(t *testing.T) {
	env := tinyEnv(t)
	rows, err := Figure7a(env, 4, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Build <= 0 {
			t.Errorf("%s: non-positive build time", r.Method)
		}
		if r.Nodes <= 0 {
			t.Errorf("%s: no nodes", r.Method)
		}
	}
}

func TestFigure7bSmallRun(t *testing.T) {
	rows, err := Figure7b(Figure7bConfig{PartySize: 1500, Height: 4, Reps: 2, Seed: 5},
		[]float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, m := range []string{"quad-baseline", "kd-noisymean", "kd-standard"} {
			rr, ok := r.Ratios[m]
			if !ok {
				t.Fatalf("missing method %s", m)
			}
			if rr <= 0 || rr > 1 {
				t.Errorf("eps=%v %s: ratio %v outside (0,1]", r.Eps, m, rr)
			}
		}
	}
	// Reduction ratio improves with budget for the kd methods.
	if rows[1].Ratios["kd-standard"] <= rows[0].Ratios["kd-standard"] {
		t.Errorf("kd-standard ratio should improve with eps: %v -> %v",
			rows[0].Ratios["kd-standard"], rows[1].Ratios["kd-standard"])
	}
}

func TestGridBaselineSmallRun(t *testing.T) {
	env := tinyEnv(t)
	rows, err := GridBaseline(env, 256, 6, 0.5,
		[]workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// On the large query shape the hierarchical structure must beat the
	// flat grid (Section 1's motivation).
	big := rows[1]
	if big.QuadErr >= big.GridErr {
		t.Errorf("large query: quad-opt (%v%%) should beat flat grid (%v%%)",
			big.QuadErr, big.GridErr)
	}
}

func TestSweepsRun(t *testing.T) {
	env := tinyEnv(t)
	shapes := []workload.QueryShape{{W: 5, H: 5}}
	if rows, err := SwitchLevelSweep(env, 3, 0.5, shapes); err != nil || len(rows) != 4 {
		t.Errorf("SwitchLevelSweep: %v (%d rows)", err, len(rows))
	}
	if rows, err := CountFractionSweep(env, 3, 0.5, []float64{0.5, 0.7}, shapes); err != nil || len(rows) != 2 {
		t.Errorf("CountFractionSweep: %v (%d rows)", err, len(rows))
	}
	if rows, err := HilbertOrderSweep(env, 3, 0.5, []uint{10, 16}, shapes); err != nil || len(rows) != 2 {
		t.Errorf("HilbertOrderSweep: %v (%d rows)", err, len(rows))
	}
	if rows, err := GeometricRatioSweep(env, 4, 0.5, []float64{1, 1.26}, shapes); err != nil || len(rows) != 2 {
		t.Errorf("GeometricRatioSweep: %v (%d rows)", err, len(rows))
	}
	if rows, err := PruneThresholdSweep(env, 4, 0.5, []float64{0, 32}, shapes); err != nil || len(rows) != 2 {
		t.Errorf("PruneThresholdSweep: %v (%d rows)", err, len(rows))
	}
}

func TestPrinters(t *testing.T) {
	var buf bytes.Buffer
	f2, _ := budget.Figure2(5, 6)
	PrintFigure2(&buf, f2)
	PrintFigure3(&buf, []Figure3Row{{Eps: 0.1, Shape: workload.QueryShape{W: 1, H: 1}}})
	PrintFigure4(&buf, []Figure4Row{{Method: "EM", Depth: 0}})
	PrintFigure5(&buf, []Figure5Row{{Eps: 0.1, Errors: map[string]float64{"kd-pure": 1}}})
	PrintFigure6(&buf, []Figure6Row{{Height: 6, Errors: map[string]float64{"quad-opt": 1}}})
	PrintFigure7a(&buf, []Figure7aRow{{Method: "quadtree"}})
	PrintFigure7b(&buf, []Figure7bRow{{Eps: 0.1, Ratios: map[string]float64{"kd-standard": 0.9}}})
	PrintGridBaseline(&buf, []GridBaselineRow{{}})
	PrintSweep(&buf, "sweep", "l", []SweepRow{{Param: 1, Errors: map[string]float64{"(1,1)": 2}}})
	out := buf.String()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7a", "Figure 7b", "Grid baseline", "sweep"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q", want)
		}
	}
}
