package eval

import (
	"math"
	"testing"

	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/workload"
)

// TestQuadOptAccuracyRegression pins the paper's headline behavior so it
// cannot silently regress: quad-opt (geometric level budgets, Section 4.2,
// plus OLS post-processing, Section 5) must stay within an absolute
// accuracy bound AND strictly beat the prior-work baseline (uniform
// budgets, no post-processing) on the same workload. Both sides are
// averaged over many seeds so a single lucky or unlucky noise draw cannot
// flip the verdict.
//
// The pinned numbers come from this harness at the time of writing: over 30
// seeds, quad-opt's mean relative error sat at 8.45% with the baseline at
// 26.10% — a 3.1x gap, matching the shape of Figure 3. Everything here is
// seeded (dataset, queries, noise), so the measurement is reproducible; the
// bound (15%) and the required improvement factor (1.5x) still leave room
// for legitimate numeric churn while catching any real regression (dropping
// either optimization blows straight past them).
func TestQuadOptAccuracyRegression(t *testing.T) {
	const (
		seeds          = 30
		meanErrBound   = 15.0 // percent
		minImprovement = 1.5  // baseline/opt mean-error ratio
	)

	data := workload.RoadNetwork(workload.RoadNetworkConfig{N: 30_000, Seed: 20120403})
	idx, err := workload.NewCountIndex(data.Points, data.Domain, 512)
	if err != nil {
		t.Fatal(err)
	}
	// GenQueries only guarantees a non-zero exact answer; queries with a
	// handful of true points make *relative* error explode under any finite
	// noise (the paper reports medians for the same reason). Mean relative
	// error is only a meaningful regression metric over queries with
	// substantial support, so keep those with at least 100 true points.
	var queries []workload.Queries
	for _, shape := range []workload.QueryShape{{W: 5, H: 5}, {W: 10, H: 10}} {
		qs, err := workload.GenQueries(idx, shape, 80, 20120403+int64(shape.W))
		if err != nil {
			t.Fatal(err)
		}
		kept := workload.Queries{Shape: qs.Shape}
		for i, ans := range qs.Answers {
			if ans >= 100 {
				kept.Rects = append(kept.Rects, qs.Rects[i])
				kept.Answers = append(kept.Answers, ans)
			}
		}
		if len(kept.Rects) < 20 {
			t.Fatalf("only %d/%d %v queries have >=100 true points", len(kept.Rects), 80, shape)
		}
		queries = append(queries, kept)
	}

	meanErr := func(cfg core.Config) float64 {
		var sum float64
		var n int
		p, err := core.Build(data.Points, data.Domain, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			for _, e := range RelativeErrors(p, &queries[i]) {
				sum += e
				n++
			}
		}
		return sum / float64(n)
	}

	var optSum, baseSum float64
	for seed := int64(1); seed <= seeds; seed++ {
		optSum += meanErr(core.Config{
			Kind: core.Quadtree, Height: 7, Epsilon: 0.5, Seed: seed,
			Strategy: budget.Geometric{}, PostProcess: true,
		})
		baseSum += meanErr(core.Config{
			Kind: core.Quadtree, Height: 7, Epsilon: 0.5, Seed: seed,
			Strategy: budget.Uniform{}, PostProcess: false,
		})
	}
	opt := optSum / seeds
	base := baseSum / seeds
	t.Logf("mean relative error over %d seeds: quad-opt %.2f%%, uniform-no-post %.2f%% (ratio %.2fx)",
		seeds, opt, base, base/opt)

	if math.IsNaN(opt) || opt > meanErrBound {
		t.Errorf("quad-opt mean relative error %.2f%% exceeds pinned bound %.0f%% — "+
			"the Section 4/5 optimizations have regressed", opt, meanErrBound)
	}
	if !(opt*minImprovement < base) {
		t.Errorf("quad-opt (%.2f%%) does not beat uniform-no-postprocessing (%.2f%%) by %.1fx — "+
			"geometric budgets and/or OLS post-processing stopped helping", opt, base, minImprovement)
	}
}
